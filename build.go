package mobiletel

import (
	"fmt"
	"strings"
)

// TopologyNames lists the names BuildTopology accepts.
const TopologyNames = "clique|path|cycle|star|lineofstars|ringofcliques|regular|er|grid|torus|expander|hypercube|barbell|scalefree"

// ScheduleNames lists the names BuildSchedule accepts.
const ScheduleNames = "static|permuted|churn|waypoint"

// BuildTopology interprets a (name, n, deg, seed) tuple — the shape CLI
// flags naturally produce — into a Topology. n is interpreted per family
// (side² for grids and lines of stars, nearest power of two for hypercubes);
// deg only matters for the regular and scalefree families. Names are
// case-insensitive; see TopologyNames.
func BuildTopology(name string, n, deg int, seed uint64) (Topology, error) {
	switch strings.ToLower(name) {
	case "clique":
		return Clique(n), nil
	case "path":
		return Path(n), nil
	case "cycle":
		return Cycle(n), nil
	case "star":
		return Star(n), nil
	case "lineofstars":
		side := intSqrt(n)
		return SqrtLineOfStars(side), nil
	case "ringofcliques":
		if n < 24 {
			return Topology{}, fmt.Errorf("mobiletel: ringofcliques needs n >= 24")
		}
		return RingOfCliques(n/8, 8), nil
	case "regular":
		return RandomRegular(n, deg, seed), nil
	case "er":
		return ErdosRenyi(n, 4.0/float64(n)*logf(n), seed), nil
	case "grid":
		side := intSqrt(n)
		return Grid(side, side), nil
	case "torus":
		side := intSqrt(n)
		return Torus(side, side), nil
	case "expander":
		d := deg
		if d < 4 {
			d = 4
		}
		d &^= 1 // Expander needs even degree
		return Expander(n, d, seed), nil
	case "hypercube":
		d := 0
		for (1 << (d + 1)) <= n {
			d++
		}
		return Hypercube(d), nil
	case "barbell":
		return Barbell(n / 2), nil
	case "scalefree":
		return BarabasiAlbert(n, deg/2+1, seed), nil
	default:
		return Topology{}, fmt.Errorf("mobiletel: unknown topology %q (want %s)", name, TopologyNames)
	}
}

// BuildSchedule interprets a (name, tau, seed) tuple into a Schedule over
// the given topology. Names are case-insensitive; see ScheduleNames.
func BuildSchedule(name string, topo Topology, tau int, seed uint64) (Schedule, error) {
	switch strings.ToLower(name) {
	case "static":
		return Static(topo), nil
	case "permuted":
		return Permuted(topo, tau, seed), nil
	case "churn":
		return Churn(topo, tau, topo.N()/4, seed), nil
	case "waypoint":
		return Waypoint(topo.N(), 0.3, 0.05, tau, seed), nil
	default:
		return Schedule{}, fmt.Errorf("mobiletel: unknown schedule %q (want %s)", name, ScheduleNames)
	}
}

// intSqrt returns ⌊√n⌋.
func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// logf returns ⌈log₂ n⌉ as float64 (edge-density heuristic for ER graphs).
func logf(n int) float64 {
	l := 0.0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l
}
