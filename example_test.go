package mobiletel_test

// Runnable godoc examples for the public API. Outputs are deterministic
// because every execution is a pure function of its seed.

import (
	"fmt"

	"mobiletel"
)

func ExampleElectLeader() {
	topo := mobiletel.Clique(16)
	res, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.BlindGossip,
		mobiletel.Options{Seed: 1, UIDs: []uint64{16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}})
	if err != nil {
		panic(err)
	}
	fmt.Println("leader:", res.Leader)
	// Output: leader: 1
}

func ExampleElectLeader_dynamicTopology() {
	// The topology reshuffles every 2 rounds (stability factor τ = 2); the
	// algorithms need no knowledge of τ.
	topo := mobiletel.RingOfCliques(4, 8)
	sched := mobiletel.Permuted(topo, 2, 99)
	res, err := mobiletel.ElectLeader(sched, mobiletel.BitConv, mobiletel.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("stabilized:", res.Rounds > 0)
	// Output: stabilized: true
}

func ExampleSpreadRumor() {
	topo := mobiletel.Cycle(12)
	res, err := mobiletel.SpreadRumor(mobiletel.Static(topo), mobiletel.PushPull, []int{0},
		mobiletel.Options{Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("everyone informed:", res.Rounds > 0)
	// Output: everyone informed: true
}

func ExampleDecide() {
	topo := mobiletel.Clique(8)
	proposals := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	res, err := mobiletel.Decide(mobiletel.Static(topo), proposals, mobiletel.Options{Seed: 4})
	if err != nil {
		panic(err)
	}
	// Validity: the decision is one of the proposals.
	valid := false
	for _, p := range proposals {
		if p == res.Value {
			valid = true
		}
	}
	fmt.Println("valid decision:", valid)
	// Output: valid decision: true
}

func ExampleAggregate() {
	topo := mobiletel.Clique(10)
	inputs := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	res, err := mobiletel.Aggregate(mobiletel.Static(topo), mobiletel.Min, inputs, 0, mobiletel.Options{Seed: 5})
	if err != nil {
		panic(err)
	}
	fmt.Println("min everywhere:", res.Estimates[0], res.Estimates[9])
	// Output: min everywhere: 0 0
}

func ExampleTopology() {
	topo := mobiletel.SqrtLineOfStars(4)
	fmt.Printf("%s: n=%d Δ=%d α exact=%v\n", topo.Name(), topo.N(), topo.MaxDegree(), topo.AlphaExact())
	// Output: sqrt-line-of-stars: n=20 Δ=6 α exact=true
}

func ExampleExperiments() {
	for _, info := range mobiletel.Experiments()[:3] {
		fmt.Println(info.ID)
	}
	// Output:
	// A1-ablation-grouplen
	// A2-ablation-tagbits
	// A3-ablation-accept
}

func ExampleRunSweep() {
	topo := mobiletel.Clique(16)
	rows, err := mobiletel.RunSweep([]string{"static", "permuted"}, 3, 1,
		func(label string, seed uint64) (int, error) {
			sched := mobiletel.Static(topo)
			if label == "permuted" {
				sched = mobiletel.Permuted(topo, 2, seed)
			}
			res, err := mobiletel.ElectLeader(sched, mobiletel.BlindGossip,
				mobiletel.Options{Seed: seed})
			return res.Rounds, err
		})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(rows), "rows;", rows[0].Label, "trials:", rows[0].Trials)
	// Output: 2 rows; static trials: 3
}
