# Local entry points mirror CI (.github/workflows/ci.yml) exactly:
# `make check` locally runs what CI runs on every push/PR.

GO ?= go

.PHONY: build vet test race race-smoke lint lint-baseline baseline-check check bench bench-smoke trace-smoke fault-smoke fault-par-smoke prof-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

# race-smoke mirrors the CI race-smoke job: the concurrency-heavy tests
# (parallel round loop, worker fan-out, parallel accept/bucketing and its
# cross-worker conformance suite — forced pool and spawn dispatch columns
# included, the persistent-pool rapid-dispatch and close-cycle stresses,
# the million-node scale round — faulted expander column included, fault
# injection inside the parallel phase bodies, and the chaos soak) under the
# race detector, without -short. This is the dynamic backstop for the
# happensbefore analyzer's documented static boundaries (untraceable
# pointers, receiver-method bodies, the scatter-cursor idiom whose
# disjointness rests on the sequential prefix merge, the frozen-for-the-
# round fault mask reads, and the epoch-publish proof's single-dispatcher
# and constructor-before-spawn assumptions).
race-smoke:
	$(GO) test -race -timeout 20m ./internal/sim ./internal/fault -run 'Parallel|Workers|Fault|Chaos|Pool'

lint:
	$(GO) run ./cmd/mtmlint ./...

# lint-baseline regenerates the committed JSON baseline that CI diffs
# mtmlint output against; commit the result when a finding is knowingly
# introduced or retired.
lint-baseline:
	$(GO) run ./cmd/mtmlint -json ./... > lint_baseline.json || true

# baseline-check fails when mtmlint -json output drifts from the
# committed lint_baseline.json (new findings AND silently fixed ones both
# count: regenerate deliberately with make lint-baseline).
baseline-check:
	$(GO) run ./cmd/mtmlint -json ./... > /tmp/mtmlint-now.json || true
	cmp lint_baseline.json /tmp/mtmlint-now.json

check: build vet test race lint baseline-check

# bench records a fresh full-suite BENCH_local.json (see README "Performance").
bench:
	$(GO) run ./cmd/mtmbench -label local

# bench-smoke mirrors the CI job: run the quick subset and fail on
# regressions against the committed baseline (allocs are the cross-host
# signal; ns/op only trips on catastrophic slowdowns).
bench-smoke:
	$(GO) run ./cmd/mtmbench -quick -label smoke -out - -compare BENCH_seed.json

# fault-smoke mirrors the CI fault-smoke job, the crash-safe harness
# contract end to end: (1) a checkpointed sweep killed mid-run (-die-after)
# and resumed must render the byte-identical CSV of an uninterrupted run;
# (2) two recordings under the same fault plan must be byte-identical —
# fault injection is as deterministic as the fault-free engine.
fault-smoke:
	rm -rf /tmp/mtm-fault-smoke && mkdir -p /tmp/mtm-fault-smoke
	$(GO) build -o /tmp/mtm-fault-smoke/mtmexp ./cmd/mtmexp
	/tmp/mtm-fault-smoke/mtmexp -run R2-corruption-recovery -quick -trials 2 -csv > /tmp/mtm-fault-smoke/baseline.csv
	/tmp/mtm-fault-smoke/mtmexp -run R2-corruption-recovery -quick -trials 2 -csv -checkpoint /tmp/mtm-fault-smoke/ck -die-after 2 > /dev/null 2>&1; \
	  test $$? -eq 3 || { echo "fault-smoke: -die-after run did not exit 3" >&2; exit 1; }
	/tmp/mtm-fault-smoke/mtmexp -run R2-corruption-recovery -quick -trials 2 -csv -checkpoint /tmp/mtm-fault-smoke/ck > /tmp/mtm-fault-smoke/resumed.csv
	cmp /tmp/mtm-fault-smoke/baseline.csv /tmp/mtm-fault-smoke/resumed.csv
	$(GO) run ./cmd/mtmtrace record -topo regular -n 64 -deg 8 -algo blindgossip -proposal-loss 0.3 -conn-loss 0.2 -tagflip-rate 0.05 -seed 11 -o /tmp/mtm-fault-smoke/a.jsonl
	$(GO) run ./cmd/mtmtrace record -topo regular -n 64 -deg 8 -algo blindgossip -proposal-loss 0.3 -conn-loss 0.2 -tagflip-rate 0.05 -seed 11 -o /tmp/mtm-fault-smoke/b.jsonl
	$(GO) run ./cmd/mtmtrace diff /tmp/mtm-fault-smoke/a.jsonl /tmp/mtm-fault-smoke/b.jsonl
	$(GO) run ./cmd/mtmtrace summary /tmp/mtm-fault-smoke/a.jsonl

# trace-smoke mirrors the CI obs-smoke job: record the same run twice and
# require byte-identical traces — executions (and their event streams) are
# pure functions of (seed, schedule, protocol, config), so any diff output
# here is a determinism regression.
trace-smoke:
	$(GO) run ./cmd/mtmtrace record -topo regular -n 64 -deg 8 -algo blindgossip -seed 7 -o /tmp/mtmtrace-smoke-a.jsonl
	$(GO) run ./cmd/mtmtrace record -topo regular -n 64 -deg 8 -algo blindgossip -seed 7 -o /tmp/mtmtrace-smoke-b.jsonl
	$(GO) run ./cmd/mtmtrace diff /tmp/mtmtrace-smoke-a.jsonl /tmp/mtmtrace-smoke-b.jsonl
	$(GO) run ./cmd/mtmtrace summary /tmp/mtmtrace-smoke-a.jsonl

# fault-par-smoke mirrors the CI fault-par-smoke job: faulted runs ride the
# parallel round core, so a faulted, partitioned, invariant-audited trace at
# 8 workers must be byte-identical to the sequential one — node-addressed
# fault draws are pure functions of (plan seed, kind, node, round) and never
# depend on visit order. Pins both a small leader election (every fault kind
# plus a scheduled partition) and a large 65536-node case.
fault-par-smoke:
	rm -rf /tmp/mtm-fault-par && mkdir -p /tmp/mtm-fault-par
	$(GO) build -o /tmp/mtm-fault-par/mtmtrace ./cmd/mtmtrace
	/tmp/mtm-fault-par/mtmtrace record -topo regular -n 512 -deg 8 -algo blindgossip -workers 1 -max-rounds 100000 -crash-rate 0.005 -recover-rate 0.3 -proposal-loss 0.05 -conn-loss 0.03 -tagflip-rate 0.02 -partition 5:25:2 -seed 9 -o /tmp/mtm-fault-par/small-w1.jsonl
	/tmp/mtm-fault-par/mtmtrace record -topo regular -n 512 -deg 8 -algo blindgossip -workers 8 -max-rounds 100000 -crash-rate 0.005 -recover-rate 0.3 -proposal-loss 0.05 -conn-loss 0.03 -tagflip-rate 0.02 -partition 5:25:2 -seed 9 -o /tmp/mtm-fault-par/small-w8.jsonl
	/tmp/mtm-fault-par/mtmtrace diff /tmp/mtm-fault-par/small-w1.jsonl /tmp/mtm-fault-par/small-w8.jsonl
	/tmp/mtm-fault-par/mtmtrace record -topo expander -n 65536 -rumor pushpull -workers 1 -sample 2 -types connect,transition -proposal-loss 0.02 -conn-loss 0.01 -partition 2:6:2 -seed 7 -o /tmp/mtm-fault-par/big-w1.jsonl
	/tmp/mtm-fault-par/mtmtrace record -topo expander -n 65536 -rumor pushpull -workers 8 -sample 2 -types connect,transition -proposal-loss 0.02 -conn-loss 0.01 -partition 2:6:2 -seed 7 -o /tmp/mtm-fault-par/big-w8.jsonl
	/tmp/mtm-fault-par/mtmtrace diff /tmp/mtm-fault-par/big-w1.jsonl /tmp/mtm-fault-par/big-w8.jsonl
	/tmp/mtm-fault-par/mtmtrace summary /tmp/mtm-fault-par/small-w8.jsonl

# prof-smoke mirrors the CI prof-smoke job, the scale-safe observability
# contract end to end: (1) the same sampled, type-filtered parallel record
# at 1 and 8 workers must diff clean — per-worker buffered emission flushed
# in chunk order reproduces the sequential event order byte for byte;
# (2) a profiled parallel run must render an mtmprof/v1 phase table.
prof-smoke:
	rm -rf /tmp/mtm-prof-smoke && mkdir -p /tmp/mtm-prof-smoke
	$(GO) build -o /tmp/mtm-prof-smoke/mtmtrace ./cmd/mtmtrace
	/tmp/mtm-prof-smoke/mtmtrace record -topo expander -n 65536 -rumor pushpull -workers 1 -sample 4 -types connect,transition -seed 7 -o /tmp/mtm-prof-smoke/w1.jsonl
	/tmp/mtm-prof-smoke/mtmtrace record -topo expander -n 65536 -rumor pushpull -workers 8 -sample 4 -types connect,transition -seed 7 -o /tmp/mtm-prof-smoke/w8.jsonl
	/tmp/mtm-prof-smoke/mtmtrace diff /tmp/mtm-prof-smoke/w1.jsonl /tmp/mtm-prof-smoke/w8.jsonl
	/tmp/mtm-prof-smoke/mtmtrace summary /tmp/mtm-prof-smoke/w8.jsonl
	$(GO) run ./cmd/mtmsim -topo expander -n 65536 -workers 8 -phase-prof /tmp/mtm-prof-smoke/run.prof.json
	/tmp/mtm-prof-smoke/mtmtrace prof /tmp/mtm-prof-smoke/run.prof.json
