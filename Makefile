# Local entry points mirror CI (.github/workflows/ci.yml) exactly:
# `make check` locally runs what CI runs on every push/PR.

GO ?= go

.PHONY: build vet test race lint check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

lint:
	$(GO) run ./cmd/mtmlint ./...

check: build vet test race lint
