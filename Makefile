# Local entry points mirror CI (.github/workflows/ci.yml) exactly:
# `make check` locally runs what CI runs on every push/PR.

GO ?= go

.PHONY: build vet test race lint check bench bench-smoke trace-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

lint:
	$(GO) run ./cmd/mtmlint ./...

check: build vet test race lint

# bench records a fresh full-suite BENCH_local.json (see README "Performance").
bench:
	$(GO) run ./cmd/mtmbench -label local

# bench-smoke mirrors the CI job: run the quick subset and fail on
# regressions against the committed baseline (allocs are the cross-host
# signal; ns/op only trips on catastrophic slowdowns).
bench-smoke:
	$(GO) run ./cmd/mtmbench -quick -label smoke -out - -compare BENCH_seed.json

# trace-smoke mirrors the CI obs-smoke job: record the same run twice and
# require byte-identical traces — executions (and their event streams) are
# pure functions of (seed, schedule, protocol, config), so any diff output
# here is a determinism regression.
trace-smoke:
	$(GO) run ./cmd/mtmtrace record -topo regular -n 64 -deg 8 -algo blindgossip -seed 7 -o /tmp/mtmtrace-smoke-a.jsonl
	$(GO) run ./cmd/mtmtrace record -topo regular -n 64 -deg 8 -algo blindgossip -seed 7 -o /tmp/mtmtrace-smoke-b.jsonl
	$(GO) run ./cmd/mtmtrace diff /tmp/mtmtrace-smoke-a.jsonl /tmp/mtmtrace-smoke-b.jsonl
	$(GO) run ./cmd/mtmtrace summary /tmp/mtmtrace-smoke-a.jsonl
