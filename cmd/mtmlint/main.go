// Command mtmlint runs the repository's determinism and concurrency
// static-analysis suite (internal/lint) over package patterns.
//
// Usage:
//
//	mtmlint [flags] [patterns...]
//
// Patterns default to ./... and follow go-tool conventions (a directory,
// or a directory followed by /... for its subtree). Exit status is 0 when
// clean, 1 when findings are reported, and 2 on load or usage errors.
//
// Flags:
//
//	-json            emit findings as a JSON array
//	-explain         print each finding's def-use chain (why the analyzer
//	                 could not prove the access safe)
//	-list            list analyzers and exit
//	-enable  a,b     run only the named analyzers
//	-disable a,b     run all but the named analyzers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mobiletel/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("mtmlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	explain := fs.Bool("explain", false, "print each finding's def-use chain")
	list := fs.Bool("list", false, "list analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtmlint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtmlint:", err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtmlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtmlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtmlint:", err)
		return 2
	}
	broken := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "mtmlint: %s: %v\n", pkg.Path, e)
			broken++
		}
	}
	if broken > 0 {
		return 2
	}

	findings := lint.Run(loader, pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "mtmlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stdout, f.String())
			if *explain {
				for _, step := range f.Explain {
					fmt.Fprintf(os.Stdout, "\t%s\n", step)
				}
			}
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "mtmlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	if enable != "" {
		var out []*lint.Analyzer
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			a := lint.Lookup(name)
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			out = append(out, a)
		}
		return out, nil
	}
	skip := make(map[string]bool)
	if disable != "" {
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if lint.Lookup(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			skip[name] = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if !skip[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
