// Command mtmexp regenerates the reproduction experiments: every theorem
// and construction in the paper has a registered experiment that prints a
// table (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Examples:
//
//	mtmexp -list
//	mtmexp -run E1-blindgossip-scaling
//	mtmexp -run all -quick
//	mtmexp -run E4-lemma-v1-gamma -csv > e4.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mobiletel"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list registered experiments and exit")
		run    = flag.String("run", "", "experiment ID to run, or 'all'")
		seed   = flag.Uint64("seed", 20170529, "random seed")
		trials = flag.Int("trials", 0, "trials per data point (0 = experiment default)")
		quick  = flag.Bool("quick", false, "reduced problem sizes")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir = flag.String("out", "", "also write each experiment's CSV into this directory")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("Registered experiments (run with -run <ID> or -run all):")
		for _, info := range mobiletel.Experiments() {
			fmt.Printf("\n  %s\n      %s\n", info.ID, info.Claim)
		}
		return
	}

	opts := mobiletel.ExperimentOptions{Seed: *seed, Trials: *trials, Quick: *quick, CSV: *csv}

	ids := []string{*run}
	if *run == "all" {
		ids = ids[:0]
		for _, info := range mobiletel.Experiments() {
			ids = append(ids, info.ID)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mtmexp:", err)
			os.Exit(1)
		}
	}

	failed := 0
	for _, id := range ids {
		start := time.Now()
		out, err := mobiletel.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtmexp: %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(out)
		if !*csv {
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
		if *outDir != "" {
			csvOpts := opts
			csvOpts.CSV = true
			csvOut, err := mobiletel.RunExperiment(id, csvOpts)
			if err == nil {
				path := filepath.Join(*outDir, id+".csv")
				if werr := os.WriteFile(path, []byte(csvOut), 0o644); werr != nil {
					fmt.Fprintf(os.Stderr, "mtmexp: writing %s: %v\n", path, werr)
					failed++
				}
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
