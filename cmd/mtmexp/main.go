// Command mtmexp regenerates the reproduction experiments: every theorem
// and construction in the paper has a registered experiment that prints a
// table (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Examples:
//
//	mtmexp -list
//	mtmexp -run E1-blindgossip-scaling
//	mtmexp -run all -quick
//	mtmexp -run E4-lemma-v1-gamma -csv > e4.csv
//	mtmexp -run E1-blindgossip-scaling -cpuprofile cpu.out -bench-json times.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"mobiletel"
	"mobiletel/internal/atomicwrite"
	"mobiletel/internal/prof"
)

// benchEntry is one experiment's wall-clock record in the -bench-json file.
type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	OK      bool    `json:"ok"`
}

// benchFile is the -bench-json layout.
type benchFile struct {
	Schema      string       `json:"schema"`
	Quick       bool         `json:"quick"`
	Seed        uint64       `json:"seed"`
	Experiments []benchEntry `json:"experiments"`
}

// defaultCheckpointDir is where -resume looks for checkpoints when
// -checkpoint does not name a directory explicitly.
const defaultCheckpointDir = ".mtmexp-checkpoint"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtmexp:", err)
		if errors.Is(err, mobiletel.ErrInterrupted) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run() error {
	var (
		list       = flag.Bool("list", false, "list registered experiments and exit")
		runID      = flag.String("run", "", "experiment ID to run, or 'all'")
		seed       = flag.Uint64("seed", 20170529, "random seed")
		trials     = flag.Int("trials", 0, "trials per data point (0 = experiment default)")
		quick      = flag.Bool("quick", false, "reduced problem sizes")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir     = flag.String("out", "", "also write each experiment's CSV into this directory")
		progress   = flag.Bool("progress", false, "report live trial progress (completed/total, elapsed, ETA) to stderr")
		traceDir   = flag.String("trace", "", "write each experiment's first-trial JSONL event trace (mtmtrace/v1) into this directory")
		metricsDir = flag.String("metrics", "", "write each experiment's first-trial JSON metrics summary into this directory")
		profDir    = flag.String("phase-prof", "", "write each experiment's first-trial JSON phase-timing report (mtmprof/v1) into this directory; with -progress, progress lines show the hottest phases")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchJSON  = flag.String("bench-json", "", "write per-experiment wall-clock timings as JSON to this file")
		checkpoint = flag.String("checkpoint", "", "checkpoint completed trials into this directory; reruns with the same seed/trials/quick resume from them")
		resume     = flag.Bool("resume", false, "resume from checkpoints (shorthand for -checkpoint "+defaultCheckpointDir+" when -checkpoint is unset)")
		dieAfter   = flag.Int("die-after", 0, "kill the process (exit 3) after N newly checkpointed trials; testing hook for -resume")
	)
	flag.Parse()

	if *resume && *checkpoint == "" {
		*checkpoint = defaultCheckpointDir
	}
	if *dieAfter > 0 && *checkpoint == "" {
		return errors.New("-die-after requires -checkpoint (or -resume)")
	}

	if *list || *runID == "" {
		fmt.Println("Registered experiments (run with -run <ID> or -run all):")
		for _, info := range mobiletel.Experiments() {
			fmt.Printf("\n  %s\n      %s\n", info.ID, info.Claim)
		}
		return nil
	}

	if *cpuprofile != "" {
		stop, err := prof.StartCPU(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "mtmexp:", err)
			}
		}()
	}

	opts := mobiletel.ExperimentOptions{
		Seed: *seed, Trials: *trials, Quick: *quick, CSV: *csv,
		CheckpointDir: *checkpoint, DieAfter: *dieAfter,
	}
	if *progress {
		opts.Progress = os.Stderr
	}

	// First ^C drains gracefully: in-flight trials finish (and checkpoint),
	// then the sweep aborts with ErrInterrupted. A second ^C kills the
	// process immediately.
	interrupt := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "mtmexp: interrupt — draining in-flight trials (^C again to kill immediately)")
		close(interrupt)
		<-sigs
		os.Exit(130)
	}()
	opts.Interrupt = interrupt

	ids := []string{*runID}
	if *runID == "all" {
		ids = ids[:0]
		for _, info := range mobiletel.Experiments() {
			ids = append(ids, info.ID)
		}
	}

	for _, dir := range []string{*outDir, *traceDir, *metricsDir, *profDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}

	bench := benchFile{Schema: "mtmexp-bench/v1", Quick: *quick, Seed: *seed}
	failed := 0
	for _, id := range ids {
		runOpts := opts
		var sinkFiles []*atomicwrite.File
		for _, sink := range []struct {
			dir    string
			suffix string
			dst    *io.Writer
		}{
			{*traceDir, ".trace.jsonl", &runOpts.TraceTo},
			{*metricsDir, ".metrics.json", &runOpts.MetricsTo},
			{*profDir, ".prof.json", &runOpts.PhaseProfTo},
		} {
			if sink.dir == "" {
				continue
			}
			f, err := atomicwrite.Create(filepath.Join(sink.dir, id+sink.suffix))
			if err != nil {
				return err
			}
			sinkFiles = append(sinkFiles, f)
			*sink.dst = f
		}
		start := time.Now()
		out, err := mobiletel.RunExperiment(id, runOpts)
		elapsed := time.Since(start).Seconds()
		// Sink files publish atomically on success; a failed experiment
		// aborts them so no torn trace/metrics file is left behind.
		for _, f := range sinkFiles {
			op, ferr := "committing", error(nil)
			if err != nil {
				op, ferr = "closing", f.Close()
			} else {
				ferr = f.Commit()
			}
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "mtmexp: %s %s: %v\n", op, f.Name(), ferr)
				failed++
			}
		}
		bench.Experiments = append(bench.Experiments, benchEntry{ID: id, Seconds: elapsed, OK: err == nil})
		if errors.Is(err, mobiletel.ErrInterrupted) {
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "mtmexp: %s interrupted; completed trials are checkpointed — rerun with -resume to continue\n", id)
			} else {
				fmt.Fprintf(os.Stderr, "mtmexp: %s interrupted; rerun with -checkpoint DIR (or -resume) to make sweeps resumable\n", id)
			}
			return err
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtmexp: %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(out)
		if !*csv {
			fmt.Printf("(%s in %.1fs)\n\n", id, elapsed)
		}
		if *outDir != "" {
			csvOpts := opts
			csvOpts.CSV = true
			csvOut, err := mobiletel.RunExperiment(id, csvOpts)
			if err == nil {
				path := filepath.Join(*outDir, id+".csv")
				if werr := atomicwrite.WriteFile(path, []byte(csvOut), 0o644); werr != nil {
					fmt.Fprintf(os.Stderr, "mtmexp: writing %s: %v\n", path, werr)
					failed++
				}
			}
		}
	}

	if *benchJSON != "" {
		data, err := json.MarshalIndent(&bench, "", "  ")
		if err != nil {
			return err
		}
		if err := atomicwrite.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *memprofile != "" {
		if err := prof.WriteHeap(*memprofile); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
