// Command mtmexp regenerates the reproduction experiments: every theorem
// and construction in the paper has a registered experiment that prints a
// table (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Examples:
//
//	mtmexp -list
//	mtmexp -run E1-blindgossip-scaling
//	mtmexp -run all -quick
//	mtmexp -run E4-lemma-v1-gamma -csv > e4.csv
//	mtmexp -run E1-blindgossip-scaling -cpuprofile cpu.out -bench-json times.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mobiletel"
	"mobiletel/internal/prof"
)

// benchEntry is one experiment's wall-clock record in the -bench-json file.
type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	OK      bool    `json:"ok"`
}

// benchFile is the -bench-json layout.
type benchFile struct {
	Schema      string       `json:"schema"`
	Quick       bool         `json:"quick"`
	Seed        uint64       `json:"seed"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtmexp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list       = flag.Bool("list", false, "list registered experiments and exit")
		runID      = flag.String("run", "", "experiment ID to run, or 'all'")
		seed       = flag.Uint64("seed", 20170529, "random seed")
		trials     = flag.Int("trials", 0, "trials per data point (0 = experiment default)")
		quick      = flag.Bool("quick", false, "reduced problem sizes")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir     = flag.String("out", "", "also write each experiment's CSV into this directory")
		progress   = flag.Bool("progress", false, "report live trial progress (completed/total, elapsed, ETA) to stderr")
		traceDir   = flag.String("trace", "", "write each experiment's first-trial JSONL event trace (mtmtrace/v1) into this directory")
		metricsDir = flag.String("metrics", "", "write each experiment's first-trial JSON metrics summary into this directory")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchJSON  = flag.String("bench-json", "", "write per-experiment wall-clock timings as JSON to this file")
	)
	flag.Parse()

	if *list || *runID == "" {
		fmt.Println("Registered experiments (run with -run <ID> or -run all):")
		for _, info := range mobiletel.Experiments() {
			fmt.Printf("\n  %s\n      %s\n", info.ID, info.Claim)
		}
		return nil
	}

	if *cpuprofile != "" {
		stop, err := prof.StartCPU(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "mtmexp:", err)
			}
		}()
	}

	opts := mobiletel.ExperimentOptions{Seed: *seed, Trials: *trials, Quick: *quick, CSV: *csv}
	if *progress {
		opts.Progress = os.Stderr
	}

	ids := []string{*runID}
	if *runID == "all" {
		ids = ids[:0]
		for _, info := range mobiletel.Experiments() {
			ids = append(ids, info.ID)
		}
	}

	for _, dir := range []string{*outDir, *traceDir, *metricsDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}

	bench := benchFile{Schema: "mtmexp-bench/v1", Quick: *quick, Seed: *seed}
	failed := 0
	for _, id := range ids {
		runOpts := opts
		var sinkFiles []*os.File
		for _, sink := range []struct {
			dir    string
			suffix string
			dst    *io.Writer
		}{
			{*traceDir, ".trace.jsonl", &runOpts.TraceTo},
			{*metricsDir, ".metrics.json", &runOpts.MetricsTo},
		} {
			if sink.dir == "" {
				continue
			}
			f, err := os.Create(filepath.Join(sink.dir, id+sink.suffix))
			if err != nil {
				return err
			}
			sinkFiles = append(sinkFiles, f)
			*sink.dst = f
		}
		start := time.Now()
		out, err := mobiletel.RunExperiment(id, runOpts)
		elapsed := time.Since(start).Seconds()
		for _, f := range sinkFiles {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "mtmexp: closing %s: %v\n", f.Name(), cerr)
				failed++
			}
		}
		bench.Experiments = append(bench.Experiments, benchEntry{ID: id, Seconds: elapsed, OK: err == nil})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtmexp: %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(out)
		if !*csv {
			fmt.Printf("(%s in %.1fs)\n\n", id, elapsed)
		}
		if *outDir != "" {
			csvOpts := opts
			csvOpts.CSV = true
			csvOut, err := mobiletel.RunExperiment(id, csvOpts)
			if err == nil {
				path := filepath.Join(*outDir, id+".csv")
				if werr := os.WriteFile(path, []byte(csvOut), 0o644); werr != nil {
					fmt.Fprintf(os.Stderr, "mtmexp: writing %s: %v\n", path, werr)
					failed++
				}
			}
		}
	}

	if *benchJSON != "" {
		data, err := json.MarshalIndent(&bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *memprofile != "" {
		if err := prof.WriteHeap(*memprofile); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
