// Command mtmsim runs a single leader election or rumor spreading
// simulation in the mobile telephone model and reports the outcome.
//
// Examples:
//
//	mtmsim -topo clique -n 256 -algo blindgossip
//	mtmsim -topo lineofstars -n 110 -algo bitconv -schedule permuted -tau 4
//	mtmsim -topo regular -n 512 -deg 8 -rumor ppush
//	mtmsim -topo regular -n 512 -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobiletel"
	"mobiletel/internal/atomicwrite"
	"mobiletel/internal/prof"
	"mobiletel/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtmsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topoName    = flag.String("topo", "regular", "topology: "+mobiletel.TopologyNames)
		n           = flag.Int("n", 128, "number of devices (interpreted per topology)")
		deg         = flag.Int("deg", 8, "degree for -topo regular")
		algoName    = flag.String("algo", "blindgossip", "leader election algorithm: blindgossip|bitconv|asyncbitconv")
		rumorName   = flag.String("rumor", "", "run rumor spreading instead: pushpull|ppush")
		schedName   = flag.String("schedule", "static", "schedule: "+mobiletel.ScheduleNames)
		tau         = flag.Int("tau", 4, "stability factor for dynamic schedules")
		seed        = flag.Uint64("seed", 1, "random seed (runs are deterministic per seed)")
		maxRounds   = flag.Int("max-rounds", 10_000_000, "abort if not stabilized by this round")
		spread      = flag.Int("activation-spread", 0, "stagger activations uniformly over this many rounds (asyncbitconv)")
		verbose     = flag.Bool("v", false, "print topology metadata before running")
		curve       = flag.Bool("curve", false, "print a sparkline of connections per round")
		record      = flag.String("record", "", "write a JSON-lines execution recording to this file")
		traceFile   = flag.String("trace", "", "write a structured JSONL event trace (mtmtrace/v1) to this file")
		metricsFile = flag.String("metrics", "", "write a JSON run-metrics summary (mtmtrace-metrics/v1) to this file")
		phaseProf   = flag.String("phase-prof", "", "write a JSON phase-timing report (mtmprof/v1) to this file")
		workers     = flag.Int("workers", 0, "engine worker count (0 = sequential; results and traces are identical across counts)")
		classical   = flag.Bool("classical", false, "use classical telephone semantics (unbounded incoming connections; baseline, not the paper's model)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")

		crashRate    = flag.Float64("crash-rate", 0, "per-round probability that one up device crashes")
		recoverRate  = flag.Float64("recover-rate", 0, "per-round probability that one down device recovers")
		maxDown      = flag.Int("max-down", 0, "cap on simultaneously crashed devices (0 = n-1)")
		resetRecover = flag.Bool("reset-on-recover", true, "recovering devices restart from their initial protocol state")
		proposalLoss = flag.Float64("proposal-loss", 0, "probability that a sent proposal is dropped")
		connLoss     = flag.Float64("conn-loss", 0, "probability that an accepted connection fails before transfer")
		tagFlipRate  = flag.Float64("tagflip-rate", 0, "probability that an advertised tag has one bit flipped")
		faultSeed    = flag.Uint64("fault-seed", 0, "fault plan seed (0 = derive from -seed)")
		partition    = flag.String("partition", "", "schedule a network partition as start:heal:parts (heal 0 = never; repeatable via commas)")
		check        = flag.Bool("check", false, "audit every round against the engine's safety invariants (debugging aid; panics on violation)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		stop, err := prof.StartCPU(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "mtmsim:", err)
			}
		}()
	}

	topo, err := mobiletel.BuildTopology(*topoName, *n, *deg, *seed)
	if err != nil {
		return err
	}
	sched, err := mobiletel.BuildSchedule(*schedName, topo, *tau, *seed+1)
	if err != nil {
		return err
	}

	if *verbose {
		fmt.Printf("topology: %s n=%d Δ=%d α=%.4g (exact=%v)\n",
			topo.Name(), topo.N(), topo.MaxDegree(), topo.Alpha(), topo.AlphaExact())
		fmt.Printf("schedule: %s τ=%v\n", sched.Name(), sched.Tau())
	}

	partitions, err := mobiletel.ParsePartitions(*partition)
	if err != nil {
		return err
	}
	opts := mobiletel.Options{Seed: *seed + 2, MaxRounds: *maxRounds, Classical: *classical, Workers: *workers, Check: *check}
	if *crashRate > 0 || *recoverRate > 0 || *proposalLoss > 0 || *connLoss > 0 || *tagFlipRate > 0 || len(partitions) > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed + 3
		}
		opts.Faults = &mobiletel.FaultPlan{
			Seed:           fseed,
			CrashRate:      *crashRate,
			RecoverRate:    *recoverRate,
			MaxDown:        *maxDown,
			ResetOnRecover: *resetRecover,
			ProposalLoss:   *proposalLoss,
			ConnLoss:       *connLoss,
			TagFlipRate:    *tagFlipRate,
			Partitions:     partitions,
		}
	}
	var outFiles []*atomicwrite.File
	for _, out := range []struct {
		path string
		dst  *io.Writer
	}{
		{*record, &opts.RecordTo},
		{*traceFile, &opts.TraceTo},
		{*metricsFile, &opts.MetricsTo},
		{*phaseProf, &opts.PhaseProfTo},
	} {
		if out.path == "" {
			continue
		}
		f, err := atomicwrite.Create(out.path)
		if err != nil {
			return err
		}
		// Aborts the write unless committed after a clean run; an abort-path
		// close error cannot lose published data.
		defer func() { _ = f.Close() }()
		outFiles = append(outFiles, f)
		*out.dst = f
	}
	// commitOutputs atomically publishes the recordings once the run has
	// succeeded; a failed run leaves previous files (if any) intact.
	commitOutputs := func() error {
		for _, f := range outFiles {
			if err := f.Commit(); err != nil {
				return err
			}
		}
		return nil
	}
	var connCurve []int
	if *curve {
		opts.OnRound = func(_, connections int) { connCurve = append(connCurve, connections) }
	}
	if *spread > 0 {
		acts := make([]int, topo.N())
		for i := range acts {
			acts[i] = 1 + (i*2654435761)%*spread
		}
		opts.Activations = acts
	}

	if *rumorName != "" {
		strategy := mobiletel.PushPull
		switch *rumorName {
		case "pushpull":
		case "ppush":
			strategy = mobiletel.PPush
		default:
			return fmt.Errorf("unknown rumor strategy %q", *rumorName)
		}
		res, err := mobiletel.SpreadRumor(sched, strategy, []int{0}, opts)
		if err != nil {
			return err
		}
		if err := commitOutputs(); err != nil {
			return err
		}
		fmt.Printf("rumor %s: informed all %d devices in %d rounds (%d connections)\n",
			strategy, topo.N(), res.Rounds, res.Connections)
		printCurve(*curve, connCurve)
		return nil
	}

	algo, err := mobiletel.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	res, err := mobiletel.ElectLeader(sched, algo, opts)
	if err != nil {
		return err
	}
	if err := commitOutputs(); err != nil {
		return err
	}
	fmt.Printf("leader election %s: stabilized to leader %#x in %d rounds (%d connections)\n",
		algo, res.Leader, res.Rounds, res.Connections)
	printCurve(*curve, connCurve)
	return nil
}

// printCurve renders the per-round connection counts as a sparkline.
func printCurve(enabled bool, connCurve []int) {
	if !enabled || len(connCurve) == 0 {
		return
	}
	fmt.Printf("connections/round: %s\n", trace.Sparkline(trace.Downsample(connCurve, 80)))
}
