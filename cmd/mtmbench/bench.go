package main

import (
	"runtime"
	"time"
)

// Benchmark is one entry of the macro suite. Fn executes `iters` operations
// (one election, one rumor run, one simulated round, ... per op) and returns
// the total number of simulated rounds executed, or 0 when rounds are not a
// meaningful unit for the workload (e.g. whole-experiment ops).
type Benchmark struct {
	// Name identifies the benchmark across recordings; -compare matches on
	// it, so renaming a benchmark orphans its history.
	Name string
	// Nodes is the simulated network size (0 when not applicable). Used to
	// derive node-rounds/sec, the engine's true throughput unit.
	Nodes int
	// Quick marks the benchmark as part of the -quick smoke subset.
	Quick bool
	// Workers is the engine worker count the workload runs with (0 means 1,
	// the sequential engine). Recorded per entry so scale-tier sweeps are
	// self-describing and speedups computable from a recording alone.
	Workers int
	// Fn runs iters operations and returns total simulated rounds.
	Fn func(iters int) (rounds int64)
	// Cleanup releases state retained across Fn calls (lazily built engines,
	// shared giant topologies). Called once after the benchmark is measured,
	// so a 1M-node entry does not inflate its successors' memory picture.
	Cleanup func()
}

// Measurement is one benchmark's recorded result. Field names are part of
// the BENCH_*.json schema (see README "Performance"); only add fields.
type Measurement struct {
	Name             string  `json:"name"`
	Nodes            int     `json:"nodes,omitempty"`
	Workers          int     `json:"workers,omitempty"`
	GOMAXPROCS       int     `json:"gomaxprocs,omitempty"`
	Iters            int     `json:"iters"`
	NsPerOp          float64 `json:"ns_per_op"`
	AllocsPerOp      float64 `json:"allocs_per_op"`
	BytesPerOp       float64 `json:"bytes_per_op"`
	RoundsPerSec     float64 `json:"rounds_per_sec,omitempty"`
	NodeRoundsPerSec float64 `json:"node_rounds_per_sec,omitempty"`
}

// measure runs b until the timed loop lasts at least minTime, doubling the
// iteration count like testing.B. Allocation counts come from
// runtime.MemStats deltas, so they are exact and host-independent — the
// regression signal -compare can trust across machines.
func measure(b Benchmark, minTime time.Duration) Measurement {
	b.Fn(1) // warm up: lazy caches, one-time growth
	iters := 1
	for {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		rounds := b.Fn(iters)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)

		if elapsed >= minTime || iters >= 1<<28 {
			ns := float64(elapsed.Nanoseconds()) / float64(iters)
			workers := b.Workers
			if workers == 0 {
				workers = 1
			}
			m := Measurement{
				Name:        b.Name,
				Nodes:       b.Nodes,
				Workers:     workers,
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				Iters:       iters,
				NsPerOp:     ns,
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
				BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
			}
			if rounds > 0 && elapsed > 0 {
				m.RoundsPerSec = float64(rounds) / elapsed.Seconds()
				m.NodeRoundsPerSec = m.RoundsPerSec * float64(b.Nodes)
			}
			return m
		}
		// Predict the iteration count that reaches ~1.2× minTime, bounded by
		// plain doubling so one noisy sample cannot overshoot wildly.
		next := iters * 2
		if elapsed > 0 {
			predicted := int(float64(iters) * 1.2 * float64(minTime) / float64(elapsed))
			if predicted > iters && predicted < next {
				next = predicted
			}
		}
		if next <= iters {
			next = iters + 1
		}
		iters = next
	}
}
