package main

import (
	"fmt"
	"os"

	"mobiletel"
	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/fault"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
)

// suiteSeed is the fixed base seed for all workloads: recordings are only
// comparable when they ran the same per-iteration simulations.
const suiteSeed = 20170529

// iterSeed spreads the iteration index into a well-mixed per-op seed, so
// every op is an independent — but reproducible — simulation.
func iterSeed(i int) uint64 { return uint64(i)*0x9e3779b97f4a7c15 + suiteSeed }

// buildSuite assembles the curated macro suite. Each entry exercises a hot
// path the ROADMAP cares about: full elections across τ regimes (τ=1 is the
// paper's adversarial regime — the schedule rebuilds every round), rumor
// spreading, the steady-state round loop, and whole experiments in quick
// mode.
func buildSuite() []Benchmark {
	mesh := mobiletel.RandomRegular(256, 8, 1)
	stars := mobiletel.SqrtLineOfStars(10) // n = 110, the E2 lower-bound family
	expander := mobiletel.RandomRegular(512, 12, 2)

	var suite []Benchmark

	elect := func(name string, topo mobiletel.Topology, algo mobiletel.Algorithm, tau int, quick bool) {
		suite = append(suite, Benchmark{
			Name:  name,
			Nodes: topo.N(),
			Quick: quick,
			Fn: func(iters int) int64 {
				var rounds int64
				for i := 0; i < iters; i++ {
					seed := iterSeed(i)
					sched := mobiletel.Static(topo)
					if tau > 0 {
						sched = mobiletel.Permuted(topo, tau, seed+1)
					}
					res, err := mobiletel.ElectLeader(sched, algo, mobiletel.Options{Seed: seed, Workers: 1})
					if err != nil {
						fatalf("%s: %v", name, err)
					}
					rounds += int64(res.Rounds)
				}
				return rounds
			},
		})
	}

	rumorBench := func(name string, topo mobiletel.Topology, strategy mobiletel.RumorStrategy, tau int, quick bool) {
		suite = append(suite, Benchmark{
			Name:  name,
			Nodes: topo.N(),
			Quick: quick,
			Fn: func(iters int) int64 {
				var rounds int64
				for i := 0; i < iters; i++ {
					seed := iterSeed(i)
					sched := mobiletel.Static(topo)
					if tau > 0 {
						sched = mobiletel.Permuted(topo, tau, seed+1)
					}
					res, err := mobiletel.SpreadRumor(sched, strategy, []int{0}, mobiletel.Options{Seed: seed, Workers: 1})
					if err != nil {
						fatalf("%s: %v", name, err)
					}
					rounds += int64(res.Rounds)
				}
				return rounds
			},
		})
	}

	elect("elect/blindgossip/mesh256/tau=inf", mesh, mobiletel.BlindGossip, 0, true)
	elect("elect/blindgossip/mesh256/tau=8", mesh, mobiletel.BlindGossip, 8, false)
	elect("elect/blindgossip/mesh256/tau=1", mesh, mobiletel.BlindGossip, 1, false)
	elect("elect/blindgossip/lineofstars110/tau=inf", stars, mobiletel.BlindGossip, 0, false)
	elect("elect/blindgossip/lineofstars110/tau=1", stars, mobiletel.BlindGossip, 1, true)
	elect("elect/bitconv/expander512/tau=8", expander, mobiletel.BitConv, 8, false)
	elect("elect/bitconv/expander512/tau=1", expander, mobiletel.BitConv, 1, false)

	rumorBench("rumor/pushpull/expander512/tau=inf", expander, mobiletel.PushPull, 0, true)
	rumorBench("rumor/ppush/expander512/tau=8", expander, mobiletel.PPush, 8, false)

	suite = append(suite, steadyRoundBench(), steadyRoundTracedBench())
	suite = append(suite, roundsBenches()...)
	suite = append(suite, scaleBenches()...)

	for _, exp := range []struct {
		id    string
		quick bool
	}{
		{"E1-blindgossip-scaling", false},
		{"E4-lemma-v1-gamma", true},
	} {
		exp := exp
		name := "exp/" + exp.id + "/quick"
		suite = append(suite, Benchmark{
			Name:  name,
			Quick: exp.quick,
			Fn: func(iters int) int64 {
				for i := 0; i < iters; i++ {
					if _, err := mobiletel.RunExperiment(exp.id, mobiletel.ExperimentOptions{
						Seed: suiteSeed, Trials: 2, Quick: true,
					}); err != nil {
						fatalf("%s: %v", name, err)
					}
				}
				return 0
			},
		})
	}

	return suite
}

// roundsBenches is the paper-scale round tier: one op = one steady-state
// round at the n the paper's experiments actually use (10³–10⁴ nodes),
// where per-round dispatch overhead — not per-node work — decides whether
// parallelism pays. Each family sweeps the three dispatch cores at w=8
// alongside the w=1 inline baseline: DispatchAuto is what production runs
// get (the pool with its benchmark-derived gate, resolving inline on
// single-P hosts), DispatchPool forces the persistent pool's epoch-publish
// dispatch, and DispatchSpawn forces the historical per-phase
// goroutine-spawning core the pool replaced. A recording therefore carries
// the pool-vs-spawn crossover evidence at both n, and -compare against the
// seed watches the w=8 auto entry for regressions in exactly the regime the
// rework targets.
func roundsBenches() []Benchmark {
	var suite []Benchmark
	for _, nodes := range []int{1 << 10, 1 << 12} {
		nodes := nodes
		label := fmt.Sprintf("expander%d", nodes)
		var shared *gen.Family
		family := func() gen.Family {
			if shared == nil {
				fam := gen.Expander(nodes, 8, suiteSeed)
				shared = &fam
			}
			return *shared
		}
		sweep := []struct {
			suffix   string
			workers  int
			dispatch sim.Dispatch
		}{
			{"w=1", 1, sim.DispatchAuto},
			{"w=8", 8, sim.DispatchAuto},
			{"w=8-pool", 8, sim.DispatchPool},
			{"w=8-spawn", 8, sim.DispatchSpawn},
		}
		for i, sw := range sweep {
			sw := sw
			last := i == len(sweep)-1
			name := fmt.Sprintf("rounds/%s/%s", label, sw.suffix)
			var (
				eng  *sim.Engine
				next = 1
			)
			suite = append(suite, Benchmark{
				Name:  name,
				Nodes: nodes,
				// The production-config entry at the larger n joins the quick
				// subset: CI's compare gate watches the exact configuration
				// the pool rework promises to speed up.
				Quick:   nodes == 1<<12 && sw.suffix == "w=8",
				Workers: sw.workers,
				Fn: func(iters int) int64 {
					if eng == nil {
						fam := family()
						protocols := core.NewBlindGossipNetwork(core.UniqueUIDs(fam.N(), suiteSeed))
						var err error
						eng, err = sim.New(dyngraph.NewStatic(fam), protocols,
							sim.Config{Seed: suiteSeed, Workers: sw.workers, Dispatch: sw.dispatch})
						if err != nil {
							fatalf("rounds bench (%s): %v", name, err)
						}
					}
					eng.RunRounds(next, iters)
					next += iters
					return int64(iters)
				},
				Cleanup: func() {
					if eng != nil {
						eng.Close() // forced-pool entries own parked worker goroutines
						eng = nil
					}
					if last {
						shared = nil
					}
				},
			})
		}
	}
	return suite
}

// scaleBenches is the scale tier: one op = one steady-state round on giant
// topologies (a 2^16-node expander and a 2^20-node torus mesh), swept across
// worker counts 1/2/8 so a recording carries its own parallel-speedup data
// (workers and gomaxprocs are per-entry fields since mtmbench/v2). Each
// family is materialized lazily on first use and shared across its sweep —
// building a million-node graph once, not three times — and every entry
// releases its engine in Cleanup so the tier's working set never stacks up.
// ns/op is host-dependent as always; allocs/op is the portable signal that
// the parallel round core stays out of the allocator at scale.
func scaleBenches() []Benchmark {
	var suite []Benchmark
	families := []struct {
		label  string
		nodes  int
		quick  int  // worker count whose entry joins the -quick subset (0: none)
		traced bool // also sweep a w=8 entry with a ring sink attached
		build  func() gen.Family
	}{
		{"expander65536", 1 << 16, 2, true, func() gen.Family { return gen.Expander(1<<16, 8, suiteSeed) }},
		{"torus1048576", 1 << 20, 0, false, func() gen.Family { return gen.Torus(1024, 1024) }},
	}
	for _, f := range families {
		f := f
		var shared *gen.Family
		family := func() gen.Family {
			if shared == nil {
				fam := f.build()
				shared = &fam
			}
			return *shared
		}
		type sweepEntry struct {
			workers int
			traced  bool
			faulted bool
		}
		sweep := []sweepEntry{{1, false, false}, {2, false, false}, {8, false, false}}
		if f.traced {
			// The traced entry records what buffered parallel emission costs
			// at scale: per-worker buffers plus the chunk-order flush into a
			// ring sink, compared against the untraced w=8 entry beside it.
			sweep = append(sweep, sweepEntry{8, true, false})
			// The faulted entries record what node-addressed fault draws cost
			// inside the parallel phase bodies (a stack-local reseed per
			// queried node), swept across the same worker counts as the
			// fault-free rows so the overhead and its scaling are both in
			// every recording.
			sweep = append(sweep, sweepEntry{1, false, true}, sweepEntry{2, false, true}, sweepEntry{8, false, true})
		}
		for i, sw := range sweep {
			sw := sw
			last := i == len(sweep)-1
			name := fmt.Sprintf("scale/round/%s/w=%d", f.label, sw.workers)
			if sw.traced {
				name += "-traced"
			}
			if sw.faulted {
				name += "-faulted"
			}
			var (
				eng  *sim.Engine
				next = 1
			)
			suite = append(suite, Benchmark{
				Name:  name,
				Nodes: f.nodes,
				// The traced entry joins the quick subset so CI's compare gate
				// watches buffered parallel emission, not just records it.
				Quick:   sw.traced || sw.workers == f.quick,
				Workers: sw.workers,
				Fn: func(iters int) int64 {
					if eng == nil {
						fam := family()
						protocols := core.NewBlindGossipNetwork(core.UniqueUIDs(fam.N(), suiteSeed))
						cfg := sim.Config{Seed: suiteSeed, Workers: sw.workers}
						if sw.traced {
							cfg.Sink = obs.NewRing(1 << 16)
						}
						if sw.faulted {
							in, err := fault.NewInjector(fault.Plan{
								Seed: suiteSeed, CrashRate: 0.001, RecoverRate: 0.2,
								ProposalLoss: 0.02, ConnLoss: 0.01,
							}, fam.N())
							if err != nil {
								fatalf("scale round bench (%s): %v", name, err)
							}
							cfg.Faults = in
						}
						var err error
						eng, err = sim.New(dyngraph.NewStatic(fam), protocols, cfg)
						if err != nil {
							fatalf("scale round bench (%s): %v", name, err)
						}
					}
					eng.RunRounds(next, iters)
					next += iters
					return int64(iters)
				},
				Cleanup: func() {
					eng = nil
					if last {
						shared = nil
					}
				},
			})
		}
	}
	return suite
}

// steadyRoundBench measures one op = one steady-state engine round of blind
// gossip on a static mesh, the regime the round loop must keep allocation-
// free: its allocs_per_op recording is the zero-allocs/round contract.
func steadyRoundBench() Benchmark {
	const n = 256
	var (
		eng  *sim.Engine
		next = 1
	)
	return Benchmark{
		Name:  "steady/blindgossip/mesh256/round",
		Nodes: n,
		Quick: true,
		Fn: func(iters int) int64 {
			if eng == nil {
				fam := gen.RandomRegular(n, 8, 1)
				protocols := core.NewBlindGossipNetwork(core.UniqueUIDs(n, suiteSeed))
				var err error
				eng, err = sim.New(dyngraph.NewStatic(fam), protocols,
					sim.Config{Seed: suiteSeed, Workers: 1})
				if err != nil {
					fatalf("steady round bench: %v", err)
				}
			}
			eng.RunRounds(next, iters)
			next += iters
			return int64(iters)
		},
	}
}

// steadyRoundTracedBench is steadyRoundBench with a ring sink attached: the
// delta against the untraced recording is the cost of *enabled* tracing
// (event construction plus ring writes). Its allocs_per_op must also stay 0
// — once the ring is warm, emission overwrites events in place.
func steadyRoundTracedBench() Benchmark {
	const n = 256
	var (
		eng  *sim.Engine
		next = 1
	)
	return Benchmark{
		Name:  "steady/blindgossip/mesh256/round-traced",
		Nodes: n,
		Quick: true,
		Fn: func(iters int) int64 {
			if eng == nil {
				fam := gen.RandomRegular(n, 8, 1)
				protocols := core.NewBlindGossipNetwork(core.UniqueUIDs(n, suiteSeed))
				var err error
				eng, err = sim.New(dyngraph.NewStatic(fam), protocols,
					sim.Config{Seed: suiteSeed, Workers: 1, Sink: obs.NewRing(1 << 12)})
				if err != nil {
					fatalf("steady traced round bench: %v", err)
				}
			}
			eng.RunRounds(next, iters)
			next += iters
			return int64(iters)
		},
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mtmbench: "+format+"\n", args...)
	os.Exit(1)
}
