package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"mobiletel/internal/atomicwrite"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump only on
// incompatible changes; -compare refuses mismatched schemas rather than
// silently comparing different shapes.
const SchemaVersion = "mtmbench/v2"

// compatSchemas are older layouts this binary still reads: v2 only added
// per-entry fields (workers, gomaxprocs), so a v1 baseline decodes cleanly
// with those fields zero and stays comparable by name.
var compatSchemas = map[string]bool{"mtmbench/v1": true}

// Recording is the full contents of a BENCH_<label>.json file.
type Recording struct {
	Schema     string        `json:"schema"`
	Label      string        `json:"label"`
	Created    string        `json:"created"`
	Quick      bool          `json:"quick"`
	BenchTime  string        `json:"bench_time"`
	Host       Host          `json:"host"`
	Benchmarks []Measurement `json:"benchmarks"`
}

// Host captures where a recording was made. ns/op is only comparable
// between recordings from similar hosts; allocs/op is comparable anywhere.
type Host struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// ReadRecording loads and schema-checks a recording.
func ReadRecording(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Recording
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != SchemaVersion && !compatSchemas[r.Schema] {
		return nil, fmt.Errorf("%s: schema %q, this binary speaks %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// WriteRecording atomically writes a recording as indented JSON, so an
// interrupted -record never leaves a torn baseline for later -compare runs.
func WriteRecording(path string, r *Recording) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return atomicwrite.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareOptions tunes regression detection.
type CompareOptions struct {
	// NsThreshold is the tolerated fractional ns/op growth (0.5 = +50%).
	// Wall-clock is noisy across hosts and CI neighbors, so the default is
	// deliberately loose: it catches catastrophic slowdowns, while allocs
	// carry the precise cross-host signal.
	NsThreshold float64
	// AllocThreshold is the tolerated fractional allocs/op growth. Alloc
	// counts are deterministic for this suite (fixed seeds, Workers=1), so
	// this can be tight.
	AllocThreshold float64
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name                 string
	OldNs, NewNs         float64
	OldAllocs, NewAllocs float64
	Speedup              float64 // OldNs / NewNs; > 1 is faster
	Regressed            bool
	Reason               string
}

// Compare matches benchmarks by name and flags regressions beyond the
// thresholds. Benchmarks present in only one recording are skipped (the
// suite may grow or be filtered by -run).
func Compare(old, new *Recording, opts CompareOptions) (deltas []Delta, regressions int) {
	oldByName := make(map[string]Measurement, len(old.Benchmarks))
	for _, m := range old.Benchmarks {
		oldByName[m.Name] = m
	}
	for _, n := range new.Benchmarks {
		o, ok := oldByName[n.Name]
		if !ok {
			continue
		}
		d := Delta{
			Name:      n.Name,
			OldNs:     o.NsPerOp,
			NewNs:     n.NsPerOp,
			OldAllocs: o.AllocsPerOp,
			NewAllocs: n.AllocsPerOp,
		}
		if n.NsPerOp > 0 {
			d.Speedup = o.NsPerOp / n.NsPerOp
		}
		switch {
		case n.NsPerOp > o.NsPerOp*(1+opts.NsThreshold):
			d.Regressed = true
			d.Reason = fmt.Sprintf("ns/op %+.0f%% (limit %+.0f%%)",
				100*(n.NsPerOp/o.NsPerOp-1), 100*opts.NsThreshold)
		case n.AllocsPerOp > o.AllocsPerOp*(1+opts.AllocThreshold)+0.5:
			d.Regressed = true
			d.Reason = fmt.Sprintf("allocs/op %.1f -> %.1f (limit %+.0f%%)",
				o.AllocsPerOp, n.AllocsPerOp, 100*opts.AllocThreshold)
		}
		if d.Regressed {
			regressions++
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, regressions
}

// FormatDeltas renders the comparison as an aligned table.
func FormatDeltas(deltas []Delta) string {
	if len(deltas) == 0 {
		return "no overlapping benchmarks to compare\n"
	}
	nameW := len("benchmark")
	for _, d := range deltas {
		if len(d.Name) > nameW {
			nameW = len(d.Name)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s  %14s  %14s  %8s  %11s  %s\n",
		nameW, "benchmark", "old ns/op", "new ns/op", "speedup", "allocs/op", "status")
	for _, d := range deltas {
		status := "ok"
		if d.Regressed {
			status = "REGRESSION: " + d.Reason
		}
		fmt.Fprintf(&sb, "%-*s  %14.0f  %14.0f  %7.2fx  %5.1f->%-5.1f  %s\n",
			nameW, d.Name, d.OldNs, d.NewNs, d.Speedup, d.OldAllocs, d.NewAllocs, status)
	}
	return sb.String()
}

// FormatRecording renders a recording as an aligned table.
func FormatRecording(r *Recording) string {
	nameW := len("benchmark")
	for _, m := range r.Benchmarks {
		if len(m.Name) > nameW {
			nameW = len(m.Name)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s  %14s  %11s  %12s  %14s\n",
		nameW, "benchmark", "ns/op", "allocs/op", "rounds/sec", "node-rounds/s")
	for _, m := range r.Benchmarks {
		rps, nrps := "-", "-"
		if m.RoundsPerSec > 0 {
			rps = fmt.Sprintf("%.0f", m.RoundsPerSec)
			nrps = fmt.Sprintf("%.0f", m.NodeRoundsPerSec)
		}
		fmt.Fprintf(&sb, "%-*s  %14.0f  %11.1f  %12s  %14s\n",
			nameW, m.Name, m.NsPerOp, m.AllocsPerOp, rps, nrps)
	}
	return sb.String()
}

// suiteNames lists benchmark names, for -list.
func suiteNames(suite []Benchmark) string {
	var sb strings.Builder
	for _, b := range suite {
		marker := " "
		if b.Quick {
			marker = "q"
		}
		fmt.Fprintf(&sb, "  [%s] %s\n", marker, b.Name)
	}
	return sb.String()
}
