// Command mtmbench runs the curated macro benchmark suite and records the
// results as a schema-versioned BENCH_<label>.json, or compares a fresh run
// against a stored baseline and exits non-zero on regressions.
//
// Usage:
//
//	mtmbench -label seed                 # record BENCH_seed.json
//	mtmbench -quick -compare BENCH_seed.json
//	mtmbench -run 'elect/.*tau=1' -list
//
// See the "Performance" section of README.md for the recording workflow and
// the determinism rules perf changes must respect.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"time"
)

func main() {
	var (
		label          = flag.String("label", "local", "recording label; output defaults to BENCH_<label>.json")
		out            = flag.String("out", "", "output path (default BENCH_<label>.json; \"-\" to skip writing)")
		benchTime      = flag.Duration("benchtime", time.Second, "minimum timed duration per benchmark")
		quick          = flag.Bool("quick", false, "run only the quick smoke subset (default benchtime 200ms)")
		runPat         = flag.String("run", "", "only run benchmarks matching this regexp")
		list           = flag.Bool("list", false, "list benchmark names and exit")
		comparePath    = flag.String("compare", "", "baseline BENCH_*.json to compare against; exit 1 on regression")
		nsThreshold    = flag.Float64("threshold", 0.5, "tolerated fractional ns/op growth vs baseline")
		allocThreshold = flag.Float64("alloc-threshold", 0.1, "tolerated fractional allocs/op growth vs baseline")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fatalf("unexpected arguments: %v", flag.Args())
	}

	if *quick && !timeFlagSet() {
		*benchTime = 200 * time.Millisecond
	}

	suite := buildSuite()
	suite = filterSuite(suite, *quick, *runPat)
	if *list {
		fmt.Print(suiteNames(suite))
		return
	}
	if len(suite) == 0 {
		fatalf("no benchmarks selected")
	}

	rec := &Recording{
		Schema:    SchemaVersion,
		Label:     *label,
		Created:   time.Now().UTC().Format(time.RFC3339),
		Quick:     *quick,
		BenchTime: benchTime.String(),
		Host: Host{
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
	for _, b := range suite {
		fmt.Fprintf(os.Stderr, "running %s...\n", b.Name)
		rec.Benchmarks = append(rec.Benchmarks, measure(b, *benchTime))
		if b.Cleanup != nil {
			b.Cleanup()
			runtime.GC()
		}
	}

	fmt.Print(FormatRecording(rec))

	if *out != "-" {
		path := *out
		if path == "" {
			path = "BENCH_" + *label + ".json"
		}
		if err := WriteRecording(path, rec); err != nil {
			fatalf("write recording: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if *comparePath != "" {
		old, err := ReadRecording(*comparePath)
		if err != nil {
			fatalf("read baseline: %v", err)
		}
		deltas, regressions := Compare(old, rec, CompareOptions{
			NsThreshold:    *nsThreshold,
			AllocThreshold: *allocThreshold,
		})
		fmt.Printf("\ncompare vs %s (label %q):\n", *comparePath, old.Label)
		fmt.Print(FormatDeltas(deltas))
		if regressions > 0 {
			fatalf("%d regression(s) vs %s", regressions, *comparePath)
		}
		fmt.Println("no regressions")
	}
}

// timeFlagSet reports whether -benchtime was given explicitly, so -quick can
// lower the default without overriding a user's choice.
func timeFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "benchtime" {
			set = true
		}
	})
	return set
}

// filterSuite applies -quick and -run selection.
func filterSuite(suite []Benchmark, quick bool, pattern string) []Benchmark {
	var re *regexp.Regexp
	if pattern != "" {
		var err error
		re, err = regexp.Compile(pattern)
		if err != nil {
			fatalf("bad -run pattern: %v", err)
		}
	}
	var kept []Benchmark
	for _, b := range suite {
		if quick && !b.Quick {
			continue
		}
		if re != nil && !re.MatchString(b.Name) {
			continue
		}
		kept = append(kept, b)
	}
	return kept
}
