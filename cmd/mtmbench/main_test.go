package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMeasureCountsAllocs(t *testing.T) {
	var sink []byte
	b := Benchmark{
		Name:  "test/alloc",
		Nodes: 4,
		Fn: func(iters int) int64 {
			for i := 0; i < iters; i++ {
				sink = make([]byte, 1024)
			}
			return int64(iters)
		},
	}
	m := measure(b, 5*time.Millisecond)
	_ = sink
	if m.Iters < 1 {
		t.Fatalf("iters = %d, want >= 1", m.Iters)
	}
	if m.AllocsPerOp < 0.9 || m.AllocsPerOp > 1.5 {
		t.Errorf("allocs/op = %v, want ~1", m.AllocsPerOp)
	}
	if m.BytesPerOp < 1024 {
		t.Errorf("bytes/op = %v, want >= 1024", m.BytesPerOp)
	}
	if m.RoundsPerSec <= 0 || m.NodeRoundsPerSec != m.RoundsPerSec*4 {
		t.Errorf("rounds/sec = %v node-rounds/sec = %v", m.RoundsPerSec, m.NodeRoundsPerSec)
	}
}

func TestRecordingRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	rec := &Recording{
		Schema: SchemaVersion,
		Label:  "test",
		Benchmarks: []Measurement{
			{Name: "a", NsPerOp: 100, AllocsPerOp: 2},
		},
	}
	if err := WriteRecording(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecording(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "test" || len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 100 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadRecordingRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := WriteRecording(path, &Recording{Schema: "mtmbench/v999"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecording(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("err = %v, want schema mismatch", err)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := &Recording{Benchmarks: []Measurement{
		{Name: "fast", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "slow", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "leaky", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "removed", NsPerOp: 1},
	}}
	new := &Recording{Benchmarks: []Measurement{
		{Name: "fast", NsPerOp: 400, AllocsPerOp: 10},   // 2.5x speedup
		{Name: "slow", NsPerOp: 2000, AllocsPerOp: 10},  // +100% ns
		{Name: "leaky", NsPerOp: 1000, AllocsPerOp: 20}, // +100% allocs
		{Name: "added", NsPerOp: 1},
	}}
	deltas, regressions := Compare(old, new, CompareOptions{NsThreshold: 0.5, AllocThreshold: 0.1})
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (got %+v)", regressions, deltas)
	}
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3 (unmatched names skipped)", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["fast"]; d.Regressed || d.Speedup < 2.4 || d.Speedup > 2.6 {
		t.Errorf("fast: %+v", d)
	}
	if d := byName["slow"]; !d.Regressed || !strings.Contains(d.Reason, "ns/op") {
		t.Errorf("slow: %+v", d)
	}
	if d := byName["leaky"]; !d.Regressed || !strings.Contains(d.Reason, "allocs/op") {
		t.Errorf("leaky: %+v", d)
	}
}

func TestCompareZeroAllocBaselineIsStrict(t *testing.T) {
	// A zero-alloc baseline must stay zero-alloc: threshold math is
	// multiplicative, so the +0.5 absolute floor is what catches 0 -> 1.
	old := &Recording{Benchmarks: []Measurement{{Name: "steady", NsPerOp: 100, AllocsPerOp: 0}}}
	new := &Recording{Benchmarks: []Measurement{{Name: "steady", NsPerOp: 100, AllocsPerOp: 1}}}
	if _, regressions := Compare(old, new, CompareOptions{NsThreshold: 0.5, AllocThreshold: 0.1}); regressions != 1 {
		t.Errorf("regressions = %d, want 1 (0 allocs -> 1 alloc)", regressions)
	}
}

func TestFilterSuite(t *testing.T) {
	suite := []Benchmark{
		{Name: "a/quick", Quick: true},
		{Name: "a/full"},
		{Name: "b/quick", Quick: true},
	}
	if got := filterSuite(suite, true, ""); len(got) != 2 {
		t.Errorf("quick filter kept %d, want 2", len(got))
	}
	if got := filterSuite(suite, false, "^a/"); len(got) != 2 {
		t.Errorf("run filter kept %d, want 2", len(got))
	}
	if got := filterSuite(suite, true, "^a/"); len(got) != 1 || got[0].Name != "a/quick" {
		t.Errorf("combined filter: %+v", got)
	}
}

func TestBuildSuiteNamesUniqueAndQuickSubset(t *testing.T) {
	suite := buildSuite()
	if len(suite) < 10 {
		t.Fatalf("suite has %d benchmarks, want >= 10", len(suite))
	}
	seen := map[string]bool{}
	quick := 0
	for _, b := range suite {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Quick {
			quick++
		}
	}
	if quick < 3 {
		t.Errorf("quick subset has %d benchmarks, want >= 3", quick)
	}
	for _, want := range []string{
		"elect/blindgossip/lineofstars110/tau=1",
		"steady/blindgossip/mesh256/round",
		"exp/E4-lemma-v1-gamma/quick",
	} {
		if !seen[want] {
			t.Errorf("suite missing %q (named in acceptance criteria)", want)
		}
	}
}
