package main

import "testing"

func TestBuildAllTopologies(t *testing.T) {
	names := []string{"clique", "path", "cycle", "star", "lineofstars",
		"ringofcliques", "regular", "hypercube", "barbell", "tree"}
	for _, name := range names {
		f, err := build(name, 16, 4, 3, 3, 4, 3, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if f.N() < 2 || !f.Graph.Connected() {
			t.Errorf("%s: bad graph %v", name, f)
		}
	}
	if _, err := build("bogus", 16, 4, 3, 3, 4, 3, 1); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
