// Command mtmgraph inspects the structural quantities the paper's bounds
// are stated in: maximum degree Δ, vertex expansion α, and cut matching
// numbers ν(B(S)) / γ (Lemma V.1).
//
// Examples:
//
//	mtmgraph -topo lineofstars -side 10
//	mtmgraph -topo ringofcliques -k 4 -s 5 -exact
//	mtmgraph -topo regular -n 500 -deg 8
package main

import (
	"flag"
	"fmt"
	"os"

	"mobiletel/internal/atomicwrite"
	"mobiletel/internal/bounds"
	"mobiletel/internal/expansion"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/matching"
)

func main() {
	var (
		topo  = flag.String("topo", "lineofstars", "clique|path|cycle|star|lineofstars|ringofcliques|regular|hypercube|barbell|tree")
		n     = flag.Int("n", 64, "node count (clique/path/cycle/star/regular)")
		deg   = flag.Int("deg", 8, "degree (regular)")
		side  = flag.Int("side", 6, "side (lineofstars)")
		k     = flag.Int("k", 4, "clique count (ringofcliques)")
		s     = flag.Int("s", 5, "clique size (ringofcliques) / barbell size")
		d     = flag.Int("d", 5, "dimension (hypercube) / levels (tree)")
		seed  = flag.Uint64("seed", 1, "seed (regular)")
		exact = flag.Bool("exact", false, "force exact α and γ (n <= 20 only)")
		dot   = flag.String("dot", "", "write the topology in Graphviz DOT format to this file")
	)
	flag.Parse()

	f, err := build(*topo, *n, *deg, *side, *k, *s, *d, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtmgraph:", err)
		os.Exit(1)
	}

	g := f.Graph
	fmt.Printf("family:      %s\n", f.Name)
	fmt.Printf("nodes:       %d\n", g.N())
	fmt.Printf("edges:       %d\n", g.M())
	fmt.Printf("max degree:  %d\n", g.MaxDegree())
	fmt.Printf("connected:   %v\n", g.Connected())
	if f.AlphaExact {
		fmt.Printf("α (analytic, exact): %.6g\n", f.Alpha)
	} else {
		fmt.Printf("α (estimate):        %.6g\n", f.Alpha)
	}

	if *exact || g.N() <= 16 {
		if g.N() <= expansion.MaxExactN {
			alpha, set := expansion.Exact(g)
			fmt.Printf("α (brute force):     %.6g  (minimizing cut %v)\n", alpha, set)
		} else {
			fmt.Fprintf(os.Stderr, "mtmgraph: -exact needs n <= %d\n", expansion.MaxExactN)
		}
		if g.N() <= 16 {
			gamma := matching.GammaExact(g)
			fmt.Printf("γ (brute force):     %.6g  (Lemma V.1 floor α/4 = %.6g)\n", gamma, f.Alpha/4)
		}
	}

	sweep, set := expansion.SweepUpperBound(g)
	fmt.Printf("α (sweep upper bound): %.6g  (cut size %d)\n", sweep, len(set))
	if g.Connected() {
		fmt.Printf("α (spectral estimate): %.6g  (λ₂ = %.6g)\n",
			expansion.SpectralAlphaEstimate(g, 1500), expansion.SpectralGap(g, 1500))
	}

	if *dot != "" {
		if err := atomicwrite.WriteFile(*dot, []byte(g.DOT(f.Name)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mtmgraph:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *dot)
	}

	if g.Connected() && g.N() <= 4096 {
		fmt.Printf("diameter:    %d\n", g.Diameter())
		fmt.Printf("avg path:    %.3f\n", g.AveragePathLength())
	}
	fmt.Printf("avg degree:  %.3f\n", g.AverageDegree())

	// Predicted round bounds (shape only; constants set to 1).
	alpha := f.Alpha
	if !f.AlphaExact || alpha <= 0 {
		alpha = sweep // fall back to the best-known upper bound
	}
	if alpha > 0 {
		fmt.Println()
		fmt.Printf("Theorem VI.1  blind gossip bound:     %.4g rounds\n",
			bounds.BlindGossip(alpha, g.MaxDegree(), g.N()))
		fmt.Printf("Theorem VII.2 bit convergence (τ=1):  %.4g rounds\n",
			bounds.BitConvRounds(alpha, 1, g.MaxDegree(), g.N()))
		fmt.Printf("Theorem VII.2 bit convergence (τ≥logΔ): %.4g rounds\n",
			bounds.BitConvRounds(alpha, 1<<20, g.MaxDegree(), g.N()))
	}
}

func build(topo string, n, deg, side, k, s, d int, seed uint64) (gen.Family, error) {
	switch topo {
	case "clique":
		return gen.Clique(n), nil
	case "path":
		return gen.Path(n), nil
	case "cycle":
		return gen.Cycle(n), nil
	case "star":
		return gen.Star(n), nil
	case "lineofstars":
		return gen.SqrtLineOfStars(side), nil
	case "ringofcliques":
		return gen.RingOfCliques(k, s), nil
	case "regular":
		return gen.RandomRegular(n, deg, seed), nil
	case "hypercube":
		return gen.Hypercube(d), nil
	case "barbell":
		return gen.Barbell(s), nil
	case "tree":
		return gen.CompleteBinaryTree(d), nil
	default:
		return gen.Family{}, fmt.Errorf("unknown topology %q", topo)
	}
}
