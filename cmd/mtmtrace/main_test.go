package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenConfig must match the invocation that generated
// testdata/golden.trace.jsonl:
//
//	mtmtrace record -topo clique -n 8 -algo blindgossip -seed 42
var goldenConfig = recordConfig{
	Topo:      "clique",
	N:         8,
	Deg:       8,
	Algo:      "blindgossip",
	Schedule:  "static",
	Tau:       4,
	Seed:      42,
	MaxRounds: 10_000_000,
}

const goldenPath = "testdata/golden.trace.jsonl"

// TestGoldenTraceSchemaStable pins the JSONL wire format: re-recording the
// golden configuration must reproduce the committed fixture byte for byte.
// If this fails because the schema intentionally changed, bump obs.Schema
// and regenerate the fixture (see goldenConfig above); if it fails without
// a schema change, determinism or the wire encoding regressed.
func TestGoldenTraceSchemaStable(t *testing.T) {
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := recordTrace(goldenConfig, &got, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		gotLines := strings.Split(got.String(), "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("trace deviates from golden fixture at line %d:\n got: %s\nwant: %s",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("trace length differs from golden fixture: got %d lines, want %d",
			len(gotLines), len(wantLines))
	}
}

// TestDiffIdenticalTraces checks that two same-seed recordings compare equal
// (exit code 0 path) and that changing the seed reports the first divergent
// round and event (exit code 1 path).
func TestDiffIdenticalTraces(t *testing.T) {
	var a, b bytes.Buffer
	if err := recordTrace(goldenConfig, &a, nil); err != nil {
		t.Fatal(err)
	}
	if err := recordTrace(goldenConfig, &b, nil); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	divergent, err := diffTraces(bytes.NewReader(a.Bytes()), bytes.NewReader(b.Bytes()), "a", "b", &out)
	if err != nil {
		t.Fatal(err)
	}
	if divergent {
		t.Fatalf("same-seed traces reported divergent:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "traces identical") {
		t.Fatalf("missing identical report: %q", out.String())
	}
}

func TestDiffDivergentTraces(t *testing.T) {
	other := goldenConfig
	other.Seed = 43
	var a, b bytes.Buffer
	if err := recordTrace(goldenConfig, &a, nil); err != nil {
		t.Fatal(err)
	}
	if err := recordTrace(other, &b, nil); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	divergent, err := diffTraces(bytes.NewReader(a.Bytes()), bytes.NewReader(b.Bytes()), "a", "b", &out)
	if err != nil {
		t.Fatal(err)
	}
	if !divergent {
		t.Fatal("different-seed traces reported identical")
	}
	report := out.String()
	if !strings.Contains(report, "headers differ") {
		t.Errorf("missing header mismatch report: %q", report)
	}
	if !strings.Contains(report, "first divergence at event") || !strings.Contains(report, "round") {
		t.Errorf("divergence report does not name event and round: %q", report)
	}
}

// TestDiffExitCodes drives the full CLI path: identical files exit 0,
// divergent files exit 1.
func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	same := filepath.Join(dir, "same.jsonl")
	var buf bytes.Buffer
	if err := recordTrace(goldenConfig, &buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(same, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	code, err := run([]string{"diff", goldenPath, same}, &out)
	if err != nil || code != 0 {
		t.Fatalf("identical diff: code %d, err %v\n%s", code, err, out.String())
	}

	other := goldenConfig
	other.Seed = 43
	buf.Reset()
	if err := recordTrace(other, &buf, nil); err != nil {
		t.Fatal(err)
	}
	diffFile := filepath.Join(dir, "other.jsonl")
	if err := os.WriteFile(diffFile, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run([]string{"diff", goldenPath, diffFile}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("divergent diff: code %d, want 1\n%s", code, out.String())
	}
}

// TestSummaryReplay checks that replaying the golden trace reproduces a
// self-consistent metrics summary.
func TestSummaryReplay(t *testing.T) {
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := replay(f)
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != "mtmtrace-metrics/v1" {
		t.Errorf("schema = %q", s.Schema)
	}
	if s.N != 8 || s.Rounds < 1 {
		t.Errorf("n=%d rounds=%d", s.N, s.Rounds)
	}
	if s.Accepts+s.Rejects+s.Lost != s.Proposals {
		t.Errorf("accepts %d + rejects %d + lost %d != proposals %d",
			s.Accepts, s.Rejects, s.Lost, s.Proposals)
	}
	if s.Accepts != s.Connections {
		t.Errorf("accepts %d != connections %d in MTM mode", s.Accepts, s.Connections)
	}
	if s.Transitions["leader"] < 7 {
		t.Errorf("leader transitions = %d, want >= n-1 = 7", s.Transitions["leader"])
	}
	if s.ConvergenceRound < 1 || s.ConvergenceRound > s.Rounds {
		t.Errorf("convergence round %d outside [1, %d]", s.ConvergenceRound, s.Rounds)
	}
}

// TestEventsFilter checks type/kind filtering and -tail through the CLI.
func TestEventsFilter(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"events", "-type", "transition", "-kind", "leader", goldenPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("events: code %d, err %v", code, err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 7 {
		t.Fatalf("got %d leader transitions, want >= 7", len(lines))
	}
	for _, line := range lines {
		if !strings.Contains(line, "transition") || !strings.Contains(line, "leader") {
			t.Errorf("unfiltered line: %q", line)
		}
	}

	var tail bytes.Buffer
	code, err = run([]string{"events", "-type", "transition", "-kind", "leader", "-tail", "2", goldenPath}, &tail)
	if err != nil || code != 0 {
		t.Fatalf("events -tail: code %d, err %v", code, err)
	}
	tailLines := strings.Split(strings.TrimSpace(tail.String()), "\n")
	if len(tailLines) != 2 {
		t.Fatalf("tail returned %d lines, want 2", len(tailLines))
	}
	if tailLines[0] != lines[len(lines)-2] || tailLines[1] != lines[len(lines)-1] {
		t.Errorf("tail returned wrong events:\n%v\nvs full tail:\n%v", tailLines, lines[len(lines)-2:])
	}
}

// truncateGolden writes a copy of the golden fixture with its tail chopped
// mid-record (the torn tail a crashed writer without atomic renames would
// leave) and returns the path plus the 1-based line number of the damage.
func truncateGolden(t *testing.T) (string, int) {
	t.Helper()
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := want[:len(want)-20]
	tornLine := bytes.Count(torn, []byte("\n")) + 1
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, tornLine
}

// TestSummaryTruncatedTrace checks that a trace cut off mid-record fails
// loudly with the line number of the damage instead of producing a silently
// partial summary.
func TestSummaryTruncatedTrace(t *testing.T) {
	path, tornLine := truncateGolden(t)
	var out bytes.Buffer
	_, err := run([]string{"summary", path}, &out)
	if err == nil {
		t.Fatalf("truncated trace summarized without error:\n%s", out.String())
	}
	want := fmt.Sprintf("line %d", tornLine)
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name %q", err, want)
	}
	if !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Errorf("error %q does not say the trace is damaged", err)
	}
}

// TestSummaryCorruptLine checks that a garbage line in the middle of a trace
// is reported by its line number, not skipped.
func TestSummaryCorruptLine(t *testing.T) {
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(want, []byte("\n"))
	if len(lines) < 10 {
		t.Fatalf("golden fixture too short: %d lines", len(lines))
	}
	lines[4] = []byte(`{"type":"propose","round":`) // torn mid-write
	path := filepath.Join(t.TempDir(), "corrupt.jsonl")
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err = run([]string{"summary", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("corrupt line 5 not reported: err=%v", err)
	}
}

// TestDiffTruncatedTrace checks that diffing against a damaged trace is an
// error (exit 2) naming the damaged file and line, distinct from the
// "traces diverge" exit 1.
func TestDiffTruncatedTrace(t *testing.T) {
	path, tornLine := truncateGolden(t)
	var out bytes.Buffer
	code, err := run([]string{"diff", goldenPath, path}, &out)
	if err == nil {
		t.Fatalf("diff against truncated trace succeeded (code %d):\n%s", code, out.String())
	}
	if code != 2 {
		t.Errorf("code = %d, want 2 (error, not divergence)", code)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error %q does not name the damaged file %q", err, path)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("line %d", tornLine)) {
		t.Errorf("error %q does not name line %d", err, tornLine)
	}
}

// TestFaultedRecordDeterministic pins the fault path end to end: two
// recordings with the same fault plan are byte-identical, and their summary
// reports the injected-fault rows.
func TestFaultedRecordDeterministic(t *testing.T) {
	cfg := goldenConfig
	cfg.Topo, cfg.N, cfg.Algo = "regular", 24, "asyncbitconv"
	cfg.Deg = 6
	cfg.CrashRate, cfg.RecoverRate, cfg.MaxDown = 0.05, 0.3, 4
	cfg.ProposalLoss = 0.1
	var a, b bytes.Buffer
	if err := recordTrace(cfg, &a, nil); err != nil {
		t.Fatal(err)
	}
	if err := recordTrace(cfg, &b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed faulted recordings differ")
	}
	s, err := replay(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) == 0 {
		t.Fatal("faulted run reported no fault events")
	}
	if s.LastFaultRound == 0 {
		t.Error("faulted run reported LastFaultRound = 0")
	}
	var sb strings.Builder
	if err := writeSummaryText(&sb, s); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"faults: ", "last fault round"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary text missing %q:\n%s", want, sb.String())
		}
	}
}

func TestUnknownSubcommand(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"bogus"}, &out)
	if code != 2 || err == nil {
		t.Fatalf("code %d, err %v", code, err)
	}
}
