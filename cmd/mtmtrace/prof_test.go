package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobiletel/internal/obs"
)

const goldenProfPath = "testdata/golden.prof.json"

// goldenProfiler rebuilds the deterministic profiler state behind
// testdata/golden.prof.json: two workers, two rounds, a representative mix of
// sequential and parallel phases with hand-picked nanosecond counts (no real
// clock is read, so the report is bit-reproducible on any machine).
func goldenProfiler() *obs.Profiler {
	p := obs.NewProfiler(func() int64 { return 0 })
	p.Attach(2)
	p.AddSeq(obs.PhaseActiveScan, 120)
	p.AddWall(obs.PhaseAdvertise, 400)
	p.AddBusy(obs.PhaseAdvertise, 0, 190)
	p.AddBusy(obs.PhaseAdvertise, 1, 210)
	p.AddWall(obs.PhaseDecide, 300)
	p.AddBusy(obs.PhaseDecide, 0, 160)
	p.AddBusy(obs.PhaseDecide, 1, 130)
	p.AddSeq(obs.PhaseMerge, 80)
	p.AddWall(obs.PhaseExchange, 500)
	p.AddBusy(obs.PhaseExchange, 0, 250)
	p.AddBusy(obs.PhaseExchange, 1, 240)
	p.AddSeq(obs.PhaseFlush, 60)
	p.RoundDone(1500)
	p.RoundDone(1400)
	return p
}

// encodeProf renders a report exactly the way the facade's -phase-prof
// writers do (indented JSON, trailing newline).
func encodeProf(t *testing.T, rep obs.ProfReport) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenProfSchemaStable pins the mtmprof/v1 wire format: re-encoding
// the deterministic golden profiler must reproduce the committed fixture
// byte for byte. If this fails because the report layout intentionally
// changed, bump obs.ProfSchema and regenerate the fixture; if it fails
// without a schema change, the wire encoding regressed.
func TestGoldenProfSchemaStable(t *testing.T) {
	want, err := os.ReadFile(goldenProfPath)
	if err != nil {
		t.Fatal(err)
	}
	got := encodeProf(t, goldenProfiler().Report())
	if !bytes.Equal(got, want) {
		t.Fatalf("mtmprof/v1 encoding deviates from golden fixture:\n got: %s\nwant: %s", got, want)
	}
}

// TestProfRender drives the prof subcommand over the golden fixture and
// checks the rendered table names the phases, the worker count, and the
// unattributed wall-time gap.
func TestProfRender(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"prof", goldenProfPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("prof: code %d, err %v", code, err)
	}
	text := out.String()
	for _, want := range []string{
		"workers=2", "rounds=2",
		"active_scan", "advertise", "decide", "merge", "exchange", "flush",
		"imbalance", "unattributed",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered report missing %q:\n%s", want, text)
		}
	}
	// Phases the golden profiler never recorded must not appear.
	for _, absent := range []string{"bucket_accept", "scatter"} {
		if strings.Contains(text, absent) {
			t.Errorf("rendered report shows unrecorded phase %q:\n%s", absent, text)
		}
	}
}

// TestProfRenderDispatch checks the resolved dispatch mode and gate appear
// in the title when the report carries them — and that the golden fixture,
// which predates the worker pool, renders without them (the omitempty
// compatibility contract).
func TestProfRenderDispatch(t *testing.T) {
	p := goldenProfiler()
	p.SetDispatch("inline", 1024)
	rep := p.Report()
	path := filepath.Join(t.TempDir(), "gated.prof.json")
	if err := os.WriteFile(path, encodeProf(t, rep), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run([]string{"prof", path}, &out)
	if err != nil || code != 0 {
		t.Fatalf("prof: code %d, err %v", code, err)
	}
	for _, want := range []string{"dispatch=inline", "gate=1024"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("rendered report missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code, err := run([]string{"prof", goldenProfPath}, &out); err != nil || code != 0 {
		t.Fatalf("prof: code %d, err %v", code, err)
	}
	if strings.Contains(out.String(), "dispatch=") {
		t.Errorf("pre-pool golden report rendered a dispatch mode:\n%s", out.String())
	}
}

// TestProfWrongSchema checks that a report from a different schema version is
// refused with an error naming both versions, not misrendered.
func TestProfWrongSchema(t *testing.T) {
	rep := goldenProfiler().Report()
	rep.Schema = "mtmprof/v0"
	path := filepath.Join(t.TempDir(), "old.prof.json")
	if err := os.WriteFile(path, encodeProf(t, rep), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err := run([]string{"prof", path}, &out)
	if err == nil {
		t.Fatalf("foreign-schema report rendered without error:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "mtmprof/v0") || !strings.Contains(err.Error(), obs.ProfSchema) {
		t.Errorf("error %q does not name both schema versions", err)
	}
}

// TestProfCorruptReport checks that truncated JSON is an error, not a
// zero-filled table.
func TestProfCorruptReport(t *testing.T) {
	golden, err := os.ReadFile(goldenProfPath)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "torn.prof.json")
	if err := os.WriteFile(path, golden[:len(golden)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err = run([]string{"prof", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("torn report not rejected: err=%v", err)
	}
}
