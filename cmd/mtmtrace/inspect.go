package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"mobiletel/internal/obs"
	"mobiletel/internal/trace"
)

func cmdSummary(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mtmtrace summary", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the summary as JSON (schema mtmtrace-metrics/v1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("summary needs exactly one trace file ('-' = stdin)")
	}
	in, err := openIn(fs.Arg(0))
	if err != nil {
		return err
	}
	// Inputs are read-only; a close error cannot lose data.
	defer func() { _ = in.Close() }()

	summary, err := replay(in)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&summary)
	}
	return writeSummaryText(stdout, summary)
}

// replay folds a JSONL trace into its metrics summary.
func replay(in io.Reader) (obs.Summary, error) {
	r, err := obs.NewReader(in)
	if err != nil {
		return obs.Summary{}, err
	}
	m := obs.NewMetrics()
	m.Begin(r.Header())
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return obs.Summary{}, err
		}
		m.Event(e)
	}
	m.End()
	return m.Summary(), nil
}

// writeSummaryText renders a summary as an aligned table plus sparkline
// convergence curves.
func writeSummaryText(w io.Writer, s obs.Summary) error {
	title := fmt.Sprintf("trace summary: seed=%d schedule=%s n=%d", s.Seed, s.Schedule, s.N)
	t := trace.NewTable(title, "metric", "value")
	t.AddRow("rounds", s.Rounds)
	t.AddRow("convergence round", s.ConvergenceRound)
	t.AddRow("proposals", s.Proposals)
	t.AddRow("accepts", s.Accepts)
	t.AddRow("rejects (contention)", s.Rejects)
	t.AddRow("lost (busy target)", s.Lost)
	if s.FaultLost > 0 {
		t.AddRow("lost (injected faults)", s.FaultLost)
	}
	t.AddRow("connections", s.Connections)
	t.AddRow("acceptance rate", s.AcceptanceRate)
	t.AddRow("mean matching", s.MeanMatching)
	t.AddRow("max matching", s.MaxMatching)
	if s.GammaBound > 0 {
		t.AddRow("gamma bound (exact)", s.GammaBound)
		t.AddRow("matching vs gamma*n/2", s.MatchingVsBound)
	}
	t.AddRow("load min/mean/max", fmt.Sprintf("%d / %.2f / %d", s.Load.Min, s.Load.Mean, s.Load.Max))
	t.AddRow("load imbalance", s.Load.Imbalance)
	for _, kv := range sortedTransitions(s.Transitions) {
		t.AddRow("transitions: "+kv.name, kv.count)
	}
	for _, kv := range sortedTransitions(s.Faults) {
		t.AddRow("faults: "+kv.name, kv.count)
	}
	if s.LastFaultRound > 0 {
		t.AddRow("last fault round", s.LastFaultRound)
		t.AddRow("recovery rounds", s.RecoveryRounds)
	}
	if err := t.WriteText(w); err != nil {
		return err
	}
	if len(s.ConnectionsCurve) > 0 {
		_, err := fmt.Fprintf(w, "\nconnections/round: %s\nacceptance %%:      %s\nimbalance:         %s\n",
			trace.Sparkline(s.ConnectionsCurve),
			trace.Sparkline(percent(s.AcceptanceCurve)),
			trace.Sparkline(percent(s.ImbalanceCurve)))
		return err
	}
	return nil
}

// percent scales a float curve to integer percent for sparkline rendering.
func percent(values []float64) []int {
	out := make([]int, len(values))
	for i, v := range values {
		out[i] = int(v * 100)
	}
	return out
}

// kindCount is one transition-count row, ordered by name for stable output.
type kindCount struct {
	name  string
	count int64
}

func sortedTransitions(m map[string]int64) []kindCount {
	out := make([]kindCount, 0, len(m))
	for name, count := range m {
		out = append(out, kindCount{name, count})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].name < out[j-1].name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func cmdEvents(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mtmtrace events", flag.ContinueOnError)
	typeName := fs.String("type", "", "only events of this type (round_start|round_end|propose|reject|accept|connect|deliver|transition)")
	kindName := fs.String("kind", "", "only events of this kind (leader|bit|phase|position|informed|busy|contention)")
	node := fs.Int("node", -1, "only events whose node or peer is this device (-1 = any)")
	from := fs.Int("from", 0, "only rounds >= this")
	to := fs.Int("to", 0, "only rounds <= this (0 = unbounded)")
	tail := fs.Int("tail", 0, "print only the last N matching events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("events needs exactly one trace file ('-' = stdin)")
	}

	var wantType obs.Type
	if *typeName != "" {
		t, err := obs.ParseType(*typeName)
		if err != nil {
			return err
		}
		wantType = t
	}
	var wantKind obs.Kind
	if *kindName != "" {
		k, err := obs.ParseKind(*kindName)
		if err != nil {
			return err
		}
		wantKind = k
	}

	in, err := openIn(fs.Arg(0))
	if err != nil {
		return err
	}
	defer func() { _ = in.Close() }()
	r, err := obs.NewReader(in)
	if err != nil {
		return err
	}

	match := func(e obs.Event) bool {
		if wantType != obs.TypeNone && e.Type != wantType {
			return false
		}
		if wantKind != obs.KindNone && e.Kind != wantKind {
			return false
		}
		if *node >= 0 && e.Node != int32(*node) && e.Peer != int32(*node) {
			return false
		}
		if e.Round < *from {
			return false
		}
		if *to > 0 && e.Round > *to {
			return false
		}
		return true
	}

	// With -tail, buffer the last N matches in a ring; otherwise stream.
	var ring []obs.Event
	next := 0
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if !match(e) {
			continue
		}
		if *tail <= 0 {
			if _, err := fmt.Fprintln(stdout, e); err != nil {
				return err
			}
			continue
		}
		if len(ring) < *tail {
			ring = append(ring, e)
		} else {
			ring[next] = e
		}
		next = (next + 1) % *tail
	}
	if *tail > 0 {
		if len(ring) == *tail {
			for _, e := range ring[next:] {
				if _, err := fmt.Fprintln(stdout, e); err != nil {
					return err
				}
			}
			ring = ring[:next]
		}
		for _, e := range ring {
			if _, err := fmt.Fprintln(stdout, e); err != nil {
				return err
			}
		}
	}
	return nil
}

func cmdDiff(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("mtmtrace diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("diff needs exactly two trace files")
	}
	fa, err := openIn(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	defer func() { _ = fa.Close() }()
	fb, err := openIn(fs.Arg(1))
	if err != nil {
		return 2, err
	}
	defer func() { _ = fb.Close() }()

	divergent, err := diffTraces(fa, fb, fs.Arg(0), fs.Arg(1), stdout)
	if err != nil {
		return 2, err
	}
	if divergent {
		return 1, nil
	}
	return 0, nil
}

// diffTraces streams two traces side by side and reports the first
// divergence: a header mismatch, the first unequal event (by index), or one
// trace ending before the other. Events are flat value types, so equality
// is exact ==. Returns whether the traces diverge.
func diffTraces(a, b io.Reader, nameA, nameB string, w io.Writer) (bool, error) {
	ra, err := obs.NewReader(a)
	if err != nil {
		return false, fmt.Errorf("%s: %w", nameA, err)
	}
	rb, err := obs.NewReader(b)
	if err != nil {
		return false, fmt.Errorf("%s: %w", nameB, err)
	}

	divergent := false
	if ha, hb := ra.Header(), rb.Header(); ha != hb {
		divergent = true
		if _, err := fmt.Fprintf(w, "headers differ:\n  %s: %+v\n  %s: %+v\n", nameA, ha, nameB, hb); err != nil {
			return true, err
		}
	}

	for i := 0; ; i++ {
		ea, errA := ra.Next()
		eb, errB := rb.Next()
		switch {
		case errA == io.EOF && errB == io.EOF:
			if !divergent {
				_, err := fmt.Fprintf(w, "traces identical (%d events)\n", i)
				return false, err
			}
			return true, nil
		case errA == io.EOF:
			_, err := fmt.Fprintf(w, "first divergence at event %d: %s ended, %s continues (round %d):\n  %s: %s\n",
				i, nameA, nameB, eb.Round, nameB, eb)
			return true, err
		case errB == io.EOF:
			_, err := fmt.Fprintf(w, "first divergence at event %d: %s ended, %s continues (round %d):\n  %s: %s\n",
				i, nameB, nameA, ea.Round, nameA, ea)
			return true, err
		case errA != nil:
			return true, fmt.Errorf("%s: %w", nameA, errA)
		case errB != nil:
			return true, fmt.Errorf("%s: %w", nameB, errB)
		case ea != eb:
			_, err := fmt.Fprintf(w, "first divergence at event %d (round %d):\n  %s: %s\n  %s: %s\n",
				i, ea.Round, nameA, ea, nameB, eb)
			return true, err
		}
	}
}
