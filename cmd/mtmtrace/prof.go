package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"time"

	"mobiletel/internal/obs"
	"mobiletel/internal/trace"
)

func cmdProf(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mtmtrace prof", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("prof needs exactly one report file ('-' = stdin)")
	}
	in, err := openIn(fs.Arg(0))
	if err != nil {
		return err
	}
	// Inputs are read-only; a close error cannot lose data.
	defer func() { _ = in.Close() }()

	rep, err := readProfReport(in)
	if err != nil {
		return err
	}
	return writeProfText(stdout, rep)
}

// readProfReport decodes and validates one mtmprof/v1 report.
func readProfReport(in io.Reader) (obs.ProfReport, error) {
	var rep obs.ProfReport
	if err := json.NewDecoder(in).Decode(&rep); err != nil {
		return rep, fmt.Errorf("prof: corrupt report: %w", err)
	}
	if rep.Schema != obs.ProfSchema {
		return rep, fmt.Errorf("prof: report schema %q, this reader speaks %q", rep.Schema, obs.ProfSchema)
	}
	return rep, nil
}

// writeProfText renders a phase-timing report as an aligned table. Shares are
// relative to the summed phase wall time; the difference between that sum and
// the total round wall time is reported as unattributed sequential glue.
func writeProfText(w io.Writer, rep obs.ProfReport) error {
	title := fmt.Sprintf("phase profile: workers=%d rounds=%d wall=%s rounds/sec=%.4g",
		rep.Workers, rep.Rounds, time.Duration(rep.WallNS), rep.RoundsPerSec)
	if rep.Dispatch != "" {
		// The engine's resolved dispatch mode: a run that silently fell back
		// to inline dispatch (small n, one worker, single-P host) says so
		// here instead of just being mysteriously sequential.
		title += fmt.Sprintf(" dispatch=%s", rep.Dispatch)
		if rep.GateNodes > 0 {
			title += fmt.Sprintf(" gate=%d", rep.GateNodes)
		}
	}
	t := trace.NewTable(title, "phase", "wall", "share", "busy max", "imbalance")
	var phaseTotal int64
	for _, p := range rep.Phases {
		phaseTotal += p.WallNS
	}
	for _, p := range rep.Phases {
		var busyMax int64
		for _, b := range p.BusyNS {
			if b > busyMax {
				busyMax = b
			}
		}
		share := "-"
		if phaseTotal > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(p.WallNS)/float64(phaseTotal))
		}
		imbalance := "-"
		if p.Imbalance > 0 {
			imbalance = fmt.Sprintf("%.2f", p.Imbalance)
		}
		t.AddRow(p.Phase, time.Duration(p.WallNS), share, time.Duration(busyMax), imbalance)
	}
	if err := t.WriteText(w); err != nil {
		return err
	}
	if gap := rep.WallNS - phaseTotal; gap > 0 && rep.WallNS > 0 {
		_, err := fmt.Fprintf(w, "\nunattributed: %s (%.1f%% of round wall time)\n",
			time.Duration(gap), 100*float64(gap)/float64(rep.WallNS))
		return err
	}
	return nil
}
