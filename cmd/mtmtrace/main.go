// Command mtmtrace records, inspects, summarizes, and diffs structured
// event traces (schema mtmtrace/v1) of mobile telephone model executions.
//
// Subcommands:
//
//	record   run a simulation and write its event trace
//	summary  aggregate a trace into run metrics
//	events   print (filtered) events from a trace
//	diff     compare two traces and report the first divergence
//	prof     render a phase-timing report (schema mtmprof/v1)
//
// Examples:
//
//	mtmtrace record -topo regular -n 64 -algo blindgossip -seed 7 -o run.jsonl
//	mtmtrace record -topo expander -n 65536 -workers 8 -sample 4 -types connect,transition -o big.jsonl
//	mtmtrace summary run.jsonl
//	mtmtrace events -type transition -kind leader run.jsonl
//	mtmtrace diff run.jsonl other.jsonl
//	mtmtrace prof run.prof.json
//
// diff exits 0 when the traces are identical and 1 when they diverge,
// naming the first divergent round and event — because executions are
// deterministic in (seed, schedule, protocol, config), any divergence
// between two same-configuration traces is a reproducibility bug.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mobiletel"
	"mobiletel/internal/atomicwrite"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtmtrace:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// run dispatches the subcommand; the returned code is the process exit
// status (diff uses 1 for "traces diverge" without an error).
func run(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		usage(stdout)
		return 2, nil
	}
	switch args[0] {
	case "record":
		return 0, cmdRecord(args[1:], stdout)
	case "summary":
		return 0, cmdSummary(args[1:], stdout)
	case "events":
		return 0, cmdEvents(args[1:], stdout)
	case "diff":
		return cmdDiff(args[1:], stdout)
	case "prof":
		return 0, cmdProf(args[1:], stdout)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0, nil
	default:
		usage(stdout)
		return 2, fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	// Help text is best effort; a failed write has no useful recovery.
	_, _ = fmt.Fprint(w, `usage: mtmtrace <subcommand> [flags]

subcommands:
  record   run a simulation and write its event trace (mtmtrace/v1 JSONL)
  summary  aggregate a trace into run metrics (text or -json)
  events   print events from a trace, with type/kind/node/round filters
  diff     compare two traces; exit 1 naming the first divergent event
  prof     render an mtmprof/v1 phase-timing report as a table

run 'mtmtrace <subcommand> -h' for flags.
`)
}

// recordConfig carries the record subcommand's parameters (separated from
// flag parsing so tests can record deterministic fixture traces directly).
type recordConfig struct {
	Topo      string
	N         int
	Deg       int
	Algo      string
	Rumor     string
	Schedule  string
	Tau       int
	Seed      uint64
	MaxRounds int
	Classical bool
	// Workers is the engine worker count (0/1 = sequential). Traces are
	// byte-identical across worker counts, which is what diff pins in CI.
	Workers int
	// Sample keeps only every Sample-th round's events (0/1 = all rounds);
	// Types, when non-empty, is a comma-separated type whitelist. Both are
	// deterministic filters: two runs with the same filters agree exactly.
	Sample int
	Types  string

	// Fault-injection knobs (all zero = fault-free). Faulted traces are as
	// deterministic as clean ones: same seed, same fault events.
	CrashRate    float64
	RecoverRate  float64
	MaxDown      int
	ProposalLoss float64
	ConnLoss     float64
	TagFlipRate  float64
	FaultSeed    uint64
	Partitions   []mobiletel.FaultPartition
}

// faults converts the fault knobs into an Options.Faults plan, or nil when
// every knob is zero (keeping the fault-free fast path allocation-free).
func (cfg recordConfig) faults() *mobiletel.FaultPlan {
	if cfg.CrashRate == 0 && cfg.RecoverRate == 0 && cfg.ProposalLoss == 0 &&
		cfg.ConnLoss == 0 && cfg.TagFlipRate == 0 && len(cfg.Partitions) == 0 {
		return nil
	}
	fseed := cfg.FaultSeed
	if fseed == 0 {
		fseed = cfg.Seed + 3
	}
	return &mobiletel.FaultPlan{
		Seed:           fseed,
		CrashRate:      cfg.CrashRate,
		RecoverRate:    cfg.RecoverRate,
		MaxDown:        cfg.MaxDown,
		ResetOnRecover: true,
		ProposalLoss:   cfg.ProposalLoss,
		ConnLoss:       cfg.ConnLoss,
		TagFlipRate:    cfg.TagFlipRate,
		Partitions:     cfg.Partitions,
	}
}

// recordTrace runs one simulation per cfg and streams its trace to traceTo
// (and, when non-nil, its metrics summary to metricsTo).
func recordTrace(cfg recordConfig, traceTo, metricsTo io.Writer) error {
	topo, err := mobiletel.BuildTopology(cfg.Topo, cfg.N, cfg.Deg, cfg.Seed)
	if err != nil {
		return err
	}
	sched, err := mobiletel.BuildSchedule(cfg.Schedule, topo, cfg.Tau, cfg.Seed+1)
	if err != nil {
		return err
	}
	opts := mobiletel.Options{
		Seed:        cfg.Seed + 2,
		MaxRounds:   cfg.MaxRounds,
		Classical:   cfg.Classical,
		Workers:     cfg.Workers,
		TraceTo:     traceTo,
		MetricsTo:   metricsTo,
		TraceSample: cfg.Sample,
		Faults:      cfg.faults(),
	}
	if cfg.Types != "" {
		opts.TraceTypes = strings.Split(cfg.Types, ",")
	}
	if cfg.Rumor != "" {
		strategy := mobiletel.PushPull
		switch cfg.Rumor {
		case "pushpull":
		case "ppush":
			strategy = mobiletel.PPush
		default:
			return fmt.Errorf("unknown rumor strategy %q", cfg.Rumor)
		}
		_, err := mobiletel.SpreadRumor(sched, strategy, []int{0}, opts)
		return err
	}
	algo, err := mobiletel.ParseAlgorithm(cfg.Algo)
	if err != nil {
		return err
	}
	_, err = mobiletel.ElectLeader(sched, algo, opts)
	return err
}

func cmdRecord(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mtmtrace record", flag.ContinueOnError)
	var cfg recordConfig
	fs.StringVar(&cfg.Topo, "topo", "regular", "topology: "+mobiletel.TopologyNames)
	fs.IntVar(&cfg.N, "n", 128, "number of devices (interpreted per topology)")
	fs.IntVar(&cfg.Deg, "deg", 8, "degree for -topo regular")
	fs.StringVar(&cfg.Algo, "algo", "blindgossip", "leader election algorithm: blindgossip|bitconv|asyncbitconv")
	fs.StringVar(&cfg.Rumor, "rumor", "", "run rumor spreading instead: pushpull|ppush")
	fs.StringVar(&cfg.Schedule, "schedule", "static", "schedule: "+mobiletel.ScheduleNames)
	fs.IntVar(&cfg.Tau, "tau", 4, "stability factor for dynamic schedules")
	fs.Uint64Var(&cfg.Seed, "seed", 1, "random seed (traces are deterministic per seed)")
	fs.IntVar(&cfg.MaxRounds, "max-rounds", 10_000_000, "abort if not stabilized by this round")
	fs.BoolVar(&cfg.Classical, "classical", false, "use classical telephone semantics")
	fs.IntVar(&cfg.Workers, "workers", 0, "engine worker count (0 = sequential; traces are identical across counts)")
	fs.IntVar(&cfg.Sample, "sample", 0, "keep only rounds where round%N == 0 (0 = all rounds)")
	fs.StringVar(&cfg.Types, "types", "", "comma-separated event-type whitelist (e.g. connect,transition)")
	fs.Float64Var(&cfg.CrashRate, "crash-rate", 0, "per-round probability that one up device crashes")
	fs.Float64Var(&cfg.RecoverRate, "recover-rate", 0, "per-round probability that one down device recovers")
	fs.IntVar(&cfg.MaxDown, "max-down", 0, "cap on simultaneously crashed devices (0 = n-1)")
	fs.Float64Var(&cfg.ProposalLoss, "proposal-loss", 0, "probability that a sent proposal is dropped")
	fs.Float64Var(&cfg.ConnLoss, "conn-loss", 0, "probability that an accepted connection fails before transfer")
	fs.Float64Var(&cfg.TagFlipRate, "tagflip-rate", 0, "probability that an advertised tag has one bit flipped")
	fs.Uint64Var(&cfg.FaultSeed, "fault-seed", 0, "fault plan seed (0 = derive from -seed)")
	partition := fs.String("partition", "", "schedule a network partition as start:heal:parts (heal 0 = never; repeatable via commas)")
	out := fs.String("o", "-", "trace output file ('-' = stdout)")
	metricsOut := fs.String("metrics", "", "also write a JSON metrics summary to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var err error
	if cfg.Partitions, err = mobiletel.ParsePartitions(*partition); err != nil {
		return err
	}

	traceTo, traceFile, err := openOut(*out, stdout)
	if err != nil {
		return err
	}
	defer closeOut(traceFile) // aborts the write unless committed below
	var metricsTo io.Writer
	var metricsFile *atomicwrite.File
	if *metricsOut != "" {
		w, f, err := openOut(*metricsOut, stdout)
		if err != nil {
			return err
		}
		defer closeOut(f)
		metricsTo, metricsFile = w, f
	}
	if err := recordTrace(cfg, traceTo, metricsTo); err != nil {
		return err
	}
	// Publish atomically only after the run succeeded: an aborted or failed
	// record leaves the previous file (if any) intact rather than a torn one.
	for _, f := range []*atomicwrite.File{traceFile, metricsFile} {
		if f != nil {
			if err := f.Commit(); err != nil {
				return err
			}
		}
	}
	return nil
}

// openOut resolves an output path: "-" is stdout (nil file), anything else
// is an atomic writer that the caller must Commit on success; a deferred
// closeOut aborts it on failure.
func openOut(path string, stdout io.Writer) (io.Writer, *atomicwrite.File, error) {
	if path == "-" {
		return stdout, nil, nil
	}
	f, err := atomicwrite.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f, nil
}

// closeOut aborts an uncommitted atomic write (no-op after Commit or for
// stdout), reporting cleanup errors to stderr.
func closeOut(f *atomicwrite.File) {
	if f == nil {
		return
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mtmtrace:", err)
	}
}

// openIn resolves an input path: "-" is stdin.
func openIn(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}
