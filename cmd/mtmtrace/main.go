// Command mtmtrace records, inspects, summarizes, and diffs structured
// event traces (schema mtmtrace/v1) of mobile telephone model executions.
//
// Subcommands:
//
//	record   run a simulation and write its event trace
//	summary  aggregate a trace into run metrics
//	events   print (filtered) events from a trace
//	diff     compare two traces and report the first divergence
//
// Examples:
//
//	mtmtrace record -topo regular -n 64 -algo blindgossip -seed 7 -o run.jsonl
//	mtmtrace summary run.jsonl
//	mtmtrace events -type transition -kind leader run.jsonl
//	mtmtrace diff run.jsonl other.jsonl
//
// diff exits 0 when the traces are identical and 1 when they diverge,
// naming the first divergent round and event — because executions are
// deterministic in (seed, schedule, protocol, config), any divergence
// between two same-configuration traces is a reproducibility bug.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobiletel"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtmtrace:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// run dispatches the subcommand; the returned code is the process exit
// status (diff uses 1 for "traces diverge" without an error).
func run(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		usage(stdout)
		return 2, nil
	}
	switch args[0] {
	case "record":
		return 0, cmdRecord(args[1:], stdout)
	case "summary":
		return 0, cmdSummary(args[1:], stdout)
	case "events":
		return 0, cmdEvents(args[1:], stdout)
	case "diff":
		return cmdDiff(args[1:], stdout)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0, nil
	default:
		usage(stdout)
		return 2, fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	// Help text is best effort; a failed write has no useful recovery.
	_, _ = fmt.Fprint(w, `usage: mtmtrace <subcommand> [flags]

subcommands:
  record   run a simulation and write its event trace (mtmtrace/v1 JSONL)
  summary  aggregate a trace into run metrics (text or -json)
  events   print events from a trace, with type/kind/node/round filters
  diff     compare two traces; exit 1 naming the first divergent event

run 'mtmtrace <subcommand> -h' for flags.
`)
}

// recordConfig carries the record subcommand's parameters (separated from
// flag parsing so tests can record deterministic fixture traces directly).
type recordConfig struct {
	Topo      string
	N         int
	Deg       int
	Algo      string
	Rumor     string
	Schedule  string
	Tau       int
	Seed      uint64
	MaxRounds int
	Classical bool
}

// recordTrace runs one simulation per cfg and streams its trace to traceTo
// (and, when non-nil, its metrics summary to metricsTo).
func recordTrace(cfg recordConfig, traceTo, metricsTo io.Writer) error {
	topo, err := mobiletel.BuildTopology(cfg.Topo, cfg.N, cfg.Deg, cfg.Seed)
	if err != nil {
		return err
	}
	sched, err := mobiletel.BuildSchedule(cfg.Schedule, topo, cfg.Tau, cfg.Seed+1)
	if err != nil {
		return err
	}
	opts := mobiletel.Options{
		Seed:      cfg.Seed + 2,
		MaxRounds: cfg.MaxRounds,
		Classical: cfg.Classical,
		TraceTo:   traceTo,
		MetricsTo: metricsTo,
	}
	if cfg.Rumor != "" {
		strategy := mobiletel.PushPull
		switch cfg.Rumor {
		case "pushpull":
		case "ppush":
			strategy = mobiletel.PPush
		default:
			return fmt.Errorf("unknown rumor strategy %q", cfg.Rumor)
		}
		_, err := mobiletel.SpreadRumor(sched, strategy, []int{0}, opts)
		return err
	}
	algo, err := mobiletel.ParseAlgorithm(cfg.Algo)
	if err != nil {
		return err
	}
	_, err = mobiletel.ElectLeader(sched, algo, opts)
	return err
}

func cmdRecord(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mtmtrace record", flag.ContinueOnError)
	var cfg recordConfig
	fs.StringVar(&cfg.Topo, "topo", "regular", "topology: "+mobiletel.TopologyNames)
	fs.IntVar(&cfg.N, "n", 128, "number of devices (interpreted per topology)")
	fs.IntVar(&cfg.Deg, "deg", 8, "degree for -topo regular")
	fs.StringVar(&cfg.Algo, "algo", "blindgossip", "leader election algorithm: blindgossip|bitconv|asyncbitconv")
	fs.StringVar(&cfg.Rumor, "rumor", "", "run rumor spreading instead: pushpull|ppush")
	fs.StringVar(&cfg.Schedule, "schedule", "static", "schedule: "+mobiletel.ScheduleNames)
	fs.IntVar(&cfg.Tau, "tau", 4, "stability factor for dynamic schedules")
	fs.Uint64Var(&cfg.Seed, "seed", 1, "random seed (traces are deterministic per seed)")
	fs.IntVar(&cfg.MaxRounds, "max-rounds", 10_000_000, "abort if not stabilized by this round")
	fs.BoolVar(&cfg.Classical, "classical", false, "use classical telephone semantics")
	out := fs.String("o", "-", "trace output file ('-' = stdout)")
	metricsOut := fs.String("metrics", "", "also write a JSON metrics summary to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	traceTo, closeTrace, err := openOut(*out, stdout)
	if err != nil {
		return err
	}
	defer closeTrace()
	var metricsTo io.Writer
	if *metricsOut != "" {
		w, closeMetrics, err := openOut(*metricsOut, stdout)
		if err != nil {
			return err
		}
		defer closeMetrics()
		metricsTo = w
	}
	return recordTrace(cfg, traceTo, metricsTo)
}

// openOut resolves an output path: "-" is stdout, anything else is created.
// The returned closer reports close errors to stderr (writes are checked by
// the callers through the sinks' latched errors).
func openOut(path string, stdout io.Writer) (io.Writer, func(), error) {
	if path == "-" {
		return stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mtmtrace:", err)
		}
	}, nil
}

// openIn resolves an input path: "-" is stdin.
func openIn(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}
