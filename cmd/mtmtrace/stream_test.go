package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestSummaryInterleavedSchema checks that a header record appearing
// mid-stream — what concatenating two traces (possibly of different schema
// versions) produces — is rejected by line number instead of being folded
// into the aggregation as a zero event.
func TestSummaryInterleavedSchema(t *testing.T) {
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(golden, []byte("\n"))
	if len(lines) < 10 {
		t.Fatalf("golden fixture too short: %d lines", len(lines))
	}
	foreign := append([][]byte{}, lines[:6]...)
	foreign = append(foreign, []byte(`{"schema":"mtmtrace/v2","seed":44,"schedule":"static/clique","n":8}`))
	foreign = append(foreign, lines[6:]...)
	path := filepath.Join(t.TempDir(), "interleaved.jsonl")
	if err := os.WriteFile(path, bytes.Join(foreign, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err = run([]string{"summary", path}, &out)
	if err == nil {
		t.Fatalf("interleaved-schema trace summarized without error:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "line 7") {
		t.Errorf("error %q does not name line 7", err)
	}
}

// TestSummaryOversizedLine checks that a single line exceeding the reader's
// bound fails with the line number instead of hanging or misparsing — a
// trace with a megabyte-long line is not a trace.
func TestSummaryOversizedLine(t *testing.T) {
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	header := golden[:bytes.IndexByte(golden, '\n')+1]
	huge := append([]byte(nil), header...)
	huge = append(huge, `{"t":"propose","kind":"`...)
	huge = append(huge, bytes.Repeat([]byte{'x'}, 1<<21)...)
	huge = append(huge, `","r":1}`+"\n"...)
	path := filepath.Join(t.TempDir(), "huge.jsonl")
	if err := os.WriteFile(path, huge, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err = run([]string{"summary", path}, &out)
	if err == nil {
		t.Fatalf("oversized line summarized without error:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "too long") {
		t.Errorf("error %q does not name line 2 / too long", err)
	}
}

// synthTrace streams a synthetic mtmtrace/v1 trace one round at a time,
// never holding more than a single round's lines in memory — the generator
// side of the summary O(1)-memory contract.
type synthTrace struct {
	buf      []byte
	off      int
	round    int
	rounds   int
	perRound int
	total    int64 // bytes served so far
}

func newSynthTrace(rounds, perRound int) *synthTrace {
	s := &synthTrace{rounds: rounds, perRound: perRound}
	s.buf = []byte(`{"schema":"mtmtrace/v1","seed":1,"schedule":"synthetic","n":1024,"tag_bits":0,"classical":false}` + "\n")
	return s
}

func (s *synthTrace) Read(p []byte) (int, error) {
	for s.off == len(s.buf) {
		if s.round == s.rounds {
			return 0, io.EOF
		}
		s.round++
		s.buf, s.off = s.buf[:0], 0
		s.buf = appendSynthEvent(s.buf, "round_start", s.round, -1, -1)
		for i := 0; i < s.perRound; i++ {
			s.buf = appendSynthEvent(s.buf, "propose", s.round, i%1024, (i+1)%1024)
		}
		s.buf = appendSynthEvent(s.buf, "round_end", s.round, -1, -1)
	}
	n := copy(p, s.buf[s.off:])
	s.off += n
	s.total += int64(n)
	return n, nil
}

func appendSynthEvent(b []byte, typ string, r, node, peer int) []byte {
	b = append(b, `{"t":"`...)
	b = append(b, typ...)
	b = append(b, `","kind":"","r":`...)
	b = strconv.AppendInt(b, int64(r), 10)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(node), 10)
	b = append(b, `,"peer":`...)
	b = strconv.AppendInt(b, int64(peer), 10)
	b = append(b, `,"a":0,"b":0}`+"\n"...)
	return b
}

// TestSummaryStreamingMemory pins the big-trace contract: summarizing a
// trace far larger than any sane buffer must not grow the heap by more than
// a small constant — events are folded one at a time and the metrics state
// (bounded curves, fixed counters) is O(1) in trace length. A regression
// that buffers events or grows a per-round slice shows up as heap growth on
// the order of the trace size.
func TestSummaryStreamingMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-MB synthetic trace skipped in -short mode")
	}
	const (
		rounds   = 4096
		perRound = 512
	)
	gen := newSynthTrace(rounds, perRound)
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	s, err := replay(gen)
	if err != nil {
		t.Fatal(err)
	}

	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if gen.total < 128<<20 {
		t.Fatalf("synthetic trace only %d bytes; grow it to keep the bound meaningful", gen.total)
	}
	if s.Rounds != rounds || s.Proposals != int64(rounds)*perRound {
		t.Fatalf("summary miscounted: rounds=%d proposals=%d, want %d/%d",
			s.Rounds, s.Proposals, rounds, rounds*perRound)
	}
	if grew := int64(m1.HeapSys) - int64(m0.HeapSys); grew > 64<<20 {
		t.Fatalf("summarizing a %d MB trace grew the heap by %d MB; streaming replay must stay O(1) in trace length",
			gen.total>>20, grew>>20)
	}
}

// TestRecordSampledAndFiltered pins the record-side big-trace knobs: -sample
// keeps exactly the rounds divisible by N, -types keeps exactly the listed
// event types, and both filters are deterministic (two filtered recordings
// are byte-identical, and filtering a full trace after the fact yields the
// same round/type census).
func TestRecordSampledAndFiltered(t *testing.T) {
	cfg := goldenConfig
	cfg.Sample = 2
	cfg.Types = "connect,transition"
	var a, b bytes.Buffer
	if err := recordTrace(cfg, &a, nil); err != nil {
		t.Fatal(err)
	}
	if err := recordTrace(cfg, &b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed filtered recordings differ")
	}
	for i, line := range strings.Split(strings.TrimSpace(a.String()), "\n") {
		if i == 0 {
			continue // header
		}
		if !strings.Contains(line, `"t":"connect"`) && !strings.Contains(line, `"t":"transition"`) {
			t.Fatalf("filtered trace leaked a foreign event type: %s", line)
		}
		var r int
		if _, err := fmt.Sscanf(line[strings.Index(line, `"r":`):], `"r":%d`, &r); err != nil {
			t.Fatalf("cannot read round from %s: %v", line, err)
		}
		if r%2 != 0 {
			t.Fatalf("sampled trace leaked odd round %d: %s", r, line)
		}
	}
	if !strings.Contains(a.String(), `"t":"connect"`) {
		t.Fatal("filtered trace is empty; the golden run must produce connects in even rounds")
	}
}
