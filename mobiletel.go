// Package mobiletel is a simulation and algorithms library for the mobile
// telephone model — the abstraction of smartphone peer-to-peer networks
// (Bluetooth LE, Wi-Fi Direct, Multipeer Connectivity) introduced by
// Ghaffari and Newport and studied in Newport's "Leader Election in a
// Smartphone Peer-to-Peer Network" (IPDPS 2017), which this repository
// reproduces.
//
// The package is a facade over the internal engine. It exposes:
//
//   - Topology constructors (Clique, LineOfStars, RandomRegular, ...) with
//     analytic Δ and vertex-expansion metadata;
//   - Schedule constructors describing how the topology evolves over time
//     under a stability factor τ (Static, Permuted, Churn, Waypoint, Merge);
//   - ElectLeader, running any of the paper's three leader election
//     algorithms (BlindGossip, BitConv, AsyncBitConv) to stabilization;
//   - SpreadRumor, running PUSH-PULL or PPUSH rumor spreading;
//   - Experiments / RunExperiment, regenerating every table in
//     EXPERIMENTS.md.
//
// A minimal election:
//
//	topo := mobiletel.RandomRegular(256, 8, 42)
//	res, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.BlindGossip,
//	    mobiletel.Options{Seed: 1})
//	if err != nil { ... }
//	fmt.Println(res.Leader, res.Rounds)
package mobiletel

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"mobiletel/internal/aggregate"
	"mobiletel/internal/consensus"
	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/experiment"
	"mobiletel/internal/fault"
	"mobiletel/internal/gossip"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/matching"
	"mobiletel/internal/obs"
	"mobiletel/internal/rumor"
	"mobiletel/internal/sim"
	"mobiletel/internal/stats"
	"mobiletel/internal/trace"
	"mobiletel/internal/xrand"
)

// Topology is a static network graph with analytic metadata.
type Topology struct {
	family gen.Family
}

// N returns the number of devices.
func (t Topology) N() int { return t.family.N() }

// MaxDegree returns Δ.
func (t Topology) MaxDegree() int { return t.family.MaxDegree() }

// Alpha returns the vertex expansion (exact for structured families,
// heuristic or NaN otherwise — see AlphaExact).
func (t Topology) Alpha() float64 { return t.family.Alpha }

// AlphaExact reports whether Alpha is an exact analytic value.
func (t Topology) AlphaExact() bool { return t.family.AlphaExact }

// Name returns the family name.
func (t Topology) Name() string { return t.family.Name }

// Topology constructors (see internal/graph/gen for the full semantics).

// Clique is the complete graph on n devices.
func Clique(n int) Topology { return Topology{gen.Clique(n)} }

// Path is the path graph on n devices.
func Path(n int) Topology { return Topology{gen.Path(n)} }

// Cycle is the cycle on n devices.
func Cycle(n int) Topology { return Topology{gen.Cycle(n)} }

// Star is the star with one hub and n-1 leaves.
func Star(n int) Topology { return Topology{gen.Star(n)} }

// LineOfStars is the paper's Section VI lower-bound construction.
func LineOfStars(stars, points int) Topology { return Topology{gen.LineOfStars(stars, points)} }

// SqrtLineOfStars is the canonical √n × √n instantiation.
func SqrtLineOfStars(side int) Topology { return Topology{gen.SqrtLineOfStars(side)} }

// RingOfCliques joins k cliques of size s in a ring.
func RingOfCliques(k, s int) Topology { return Topology{gen.RingOfCliques(k, s)} }

// RandomRegular is a random connected d-regular graph.
func RandomRegular(n, d int, seed uint64) Topology { return Topology{gen.RandomRegular(n, d, seed)} }

// ErdosRenyi is a connected G(n, p) sample.
func ErdosRenyi(n int, p float64, seed uint64) Topology { return Topology{gen.ErdosRenyi(n, p, seed)} }

// Grid is the rows×cols grid.
func Grid(rows, cols int) Topology { return Topology{gen.Grid(rows, cols)} }

// Torus is the rows×cols grid with wrap-around edges (4-regular mesh).
func Torus(rows, cols int) Topology { return Topology{gen.Torus(rows, cols)} }

// Expander is a random circulant d-regular expander (even d >= 4): a
// Hamiltonian base cycle plus random chord offsets. Its direct CSR
// construction makes it the million-node workhorse of the scale tier.
func Expander(n, d int, seed uint64) Topology { return Topology{gen.Expander(n, d, seed)} }

// Hypercube is the d-dimensional hypercube.
func Hypercube(d int) Topology { return Topology{gen.Hypercube(d)} }

// Barbell is two s-cliques joined by an edge.
func Barbell(s int) Topology { return Topology{gen.Barbell(s)} }

// BarabasiAlbert is a scale-free preferential-attachment mesh with
// attachment parameter m (heavy-tailed degrees; pronounced hubs).
func BarabasiAlbert(n, m int, seed uint64) Topology {
	return Topology{gen.BarabasiAlbert(n, m, seed)}
}

// CompleteBipartite is K_{a,b}.
func CompleteBipartite(a, b int) Topology { return Topology{gen.CompleteBipartite(a, b)} }

// Petersen is the Petersen graph (10 devices, 3-regular).
func Petersen() Topology { return Topology{gen.Petersen()} }

// Wheel is a hub connected to a cycle of n-1 devices.
func Wheel(n int) Topology { return Topology{gen.Wheel(n)} }

// Separated places two topologies side by side with no connecting edges —
// a disconnected network, used with Merge for the Section VIII
// self-stabilization scenario. Devices of a keep their indices; devices of
// b are shifted by a.N().
func Separated(a, b Topology) Topology { return Topology{gen.DisjointUnion(a.family, b.family)} }

// Schedule describes how the topology evolves over rounds.
type Schedule struct {
	sched dyngraph.Schedule
}

// Name returns a human-readable schedule label.
func (s Schedule) Name() string { return s.sched.Name() }

// Tau returns the schedule's stability factor.
func (s Schedule) Tau() int { return s.sched.Tau() }

// Static never changes the topology (τ = ∞).
func Static(t Topology) Schedule { return Schedule{dyngraph.NewStatic(t.family)} }

// Permuted relabels node positions with a fresh permutation every tau
// rounds — the adversarial mobility schedule (Δ and α preserved exactly).
func Permuted(t Topology, tau int, seed uint64) Schedule {
	return Schedule{dyngraph.NewPermuted(t.family, tau, seed)}
}

// Churn rewires swaps random edge pairs (degree-preserving) every tau rounds.
func Churn(t Topology, tau, swaps int, seed uint64) Schedule {
	return Schedule{dyngraph.NewChurn(t.family, tau, swaps, seed)}
}

// Waypoint is random-waypoint mobility on the unit square with the given
// communication radius and per-epoch speed.
func Waypoint(n int, radius, speed float64, tau int, seed uint64) Schedule {
	return Schedule{dyngraph.NewWaypoint(n, radius, speed, tau, seed)}
}

// Merge serves schedule a until switchRound, then schedule b — the
// self-stabilization scenario of Section VIII.
func Merge(a, b Schedule, switchRound int) Schedule {
	return Schedule{dyngraph.NewSwitch(a.sched, b.sched, switchRound)}
}

// Algorithm selects a leader election algorithm from the paper.
type Algorithm int

const (
	// BlindGossip: Section VI, b = 0, O((1/α)Δ²log²n) rounds.
	BlindGossip Algorithm = iota
	// BitConv: Section VII, b = 1, synchronized starts,
	// O((1/α)Δ^{1/τ̂}τ̂log⁵n) rounds.
	BitConv
	// AsyncBitConv: Section VIII, b = loglog n + O(1), asynchronous
	// activations, self-stabilizing.
	AsyncBitConv
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case BlindGossip:
		return "blindgossip"
	case BitConv:
		return "bitconv"
	case AsyncBitConv:
		return "asyncbitconv"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm resolves a name produced by Algorithm.String.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "blindgossip":
		return BlindGossip, nil
	case "bitconv":
		return BitConv, nil
	case "asyncbitconv":
		return AsyncBitConv, nil
	default:
		return 0, fmt.Errorf("mobiletel: unknown algorithm %q (want blindgossip|bitconv|asyncbitconv)", s)
	}
}

// Options configures an execution.
type Options struct {
	// Seed drives all randomness; runs are deterministic in it.
	Seed uint64
	// MaxRounds aborts a run that has not stabilized (default 10M).
	MaxRounds int
	// Activations gives each device's activation round (1-based). Only
	// meaningful for AsyncBitConv; nil means all start at round 1.
	Activations []int
	// Workers controls engine parallelism (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// UIDs optionally fixes device UIDs; nil draws unique random UIDs from
	// Seed. Must be distinct and nonzero when provided.
	UIDs []uint64
	// OnRound, when non-nil, receives (round, connections) after every
	// executed round — e.g. to render a convergence curve.
	OnRound func(round, connections int)
	// RecordTo, when non-nil, receives a JSON-lines execution recording
	// (per-round connection sets plus final leaders) after the run — a
	// debugging artifact and determinism proof (replaying the same seed and
	// configuration reproduces it byte for byte).
	RecordTo io.Writer
	// TraceTo, when non-nil, receives a structured JSONL event trace of the
	// run (schema mtmtrace/v1 — proposals, accepts, rejects, connections,
	// deliveries, and protocol state transitions; inspect or diff it with
	// cmd/mtmtrace). Tracing works at any Workers setting and the trace is
	// byte-identical across worker counts: parallel phase bodies emit into
	// per-worker buffers merged in chunk order at each barrier, reproducing
	// the sequential ascending-device event order exactly. Fault-injected
	// runs included — fault draws are addressed by (device, round), so their
	// events hold the same place in the stream at any worker count. A run
	// with no trace configured pays zero overhead.
	TraceTo io.Writer
	// TraceSample, when > 1, keeps only events of rounds divisible by it
	// (a deterministic round%N filter), so a traced large run produces a
	// bounded artifact. Applies to TraceTo only; metrics stay exact.
	TraceSample int
	// TraceTypes, when non-empty, keeps only events of the named types
	// (e.g. "connect", "transition"; see the mtmtrace/v1 schema). Composes
	// with TraceSample. Applies to TraceTo only.
	TraceTypes []string
	// MetricsTo, when non-nil, receives a JSON run-metrics summary (schema
	// mtmtrace-metrics/v1: rounds to convergence, acceptance rate, matching
	// sizes vs the Lemma V.1 γ bound, load imbalance, transition counts)
	// after the run. Aggregation is streaming and O(1) in run length, and —
	// like TraceTo — works at any Workers setting.
	MetricsTo io.Writer
	// PhaseProfTo, when non-nil, receives an mtmprof/v1 phase-timing report
	// (JSON) after the run: per-phase wall time, per-worker busy time,
	// chunk-imbalance ratio, and rounds/sec. Render it with mtmtrace prof.
	// The profiler's monotonic clock is injected here in the facade; the
	// engine never reads wall time.
	PhaseProfTo io.Writer
	// Classical runs the execution under *classical* telephone model
	// semantics (a device may serve unboundedly many incoming connections
	// per round) — the related-work baseline, not the paper's model. See
	// experiment E12 for the gap this exposes.
	Classical bool
	// Faults, when non-nil, injects deterministic faults (crash/recover
	// churn, message loss, advertisement corruption, adversarial state
	// resets) into the execution. Faulted runs remain a pure function of
	// (Seed, schedule, algorithm, Options, Faults) at any worker count.
	// With crash faults, ElectLeader's stop condition and reported Leader
	// quantify over up devices only (a crashed device keeps stale state).
	Faults *FaultPlan
	// Check audits every round against the engine's safety invariants
	// (proposal conservation, matching symmetry, down-device silence,
	// advertisement domain bounds) and panics on the first violation. An
	// O(n + connections) debugging aid for faulted runs, off by default.
	Check bool
}

// FaultEvent schedules a scripted crash or recovery of one device at the
// start of one round (rounds are 1-based).
type FaultEvent struct {
	Round  int
	Device int
}

// FaultBurst schedules an adversarial state reset of a set of devices at
// the start of one round — the Section VIII self-stabilization adversary.
type FaultBurst struct {
	Round   int
	Devices []int
}

// FaultPartition schedules a seed-derived network partition: from round
// Start (inclusive) to round Heal (exclusive; 0 = never heals), the devices
// are split into Parts components and every connection crossing a component
// boundary deterministically fails.
type FaultPartition struct {
	Start int
	Heal  int
	Parts int
}

// ParsePartitions parses a comma-separated list of start:heal:parts triples
// (the CLI -partition syntax), e.g. "10:40:2" or "10:40:2,60:0:3". Heal 0
// means the partition never heals. An empty string is no partitions.
func ParsePartitions(s string) ([]FaultPartition, error) {
	if s == "" {
		return nil, nil
	}
	var out []FaultPartition
	for _, spec := range strings.Split(s, ",") {
		var p FaultPartition
		if _, err := fmt.Sscanf(spec, "%d:%d:%d", &p.Start, &p.Heal, &p.Parts); err != nil {
			return nil, fmt.Errorf("mobiletel: bad partition %q (want start:heal:parts): %v", spec, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// FaultPlan mirrors internal/fault.Plan: a deterministic, seed-derived
// description of the faults to inject. The zero value injects nothing.
type FaultPlan struct {
	// Seed derives the fault randomness, independently of Options.Seed, so
	// the same fault pattern can be replayed against different executions.
	Seed uint64
	// CrashRate / RecoverRate are per-round per-device probabilities of an
	// up device crashing and a down device recovering. MaxDown caps the
	// random churn (scripted crashes are exempt); 0 means no cap.
	CrashRate   float64
	RecoverRate float64
	MaxDown     int
	// ResetOnRecover models crash-with-amnesia: a recovering device's
	// protocol state is reset as if freshly started.
	ResetOnRecover bool
	// ProposalLoss / ConnLoss are per-message loss probabilities for
	// connection proposals and accepted connections; TagFlipRate is the
	// per-(device, round) probability of one advertisement bit flipping.
	ProposalLoss float64
	ConnLoss     float64
	TagFlipRate  float64
	// Scripted faults, applied at the start of their round.
	Crashes     []FaultEvent
	Recoveries  []FaultEvent
	Corruptions []FaultBurst
	// Partitions schedules network splits with optional heal rounds.
	Partitions []FaultPartition
}

// compile converts the public plan into a validated engine injector.
func (p *FaultPlan) compile(n int) (*fault.Injector, error) {
	if p == nil {
		return nil, nil
	}
	plan := fault.Plan{
		Seed:           p.Seed,
		CrashRate:      p.CrashRate,
		RecoverRate:    p.RecoverRate,
		MaxDown:        p.MaxDown,
		ResetOnRecover: p.ResetOnRecover,
		ProposalLoss:   p.ProposalLoss,
		ConnLoss:       p.ConnLoss,
		TagFlipRate:    p.TagFlipRate,
	}
	for _, e := range p.Crashes {
		plan.Crashes = append(plan.Crashes, fault.NodeRound{Round: e.Round, Node: e.Device})
	}
	for _, e := range p.Recoveries {
		plan.Recoveries = append(plan.Recoveries, fault.NodeRound{Round: e.Round, Node: e.Device})
	}
	for _, b := range p.Corruptions {
		plan.Corruptions = append(plan.Corruptions, fault.Burst{Round: b.Round, Nodes: b.Devices})
	}
	for _, pt := range p.Partitions {
		plan.Partitions = append(plan.Partitions, fault.Partition{Start: pt.Start, Heal: pt.Heal, Parts: pt.Parts})
	}
	return fault.NewInjector(plan, n)
}

// mayCrash reports whether the plan can ever take a device down — the case
// where stop conditions must ignore down devices.
func (p *FaultPlan) mayCrash() bool {
	return p != nil && (p.CrashRate > 0 || len(p.Crashes) > 0)
}

// observer adapts Options.OnRound to the engine's observer hook.
func (o Options) observer() func(sim.RoundStats) {
	if o.OnRound == nil {
		return nil
	}
	return func(s sim.RoundStats) { o.OnRound(s.Round, s.Connections) }
}

// buildSink assembles the engine event sink for TraceTo/MetricsTo; every
// return is nil when neither destination is set. TraceSample/TraceTypes
// filter the JSONL trace only — the metrics aggregator always sees the full
// stream, so summaries of sampled traces stay exact.
func (o Options) buildSink() (obs.Sink, *obs.JSONL, *obs.Metrics, error) {
	var jsonl *obs.JSONL
	var metrics *obs.Metrics
	var sinks []obs.Sink
	if o.TraceTo != nil {
		jsonl = obs.NewJSONL(o.TraceTo)
		var trace obs.Sink = jsonl
		if o.TraceSample > 1 || len(o.TraceTypes) > 0 {
			types := make([]obs.Type, 0, len(o.TraceTypes))
			for _, name := range o.TraceTypes {
				t, err := obs.ParseType(name)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("mobiletel: trace type filter: %w", err)
				}
				types = append(types, t)
			}
			trace = obs.NewFilter(jsonl, o.TraceSample, types)
		}
		sinks = append(sinks, trace)
	}
	if o.MetricsTo != nil {
		metrics = obs.NewMetrics()
		sinks = append(sinks, metrics)
	}
	switch len(sinks) {
	case 0:
		return nil, nil, nil, nil
	case 1:
		return sinks[0], jsonl, metrics, nil
	default:
		return obs.Tee(sinks...), jsonl, metrics, nil
	}
}

// buildProfiler constructs the phase profiler for PhaseProfTo, injecting a
// monotonic clock (the engine never reads wall time — the norand contract
// keeps internal/ clock-free; the facade is where time enters).
func (o Options) buildProfiler() *obs.Profiler {
	if o.PhaseProfTo == nil {
		return nil
	}
	base := time.Now()
	return obs.NewProfiler(func() int64 { return int64(time.Since(base)) })
}

// writeProf renders the profiler's mtmprof/v1 report as indented JSON.
func writeProf(prof *obs.Profiler, w io.Writer) error {
	if prof == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	rep := prof.Report()
	if err := enc.Encode(&rep); err != nil {
		return fmt.Errorf("mobiletel: writing phase profile: %w", err)
	}
	return nil
}

// drainSinks finalizes trace/metrics output after a run: it surfaces any
// latched trace write error and renders the metrics summary to metricsTo.
func drainSinks(jsonl *obs.JSONL, metrics *obs.Metrics, metricsTo io.Writer) error {
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			return fmt.Errorf("mobiletel: writing trace: %w", err)
		}
	}
	if metrics != nil {
		enc := json.NewEncoder(metricsTo)
		enc.SetIndent("", "  ")
		summary := metrics.Summary()
		if err := enc.Encode(&summary); err != nil {
			return fmt.Errorf("mobiletel: writing metrics: %w", err)
		}
	}
	return nil
}

// setGammaBound supplies the exact cut-matching number γ to the metrics
// aggregator when it is computable: a static schedule small enough for
// matching.GammaExact's exhaustive cut enumeration.
func setGammaBound(metrics *obs.Metrics, s Schedule) {
	if metrics == nil {
		return
	}
	if n := s.sched.N(); s.sched.Tau() == math.MaxInt && n >= 2 && n <= 16 {
		metrics.SetGammaBound(matching.GammaExact(s.sched.GraphAt(1)))
	}
}

// ElectionResult reports a stabilized leader election.
type ElectionResult struct {
	// Leader is the UID every device's leader variable stabilized to.
	Leader uint64
	// Rounds is the stabilization round.
	Rounds int
	// Connections is the total number of peer-to-peer connections used.
	Connections int64
	// UIDs is the UID assignment used (index = device).
	UIDs []uint64
}

// ErrNotStabilized is returned when MaxRounds elapses first.
var ErrNotStabilized = sim.ErrNotStabilized

// ElectLeader runs the chosen algorithm over the schedule until every
// device's leader variable agrees.
func ElectLeader(s Schedule, algo Algorithm, opts Options) (ElectionResult, error) {
	n := s.sched.N()
	if n < 1 {
		return ElectionResult{}, errors.New("mobiletel: empty network")
	}
	uids := opts.UIDs
	if uids == nil {
		uids = core.UniqueUIDs(n, opts.Seed^0x51ede75)
	} else if len(uids) != n {
		return ElectionResult{}, fmt.Errorf("mobiletel: %d UIDs for %d devices", len(uids), n)
	}

	var protocols []sim.Protocol
	tagBits := 0
	params := core.DefaultBitConvParams(n, s.sched.MaxDegree())
	var recorder *sim.Recorder
	if opts.RecordTo != nil {
		recorder = sim.NewRecorder(opts.Seed, s.sched.Name(), n)
	}
	switch algo {
	case BlindGossip:
		protocols = core.NewBlindGossipNetwork(uids)
	case BitConv:
		protocols, _ = core.NewBitConvNetwork(uids, params, opts.Seed^0xb17c0)
		tagBits = 1
	case AsyncBitConv:
		protocols, _ = core.NewAsyncBitConvNetwork(uids, params, opts.Seed^0xa57c0)
		tagBits = core.TagBitsNeeded(params)
	default:
		return ElectionResult{}, fmt.Errorf("mobiletel: unknown algorithm %v", algo)
	}

	injector, err := opts.Faults.compile(n)
	if err != nil {
		return ElectionResult{}, err
	}

	sink, jsonl, metrics, err := opts.buildSink()
	if err != nil {
		return ElectionResult{}, err
	}
	prof := opts.buildProfiler()
	cfg := sim.Config{
		Seed:        opts.Seed,
		TagBits:     tagBits,
		MaxRounds:   opts.MaxRounds,
		Activations: opts.Activations,
		Workers:     opts.Workers,
		Observer:    opts.observer(),
		Classical:   opts.Classical,
		Sink:        sink,
		Profiler:    prof,
		Faults:      injector,
		Check:       opts.Check,
	}
	if recorder != nil {
		recorder.Attach(&cfg)
	}
	eng, err := sim.New(s.sched, protocols, cfg)
	if err != nil {
		return ElectionResult{}, err
	}
	defer eng.Close()
	stop := sim.StopCondition(sim.AllLeadersEqual)
	if opts.Faults.mayCrash() {
		// A crashed device keeps whatever leader it last held, so demanding
		// network-wide agreement would never fire. Elections under crash
		// faults stabilize when every *up* device agrees.
		stop = func(round int, protocols []sim.Protocol) bool {
			var want uint64
			first := true
			for u, p := range protocols {
				if injector.Down(u) {
					continue
				}
				if first {
					want, first = p.Leader(), false
				} else if p.Leader() != want {
					return false
				}
			}
			return !first // at least one device must be up
		}
	}
	res, err := eng.Run(stop)
	if err != nil {
		return ElectionResult{}, err
	}
	if recorder != nil {
		if err := recorder.Finish(protocols).WriteJSONL(opts.RecordTo); err != nil {
			return ElectionResult{}, fmt.Errorf("mobiletel: writing recording: %w", err)
		}
	}
	setGammaBound(metrics, s)
	if err := drainSinks(jsonl, metrics, opts.MetricsTo); err != nil {
		return ElectionResult{}, err
	}
	if err := writeProf(prof, opts.PhaseProfTo); err != nil {
		return ElectionResult{}, err
	}
	leaderOf := 0
	for u := range protocols {
		if !injectorDown(injector, u) {
			leaderOf = u
			break
		}
	}
	return ElectionResult{
		Leader:      protocols[leaderOf].Leader(),
		Rounds:      res.StabilizedRound,
		Connections: res.Connections,
		UIDs:        uids,
	}, nil
}

// injectorDown reports whether device u is down, tolerating a nil injector.
func injectorDown(in *fault.Injector, u int) bool {
	return in != nil && in.Down(u)
}

// RumorStrategy selects a rumor spreading strategy from Section V.
type RumorStrategy int

const (
	// PushPull: b = 0 classical strategy (Corollary VI.6).
	PushPull RumorStrategy = iota
	// PPush: b = 1 productive PUSH (Theorem V.2).
	PPush
)

// String names the strategy.
func (r RumorStrategy) String() string {
	if r == PushPull {
		return "pushpull"
	}
	return "ppush"
}

// RumorResult reports a completed rumor spreading run.
type RumorResult struct {
	// Rounds is the round by which every device knew the rumor.
	Rounds int
	// Connections is the total number of connections used.
	Connections int64
}

// SpreadRumor runs the strategy from the given source devices until the
// whole network is informed.
func SpreadRumor(s Schedule, strategy RumorStrategy, sources []int, opts Options) (RumorResult, error) {
	n := s.sched.N()
	if len(sources) == 0 {
		return RumorResult{}, errors.New("mobiletel: no rumor sources")
	}
	informed := make(map[int]bool, len(sources))
	for _, src := range sources {
		if src < 0 || src >= n {
			return RumorResult{}, fmt.Errorf("mobiletel: source %d out of range [0,%d)", src, n)
		}
		informed[src] = true
	}
	var protocols []sim.Protocol
	tagBits := 0
	switch strategy {
	case PushPull:
		protocols = rumor.NewPushPullNetwork(n, informed)
	case PPush:
		protocols = rumor.NewPPushNetwork(n, informed)
		tagBits = 1
	default:
		return RumorResult{}, fmt.Errorf("mobiletel: unknown strategy %v", strategy)
	}
	// Loss faults (ProposalLoss, ConnLoss) slow spreading realistically;
	// crash faults would leave the crashed device uninformed forever and the
	// AllInformed stop condition would never fire — callers who want churn
	// experiments should use ElectLeader, whose stop quantifies over up
	// devices only.
	injector, err := opts.Faults.compile(n)
	if err != nil {
		return RumorResult{}, err
	}
	sink, jsonl, metrics, err := opts.buildSink()
	if err != nil {
		return RumorResult{}, err
	}
	prof := opts.buildProfiler()
	eng, err := sim.New(s.sched, protocols, sim.Config{
		Seed:      opts.Seed,
		TagBits:   tagBits,
		MaxRounds: opts.MaxRounds,
		Workers:   opts.Workers,
		Observer:  opts.observer(),
		Classical: opts.Classical,
		Sink:      sink,
		Profiler:  prof,
		Faults:    injector,
		Check:     opts.Check,
	})
	if err != nil {
		return RumorResult{}, err
	}
	defer eng.Close()
	res, err := eng.Run(rumor.AllInformed)
	if err != nil {
		return RumorResult{}, err
	}
	setGammaBound(metrics, s)
	if err := drainSinks(jsonl, metrics, opts.MetricsTo); err != nil {
		return RumorResult{}, err
	}
	if err := writeProf(prof, opts.PhaseProfTo); err != nil {
		return RumorResult{}, err
	}
	return RumorResult{Rounds: res.StabilizedRound, Connections: res.Connections}, nil
}

// ExperimentInfo describes one registered reproduction experiment.
type ExperimentInfo struct {
	ID    string
	Claim string
}

// Experiments lists every registered experiment (DESIGN.md §4).
func Experiments() []ExperimentInfo {
	all := experiment.All()
	out := make([]ExperimentInfo, len(all))
	for i, e := range all {
		out[i] = ExperimentInfo{ID: e.ID, Claim: e.Claim}
	}
	return out
}

// ExperimentOptions configures RunExperiment.
type ExperimentOptions struct {
	Seed   uint64
	Trials int  // 0 = experiment default
	Quick  bool // reduced scales
	CSV    bool // render CSV instead of an aligned text table
	// Progress, when non-nil, receives throttled live progress lines
	// (trials/points completed, elapsed time, ETA) while trial batches run —
	// point it at os.Stderr for long experiments.
	Progress io.Writer
	// TraceTo, when non-nil, receives a JSONL event trace (schema
	// mtmtrace/v1) of the experiment's first trial. Experiments that do not
	// run trial batches leave it empty.
	TraceTo io.Writer
	// MetricsTo, when non-nil, receives a JSON metrics summary (schema
	// mtmtrace-metrics/v1) of the experiment's first trial.
	MetricsTo io.Writer
	// PhaseProfTo, when non-nil, receives an mtmprof/v1 phase-timing report
	// of the experiment's first trial (the same trial TraceTo observes);
	// Progress lines additionally show the hottest phases while it runs.
	PhaseProfTo io.Writer
	// CheckpointDir, when non-empty, enables crash-safe per-trial
	// checkpointing: completed trial results are appended to
	// <CheckpointDir>/<id>.ckpt.jsonl and replayed on the next run with the
	// same (id, seed, trials, quick) key, producing a bit-identical table.
	// Stale checkpoints (different key) are rejected with an error.
	CheckpointDir string
	// DieAfter, when > 0, kills the process (exit 3) after that many newly
	// recorded checkpoint cells. Test hook for the resume path; requires
	// CheckpointDir.
	DieAfter int
	// Interrupt, when non-nil, aborts the sweep gracefully once the channel
	// is closed: in-flight trials drain (and checkpoint), no new trials
	// start, and RunExperiment returns ErrInterrupted.
	Interrupt <-chan struct{}
}

// ErrInterrupted is returned by RunExperiment when the sweep was aborted via
// ExperimentOptions.Interrupt. Completed trials were checkpointed (if
// CheckpointDir was set) and a rerun with the same options resumes from them.
var ErrInterrupted = experiment.ErrInterrupted

// RunExperiment regenerates one experiment's table and returns it rendered.
func RunExperiment(id string, opts ExperimentOptions) (string, error) {
	e, ok := experiment.ByID(id)
	if !ok {
		return "", fmt.Errorf("mobiletel: unknown experiment %q", id)
	}
	sink, jsonl, metrics, err := Options{TraceTo: opts.TraceTo, MetricsTo: opts.MetricsTo}.buildSink()
	if err != nil {
		return "", err
	}
	prof := Options{PhaseProfTo: opts.PhaseProfTo}.buildProfiler()
	var ck *experiment.Checkpoint
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return "", fmt.Errorf("mobiletel: creating checkpoint dir: %w", err)
		}
		var err error
		ck, err = experiment.OpenCheckpoint(
			filepath.Join(opts.CheckpointDir, id+".ckpt.jsonl"),
			experiment.CheckpointKey{ID: id, Seed: opts.Seed, Trials: opts.Trials, Quick: opts.Quick},
		)
		if err != nil {
			return "", err
		}
		// Recorded cells are flushed per Record; a close error here cannot
		// lose them.
		defer func() { _ = ck.Close() }()
		ck.SetDieAfter(opts.DieAfter)
	}
	// The harness never reads the clock itself (reproducibility); inject it
	// here so progress lines can show elapsed time and an ETA.
	table, err := e.Run(experiment.Config{
		Seed:       opts.Seed,
		Trials:     opts.Trials,
		Quick:      opts.Quick,
		Progress:   opts.Progress,
		Now:        time.Now,
		Sink:       sink,
		Profiler:   prof,
		Checkpoint: ck,
		Interrupt:  opts.Interrupt,
	})
	if err != nil {
		return "", err
	}
	if err := drainSinks(jsonl, metrics, opts.MetricsTo); err != nil {
		return "", err
	}
	if err := writeProf(prof, opts.PhaseProfTo); err != nil {
		return "", err
	}
	if opts.CSV {
		var sb strings.Builder
		if err := table.WriteCSV(&sb); err != nil {
			return "", err
		}
		return sb.String(), nil
	}
	return table.Text(), nil
}

// Decide runs single-value consensus over the schedule: each device proposes
// a value, and the network agrees on the proposal of the elected leader.
// Validity (the decision is some device's proposal) and agreement are
// inherited from leader election; the substrate is the non-synchronized bit
// convergence algorithm, so Options.Activations is honored.
func Decide(s Schedule, proposals []uint64, opts Options) (DecisionResult, error) {
	n := s.sched.N()
	if len(proposals) != n {
		return DecisionResult{}, fmt.Errorf("mobiletel: %d proposals for %d devices", len(proposals), n)
	}
	params := core.DefaultBitConvParams(n, s.sched.MaxDegree())
	protocols, _ := consensus.NewNetwork(proposals, params, opts.Seed^0xdec1de)
	eng, err := sim.New(s.sched, protocols, sim.Config{
		Seed:        opts.Seed,
		TagBits:     consensus.TagBits(params),
		MaxRounds:   opts.MaxRounds,
		Activations: opts.Activations,
		Workers:     opts.Workers,
	})
	if err != nil {
		return DecisionResult{}, err
	}
	defer eng.Close()
	res, err := eng.Run(consensus.AllAgree)
	if err != nil {
		return DecisionResult{}, err
	}
	winner := protocols[0].(*consensus.Proposer)
	return DecisionResult{Value: winner.Value(), Leader: winner.Leader(), Rounds: res.StabilizedRound}, nil
}

// DecisionResult reports a completed consensus.
type DecisionResult struct {
	// Value is the agreed value (the leader's proposal).
	Value uint64
	// Leader is the UID of the device whose proposal won.
	Leader uint64
	// Rounds is the round by which all devices agreed.
	Rounds int
}

// AggregateKind selects what Aggregate computes.
type AggregateKind int

const (
	// Min converges to the exact minimum input (blind-gossip spread).
	Min AggregateKind = iota
	// Max converges to the exact maximum input.
	Max
	// Mean converges to the average input via pairwise mass averaging.
	Mean
	// Count estimates the network size (inputs are ignored).
	Count
	// Sum estimates the total of the inputs.
	Sum
)

// String names the aggregate.
func (k AggregateKind) String() string {
	switch k {
	case Min:
		return "min"
	case Max:
		return "max"
	case Mean:
		return "mean"
	case Count:
		return "count"
	case Sum:
		return "sum"
	default:
		return fmt.Sprintf("AggregateKind(%d)", int(k))
	}
}

// AggregateResult reports a completed aggregation.
type AggregateResult struct {
	// Estimates holds each device's final estimate.
	Estimates []float64
	// Rounds is the round at which the stop criterion held.
	Rounds int
}

// Aggregate computes a network-wide aggregate of the inputs. Min and Max
// run until all devices hold the exact answer; Mean, Count, and Sum run
// until every device's estimate is within rel of the true value (the truth
// is computed locally from inputs — this is a simulation, after all).
// For Count, inputs may be nil.
func Aggregate(s Schedule, kind AggregateKind, inputs []float64, rel float64, opts Options) (AggregateResult, error) {
	n := s.sched.N()
	if kind != Count && len(inputs) != n {
		return AggregateResult{}, fmt.Errorf("mobiletel: %d inputs for %d devices", len(inputs), n)
	}
	var protocols []sim.Protocol
	var stop sim.StopCondition
	switch kind {
	case Min, Max:
		protocols = make([]sim.Protocol, n)
		for i := range protocols {
			if kind == Min {
				protocols[i] = aggregate.NewMin(inputs[i])
			} else {
				protocols[i] = aggregate.NewMax(inputs[i])
			}
		}
		stop = sim.AllLeadersEqual
	case Mean:
		truth := 0.0
		for _, x := range inputs {
			truth += x
		}
		truth /= float64(n)
		protocols = aggregate.NewMeanNetwork(inputs)
		stop = aggregate.WithinTolerance(truth, rel)
	case Count:
		protocols = aggregate.NewCountNetwork(n, 0)
		stop = aggregate.WithinTolerance(float64(n), rel)
	case Sum:
		truth := 0.0
		for _, x := range inputs {
			truth += x
		}
		protocols = aggregate.NewSumNetwork(inputs, 0)
		stop = aggregate.WithinTolerance(truth, rel)
	default:
		return AggregateResult{}, fmt.Errorf("mobiletel: unknown aggregate %v", kind)
	}

	eng, err := sim.New(s.sched, protocols, sim.Config{
		Seed: opts.Seed, MaxRounds: opts.MaxRounds, Workers: opts.Workers,
	})
	if err != nil {
		return AggregateResult{}, err
	}
	defer eng.Close()
	res, err := eng.Run(stop)
	if err != nil {
		return AggregateResult{}, err
	}
	estimates := make([]float64, n)
	for i, p := range protocols {
		switch q := p.(type) {
		case *aggregate.Extremum:
			estimates[i] = q.Estimate()
		case *aggregate.Averager:
			estimates[i] = q.Estimate()
		}
	}
	return AggregateResult{Estimates: estimates, Rounds: res.StabilizedRound}, nil
}

// GossipResult reports a completed all-to-all gossip run.
type GossipResult struct {
	// Rounds is the round by which every device knew every rumor.
	Rounds int
	// Connections is the total number of connections used.
	Connections int64
}

// GossipAll runs all-to-all rumor spreading: every device starts with one
// rumor and the run completes when every device knows all n rumors (one of
// the follow-on problems from the paper's conclusion). Each connection
// carries one rumor in each direction, respecting the O(1)-UID budget.
func GossipAll(s Schedule, opts Options) (GossipResult, error) {
	n := s.sched.N()
	protocols := gossip.NewNetwork(n)
	eng, err := sim.New(s.sched, protocols, sim.Config{
		Seed:      opts.Seed,
		MaxRounds: opts.MaxRounds,
		Workers:   opts.Workers,
		Observer:  opts.observer(),
	})
	if err != nil {
		return GossipResult{}, err
	}
	defer eng.Close()
	res, err := eng.Run(gossip.AllComplete)
	if err != nil {
		return GossipResult{}, err
	}
	return GossipResult{Rounds: res.StabilizedRound, Connections: res.Connections}, nil
}

// SweepRow is one aggregated row of a RunSweep result.
type SweepRow struct {
	Label  string
	Trials int
	Median float64
	P90    float64
	Mean   float64
	Min    float64
	Max    float64
}

// RunSweep is the building block for custom parameter studies: for every
// label it runs `trials` independent trials of fn (in parallel, each with a
// distinct derived seed) and aggregates the returned round counts. fn must
// be safe for concurrent calls; errors abort the sweep.
//
//	rows, _ := mobiletel.RunSweep([]string{"tau=1", "tau=8"}, 20, 1,
//	    func(label string, seed uint64) (int, error) {
//	        tau := 1
//	        if label == "tau=8" { tau = 8 }
//	        res, err := mobiletel.ElectLeader(
//	            mobiletel.Permuted(topo, tau, seed), mobiletel.BitConv,
//	            mobiletel.Options{Seed: seed})
//	        return res.Rounds, err
//	    })
func RunSweep(labels []string, trials int, seed uint64, fn func(label string, trialSeed uint64) (int, error)) ([]SweepRow, error) {
	if trials < 1 {
		return nil, errors.New("mobiletel: RunSweep needs trials >= 1")
	}
	rows := make([]SweepRow, 0, len(labels))
	for li, label := range labels {
		rounds := make([]int, trials)
		errs := make([]error, trials)
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for trial := 0; trial < trials; trial++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(trial int) {
				defer wg.Done()
				defer func() { <-sem }()
				trialSeed := xrand.Mix3(seed, uint64(li), uint64(trial))
				rounds[trial], errs[trial] = fn(label, trialSeed)
			}(trial)
		}
		wg.Wait()
		for trial, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("mobiletel: sweep %q trial %d: %w", label, trial, err)
			}
		}
		s := stats.IntSummary(rounds)
		rows = append(rows, SweepRow{
			Label: label, Trials: trials,
			Median: s.Median, P90: s.P90, Mean: s.Mean, Min: s.Min, Max: s.Max,
		})
	}
	return rows, nil
}

// FormatSweep renders sweep rows as an aligned text table.
func FormatSweep(title string, rows []SweepRow) string {
	table := trace.NewTable(title, "label", "trials", "median", "p90", "mean", "min", "max")
	for _, r := range rows {
		table.AddRow(r.Label, r.Trials, r.Median, r.P90, r.Mean, r.Min, r.Max)
	}
	return table.Text()
}
