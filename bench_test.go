package mobiletel_test

// bench_test.go is the benchmark face of the reproduction harness: one
// benchmark per experiment in DESIGN.md §4 (each regenerates its table in
// quick mode), plus per-algorithm benchmarks of the facade. Regenerate the
// full-scale tables with `go run ./cmd/mtmexp -run all`.

import (
	"testing"

	"mobiletel"
)

// benchExperiment runs one registered experiment in quick mode per
// iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := mobiletel.RunExperiment(id, mobiletel.ExperimentOptions{
			Seed: 20170529, Trials: 2, Quick: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1BlindGossipScaling(b *testing.B)    { benchExperiment(b, "E1-blindgossip-scaling") }
func BenchmarkE2LineOfStarsLowerBound(b *testing.B) { benchExperiment(b, "E2-blindgossip-lowerbound") }
func BenchmarkE3PushPullBound(b *testing.B)         { benchExperiment(b, "E3-pushpull-bound") }
func BenchmarkE4CutMatching(b *testing.B)           { benchExperiment(b, "E4-lemma-v1-gamma") }
func BenchmarkE5PPushApprox(b *testing.B)           { benchExperiment(b, "E5-ppush-approx") }
func BenchmarkE6BitConvTau(b *testing.B)            { benchExperiment(b, "E6-bitconv-tau") }
func BenchmarkE7GapZeroOne(b *testing.B)            { benchExperiment(b, "E7-zero-vs-one-bit") }
func BenchmarkE8AsyncBitConv(b *testing.B)          { benchExperiment(b, "E8-async-bitconv") }
func BenchmarkE9SelfStabilize(b *testing.B)         { benchExperiment(b, "E9-self-stabilization") }
func BenchmarkE10Churn(b *testing.B)                { benchExperiment(b, "E10-churn-robustness") }
func BenchmarkE11GoodEdges(b *testing.B)            { benchExperiment(b, "E11-good-edge-probability") }
func BenchmarkE12Classical(b *testing.B)            { benchExperiment(b, "E12-classical-vs-mobile") }
func BenchmarkA1AblationGroupLen(b *testing.B)      { benchExperiment(b, "A1-ablation-grouplen") }
func BenchmarkA2AblationTagBits(b *testing.B)       { benchExperiment(b, "A2-ablation-tagbits") }
func BenchmarkA3AblationAccept(b *testing.B)        { benchExperiment(b, "A3-ablation-accept") }

// Facade-level benchmarks: full elections end to end.

func benchElect(b *testing.B, topo mobiletel.Topology, algo mobiletel.Algorithm) {
	b.Helper()
	sched := mobiletel.Static(topo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mobiletel.ElectLeader(sched, algo, mobiletel.Options{Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkElectBlindGossipMesh256(b *testing.B) {
	benchElect(b, mobiletel.RandomRegular(256, 8, 1), mobiletel.BlindGossip)
}

func BenchmarkElectBitConvMesh256(b *testing.B) {
	benchElect(b, mobiletel.RandomRegular(256, 8, 1), mobiletel.BitConv)
}

func BenchmarkElectAsyncBitConvMesh256(b *testing.B) {
	benchElect(b, mobiletel.RandomRegular(256, 8, 1), mobiletel.AsyncBitConv)
}

func BenchmarkElectBlindGossipLineOfStars(b *testing.B) {
	benchElect(b, mobiletel.SqrtLineOfStars(12), mobiletel.BlindGossip)
}

func BenchmarkElectBitConvLineOfStars(b *testing.B) {
	benchElect(b, mobiletel.SqrtLineOfStars(12), mobiletel.BitConv)
}

func BenchmarkRumorPushPull(b *testing.B) {
	sched := mobiletel.Static(mobiletel.RandomRegular(256, 8, 1))
	for i := 0; i < b.N; i++ {
		if _, err := mobiletel.SpreadRumor(sched, mobiletel.PushPull, []int{0},
			mobiletel.Options{Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRumorPPush(b *testing.B) {
	sched := mobiletel.Static(mobiletel.RandomRegular(256, 8, 1))
	for i := 0; i < b.N; i++ {
		if _, err := mobiletel.SpreadRumor(sched, mobiletel.PPush, []int{0},
			mobiletel.Options{Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}
