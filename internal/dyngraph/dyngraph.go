// Package dyngraph implements the dynamic network topologies of the mobile
// telephone model (Section III of the paper): a dynamic graph is a sequence
// G_1, G_2, ... of static graphs over a fixed node set, constrained by a
// stability factor τ — at least τ rounds must pass between topology changes.
// τ = 1 allows arbitrary change every round; Static schedules model τ = ∞.
//
// The paper's upper bounds hold for every τ-stable dynamic graph, so any
// schedule here is a valid test harness. The schedules provided stress the
// quantities the proofs range over (cut matchings that change every τ
// rounds) in different ways: epoch-wise regeneration, shape-preserving
// permutation, degree-preserving churn, and random-waypoint mobility.
//
// Schedules are deterministic functions of their seed: GraphAt(r) always
// returns the same topology for the same round, regardless of query order.
package dyngraph

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"mobiletel/internal/graph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/xrand"
)

// Schedule supplies the topology for each round of an execution.
type Schedule interface {
	// GraphAt returns the topology for round r >= 1. Implementations must be
	// deterministic in r and must respect Tau: GraphAt(r) == GraphAt(r') for
	// any r, r' in the same epoch of Tau() rounds.
	GraphAt(r int) *graph.Graph

	// Tau returns the guaranteed stability factor τ >= 1. Infinity (a never-
	// changing topology) is reported as math.MaxInt.
	Tau() int

	// N returns the (constant) number of nodes.
	N() int

	// MaxDegree returns an upper bound on Δ over all rounds.
	MaxDegree() int

	// Alpha returns the dynamic graph's vertex expansion — the minimum over
	// all constituent graphs — when known, else NaN.
	Alpha() float64

	// Name returns a short human-readable label for reports.
	Name() string
}

// InfiniteTau is the Tau() value reported by schedules that never change.
const InfiniteTau = math.MaxInt

// Static wraps a single graph as a never-changing schedule (τ = ∞).
type Static struct {
	family gen.Family
}

// NewStatic returns a schedule that always serves f's graph.
func NewStatic(f gen.Family) *Static { return &Static{family: f} }

func (s *Static) GraphAt(r int) *graph.Graph {
	if r < 1 {
		panic("dyngraph: round must be >= 1")
	}
	return s.family.Graph
}
func (s *Static) Tau() int           { return InfiniteTau }
func (s *Static) N() int             { return s.family.N() }
func (s *Static) MaxDegree() int     { return s.family.MaxDegree() }
func (s *Static) Alpha() float64     { return s.family.Alpha }
func (s *Static) Name() string       { return "static/" + s.family.Name }
func (s *Static) Family() gen.Family { return s.family }

// epoch returns the 0-based epoch index of round r under stability tau.
func epoch(r, tau int) int {
	if r < 1 {
		panic("dyngraph: round must be >= 1")
	}
	return (r - 1) / tau
}

// Regenerate produces a fresh graph from a family generator every τ rounds.
// Each epoch's graph is generated with a seed derived from (seed, epoch), so
// random access is cheap and deterministic. All epochs share the generator,
// hence the same analytic Δ and α.
//
// Generated graphs are memoized keyed by their epoch seed (a pure function of
// (seed, epoch)), so re-reading rounds of a recent epoch — the pattern of
// both simulations and Validate — never re-runs the generator. The memo is
// bounded: once it holds regenMemoCap graphs the oldest entry is evicted.
type Regenerate struct {
	generate func(seed uint64) gen.Family
	seed     uint64
	tau      int
	name     string

	proto gen.Family // epoch-0 instance, used for metadata

	memo     map[uint64]*graph.Graph
	memoFIFO []uint64 // insertion order, for eviction
}

// regenMemoCap bounds Regenerate's per-epoch memo. Simulations walk epochs
// in order with occasional short look-backs, so a small window is enough.
const regenMemoCap = 16

// NewRegenerate builds a schedule that regenerates the topology every tau
// rounds by calling generate with per-epoch seeds.
func NewRegenerate(name string, tau int, seed uint64, generate func(seed uint64) gen.Family) *Regenerate {
	if tau < 1 {
		panic("dyngraph: tau must be >= 1")
	}
	proto := generate(xrand.Mix3(seed, 0, 0))
	s := &Regenerate{
		generate: generate,
		seed:     seed,
		tau:      tau,
		name:     name,
		proto:    proto,
		memo:     make(map[uint64]*graph.Graph, regenMemoCap),
	}
	s.remember(xrand.Mix3(seed, 0, 0), proto.Graph)
	return s
}

func (s *Regenerate) remember(key uint64, g *graph.Graph) {
	if len(s.memoFIFO) >= regenMemoCap {
		delete(s.memo, s.memoFIFO[0])
		s.memoFIFO = s.memoFIFO[1:]
	}
	s.memo[key] = g
	s.memoFIFO = append(s.memoFIFO, key)
}

func (s *Regenerate) GraphAt(r int) *graph.Graph {
	key := xrand.Mix3(s.seed, uint64(epoch(r, s.tau)), 0)
	if g, ok := s.memo[key]; ok {
		return g
	}
	g := s.generate(key).Graph
	s.remember(key, g)
	return g
}
func (s *Regenerate) Tau() int       { return s.tau }
func (s *Regenerate) N() int         { return s.proto.N() }
func (s *Regenerate) MaxDegree() int { return s.proto.MaxDegree() }
func (s *Regenerate) Alpha() float64 { return s.proto.Alpha }
func (s *Regenerate) Name() string   { return fmt.Sprintf("regen/%s/tau=%d", s.name, s.tau) }

// Permuted keeps a fixed graph shape but relabels which node occupies which
// position every τ rounds, via a fresh uniform permutation per epoch. This
// is the adversarial schedule for leader election: the node holding the
// minimum UID is relocated every epoch, so no algorithm can rely on
// persistent neighborhoods — while Δ and α stay exactly those of the base
// family in every round.
type Permuted struct {
	base gen.Family
	seed uint64
	tau  int

	rng     xrand.RNG
	perm    []int // per-epoch permutation scratch, reused across epochs
	scratch graph.RelabelScratch

	cachedEpoch int
	cached      *graph.Graph
}

// NewPermuted builds a permuted schedule over the base family.
func NewPermuted(base gen.Family, tau int, seed uint64) *Permuted {
	if tau < 1 {
		panic("dyngraph: tau must be >= 1")
	}
	s := &Permuted{base: base, seed: seed, tau: tau, perm: make([]int, base.N()), cachedEpoch: -1}
	s.cached = s.build(0)
	s.cachedEpoch = 0
	return s
}

// build materializes epoch e's relabeling as a permutation view over the
// immutable base CSR: an O(n+m) RelabelInto with no Builder and no sort,
// with the inverse-permutation and cursor scratch reused across epochs so a
// 1M-node epoch boundary allocates only the result arrays. The result is
// bit-identical (graph.Equal) to rebuilding the permuted edge set from
// scratch; TestPermutedRelabelMatchesBuilder pins this for 100 epochs.
// The result's own arrays are fresh per epoch on purpose — consumers like
// Validate hold the previous epoch's graph across the boundary.
func (s *Permuted) build(e int) *graph.Graph {
	s.rng.Reseed(s.seed, uint64(e), 0x9e) // same stream as Derive(seed, e, 0x9e)
	s.rng.PermInto(s.perm)
	return s.base.Graph.RelabelInto(s.perm, &s.scratch)
}

func (s *Permuted) GraphAt(r int) *graph.Graph {
	e := epoch(r, s.tau)
	if e != s.cachedEpoch {
		s.cached = s.build(e)
		s.cachedEpoch = e
	}
	return s.cached
}
func (s *Permuted) Tau() int       { return s.tau }
func (s *Permuted) N() int         { return s.base.N() }
func (s *Permuted) MaxDegree() int { return s.base.MaxDegree() }
func (s *Permuted) Alpha() float64 { return s.base.Alpha }
func (s *Permuted) Name() string   { return fmt.Sprintf("permuted/%s/tau=%d", s.base.Name, s.tau) }

// Churn applies a burst of degree-preserving double-edge swaps to the
// topology every τ rounds, modeling gradual link churn: most of the graph
// persists across an epoch boundary, but a tunable fraction of edges move.
// Degrees (hence Δ) are invariant; α is reported as NaN because churn does
// not preserve expansion exactly.
//
// Churn supports only forward access with arbitrary re-reads inside the
// current epoch (the access pattern of a simulation); it replays from the
// start if asked for an earlier epoch.
type Churn struct {
	base          gen.Family
	seed          uint64
	tau           int
	swapsPerEpoch int

	curEpoch int
	edges    [][2]int32
	edgeSet  map[[2]int32]int
	deg      []int32 // buildGraph counting scratch, reused across epochs
	cur      *graph.Graph
	rng      *xrand.RNG
}

// NewChurn builds a churn schedule over base, performing swapsPerEpoch
// accepted-or-rejected swap attempts at each epoch boundary.
func NewChurn(base gen.Family, tau, swapsPerEpoch int, seed uint64) *Churn {
	if tau < 1 || swapsPerEpoch < 0 {
		panic("dyngraph: bad churn parameters")
	}
	c := &Churn{base: base, seed: seed, tau: tau, swapsPerEpoch: swapsPerEpoch}
	c.reset()
	return c
}

func (c *Churn) reset() {
	c.curEpoch = 0
	c.rng = xrand.Derive(c.seed, 0xc4, 0)
	c.edges = c.edges[:0]
	c.edgeSet = make(map[[2]int32]int, c.base.Graph.M())
	c.base.Graph.Edges(func(u, v int) {
		e := [2]int32{int32(u), int32(v)}
		c.edgeSet[e] = len(c.edges)
		c.edges = append(c.edges, e)
	})
	c.cur = c.base.Graph
}

// advanceOneEpoch applies one epoch's worth of swaps and rebuilds the graph,
// retrying the burst if it disconnected the topology.
func (c *Churn) advanceOneEpoch() {
	m := len(c.edges)
	if m < 2 || c.swapsPerEpoch == 0 {
		c.curEpoch++
		return
	}
	backupEdges := append([][2]int32(nil), c.edges...)
	for attempt := 0; ; attempt++ {
		for i := 0; i < c.swapsPerEpoch; i++ {
			c.trySwap()
		}
		g := c.buildGraph()
		if g.Connected() {
			c.cur = g
			c.curEpoch++
			return
		}
		if attempt > 50 {
			// Give up churning this epoch; keep the previous topology
			// (a legal dynamic graph — changes are optional).
			c.edges = backupEdges
			c.rebuildSet()
			c.curEpoch++
			return
		}
		// Restore and retry with fresh randomness (the rng has advanced).
		c.edges = append(c.edges[:0], backupEdges...)
		c.rebuildSet()
	}
}

func (c *Churn) rebuildSet() {
	for k := range c.edgeSet {
		delete(c.edgeSet, k)
	}
	for i, e := range c.edges {
		c.edgeSet[e] = i
	}
}

func (c *Churn) trySwap() {
	m := len(c.edges)
	i, j := c.rng.Intn(m), c.rng.Intn(m)
	if i == j {
		return
	}
	a, b := c.edges[i][0], c.edges[i][1]
	d, e := c.edges[j][0], c.edges[j][1]
	if c.rng.Bool() {
		d, e = e, d
	}
	if a == e || d == b || a == d || b == e {
		return
	}
	ne1 := canonEdge(a, e)
	ne2 := canonEdge(d, b)
	if _, dup := c.edgeSet[ne1]; dup {
		return
	}
	if _, dup := c.edgeSet[ne2]; dup {
		return
	}
	delete(c.edgeSet, c.edges[i])
	delete(c.edgeSet, c.edges[j])
	c.edges[i], c.edges[j] = ne1, ne2
	c.edgeSet[ne1] = i
	c.edgeSet[ne2] = j
}

func canonEdge(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

// buildGraph materializes the current edge list in O(n + m log Δ) without
// the Builder's global O(m log m) edge sort: counting-sort endpoints into
// CSR (degree/cursor scratch reused across epochs), then sort each short
// adjacency list. The offsets/adj arrays are fresh per epoch on purpose —
// consumers hold the previous epoch's graph across the boundary.
func (c *Churn) buildGraph() *graph.Graph {
	n := c.base.N()
	if cap(c.deg) < n {
		c.deg = make([]int32, n)
	}
	deg := c.deg[:n]
	clear(deg)
	for _, e := range c.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, n+1)
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + deg[u]
	}
	adj := make([]int32, 2*len(c.edges))
	cursor := deg // degree counts double as scatter cursors
	copy(cursor, offsets[:n])
	for _, e := range c.edges {
		adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		adj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	for u := 0; u < n; u++ {
		slices.Sort(adj[offsets[u]:offsets[u+1]])
	}
	return graph.MustFromCSR(offsets, adj)
}

func (c *Churn) GraphAt(r int) *graph.Graph {
	e := epoch(r, c.tau)
	if e < c.curEpoch {
		c.reset()
	}
	for c.curEpoch < e {
		c.advanceOneEpoch()
	}
	return c.cur
}
func (c *Churn) Tau() int       { return c.tau }
func (c *Churn) N() int         { return c.base.N() }
func (c *Churn) MaxDegree() int { return c.base.MaxDegree() }
func (c *Churn) Alpha() float64 { return math.NaN() }
func (c *Churn) Name() string {
	return fmt.Sprintf("churn/%s/tau=%d/swaps=%d", c.base.Name, c.tau, c.swapsPerEpoch)
}

// Waypoint is a random-waypoint mobility schedule: nodes live on the unit
// square, pick random destinations, and move toward them at a per-epoch
// speed; the topology of each epoch is the unit-disk graph of the current
// positions, augmented (when necessary) with a chain through the nodes in
// x-order as a connectivity backstop — mirroring how smartphone meshes relay
// through intermediate devices rather than partitioning.
//
// Like Churn, Waypoint replays from the start when asked for an epoch before
// the current one.
type Waypoint struct {
	n      int
	radius float64
	speed  float64
	tau    int
	seed   uint64

	curEpoch int
	px, py   []float64
	dx, dy   []float64
	cur      *graph.Graph
	maxDeg   int
	rng      *xrand.RNG
}

// NewWaypoint creates a mobility schedule for n nodes with communication
// radius radius (unit square), per-epoch movement speed, and stability tau.
func NewWaypoint(n int, radius, speed float64, tau int, seed uint64) *Waypoint {
	if n < 2 || radius <= 0 || speed < 0 || tau < 1 {
		panic("dyngraph: bad waypoint parameters")
	}
	w := &Waypoint{n: n, radius: radius, speed: speed, tau: tau, seed: seed}
	w.reset()
	return w
}

func (w *Waypoint) reset() {
	w.curEpoch = 0
	w.rng = xrand.Derive(w.seed, 0x3a, 0)
	w.px = make([]float64, w.n)
	w.py = make([]float64, w.n)
	w.dx = make([]float64, w.n)
	w.dy = make([]float64, w.n)
	for i := 0; i < w.n; i++ {
		w.px[i], w.py[i] = w.rng.Float64(), w.rng.Float64()
		w.dx[i], w.dy[i] = w.rng.Float64(), w.rng.Float64()
	}
	w.rebuild()
}

func (w *Waypoint) step() {
	for i := 0; i < w.n; i++ {
		vx, vy := w.dx[i]-w.px[i], w.dy[i]-w.py[i]
		dist := math.Hypot(vx, vy)
		if dist <= w.speed {
			// Arrived: pick a new destination.
			w.px[i], w.py[i] = w.dx[i], w.dy[i]
			w.dx[i], w.dy[i] = w.rng.Float64(), w.rng.Float64()
			continue
		}
		w.px[i] += vx / dist * w.speed
		w.py[i] += vy / dist * w.speed
	}
	w.rebuild()
	w.curEpoch++
}

// rebuild constructs the unit-disk graph over current positions via a grid
// index, then adds an x-order chain among consecutive non-adjacent nodes if
// the disk graph is disconnected.
func (w *Waypoint) rebuild() {
	cell := w.radius
	type cellKey struct{ cx, cy int }
	// Track first-seen key order so edge insertion below never depends on
	// map iteration order (node positions are deterministic per seed, so
	// this order is too).
	buckets := make(map[cellKey][]int)
	var order []cellKey
	for i := 0; i < w.n; i++ {
		k := cellKey{int(w.px[i] / cell), int(w.py[i] / cell)}
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], i)
	}
	b := graph.NewBuilder(w.n)
	added := make(map[[2]int32]bool)
	addEdge := func(u, v int) {
		e := canonEdge(int32(u), int32(v))
		if !added[e] {
			added[e] = true
			b.AddEdge(int(e[0]), int(e[1]))
		}
	}
	r2 := w.radius * w.radius
	for _, k := range order {
		nodes := buckets[k]
		for ddx := -1; ddx <= 1; ddx++ {
			for ddy := -1; ddy <= 1; ddy++ {
				other := buckets[cellKey{k.cx + ddx, k.cy + ddy}]
				for _, u := range nodes {
					for _, v := range other {
						if u < v {
							ux, uy := w.px[u]-w.px[v], w.py[u]-w.py[v]
							if ux*ux+uy*uy <= r2 {
								addEdge(u, v)
							}
						}
					}
				}
			}
		}
	}
	g := b.MustBuild()
	if !g.Connected() {
		// Connectivity backstop: chain nodes in x-order.
		order := make([]int, w.n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			if w.px[order[i]] != w.px[order[j]] {
				return w.px[order[i]] < w.px[order[j]]
			}
			return order[i] < order[j]
		})
		for i := 0; i+1 < w.n; i++ {
			addEdge(order[i], order[i+1])
		}
		g = b.MustBuild()
	}
	w.cur = g
	if g.MaxDegree() > w.maxDeg {
		w.maxDeg = g.MaxDegree()
	}
}

func (w *Waypoint) GraphAt(r int) *graph.Graph {
	e := epoch(r, w.tau)
	if e < w.curEpoch {
		w.reset()
	}
	for w.curEpoch < e {
		w.step()
	}
	return w.cur
}
func (w *Waypoint) Tau() int { return w.tau }
func (w *Waypoint) N() int   { return w.n }

// MaxDegree returns the maximum degree observed so far; it can grow as more
// epochs are materialized. Unit-disk degree is bounded by local density.
func (w *Waypoint) MaxDegree() int { return w.maxDeg }
func (w *Waypoint) Alpha() float64 { return math.NaN() }
func (w *Waypoint) Name() string {
	return fmt.Sprintf("waypoint/n=%d/r=%.2f/tau=%d", w.n, w.radius, w.tau)
}

// Switch serves schedule A for the first switchRound-1 rounds and B from
// switchRound on. It models the self-stabilization scenario of Section VIII:
// isolated components that have run for arbitrary durations are joined into
// one network. Tau is the minimum of the parts (and the switch itself is a
// topology change, so callers should align switchRound with epoch
// boundaries if they need strict τ guarantees across the seam).
type Switch struct {
	A, B        Schedule
	SwitchRound int
}

// NewSwitch composes two schedules at switchRound.
func NewSwitch(a, b Schedule, switchRound int) *Switch {
	if a.N() != b.N() {
		panic("dyngraph: Switch requires equal node counts")
	}
	if switchRound < 1 {
		panic("dyngraph: switch round must be >= 1")
	}
	return &Switch{A: a, B: b, SwitchRound: switchRound}
}

func (s *Switch) GraphAt(r int) *graph.Graph {
	if r < s.SwitchRound {
		return s.A.GraphAt(r)
	}
	return s.B.GraphAt(r - s.SwitchRound + 1)
}
func (s *Switch) Tau() int {
	t := s.A.Tau()
	if s.B.Tau() < t {
		t = s.B.Tau()
	}
	return t
}
func (s *Switch) N() int { return s.A.N() }
func (s *Switch) MaxDegree() int {
	d := s.A.MaxDegree()
	if s.B.MaxDegree() > d {
		d = s.B.MaxDegree()
	}
	return d
}
func (s *Switch) Alpha() float64 {
	a, b := s.A.Alpha(), s.B.Alpha()
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	return math.Min(a, b)
}
func (s *Switch) Name() string {
	return fmt.Sprintf("switch(%s->%s@%d)", s.A.Name(), s.B.Name(), s.SwitchRound)
}

// Validate checks that sched respects its declared stability factor over the
// first rounds rounds: the graph may change only at epoch boundaries.
// It returns an error naming the first offending round.
func Validate(sched Schedule, rounds int) error {
	tau := sched.Tau()
	if tau == InfiniteTau {
		first := sched.GraphAt(1)
		for r := 2; r <= rounds; r++ {
			if !sched.GraphAt(r).Equal(first) {
				return fmt.Errorf("dyngraph: static schedule %s changed at round %d", sched.Name(), r)
			}
		}
		return nil
	}
	prev := sched.GraphAt(1)
	lastChange := 1
	for r := 2; r <= rounds; r++ {
		g := sched.GraphAt(r)
		if !g.Equal(prev) {
			if r-lastChange < tau {
				return fmt.Errorf("dyngraph: schedule %s changed at round %d, only %d rounds after round %d (τ=%d)",
					sched.Name(), r, r-lastChange, lastChange, tau)
			}
			lastChange = r
			prev = g
		}
	}
	return nil
}
