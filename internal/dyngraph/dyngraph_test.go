package dyngraph

import (
	"math"
	"testing"

	"mobiletel/internal/graph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/xrand"
)

func TestStaticNeverChanges(t *testing.T) {
	s := NewStatic(gen.Cycle(10))
	if s.Tau() != InfiniteTau {
		t.Fatalf("static tau = %d", s.Tau())
	}
	if err := Validate(s, 50); err != nil {
		t.Fatal(err)
	}
	if s.N() != 10 || s.MaxDegree() != 2 {
		t.Fatalf("static metadata wrong: n=%d Δ=%d", s.N(), s.MaxDegree())
	}
	if s.Alpha() != gen.Cycle(10).Alpha {
		t.Fatal("static alpha does not match family")
	}
}

func TestStaticRejectsRoundZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("round 0 did not panic")
		}
	}()
	NewStatic(gen.Cycle(5)).GraphAt(0)
}

func TestRegenerateRespectsTau(t *testing.T) {
	for _, tau := range []int{1, 3, 7} {
		s := NewRegenerate("rr", tau, 42, func(seed uint64) gen.Family {
			return gen.RandomRegular(20, 4, seed)
		})
		if err := Validate(s, 40); err != nil {
			t.Fatalf("tau=%d: %v", tau, err)
		}
		// Within an epoch, identical; across, (almost surely) different.
		if !s.GraphAt(1).Equal(s.GraphAt(tau)) {
			t.Fatalf("tau=%d: graph changed within epoch", tau)
		}
		if s.GraphAt(1).Equal(s.GraphAt(tau + 1)) {
			t.Fatalf("tau=%d: graph unchanged across epoch (suspicious)", tau)
		}
	}
}

func TestRegenerateDeterministicRandomAccess(t *testing.T) {
	mk := func() *Regenerate {
		return NewRegenerate("rr", 5, 7, func(seed uint64) gen.Family {
			return gen.RandomRegular(16, 4, seed)
		})
	}
	a, b := mk(), mk()
	// Query out of order; must agree with in-order queries.
	ga := a.GraphAt(23)
	for r := 1; r <= 23; r++ {
		b.GraphAt(r)
	}
	if !ga.Equal(b.GraphAt(23)) {
		t.Fatal("random access disagreed with sequential access")
	}
}

func TestPermutedPreservesShape(t *testing.T) {
	base := gen.SqrtLineOfStars(4)
	s := NewPermuted(base, 2, 99)
	for r := 1; r <= 10; r++ {
		g := s.GraphAt(r)
		if g.N() != base.N() || g.M() != base.Graph.M() {
			t.Fatalf("round %d: shape changed n=%d m=%d", r, g.N(), g.M())
		}
		if g.MaxDegree() != base.MaxDegree() {
			t.Fatalf("round %d: Δ=%d, want %d", r, g.MaxDegree(), base.MaxDegree())
		}
		if !g.Connected() {
			t.Fatalf("round %d: disconnected", r)
		}
	}
	if err := Validate(s, 20); err != nil {
		t.Fatal(err)
	}
	if s.GraphAt(1).Equal(s.GraphAt(3)) {
		t.Fatal("permutation did not change the graph across epochs (suspicious)")
	}
}

func TestPermutedTauOne(t *testing.T) {
	s := NewPermuted(gen.Cycle(12), 1, 5)
	if err := Validate(s, 15); err != nil {
		t.Fatal(err)
	}
	// With tau=1 the graph should change nearly every round.
	changes := 0
	for r := 2; r <= 15; r++ {
		if !s.GraphAt(r).Equal(s.GraphAt(r - 1)) {
			changes++
		}
	}
	if changes < 10 {
		t.Fatalf("only %d changes in 14 transitions under tau=1", changes)
	}
}

func TestChurnPreservesDegreesAndConnectivity(t *testing.T) {
	base := gen.RandomRegular(30, 4, 3)
	s := NewChurn(base, 2, 10, 17)
	for r := 1; r <= 30; r++ {
		g := s.GraphAt(r)
		if !g.Connected() {
			t.Fatalf("round %d: churned graph disconnected", r)
		}
		for u := 0; u < g.N(); u++ {
			if g.Degree(u) != 4 {
				t.Fatalf("round %d: node %d degree %d, want 4", r, u, g.Degree(u))
			}
		}
	}
	if err := Validate(s, 30); err != nil {
		t.Fatal(err)
	}
}

func TestChurnReplaysDeterministically(t *testing.T) {
	base := gen.RandomRegular(20, 4, 1)
	s := NewChurn(base, 1, 5, 9)
	g10 := s.GraphAt(10)
	// Going backward triggers a replay from scratch.
	g3 := s.GraphAt(3)
	if !s.GraphAt(10).Equal(g10) {
		t.Fatal("churn replay diverged at round 10")
	}
	if !s.GraphAt(3).Equal(g3) {
		t.Fatal("churn replay diverged at round 3")
	}
}

func TestChurnActuallyChurns(t *testing.T) {
	base := gen.RandomRegular(40, 4, 2)
	s := NewChurn(base, 1, 20, 11)
	if s.GraphAt(1).Equal(s.GraphAt(2)) {
		t.Fatal("churn with 20 swaps produced no change (suspicious)")
	}
}

func TestWaypointConnectivityAndStability(t *testing.T) {
	w := NewWaypoint(50, 0.25, 0.05, 3, 21)
	for r := 1; r <= 30; r++ {
		if !w.GraphAt(r).Connected() {
			t.Fatalf("round %d: waypoint graph disconnected", r)
		}
	}
	if err := Validate(w, 30); err != nil {
		t.Fatal(err)
	}
}

func TestWaypointReplaysDeterministically(t *testing.T) {
	w := NewWaypoint(30, 0.3, 0.1, 2, 4)
	g8 := w.GraphAt(8)
	w.GraphAt(2) // rewind
	if !w.GraphAt(8).Equal(g8) {
		t.Fatal("waypoint replay diverged")
	}
}

func TestWaypointMoves(t *testing.T) {
	w := NewWaypoint(40, 0.3, 0.2, 1, 8)
	same := 0
	for r := 2; r <= 10; r++ {
		if w.GraphAt(r).Equal(w.GraphAt(r - 1)) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("waypoint with speed 0.2 kept the same graph %d/9 transitions", same)
	}
}

func TestSwitchServesBothParts(t *testing.T) {
	a := NewStatic(gen.Cycle(10))
	b := NewStatic(gen.Clique(10))
	s := NewSwitch(a, b, 6)
	if s.GraphAt(5).MaxDegree() != 2 {
		t.Fatal("pre-switch graph wrong")
	}
	if s.GraphAt(6).MaxDegree() != 9 {
		t.Fatal("post-switch graph wrong")
	}
	if s.N() != 10 || s.MaxDegree() != 9 {
		t.Fatalf("switch metadata: n=%d Δ=%d", s.N(), s.MaxDegree())
	}
	if s.Alpha() != math.Min(a.Alpha(), b.Alpha()) {
		t.Fatal("switch alpha not the min")
	}
}

func TestSwitchRejectsMismatchedN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched N did not panic")
		}
	}()
	NewSwitch(NewStatic(gen.Cycle(10)), NewStatic(gen.Cycle(12)), 5)
}

func TestValidateCatchesViolations(t *testing.T) {
	// A schedule that lies about its tau: changes every round, claims 5.
	inner := NewPermuted(gen.Cycle(12), 1, 5)
	liar := &liarSchedule{inner: inner}
	if err := Validate(liar, 10); err == nil {
		t.Fatal("Validate accepted a schedule that changes faster than its tau")
	}
	// A lying static schedule must also be caught.
	liar2 := &liarStatic{inner: inner}
	if err := Validate(liar2, 10); err == nil {
		t.Fatal("Validate accepted a changing schedule claiming tau=inf")
	}
}

// liarSchedule wraps a tau=1 schedule but claims tau=5.
type liarSchedule struct{ inner Schedule }

func (l *liarSchedule) GraphAt(r int) *graph.Graph { return l.inner.GraphAt(r) }
func (l *liarSchedule) Tau() int                   { return 5 }
func (l *liarSchedule) N() int                     { return l.inner.N() }
func (l *liarSchedule) MaxDegree() int             { return l.inner.MaxDegree() }
func (l *liarSchedule) Alpha() float64             { return l.inner.Alpha() }
func (l *liarSchedule) Name() string               { return "liar" }

// liarStatic wraps a tau=1 schedule but claims it never changes.
type liarStatic struct{ inner Schedule }

func (l *liarStatic) GraphAt(r int) *graph.Graph { return l.inner.GraphAt(r) }
func (l *liarStatic) Tau() int                   { return InfiniteTau }
func (l *liarStatic) N() int                     { return l.inner.N() }
func (l *liarStatic) MaxDegree() int             { return l.inner.MaxDegree() }
func (l *liarStatic) Alpha() float64             { return l.inner.Alpha() }
func (l *liarStatic) Name() string               { return "liar-static" }

func TestRegenerateRejectsBadTau(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tau=0 did not panic")
		}
	}()
	NewRegenerate("x", 0, 1, func(seed uint64) gen.Family { return gen.Cycle(5) })
}

func BenchmarkPermutedEpoch(b *testing.B) {
	s := NewPermuted(gen.RandomRegular(1000, 6, 1), 1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.GraphAt(i + 1)
	}
}

func BenchmarkChurnEpoch(b *testing.B) {
	s := NewChurn(gen.RandomRegular(1000, 6, 1), 1, 50, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.GraphAt(i + 1)
	}
}

// TestPermutedRelabelMatchesBuilder pins the optimization contract of the
// Relabel-based permutation view: for 100 random epochs, the O(n+m) view must
// be graph.Equal to rebuilding the permuted edge set through a Builder — the
// exact construction Permuted used before the relabeling fast path.
func TestPermutedRelabelMatchesBuilder(t *testing.T) {
	for _, fam := range []gen.Family{
		gen.RandomRegular(64, 6, 7),
		gen.SqrtLineOfStars(6), // skewed degrees: hubs vs leaves
		gen.Cycle(17),
	} {
		s := NewPermuted(fam, 1, 99)
		for e := 0; e < 100; e++ {
			got := s.GraphAt(e + 1) // tau=1: round r is epoch r-1
			perm := xrand.Derive(uint64(99), uint64(e), 0x9e).Perm(fam.N())
			b := graph.NewBuilder(fam.N())
			fam.Graph.Edges(func(u, v int) { b.AddEdge(perm[u], perm[v]) })
			want := b.MustBuild()
			if !got.Equal(want) {
				t.Fatalf("%s epoch %d: relabel view differs from builder-built graph", fam.Name, e)
			}
		}
	}
}

// TestRegenerateMemoBounded checks that the per-epoch memo caps its size and
// still serves identical graphs for re-queried epochs after eviction.
func TestRegenerateMemoBounded(t *testing.T) {
	calls := 0
	s := NewRegenerate("cyc", 1, 5, func(seed uint64) gen.Family {
		calls++
		return gen.RandomRegular(16, 4, seed)
	})
	first := s.GraphAt(1)
	if got := s.GraphAt(1); got != first {
		t.Fatal("re-query of cached epoch regenerated the graph")
	}
	callsBefore := calls
	if s.GraphAt(1) != first {
		t.Fatal("cached epoch changed")
	}
	if calls != callsBefore {
		t.Fatalf("cached epoch re-ran the generator (%d -> %d calls)", callsBefore, calls)
	}
	// Walk far past the memo window, then come back: the graph must be
	// regenerated (pointer may differ) but identical in structure.
	for r := 1; r <= 4*regenMemoCap; r++ {
		s.GraphAt(r)
	}
	if len(s.memo) > regenMemoCap || len(s.memoFIFO) > regenMemoCap {
		t.Fatalf("memo grew past cap: %d entries, %d keys", len(s.memo), len(s.memoFIFO))
	}
	if again := s.GraphAt(1); !again.Equal(first) {
		t.Fatal("epoch 0 regenerated differently after eviction")
	}
}
