// Package atomicwrite provides crash-safe file writes for result outputs:
// data lands in a temp file in the target directory, is fsynced, and is
// renamed into place. A reader therefore sees either the complete old file
// or the complete new file — never a torn one — and an interrupted run
// leaves at worst an orphaned *.tmp-* file, not a half-written table.
//
// All result/output writes in the cmd/ binaries must go through this
// package; the mtmlint atomicwrite analyzer enforces it.
package atomicwrite

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: temp file in path's
// directory, write, fsync, rename.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := create(path, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // aborting; the write error is the one worth reporting
		return err
	}
	return f.Commit()
}

// File is a streaming atomic writer. Write as much as needed, then Commit
// to atomically publish the file at its final path; Close without a prior
// Commit aborts, removing the temp file. The usual shape is:
//
//	f, err := atomicwrite.Create(path)
//	if err != nil { ... }
//	defer f.Close() // no-op after Commit; aborts on early return
//	...write...
//	return f.Commit()
type File struct {
	f         *os.File
	path      string // final destination
	tmp       string // temp file currently holding the data
	perm      os.FileMode
	committed bool
	err       error // first write error, latched
}

// Create opens a streaming atomic writer that will publish to path (mode
// 0o644) on Commit.
func Create(path string) (*File, error) {
	return create(path, 0o644)
}

func create(path string, perm os.FileMode) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	// The temp file must live in the destination directory: rename(2) is
	// only atomic within a filesystem.
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("atomicwrite: %w", err)
	}
	return &File{f: f, path: path, tmp: f.Name(), perm: perm}, nil
}

// Write appends to the pending temp file. The first error is latched and
// re-returned by Commit, so intermediate errors may be ignored.
func (w *File) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.f.Write(p)
	if err != nil {
		w.err = err
	}
	return n, err
}

// Name returns the final destination path.
func (w *File) Name() string { return w.path }

// Commit fsyncs the temp file, fixes its permissions, and renames it over
// the destination. After Commit, Close is a no-op.
func (w *File) Commit() error {
	if w.committed {
		return fmt.Errorf("atomicwrite: double Commit of %s", w.path)
	}
	w.committed = true
	err := w.err
	if err == nil {
		err = w.f.Sync()
	}
	if err == nil {
		err = w.f.Chmod(w.perm)
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(w.tmp, w.path)
	}
	if err != nil {
		_ = os.Remove(w.tmp) // best-effort cleanup; the commit error dominates
		return fmt.Errorf("atomicwrite: %s: %w", w.path, err)
	}
	return nil
}

// Close aborts an uncommitted write, closing and removing the temp file so
// a failed run leaves no partial output behind. After Commit it is a no-op.
func (w *File) Close() error {
	if w.committed {
		return nil
	}
	w.committed = true
	err := w.f.Close()
	if rerr := os.Remove(w.tmp); err == nil {
		err = rerr
	}
	return err
}
