package atomicwrite

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFile(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a,b\n1,2\n" {
		t.Errorf("content = %q", got)
	}
	// Overwrite replaces the whole file.
	if err := WriteFile(path, []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "x\n" {
		t.Errorf("after overwrite = %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestStreamingCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != path {
		t.Errorf("Name = %q, want %q", f.Name(), path)
	}
	if _, err := f.Write([]byte("line 1\n")); err != nil {
		t.Fatal(err)
	}
	// The destination must not exist until Commit.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("destination visible before Commit")
	}
	if _, err := f.Write([]byte("line 2\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "line 1\nline 2\n" {
		t.Errorf("content = %q", got)
	}
	if err := f.Close(); err != nil {
		t.Errorf("Close after Commit = %v, want nil", err)
	}
	if err := f.Commit(); err == nil {
		t.Error("double Commit succeeded")
	}
	assertNoTempFiles(t, dir)
}

func TestCloseAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	// Pre-existing content must survive an aborted rewrite.
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half-written")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Errorf("aborted write clobbered destination: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	f, err := Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	// The temp file is gone; a Write must surface an error that Commit
	// would latch rather than publishing a truncated file.
	if _, err := f.Write([]byte("late")); err == nil {
		t.Error("Write after Close succeeded")
	}
}

func TestCreateInMissingDir(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Error("Create in missing directory succeeded")
	}
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "x"), nil, 0o644); err == nil {
		t.Error("WriteFile in missing directory succeeded")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}
