// Package invariant is the engine's per-round safety checker: a cheap,
// allocation-light audit of the state the round core leaves behind, run
// behind sim.Config.Check. It exists for fault injection — the fault layer
// removes proposals, cuts connections, and silences nodes in ways the
// fault-free engine never does, and every removal must still balance the
// books. The checks:
//
//   - Conservation: every proposal lands in exactly one bucket —
//     Accepts + Rejects + BusyLost + FaultLost == Proposals — and the
//     proposal and accept counters match independent recounts from the
//     actions and partner arrays.
//   - Matching symmetry / one-sided-partner sanity: partner is a symmetric
//     matching over graph edges, each matched pair joins exactly one
//     receiver with a sender that proposed to it, and every partnered
//     receiver was actually proposed to by its partner.
//   - Down-node silence: a down node is inactive, and every inactive node
//     advertises nothing, proposes nothing, and connects to nobody.
//   - Tag-domain bounds: every active node's advertised tag fits in
//     TagBits.
//
// The package holds the engine's action encoding (sim aliases these
// constants) so a View can be audited without importing sim.
package invariant

import (
	"fmt"

	"mobiletel/internal/graph"
)

// Action encoding of the engine's per-node decision array.
const (
	// ActionReceive marks a node that elected to receive proposals.
	ActionReceive = int32(-1)
	// ActionInactive marks a node outside its activation window (or down).
	ActionInactive = int32(-2)
	// NoPartner marks a node with no established connection this round.
	NoPartner = int32(-1)
)

// Stats is the engine's accounting for one round.
type Stats struct {
	Proposals int
	Accepts   int
	Rejects   int
	BusyLost  int
	FaultLost int
}

// View is one round's end state as the engine left it. Slices are borrowed,
// never mutated.
type View struct {
	Round int

	// G is the round's communication graph.
	G *graph.Graph

	// Active is the per-node activity mask; nil means every node was active.
	Active []bool

	// Down is the fault layer's down mask; nil means nobody was down.
	Down []bool

	// Actions holds each node's decision: >= 0 is a proposal target,
	// ActionReceive a receiver, ActionInactive an inactive node.
	Actions []int32

	// Partner holds each node's established connection peer, or NoPartner.
	Partner []int32

	// Tags holds the advertised tags (inactive nodes advertise 0).
	Tags []uint64

	// TagBits bounds the tag domain (0..64).
	TagBits int

	Stats Stats
}

// Check audits one round and returns the first violated invariant, or nil.
// It allocates only on failure.
func Check(v View) error {
	n := len(v.Actions)
	if len(v.Partner) != n || len(v.Tags) != n {
		return fmt.Errorf("invariant: inconsistent view: %d actions, %d partners, %d tags",
			n, len(v.Partner), len(v.Tags))
	}
	s := v.Stats
	if s.Accepts+s.Rejects+s.BusyLost+s.FaultLost != s.Proposals {
		return fmt.Errorf("invariant: conservation violated: accepts %d + rejects %d + busy_lost %d + fault_lost %d != proposals %d",
			s.Accepts, s.Rejects, s.BusyLost, s.FaultLost, s.Proposals)
	}

	var tagLimit uint64
	if v.TagBits < 64 {
		tagLimit = uint64(1) << uint(v.TagBits)
	}
	proposals, matched := 0, 0
	for u := 0; u < n; u++ {
		act := v.Active == nil || v.Active[u]
		if v.Down != nil && v.Down[u] && act {
			return fmt.Errorf("invariant: down node %d is active", u)
		}
		a, p := v.Actions[u], v.Partner[u]
		if !act {
			// Down-node silence (and inactive-node silence in general).
			switch {
			case a != ActionInactive:
				return fmt.Errorf("invariant: inactive node %d has action %d, want %d", u, a, ActionInactive)
			case p != NoPartner:
				return fmt.Errorf("invariant: inactive node %d has partner %d", u, p)
			case v.Tags[u] != 0:
				return fmt.Errorf("invariant: inactive node %d advertises tag %d", u, v.Tags[u])
			}
			continue
		}
		if tagLimit != 0 && v.Tags[u] >= tagLimit {
			return fmt.Errorf("invariant: node %d advertises tag %d outside the %d-bit domain", u, v.Tags[u], v.TagBits)
		}
		switch {
		case a >= 0:
			proposals++
			if int(a) >= n || a == int32(u) {
				return fmt.Errorf("invariant: node %d proposed to invalid target %d", u, a)
			}
			if !v.G.HasEdge(u, int(a)) {
				return fmt.Errorf("invariant: node %d proposed to non-neighbor %d", u, a)
			}
			if v.Active != nil && !v.Active[a] {
				return fmt.Errorf("invariant: node %d proposed to inactive node %d", u, a)
			}
		case a != ActionReceive:
			return fmt.Errorf("invariant: active node %d has unknown action %d", u, a)
		}
		if p == NoPartner {
			continue
		}
		matched++
		if int(p) >= n || p < 0 || p == int32(u) {
			return fmt.Errorf("invariant: node %d has invalid partner %d", u, p)
		}
		if v.Partner[p] != int32(u) {
			return fmt.Errorf("invariant: asymmetric matching: partner[%d] = %d but partner[%d] = %d",
				u, p, p, v.Partner[p])
		}
		if !v.G.HasEdge(u, int(p)) {
			return fmt.Errorf("invariant: nodes %d and %d connected without an edge", u, p)
		}
		// One-sided-partner sanity: exactly one endpoint is the receiver,
		// and the sender's proposal targeted that receiver.
		uRecv, pRecv := a == ActionReceive, v.Actions[p] == ActionReceive
		switch {
		case uRecv == pRecv:
			return fmt.Errorf("invariant: connection %d-%d joins two %s", u, p,
				map[bool]string{true: "receivers", false: "senders"}[uRecv])
		case uRecv && v.Actions[p] != int32(u):
			return fmt.Errorf("invariant: receiver %d partnered sender %d whose proposal targeted %d",
				u, p, v.Actions[p])
		case pRecv && a != p:
			return fmt.Errorf("invariant: sender %d partnered receiver %d but proposed to %d", u, p, a)
		}
	}
	if proposals != s.Proposals {
		return fmt.Errorf("invariant: engine counted %d proposals, actions array holds %d", s.Proposals, proposals)
	}
	if matched != 2*s.Accepts {
		return fmt.Errorf("invariant: engine counted %d accepts, partner array holds %d matched endpoints (want %d)",
			s.Accepts, matched, 2*s.Accepts)
	}
	return nil
}
