package invariant

import (
	"strings"
	"testing"

	"mobiletel/internal/graph/gen"
)

// cleanView builds a hand-checked end-of-round state on the 6-node path
// 0-1-2-3-4-5: node 0's proposal to receiver 1 is accepted, node 2's
// proposal to receiver 3 is lost to a fault, node 4 is down, node 5 is an
// idle receiver.
func cleanView() View {
	return View{
		Round:   3,
		G:       gen.Path(6).Graph,
		Active:  []bool{true, true, true, true, false, true},
		Down:    []bool{false, false, false, false, true, false},
		Actions: []int32{1, ActionReceive, 3, ActionReceive, ActionInactive, ActionReceive},
		Partner: []int32{1, 0, NoPartner, NoPartner, NoPartner, NoPartner},
		Tags:    []uint64{2, 1, 3, 0, 0, 2},
		TagBits: 2,
		Stats:   Stats{Proposals: 2, Accepts: 1, FaultLost: 1},
	}
}

func TestCheckCleanView(t *testing.T) {
	if err := Check(cleanView()); err != nil {
		t.Fatalf("hand-checked view rejected: %v", err)
	}
	// TagBits 64 means the whole uint64 domain: no bound to violate.
	v := cleanView()
	v.TagBits = 64
	v.Tags[0] = ^uint64(0)
	if err := Check(v); err != nil {
		t.Fatalf("64-bit tag domain rejected: %v", err)
	}
	// Nil Active and Down masks mean everybody is up: rebuild the view with
	// node 4 as an idle receiver instead.
	v = cleanView()
	v.Active, v.Down = nil, nil
	v.Actions[4] = ActionReceive
	if err := Check(v); err != nil {
		t.Fatalf("nil-mask view rejected: %v", err)
	}
}

func TestCheckViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(v *View)
		want   string // substring of the error
	}{
		{"short partner slice", func(v *View) { v.Partner = v.Partner[:5] }, "inconsistent view"},
		{"conservation broken", func(v *View) { v.Stats.FaultLost = 0 }, "conservation violated"},
		{"down node active", func(v *View) { v.Down[0] = true }, "down node 0 is active"},
		{"inactive node acts", func(v *View) { v.Actions[4] = ActionReceive }, "inactive node 4 has action"},
		{"inactive node partnered", func(v *View) { v.Partner[4] = 3 }, "inactive node 4 has partner"},
		{"inactive node advertises", func(v *View) { v.Tags[4] = 1 }, "advertises tag 1"},
		{"tag out of domain", func(v *View) { v.Tags[5] = 4 }, "outside the 2-bit domain"},
		{"proposal to self", func(v *View) { v.Actions[2] = 2 }, "invalid target"},
		{"proposal out of range", func(v *View) { v.Actions[2] = 6 }, "invalid target"},
		{"proposal to non-neighbor", func(v *View) { v.Actions[2] = 5 }, "non-neighbor"},
		{"proposal to inactive node", func(v *View) {
			v.Actions[3], v.Actions[4] = 4, ActionReceive
			// Keep node 4 "active" per the mask contradiction under test:
			// only the Active mask is consulted for target liveness.
			v.Actions[3] = 4
		}, "proposed to inactive node 4"},
		{"unknown action", func(v *View) { v.Actions[5] = -7 }, "unknown action"},
		{"partner out of range", func(v *View) { v.Partner[5] = 9 }, "invalid partner"},
		{"asymmetric matching", func(v *View) { v.Partner[1] = NoPartner }, "asymmetric matching"},
		{"partner without edge", func(v *View) {
			// 2 and 5 are not adjacent on the path; fake a symmetric match
			// between two receivers (the edge audit precedes the
			// one-receiver-per-pair audit).
			v.Actions[2] = ActionReceive
			v.Partner[2], v.Partner[5] = 5, 2
			v.Stats = Stats{Proposals: 2, Accepts: 2}
		}, "without an edge"},
		{"two receivers connected", func(v *View) {
			v.Actions[0] = ActionReceive
			v.Stats.Proposals, v.Stats.Accepts, v.Stats.FaultLost = 1, 1, 0
		}, "joins two receivers"},
		{"two senders connected", func(v *View) {
			v.Actions[1] = 0
			v.Stats.Proposals, v.Stats.Rejects = 3, 1
		}, "joins two senders"},
		{"receiver partnered a sender that proposed elsewhere", func(v *View) {
			// 1 receives and partners 2, but 2's proposal targeted 3.
			v.Actions[0] = ActionReceive
			v.Partner[0], v.Partner[1], v.Partner[2] = NoPartner, 2, 1
			v.Stats.Proposals = 1
			v.Stats.FaultLost = 0
		}, "whose proposal targeted 3"},
		{"sender partnered a receiver it did not propose to", func(v *View) {
			// 2 proposed to 3 but partners receiver 1.
			v.Actions[0] = ActionReceive
			v.Partner[0], v.Partner[1], v.Partner[2] = NoPartner, 2, 1
			v.Stats.Proposals = 1
			v.Stats.FaultLost = 0
			// Make 1 the non-receiver side first so the sender branch fires.
			v.Actions[1] = ActionReceive // (kept: receiver check on node 1 fires first)
		}, "whose proposal targeted 3"},
		{"proposal recount mismatch", func(v *View) {
			v.Stats.Proposals, v.Stats.FaultLost = 3, 2
		}, "actions array holds 2"},
		{"accept recount mismatch", func(v *View) {
			v.Partner[0], v.Partner[1] = NoPartner, NoPartner
			v.Stats.Accepts, v.Stats.Rejects = 1, 0
		}, "matched endpoints"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := cleanView()
			tc.mutate(&v)
			err := Check(v)
			if err == nil {
				t.Fatal("corrupted view passed the audit")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
