package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mobiletel/internal/xrand"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P99 != 7 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample did not panic")
		}
	}()
	Summarize(nil)
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Fatalf("median of {0,10} = %v", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile([]float64{1, 2, 3, 4}, 0.25); !almostEqual(q, 1.75, 1e-12) {
		t.Fatalf("q0.25 of {1..4} = %v", q)
	}
}

func TestQuantileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("q=1.5 did not panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantileOrderedProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntSummary(t *testing.T) {
	s := IntSummary([]int{2, 4, 6})
	if s.Mean != 4 || s.Count != 3 {
		t.Fatalf("IntSummary wrong: %+v", s)
	}
}

func TestLinearFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	f := LinearFit(x, y)
	if !almostEqual(f.Slope, 2, 1e-12) || !almostEqual(f.Intercept, 3, 1e-12) {
		t.Fatalf("fit %+v", f)
	}
	if !almostEqual(f.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestLinearFitNoise(t *testing.T) {
	rng := xrand.New(5)
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = float64(i)
		y[i] = 3*x[i] + 10 + (rng.Float64()-0.5)*2
	}
	f := LinearFit(x, y)
	if !almostEqual(f.Slope, 3, 0.01) {
		t.Fatalf("slope %v", f.Slope)
	}
	if f.R2 < 0.999 {
		t.Fatalf("R2 %v too low", f.R2)
	}
}

func TestLinearFitDegeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("constant x did not panic")
		}
	}()
	LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
}

func TestLogLogFitRecoverExponent(t *testing.T) {
	// y = 4 * x^2.5
	x := []float64{1, 2, 4, 8, 16, 32}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 4 * math.Pow(x[i], 2.5)
	}
	f := LogLogFit(x, y)
	if !almostEqual(f.Slope, 2.5, 1e-9) {
		t.Fatalf("exponent %v, want 2.5", f.Slope)
	}
	if !almostEqual(math.Exp(f.Intercept), 4, 1e-9) {
		t.Fatalf("constant %v, want 4", math.Exp(f.Intercept))
	}
}

func TestLogLogFitRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive value did not panic")
		}
	}()
	LogLogFit([]float64{1, 0}, []float64{1, 1})
}

func TestRatio(t *testing.T) {
	s := Ratio([]float64{10, 20}, []float64{2, 4})
	if s.Mean != 5 {
		t.Fatalf("ratio mean %v", s.Mean)
	}
}

func TestRatioZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero denominator did not panic")
		}
	}()
	Ratio([]float64{1}, []float64{0})
}

func TestGeometricMean(t *testing.T) {
	if g := GeometricMean([]float64{1, 4}); !almostEqual(g, 2, 1e-12) {
		t.Fatalf("geomean %v", g)
	}
	if g := GeometricMean([]float64{8}); !almostEqual(g, 8, 1e-12) {
		t.Fatalf("geomean singleton %v", g)
	}
}

func TestGeometricMeanNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative value did not panic")
		}
	}()
	GeometricMean([]float64{-1})
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.1, 0.2, 0.6, 0.9, -5, 42}, 2, 0, 1)
	// -5 clamps to bucket 0; 42 clamps to bucket 1.
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("histogram %v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Histogram(nil, 0, 0, 1) },
		func() { Histogram(nil, 2, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestChiSquareUniform(t *testing.T) {
	// Perfectly uniform counts -> statistic 0.
	if chi := ChiSquareUniform([]int{10, 10, 10}); chi != 0 {
		t.Fatalf("uniform chi2 = %v", chi)
	}
	// Skewed counts -> large statistic.
	if chi := ChiSquareUniform([]int{30, 0, 0}); chi <= 10 {
		t.Fatalf("skewed chi2 = %v too small", chi)
	}
}

func TestChiSquarePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { ChiSquareUniform([]int{5}) },
		func() { ChiSquareUniform([]int{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
