// Package stats provides the statistical plumbing the experiment harness
// uses to read "with high probability" theorems empirically: trial
// aggregation with quantiles, and least-squares fits (including log-log
// fits for estimating scaling exponents like the Δ² in Theorem VI.1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize on empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)

	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	varSum := 0.0
	for _, x := range sorted {
		d := x - mean
		varSum += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(varSum / float64(len(sorted)-1))
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Quantile(sorted, 0.5),
		P90:    Quantile(sorted, 0.9),
		P99:    Quantile(sorted, 0.99),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sorted sample using
// linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile on empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// IntSummary converts integer observations (e.g. stabilization rounds) and
// summarizes them.
func IntSummary(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Fit is a least-squares line y = Slope*x + Intercept with goodness R2.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes the ordinary least squares fit of y on x.
// It panics if the slices differ in length or have fewer than 2 points.
func LinearFit(x, y []float64) Fit {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		panic("stats: LinearFit needs at least 2 points")
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		panic("stats: LinearFit degenerate x values")
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n

	// R² = 1 - SSres/SStot.
	meanY := sy / n
	ssTot, ssRes := 0.0, 0.0
	for i := range x {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// LogLogFit fits log(y) = Slope*log(x) + Intercept, i.e. estimates the
// exponent p in y ≈ c·x^p. All inputs must be strictly positive.
func LogLogFit(x, y []float64) Fit {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: LogLogFit needs positive values")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	return LinearFit(lx, ly)
}

// Ratio computes elementwise y[i]/x[i] summaries, used to test whether a
// measured quantity tracks a predicted bound up to a constant.
func Ratio(y, x []float64) Summary {
	if len(x) != len(y) {
		panic("stats: Ratio length mismatch")
	}
	rs := make([]float64, len(x))
	for i := range x {
		if x[i] == 0 {
			panic("stats: Ratio division by zero")
		}
		rs[i] = y[i] / x[i]
	}
	return Summarize(rs)
}

// GeometricMean returns the geometric mean of strictly positive values.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: GeometricMean on empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeometricMean needs positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Histogram bins values into k equal-width buckets over [min, max] and
// returns the counts. Values outside the range clamp to the end buckets.
func Histogram(xs []float64, k int, min, max float64) []int {
	if k < 1 {
		panic("stats: Histogram needs k >= 1")
	}
	if !(max > min) {
		panic("stats: Histogram needs max > min")
	}
	counts := make([]int, k)
	width := (max - min) / float64(k)
	for _, x := range xs {
		idx := int((x - min) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= k {
			idx = k - 1
		}
		counts[idx]++
	}
	return counts
}

// ChiSquareUniform computes the chi-squared statistic of counts against the
// uniform expectation. Degrees of freedom are len(counts)-1; the caller
// compares against a critical value for the significance level they want.
func ChiSquareUniform(counts []int) float64 {
	if len(counts) < 2 {
		panic("stats: ChiSquareUniform needs >= 2 buckets")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		panic("stats: ChiSquareUniform on empty counts")
	}
	expected := float64(total) / float64(len(counts))
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}
