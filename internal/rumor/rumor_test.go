package rumor_test

import (
	"testing"

	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/rumor"
	"mobiletel/internal/sim"
)

func runSpread(t *testing.T, sched dyngraph.Schedule, protocols []sim.Protocol, tagBits int, seed uint64) sim.Result {
	t.Helper()
	eng, err := sim.New(sched, protocols, sim.Config{Seed: seed, TagBits: tagBits, MaxRounds: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(rumor.AllInformed)
	if err != nil {
		t.Fatalf("rumor did not spread: %v", err)
	}
	return res
}

func TestPushPullSpreadsOnFamilies(t *testing.T) {
	families := []gen.Family{
		gen.Clique(32),
		gen.Path(30),
		gen.SqrtLineOfStars(5),
		gen.RandomRegular(64, 4, 6),
	}
	for _, f := range families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			protocols := rumor.NewPushPullNetwork(f.N(), map[int]bool{0: true})
			res := runSpread(t, dyngraph.NewStatic(f), protocols, 0, 11)
			if rumor.CountInformed(protocols) != f.N() {
				t.Fatal("not everyone informed at stop")
			}
			if res.StabilizedRound < 1 {
				t.Fatal("no stabilization round recorded")
			}
		})
	}
}

func TestPPushSpreadsOnFamilies(t *testing.T) {
	families := []gen.Family{
		gen.Clique(32),
		gen.SqrtLineOfStars(5),
		gen.RandomRegular(64, 4, 6),
	}
	for _, f := range families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			protocols := rumor.NewPPushNetwork(f.N(), map[int]bool{0: true})
			runSpread(t, dyngraph.NewStatic(f), protocols, 1, 12)
			if rumor.CountInformed(protocols) != f.N() {
				t.Fatal("not everyone informed at stop")
			}
		})
	}
}

func TestPPushUnderChange(t *testing.T) {
	f := gen.RandomRegular(48, 6, 2)
	protocols := rumor.NewPPushNetwork(48, map[int]bool{3: true})
	sched := dyngraph.NewPermuted(f, 1, 7)
	runSpread(t, sched, protocols, 1, 13)
	if rumor.CountInformed(protocols) != 48 {
		t.Fatal("not everyone informed under tau=1")
	}
}

func TestRumorMonotonicity(t *testing.T) {
	// Informed count never decreases; rumor never appears from nothing.
	f := gen.RandomRegular(40, 4, 9)
	protocols := rumor.NewPushPullNetwork(40, map[int]bool{5: true})
	prev := 1
	stop := func(round int, ps []sim.Protocol) bool {
		cur := rumor.CountInformed(ps)
		if cur < prev {
			t.Fatalf("informed count dropped from %d to %d", prev, cur)
		}
		prev = cur
		return rumor.AllInformed(round, ps)
	}
	eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{Seed: 3, MaxRounds: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(stop); err != nil {
		t.Fatal(err)
	}
}

func TestNoRumorNoSpread(t *testing.T) {
	// With zero informed nodes, nothing ever becomes informed.
	f := gen.Clique(10)
	protocols := rumor.NewPushPullNetwork(10, nil)
	eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{Seed: 1, MaxRounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)
	if rumor.CountInformed(protocols) != 0 {
		t.Fatal("rumor appeared from nothing")
	}
}

func TestPPushFasterThanPushPullOnLineOfStars(t *testing.T) {
	// The b=0 vs b=1 rumor gap (the motivation for Section VII): PPUSH
	// should beat PUSH-PULL clearly on the adversarial family. Run a few
	// seeds and compare medians coarsely.
	f := gen.SqrtLineOfStars(6)
	var ppSum, ppushSum int
	for seed := uint64(0); seed < 5; seed++ {
		pp := rumor.NewPushPullNetwork(f.N(), map[int]bool{0: true})
		resPP := runSpread(t, dyngraph.NewStatic(f), pp, 0, seed)
		ppSum += resPP.StabilizedRound

		ppush := rumor.NewPPushNetwork(f.N(), map[int]bool{0: true})
		resPPush := runSpread(t, dyngraph.NewStatic(f), ppush, 1, seed)
		ppushSum += resPPush.StabilizedRound
	}
	if ppushSum >= ppSum {
		t.Fatalf("PPUSH (%d total rounds) not faster than PUSH-PULL (%d) on line of stars",
			ppushSum, ppSum)
	}
}

func TestInformedSeedVariants(t *testing.T) {
	// Multiple seeds spread faster than a single one; also exercises the
	// multi-source path.
	f := gen.Path(60)
	single := rumor.NewPushPullNetwork(60, map[int]bool{0: true})
	resSingle := runSpread(t, dyngraph.NewStatic(f), single, 0, 5)

	multi := rumor.NewPushPullNetwork(60, map[int]bool{0: true, 30: true, 59: true})
	resMulti := runSpread(t, dyngraph.NewStatic(f), multi, 0, 5)

	if resMulti.StabilizedRound >= resSingle.StabilizedRound {
		t.Fatalf("3 sources (%d rounds) not faster than 1 source (%d rounds) on a path",
			resMulti.StabilizedRound, resSingle.StabilizedRound)
	}
}

func TestLeaderReportsInformedStatus(t *testing.T) {
	p := rumor.NewPushPull(false)
	if p.Leader() != 0 || p.Informed() {
		t.Fatal("uninformed state wrong")
	}
	q := rumor.NewPPush(true)
	if q.Leader() != 1 || !q.Informed() {
		t.Fatal("informed state wrong")
	}
}
