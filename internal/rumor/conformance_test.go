package rumor_test

import (
	"testing"

	"mobiletel/internal/rumor"
	"mobiletel/internal/sim"
)

func TestRumorProtocolConformance(t *testing.T) {
	cases := []struct {
		name    string
		tagBits int
		factory func(node int) sim.Protocol
	}{
		{"pushpull", 0, func(node int) sim.Protocol { return rumor.NewPushPull(node == 0) }},
		{"ppush", 1, func(node int) sim.Protocol { return rumor.NewPPush(node == 0) }},
		{"push", 0, func(node int) sim.Protocol { return rumor.NewPush(node == 0) }},
		{"pull", 0, func(node int) sim.Protocol { return rumor.NewPull(node == 0) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := sim.CheckConformance(c.factory, sim.ConformanceConfig{Seed: 5, TagBits: c.tagBits}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
