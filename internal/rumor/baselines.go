package rumor

import "mobiletel/internal/sim"

// Push is the PUSH-only baseline (b = 0): informed nodes propose to a
// uniformly random neighbor every round; uninformed nodes only receive.
// In the classical telephone model PUSH alone is exponentially slower than
// PUSH-PULL on star-like graphs (an informed hub can push to only one leaf
// per round — that bottleneck is the whole point of the one-connection
// restriction the mobile telephone model makes explicit).
type Push struct {
	informed bool
}

var _ Spreader = (*Push)(nil)

// NewPush creates one node's PUSH protocol; informed seeds the rumor.
func NewPush(informed bool) *Push { return &Push{informed: informed} }

// Advertise returns 0 (b = 0).
func (p *Push) Advertise(*sim.Context) uint64 { return 0 }

// Decide: informed nodes always push; uninformed always receive.
func (p *Push) Decide(ctx *sim.Context) (int32, bool) {
	if !p.informed {
		return 0, false
	}
	target, ok := ctx.RandomNeighbor()
	if !ok {
		return 0, false
	}
	return target, true
}

// Outgoing reports rumor possession.
func (p *Push) Outgoing(*sim.Context, int32) sim.Message {
	aux := uint64(0)
	if p.informed {
		aux = 1
	}
	return sim.Message{Aux: aux}
}

// Deliver learns the rumor from an informed peer.
func (p *Push) Deliver(_ *sim.Context, _ int32, msg sim.Message) {
	if msg.Aux == 1 {
		p.informed = true
	}
}

// EndRound is a no-op.
func (p *Push) EndRound(*sim.Context) {}

// Leader reports rumor status (see PushPull.Leader).
func (p *Push) Leader() uint64 {
	if p.informed {
		return 1
	}
	return 0
}

// Informed reports whether this node knows the rumor.
func (p *Push) Informed() bool { return p.informed }

// Pull is the PULL-only baseline (b = 0): uninformed nodes propose to a
// uniformly random neighbor every round; informed nodes only receive.
// Symmetric to Push: a lone informed leaf is found only when some neighbor
// happens to pull from it.
type Pull struct {
	informed bool
}

var _ Spreader = (*Pull)(nil)

// NewPull creates one node's PULL protocol; informed seeds the rumor.
func NewPull(informed bool) *Pull { return &Pull{informed: informed} }

// Advertise returns 0 (b = 0).
func (p *Pull) Advertise(*sim.Context) uint64 { return 0 }

// Decide: uninformed nodes always pull; informed always receive.
func (p *Pull) Decide(ctx *sim.Context) (int32, bool) {
	if p.informed {
		return 0, false
	}
	target, ok := ctx.RandomNeighbor()
	if !ok {
		return 0, false
	}
	return target, true
}

// Outgoing reports rumor possession.
func (p *Pull) Outgoing(*sim.Context, int32) sim.Message {
	aux := uint64(0)
	if p.informed {
		aux = 1
	}
	return sim.Message{Aux: aux}
}

// Deliver learns the rumor from an informed peer.
func (p *Pull) Deliver(_ *sim.Context, _ int32, msg sim.Message) {
	if msg.Aux == 1 {
		p.informed = true
	}
}

// EndRound is a no-op.
func (p *Pull) EndRound(*sim.Context) {}

// Leader reports rumor status (see PushPull.Leader).
func (p *Pull) Leader() uint64 {
	if p.informed {
		return 1
	}
	return 0
}

// Informed reports whether this node knows the rumor.
func (p *Pull) Informed() bool { return p.informed }

// NewPushNetwork builds a PUSH-only network with the given informed set.
func NewPushNetwork(n int, informed map[int]bool) []sim.Protocol {
	protocols := make([]sim.Protocol, n)
	for i := range protocols {
		protocols[i] = NewPush(informed[i])
	}
	return protocols
}

// NewPullNetwork builds a PULL-only network with the given informed set.
func NewPullNetwork(n int, informed map[int]bool) []sim.Protocol {
	protocols := make([]sim.Protocol, n)
	for i := range protocols {
		protocols[i] = NewPull(informed[i])
	}
	return protocols
}
