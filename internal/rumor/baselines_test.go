package rumor_test

import (
	"testing"

	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/rumor"
	"mobiletel/internal/sim"
)

func TestPushSpreads(t *testing.T) {
	f := gen.RandomRegular(48, 6, 3)
	protocols := rumor.NewPushNetwork(48, map[int]bool{0: true})
	runSpread(t, dyngraph.NewStatic(f), protocols, 0, 21)
	if rumor.CountInformed(protocols) != 48 {
		t.Fatal("PUSH did not inform everyone")
	}
}

func TestPullSpreads(t *testing.T) {
	f := gen.RandomRegular(48, 6, 3)
	protocols := rumor.NewPullNetwork(48, map[int]bool{0: true})
	runSpread(t, dyngraph.NewStatic(f), protocols, 0, 22)
	if rumor.CountInformed(protocols) != 48 {
		t.Fatal("PULL did not inform everyone")
	}
}

func TestPushOnlyInformedPropose(t *testing.T) {
	// With zero informed nodes, a PUSH network makes zero proposals.
	f := gen.Clique(10)
	protocols := rumor.NewPushNetwork(10, nil)
	var proposals int
	eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{
		Seed: 1, MaxRounds: 50,
		Observer: func(s sim.RoundStats) { proposals += s.Proposals },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)
	if proposals != 0 {
		t.Fatalf("uninformed PUSH network made %d proposals", proposals)
	}
}

func TestPullOnlyUninformedPropose(t *testing.T) {
	// With everyone informed, a PULL network makes zero proposals.
	f := gen.Clique(10)
	all := map[int]bool{}
	for i := 0; i < 10; i++ {
		all[i] = true
	}
	protocols := rumor.NewPullNetwork(10, all)
	var proposals int
	eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{
		Seed: 1, MaxRounds: 50,
		Observer: func(s sim.RoundStats) { proposals += s.Proposals },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)
	if proposals != 0 {
		t.Fatalf("fully informed PULL network made %d proposals", proposals)
	}
}

func TestPushBottleneckOnStar(t *testing.T) {
	// A single informed hub can push to only one leaf per round (the
	// one-connection restriction), so PUSH on a star needs >= n-1 rounds —
	// linear, vs PUSH-PULL's logarithmic-ish behavior where leaves pull.
	n := 64
	f := gen.Star(n)
	push := rumor.NewPushNetwork(n, map[int]bool{0: true}) // hub informed
	resPush := runSpread(t, dyngraph.NewStatic(f), push, 0, 9)
	if resPush.StabilizedRound < n-1 {
		t.Fatalf("PUSH on star finished in %d < n-1 rounds; engine allowed >1 connection?", resPush.StabilizedRound)
	}

	pp := rumor.NewPushPullNetwork(n, map[int]bool{0: true})
	resPP := runSpread(t, dyngraph.NewStatic(f), pp, 0, 9)
	// PUSH-PULL lets leaves pull concurrently... but the hub still accepts
	// only one connection per round, so it is also Ω(n). The real winner is
	// PPUSH? No — with one rumor holder at the hub, every strategy is Ω(n)
	// on a star. The instructive comparison is a leaf-seeded rumor:
	leafPush := rumor.NewPushNetwork(n, map[int]bool{1: true})
	resLeafPush := runSpread(t, dyngraph.NewStatic(f), leafPush, 0, 9)
	leafPP := rumor.NewPushPullNetwork(n, map[int]bool{1: true})
	resLeafPP := runSpread(t, dyngraph.NewStatic(f), leafPP, 0, 9)
	// Both remain Ω(n) through the hub; sanity-check they complete and that
	// the engine's contention semantics are consistent.
	if resLeafPush.StabilizedRound < n-1 || resLeafPP.StabilizedRound < n-1 {
		t.Fatalf("star dissemination beat the n-1 hub bottleneck: push=%d pushpull=%d",
			resLeafPush.StabilizedRound, resLeafPP.StabilizedRound)
	}
	_ = resPP
}

func TestBaselinesComparableOnExpander(t *testing.T) {
	// On an expander all four strategies complete; PPUSH (b=1) should be
	// the fastest since it never wastes a proposal on informed nodes.
	f := gen.RandomRegular(96, 8, 5)
	strategies := map[string][]sim.Protocol{
		"push":     rumor.NewPushNetwork(96, map[int]bool{0: true}),
		"pull":     rumor.NewPullNetwork(96, map[int]bool{0: true}),
		"pushpull": rumor.NewPushPullNetwork(96, map[int]bool{0: true}),
		"ppush":    rumor.NewPPushNetwork(96, map[int]bool{0: true}),
	}
	rounds := map[string]int{}
	for name, protocols := range strategies {
		tagBits := 0
		if name == "ppush" {
			tagBits = 1
		}
		res := runSpread(t, dyngraph.NewStatic(f), protocols, tagBits, 31)
		rounds[name] = res.StabilizedRound
	}
	if rounds["ppush"] > rounds["push"] || rounds["ppush"] > rounds["pull"] {
		t.Fatalf("PPUSH (%d) slower than blind baselines (push=%d pull=%d)",
			rounds["ppush"], rounds["push"], rounds["pull"])
	}
}
