// Package rumor implements the rumor spreading strategies of Section V of
// the paper, which double as subroutines and baselines for leader election:
//
//   - PushPull (b = 0): the classical strategy — flip a coin to send or
//     receive, senders target a uniformly random neighbor, connected pairs
//     trade the rumor. Corollary VI.6 (proved via the blind-gossip
//     analysis): completes in O((1/α)Δ²log²n) rounds in the mobile
//     telephone model.
//   - PPush (b = 1): "productive PUSH" — informed nodes advertise 0,
//     uninformed advertise 1; informed nodes propose only to uninformed
//     neighbors. Theorem V.2 bounds its per-cut progress by the
//     approximation factor f(r) = Δ^{1/r}·c·r·log n over r stable rounds.
package rumor

import (
	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
)

// Spreader is implemented by both rumor protocols; it augments sim.Protocol
// with rumor status.
type Spreader interface {
	sim.Protocol
	Informed() bool
}

// AllInformed is the stop condition for rumor spreading runs.
func AllInformed(_ int, protocols []sim.Protocol) bool {
	for _, p := range protocols {
		if !p.(Spreader).Informed() {
			return false
		}
	}
	return true
}

// CountInformed returns the number of informed nodes.
func CountInformed(protocols []sim.Protocol) int {
	count := 0
	for _, p := range protocols {
		if p.(Spreader).Informed() {
			count++
		}
	}
	return count
}

// PushPull is the b = 0 strategy (classical PUSH-PULL restricted to one
// connection per node per round).
type PushPull struct {
	informed bool
}

var _ Spreader = (*PushPull)(nil)

// NewPushPull creates one node's protocol; informed seeds the rumor.
func NewPushPull(informed bool) *PushPull { return &PushPull{informed: informed} }

// Advertise returns 0: PUSH-PULL uses no tag bits.
func (p *PushPull) Advertise(*sim.Context) uint64 { return 0 }

// Decide flips a fair coin; senders pick a uniformly random neighbor.
func (p *PushPull) Decide(ctx *sim.Context) (int32, bool) {
	if ctx.RNG.Bool() {
		return 0, false
	}
	target, ok := ctx.RandomNeighbor()
	if !ok {
		return 0, false
	}
	return target, true
}

// Outgoing reports rumor possession in the auxiliary bits.
func (p *PushPull) Outgoing(*sim.Context, int32) sim.Message {
	aux := uint64(0)
	if p.informed {
		aux = 1
	}
	return sim.Message{Aux: aux}
}

// Deliver learns the rumor if the peer had it (PUSH and PULL both work
// because the exchange is bidirectional).
func (p *PushPull) Deliver(ctx *sim.Context, _ int32, msg sim.Message) {
	if msg.Aux == 1 && !p.informed {
		ctx.EmitTransition(obs.KindInformed, 0, 1)
		p.informed = true
	}
}

// EndRound is a no-op.
func (p *PushPull) EndRound(*sim.Context) {}

// Leader reports rumor status (1 = informed) so generic all-equal stop
// conditions also work for rumor runs seeded with at least one informed
// node.
func (p *PushPull) Leader() uint64 {
	if p.informed {
		return 1
	}
	return 0
}

// Informed reports whether this node knows the rumor.
func (p *PushPull) Informed() bool { return p.informed }

// PPush is the b = 1 "productive PUSH" strategy from Section V.
type PPush struct {
	informed bool
}

var _ Spreader = (*PPush)(nil)

// NewPPush creates one node's protocol; informed seeds the rumor.
func NewPPush(informed bool) *PPush { return &PPush{informed: informed} }

// Advertise: informed nodes advertise 0, uninformed advertise 1.
func (p *PPush) Advertise(*sim.Context) uint64 {
	if p.informed {
		return 0
	}
	return 1
}

// Decide: informed nodes propose to a uniformly random neighbor advertising
// 1 (an uninformed node); uninformed nodes only receive.
func (p *PPush) Decide(ctx *sim.Context) (int32, bool) {
	if !p.informed {
		return 0, false
	}
	target, ok := ctx.RandomNeighborMatching(func(_ int32, tag uint64) bool { return tag == 1 })
	if !ok {
		return 0, false
	}
	return target, true
}

// Outgoing transfers the rumor bit.
func (p *PPush) Outgoing(*sim.Context, int32) sim.Message {
	aux := uint64(0)
	if p.informed {
		aux = 1
	}
	return sim.Message{Aux: aux}
}

// Deliver learns the rumor from an informed peer.
func (p *PPush) Deliver(ctx *sim.Context, _ int32, msg sim.Message) {
	if msg.Aux == 1 && !p.informed {
		ctx.EmitTransition(obs.KindInformed, 0, 1)
		p.informed = true
	}
}

// EndRound is a no-op.
func (p *PPush) EndRound(*sim.Context) {}

// Leader reports rumor status, as for PushPull.
func (p *PPush) Leader() uint64 {
	if p.informed {
		return 1
	}
	return 0
}

// Informed reports whether this node knows the rumor.
func (p *PPush) Informed() bool { return p.informed }

// NewPushPullNetwork builds a PushPull network with the given informed set.
func NewPushPullNetwork(n int, informed map[int]bool) []sim.Protocol {
	protocols := make([]sim.Protocol, n)
	for i := range protocols {
		protocols[i] = NewPushPull(informed[i])
	}
	return protocols
}

// NewPPushNetwork builds a PPush network with the given informed set.
func NewPPushNetwork(n int, informed map[int]bool) []sim.Protocol {
	protocols := make([]sim.Protocol, n)
	for i := range protocols {
		protocols[i] = NewPPush(informed[i])
	}
	return protocols
}
