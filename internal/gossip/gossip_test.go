package gossip_test

import (
	"testing"

	"mobiletel/internal/dyngraph"
	"mobiletel/internal/gossip"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
)

func runGossip(t *testing.T, sched dyngraph.Schedule, n int, seed uint64) []sim.Protocol {
	t.Helper()
	protocols := gossip.NewNetwork(n)
	eng, err := sim.New(sched, protocols, sim.Config{Seed: seed, MaxRounds: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(gossip.AllComplete); err != nil {
		t.Fatalf("gossip did not complete: %v", err)
	}
	return protocols
}

func TestGossipCompletesOnFamilies(t *testing.T) {
	families := []gen.Family{
		gen.Clique(24),
		gen.Cycle(20),
		gen.RandomRegular(32, 4, 3),
		gen.SqrtLineOfStars(4),
	}
	for _, f := range families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			protocols := runGossip(t, dyngraph.NewStatic(f), f.N(), 5)
			for i, p := range protocols {
				node := p.(*gossip.Node)
				for r := 0; r < f.N(); r++ {
					if !node.Knows(r) {
						t.Fatalf("node %d missing rumor %d at completion", i, r)
					}
				}
			}
		})
	}
}

func TestGossipUnderChurn(t *testing.T) {
	f := gen.RandomRegular(24, 4, 7)
	runGossip(t, dyngraph.NewPermuted(f, 1, 9), 24, 11)
}

func TestGossipMonotoneAndConservative(t *testing.T) {
	// Known counts never decrease, and nobody can know more than n rumors
	// (no rumor is invented).
	n := 20
	protocols := gossip.NewNetwork(n)
	prev := make([]int, n)
	for i, p := range protocols {
		prev[i] = p.(*gossip.Node).Count()
		if prev[i] != 1 {
			t.Fatalf("node %d starts knowing %d rumors", i, prev[i])
		}
	}
	stop := func(round int, ps []sim.Protocol) bool {
		for i, p := range ps {
			c := p.(*gossip.Node).Count()
			if c < prev[i] {
				t.Fatalf("round %d: node %d forgot rumors (%d -> %d)", round, i, prev[i], c)
			}
			if c > n {
				t.Fatalf("round %d: node %d knows %d > n rumors", round, i, c)
			}
			prev[i] = c
		}
		return gossip.AllComplete(round, ps)
	}
	eng, err := sim.New(dyngraph.NewStatic(gen.Clique(n)), protocols, sim.Config{Seed: 3, MaxRounds: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(stop); err != nil {
		t.Fatal(err)
	}
}

func TestMinKnownFrontier(t *testing.T) {
	protocols := gossip.NewNetwork(10)
	if gossip.MinKnown(protocols) != 1 {
		t.Fatal("initial frontier should be 1")
	}
}

func TestGossipNodeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad node index did not panic")
		}
	}()
	gossip.NewNode(5, 5)
}

func TestGossipConformance(t *testing.T) {
	if err := sim.CheckConformance(func(node int) sim.Protocol {
		return gossip.NewNode(32, node)
	}, sim.ConformanceConfig{Seed: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestGossipKnowsBoundsChecked(t *testing.T) {
	node := gossip.NewNode(8, 2)
	if node.Knows(-1) || node.Knows(8) {
		t.Fatal("out-of-range Knows should be false")
	}
	if !node.Knows(2) {
		t.Fatal("node must know its own rumor")
	}
}
