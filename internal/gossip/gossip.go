// Package gossip implements all-to-all rumor spreading (each node starts
// with one rumor; every node must learn every rumor) in the mobile
// telephone model — the first of the follow-on problems the paper's
// conclusion proposes ("gossip, consensus, and data aggregation").
//
// The protocol is the natural blind strategy under the model's O(1)-UIDs
// connection budget: fair-coin send/receive with uniform neighbor choice
// (exactly blind gossip's connection pattern, so Section VI's Θ((1/α)Δ²·
// polylog) connection machinery applies), and on each connection the two
// endpoints trade one rumor each, chosen uniformly from the rumors they
// know. An exchanged rumor is a single UID, respecting the budget.
//
// Known rumors are tracked in per-node bitsets; monotonicity (known sets
// only grow) and conservation (nobody learns a rumor that does not exist)
// are the tested invariants.
package gossip

import (
	"fmt"
	"math/bits"

	"mobiletel/internal/sim"
)

// Node is one gossip participant.
type Node struct {
	n     int
	self  int
	known []uint64 // bitset of rumor indices
	count int
}

var _ sim.Protocol = (*Node)(nil)

// NewNode creates participant self of n total, knowing only its own rumor.
func NewNode(n, self int) *Node {
	if n < 1 || self < 0 || self >= n {
		panic(fmt.Sprintf("gossip: bad node %d of %d", self, n))
	}
	node := &Node{n: n, self: self, known: make([]uint64, (n+63)/64)}
	node.learn(self)
	return node
}

// learn marks rumor idx known; returns true if it was new.
func (g *Node) learn(idx int) bool {
	word, bit := idx/64, uint(idx%64)
	if g.known[word]&(1<<bit) != 0 {
		return false
	}
	g.known[word] |= 1 << bit
	g.count++
	return true
}

// Knows reports whether the node knows rumor idx.
func (g *Node) Knows(idx int) bool {
	if idx < 0 || idx >= g.n {
		return false
	}
	return g.known[idx/64]&(1<<uint(idx%64)) != 0
}

// Count returns how many rumors the node knows.
func (g *Node) Count() int { return g.count }

// Advertise returns 0 (b = 0; the strategy is blind).
func (g *Node) Advertise(*sim.Context) uint64 { return 0 }

// Decide flips a fair coin; senders pick a uniformly random neighbor.
func (g *Node) Decide(ctx *sim.Context) (int32, bool) {
	if ctx.RNG.Bool() {
		return 0, false
	}
	target, ok := ctx.RandomNeighbor()
	if !ok {
		return 0, false
	}
	return target, true
}

// Outgoing sends one uniformly random known rumor (1 UID: the rumor index).
func (g *Node) Outgoing(ctx *sim.Context, _ int32) sim.Message {
	// Select the k-th known rumor for uniform k.
	k := ctx.RNG.Intn(g.count)
	for word, w := range g.known {
		c := bits.OnesCount64(w)
		if k >= c {
			k -= c
			continue
		}
		// Find the k-th set bit in w.
		for ; k > 0; k-- {
			w &= w - 1
		}
		idx := word*64 + bits.TrailingZeros64(w)
		return sim.Message{UIDs: []uint64{uint64(idx)}}
	}
	panic("gossip: inconsistent known-count")
}

// Deliver learns the peer's rumor.
func (g *Node) Deliver(_ *sim.Context, _ int32, msg sim.Message) {
	if len(msg.UIDs) != 1 {
		return
	}
	idx := int(msg.UIDs[0])
	if idx < 0 || idx >= g.n {
		panic(fmt.Sprintf("gossip: received rumor index %d outside [0,%d)", idx, g.n))
	}
	g.learn(idx)
}

// EndRound is a no-op.
func (g *Node) EndRound(*sim.Context) {}

// Leader reports the known-rumor count, so AllComplete can piggyback on the
// generic leader comparison in diagnostics.
func (g *Node) Leader() uint64 { return uint64(g.count) }

// AllComplete is the stop condition: every node knows all n rumors.
func AllComplete(_ int, protocols []sim.Protocol) bool {
	n := len(protocols)
	for _, p := range protocols {
		if p.(*Node).Count() != n {
			return false
		}
	}
	return true
}

// MinKnown returns the smallest known-rumor count over the network — the
// completion frontier.
func MinKnown(protocols []sim.Protocol) int {
	minCount := len(protocols)
	for _, p := range protocols {
		if c := p.(*Node).Count(); c < minCount {
			minCount = c
		}
	}
	return minCount
}

// NewNetwork builds an n-node gossip network.
func NewNetwork(n int) []sim.Protocol {
	protocols := make([]sim.Protocol, n)
	for i := range protocols {
		protocols[i] = NewNode(n, i)
	}
	return protocols
}
