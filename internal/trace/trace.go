// Package trace renders experiment output: fixed-width text tables for the
// terminal, CSV for downstream plotting, and a per-round event recorder for
// debugging executions.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"mobiletel/internal/sim"
)

// Table is a simple column-aligned table with a title, assembled row by row
// and rendered to text or CSV.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// values with enough precision to be meaningful.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v != 0 && (v < 0.01 && v > -0.01) {
		return fmt.Sprintf("%.3e", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (headers first; the title is omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Text renders the table to a string.
func (t *Table) Text() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return b.String()
}

// Recorder collects per-round engine statistics; plug its Observe method
// into sim.Config.Observer.
type Recorder struct {
	Stats []sim.RoundStats
}

// Observe appends one round's stats.
func (r *Recorder) Observe(s sim.RoundStats) { r.Stats = append(r.Stats, s) }

// TotalConnections sums connections over all recorded rounds.
func (r *Recorder) TotalConnections() int {
	total := 0
	for _, s := range r.Stats {
		total += s.Connections
	}
	return total
}

// ConnectionsCurve returns the per-round connection counts, e.g. for
// inspecting how parallelism evolves as an execution converges.
func (r *Recorder) ConnectionsCurve() []int {
	out := make([]int, len(r.Stats))
	for i, s := range r.Stats {
		out[i] = s.Connections
	}
	return out
}

// AcceptsCurve returns the per-round accepted-proposal counts.
func (r *Recorder) AcceptsCurve() []int {
	out := make([]int, len(r.Stats))
	for i, s := range r.Stats {
		out[i] = s.Accepts
	}
	return out
}

// AcceptanceRateCurve returns the per-round fraction of proposals that were
// accepted (Accepts/Proposals). Rounds with no proposals report 0 rather
// than NaN so the curve stays plottable.
func (r *Recorder) AcceptanceRateCurve() []float64 {
	out := make([]float64, len(r.Stats))
	for i, s := range r.Stats {
		if s.Proposals > 0 {
			out[i] = float64(s.Accepts) / float64(s.Proposals)
		}
	}
	return out
}

// Sparkline renders a series of non-negative values as a compact unicode
// bar chart (▁▂▃▄▅▆▇█), scaled to the series maximum. Useful for showing a
// convergence curve in terminal output. Empty input yields an empty string.
func Sparkline(values []int) string {
	if len(values) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	maxVal := 0
	for _, v := range values {
		if v > maxVal {
			maxVal = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		idx := 0
		if maxVal > 0 {
			idx = v * (len(bars) - 1) / maxVal
		}
		b.WriteRune(bars[idx])
	}
	return b.String()
}

// Downsample reduces a series to at most width points by max-pooling
// consecutive buckets, preserving peaks for sparkline display.
func Downsample(values []int, width int) []int {
	if width <= 0 {
		panic("trace: Downsample width must be positive")
	}
	if len(values) <= width {
		return append([]int(nil), values...)
	}
	out := make([]int, width)
	for i := 0; i < width; i++ {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi == lo {
			hi = lo + 1
		}
		m := values[lo]
		for _, v := range values[lo:hi] {
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out
}
