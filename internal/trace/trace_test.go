package trace

import (
	"strings"
	"testing"

	"mobiletel/internal/sim"
)

func TestTableText(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta", 2.5)
	text := tb.Text()
	if !strings.Contains(text, "== demo ==") {
		t.Fatalf("missing title:\n%s", text)
	}
	if !strings.Contains(text, "alpha") || !strings.Contains(text, "2.5") {
		t.Fatalf("missing cells:\n%s", text)
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), text)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow(1, "x")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,x\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		2.5:     "2.5",
		0.0001:  "1.000e-04",
		1234567: "1234567",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatFloatBoundaries(t *testing.T) {
	cases := map[float64]string{
		// The integer fast path is gated on |v| < 1e15 (above that, float64
		// integers lose precision and %d would print a misleading exact
		// value), so exactly ±1e15 falls through to %.4g.
		1e15:  "1e+15",
		-1e15: "-1e+15",
		// Just inside the gate: still rendered as an exact integer.
		1e15 - 1:    "999999999999999",
		-(1e15 - 1): "-999999999999999",
		// The scientific-notation branch is v < 0.01 strictly, so exactly
		// 0.01 uses the %.4g path while values just below switch to %.3e.
		0.01:   "0.01",
		-0.01:  "-0.01",
		0.0099: "9.900e-03",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("esc", "field", "value")
	tb.AddRow("comma", "a,b")
	tb.AddRow("quote", `say "hi"`)
	tb.AddRow("newline", "line1\nline2")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "field,value\n" +
		"comma,\"a,b\"\n" +
		"quote,\"say \"\"hi\"\"\"\n" +
		"newline,\"line1\nline2\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestColumnAlignment(t *testing.T) {
	tb := NewTable("", "short", "x")
	tb.AddRow("longer-cell", 1)
	text := tb.Text()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	// Header and row should align: the second column starts at the same
	// offset in both lines.
	if idxHeader, idxRow := strings.Index(lines[0], "x"), strings.Index(lines[2], "1"); idxHeader != idxRow {
		t.Fatalf("misaligned columns:\n%s", text)
	}
}

func TestRecorder(t *testing.T) {
	r := &Recorder{}
	r.Observe(sim.RoundStats{Round: 1, Connections: 3})
	r.Observe(sim.RoundStats{Round: 2, Connections: 5})
	if r.TotalConnections() != 8 {
		t.Fatalf("total = %d", r.TotalConnections())
	}
	curve := r.ConnectionsCurve()
	if len(curve) != 2 || curve[0] != 3 || curve[1] != 5 {
		t.Fatalf("curve = %v", curve)
	}
}

func TestRecorderAcceptanceCurves(t *testing.T) {
	r := &Recorder{}
	r.Observe(sim.RoundStats{Round: 1, Proposals: 8, Accepts: 4, Rejects: 2, Connections: 4})
	r.Observe(sim.RoundStats{Round: 2, Proposals: 0, Accepts: 0, Connections: 0})
	r.Observe(sim.RoundStats{Round: 3, Proposals: 5, Accepts: 5, Connections: 5})
	accepts := r.AcceptsCurve()
	if len(accepts) != 3 || accepts[0] != 4 || accepts[1] != 0 || accepts[2] != 5 {
		t.Fatalf("accepts curve = %v", accepts)
	}
	rate := r.AcceptanceRateCurve()
	if len(rate) != 3 || rate[0] != 0.5 || rate[2] != 1 {
		t.Fatalf("acceptance rate curve = %v", rate)
	}
	// A round with zero proposals must report 0, not NaN.
	if rate[1] != 0 {
		t.Fatalf("zero-proposal round rate = %v, want 0", rate[1])
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("empty", "a")
	text := tb.Text()
	if !strings.Contains(text, "empty") {
		t.Fatal("title missing")
	}
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a\n" {
		t.Fatalf("CSV = %q", b.String())
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input should yield empty string")
	}
	s := Sparkline([]int{0, 4, 8})
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("got %d runes", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("scaling wrong: %q", s)
	}
	// All-zero input must not divide by zero.
	if z := Sparkline([]int{0, 0}); []rune(z)[0] != '▁' {
		t.Fatalf("zero series wrong: %q", z)
	}
}

func TestDownsample(t *testing.T) {
	in := []int{1, 9, 2, 3, 8, 4}
	out := Downsample(in, 3)
	if len(out) != 3 {
		t.Fatalf("len %d", len(out))
	}
	// Max-pooling preserves peaks.
	if out[0] != 9 || out[2] != 8 {
		t.Fatalf("pooling wrong: %v", out)
	}
	// Short series pass through unchanged (copied).
	same := Downsample(in, 10)
	if len(same) != len(in) {
		t.Fatal("short series resized")
	}
	same[0] = 99
	if in[0] == 99 {
		t.Fatal("Downsample aliased its input")
	}
}

func TestDownsamplePanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 0 did not panic")
		}
	}()
	Downsample([]int{1}, 0)
}
