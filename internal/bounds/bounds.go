// Package bounds encodes the paper's round-complexity formulas as
// first-class functions, so experiments, documentation, and tests share one
// authoritative implementation of each bound's *shape* (the paper leaves
// all constants unspecified; every function here uses constant 1).
//
// All logarithms are base 2 and ceiling'd, matching the paper's convention
// that log Δ is a whole number (Section II assumes Δ is a power of two; we
// use ⌈log₂·⌉ to cover the rest).
package bounds

import (
	"math"
)

// Log2 returns ⌈log₂ x⌉ for x >= 1, with Log2(1) = 0.
func Log2(x int) int {
	if x < 1 {
		panic("bounds: Log2 needs x >= 1")
	}
	l := 0
	for v := x - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

// log2f is Log2 as a float64, floored at 1 so bounds never vanish.
func log2f(x int) float64 {
	l := Log2(x)
	if l < 1 {
		l = 1
	}
	return float64(l)
}

// TauHat returns τ̂ = min(τ, log Δ) — the effective stability (Section VII:
// performance does not improve past τ = log Δ because groups are only
// 2·log Δ rounds long).
func TauHat(tau, maxDegree int) int {
	logD := Log2(maxDegree)
	if logD < 1 {
		logD = 1
	}
	if tau < logD {
		return tau
	}
	return logD
}

// BlindGossip evaluates Theorem VI.1's bound shape (1/α)·Δ²·log²n — the
// stabilization rounds of blind gossip leader election (and, by Corollary
// VI.6, PUSH-PULL rumor spreading) for any τ >= 1, b = 0.
func BlindGossip(alpha float64, maxDegree, n int) float64 {
	checkArgs(alpha, maxDegree, n)
	l := log2f(n)
	return (1 / alpha) * float64(maxDegree) * float64(maxDegree) * l * l
}

// BlindGossipLower evaluates the Section VI lower-bound shape Δ²·√n for the
// line-of-stars construction (also expressible as Δ²/√α).
func BlindGossipLower(maxDegree, n int) float64 {
	if maxDegree < 1 || n < 1 {
		panic("bounds: bad arguments")
	}
	return float64(maxDegree) * float64(maxDegree) * math.Sqrt(float64(n))
}

// F evaluates Theorem V.2's approximation factor f(r) = Δ^{1/r}·r·log n
// (constant c = 1): over r stable rounds, PPUSH informs at least m/f(r)
// nodes across a cut with an m-matching.
func F(r, maxDegree, n int) float64 {
	if r < 1 {
		panic("bounds: F needs r >= 1")
	}
	checkArgs(1, maxDegree, n)
	return math.Pow(float64(maxDegree), 1/float64(r)) * float64(r) * log2f(n)
}

// BitConvGoodPhases evaluates Lemma VII.4's t_max = (1/α)·8·f(τ̂)·log n —
// the number of good phases needed to advance the maximum difference bit.
func BitConvGoodPhases(alpha float64, tau, maxDegree, n int) float64 {
	checkArgs(alpha, maxDegree, n)
	return (1 / alpha) * 8 * F(TauHat(tau, maxDegree), maxDegree, n) * log2f(n)
}

// BitConvPhases evaluates the Theorem VII.2 phase count
// O(t_max·log n) = O((1/α)·f(τ̂)·log²n).
func BitConvPhases(alpha float64, tau, maxDegree, n int) float64 {
	return BitConvGoodPhases(alpha, tau, maxDegree, n) * log2f(n)
}

// BitConvRounds evaluates Theorem VII.2's full round bound
// (1/α)·Δ^{1/τ̂}·τ̂·log⁵n, assembled as phases × (2k·log Δ) rounds per phase
// with k = 2·log n.
func BitConvRounds(alpha float64, tau, maxDegree, n int) float64 {
	phaseLen := 2 * (2 * log2f(n)) * log2f(maxDegree)
	return BitConvPhases(alpha, tau, maxDegree, n) * phaseLen
}

// AsyncBitConvRounds evaluates Theorem VIII.2's bound
// (1/α)·Δ^{1/τ̂}·τ̂·log⁸n: the synchronized bound times the k³-ish penalty
// for random position matching (the paper's k⁴ in t_max and k in the union
// bound, against one less log n factor in the group accounting).
func AsyncBitConvRounds(alpha float64, tau, maxDegree, n int) float64 {
	k := 2 * log2f(n)
	return BitConvRounds(alpha, tau, maxDegree, n) * k * k * k / log2f(n)
}

// AsyncTagBits returns the advertisement width Theorem VIII.2 requires:
// ⌈log k⌉ + 1 = log log n + O(1), for k = β·log n with β = 2.
func AsyncTagBits(n int) int {
	k := 2 * Log2(n+1)
	if k < 2 {
		k = 2
	}
	return Log2(k) + 1
}

// KuhnLynchOshman evaluates the O(n²) deterministic bound from [20]
// (Kuhn, Lynch, Oshman; STOC 2010) that the related-work section compares
// against: leader election in 1-interval-connected dynamic networks with
// reliable O(1)-UID broadcast per round.
func KuhnLynchOshman(n int) float64 {
	if n < 1 {
		panic("bounds: bad n")
	}
	return float64(n) * float64(n)
}

func checkArgs(alpha float64, maxDegree, n int) {
	if alpha <= 0 || alpha > float64(maxDegree)+1 {
		panic("bounds: alpha out of range")
	}
	if maxDegree < 1 || n < 1 {
		panic("bounds: bad degree or size")
	}
}
