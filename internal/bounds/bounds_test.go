package bounds

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 16: 4, 17: 5}
	for in, want := range cases {
		if got := Log2(in); got != want {
			t.Errorf("Log2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTauHatSaturates(t *testing.T) {
	// τ̂ grows with τ up to log Δ and then flattens (Section VII).
	maxDegree := 16 // log = 4
	if TauHat(1, maxDegree) != 1 || TauHat(3, maxDegree) != 3 {
		t.Fatal("TauHat should be identity below log Δ")
	}
	if TauHat(4, maxDegree) != 4 || TauHat(100, maxDegree) != 4 {
		t.Fatal("TauHat should saturate at log Δ")
	}
}

func TestBlindGossipMonotonicities(t *testing.T) {
	// The bound must increase when α shrinks, Δ grows, or n grows.
	base := BlindGossip(0.5, 8, 64)
	if BlindGossip(0.25, 8, 64) <= base {
		t.Fatal("not decreasing in α")
	}
	if BlindGossip(0.5, 16, 64) <= base {
		t.Fatal("not increasing in Δ")
	}
	if BlindGossip(0.5, 8, 1024) <= base {
		t.Fatal("not increasing in n")
	}
}

func TestBlindGossipExactShape(t *testing.T) {
	// (1/α)·Δ²·log²n with α=1, Δ=4, n=256: 1·16·64 = 1024.
	if got := BlindGossip(1, 4, 256); got != 1024 {
		t.Fatalf("got %v, want 1024", got)
	}
}

func TestBlindGossipLower(t *testing.T) {
	if got := BlindGossipLower(4, 16); got != 64 {
		t.Fatalf("Δ²√n = %v, want 64", got)
	}
}

func TestFDecreasingInR(t *testing.T) {
	// f(r) = Δ^{1/r}·r·log n decreases while the Δ^{1/r} term dominates —
	// i.e. up to its minimum at r = ln Δ — which is the whole point of
	// stability. Beyond that the linear r term takes over mildly.
	maxDegree, n := 1024, 1024
	rMin := int(math.Log(float64(maxDegree))) // ⌊ln Δ⌋ = 6
	prev := F(1, maxDegree, n)
	for r := 2; r <= rMin; r++ {
		cur := F(r, maxDegree, n)
		if cur >= prev {
			t.Fatalf("f(%d)=%v >= f(%d)=%v for Δ=%d", r, cur, r-1, prev, maxDegree)
		}
		prev = cur
	}
	// Across the whole stability range, f(logΔ) beats f(1) by ~Δ/(2·logΔ).
	gain := F(1, maxDegree, n) / F(Log2(maxDegree), maxDegree, n)
	want := float64(maxDegree) / (2 * float64(Log2(maxDegree)))
	if math.Abs(gain-want) > 1e-9 {
		t.Fatalf("f(1)/f(logΔ) = %v, want %v", gain, want)
	}
}

func TestFAtExtremes(t *testing.T) {
	// f(1) = Δ·log n exactly.
	if got, want := F(1, 64, 256), 64.0*8; got != want {
		t.Fatalf("f(1) = %v, want %v", got, want)
	}
	// f(log Δ) = 2·logΔ·log n (since Δ^{1/logΔ} = 2 for powers of two).
	if got, want := F(6, 64, 256), 2.0*6*8; math.Abs(got-want) > 1e-9 {
		t.Fatalf("f(logΔ) = %v, want %v", got, want)
	}
}

func TestBitConvRoundsBeatBlindGossipAsymptotically(t *testing.T) {
	// For large Δ and τ >= log Δ, the Theorem VII.2 bound must be far below
	// the Theorem VI.1 bound (the headline gap).
	alpha, n := 0.01, 1<<20
	maxDegree := 1 << 14
	bg := BlindGossip(alpha, maxDegree, n)
	bc := BitConvRounds(alpha, 100, maxDegree, n)
	if bc >= bg {
		t.Fatalf("bit convergence bound %v not below blind gossip %v at scale", bc, bg)
	}
}

func TestBitConvRoundsDecreasingInTau(t *testing.T) {
	// The bound tracks f(τ̂), so it decreases up to τ = ⌊ln Δ⌋ and is flat
	// beyond log Δ.
	alpha, maxDegree, n := 0.1, 1024, 4096
	rMin := int(math.Log(float64(maxDegree)))
	prev := BitConvRounds(alpha, 1, maxDegree, n)
	for tau := 2; tau <= rMin; tau++ {
		cur := BitConvRounds(alpha, tau, maxDegree, n)
		if cur >= prev {
			t.Fatalf("bound not decreasing at tau=%d: %v >= %v", tau, cur, prev)
		}
		prev = cur
	}
	atLog := BitConvRounds(alpha, Log2(maxDegree), maxDegree, n)
	if BitConvRounds(alpha, 100, maxDegree, n) != atLog {
		t.Fatal("bound not flat past log Δ")
	}
	if atLog >= BitConvRounds(alpha, 1, maxDegree, n) {
		t.Fatal("τ = log Δ not better than τ = 1")
	}
}

func TestAsyncWithinPolylogOfSync(t *testing.T) {
	// Theorem VIII.2: the async bound is the sync bound times a polylog
	// factor — here exactly k³/log n.
	alpha, maxDegree, n := 0.1, 256, 1024
	sync := BitConvRounds(alpha, 4, maxDegree, n)
	async := AsyncBitConvRounds(alpha, 4, maxDegree, n)
	ratio := async / sync
	k := 2 * log2fTest(n)
	want := k * k * k / log2fTest(n)
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("async/sync = %v, want %v", ratio, want)
	}
}

func log2fTest(x int) float64 { return float64(Log2(x)) }

func TestAsyncTagBits(t *testing.T) {
	// b = ⌈log k⌉+1 with k = 2·log n: n=1024 -> k=22 -> ⌈log 22⌉=5 -> 6.
	if got := AsyncTagBits(1024); got != 6 {
		t.Fatalf("AsyncTagBits(1024) = %d, want 6", got)
	}
	// Must grow like log log n: doubling the exponent adds ~1 bit.
	if AsyncTagBits(1<<20) > AsyncTagBits(1<<10)+2 {
		t.Fatal("tag bits growing faster than loglog")
	}
}

func TestKuhnLynchOshmanComparison(t *testing.T) {
	// Related work: our bit convergence needs O(n·Δ·polylog n) under
	// maximal mobility and worst-case α ~ 1/n; the [20] baseline is O(n²).
	// For small Δ the mobile bound should be comparable or better in shape.
	n := 1 << 16
	klo := KuhnLynchOshman(n)
	bc := BitConvRounds(2/float64(n), 1, 64, n) // α ~ 1/n, small Δ, τ=1
	// Not asserting dominance (constants!), just that both formulas are
	// finite, positive, and the mobile bound is within polylog·Δ of n².
	if bc <= 0 || klo <= 0 {
		t.Fatal("degenerate bounds")
	}
	polylog := math.Pow(log2fTest(n), 6) * 64
	if bc > klo*polylog {
		t.Fatalf("mobile bound %v exceeds n²·polylog·Δ = %v", bc, klo*polylog)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { Log2(0) },
		func() { BlindGossip(0, 4, 16) },
		func() { BlindGossip(0.5, 0, 16) },
		func() { F(0, 4, 16) },
		func() { BlindGossipLower(0, 4) },
		func() { KuhnLynchOshman(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBoundsAlwaysPositive(t *testing.T) {
	err := quick.Check(func(a uint8, d, nn uint16) bool {
		alpha := (float64(a%100) + 1) / 100
		maxDegree := int(d%512) + 1
		n := int(nn%4096) + maxDegree + 1
		return BlindGossip(alpha, maxDegree, n) > 0 &&
			BitConvRounds(alpha, 3, maxDegree, n) > 0 &&
			AsyncBitConvRounds(alpha, 3, maxDegree, n) > 0 &&
			F(2, maxDegree, n) > 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
