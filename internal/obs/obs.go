// Package obs is the simulator's structured observability layer: typed,
// schema-versioned events emitted by the engine and the protocols, consumed
// by pluggable sinks (an in-memory ring, a JSONL stream, a metrics
// aggregator — see sinks.go and metrics.go).
//
// Design constraints, in priority order:
//
//  1. Zero overhead when disabled. The engine guards every emission site
//     with a nil check, and no Event is constructed unless a sink is
//     configured. TestSteadyStateZeroAllocs pins the disabled path at
//     exactly 0 allocs/round.
//  2. Deterministic event order. An execution is a pure function of (seed,
//     schedule, protocol, config); its event stream must be too, so two
//     same-seed traces can be compared event by event (mtmtrace diff).
//     The sink always observes events in ascending node order within each
//     phase, at any worker count: parallel phase bodies emit into private
//     per-worker buffers (WorkerBuf) that the engine drains into the sink
//     in ascending worker order at each sequential barrier — worker chunks
//     ascend in node id and each worker iterates its chunk ascending, so
//     the concatenation reproduces exactly the sequential emission order,
//     and a Workers=8 trace is byte-identical to the Workers=1 trace of
//     the same seed. (Faulted traced runs are the one forced-sequential
//     exception: fault draws interleave with the event stream.)
//  3. Flat events. Event is a fixed-size value type (no pointers, no
//     per-event heap allocation on the emit path); the per-type meaning of
//     its payload fields is documented on the Type constants and frozen by
//     the JSONL schema version.
package obs

import (
	"fmt"
	"strconv"
)

// Schema identifies the JSONL trace layout ("mtmtrace/v1"). Bump only on
// incompatible changes: readers refuse mismatched schemas rather than
// silently misinterpreting payload fields. Adding a new Type or Kind value
// is a compatible change; repurposing payload fields is not.
const Schema = "mtmtrace/v1"

// Type enumerates the event types the engine and protocols emit.
type Type uint8

const (
	// TypeNone is the zero Type; it is never emitted.
	TypeNone Type = iota

	// TypeRoundStart opens a round. A = number of active nodes.
	TypeRoundStart

	// TypeRoundEnd closes a round with its counters:
	// Node = accepted proposals, Peer = rejected proposals (delivered to a
	// receiver but not chosen), A = total proposals sent, B = connections
	// established. Proposals - accepts - rejects = proposals lost because
	// their target was itself sending.
	TypeRoundEnd

	// TypePropose is a connection proposal. Node = proposer, Peer = target,
	// A = proposer's advertisement tag, B = target's advertisement tag.
	TypePropose

	// TypeReject is a proposal that did not become a connection.
	// Node = target, Peer = proposer. Kind says why: KindBusy (the target
	// was itself sending, so the proposal was lost) or KindContention (the
	// target accepted a different proposal).
	TypeReject

	// TypeAccept is an accepted proposal. Node = receiver, Peer = proposer.
	TypeAccept

	// TypeConnect is an established connection, normalized with
	// Node < Peer. In the mobile telephone model every accept yields
	// exactly one connect; classical mode connects every proposal.
	TypeConnect

	// TypeDeliver is one message delivery over a connection.
	// Node = recipient, Peer = sender, A = the message's first UID (0 when
	// the message carries none), B = the auxiliary bits.
	TypeDeliver

	// TypeTransition is a protocol state transition. Node = the node,
	// Kind = which variable changed, A = old value, B = new value.
	TypeTransition

	// TypeFault is an injected fault (internal/fault). Kind says which:
	// KindCrash / KindRecover (Node = the node; for recover, A/B are the
	// old/new leader estimates, which differ only when the plan resets state
	// on recovery), KindCorrupt (Node = the node, A/B = old/new leader
	// estimates after the adversarial state reset), KindTagFlip (Node = the
	// node, A/B = old/new advertisement tags), KindPropLoss (a proposal
	// dropped in transit; Node = target, Peer = proposer), and KindConnLoss
	// (an accepted connection that failed before the exchange; Node =
	// receiver, Peer = accepted proposer).
	TypeFault
)

// typeNames is the frozen wire encoding of Type (part of the schema).
var typeNames = [...]string{
	TypeNone:       "none",
	TypeRoundStart: "round_start",
	TypeRoundEnd:   "round_end",
	TypePropose:    "propose",
	TypeReject:     "reject",
	TypeAccept:     "accept",
	TypeConnect:    "connect",
	TypeDeliver:    "deliver",
	TypeTransition: "transition",
	TypeFault:      "fault",
}

// String returns the wire name of the type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType resolves a wire name back to a Type.
func ParseType(s string) (Type, error) {
	for t, name := range typeNames {
		if name == s {
			return Type(t), nil
		}
	}
	return TypeNone, fmt.Errorf("obs: unknown event type %q", s)
}

// MarshalJSON encodes the type as its wire name.
func (t Type) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, t.String()), nil
}

// UnmarshalJSON decodes a wire name.
func (t *Type) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("obs: event type: %w", err)
	}
	v, err := ParseType(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// Kind qualifies TypeTransition (which protocol variable changed) and
// TypeReject (why the proposal failed).
type Kind uint8

const (
	// KindNone marks events whose type needs no qualifier.
	KindNone Kind = iota

	// KindLeader: the node's leader estimate changed (all election
	// protocols). A/B are the old/new leader UIDs.
	KindLeader

	// KindBit: the advertised tag bit the node publishes flipped
	// (BitConv PPUSH groups). A/B are the old/new bit values.
	KindBit

	// KindPhase: the node crossed a phase boundary and adopted its pending
	// minimum (BitConv). A/B are the old/new adopted-pair UIDs.
	KindPhase

	// KindPosition: the node drew a new tag bit position for its next local
	// group (AsyncBitConv). A/B are the old/new 1-based positions.
	KindPosition

	// KindInformed: the node learned the rumor (PushPull/PPush).
	// A/B are 0/1.
	KindInformed

	// KindBusy: a proposal was lost because its target was itself sending
	// this round (a sender can never accept).
	KindBusy

	// KindContention: a proposal reached a receiver that accepted a
	// different proposal.
	KindContention

	// KindCrash: the node went down (TypeFault). While down it is invisible
	// to the network, exactly like a node outside its activation window.
	KindCrash

	// KindRecover: the node came back up (TypeFault).
	KindRecover

	// KindCorrupt: the adversary reset the node's protocol state (TypeFault).
	KindCorrupt

	// KindTagFlip: a bit of the node's advertisement was corrupted on the
	// air this round (TypeFault); neighbors see the flipped tag.
	KindTagFlip

	// KindPropLoss: a proposal was dropped in transit by the fault plan
	// (TypeFault), before reaching its target.
	KindPropLoss

	// KindConnLoss: an accepted connection failed before the message
	// exchange (TypeFault); no messages flowed.
	KindConnLoss
)

// kindNames is the frozen wire encoding of Kind (part of the schema).
var kindNames = [...]string{
	KindNone:       "",
	KindLeader:     "leader",
	KindBit:        "bit",
	KindPhase:      "phase",
	KindPosition:   "position",
	KindInformed:   "informed",
	KindBusy:       "busy",
	KindContention: "contention",
	KindCrash:      "crash",
	KindRecover:    "recover",
	KindCorrupt:    "corrupt",
	KindTagFlip:    "tagflip",
	KindPropLoss:   "proploss",
	KindConnLoss:   "connloss",
}

// String returns the wire name of the kind ("" for KindNone).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind resolves a wire name back to a Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return KindNone, fmt.Errorf("obs: unknown event kind %q", s)
}

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, k.String()), nil
}

// UnmarshalJSON decodes a wire name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("obs: event kind: %w", err)
	}
	v, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Event is one observation. It is a flat value type: the emit path never
// allocates, and two events are comparable with ==, which is what makes
// trace diffing a one-pass streaming comparison. The meaning of Node, Peer,
// A, and B depends on Type (documented on the constants above); unused
// fields are zero (Node/Peer use -1 for "no node").
type Event struct {
	Type  Type   `json:"t"`
	Kind  Kind   `json:"kind"`
	Round int    `json:"r"`
	Node  int32  `json:"node"`
	Peer  int32  `json:"peer"`
	A     uint64 `json:"a"`
	B     uint64 `json:"b"`
}

// NoNode is the Node/Peer value for events not about a specific node.
const NoNode = int32(-1)

// String renders the event for terminal display (mtmtrace events).
func (e Event) String() string {
	switch e.Type {
	case TypeRoundStart:
		return fmt.Sprintf("r%-6d round_start  active=%d", e.Round, e.A)
	case TypeRoundEnd:
		return fmt.Sprintf("r%-6d round_end    proposals=%d accepts=%d rejects=%d connections=%d",
			e.Round, e.A, e.Node, e.Peer, e.B)
	case TypePropose:
		return fmt.Sprintf("r%-6d propose      %d -> %d (tags %d -> %d)", e.Round, e.Node, e.Peer, e.A, e.B)
	case TypeReject:
		return fmt.Sprintf("r%-6d reject       %d from %d (%s)", e.Round, e.Node, e.Peer, e.Kind)
	case TypeAccept:
		return fmt.Sprintf("r%-6d accept       %d from %d", e.Round, e.Node, e.Peer)
	case TypeConnect:
		return fmt.Sprintf("r%-6d connect      %d <-> %d", e.Round, e.Node, e.Peer)
	case TypeDeliver:
		return fmt.Sprintf("r%-6d deliver      %d <- %d uid=%#x aux=%#x", e.Round, e.Node, e.Peer, e.A, e.B)
	case TypeTransition:
		return fmt.Sprintf("r%-6d transition   node=%d %s %d -> %d", e.Round, e.Node, e.Kind, e.A, e.B)
	case TypeFault:
		switch e.Kind {
		case KindPropLoss, KindConnLoss:
			return fmt.Sprintf("r%-6d fault        %s %d from %d", e.Round, e.Kind, e.Node, e.Peer)
		default:
			return fmt.Sprintf("r%-6d fault        %s node=%d %d -> %d", e.Round, e.Kind, e.Node, e.A, e.B)
		}
	default:
		return fmt.Sprintf("r%-6d %s node=%d peer=%d kind=%s a=%d b=%d",
			e.Round, e.Type, e.Node, e.Peer, e.Kind, e.A, e.B)
	}
}

// Header identifies the run a trace belongs to. It is the first JSONL line
// of a trace file; two traces are comparable when their headers match.
type Header struct {
	Schema    string `json:"schema"`
	Seed      uint64 `json:"seed"`
	Schedule  string `json:"schedule"`
	N         int    `json:"n"`
	TagBits   int    `json:"tag_bits"`
	Classical bool   `json:"classical"`
}

// Sink receives the event stream of one execution. The engine calls Begin
// exactly once before the first event, Event zero or more times, and End
// exactly once after the last event (also on abnormal termination). Calls
// are never concurrent, at any worker count: parallel workers emit into
// private WorkerBuf buffers, and only the engine's sequential sections
// call the configured sink — implementations need no locking.
type Sink interface {
	Begin(h Header)
	Event(e Event)
	End()
}

// Tee fans one event stream out to several sinks in order.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Begin(h Header) {
	for _, s := range t {
		s.Begin(h)
	}
}

func (t teeSink) Event(e Event) {
	for _, s := range t {
		s.Event(e)
	}
}

func (t teeSink) End() {
	for _, s := range t {
		s.End()
	}
}
