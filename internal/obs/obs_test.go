package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTypeKindWireNames(t *testing.T) {
	for ty := TypeNone; ty <= TypeFault; ty++ {
		got, err := ParseType(ty.String())
		if err != nil || got != ty {
			t.Errorf("ParseType(%q) = %v, %v; want %v", ty.String(), got, err, ty)
		}
	}
	for k := KindNone; k <= KindConnLoss; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Error("ParseType accepted bogus name")
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus name")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{Type: TypeTransition, Kind: KindLeader, Round: 17, Node: 3, Peer: NoNode, A: 42, B: 7}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"t":"transition"`; !strings.Contains(string(data), want) {
		t.Errorf("marshal = %s, want substring %s", data, want)
	}
	if want := `"kind":"leader"`; !strings.Contains(string(data), want) {
		t.Errorf("marshal = %s, want substring %s", data, want)
	}
	var out Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	r.Begin(Header{N: 8})
	for i := 0; i < 5; i++ {
		r.Event(Event{Type: TypeConnect, Round: i + 1})
	}
	r.End()
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("len(Events) = %d, want 3", len(got))
	}
	for i, e := range got {
		if want := i + 3; e.Round != want {
			t.Errorf("event %d round = %d, want %d (oldest-first order)", i, e.Round, want)
		}
	}
	if r.Header().N != 8 {
		t.Errorf("Header.N = %d, want 8", r.Header().N)
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(10)
	r.Event(Event{Round: 1})
	r.Event(Event{Round: 2})
	got := r.Events()
	if len(got) != 2 || got[0].Round != 1 || got[1].Round != 2 {
		t.Errorf("partial ring events = %+v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	h := Header{Seed: 9, Schedule: "static clique-4", N: 4, TagBits: 1}
	events := []Event{
		{Type: TypeRoundStart, Round: 1, Node: NoNode, Peer: NoNode, A: 4},
		{Type: TypePropose, Round: 1, Node: 0, Peer: 2, A: 1, B: 0},
		{Type: TypeAccept, Round: 1, Node: 2, Peer: 0},
		{Type: TypeRoundEnd, Round: 1, Node: 1, Peer: 0, A: 1, B: 1},
	}
	sink.Begin(h)
	for _, e := range events {
		sink.Event(e)
	}
	sink.End()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.Header(); got.Seed != 9 || got.N != 4 || got.Schema != Schema {
		t.Errorf("header = %+v", got)
	}
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestReaderReportsCorruptLine(t *testing.T) {
	header := `{"schema":"` + Schema + `","n":2}`
	cases := []struct {
		name string
		body string
		want string // substring of the expected error
	}{
		{"truncated event", header + "\n" + `{"t":"propose","r":1,"node":0,` + "\n", "line 2"},
		{"garbage line", header + "\n" + `{"t":"connect","r":1}` + "\nnot json\n", "line 3"},
		{"empty line", header + "\n\n", "line 2"},
		{"bad type name", header + "\n" + `{"t":"warp","r":1}` + "\n", "warp"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rd, err := NewReader(strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("header rejected: %v", err)
			}
			_, err = rd.ReadAll()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	// A truncated header is an error too, not a zero-value header.
	if _, err := NewReader(strings.NewReader(`{"schema":"mtmtr`)); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestMetricsFaults(t *testing.T) {
	m := NewMetrics()
	m.Begin(Header{N: 4})
	synthRound(m, 1, 2, 2, 0)
	m.Event(Event{Type: TypeFault, Kind: KindCrash, Round: 2, Node: 1})
	m.Event(Event{Type: TypeFault, Kind: KindPropLoss, Round: 2, Node: 0, Peer: 3})
	m.Event(Event{Type: TypeFault, Kind: KindCorrupt, Round: 3, Node: 2, A: 9, B: 2})
	m.Event(Event{Type: TypeTransition, Kind: KindLeader, Round: 7, Node: 2, A: 9, B: 1})
	m.End()

	s := m.Summary()
	if s.Faults["crash"] != 1 || s.Faults["proploss"] != 1 || s.Faults["corrupt"] != 1 {
		t.Errorf("Faults = %v", s.Faults)
	}
	if s.FaultLost != 1 {
		t.Errorf("FaultLost = %d, want 1", s.FaultLost)
	}
	if s.LastFaultRound != 3 {
		t.Errorf("LastFaultRound = %d, want 3", s.LastFaultRound)
	}
	if s.RecoveryRounds != 4 {
		t.Errorf("RecoveryRounds = %d, want 4 (convergence 7 - last fault 3)", s.RecoveryRounds)
	}

	// Fault-free runs omit the fault fields entirely.
	clean := NewMetrics()
	clean.Begin(Header{N: 2})
	synthRound(clean, 1, 1, 1, 0)
	cs := clean.Summary()
	if cs.Faults != nil || cs.LastFaultRound != 0 || cs.RecoveryRounds != 0 {
		t.Errorf("fault-free summary has fault fields: %+v", cs)
	}
}

func TestReaderRejectsWrongSchema(t *testing.T) {
	in := strings.NewReader(`{"schema":"mtmtrace/v999","n":1}` + "\n")
	if _, err := NewReader(in); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("err = %v, want schema mismatch", err)
	}
}

func TestTee(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	tee := Tee(a, b)
	tee.Begin(Header{N: 2})
	tee.Event(Event{Type: TypeConnect, Round: 1})
	tee.End()
	if a.Total() != 1 || b.Total() != 1 {
		t.Errorf("tee totals = %d, %d; want 1, 1", a.Total(), b.Total())
	}
}

// synthRound feeds one synthetic round into m: p proposals, a accepts (each
// accept becomes a connect between nodes 0 and 1), rej contention rejects.
// The remaining p-a-rej proposals are emitted as busy (lost) rejects so the
// stream stays self-consistent, as the engine's is.
func synthRound(m *Metrics, round int, p, a, rej int) {
	m.Event(Event{Type: TypeRoundStart, Round: round, A: 4})
	for i := 0; i < p; i++ {
		m.Event(Event{Type: TypePropose, Round: round, Node: 0, Peer: 1})
	}
	for i := 0; i < a; i++ {
		m.Event(Event{Type: TypeAccept, Round: round, Node: 1, Peer: 0})
		m.Event(Event{Type: TypeConnect, Round: round, Node: 0, Peer: 1})
	}
	for i := 0; i < rej; i++ {
		m.Event(Event{Type: TypeReject, Round: round, Kind: KindContention, Node: 1, Peer: 2})
	}
	for i := 0; i < p-a-rej; i++ {
		m.Event(Event{Type: TypeReject, Round: round, Kind: KindBusy, Node: 1, Peer: 0})
	}
	m.Event(Event{Type: TypeRoundEnd, Round: round,
		Node: int32(a), Peer: int32(rej), A: uint64(p), B: uint64(a)})
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	m.Begin(Header{Seed: 1, Schedule: "synthetic", N: 4})
	synthRound(m, 1, 3, 1, 1)
	m.Event(Event{Type: TypeTransition, Kind: KindLeader, Round: 1, Node: 1, A: 5, B: 3})
	synthRound(m, 2, 2, 2, 0)
	m.Event(Event{Type: TypeTransition, Kind: KindPhase, Round: 2, Node: 0, A: 0, B: 1})
	synthRound(m, 3, 0, 0, 0)
	m.End()

	s := m.Summary()
	if s.Schema != MetricsSchema {
		t.Errorf("schema = %q", s.Schema)
	}
	if s.Rounds != 3 || s.Proposals != 5 || s.Accepts != 3 || s.Rejects != 1 || s.Connections != 3 {
		t.Errorf("counters = %+v", s)
	}
	if s.Lost != 1 {
		t.Errorf("Lost = %d, want 1", s.Lost)
	}
	if want := 3.0 / 5.0; s.AcceptanceRate != want {
		t.Errorf("AcceptanceRate = %v, want %v", s.AcceptanceRate, want)
	}
	if s.ConvergenceRound != 1 {
		t.Errorf("ConvergenceRound = %d, want 1 (last leader transition)", s.ConvergenceRound)
	}
	if s.Transitions["leader"] != 1 || s.Transitions["phase"] != 1 {
		t.Errorf("Transitions = %v", s.Transitions)
	}
	if s.MaxMatching != 2 || s.MeanMatching != 1 {
		t.Errorf("matching: max=%d mean=%v", s.MaxMatching, s.MeanMatching)
	}
	// Nodes 0 and 1 have 3 connections each, 2 and 3 have none.
	if s.Load.Max != 3 || s.Load.Min != 0 || s.Load.Mean != 1.5 || s.Load.Imbalance != 2 {
		t.Errorf("Load = %+v", s.Load)
	}
	if len(s.ConnectionsCurve) != 3 || s.ConnectionsCurve[1] != 2 {
		t.Errorf("ConnectionsCurve = %v", s.ConnectionsCurve)
	}
	if len(s.AcceptanceCurve) != 3 || s.AcceptanceCurve[2] != 0 {
		t.Errorf("AcceptanceCurve = %v", s.AcceptanceCurve)
	}
}

func TestMetricsGammaBound(t *testing.T) {
	m := NewMetrics()
	m.Begin(Header{N: 4})
	synthRound(m, 1, 2, 2, 0)
	m.SetGammaBound(0.5)
	s := m.Summary()
	if s.GammaBound != 0.5 {
		t.Errorf("GammaBound = %v", s.GammaBound)
	}
	// Scale is γ·n/2 = 1; mean matching is 2.
	if s.MatchingVsBound != 2 {
		t.Errorf("MatchingVsBound = %v, want 2", s.MatchingVsBound)
	}
}

func TestDownsample(t *testing.T) {
	vals := make([]int, 1000)
	for i := range vals {
		vals[i] = i
	}
	got := downsampleInts(vals, 10)
	if len(got) != 10 || got[9] != 999 {
		t.Errorf("downsampleInts tail = %v", got)
	}
	fs := []float64{1, 5, 2}
	if got := downsampleFloats(fs, 8); len(got) != 3 || got[1] != 5 {
		t.Errorf("downsampleFloats short series = %v", got)
	}
}
