package obs

// WorkerBuf is one parallel worker's private event buffer: phase bodies
// running as worker w emit into buffer w instead of the configured sink,
// and the engine drains the buffers into the sink in ascending worker
// order at each sequential barrier. Worker chunks ascend in node id and
// each worker iterates its chunk in ascending order, so the chunk-order
// concatenation reproduces exactly the sequential engine's event order —
// the same argument that makes the parallel counting sort bit-identical.
//
// The struct is padded to a cache line (like workerCounters in the engine)
// so adjacent workers' appends never false-share, and growth uses the
// amortized cap-guarded-make idiom so a warm buffer emits at 0 allocs per
// round (pinned by the Workers>1 variant of TestSteadyStateZeroAllocsTraced
// and certified statically by the hotalloc analyzer).
type WorkerBuf struct {
	buf []Event
	_   [5]uint64 // pad the 24-byte slice header to a full 64-byte cache line
}

// workerBufFloor is the minimum capacity a growing buffer jumps to, so the
// first few rounds do not reallocate per event.
const workerBufFloor = 64

// Begin is a no-op: the engine writes the header to the real sink from its
// sequential section, never through a worker buffer.
func (b *WorkerBuf) Begin(Header) {}

// Event appends one event to the worker's private buffer. Growth is
// amortized doubling behind a cap guard, so the append below it never
// reallocates — the shape the hotalloc cap-guarded-make recognizer
// certifies allocation-free in the steady state.
//
//mtmlint:hotpath
func (b *WorkerBuf) Event(e Event) {
	if len(b.buf) == cap(b.buf) {
		old := b.buf
		b.buf = make([]Event, len(b.buf), 2*cap(b.buf)+workerBufFloor)
		copy(b.buf, old)
	}
	b.buf = append(b.buf, e)
}

// End is a no-op: stream lifecycle belongs to the real sink.
func (b *WorkerBuf) End() {}

// Len returns the number of buffered events awaiting a flush.
func (b *WorkerBuf) Len() int { return len(b.buf) }

// FlushTo forwards the buffered events to s in emission order and resets
// the buffer, retaining its capacity. Only the engine's sequential barriers
// call this, so s observes no concurrent calls.
func (b *WorkerBuf) FlushTo(s Sink) {
	for i := range b.buf {
		s.Event(b.buf[i])
	}
	b.buf = b.buf[:0]
}
