package obs

import (
	"sort"
	"sync/atomic"
)

// ProfSchema identifies the phase-timing report JSON layout ("mtmprof/v1").
// Bump only on incompatible changes, exactly like the trace Schema: readers
// (mtmtrace prof) refuse mismatched schemas.
const ProfSchema = "mtmprof/v1"

// Phase enumerates the engine's round phases for timing attribution. The
// wire names below are part of the mtmprof/v1 schema.
type Phase uint8

const (
	// PhaseActiveScan computes the round's active set.
	PhaseActiveScan Phase = iota
	// PhaseAdvertise runs step 2 (tag advertisement).
	PhaseAdvertise
	// PhaseTagFlip is the fault layer's advertisement-corruption pass,
	// between advertise and decide (faulted runs with a tag-flip rate only).
	PhaseTagFlip
	// PhaseDecide runs step 3 (propose-or-receive decisions).
	PhaseDecide
	// PhaseCount is counting-sort pass one (per-worker proposal histograms).
	PhaseCount
	// PhaseMerge is the sequential column-major prefix merge between the
	// counting-sort passes.
	PhaseMerge
	// PhaseScatter is counting-sort pass two (parallel inbox scatter).
	PhaseScatter
	// PhaseAccept runs step 4's accept decisions.
	PhaseAccept
	// PhasePartner materializes partners from the accept results.
	PhasePartner
	// PhaseBucketSeq is the whole sequential step-4 core (bucket + accept),
	// used when the parallel core is off (Workers=1, faults, classical).
	PhaseBucketSeq
	// PhaseExchange runs step 5 (message exchange over connections).
	PhaseExchange
	// PhaseEndRound runs the end-of-round protocol callbacks.
	PhaseEndRound
	// PhaseFlush drains per-worker event buffers into the sink (parallel
	// traced runs only).
	PhaseFlush
	// PhaseScanAdvertise is the fused active-scan + advertise dispatch (one
	// barrier instead of two, fault-free rounds only). The dispatch's wall
	// time lands here; the fused body self-times each sweep, so busy time
	// still lands on PhaseActiveScan and PhaseAdvertise.
	PhaseScanAdvertise
	// PhasePartnerExchange is the fused partner-materialization + exchange
	// dispatch of the parallel core. Wall time lands here; busy time is
	// self-timed onto PhasePartner and PhaseExchange by the fused body.
	PhasePartnerExchange

	numPhases
)

// phaseNames is the frozen wire encoding of Phase (part of mtmprof/v1).
var phaseNames = [numPhases]string{
	PhaseActiveScan: "active_scan",
	PhaseAdvertise:  "advertise",
	PhaseTagFlip:    "tag_flip",
	PhaseDecide:     "decide",
	PhaseCount:      "count",
	PhaseMerge:      "merge",
	PhaseScatter:    "scatter",
	PhaseAccept:     "accept",
	PhasePartner:    "partner",
	PhaseBucketSeq:  "bucket_accept",
	PhaseExchange:   "exchange",
	PhaseEndRound:   "end_round",
	PhaseFlush:      "flush",

	PhaseScanAdvertise:   "scan_advertise",
	PhasePartnerExchange: "partner_exchange",
}

// String returns the wire name of the phase.
func (p Phase) String() string {
	if p < numPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// busyStride pads per-(phase, worker) busy slots to a cache line so
// concurrent AddBusy calls from different workers never false-share.
const busyStride = 8

// Profiler accumulates per-phase wall time and per-worker busy time for one
// engine. The monotonic clock is injected by the caller — internal/ never
// reads wall time (the norand contract), so the facade passes a
// time.Since-based closure and tests pass a deterministic counter.
//
// All counters are atomic: workers add busy time concurrently, and a
// progress reporter may snapshot (Report, TopPhases) while the engine runs.
// Profiled runs trade the zero-allocation steady state for timing; the
// unprofiled engine path is branch-guarded and unchanged.
type Profiler struct {
	clock    func() int64
	workers  int
	dispatch string // resolved dispatch mode ("inline", "pool", "spawn")
	gate     int    // node-count floor below which dispatches run inline
	rounds   int64
	runNS    int64
	wall     [numPhases]int64
	busy     []int64 // numPhases × workers slots, busyStride apart
}

// NewProfiler creates a profiler reading the given monotonic nanosecond
// clock. Workers read the clock concurrently for busy accounting, so it
// must be goroutine-safe (the real time.Since closure is; a test counter
// must be atomic). The engine sizes the per-worker accounting via Attach.
func NewProfiler(clock func() int64) *Profiler {
	if clock == nil {
		panic("obs: NewProfiler needs an injected clock")
	}
	return &Profiler{clock: clock}
}

// Attach sizes the per-worker busy accounting for an engine with the given
// resolved worker count. The engine calls it from New; calling again with a
// smaller count is a no-op so a profiler may outlive one engine.
func (p *Profiler) Attach(workers int) {
	if workers > p.workers {
		p.workers = workers
		p.busy = make([]int64, int(numPhases)*workers*busyStride)
	}
}

// SetDispatch records the engine's resolved dispatch mode and inline gate
// for the report: a run that silently fell back to inline dispatch (worker
// count 1, a node count under the gate, or a single-P host) is visible in
// its profile instead of just being mysteriously sequential. The engine
// calls it from New, before any rounds run.
func (p *Profiler) SetDispatch(mode string, gateNodes int) {
	p.dispatch = mode
	p.gate = gateNodes
}

// Clock reads the injected monotonic clock (nanoseconds).
func (p *Profiler) Clock() int64 { return p.clock() }

// AddWall adds ns to the phase's wall time. Called from the engine's
// sequential sections only.
func (p *Profiler) AddWall(ph Phase, ns int64) {
	atomic.AddInt64(&p.wall[ph], ns)
}

// AddBusy adds ns to worker w's busy time in the phase. Safe to call from
// parallel workers: each (phase, worker) slot is cache-line isolated.
func (p *Profiler) AddBusy(ph Phase, w int, ns int64) {
	atomic.AddInt64(&p.busy[(int(ph)*p.workers+w)*busyStride], ns)
}

// AddSeq records a sequential section: ns of wall time, all of it worker
// 0's busy time.
func (p *Profiler) AddSeq(ph Phase, ns int64) {
	p.AddWall(ph, ns)
	p.AddBusy(ph, 0, ns)
}

// RoundDone records one completed round taking ns of wall time.
func (p *Profiler) RoundDone(ns int64) {
	atomic.AddInt64(&p.rounds, 1)
	atomic.AddInt64(&p.runNS, ns)
}

// PhaseProfile is one phase's timing in a ProfReport.
type PhaseProfile struct {
	// Phase is the wire name (see Phase constants).
	Phase string `json:"phase"`
	// WallNS is the phase's accumulated wall time across all rounds.
	WallNS int64 `json:"wall_ns"`
	// BusyNS is per-worker busy time (index = worker). Sequential phases
	// charge worker 0.
	BusyNS []int64 `json:"busy_ns"`
	// Imbalance is max busy / mean busy over the workers that did any work
	// in this phase (1 = perfectly even chunks; omitted when idle).
	Imbalance float64 `json:"imbalance,omitempty"`
}

// ProfReport is the mtmprof/v1 phase-timing report.
type ProfReport struct {
	Schema  string `json:"schema"`
	Workers int    `json:"workers"`
	// Dispatch is the engine's resolved dispatch mode ("inline", "pool",
	// "spawn"); GateNodes is the node-count floor below which dispatches run
	// inline. Both are omitted by profilers that predate the worker pool —
	// adding omitempty fields is a compatible mtmprof/v1 extension.
	Dispatch  string `json:"dispatch,omitempty"`
	GateNodes int    `json:"gate_nodes,omitempty"`
	Rounds    int64  `json:"rounds"`
	// WallNS is total round wall time (sum over rounds; phase wall times
	// sum to at most this — unattributed sequential glue is the gap).
	WallNS       int64          `json:"wall_ns"`
	RoundsPerSec float64        `json:"rounds_per_sec"`
	Phases       []PhaseProfile `json:"phases"`
}

// Report snapshots the accumulated timings as an mtmprof/v1 report. Phases
// that never ran under this configuration are omitted. Safe to call while
// the engine is still running (the snapshot is internally consistent per
// counter, not across counters — fine for progress displays and final
// reports alike).
func (p *Profiler) Report() ProfReport {
	rep := ProfReport{
		Schema:    ProfSchema,
		Workers:   p.workers,
		Dispatch:  p.dispatch,
		GateNodes: p.gate,
		Rounds:    atomic.LoadInt64(&p.rounds),
		WallNS:    atomic.LoadInt64(&p.runNS),
	}
	if rep.WallNS > 0 {
		rep.RoundsPerSec = float64(rep.Rounds) / (float64(rep.WallNS) / 1e9)
	}
	for ph := Phase(0); ph < numPhases; ph++ {
		wall := atomic.LoadInt64(&p.wall[ph])
		busy := make([]int64, p.workers)
		var busyMax, busySum int64
		active := 0
		for w := 0; w < p.workers; w++ {
			b := atomic.LoadInt64(&p.busy[(int(ph)*p.workers+w)*busyStride])
			busy[w] = b
			if b > 0 {
				active++
				busySum += b
				if b > busyMax {
					busyMax = b
				}
			}
		}
		if wall == 0 && busySum == 0 {
			continue
		}
		prof := PhaseProfile{Phase: ph.String(), WallNS: wall, BusyNS: busy}
		if active > 0 {
			mean := float64(busySum) / float64(active)
			if mean > 0 {
				prof.Imbalance = float64(busyMax) / mean
			}
		}
		rep.Phases = append(rep.Phases, prof)
	}
	return rep
}

// TopPhases returns up to k "name share%" strings for the phases with the
// largest accumulated wall time — the one-line form mtmexp -progress shows.
// Ties break by phase order, so the output is deterministic for a given
// set of counter values. Safe to call concurrently with a running engine.
func (p *Profiler) TopPhases(k int) []string {
	type entry struct {
		ph   Phase
		wall int64
	}
	var entries []entry
	var total int64
	for ph := Phase(0); ph < numPhases; ph++ {
		w := atomic.LoadInt64(&p.wall[ph])
		if w > 0 {
			entries = append(entries, entry{ph, w})
			total += w
		}
	}
	if total == 0 {
		return nil
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].wall > entries[j].wall })
	if len(entries) > k {
		entries = entries[:k]
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ph.String() + " " + itoaPct(e.wall, total)
	}
	return out
}

// itoaPct formats 100*part/total as "NN%" without fmt (cheap enough to call
// from a throttled progress line).
func itoaPct(part, total int64) string {
	pct := part * 100 / total
	if pct > 99 {
		return "100%"
	}
	buf := [4]byte{}
	i := len(buf)
	i--
	buf[i] = '%'
	for {
		i--
		buf[i] = byte('0' + pct%10)
		pct /= 10
		if pct == 0 {
			break
		}
	}
	return string(buf[i:])
}
