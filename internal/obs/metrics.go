package obs

import "math"

// MetricsSchema identifies the run-summary JSON layout.
const MetricsSchema = "mtmtrace-metrics/v1"

// Metrics is a streaming aggregator sink: it folds the event stream into a
// per-run Summary without retaining the events themselves. It works equally
// attached live to an engine or replaying a JSONL trace (mtmtrace summary).
type Metrics struct {
	header Header

	rounds      int
	proposals   int64
	accepts     int64
	rejects     int64
	lost        int64
	connections int64

	// Per-round curves, folded streaming at round_end into bounded
	// max-pooled buffers (see curve) so a multi-GB trace summarizes in
	// O(1) resident memory.
	connCurve      curve[int]
	acceptCurve    curve[float64] // accepts/proposals (0 when no proposals)
	imbalanceCurve curve[float64] // max load / mean load so far

	// Incremental matching stats (each round's connections form a matching),
	// maintained at round_end so Summary never needs the full curve.
	matchTotal  int64
	matchRounds int64
	maxMatching int

	transitions      [len(kindNames)]int64
	convergenceRound int // last round a leader/informed transition fired

	// Injected-fault accounting (TypeFault events, internal/fault).
	faults         [len(kindNames)]int64
	faultLost      int64 // proposals killed by proploss/connloss faults
	lastFaultRound int   // last round any fault fired (0 = none)

	// Lifetime per-node connection counts, maintained incrementally from
	// connect events so the imbalance curve costs O(1) per connection.
	connCount []int64
	maxLoad   int64

	// Scratch for the current round (reset at round_start).
	roundProposals int64
	roundAccepts   int64
	roundConns     int64

	gammaBound float64
}

// NewMetrics creates an empty aggregator.
func NewMetrics() *Metrics { return &Metrics{} }

// SetGammaBound supplies the topology's exact cut-matching number γ
// (matching.GammaExact) so the summary can relate observed matching sizes
// to the Lemma V.1 guarantee. Call before or after the run; zero means
// unknown (the summary omits the comparison).
func (m *Metrics) SetGammaBound(gamma float64) { m.gammaBound = gamma }

// Begin sizes the per-node state from the run header.
func (m *Metrics) Begin(h Header) {
	m.header = h
	if h.N > 0 {
		m.connCount = make([]int64, h.N)
	}
}

// Event folds one event into the aggregate.
func (m *Metrics) Event(e Event) {
	switch e.Type {
	case TypeRoundStart:
		m.roundProposals, m.roundAccepts, m.roundConns = 0, 0, 0
	case TypePropose:
		m.proposals++
		m.roundProposals++
	case TypeAccept:
		m.accepts++
		m.roundAccepts++
	case TypeReject:
		// Busy-target proposals are "lost" (the target was itself sending);
		// contention rejects reached a receiver but were not the one chosen.
		if e.Kind == KindBusy {
			m.lost++
		} else {
			m.rejects++
		}
	case TypeConnect:
		m.connections++
		m.roundConns++
		m.bumpLoad(e.Node)
		m.bumpLoad(e.Peer)
	case TypeTransition:
		if int(e.Kind) < len(m.transitions) {
			m.transitions[e.Kind]++
		}
		if e.Kind == KindLeader || e.Kind == KindInformed {
			m.convergenceRound = e.Round
		}
	case TypeFault:
		if int(e.Kind) < len(m.faults) {
			m.faults[e.Kind]++
		}
		if e.Kind == KindPropLoss || e.Kind == KindConnLoss {
			m.faultLost++
		}
		if e.Round > m.lastFaultRound {
			m.lastFaultRound = e.Round
		}
	case TypeRoundEnd:
		if e.Round > m.rounds {
			m.rounds = e.Round
		}
		m.connCurve.add(int(m.roundConns))
		rate := 0.0
		if m.roundProposals > 0 {
			rate = float64(m.roundAccepts) / float64(m.roundProposals)
		}
		m.acceptCurve.add(rate)
		m.imbalanceCurve.add(m.imbalance())
		m.matchTotal += m.roundConns
		m.matchRounds++
		if int(m.roundConns) > m.maxMatching {
			m.maxMatching = int(m.roundConns)
		}
	}
}

// End is a no-op; the aggregate is read via Summary.
func (m *Metrics) End() {}

func (m *Metrics) bumpLoad(node int32) {
	if node < 0 || int(node) >= len(m.connCount) {
		return
	}
	m.connCount[node]++
	if m.connCount[node] > m.maxLoad {
		m.maxLoad = m.connCount[node]
	}
}

// imbalance returns max/mean of the lifetime per-node connection counts so
// far (0 before any connection).
func (m *Metrics) imbalance() float64 {
	if len(m.connCount) == 0 || m.connections == 0 {
		return 0
	}
	mean := 2 * float64(m.connections) / float64(len(m.connCount))
	return float64(m.maxLoad) / mean
}

// LoadSummary summarizes lifetime per-node connection load.
type LoadSummary struct {
	Min       int64   `json:"min"`
	Max       int64   `json:"max"`
	Mean      float64 `json:"mean"`
	Imbalance float64 `json:"imbalance"`
}

// Summary is the per-run metrics report (JSON layout versioned by
// MetricsSchema). Curves are max-pooled to at most CurvePoints entries so
// summaries of million-round runs stay small.
type Summary struct {
	Schema   string `json:"schema"`
	Seed     uint64 `json:"seed"`
	Schedule string `json:"schedule"`
	N        int    `json:"n"`

	Rounds    int   `json:"rounds"`
	Proposals int64 `json:"proposals"`
	Accepts   int64 `json:"accepts"`
	// Rejects counts contention rejects (the proposal reached a receiver
	// that chose another suitor); Lost counts busy-target proposals (the
	// target was itself sending); FaultLost counts proposals killed by
	// injected faults (proploss/connloss).
	// Accepts + Rejects + Lost + FaultLost == Proposals.
	Rejects     int64 `json:"rejects"`
	Lost        int64 `json:"lost"`
	FaultLost   int64 `json:"fault_lost,omitempty"`
	Connections int64 `json:"connections"`

	// AcceptanceRate is accepts/proposals over the whole run.
	AcceptanceRate float64 `json:"acceptance_rate"`

	// ConvergenceRound is the last round any node's leader estimate (or
	// informed status, for rumor runs) changed — the run's effective
	// rounds-to-convergence as observed from the event stream.
	ConvergenceRound int `json:"convergence_round"`

	// Transitions counts protocol state transitions per kind.
	Transitions map[string]int64 `json:"transitions"`

	// Faults counts injected faults per kind (omitted for fault-free runs).
	Faults map[string]int64 `json:"faults,omitempty"`

	// LastFaultRound is the last round any fault fired (0 = fault-free run).
	// RecoveryRounds is the recovery metric for fault-burst runs: rounds from
	// the last fault to the last leader/informed transition
	// (ConvergenceRound - LastFaultRound, floored at 0) — re-election /
	// re-stabilization time when the burst precedes final convergence.
	LastFaultRound int `json:"last_fault_round,omitempty"`
	RecoveryRounds int `json:"recovery_rounds,omitempty"`

	// MeanMatching / MaxMatching describe per-round connection-set sizes
	// (each round's connections form a matching in the mobile telephone
	// model).
	MeanMatching float64 `json:"mean_matching"`
	MaxMatching  int     `json:"max_matching"`

	// GammaBound is the topology's exact γ (matching.GammaExact) when known.
	// MatchingVsBound relates the observed mean matching size to the
	// Lemma V.1 scale γ·n/2 — the matching size the lemma guarantees is
	// reachable for a fully-active round.
	GammaBound      float64 `json:"gamma_bound,omitempty"`
	MatchingVsBound float64 `json:"matching_vs_bound,omitempty"`

	Load LoadSummary `json:"load"`

	ConnectionsCurve []int     `json:"connections_curve"`
	AcceptanceCurve  []float64 `json:"acceptance_curve"`
	ImbalanceCurve   []float64 `json:"imbalance_curve"`
}

// CurvePoints bounds the curve lengths embedded in a Summary.
const CurvePoints = 128

// Summary renders the aggregate.
func (m *Metrics) Summary() Summary {
	s := Summary{
		Schema:           MetricsSchema,
		Seed:             m.header.Seed,
		Schedule:         m.header.Schedule,
		N:                m.header.N,
		Rounds:           m.rounds,
		Proposals:        m.proposals,
		Accepts:          m.accepts,
		Rejects:          m.rejects,
		Lost:             m.lost,
		FaultLost:        m.faultLost,
		Connections:      m.connections,
		ConvergenceRound: m.convergenceRound,
		Transitions:      make(map[string]int64),
		ConnectionsCurve: downsampleInts(m.connCurve.snapshot(), CurvePoints),
		AcceptanceCurve:  downsampleFloats(m.acceptCurve.snapshot(), CurvePoints),
		ImbalanceCurve:   downsampleFloats(m.imbalanceCurve.snapshot(), CurvePoints),
	}
	if m.proposals > 0 {
		s.AcceptanceRate = float64(m.accepts) / float64(m.proposals)
	}
	for k, c := range m.transitions {
		if c > 0 {
			s.Transitions[Kind(k).String()] = c
		}
	}
	for k, c := range m.faults {
		if c > 0 {
			if s.Faults == nil {
				s.Faults = make(map[string]int64)
			}
			s.Faults[Kind(k).String()] = c
		}
	}
	if m.lastFaultRound > 0 {
		s.LastFaultRound = m.lastFaultRound
		if m.convergenceRound > m.lastFaultRound {
			s.RecoveryRounds = m.convergenceRound - m.lastFaultRound
		}
	}
	s.MaxMatching = m.maxMatching
	if m.matchRounds > 0 {
		s.MeanMatching = float64(m.matchTotal) / float64(m.matchRounds)
	}
	if m.gammaBound > 0 && m.header.N > 0 {
		s.GammaBound = m.gammaBound
		scale := m.gammaBound * float64(m.header.N) / 2
		if scale > 0 {
			s.MatchingVsBound = s.MeanMatching / scale
		}
	}
	s.Load = m.loadSummary()
	return s
}

func (m *Metrics) loadSummary() LoadSummary {
	if len(m.connCount) == 0 {
		return LoadSummary{}
	}
	minLoad := m.connCount[0]
	var total int64
	for _, c := range m.connCount {
		total += c
		if c < minLoad {
			minLoad = c
		}
	}
	mean := float64(total) / float64(len(m.connCount))
	imb := 0.0
	if mean > 0 {
		imb = float64(m.maxLoad) / mean
	}
	return LoadSummary{Min: minLoad, Max: m.maxLoad, Mean: mean, Imbalance: imb}
}

// downsampleInts max-pools a series to at most width points (peaks are what
// matter for matching-size curves).
func downsampleInts(values []int, width int) []int {
	if len(values) <= width {
		return append([]int(nil), values...)
	}
	out := make([]int, width)
	for i := 0; i < width; i++ {
		lo, hi := bucket(i, width, len(values))
		m := values[lo]
		for _, v := range values[lo:hi] {
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out
}

// downsampleFloats max-pools a float series to at most width points.
func downsampleFloats(values []float64, width int) []float64 {
	if len(values) <= width {
		return append([]float64(nil), values...)
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo, hi := bucket(i, width, len(values))
		m := math.Inf(-1)
		for _, v := range values[lo:hi] {
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out
}

// bucket returns the [lo, hi) source range of downsample bucket i.
func bucket(i, width, n int) (lo, hi int) {
	lo = i * n / width
	hi = (i + 1) * n / width
	if hi == lo {
		hi = lo + 1
	}
	return lo, hi
}

// curveBuf bounds the in-memory resolution of a streaming curve. It is twice
// CurvePoints so the final downsample to CurvePoints always has at least two
// source values per output bucket once pooling has started.
const curveBuf = 2 * CurvePoints

// curve is a bounded streaming max-pool over a per-round series: it holds at
// most curveBuf buckets, and when full it halves itself in place (max of
// adjacent pairs) and doubles the number of source rounds per bucket. Memory
// is O(1) in the number of rounds — the piece that lets Metrics summarize a
// multi-GB trace without retaining per-round state. For runs of at most
// CurvePoints rounds the stride never grows, so short-run summaries are
// bit-identical to the pre-streaming implementation.
type curve[T int | float64] struct {
	vals   []T
	stride int // source rounds per completed bucket (power of two)
	fill   int // source rounds folded into the trailing partial bucket
}

// add folds one round's value into the curve.
func (c *curve[T]) add(v T) {
	if c.fill > 0 {
		last := len(c.vals) - 1
		if v > c.vals[last] {
			c.vals[last] = v
		}
		c.fill++
		if c.fill == c.stride {
			c.fill = 0
		}
		return
	}
	if c.stride == 0 {
		c.stride = 1
	}
	if len(c.vals) == curveBuf {
		for i := 0; i < curveBuf/2; i++ {
			a, b := c.vals[2*i], c.vals[2*i+1]
			if b > a {
				a = b
			}
			c.vals[i] = a
		}
		c.vals = c.vals[:curveBuf/2]
		c.stride *= 2
	}
	c.vals = append(c.vals, v)
	if c.stride > 1 {
		c.fill = 1
	}
}

// snapshot returns the pooled buckets in order (a copy; the trailing bucket
// may cover fewer than stride rounds).
func (c *curve[T]) snapshot() []T {
	return append([]T(nil), c.vals...)
}
