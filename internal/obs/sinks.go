package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Ring is a bounded in-memory recorder: it keeps the most recent capacity
// events, overwriting the oldest. Once its buffer is warm it allocates
// nothing per event, so it can observe the engine's steady state without
// perturbing the zero-allocs contract (see TestSteadyStateZeroAllocsTraced).
type Ring struct {
	header Header
	buf    []Event
	next   int   // write cursor into buf
	total  int64 // events observed over the sink's lifetime
	ended  bool
}

// NewRing creates a ring recorder keeping the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic("obs: Ring capacity must be >= 1")
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Begin records the run header.
func (r *Ring) Begin(h Header) { r.header = h }

// Event stores the event, evicting the oldest once full.
func (r *Ring) Event(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// End marks the stream complete.
func (r *Ring) End() { r.ended = true }

// Header returns the run header observed at Begin.
func (r *Ring) Header() Header { return r.header }

// Total returns the number of events observed over the sink's lifetime
// (which may exceed capacity).
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events, oldest first. The slice is a copy.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// JSONL streams the trace as JSON lines: one Header line, then one Event
// per line, in emission order. Writes are buffered; End flushes. Because
// Sink methods cannot return errors (they sit on the engine's hot path),
// the first write error is latched and exposed via Err.
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL creates a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// Begin writes the header line, stamping the schema version.
func (j *JSONL) Begin(h Header) {
	h.Schema = Schema
	j.encode(&h)
}

// Event writes one event line.
func (j *JSONL) Event(e Event) { j.encode(&e) }

// End flushes the buffer.
func (j *JSONL) End() {
	if j.err == nil {
		j.err = j.bw.Flush()
	}
}

// Err returns the first error encountered while writing, if any. Check it
// after the run: a trace with a latched error is truncated.
func (j *JSONL) Err() error { return j.err }

func (j *JSONL) encode(v interface{}) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(v)
}

// Reader parses a JSONL trace produced by the JSONL sink, streaming events
// one at a time so multi-gigabyte traces never need to fit in memory. It
// reads line by line and reports the 1-based line number of any malformed
// or truncated line, so a corrupt trace names the exact point of damage
// instead of misparsing past it.
type Reader struct {
	sc     *bufio.Scanner
	line   int // lines consumed so far (header = line 1)
	header Header
}

// maxTraceLine bounds a single trace line (far above anything the JSONL
// sink emits; a longer line means the file is not a trace).
const maxTraceLine = 1 << 20

// NewReader reads and validates the header line of a trace.
func NewReader(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	rd := &Reader{sc: sc}
	data, err := rd.scanLine()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("obs: trace header: empty trace")
		}
		return nil, fmt.Errorf("obs: trace header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("obs: trace header (line 1): %w", err)
	}
	if h.Schema != Schema {
		return nil, fmt.Errorf("obs: trace schema %q, this reader speaks %q", h.Schema, Schema)
	}
	rd.header = h
	return rd, nil
}

// scanLine returns the next raw line, or io.EOF at a clean end of input.
func (r *Reader) scanLine() ([]byte, error) {
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			return nil, fmt.Errorf("line %d: %w", r.line+1, err)
		}
		return nil, io.EOF
	}
	r.line++
	return r.sc.Bytes(), nil
}

// Header returns the trace's run header.
func (r *Reader) Header() Header { return r.header }

// Line returns the 1-based number of the last line consumed.
func (r *Reader) Line() int { return r.line }

// Next returns the next event, or io.EOF after the last one. A malformed or
// truncated line (e.g. a write cut off mid-record) is an error naming the
// offending line number, never silently skipped.
func (r *Reader) Next() (Event, error) {
	data, err := r.scanLine()
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("obs: trace: %w", err)
	}
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return Event{}, fmt.Errorf("obs: trace line %d: corrupt or truncated event: %w", r.line, err)
	}
	// A record with no event type is valid JSON but not an event — most
	// likely a header from a concatenated or interleaved trace (possibly a
	// different schema version). Reject it by line rather than folding a
	// zero event into downstream aggregation.
	if e.Type == TypeNone {
		return Event{}, fmt.Errorf("obs: trace line %d: corrupt or truncated event: record has no event type (interleaved trace or foreign schema?)", r.line)
	}
	return e, nil
}

// ReadAll drains the reader into a slice (tests and small traces).
func (r *Reader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
