package obs

// Filter is a deterministic filtering sink wrapper: it forwards the header
// and every event that passes its round-sampling and type filters, so a
// traced million-node run can produce a bounded artifact. Filtering is a
// pure function of each event, so two filtered traces of the same run are
// byte-identical whenever the unfiltered traces are — mtmtrace diff keeps
// working on sampled traces recorded with the same filter.
type Filter struct {
	dst    Sink
	sample int    // keep rounds with Round % sample == 0 (<= 1 keeps all)
	types  uint32 // bitmask of kept Types (0 keeps all)
}

// NewFilter wraps dst. sample <= 1 keeps every round; otherwise only events
// of rounds divisible by sample pass. An empty types list keeps every type;
// otherwise only the listed types pass (round boundaries included only if
// listed). Both filters compose: an event must pass both.
func NewFilter(dst Sink, sample int, types []Type) *Filter {
	f := &Filter{dst: dst, sample: sample}
	for _, t := range types {
		f.types |= 1 << uint(t)
	}
	return f
}

// Begin forwards the header unconditionally: a filtered trace is still a
// valid mtmtrace/v1 stream.
func (f *Filter) Begin(h Header) { f.dst.Begin(h) }

// Event forwards e iff it passes both filters.
func (f *Filter) Event(e Event) {
	if f.sample > 1 && e.Round%f.sample != 0 {
		return
	}
	if f.types != 0 && f.types&(1<<uint(e.Type)) == 0 {
		return
	}
	f.dst.Event(e)
}

// End forwards the end of stream.
func (f *Filter) End() { f.dst.End() }
