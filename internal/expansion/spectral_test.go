package expansion

import (
	"math"
	"testing"

	"mobiletel/internal/graph/gen"
)

func TestSpectralGapCycleMatchesClosedForm(t *testing.T) {
	// For the n-cycle the normalized Laplacian eigenvalues are
	// 1 − cos(2πk/n); λ₂ = 1 − cos(2π/n).
	for _, n := range []int{8, 16, 40} {
		f := gen.Cycle(n)
		want := 1 - math.Cos(2*math.Pi/float64(n))
		got := SpectralGap(f.Graph, 3000)
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("cycle(%d): λ₂ = %v, want %v", n, got, want)
		}
	}
}

func TestSpectralGapCompleteGraph(t *testing.T) {
	// K_n has normalized Laplacian eigenvalues 0 and n/(n−1).
	f := gen.Clique(10)
	want := 10.0 / 9.0
	got := SpectralGap(f.Graph, 2000)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("K10: λ₂ = %v, want %v", got, want)
	}
}

func TestSpectralAlphaEstimateBelowExact(t *testing.T) {
	// The Cheeger-style estimate should sit at or below the exact α
	// (within the eigenvalue tolerance) on small regular-ish graphs.
	families := []gen.Family{
		gen.Cycle(12),
		gen.Clique(8),
		gen.Hypercube(3),
		gen.Petersen(),
		gen.RingOfCliques(3, 4),
	}
	for _, f := range families {
		exact, _ := Exact(f.Graph)
		est := SpectralAlphaEstimate(f.Graph, 3000)
		if est > exact*1.01+1e-9 {
			t.Errorf("%s: spectral estimate %v exceeds exact α %v", f.Name, est, exact)
		}
		if est <= 0 {
			t.Errorf("%s: spectral estimate %v not positive on a connected graph", f.Name, est)
		}
	}
}

func TestSpectralSandwichOnExpanders(t *testing.T) {
	// On a random regular expander, the spectral lower estimate and the
	// sweep upper bound must bracket a healthy constant range.
	f := gen.RandomRegular(256, 8, 5)
	lower := SpectralAlphaEstimate(f.Graph, 2000)
	upper, _ := SweepUpperBound(f.Graph)
	if lower <= 0.01 {
		t.Fatalf("expander spectral bound %v collapsed", lower)
	}
	if lower > upper*1.01 {
		t.Fatalf("sandwich inverted: spectral %v > sweep %v", lower, upper)
	}
}

func TestSpectralGapSmallOnBottleneck(t *testing.T) {
	// Barbell: two cliques joined by one edge — tiny spectral gap,
	// much smaller than the clique's.
	barbell := SpectralGap(gen.Barbell(8).Graph, 3000)
	clique := SpectralGap(gen.Clique(16).Graph, 3000)
	if barbell*10 > clique {
		t.Fatalf("barbell gap %v not much smaller than clique gap %v", barbell, clique)
	}
}

func TestSpectralGapPanics(t *testing.T) {
	cases := []func(){
		func() { SpectralGap(gen.Clique(1).Graph, 10) },
		func() { SpectralGap(gen.Clique(4).Graph, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSpectralGap(b *testing.B) {
	f := gen.RandomRegular(1000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpectralGap(f.Graph, 200)
	}
}
