package expansion

import (
	"math"

	"mobiletel/internal/graph"
)

// SpectralGap estimates λ₂, the second-smallest eigenvalue of the
// normalized Laplacian L = I − D^{−1/2}·A·D^{−1/2}, by deflated power
// iteration on M = 2I − L (whose top eigenvector D^{1/2}·1 is known in
// closed form). The estimate converges to λ₂ from below in μ-space, i.e.
// the returned value approaches λ₂ from above; iters controls accuracy
// (a few hundred iterations give ~1e-6 on well-conditioned graphs).
//
// It panics on graphs with isolated nodes (degree 0), where the normalized
// Laplacian is undefined.
func SpectralGap(g *graph.Graph, iters int) float64 {
	n := g.N()
	if n < 2 {
		panic("expansion: SpectralGap needs n >= 2")
	}
	if iters < 1 {
		panic("expansion: SpectralGap needs iters >= 1")
	}
	sqrtDeg := make([]float64, n)
	for u := 0; u < n; u++ {
		d := g.Degree(u)
		if d == 0 {
			panic("expansion: SpectralGap on graph with isolated node")
		}
		sqrtDeg[u] = math.Sqrt(float64(d))
	}
	// Top eigenvector of M (eigenvalue 2): v1 ∝ D^{1/2}·1.
	v1 := make([]float64, n)
	norm := 0.0
	for u := 0; u < n; u++ {
		v1[u] = sqrtDeg[u]
		norm += v1[u] * v1[u]
	}
	norm = math.Sqrt(norm)
	for u := range v1 {
		v1[u] /= norm
	}

	// Deterministic, non-degenerate start vector, deflated against v1.
	x := make([]float64, n)
	for u := range x {
		x[u] = math.Sin(float64(u+1)) + 0.5
	}
	y := make([]float64, n)

	deflate := func(v []float64) {
		dot := 0.0
		for u := range v {
			dot += v[u] * v1[u]
		}
		for u := range v {
			v[u] -= dot * v1[u]
		}
	}
	normalize := func(v []float64) float64 {
		s := 0.0
		for _, val := range v {
			s += val * val
		}
		s = math.Sqrt(s)
		if s == 0 {
			return 0
		}
		for u := range v {
			v[u] /= s
		}
		return s
	}

	deflate(x)
	if normalize(x) == 0 {
		// The start vector was (numerically) parallel to v1; perturb.
		for u := range x {
			x[u] = float64((u*2654435761)%1000) / 1000.0
		}
		deflate(x)
		normalize(x)
	}

	mu := 0.0
	for it := 0; it < iters; it++ {
		// y = M·x = 2x − L·x = x + D^{-1/2} A D^{-1/2} x.
		for u := 0; u < n; u++ {
			sum := 0.0
			for _, v := range g.Neighbors(u) {
				sum += x[v] / sqrtDeg[v]
			}
			y[u] = x[u] + sum/sqrtDeg[u]
		}
		deflate(y)
		// Rayleigh quotient μ ≈ x·Mx (x is unit length).
		mu = 0.0
		for u := 0; u < n; u++ {
			mu += x[u] * y[u]
		}
		if normalize(y) == 0 {
			break
		}
		x, y = y, x
	}
	lambda2 := 2 - mu
	if lambda2 < 0 {
		lambda2 = 0
	}
	return lambda2
}

// SpectralAlphaEstimate converts the spectral gap into an (approximate)
// lower-bound estimate on vertex expansion via Cheeger's inequality:
// edge conductance h ≥ λ₂/2, |∂S| ≥ |E(S, S̄)|/Δ, and vol(S) ≥ δ_min·|S|,
// giving α ≳ (λ₂/2)·δ_min/Δ. Approximate because λ₂ itself is estimated
// (from above), so treat the result as a heuristic companion to the
// certified SweepUpperBound: together they sandwich α in practice.
func SpectralAlphaEstimate(g *graph.Graph, iters int) float64 {
	lambda2 := SpectralGap(g, iters)
	minDeg := g.N()
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d < minDeg {
			minDeg = d
		}
	}
	return lambda2 / 2 * float64(minDeg) / float64(g.MaxDegree())
}
