package expansion

import (
	"math"
	"testing"

	"mobiletel/internal/graph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/xrand"
)

func TestExactClique(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 9} {
		f := gen.Clique(n)
		alpha, set := Exact(f.Graph)
		if alpha != f.Alpha {
			t.Errorf("K_%d: exact α=%v, analytic %v", n, alpha, f.Alpha)
		}
		if !Verify(f.Graph, set, alpha) {
			t.Errorf("K_%d: minimizing set %v does not attain %v", n, set, alpha)
		}
	}
}

func TestExactPath(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 10, 11} {
		f := gen.Path(n)
		alpha, _ := Exact(f.Graph)
		if alpha != f.Alpha {
			t.Errorf("path(%d): exact α=%v, analytic %v", n, alpha, f.Alpha)
		}
	}
}

func TestExactCycle(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 12} {
		f := gen.Cycle(n)
		alpha, _ := Exact(f.Graph)
		if alpha != f.Alpha {
			t.Errorf("cycle(%d): exact α=%v, analytic %v", n, alpha, f.Alpha)
		}
	}
}

func TestExactStar(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 9, 12} {
		f := gen.Star(n)
		alpha, _ := Exact(f.Graph)
		if alpha != f.Alpha {
			t.Errorf("star(%d): exact α=%v, analytic %v", n, alpha, f.Alpha)
		}
	}
}

func TestExactLineOfStars(t *testing.T) {
	cases := []struct{ stars, points int }{{2, 2}, {3, 2}, {4, 3}, {3, 4}}
	for _, c := range cases {
		f := gen.LineOfStars(c.stars, c.points)
		if f.N() > MaxExactN {
			continue
		}
		alpha, set := Exact(f.Graph)
		if alpha != f.Alpha {
			t.Errorf("line-of-stars(%d,%d): exact α=%v, analytic %v (set %v)",
				c.stars, c.points, alpha, f.Alpha, set)
		}
	}
}

func TestExactBarbell(t *testing.T) {
	for _, s := range []int{2, 3, 5, 8} {
		f := gen.Barbell(s)
		if f.N() > MaxExactN {
			continue
		}
		alpha, _ := Exact(f.Graph)
		if alpha != f.Alpha {
			t.Errorf("barbell(%d): exact α=%v, analytic %v", s, alpha, f.Alpha)
		}
	}
}

func TestExactBinaryTree(t *testing.T) {
	for _, levels := range []int{2, 3, 4} {
		f := gen.CompleteBinaryTree(levels)
		alpha, _ := Exact(f.Graph)
		if alpha != f.Alpha {
			t.Errorf("binary-tree(%d levels): exact α=%v, analytic %v", levels, alpha, f.Alpha)
		}
	}
}

func TestExactRingOfCliques(t *testing.T) {
	cases := []struct{ k, s int }{{3, 3}, {4, 3}, {4, 4}, {5, 4}, {6, 3}}
	for _, c := range cases {
		f := gen.RingOfCliques(c.k, c.s)
		if f.N() > MaxExactN {
			continue
		}
		alpha, set := Exact(f.Graph)
		if alpha != f.Alpha {
			t.Errorf("ring-of-cliques(%d,%d): exact α=%v, analytic %v (set %v)",
				c.k, c.s, alpha, f.Alpha, set)
		}
	}
}

func TestExactRejectsLargeGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exact on oversized graph did not panic")
		}
	}()
	Exact(gen.Cycle(MaxExactN + 1).Graph)
}

func TestExactRejectsTinyGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exact on 1-node graph did not panic")
		}
	}()
	Exact(graph.NewBuilder(1).MustBuild())
}

func TestSweepIsUpperBound(t *testing.T) {
	// On every small random connected graph, the sweep bound must be >= the
	// exact α and must be attained by a valid cut.
	rng := xrand.New(42)
	for trial := 0; trial < 40; trial++ {
		g := randomConnected(rng, 6+trial%8, 0.35)
		exact, _ := Exact(g)
		sweep, set := SweepUpperBound(g)
		if sweep < exact-1e-12 {
			t.Fatalf("sweep %v below exact %v on %v", sweep, exact, g)
		}
		if !Verify(g, set, sweep) {
			t.Fatalf("sweep set %v does not attain %v on %v", set, sweep, g)
		}
	}
}

func TestSweepExactOnLineFamilies(t *testing.T) {
	// For path-like families, a BFS sweep from an endpoint finds the true
	// minimum cut, so the bound should be tight.
	for _, n := range []int{8, 13, 20, 51} {
		f := gen.Path(n)
		sweep, _ := SweepUpperBound(f.Graph)
		if sweep != f.Alpha {
			t.Errorf("path(%d): sweep α=%v, want exact %v", n, sweep, f.Alpha)
		}
	}
	for _, side := range []int{3, 5, 8} {
		f := gen.SqrtLineOfStars(side)
		sweep, _ := SweepUpperBound(f.Graph)
		if sweep > f.Alpha*1.0000001 {
			t.Errorf("sqrt-line-of-stars(%d): sweep α=%v, want <= analytic %v", side, sweep, f.Alpha)
		}
	}
}

func TestSweepOnRandomRegularIsConstantish(t *testing.T) {
	// Random regular graphs are expanders w.h.p.; the sweep upper bound
	// should not collapse to o(1) values.
	f := gen.RandomRegular(200, 6, 7)
	sweep, _ := SweepUpperBound(f.Graph)
	if sweep < 0.05 {
		t.Fatalf("random-regular sweep α=%v suspiciously small for an expander", sweep)
	}
}

func TestVerifyRejectsBadSets(t *testing.T) {
	g := gen.Cycle(8).Graph
	if Verify(g, nil, 0.5) {
		t.Fatal("Verify accepted empty set")
	}
	if Verify(g, []int{0, 1, 2, 3, 4}, 0.5) {
		t.Fatal("Verify accepted oversized set")
	}
	if Verify(g, []int{0, 0}, 0.5) {
		t.Fatal("Verify accepted duplicate nodes")
	}
	if Verify(g, []int{99}, 0.5) {
		t.Fatal("Verify accepted out-of-range node")
	}
	if Verify(g, []int{0, 1}, 0.123) {
		t.Fatal("Verify accepted wrong claimed value")
	}
}

func TestAlphaAlwaysAtMostOne(t *testing.T) {
	// The paper notes α <= 1 always (taking |S| = n/2 gives |∂S| <= |S|).
	rng := xrand.New(99)
	for trial := 0; trial < 30; trial++ {
		g := randomConnected(rng, 8+trial%6, 0.4)
		alpha, _ := Exact(g)
		if alpha > 1 {
			t.Fatalf("exact α=%v > 1 on %v", alpha, g)
		}
		if math.IsInf(alpha, 0) || math.IsNaN(alpha) {
			t.Fatalf("exact α=%v invalid", alpha)
		}
	}
}

// randomConnected samples G(n, p) until connected.
func randomConnected(rng *xrand.RNG, n int, p float64) *graph.Graph {
	for {
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		if g.Connected() {
			return g
		}
	}
}

func BenchmarkExact16(b *testing.B) {
	g := gen.RingOfCliques(4, 4).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(g)
	}
}

func BenchmarkSweep10000(b *testing.B) {
	g := gen.RingOfCliques(100, 100).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SweepUpperBound(g)
	}
}

func TestExactCompleteBipartite(t *testing.T) {
	cases := [][2]int{{2, 3}, {3, 3}, {3, 5}, {4, 6}, {2, 8}}
	for _, c := range cases {
		f := gen.CompleteBipartite(c[0], c[1])
		alpha, _ := Exact(f.Graph)
		if alpha != f.Alpha {
			t.Errorf("K_{%d,%d}: exact α=%v, analytic %v", c[0], c[1], alpha, f.Alpha)
		}
	}
}

func TestExactPetersen(t *testing.T) {
	f := gen.Petersen()
	alpha, _ := Exact(f.Graph)
	if alpha != f.Alpha {
		t.Errorf("petersen: exact α=%v, family %v", alpha, f.Alpha)
	}
}

func TestExactWheel(t *testing.T) {
	for _, n := range []int{4, 5, 6, 9, 12} {
		f := gen.Wheel(n)
		alpha, _ := Exact(f.Graph)
		if alpha != f.Alpha {
			t.Errorf("wheel(%d): exact α=%v, analytic %v", n, alpha, f.Alpha)
		}
	}
}

func TestExactCirculant(t *testing.T) {
	f := gen.Circulant(12, []int{1, 3})
	alpha, _ := Exact(f.Graph)
	if alpha != f.Alpha {
		t.Errorf("circulant: exact α=%v, family %v", alpha, f.Alpha)
	}
}
