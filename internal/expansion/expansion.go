// Package expansion computes the vertex expansion α of a graph, the central
// connectivity parameter in all of the paper's time bounds (Section II):
//
//	α = min over non-empty S ⊂ V, |S| ≤ n/2 of α(S) = |∂S| / |S|.
//
// Computing α exactly is NP-hard in general, so the package offers three
// honest tiers:
//
//   - Exact: exhaustive subset enumeration with bitset boundaries, feasible
//     to n ≤ MaxExactN. Used in tests to validate the analytic α formulas
//     attached to generated families.
//   - SweepUpperBound: the minimum α(S) over BFS-prefix and degree-order
//     sweep cuts from several sources. Always an upper bound on α (it
//     inspects a subfamily of cuts), cheap enough for any n.
//   - AlphaOf: α(S) for one explicit cut (re-exported from internal/graph).
//
// Experiments use graph families whose α is known analytically; this package
// exists to certify those formulas and to sanity-check arbitrary inputs.
package expansion

import (
	"math"
	"math/bits"
	"sort"

	"mobiletel/internal/graph"
)

// MaxExactN is the largest graph the exact enumerator accepts. 2^22 subsets
// with O(n/64) bitset work each stays under a second.
const MaxExactN = 22

// Exact returns the exact vertex expansion of g and one minimizing set.
// It panics if g has more than MaxExactN nodes or fewer than 2 nodes.
//
// Subsets are enumerated in Gray-code order, so consecutive sets differ by
// exactly one node and the boundary is maintained incrementally: cov[v]
// counts v's neighbors inside S, and |∂S| = |{v ∉ S : cov[v] > 0}|. Each
// step costs O(deg(u)) for the flipped node u instead of rebuilding the
// boundary bitset from all of S — the same minimum over the same subsets,
// found in a different visiting order (ties may pick a different minSet).
func Exact(g *graph.Graph) (alpha float64, minSet []int) {
	n := g.N()
	if n < 2 {
		panic("expansion: Exact needs n >= 2")
	}
	if n > MaxExactN {
		panic("expansion: graph too large for exact enumeration")
	}

	half := n / 2
	best := math.Inf(1)
	var bestMask, cur uint32
	cov := make([]int32, n) // cov[v] = |N(v) ∩ S|
	inS := make([]bool, n)
	size, boundary := 0, 0

	total := uint32(1) << uint(n)
	for i := uint32(1); i < total; i++ {
		// Gray code: step i flips bit TrailingZeros32(i) of the current set.
		u := bits.TrailingZeros32(i)
		if !inS[u] {
			if cov[u] > 0 {
				boundary-- // u was on the boundary; it joins S
			}
			inS[u] = true
			cur |= 1 << uint(u)
			size++
			for _, v := range g.Neighbors(u) {
				cov[v]++
				if cov[v] == 1 && !inS[v] {
					boundary++
				}
			}
		} else {
			inS[u] = false
			cur &^= 1 << uint(u)
			size--
			for _, v := range g.Neighbors(u) {
				cov[v]--
				if cov[v] == 0 && !inS[v] {
					boundary--
				}
			}
			if cov[u] > 0 {
				boundary++ // u rejoins the boundary
			}
		}
		if size >= 1 && size <= half {
			if a := float64(boundary) / float64(size); a < best {
				best = a
				bestMask = cur
			}
		}
	}
	for u := 0; u < n; u++ {
		if bestMask&(1<<uint(u)) != 0 {
			minSet = append(minSet, u)
		}
	}
	return best, minSet
}

// SweepUpperBound returns an upper bound on α obtained from sweep cuts:
// for each of a handful of BFS roots, it evaluates every BFS-prefix set of
// size ≤ n/2, plus a lowest-degree-first ordering. The returned set attains
// the bound.
func SweepUpperBound(g *graph.Graph) (alpha float64, minSet []int) {
	n := g.N()
	if n < 2 {
		panic("expansion: SweepUpperBound needs n >= 2")
	}
	best := math.Inf(1)
	var bestSet []int

	try := func(order []int) {
		a, prefix := bestPrefixCut(g, order)
		if a < best {
			best = a
			bestSet = prefix
		}
	}

	// BFS sweeps from a few spread-out roots, in both plain sorted-neighbor
	// order and degree-ascending neighbor order. The latter peels low-degree
	// fringes (e.g. star leaves) before advancing to the next hub, which is
	// what finds the optimal cut on families like the line of stars.
	roots := []int{0, n / 2, n - 1}
	seen := map[int]bool{}
	for _, r := range roots {
		if seen[r] {
			continue
		}
		seen[r] = true
		try(g.BFSOrder(r))
		try(bfsOrderByDegree(g, r))
		try(greedyMinDeltaOrder(g, r))
	}

	// Degree-ascending sweep (peels low-degree fringes first).
	byDeg := make([]int, n)
	for i := range byDeg {
		byDeg[i] = i
	}
	sort.Slice(byDeg, func(i, j int) bool {
		if d1, d2 := g.Degree(byDeg[i]), g.Degree(byDeg[j]); d1 != d2 {
			return d1 < d2
		}
		return byDeg[i] < byDeg[j]
	})
	try(byDeg)

	return best, bestSet
}

// greedyMinDeltaOrder grows S from src by repeatedly adding the candidate
// node that minimizes the immediate change to |∂S|. Candidates include nodes
// adjacent to ∂S (not only to S), which allows the order to pre-place
// disconnected chunks whose boundary is already paid for — the structure of
// the optimal cut in families like the line of stars, where the leaves of
// the next star join S before their center does.
//
// A node's delta is non-increasing as S grows, so a lazy min-heap with
// recomputation on pop selects a (near-)minimal candidate each step.
func greedyMinDeltaOrder(g *graph.Graph, src int) []int {
	n := g.N()
	inS := make([]bool, n)
	inBd := make([]bool, n)
	pushed := make([]bool, n)

	delta := func(v int) int {
		d := 0
		if inBd[v] {
			d = -1
		}
		for _, u := range g.Neighbors(v) {
			if !inS[u] && !inBd[u] {
				d++
			}
		}
		return d
	}

	h := &deltaHeap{}
	push := func(v int) {
		if !pushed[v] && !inS[v] {
			pushed[v] = true
			h.push(deltaItem{delta(v), v})
		}
	}

	order := make([]int, 0, n/2+1)
	addToS := func(v int) {
		inS[v] = true
		inBd[v] = false
		order = append(order, v)
		for _, u := range g.Neighbors(v) {
			if !inS[u] && !inBd[u] {
				inBd[u] = true
				// u entered the boundary: u and u's neighbors become
				// candidates (or get cheaper).
				pushed[u] = false
				push(int(u))
				for _, w := range g.Neighbors(int(u)) {
					if !inS[w] {
						pushed[w] = false
						push(int(w))
					}
				}
			}
		}
	}

	addToS(src)
	limit := n/2 + 1
	for len(order) < limit && h.len() > 0 {
		item := h.pop()
		v := item.node
		if inS[v] {
			continue
		}
		// Deltas only decrease; recompute and re-queue if stale-high.
		if d := delta(v); d > item.delta {
			panic("expansion: delta increased") // invariant violation
		} else if h.len() > 0 && d > h.peek().delta {
			h.push(deltaItem{d, v})
			continue
		}
		pushed[v] = false
		addToS(v)
	}
	return order
}

// deltaItem and deltaHeap implement a small binary min-heap keyed by delta.
type deltaItem struct {
	delta int
	node  int
}

type deltaHeap struct{ items []deltaItem }

func (h *deltaHeap) len() int        { return len(h.items) }
func (h *deltaHeap) peek() deltaItem { return h.items[0] }
func (h *deltaHeap) push(x deltaItem) {
	h.items = append(h.items, x)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].delta <= h.items[i].delta {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *deltaHeap) pop() deltaItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.items[l].delta < h.items[smallest].delta {
			smallest = l
		}
		if r < len(h.items) && h.items[r].delta < h.items[smallest].delta {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// bfsOrderByDegree is a BFS from src that enqueues each node's neighbors in
// ascending degree order, so pendant/leaf structure is absorbed into S
// before the frontier advances to the next hub.
func bfsOrderByDegree(g *graph.Graph, src int) []int {
	n := g.N()
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := []int{src}
	visited[src] = true
	scratch := make([]int, 0, g.MaxDegree())
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		scratch = scratch[:0]
		for _, v := range g.Neighbors(u) {
			if !visited[v] {
				visited[v] = true
				scratch = append(scratch, int(v))
			}
		}
		sort.Slice(scratch, func(i, j int) bool {
			if d1, d2 := g.Degree(scratch[i]), g.Degree(scratch[j]); d1 != d2 {
				return d1 < d2
			}
			return scratch[i] < scratch[j]
		})
		queue = append(queue, scratch...)
	}
	return order
}

// bestPrefixCut evaluates α(S) for every prefix S of order with |S| ≤ n/2
// and returns the best value and a copy of the winning prefix.
func bestPrefixCut(g *graph.Graph, order []int) (float64, []int) {
	n := g.N()
	half := n / 2
	inSet := make([]bool, n)
	// boundaryCount tracks |∂S| incrementally: degreeInto[v] counts edges
	// from v into S for v ∉ S.
	degreeInto := make([]int, n)
	boundary := 0
	best := math.Inf(1)
	bestLen := 0
	for i, u := range order {
		if i >= half {
			break
		}
		// u joins S. If u was on the boundary, it leaves it.
		if degreeInto[u] > 0 {
			boundary--
		}
		inSet[u] = true
		for _, v := range g.Neighbors(u) {
			if !inSet[v] {
				if degreeInto[v] == 0 {
					boundary++
				}
				degreeInto[v]++
			}
		}
		a := float64(boundary) / float64(i+1)
		if a < best {
			best = a
			bestLen = i + 1
		}
	}
	prefix := make([]int, bestLen)
	copy(prefix, order[:bestLen])
	return best, prefix
}

// Verify recomputes α(S) for the given set from first principles and reports
// whether it equals claimed (to within floating-point equality). It is used
// by tests to confirm minimizing sets returned by Exact/SweepUpperBound.
func Verify(g *graph.Graph, set []int, claimed float64) bool {
	if len(set) == 0 || len(set) > g.N()/2 {
		return false
	}
	inSet := make([]bool, g.N())
	for _, u := range set {
		if u < 0 || u >= g.N() || inSet[u] {
			return false
		}
		inSet[u] = true
	}
	return g.AlphaOf(inSet) == claimed
}
