// Package xrand provides deterministic, splittable pseudo-random number
// streams for the mobile telephone model simulator.
//
// The simulator needs randomness with the same independence structure the
// paper's analysis assumes: every node makes "local independent coin flips"
// in every round, independent across nodes and across rounds. To get that —
// and to make parallel execution bit-identical to sequential execution — each
// (node, round) pair owns its own stream, derived by mixing a global seed
// with the node index and round number through SplitMix64. No stream ever
// observes another stream's consumption order.
//
// The generator behind each stream is xoshiro256**, seeded from SplitMix64
// output as its authors recommend.
package xrand

import "math/bits"

// SplitMix64 advances the SplitMix64 state and returns the next output.
// It is used both as a seeding mixer and as a cheap standalone generator.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix3 hashes three 64-bit values into one, suitable for deriving a stream
// seed from (seed, node, round).
func Mix3(a, b, c uint64) uint64 {
	s := a
	_ = SplitMix64(&s)
	s ^= b * 0x9e3779b97f4a7c15
	_ = SplitMix64(&s)
	s ^= c * 0xc2b2ae3d27d4eb4f
	return SplitMix64(&s)
}

// RNG is a xoshiro256** generator. The zero value is invalid; construct with
// New or Derive.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given 64-bit seed via SplitMix64.
func New(seed uint64) *RNG {
	var r RNG
	r.Seed(seed)
	return &r
}

// Derive returns a generator for the stream identified by (seed, a, b) —
// typically (globalSeed, nodeIndex, round). Streams with distinct (a, b) are
// statistically independent.
func Derive(seed, a, b uint64) *RNG {
	return New(Mix3(seed, a, b))
}

// Seed resets the generator state from a 64-bit seed.
func (r *RNG) Seed(seed uint64) {
	s := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&s)
	}
	// xoshiro256** requires a nonzero state; SplitMix64 of any seed yields
	// all-zero output with probability ~2^-256, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Reseed re-derives the state in place for the stream (seed, a, b), avoiding
// an allocation when a generator is reused across rounds.
func (r *RNG) Reseed(seed, a, b uint64) {
	r.Seed(Mix3(seed, a, b))
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// FillUint64s fills dst with the next len(dst) outputs of the stream —
// exactly the values len(dst) successive Uint64 calls would return, so
// batch and per-call consumption are interchangeable draw for draw. The
// generator state stays in locals across the whole batch, which is the
// point: one stream consumed in a tight loop (UID generation, bulk test
// workloads) runs at memory speed instead of paying a state load/store per
// draw. Never allocates.
func (r *RNG) FillUint64s(dst []uint64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range dst {
		dst[i] = bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// FillCoins fills dst with fair coin flips, one per element. Each coin
// consumes one full Uint64 draw and keeps Bool's low-bit convention, so a
// batch is bit-identical to len(dst) successive Bool calls on the same
// stream. Never allocates.
func (r *RNG) FillCoins(dst []bool) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range dst {
		dst[i] = (bits.RotateLeft64(s1*5, 7)*9)&1 == 1
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded sampling.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Lemire's method: multiply-shift with rejection to remove bias.
	x := r.Uint64()
	hi, lo := bits.Mul64(x, n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniformly random permutation of [0, n) as a fresh slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a uniformly random permutation of [0, len(p)). It
// draws exactly the random values Perm(len(p)) would, so the two are
// interchangeable per stream — PermInto just reuses the caller's slice,
// for hot paths that generate a permutation every round.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p, i.e. the number of failures before the first success.
// It panics if p <= 0 or p > 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric with p outside (0, 1]")
	}
	if p == 1 {
		return 0
	}
	count := 0
	for r.Float64() >= p {
		count++
		if count > 1<<30 {
			panic("xrand: Geometric did not terminate")
		}
	}
	return count
}
