package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for SplitMix64 with initial state 0 are well known:
	// the first three outputs of the sequence.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("same-seed generators diverged at step %d: %#x vs %#x", i, x, y)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d identical outputs of 64", same)
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	// Streams derived from distinct (node, round) pairs must differ even when
	// the global seed is identical.
	seen := make(map[uint64]bool)
	for node := uint64(0); node < 32; node++ {
		for round := uint64(0); round < 32; round++ {
			v := Derive(7, node, round).Uint64()
			if seen[v] {
				t.Fatalf("stream collision for node=%d round=%d", node, round)
			}
			seen[v] = true
		}
	}
}

func TestReseedMatchesDerive(t *testing.T) {
	r := New(0)
	for i := uint64(0); i < 20; i++ {
		r.Reseed(99, i, 2*i+1)
		fresh := Derive(99, i, 2*i+1)
		for j := 0; j < 10; j++ {
			if a, b := r.Uint64(), fresh.Uint64(); a != b {
				t.Fatalf("Reseed stream diverged from Derive at i=%d j=%d", i, j)
			}
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared check over 10 buckets; the statistic should be far below
	// the df=9 99.9% critical value (27.88) for a healthy generator.
	r := New(12345)
	const buckets, samples = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("chi-squared statistic %.2f too large; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const samples = 100000
	for i := 0; i < samples; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / samples; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestBoolFairness(t *testing.T) {
	r := New(4)
	heads := 0
	const samples = 100000
	for i := 0; i < samples; i++ {
		if r.Bool() {
			heads++
		}
	}
	if frac := float64(heads) / samples; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bool fraction %.4f too far from 0.5", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// The first element of Perm(4) should be uniform over {0,1,2,3}.
	counts := make([]int, 4)
	r := New(777)
	const samples = 40000
	for i := 0; i < samples; i++ {
		counts[r.Perm(4)[0]]++
	}
	for v, c := range counts {
		frac := float64(c) / samples
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("Perm(4)[0]=%d frequency %.4f too far from 0.25", v, frac)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(55)
	const p, samples = 0.25, 50000
	sum := 0
	for i := 0; i < samples; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / samples
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%.2f) mean %.3f, want ~%.3f", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	if got := New(1).Geometric(1); got != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", got)
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestShuffleAllElementsRetained(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestMix3Distinct(t *testing.T) {
	if Mix3(1, 2, 3) == Mix3(1, 3, 2) {
		t.Fatal("Mix3 is symmetric in its arguments; streams would collide")
	}
	if Mix3(0, 0, 0) == Mix3(0, 0, 1) {
		t.Fatal("Mix3 ignores its third argument")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func BenchmarkDerive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Derive(1, uint64(i), 7)
	}
}

func BenchmarkReseed(b *testing.B) {
	r := New(0)
	for i := 0; i < b.N; i++ {
		r.Reseed(1, uint64(i), 7)
	}
}

// TestFillUint64sMatchesPerCallDraws pins the batch API's contract: a fill
// of any size — including fills split at arbitrary boundaries — produces
// exactly the values the same number of Uint64 calls would, and leaves the
// stream in the same state (draws after the batch still agree).
func TestFillUint64sMatchesPerCallDraws(t *testing.T) {
	for _, sizes := range [][]int{{0}, {1}, {257}, {3, 0, 64, 1, 9}} {
		batch, scalar := New(99), New(99)
		for _, n := range sizes {
			dst := make([]uint64, n)
			batch.FillUint64s(dst)
			for i, got := range dst {
				if want := scalar.Uint64(); got != want {
					t.Fatalf("fill sizes %v: value %d = %#x, want per-call %#x", sizes, i, got, want)
				}
			}
		}
		for i := 0; i < 16; i++ {
			if got, want := batch.Uint64(), scalar.Uint64(); got != want {
				t.Fatalf("fill sizes %v: stream diverged %d draws after the batch: %#x vs %#x", sizes, i, got, want)
			}
		}
	}
}

// TestFillCoinsMatchesPerCallDraws pins the coin batch to Bool: one full
// draw per coin, low-bit convention, identical continuation state.
func TestFillCoinsMatchesPerCallDraws(t *testing.T) {
	batch, scalar := New(1234), New(1234)
	dst := make([]bool, 513)
	batch.FillCoins(dst)
	for i, got := range dst {
		if want := scalar.Bool(); got != want {
			t.Fatalf("coin %d = %v, want per-call %v", i, got, want)
		}
	}
	if got, want := batch.Uint64(), scalar.Uint64(); got != want {
		t.Fatalf("stream diverged after the coin batch: %#x vs %#x", got, want)
	}
}

// TestFillZeroAlloc pins both batch fills allocation-free: they exist for
// tight loops that must not touch the heap.
func TestFillZeroAlloc(t *testing.T) {
	r := New(5)
	words := make([]uint64, 256)
	coins := make([]bool, 256)
	if n := testing.AllocsPerRun(100, func() {
		r.FillUint64s(words)
		r.FillCoins(coins)
	}); n != 0 {
		t.Fatalf("batch fills allocated %v times per run", n)
	}
}

func BenchmarkFillUint64s(b *testing.B) {
	r := New(1)
	dst := make([]uint64, 1024)
	b.SetBytes(int64(len(dst) * 8))
	for i := 0; i < b.N; i++ {
		r.FillUint64s(dst)
	}
}
