// Package graph implements the static network-topology substrate of the
// mobile telephone model: simple, undirected graphs in a compact
// compressed-sparse-row (CSR) representation, together with the structural
// quantities the paper's analysis is written in terms of — neighborhoods
// N(u), degrees d(u), maximum degree Δ, boundaries ∂S, and per-set expansion
// α(S).
//
// Graphs are immutable once built; use Builder to assemble edge sets and
// Build to freeze them. Nodes are dense indices 0..n-1 (UIDs live a layer
// above, in the simulator).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form.
type Graph struct {
	offsets []int32 // len n+1; neighbors of u are adj[offsets[u]:offsets[u+1]]
	adj     []int32 // concatenated sorted adjacency lists
	n       int
	m       int // number of undirected edges
	maxDeg  int
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// MaxDegree returns Δ, the maximum degree over all nodes.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Degree returns d(u) = |N(u)|.
func (g *Graph) Degree(u int) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns N(u) as a sorted slice. The slice aliases the graph's
// internal storage and must not be modified.
func (g *Graph) Neighbors(u int) []int32 {
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// HasEdge reports whether {u, v} is an edge. It runs in O(log d(u)).
func (g *Graph) HasEdge(u, v int) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	return i < len(nbrs) && nbrs[i] == int32(v)
}

// Edges calls fn for every undirected edge {u, v} with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				fn(u, int(v))
			}
		}
	}
}

// EdgeList returns all undirected edges as [2]int pairs with u < v.
func (g *Graph) EdgeList() [][2]int {
	edges := make([][2]int, 0, g.m)
	g.Edges(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	return edges
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return g.bfsCount(0) == g.n
}

// bfsCount returns the number of nodes reachable from src.
func (g *Graph) bfsCount(src int) int {
	visited := make([]bool, g.n)
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	visited[src] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if !visited[v] {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count
}

// BFSOrder returns the nodes in breadth-first order from src, visiting
// neighbors in sorted order. Unreachable nodes are omitted.
func (g *Graph) BFSOrder(src int) []int {
	visited := make([]bool, g.n)
	order := make([]int, 0, g.n)
	queue := []int32{int32(src)}
	visited[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, int(u))
		for _, v := range g.Neighbors(int(u)) {
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return order
}

// Boundary returns ∂S: the set of nodes outside S adjacent to at least one
// node of S. The inSet slice must have length n; the result is sorted.
func (g *Graph) Boundary(inSet []bool) []int {
	if len(inSet) != g.n {
		panic(fmt.Sprintf("graph: Boundary set length %d != n %d", len(inSet), g.n))
	}
	onBoundary := make([]bool, g.n)
	for u := 0; u < g.n; u++ {
		if !inSet[u] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if !inSet[v] {
				onBoundary[v] = true
			}
		}
	}
	out := make([]int, 0)
	for v, b := range onBoundary {
		if b {
			out = append(out, v)
		}
	}
	return out
}

// AlphaOf returns α(S) = |∂S| / |S| for a non-empty S given as a membership
// slice of length n. It panics if S is empty.
func (g *Graph) AlphaOf(inSet []bool) float64 {
	size := 0
	for _, b := range inSet {
		if b {
			size++
		}
	}
	if size == 0 {
		panic("graph: AlphaOf on empty set")
	}
	return float64(len(g.Boundary(inSet))) / float64(size)
}

// Relabel returns the graph obtained by renaming node u to perm[u], where
// perm must be a permutation of 0..n-1. The result shares no storage with g
// and is built in O(n+m) with no sorting: new labels are visited in ascending
// order and appended to their neighbors' lists, so every adjacency list is
// emitted already sorted. The output is identical (Equal) to rebuilding the
// relabeled edge set through a Builder, at a fraction of the cost — this is
// what lets τ=1 schedules serve a fresh topology every round cheaply.
func (g *Graph) Relabel(perm []int) *Graph {
	return g.RelabelInto(perm, &RelabelScratch{})
}

// RelabelScratch holds the reusable working storage of RelabelInto — the
// inverse permutation and the per-node emission cursors. The zero value is
// ready to use; it grows to the largest n seen and is reused afterwards.
type RelabelScratch struct {
	inv    []int32
	cursor []int32
}

// grow sizes the scratch for an n-node relabel without allocating when a
// previous call already reached this size.
func (s *RelabelScratch) grow(n int) {
	if cap(s.inv) < n {
		s.inv = make([]int32, n)
		s.cursor = make([]int32, n)
	}
	s.inv = s.inv[:n]
	s.cursor = s.cursor[:n]
}

// RelabelInto is Relabel with caller-owned scratch: only the result graph's
// own storage (offsets, adj) is freshly allocated, so epoch-driven callers
// (dyngraph.Permuted at τ=1 rebuilds every round) run in O(n+m) with O(1)
// transient garbage. The result is still independent of g and of s — the
// scratch may be reused immediately for the next relabel while earlier
// results stay live.
func (g *Graph) RelabelInto(perm []int, s *RelabelScratch) *Graph {
	if len(perm) != g.n {
		panic(fmt.Sprintf("graph: Relabel permutation length %d != n %d", len(perm), g.n))
	}
	s.grow(g.n)
	inv := s.inv
	for i := range inv {
		inv[i] = -1
	}
	for u, p := range perm {
		if p < 0 || p >= g.n || inv[p] != -1 {
			panic(fmt.Sprintf("graph: Relabel argument is not a permutation (perm[%d] = %d)", u, p))
		}
		inv[p] = int32(u)
	}
	offsets := make([]int32, g.n+1)
	for a := 0; a < g.n; a++ {
		offsets[a+1] = offsets[a] + int32(g.Degree(int(inv[a])))
	}
	adj := make([]int32, len(g.adj))
	cursor := s.cursor
	copy(cursor, offsets[:g.n])
	for a := 0; a < g.n; a++ {
		for _, v := range g.Neighbors(int(inv[a])) {
			b := perm[v]
			adj[cursor[b]] = int32(a)
			cursor[b]++
		}
	}
	return &Graph{offsets: offsets, adj: adj, n: g.n, m: g.m, maxDeg: g.maxDeg}
}

// BalancedChunks partitions the node range [0, n) into workers contiguous
// chunks of approximately equal round work, writing the boundaries into
// chunks (which must have length workers+1): chunk k is
// [chunks[k], chunks[k+1]). Node u is weighted deg(u)+1 — one unit for the
// per-node phase work plus one per incident edge for the scan — so the
// cumulative weight of nodes before u is exactly offsets[u]+u, and each
// boundary is one O(log n) search. Hub-skewed topologies (a line-of-stars
// center with degree n−1) thus cost their worker only their fair share of
// edges, where equal index ranges would serialize the whole round behind
// the hub's chunk.
//
// Boundaries are a deterministic function of (g, workers) alone; they
// affect only which worker executes a node, never the result, because
// per-node RNG streams are independent of the executing worker.
//
//mtmlint:hotpath
func (g *Graph) BalancedChunks(workers int, chunks []int) {
	if workers < 1 || len(chunks) != workers+1 {
		panic(fmt.Sprintf("graph: BalancedChunks needs workers >= 1 and len(chunks) == workers+1, got %d and %d", workers, len(chunks)))
	}
	total := int64(2*g.m + g.n)
	chunks[0] = 0
	for k := 1; k < workers; k++ {
		target := total * int64(k) / int64(workers)
		chunks[k] = sort.Search(g.n, func(u int) bool {
			return int64(g.offsets[u])+int64(u) >= target
		})
	}
	chunks[workers] = g.n
}

// Equal reports whether two graphs have identical node and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for i := range g.offsets {
		if g.offsets[i] != h.offsets[i] {
			return false
		}
	}
	for i := range g.adj {
		if g.adj[i] != h.adj[i] {
			return false
		}
	}
	return true
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.n, g.m, g.maxDeg)
}

// Builder assembles an undirected simple graph incrementally. Duplicate edge
// insertions and self-loops are rejected at Build time.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n nodes, 0..n-1.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}.
func (b *Builder) AddEdge(u, v int) *Builder {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
	return b
}

// N returns the number of nodes the builder was created with.
func (b *Builder) N() int { return b.n }

// Build freezes the accumulated edges into an immutable Graph.
// It returns an error if any edge was inserted twice.
func (b *Builder) Build() (*Graph, error) {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	for i := 1; i < len(b.edges); i++ {
		if b.edges[i] == b.edges[i-1] {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", b.edges[i][0], b.edges[i][1])
		}
	}

	deg := make([]int32, b.n)
	for _, e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, b.n+1)
	maxDeg := 0
	for u, d := range deg {
		offsets[u+1] = offsets[u] + d
		if int(d) > maxDeg {
			maxDeg = int(d)
		}
	}
	adj := make([]int32, 2*len(b.edges))
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		adj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	g := &Graph{offsets: offsets, adj: adj, n: b.n, m: len(b.edges), maxDeg: maxDeg}
	// Adjacency lists are sorted because edges were sorted by (min, max) and
	// appended in order for the first endpoint — but not for the second.
	// Sort each list to restore the invariant.
	for u := 0; u < g.n; u++ {
		nbrs := adj[offsets[u]:offsets[u+1]]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
	return g, nil
}

// MustBuild is Build but panics on error; intended for tests and generators
// whose edge sets are duplicate-free by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph on n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// FromCSR adopts ready-made CSR arrays as a graph, skipping the Builder's
// O(m log m) edge sort — the scale path for generators that can emit each
// adjacency list already sorted (a 1M-node torus or circulant materializes
// in O(n+m)). The graph takes ownership of both slices; the caller must not
// modify them afterwards.
//
// The arrays are fully validated in O(n + m log Δ): offsets must start at 0,
// be non-decreasing, and end at len(adj); every adjacency list must be
// strictly increasing (sorted, duplicate-free), in range, and self-loop
// free; and the adjacency relation must be symmetric. Validation is linear
// in the input, so adopting is still asymptotically free compared to
// building.
func FromCSR(offsets, adj []int32) (*Graph, error) {
	if len(offsets) == 0 || offsets[0] != 0 {
		return nil, fmt.Errorf("graph: FromCSR offsets must start with 0 (len %d)", len(offsets))
	}
	n := len(offsets) - 1
	if int(offsets[n]) != len(adj) {
		return nil, fmt.Errorf("graph: FromCSR offsets end at %d, adj has %d entries", offsets[n], len(adj))
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: FromCSR adjacency length %d is odd; an undirected graph stores each edge twice", len(adj))
	}
	maxDeg := 0
	for u := 0; u < n; u++ {
		if offsets[u+1] < offsets[u] {
			return nil, fmt.Errorf("graph: FromCSR offsets decrease at node %d", u)
		}
		if d := int(offsets[u+1] - offsets[u]); d > maxDeg {
			maxDeg = d
		}
		prev := int32(-1)
		for _, v := range adj[offsets[u]:offsets[u+1]] {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: FromCSR neighbor %d of node %d out of range [0,%d)", v, u, n)
			}
			if int(v) == u {
				return nil, fmt.Errorf("graph: FromCSR self-loop at node %d", u)
			}
			if v <= prev {
				return nil, fmt.Errorf("graph: FromCSR adjacency of node %d not strictly increasing at neighbor %d", u, v)
			}
			prev = v
		}
	}
	g := &Graph{offsets: offsets, adj: adj, n: n, m: len(adj) / 2, maxDeg: maxDeg}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if !g.HasEdge(int(v), u) {
				return nil, fmt.Errorf("graph: FromCSR edge (%d,%d) has no reverse entry", u, v)
			}
		}
	}
	return g, nil
}

// MustFromCSR is FromCSR but panics on error; intended for generators whose
// CSR output is well-formed by construction.
func MustFromCSR(offsets, adj []int32) *Graph {
	g, err := FromCSR(offsets, adj)
	if err != nil {
		panic(err)
	}
	return g
}
