package graph

import (
	"testing"
	"testing/quick"

	"mobiletel/internal/xrand"
)

func mustPath(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Fatalf("empty graph wrong: %v", g)
	}
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestSingleNode(t *testing.T) {
	g := NewBuilder(1).MustBuild()
	if !g.Connected() || g.Degree(0) != 0 {
		t.Fatalf("single-node graph wrong: %v", g)
	}
}

func TestPathBasics(t *testing.T) {
	g := mustPath(t, 5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("path(5): n=%d m=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("path(5): Δ=%d, want 2", g.MaxDegree())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 || g.Degree(4) != 1 {
		t.Fatal("path(5): wrong degrees")
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("path(5): missing edge 1-2")
	}
	if g.HasEdge(0, 4) {
		t.Fatal("path(5): phantom edge 0-4")
	}
	if !g.Connected() {
		t.Fatal("path(5): should be connected")
	}
}

func TestDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if g.Connected() {
		t.Fatal("two components reported connected")
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // same undirected edge
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate edge not rejected")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	NewBuilder(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(3, 5)
	b.AddEdge(3, 0)
	b.AddEdge(3, 4)
	b.AddEdge(3, 1)
	g := b.MustBuild()
	nbrs := g.Neighbors(3)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("neighbors of 3 not sorted: %v", nbrs)
		}
	}
}

func TestHandshakeLemmaProperty(t *testing.T) {
	// Sum of degrees equals 2m, on random graphs.
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 30, 0.2)
		sum := 0
		for u := 0; u < g.N(); u++ {
			sum += g.Degree(u)
		}
		return sum == 2*g.M()
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencySymmetryProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 25, 0.3)
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(int(v), u) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEdgesEnumeratesEachOnce(t *testing.T) {
	g := randomGraph(11, 40, 0.15)
	seen := make(map[[2]int]bool)
	g.Edges(func(u, v int) {
		if u >= v {
			t.Fatalf("Edges yielded non-canonical pair (%d,%d)", u, v)
		}
		key := [2]int{u, v}
		if seen[key] {
			t.Fatalf("Edges yielded (%d,%d) twice", u, v)
		}
		seen[key] = true
	})
	if len(seen) != g.M() {
		t.Fatalf("Edges yielded %d edges, want %d", len(seen), g.M())
	}
}

func TestEdgeListMatchesHasEdge(t *testing.T) {
	g := randomGraph(5, 20, 0.25)
	for _, e := range g.EdgeList() {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("EdgeList contains non-edge %v", e)
		}
	}
}

func TestBoundaryPath(t *testing.T) {
	g := mustPath(t, 6)
	inSet := make([]bool, 6)
	inSet[0], inSet[1] = true, true
	b := g.Boundary(inSet)
	if len(b) != 1 || b[0] != 2 {
		t.Fatalf("boundary of {0,1} on path(6) = %v, want [2]", b)
	}
}

func TestBoundaryWholeGraphEmpty(t *testing.T) {
	g := mustPath(t, 4)
	inSet := []bool{true, true, true, true}
	if b := g.Boundary(inSet); len(b) != 0 {
		t.Fatalf("boundary of V = %v, want empty", b)
	}
}

func TestBoundaryLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Boundary with wrong-length set did not panic")
		}
	}()
	mustPath(t, 4).Boundary([]bool{true})
}

func TestAlphaOfMiddleOfPath(t *testing.T) {
	g := mustPath(t, 5)
	inSet := make([]bool, 5)
	inSet[2] = true
	if a := g.AlphaOf(inSet); a != 2.0 {
		t.Fatalf("α({middle}) = %v, want 2", a)
	}
}

func TestAlphaOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AlphaOf(empty) did not panic")
		}
	}()
	mustPath(t, 3).AlphaOf(make([]bool, 3))
}

func TestBFSOrderCoversComponent(t *testing.T) {
	g := mustPath(t, 7)
	order := g.BFSOrder(3)
	if len(order) != 7 {
		t.Fatalf("BFS from 3 visited %d nodes, want 7", len(order))
	}
	if order[0] != 3 {
		t.Fatalf("BFS order starts at %d, want 3", order[0])
	}
}

func TestEqual(t *testing.T) {
	a := mustPath(t, 4)
	b := mustPath(t, 4)
	if !a.Equal(b) {
		t.Fatal("identical paths not Equal")
	}
	c := NewBuilder(4).AddEdge(0, 1).AddEdge(1, 2).AddEdge(0, 3).MustBuild()
	if a.Equal(c) {
		t.Fatal("different graphs reported Equal")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || !g.Connected() {
		t.Fatalf("FromEdges produced %v", g)
	}
	if _, err := FromEdges(3, [][2]int{{0, 1}, {0, 1}}); err == nil {
		t.Fatal("FromEdges accepted duplicate edge")
	}
}

// randomGraph builds a connected-ish Erdős–Rényi graph for property tests
// (connectivity is not required by the properties above).
func randomGraph(seed uint64, n int, p float64) *Graph {
	rng := xrand.New(seed)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func BenchmarkBuild1000(b *testing.B) {
	edges := make([][2]int, 0, 5000)
	rng := xrand.New(1)
	for len(edges) < 5000 {
		u, v := rng.Intn(1000), rng.Intn(1000)
		if u != v {
			edges = append(edges, [2]int{min(u, v), max(u, v)})
		}
	}
	// Deduplicate to keep Build happy.
	seen := map[[2]int]bool{}
	uniq := edges[:0]
	for _, e := range edges {
		if !seen[e] {
			seen[e] = true
			uniq = append(uniq, e)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(1000, uniq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := randomGraph(2, 1000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HasEdge(i%1000, (i*7)%1000)
	}
}

func TestRelabelMatchesBuilderRandomized(t *testing.T) {
	rng := xrand.Derive(7, 0, 0)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		edges := make([][2]int, 0)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					b.AddEdge(u, v)
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := b.MustBuild()
		perm := rng.Perm(n)
		got := g.Relabel(perm)
		want := NewBuilder(n)
		for _, e := range edges {
			want.AddEdge(perm[e[0]], perm[e[1]])
		}
		if w := want.MustBuild(); !got.Equal(w) {
			t.Fatalf("trial %d (n=%d m=%d): relabel differs from rebuild", trial, n, g.M())
		}
		if got.MaxDegree() != g.MaxDegree() || got.M() != g.M() {
			t.Fatalf("trial %d: metadata changed: Δ %d->%d m %d->%d",
				trial, g.MaxDegree(), got.MaxDegree(), g.M(), got.M())
		}
	}
}

func TestRelabelIdentity(t *testing.T) {
	g := mustPath(t, 6)
	perm := []int{0, 1, 2, 3, 4, 5}
	if !g.Relabel(perm).Equal(g) {
		t.Fatal("identity relabel changed the graph")
	}
}

func TestRelabelSharesNoStorage(t *testing.T) {
	// Schedules hand out relabeled graphs while consumers still hold the
	// previous epoch's graph, so Relabel must not reuse g's arrays.
	g := mustPath(t, 4)
	h := g.Relabel([]int{3, 2, 1, 0})
	if &g.adj[0] == &h.adj[0] || &g.offsets[0] == &h.offsets[0] {
		t.Fatal("relabel shares storage with the source graph")
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := mustPath(t, 3)
	for _, bad := range [][]int{
		{0, 1},     // wrong length
		{0, 1, 3},  // out of range
		{0, 1, 1},  // duplicate
		{-1, 1, 2}, // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("perm %v did not panic", bad)
				}
			}()
			g.Relabel(bad)
		}()
	}
}

func TestRelabelIntoReusesScratchAcrossEpochs(t *testing.T) {
	rng := xrand.Derive(11, 0, 0)
	g := randomGraph(3, 40, 0.1)
	var s RelabelScratch
	for epoch := 0; epoch < 20; epoch++ {
		perm := rng.Perm(g.N())
		got := g.RelabelInto(perm, &s)
		if want := g.Relabel(perm); !got.Equal(want) {
			t.Fatalf("epoch %d: RelabelInto differs from Relabel", epoch)
		}
		// The result must outlive the scratch: mutate it and re-check the
		// previous epoch's graph would be unaffected (fresh arrays).
		if got.N() > 0 && &got.offsets[0] == &s.cursor[0] {
			t.Fatal("RelabelInto leaked scratch storage into the result")
		}
	}
}

func TestBalancedChunksInvariants(t *testing.T) {
	graphs := map[string]*Graph{
		"path40":   mustPath(t, 40),
		"empty5":   NewBuilder(5).MustBuild(),
		"random":   randomGraph(5, 97, 0.07),
		"single":   NewBuilder(1).MustBuild(),
		"zero":     NewBuilder(0).MustBuild(),
		"star":     mustStar(t, 64),
	}
	for name, g := range graphs {
		for _, workers := range []int{1, 2, 3, 7, 8, 16, 200} {
			chunks := make([]int, workers+1)
			g.BalancedChunks(workers, chunks)
			if chunks[0] != 0 || chunks[workers] != g.N() {
				t.Fatalf("%s w=%d: endpoints %d..%d want 0..%d", name, workers, chunks[0], chunks[workers], g.N())
			}
			for k := 0; k < workers; k++ {
				if chunks[k] > chunks[k+1] {
					t.Fatalf("%s w=%d: boundaries not monotone: %v", name, workers, chunks)
				}
			}
			// Every node lands in exactly one chunk by construction; check
			// the weight balance: no chunk exceeds ceil(total/workers) by
			// more than the heaviest single node (indivisible unit).
			total := int64(2*g.M() + g.N())
			limit := total/int64(workers) + int64(g.MaxDegree()+1)
			for k := 0; k < workers; k++ {
				var wgt int64
				for u := chunks[k]; u < chunks[k+1]; u++ {
					wgt += int64(g.Degree(u) + 1)
				}
				if wgt > limit {
					t.Fatalf("%s w=%d chunk %d: weight %d exceeds %d", name, workers, k, wgt, limit)
				}
			}
		}
	}
}

func TestBalancedChunksIsolatesHub(t *testing.T) {
	// On a star the hub holds a third of the total weight (deg+1 = n out of
	// 3n-2), so with 3 workers the first boundary must fall right after the
	// hub — the equal-index split would hand worker 0 the hub plus a third
	// of the leaves.
	g := mustStar(t, 1001)
	chunks := make([]int, 4)
	g.BalancedChunks(3, chunks)
	if chunks[1] != 1 {
		t.Fatalf("star hub split at %d, want 1 (chunks %v)", chunks[1], chunks)
	}
}

func TestBalancedChunksBadArgsPanic(t *testing.T) {
	g := mustPath(t, 4)
	for _, tc := range []struct {
		workers int
		size    int
	}{{0, 1}, {-1, 0}, {2, 2}, {2, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%d len(chunks)=%d did not panic", tc.workers, tc.size)
				}
			}()
			g.BalancedChunks(tc.workers, make([]int, tc.size))
		}()
	}
}

func mustStar(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.MustBuild()
}

func TestFromCSRRoundTrips(t *testing.T) {
	for _, g := range []*Graph{
		NewBuilder(0).MustBuild(),
		mustPath(t, 9),
		mustStar(t, 12),
		randomGraph(13, 60, 0.1),
	} {
		offsets := make([]int32, len(g.offsets))
		copy(offsets, g.offsets)
		adj := make([]int32, len(g.adj))
		copy(adj, g.adj)
		h, err := FromCSR(offsets, adj)
		if err != nil {
			t.Fatalf("FromCSR rejected Builder output: %v", err)
		}
		if !h.Equal(g) || h.M() != g.M() || h.MaxDegree() != g.MaxDegree() {
			t.Fatalf("FromCSR round trip changed the graph (n=%d)", g.N())
		}
	}
}

func TestFromCSRRejectsMalformed(t *testing.T) {
	cases := map[string]struct {
		offsets []int32
		adj     []int32
	}{
		"empty offsets":     {nil, nil},
		"nonzero start":     {[]int32{1, 1}, nil},
		"length mismatch":   {[]int32{0, 2}, []int32{1}},
		"odd adjacency":     {[]int32{0, 1, 1}, []int32{1}},
		"decreasing":        {[]int32{0, 2, 1, 4}, []int32{1, 2, 0, 0}},
		"out of range":      {[]int32{0, 1, 2}, []int32{1, 2}},
		"negative neighbor": {[]int32{0, 1, 2}, []int32{1, -1}},
		"self loop":         {[]int32{0, 1, 2}, []int32{0, 0}},
		"unsorted list":     {[]int32{0, 2, 3, 5, 6}, []int32{2, 1, 0, 0, 3, 2}},
		"duplicate edge":    {[]int32{0, 2, 4}, []int32{1, 1, 0, 0}},
		"asymmetric":        {[]int32{0, 1, 2, 2}, []int32{1, 2}},
	}
	for name, tc := range cases {
		if _, err := FromCSR(tc.offsets, tc.adj); err == nil {
			t.Errorf("%s: FromCSR accepted malformed input", name)
		}
	}
}

func TestMustFromCSRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromCSR did not panic on bad input")
		}
	}()
	MustFromCSR([]int32{0, 1, 2}, []int32{1, 0, 0})
}
