package graph

import (
	"fmt"
	"strings"
)

// Structural metrics beyond the degree/boundary primitives: eccentricity-
// based distances and degree distribution. Used by cmd/mtmgraph for
// topology inspection; all are exact BFS computations.

// Diameter returns the longest shortest-path distance in the graph, or -1
// if the graph is disconnected (or has fewer than 2 nodes).
func (g *Graph) Diameter() int {
	if g.n < 2 {
		return -1
	}
	diameter := 0
	dist := make([]int32, g.n)
	for src := 0; src < g.n; src++ {
		ecc, reached := g.eccentricity(src, dist)
		if reached != g.n {
			return -1
		}
		if ecc > diameter {
			diameter = ecc
		}
	}
	return diameter
}

// AveragePathLength returns the mean shortest-path distance over all
// ordered node pairs, or -1 if disconnected.
func (g *Graph) AveragePathLength() float64 {
	if g.n < 2 {
		return 0
	}
	total := 0
	dist := make([]int32, g.n)
	for src := 0; src < g.n; src++ {
		_, reached := g.eccentricity(src, dist)
		if reached != g.n {
			return -1
		}
		for _, d := range dist {
			total += int(d)
		}
	}
	return float64(total) / float64(g.n*(g.n-1))
}

// eccentricity runs BFS from src, filling dist (len n) and returning the
// maximum distance and the number of reached nodes.
func (g *Graph) eccentricity(src int, dist []int32) (ecc, reached int) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	reached = 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				if int(dist[v]) > ecc {
					ecc = int(dist[v])
				}
				reached++
				queue = append(queue, v)
			}
		}
	}
	return ecc, reached
}

// DegreeHistogram returns counts[d] = number of nodes with degree d,
// indexed 0..MaxDegree.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.maxDeg+1)
	for u := 0; u < g.n; u++ {
		counts[g.Degree(u)]++
	}
	return counts
}

// AverageDegree returns 2m/n (0 for the empty graph).
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// DOT renders the graph in Graphviz DOT format (undirected), for visual
// debugging of topologies. Node names are bare indices.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	for u := 0; u < g.n; u++ {
		if g.Degree(u) == 0 {
			fmt.Fprintf(&b, "  %d;\n", u)
		}
	}
	g.Edges(func(u, v int) {
		fmt.Fprintf(&b, "  %d -- %d;\n", u, v)
	})
	b.WriteString("}\n")
	return b.String()
}
