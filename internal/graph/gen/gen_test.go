package gen

import (
	"math"
	"testing"

	"mobiletel/internal/graph"
)

func TestCliqueStructure(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10} {
		f := Clique(n)
		if f.N() != n {
			t.Fatalf("K_%d: n=%d", n, f.N())
		}
		if f.Graph.M() != n*(n-1)/2 {
			t.Fatalf("K_%d: m=%d", n, f.Graph.M())
		}
		if n >= 2 && f.MaxDegree() != n-1 {
			t.Fatalf("K_%d: Δ=%d", n, f.MaxDegree())
		}
		if !f.Graph.Connected() {
			t.Fatalf("K_%d disconnected", n)
		}
	}
}

func TestPathCycleStarStructure(t *testing.T) {
	p := Path(7)
	if p.Graph.M() != 6 || p.MaxDegree() != 2 {
		t.Fatalf("path(7): %v", p)
	}
	c := Cycle(7)
	if c.Graph.M() != 7 || c.MaxDegree() != 2 {
		t.Fatalf("cycle(7): %v", c)
	}
	s := Star(7)
	if s.Graph.M() != 6 || s.MaxDegree() != 6 || s.Graph.Degree(1) != 1 {
		t.Fatalf("star(7): %v", s)
	}
}

func TestLineOfStarsStructure(t *testing.T) {
	f := LineOfStars(4, 3)
	if f.N() != 16 {
		t.Fatalf("n=%d, want 16", f.N())
	}
	// Interior centers: 2 line neighbors + 3 leaves = 5. End centers: 4.
	if f.MaxDegree() != 5 {
		t.Fatalf("Δ=%d, want 5", f.MaxDegree())
	}
	if f.Graph.Degree(0) != 4 || f.Graph.Degree(1) != 5 {
		t.Fatalf("center degrees: d(0)=%d d(1)=%d", f.Graph.Degree(0), f.Graph.Degree(1))
	}
	// Leaves have degree 1.
	for v := 4; v < 16; v++ {
		if f.Graph.Degree(v) != 1 {
			t.Fatalf("leaf %d degree %d", v, f.Graph.Degree(v))
		}
	}
	if !f.Graph.Connected() {
		t.Fatal("line of stars disconnected")
	}
}

func TestSqrtLineOfStars(t *testing.T) {
	f := SqrtLineOfStars(5)
	if f.N() != 30 {
		t.Fatalf("n=%d, want 30", f.N())
	}
	if f.Name != "sqrt-line-of-stars" {
		t.Fatalf("name %q", f.Name)
	}
}

func TestRingOfCliquesStructure(t *testing.T) {
	f := RingOfCliques(4, 5)
	if f.N() != 20 {
		t.Fatalf("n=%d", f.N())
	}
	// Δ = s exactly: port nodes have s-1 clique edges + 1 ring edge.
	if f.MaxDegree() != 5 {
		t.Fatalf("Δ=%d, want 5", f.MaxDegree())
	}
	if !f.Graph.Connected() {
		t.Fatal("ring of cliques disconnected")
	}
	if !f.AlphaExact {
		t.Fatal("s>=3 should be flagged exact")
	}
	if f2 := RingOfCliques(3, 2); f2.AlphaExact {
		t.Fatal("s=2 should not be flagged exact")
	}
}

func TestBarbellStructure(t *testing.T) {
	f := Barbell(4)
	if f.N() != 8 || f.MaxDegree() != 4 {
		t.Fatalf("barbell(4): %v", f)
	}
	if !f.Graph.HasEdge(0, 4) {
		t.Fatal("barbell bridge missing")
	}
	if !f.Graph.Connected() {
		t.Fatal("barbell disconnected")
	}
}

func TestGridTorusStructure(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.Graph.M() != 3*3+2*4 {
		t.Fatalf("grid(3,4): %v m=%d", g, g.Graph.M())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("grid Δ=%d", g.MaxDegree())
	}
	tor := Torus(3, 4)
	if tor.Graph.M() != 2*12 {
		t.Fatalf("torus(3,4): m=%d, want 24", tor.Graph.M())
	}
	for u := 0; u < tor.N(); u++ {
		if tor.Graph.Degree(u) != 4 {
			t.Fatalf("torus node %d degree %d", u, tor.Graph.Degree(u))
		}
	}
}

func TestHypercubeStructure(t *testing.T) {
	f := Hypercube(4)
	if f.N() != 16 || f.Graph.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", f.N(), f.Graph.M())
	}
	for u := 0; u < 16; u++ {
		if f.Graph.Degree(u) != 4 {
			t.Fatalf("Q4 node %d degree %d", u, f.Graph.Degree(u))
		}
	}
	if !f.Graph.Connected() {
		t.Fatal("Q4 disconnected")
	}
}

func TestCompleteBinaryTreeStructure(t *testing.T) {
	f := CompleteBinaryTree(4)
	if f.N() != 15 || f.Graph.M() != 14 {
		t.Fatalf("tree(4): n=%d m=%d", f.N(), f.Graph.M())
	}
	if f.MaxDegree() != 3 {
		t.Fatalf("tree Δ=%d", f.MaxDegree())
	}
	if !f.Graph.Connected() {
		t.Fatal("tree disconnected")
	}
}

func TestRandomRegular(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {50, 5}, {64, 6}} {
		f := RandomRegular(tc.n, tc.d, 42)
		if f.N() != tc.n {
			t.Fatalf("rr(%d,%d): n=%d", tc.n, tc.d, f.N())
		}
		for u := 0; u < tc.n; u++ {
			if f.Graph.Degree(u) != tc.d {
				t.Fatalf("rr(%d,%d): node %d degree %d", tc.n, tc.d, u, f.Graph.Degree(u))
			}
		}
		if !f.Graph.Connected() {
			t.Fatalf("rr(%d,%d) disconnected", tc.n, tc.d)
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a := RandomRegular(30, 4, 7)
	b := RandomRegular(30, 4, 7)
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("same seed produced different graphs")
	}
	c := RandomRegular(30, 4, 8)
	if a.Graph.Equal(c.Graph) {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestRandomRegularInfeasiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd n*d did not panic")
		}
	}()
	RandomRegular(5, 3, 1) // 15 stubs, odd
}

func TestErdosRenyi(t *testing.T) {
	f := ErdosRenyi(40, 0.3, 11)
	if f.N() != 40 || !f.Graph.Connected() {
		t.Fatalf("ER(40, .3): %v", f)
	}
	if !math.IsNaN(f.Alpha) || f.AlphaExact {
		t.Fatal("ER should not claim a known alpha")
	}
	a := ErdosRenyi(25, 0.25, 3)
	b := ErdosRenyi(25, 0.25, 3)
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("ER not deterministic for fixed seed")
	}
}

func TestLollipop(t *testing.T) {
	f := Lollipop(5, 5)
	if f.N() != 10 || !f.Graph.Connected() {
		t.Fatalf("lollipop(5,5): %v", f)
	}
	if f.Graph.Degree(9) != 1 {
		t.Fatalf("tail end degree %d", f.Graph.Degree(9))
	}
	if !f.AlphaExact {
		t.Fatal("tail >= n/2 case should be exact")
	}
}

func TestPanicsOnBadParameters(t *testing.T) {
	cases := []func(){
		func() { Clique(0) },
		func() { Path(0) },
		func() { Cycle(2) },
		func() { Star(1) },
		func() { LineOfStars(0, 3) },
		func() { RingOfCliques(2, 3) },
		func() { Barbell(1) },
		func() { Grid(0, 3) },
		func() { Torus(2, 3) },
		func() { Hypercube(0) },
		func() { CompleteBinaryTree(0) },
		func() { Lollipop(1, 1) },
		func() { ErdosRenyi(3, 1.5, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFamilyString(t *testing.T) {
	s := Clique(4).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkRandomRegular1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RandomRegular(1000, 6, uint64(i))
	}
}

func BenchmarkLineOfStars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = SqrtLineOfStars(100)
	}
}

func TestCompleteBipartiteStructure(t *testing.T) {
	f := CompleteBipartite(3, 5)
	if f.N() != 8 || f.Graph.M() != 15 {
		t.Fatalf("K_{3,5}: n=%d m=%d", f.N(), f.Graph.M())
	}
	if f.MaxDegree() != 5 {
		t.Fatalf("K_{3,5}: Δ=%d", f.MaxDegree())
	}
	// Argument order must not matter.
	g := CompleteBipartite(5, 3)
	if !f.Graph.Equal(g.Graph) || f.Alpha != g.Alpha {
		t.Fatal("K_{a,b} not symmetric in arguments")
	}
}

func TestPetersenStructure(t *testing.T) {
	f := Petersen()
	if f.N() != 10 || f.Graph.M() != 15 {
		t.Fatalf("petersen: n=%d m=%d", f.N(), f.Graph.M())
	}
	for u := 0; u < 10; u++ {
		if f.Graph.Degree(u) != 3 {
			t.Fatalf("petersen node %d degree %d", u, f.Graph.Degree(u))
		}
	}
	if !f.Graph.Connected() || !f.AlphaExact {
		t.Fatal("petersen metadata wrong")
	}
}

func TestWheelStructure(t *testing.T) {
	f := Wheel(8)
	if f.N() != 8 || f.Graph.M() != 14 {
		t.Fatalf("wheel(8): n=%d m=%d", f.N(), f.Graph.M())
	}
	if f.Graph.Degree(0) != 7 {
		t.Fatalf("hub degree %d", f.Graph.Degree(0))
	}
	for u := 1; u < 8; u++ {
		if f.Graph.Degree(u) != 3 {
			t.Fatalf("rim node %d degree %d", u, f.Graph.Degree(u))
		}
	}
}

func TestCirculantStructure(t *testing.T) {
	f := Circulant(10, []int{1, 2})
	if f.N() != 10 || f.Graph.M() != 20 {
		t.Fatalf("C_10(1,2): n=%d m=%d", f.N(), f.Graph.M())
	}
	for u := 0; u < 10; u++ {
		if f.Graph.Degree(u) != 4 {
			t.Fatalf("node %d degree %d", u, f.Graph.Degree(u))
		}
	}
	if !f.AlphaExact {
		t.Fatal("small circulant should have brute-forced exact alpha")
	}
	// Antipodal offset covered once.
	g := Circulant(6, []int{3})
	if g.Graph.M() != 3 {
		t.Fatalf("C_6(3): m=%d, want 3", g.Graph.M())
	}
}

func TestNewFamilyPanics(t *testing.T) {
	cases := []func(){
		func() { CompleteBipartite(0, 3) },
		func() { Wheel(3) },
		func() { Circulant(2, []int{1}) },
		func() { Circulant(10, []int{6}) },
		func() { Circulant(10, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDisjointUnion(t *testing.T) {
	f := DisjointUnion(Clique(4), Cycle(5))
	if f.N() != 9 || f.Graph.M() != 6+5 {
		t.Fatalf("disjoint union: n=%d m=%d", f.N(), f.Graph.M())
	}
	if f.Graph.Connected() {
		t.Fatal("disjoint union should be disconnected")
	}
	if f.Alpha != 0 {
		t.Fatal("disconnected graph must report alpha 0")
	}
}

func TestBarabasiAlbertStructure(t *testing.T) {
	f := BarabasiAlbert(200, 3, 7)
	if f.N() != 200 {
		t.Fatalf("n=%d", f.N())
	}
	// m0 clique edges + m per subsequent node.
	wantM := 4*3/2 + (200-4)*3
	if f.Graph.M() != wantM {
		t.Fatalf("m=%d, want %d", f.Graph.M(), wantM)
	}
	if !f.Graph.Connected() {
		t.Fatal("BA graph disconnected")
	}
	// Scale-free signature: the max degree should dwarf the minimum (m).
	if f.MaxDegree() < 4*3 {
		t.Fatalf("Δ=%d suspiciously flat for preferential attachment", f.MaxDegree())
	}
	minDeg := f.N()
	for u := 0; u < f.N(); u++ {
		if d := f.Graph.Degree(u); d < minDeg {
			minDeg = d
		}
	}
	if minDeg < 3 {
		t.Fatalf("min degree %d below m", minDeg)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(50, 2, 3)
	b := BarabasiAlbert(50, 2, 3)
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("BA not deterministic")
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n <= m+1 did not panic")
		}
	}()
	BarabasiAlbert(3, 3, 1)
}

// builderGrid and builderTorus are the pre-CSR reference constructions; the
// direct-CSR generators must produce bit-identical graphs.
func builderGrid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

func builderTorus(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.MustBuild()
}

func TestGridCSRMatchesBuilder(t *testing.T) {
	for _, dim := range [][2]int{{1, 1}, {1, 7}, {5, 1}, {2, 2}, {3, 4}, {7, 7}, {16, 9}} {
		got := Grid(dim[0], dim[1]).Graph
		if want := builderGrid(dim[0], dim[1]); !got.Equal(want) {
			t.Errorf("Grid(%d,%d) direct CSR differs from Builder construction", dim[0], dim[1])
		}
	}
}

func TestTorusCSRMatchesBuilder(t *testing.T) {
	for _, dim := range [][2]int{{3, 3}, {3, 5}, {4, 4}, {7, 3}, {8, 16}} {
		got := Torus(dim[0], dim[1]).Graph
		if want := builderTorus(dim[0], dim[1]); !got.Equal(want) {
			t.Errorf("Torus(%d,%d) direct CSR differs from Builder construction", dim[0], dim[1])
		}
	}
}

func TestExpanderStructure(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{8, 4}, {17, 4}, {64, 6}, {101, 8}, {256, 8}} {
		f := Expander(tc.n, tc.d, 42)
		g := f.Graph
		if g.N() != tc.n || g.M() != tc.n*tc.d/2 {
			t.Fatalf("Expander(%d,%d): n=%d m=%d", tc.n, tc.d, g.N(), g.M())
		}
		for u := 0; u < tc.n; u++ {
			if g.Degree(u) != tc.d {
				t.Fatalf("Expander(%d,%d): node %d has degree %d", tc.n, tc.d, u, g.Degree(u))
			}
		}
		if !g.Connected() {
			t.Fatalf("Expander(%d,%d) disconnected", tc.n, tc.d)
		}
		if !g.HasEdge(0, 1) || !g.HasEdge(tc.n-1, 0) {
			t.Fatalf("Expander(%d,%d) missing the offset-1 Hamiltonian cycle", tc.n, tc.d)
		}
	}
}

func TestExpanderDeterministic(t *testing.T) {
	a := Expander(120, 8, 7).Graph
	if !a.Equal(Expander(120, 8, 7).Graph) {
		t.Fatal("same seed produced different expanders")
	}
	if a.Equal(Expander(120, 8, 8).Graph) {
		t.Fatal("different seeds produced identical expanders")
	}
}

func TestExpanderPanics(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{10, 3}, {10, 2}, {5, 4}, {6, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Expander(%d,%d) did not panic", tc.n, tc.d)
				}
			}()
			Expander(tc.n, tc.d, 1)
		}()
	}
}
