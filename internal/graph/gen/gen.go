// Package gen generates the graph families used throughout the paper's
// analysis and this repository's experiments.
//
// Each generator returns a Family: the graph plus analytic metadata — the
// maximum degree Δ and, where a clean closed form exists, the exact vertex
// expansion α (Section II of the paper). Experiments use families with known
// α so that complexity bounds of the form O((1/α)Δ²log²n) can be evaluated
// without solving the NP-hard expansion problem; internal/expansion's exact
// brute force validates these formulas on small instances.
package gen

import (
	"fmt"
	"math"
	"math/bits"
	"slices"

	"mobiletel/internal/graph"
	"mobiletel/internal/xrand"
)

// Family is a generated graph together with its analytic structural
// metadata.
type Family struct {
	Name  string
	Graph *graph.Graph

	// Alpha is the vertex expansion. If AlphaExact is true this is the exact
	// value implied by the family's structure; otherwise it is a heuristic
	// estimate (or NaN when no estimate is offered).
	Alpha      float64
	AlphaExact bool
}

// N returns the number of nodes, for convenience.
func (f Family) N() int { return f.Graph.N() }

// MaxDegree returns Δ, for convenience.
func (f Family) MaxDegree() int { return f.Graph.MaxDegree() }

func (f Family) String() string {
	return fmt.Sprintf("%s{n=%d Δ=%d α=%.4g}", f.Name, f.N(), f.MaxDegree(), f.Alpha)
}

// Clique returns the complete graph K_n. Every S has ∂S = V \ S, so
// α = (n - ⌊n/2⌋)/⌊n/2⌋, minimized at the largest allowed |S|.
func Clique(n int) Family {
	if n < 1 {
		panic("gen: Clique needs n >= 1")
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	alpha := 1.0
	if n >= 2 {
		half := n / 2
		alpha = float64(n-half) / float64(half)
	}
	return Family{Name: "clique", Graph: b.MustBuild(), Alpha: alpha, AlphaExact: true}
}

// Path returns the path graph on n nodes. The worst cut is a prefix of
// ⌊n/2⌋ nodes with boundary 1, so α = 1/⌊n/2⌋.
func Path(n int) Family {
	if n < 1 {
		panic("gen: Path needs n >= 1")
	}
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	alpha := 1.0
	if n >= 2 {
		alpha = 1 / float64(n/2)
	}
	return Family{Name: "path", Graph: b.MustBuild(), Alpha: alpha, AlphaExact: true}
}

// Cycle returns the cycle graph on n >= 3 nodes. The worst cut is an arc of
// ⌊n/2⌋ nodes with boundary 2, so α = 2/⌊n/2⌋.
func Cycle(n int) Family {
	if n < 3 {
		panic("gen: Cycle needs n >= 3")
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return Family{Name: "cycle", Graph: b.MustBuild(), Alpha: 2 / float64(n/2), AlphaExact: true}
}

// Star returns the star K_{1,n-1} with node 0 as the center. The worst cut
// is ⌊n/2⌋ leaves with boundary {center}, so α = 1/⌊n/2⌋.
func Star(n int) Family {
	if n < 2 {
		panic("gen: Star needs n >= 2")
	}
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return Family{Name: "star", Graph: b.MustBuild(), Alpha: 1 / float64(n/2), AlphaExact: true}
}

// LineOfStars builds the paper's Section VI lower-bound construction: a line
// of `stars` star centers u_1..u_ℓ, each connected to its own `points` leaf
// nodes. Centers are nodes 0..stars-1 in line order; leaves of center i are
// the block stars + i*points .. stars + (i+1)*points - 1.
//
// With ℓ = points = √n this yields Δ = points + 2 and α = Θ(1/n); blind
// gossip needs Ω(Δ²√n) = Ω(Δ²/√α) rounds on it. The minimum cut takes a
// prefix of whole stars plus some leaves of the next star — any size is
// reachable with boundary exactly 1 (the next center), so α = 1/⌊n/2⌋.
func LineOfStars(stars, points int) Family {
	if stars < 1 || points < 0 {
		panic("gen: LineOfStars needs stars >= 1, points >= 0")
	}
	n := stars * (points + 1)
	b := graph.NewBuilder(n)
	for i := 0; i+1 < stars; i++ {
		b.AddEdge(i, i+1)
	}
	for i := 0; i < stars; i++ {
		base := stars + i*points
		for j := 0; j < points; j++ {
			b.AddEdge(i, base+j)
		}
	}
	alpha := 1.0
	if n >= 2 {
		alpha = 1 / float64(n/2)
	}
	return Family{Name: "line-of-stars", Graph: b.MustBuild(), Alpha: alpha, AlphaExact: true}
}

// SqrtLineOfStars is the canonical instantiation from the paper: √n stars of
// √n points each (so the leader at the head must traverse the whole line).
// side is √n; total size is side*(side+1).
func SqrtLineOfStars(side int) Family {
	f := LineOfStars(side, side)
	f.Name = "sqrt-line-of-stars"
	return f
}

// RingOfCliques joins k cliques of size s in a ring, adjacent cliques linked
// by a single edge between designated port nodes (port 0 of clique c to port
// 1 of clique c+1, so no node carries two inter-clique edges and Δ = s
// exactly: s-1 clique edges plus at most one ring edge).
//
// The minimum cut is a contiguous arc of cliques whose end cliques may be
// partial. An end clique missing δ nodes contributes δ boundary nodes if the
// missing set includes that end's "special" node (the one carrying the cut
// edge), and a full end clique contributes 1 boundary node (the special node
// of the adjacent outside clique). ringOfCliquesAlpha minimizes
// boundary/size over this family, which brute-force enumeration confirms is
// the global minimum for s >= 3 (for s = 2 it is an upper bound).
//
// This family gives tunable α at roughly constant Δ = s, the complement of
// Clique (constant α) in the experiment grid.
func RingOfCliques(k, s int) Family {
	if k < 3 || s < 2 {
		panic("gen: RingOfCliques needs k >= 3 cliques of size s >= 2")
	}
	n := k * s
	b := graph.NewBuilder(n)
	for c := 0; c < k; c++ {
		base := c * s
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
	}
	for c := 0; c < k; c++ {
		next := (c + 1) % k
		b.AddEdge(c*s, next*s+1)
	}
	return Family{
		Name:       "ring-of-cliques",
		Graph:      b.MustBuild(),
		Alpha:      ringOfCliquesAlpha(k, s),
		AlphaExact: s >= 3,
	}
}

// ringOfCliquesAlpha minimizes |∂S|/|S| over arc cuts: j whole-or-partial
// cliques with δl (resp. δr) nodes removed at the left (resp. right) end.
// A full end contributes 1 boundary node; an end missing δ >= 1 nodes
// contributes δ.
func ringOfCliquesAlpha(k, s int) float64 {
	half := k * s / 2
	endBoundary := func(delta int) int {
		if delta == 0 {
			return 1
		}
		return delta
	}
	best := math.Inf(1)
	for j := 1; j < k; j++ {
		for dl := 0; dl < s; dl++ {
			for dr := 0; dr < s; dr++ {
				size := j*s - dl - dr
				if size < 1 || size > half {
					continue
				}
				a := float64(endBoundary(dl)+endBoundary(dr)) / float64(size)
				if a < best {
					best = a
				}
			}
		}
	}
	return best
}

// DisjointUnion places two families side by side with no edges between them
// — a disconnected graph, used for the Section VIII self-stabilization
// scenario (components that run independently before being merged). Nodes
// of a keep their indices; nodes of b are shifted by a.N(). Alpha is 0
// (an isolated component has an empty boundary).
func DisjointUnion(a, b Family) Family {
	n := a.N() + b.N()
	bl := graph.NewBuilder(n)
	a.Graph.Edges(func(u, v int) { bl.AddEdge(u, v) })
	off := a.N()
	b.Graph.Edges(func(u, v int) { bl.AddEdge(off+u, off+v) })
	return Family{
		Name:       fmt.Sprintf("disjoint(%s,%s)", a.Name, b.Name),
		Graph:      bl.MustBuild(),
		Alpha:      0,
		AlphaExact: true,
	}
}

// Barbell joins two cliques of size s by a single edge. The worst cut is one
// clique: boundary is 1 node, so α = 1/s.
func Barbell(s int) Family {
	if s < 2 {
		panic("gen: Barbell needs s >= 2")
	}
	b := graph.NewBuilder(2 * s)
	for off := 0; off <= s; off += s {
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				b.AddEdge(off+u, off+v)
			}
		}
	}
	b.AddEdge(0, s)
	return Family{Name: "barbell", Graph: b.MustBuild(), Alpha: 1 / float64(s), AlphaExact: true}
}

// Grid returns the rows×cols grid graph. α is Θ(1/√n); we report the
// standard estimate min(rows,cols)/⌊n/2⌋·... conservatively as a heuristic
// (AlphaExact=false) since the exact isoperimetric constant depends on the
// aspect ratio.
//
// The graph is emitted directly in CSR form: a node's neighbors in row-major
// id order are up, left, right, down, which is already sorted, so a 1M-node
// mesh materializes in O(n) with two allocations instead of round-tripping a
// 2M-entry edge list through the Builder's sort.
func Grid(rows, cols int) Family {
	if rows < 1 || cols < 1 {
		panic("gen: Grid needs positive dimensions")
	}
	n := rows * cols
	offsets := make([]int32, n+1)
	adj := make([]int32, 2*(rows*(cols-1)+(rows-1)*cols))
	i := int32(0)
	u := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			offsets[u] = i
			if r > 0 {
				adj[i] = int32(u - cols)
				i++
			}
			if c > 0 {
				adj[i] = int32(u - 1)
				i++
			}
			if c+1 < cols {
				adj[i] = int32(u + 1)
				i++
			}
			if r+1 < rows {
				adj[i] = int32(u + cols)
				i++
			}
			u++
		}
	}
	offsets[n] = i
	short := rows
	if cols < short {
		short = cols
	}
	alpha := float64(short) / float64(n/2)
	return Family{Name: "grid", Graph: graph.MustFromCSR(offsets, adj), Alpha: alpha, AlphaExact: false}
}

// Torus returns the rows×cols torus (grid with wraparound), a 4-regular
// graph for rows,cols >= 3. Like Grid it emits CSR directly; the four
// neighbor ids wrap around the edges, so each quad is sorted in place.
func Torus(rows, cols int) Family {
	if rows < 3 || cols < 3 {
		panic("gen: Torus needs dimensions >= 3")
	}
	n := rows * cols
	offsets := make([]int32, n+1)
	adj := make([]int32, 4*n)
	for u := 0; u <= n; u++ {
		offsets[u] = int32(4 * u)
	}
	var nb [4]int32
	u := 0
	for r := 0; r < rows; r++ {
		rup, rdn := r-1, r+1
		if rup < 0 {
			rup = rows - 1
		}
		if rdn == rows {
			rdn = 0
		}
		for c := 0; c < cols; c++ {
			cl, cr := c-1, c+1
			if cl < 0 {
				cl = cols - 1
			}
			if cr == cols {
				cr = 0
			}
			nb[0] = int32(rup*cols + c)
			nb[1] = int32(rdn*cols + c)
			nb[2] = int32(r*cols + cl)
			nb[3] = int32(r*cols + cr)
			slices.Sort(nb[:])
			copy(adj[4*u:], nb[:])
			u++
		}
	}
	short := rows
	if cols < short {
		short = cols
	}
	alpha := 2 * float64(short) / float64(n/2)
	return Family{Name: "torus", Graph: graph.MustFromCSR(offsets, adj), Alpha: alpha, AlphaExact: false}
}

// Expander returns a random circulant d-regular expander on n nodes: offset
// 1 (a Hamiltonian cycle, guaranteeing connectivity) plus d/2 - 1 random
// distinct offsets in [2, (n-1)/2] drawn from the seed. Random circulants
// of logarithmic degree are expanders w.h.p., and unlike RandomRegular the
// construction is O(nd) with no edge-swap mixing chain, so a 1M-node
// instance materializes in milliseconds. d must be even and >= 4, with
// n >= d + 2 so enough distinct offsets exist; every offset o satisfies
// 2o < n, so each contributes exactly two distinct neighbors per node.
func Expander(n, d int, seed uint64) Family {
	hi := (n - 1) / 2
	if d < 4 || d%2 != 0 || n < d+2 || hi-1 < d/2-1 {
		panic(fmt.Sprintf("gen: Expander(%d, %d) infeasible: need even d >= 4 and n >= d+2", n, d))
	}
	if int64(n)*int64(d) >= math.MaxInt32 {
		panic(fmt.Sprintf("gen: Expander(%d, %d) adjacency exceeds int32 CSR offsets", n, d))
	}
	rng := xrand.New(seed)
	offs := make([]int, 1, d/2)
	offs[0] = 1
	seen := map[int]bool{1: true}
	for len(offs) < d/2 {
		o := 2 + rng.Intn(hi-1)
		if !seen[o] {
			seen[o] = true
			offs = append(offs, o)
		}
	}
	offsets := make([]int32, n+1)
	adj := make([]int32, d*n)
	for u := 0; u <= n; u++ {
		offsets[u] = int32(d * u)
	}
	nb := make([]int32, d)
	for u := 0; u < n; u++ {
		k := 0
		for _, o := range offs {
			nb[k] = int32((u + o) % n)
			nb[k+1] = int32((u - o + n) % n)
			k += 2
		}
		slices.Sort(nb)
		copy(adj[d*u:], nb)
	}
	g := graph.MustFromCSR(offsets, adj)
	alpha := math.NaN()
	exact := false
	if n <= 20 {
		alpha = bruteAlpha(g)
		exact = true
	}
	return Family{Name: "expander", Graph: g, Alpha: alpha, AlphaExact: exact}
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes. Its vertex
// expansion is Θ(1/√d) (Harper's theorem); we report the estimate
// binom(d, d/2)/2^(d-1) for the balanced Hamming-ball cut.
func Hypercube(d int) Family {
	if d < 1 || d > 20 {
		panic("gen: Hypercube needs 1 <= d <= 20")
	}
	n := 1 << d
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << bit)
			if v > u {
				b.AddEdge(u, v)
			}
		}
	}
	// Central binomial coefficient over half the cube.
	binom := 1.0
	for i := 1; i <= d/2; i++ {
		binom = binom * float64(d-i+1) / float64(i)
	}
	alpha := binom / float64(n/2)
	return Family{Name: "hypercube", Graph: b.MustBuild(), Alpha: alpha, AlphaExact: false}
}

// CompleteBinaryTree returns the complete binary tree with the given number
// of levels (level 1 is just the root). The worst cut is one child subtree
// (boundary = the root), so α ≈ 1/((n-1)/2).
func CompleteBinaryTree(levels int) Family {
	if levels < 1 || levels > 25 {
		panic("gen: CompleteBinaryTree needs 1 <= levels <= 25")
	}
	n := (1 << levels) - 1
	b := graph.NewBuilder(n)
	for u := 0; 2*u+1 < n; u++ {
		b.AddEdge(u, 2*u+1)
		if 2*u+2 < n {
			b.AddEdge(u, 2*u+2)
		}
	}
	alpha := 1.0
	if n >= 3 {
		alpha = 1 / float64((n-1)/2)
	}
	return Family{Name: "binary-tree", Graph: b.MustBuild(), Alpha: alpha, AlphaExact: true}
}

// RandomRegular returns a random simple connected d-regular graph on n
// nodes. It starts from a circulant d-regular base and randomizes it with a
// long run of degree-preserving double-edge swaps (the standard Markov-chain
// sampler), which — unlike configuration-model rejection — succeeds for any
// feasible (n, d). n*d must be even and d < n. Random regular graphs are
// expanders w.h.p., so α is estimated as a constant (0.3, a conservative
// stand-in validated by the expansion package's sweep bound in tests).
func RandomRegular(n, d int, seed uint64) Family {
	if d < 1 || d >= n || (n*d)%2 != 0 {
		panic(fmt.Sprintf("gen: RandomRegular(%d, %d) infeasible", n, d))
	}
	rng := xrand.New(seed)

	// Circulant base: offsets 1..⌊d/2⌋, plus the antipodal matching when d
	// is odd (feasible because d odd forces n even).
	type edge [2]int32
	canon := func(u, v int32) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	edgeSet := make(map[edge]int) // edge -> index in edges
	var edges []edge
	addBase := func(u, v int) {
		e := canon(int32(u), int32(v))
		if _, dup := edgeSet[e]; dup {
			panic("gen: duplicate base edge")
		}
		edgeSet[e] = len(edges)
		edges = append(edges, e)
	}
	for off := 1; off <= d/2; off++ {
		for u := 0; u < n; u++ {
			v := (u + off) % n
			if canonLess(u, v, off, n) {
				addBase(u, v)
			}
		}
	}
	if d%2 == 1 {
		for u := 0; u < n/2; u++ {
			addBase(u, u+n/2)
		}
	}

	// Double-edge swaps: (a,b),(c,e) -> (a,e),(c,b) when the result stays
	// simple. ~20 accepted swaps per edge mixes well in practice.
	m := len(edges)
	swapEdge := func() {
		i, j := rng.Intn(m), rng.Intn(m)
		if i == j {
			return
		}
		a, b := edges[i][0], edges[i][1]
		c, e := edges[j][0], edges[j][1]
		if rng.Bool() {
			c, e = e, c
		}
		if a == e || c == b || a == c || b == e {
			return
		}
		ne1, ne2 := canon(a, e), canon(c, b)
		if _, dup := edgeSet[ne1]; dup {
			return
		}
		if _, dup := edgeSet[ne2]; dup {
			return
		}
		delete(edgeSet, edges[i])
		delete(edgeSet, edges[j])
		edges[i], edges[j] = ne1, ne2
		edgeSet[ne1] = i
		edgeSet[ne2] = j
	}

	build := func() *graph.Graph {
		b := graph.NewBuilder(n)
		for _, e := range edges {
			b.AddEdge(int(e[0]), int(e[1]))
		}
		return b.MustBuild()
	}

	for i := 0; i < 20*m; i++ {
		swapEdge()
	}
	g := build()
	// Swaps can (rarely) disconnect the graph; keep mixing until connected.
	for attempts := 0; !g.Connected(); attempts++ {
		if attempts > 100 {
			panic(fmt.Sprintf("gen: RandomRegular(%d, %d) could not reach a connected state", n, d))
		}
		for i := 0; i < 2*m; i++ {
			swapEdge()
		}
		g = build()
	}
	return Family{Name: "random-regular", Graph: g, Alpha: 0.3, AlphaExact: false}
}

// canonLess reports whether the circulant edge (u, u+off mod n) should be
// emitted when scanning from u — exactly once per undirected edge, handling
// the off == n/2 double-cover case.
func canonLess(u, v, off, n int) bool {
	if 2*off == n {
		return u < v
	}
	return true
}

// ErdosRenyi returns a connected G(n, p) sample, retrying (with fresh
// randomness from the same stream) until the sample is connected. It panics
// after 1000 failed attempts — pick p comfortably above the ln(n)/n
// connectivity threshold.
func ErdosRenyi(n int, p float64, seed uint64) Family {
	if n < 1 || p < 0 || p > 1 {
		panic("gen: ErdosRenyi parameters out of range")
	}
	rng := xrand.New(seed)
	for attempt := 0; attempt < 1000; attempt++ {
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		if g.Connected() {
			return Family{Name: "erdos-renyi", Graph: g, Alpha: math.NaN(), AlphaExact: false}
		}
	}
	panic(fmt.Sprintf("gen: ErdosRenyi(%d, %v) never connected; p too small", n, p))
}

// CompleteBipartite returns K_{a,b} with the a-side on nodes 0..a-1.
// For a <= b, the minimum cut is a subset of the larger side of size
// min(b, ⌊n/2⌋) whose boundary is the entire smaller side, so
// α = a / min(b, ⌊(a+b)/2⌋).
func CompleteBipartite(a, b int) Family {
	if a < 1 || b < 1 {
		panic("gen: CompleteBipartite needs positive sides")
	}
	if a > b {
		a, b = b, a
	}
	n := a + b
	bl := graph.NewBuilder(n)
	for u := 0; u < a; u++ {
		for v := a; v < n; v++ {
			bl.AddEdge(u, v)
		}
	}
	den := b
	if n/2 < den {
		den = n / 2
	}
	return Family{
		Name:       "complete-bipartite",
		Graph:      bl.MustBuild(),
		Alpha:      float64(a) / float64(den),
		AlphaExact: true,
	}
}

// Petersen returns the Petersen graph (10 nodes, 3-regular): outer cycle
// 0..4, inner pentagram 5..9. Its α is computed exactly at construction
// time by brute force (the graph is tiny and fixed).
func Petersen() Family {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer cycle
		b.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.AddEdge(i, 5+i)         // spokes
	}
	g := b.MustBuild()
	return Family{Name: "petersen", Graph: g, Alpha: bruteAlpha(g), AlphaExact: true}
}

// Wheel returns the wheel graph: node 0 is the hub, nodes 1..n-1 form a
// cycle, all connected to the hub. For n >= 6 the minimum cut is a rim arc
// of ⌊n/2⌋ nodes with boundary {two rim ends, hub}: α = 3/⌊n/2⌋.
func Wheel(n int) Family {
	if n < 4 {
		panic("gen: Wheel needs n >= 4")
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
		next := i + 1
		if next == n {
			next = 1
		}
		if i < next || next == 1 && i == n-1 {
			b.AddEdge(i, next)
		}
	}
	g := b.MustBuild()
	alpha := 3 / float64(n/2)
	exact := n >= 6
	if !exact && n <= 22 {
		alpha = bruteAlpha(g)
		exact = true
	}
	return Family{Name: "wheel", Graph: g, Alpha: alpha, AlphaExact: exact}
}

// Circulant returns the circulant graph C_n(offsets): node i is adjacent to
// i±off (mod n) for each offset. Offsets must be in [1, n/2]. No closed
// form for α is attempted (NaN) except via brute force for tiny n.
func Circulant(n int, offsets []int) Family {
	if n < 3 || len(offsets) == 0 {
		panic("gen: Circulant needs n >= 3 and offsets")
	}
	b := graph.NewBuilder(n)
	seen := map[[2]int32]bool{}
	for _, off := range offsets {
		if off < 1 || 2*off > n {
			panic(fmt.Sprintf("gen: Circulant offset %d outside [1, n/2]", off))
		}
		for u := 0; u < n; u++ {
			v := (u + off) % n
			e := [2]int32{int32(min(u, v)), int32(max(u, v))}
			if !seen[e] {
				seen[e] = true
				b.AddEdge(u, v)
			}
		}
	}
	g := b.MustBuild()
	alpha := math.NaN()
	exact := false
	if n <= 20 {
		alpha = bruteAlpha(g)
		exact = true
	}
	return Family{Name: "circulant", Graph: g, Alpha: alpha, AlphaExact: exact}
}

// bruteAlpha computes exact vertex expansion by subset enumeration; only
// used at construction time for tiny fixed graphs (n <= 22). Kept local to
// avoid an import cycle with internal/expansion.
func bruteAlpha(g *graph.Graph) float64 {
	n := g.N()
	if n < 2 || n > 22 {
		panic("gen: bruteAlpha out of range")
	}
	nbr := make([]uint32, n)
	for u := 0; u < n; u++ {
		var m uint32
		for _, v := range g.Neighbors(u) {
			m |= 1 << uint(v)
		}
		nbr[u] = m
	}
	half := n / 2
	best := math.Inf(1)
	full := uint32(1)<<uint(n) - 1
	for s := uint32(1); s <= full; s++ {
		size := bits.OnesCount32(s)
		if size > half {
			continue
		}
		var boundary uint32
		rest := s
		for rest != 0 {
			boundary |= nbr[bits.TrailingZeros32(rest)]
			rest &= rest - 1
		}
		boundary &^= s
		if a := float64(bits.OnesCount32(boundary)) / float64(size); a < best {
			best = a
		}
	}
	return best
}

// Lollipop joins a clique of size s to a path of length tail hanging off one
// clique node. The worst cut is the clique (boundary = first path node) when
// s >= tail, giving α = 1/s... but the half containing the path can be
// smaller; we report the clique-side cut which is exact for s >= tail.
func Lollipop(s, tail int) Family {
	if s < 2 || tail < 1 {
		panic("gen: Lollipop needs s >= 2, tail >= 1")
	}
	n := s + tail
	b := graph.NewBuilder(n)
	for u := 0; u < s; u++ {
		for v := u + 1; v < s; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(0, s)
	for i := s; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	half := n / 2
	var alpha float64
	exact := false
	if tail >= half {
		// A path suffix of ⌊n/2⌋ nodes has boundary 1.
		alpha = 1 / float64(half)
		exact = true
	} else {
		// Cut at the clique-path joint: |S| = tail, boundary 1.
		alpha = 1 / float64(tail)
	}
	return Family{Name: "lollipop", Graph: b.MustBuild(), Alpha: alpha, AlphaExact: exact}
}

// BarabasiAlbert grows a scale-free graph by preferential attachment: it
// starts from a clique on m0 = m+1 nodes, then attaches each new node to m
// distinct existing nodes chosen proportionally to their current degree.
// The result has pronounced hubs (heavy-tailed degrees) — a realistic shape
// for phone meshes where a few devices sit in dense spots, and a natural
// stress test for blind gossip's Δ² contention cost. α is unknown (NaN).
func BarabasiAlbert(n, m int, seed uint64) Family {
	if m < 1 || n <= m+1 {
		panic(fmt.Sprintf("gen: BarabasiAlbert(%d, %d) needs n > m+1 >= 2", n, m))
	}
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	// Repeated-endpoints list: node u appears deg(u) times, so sampling a
	// uniform element is preferential attachment.
	var endpoints []int32
	m0 := m + 1
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			b.AddEdge(u, v)
			endpoints = append(endpoints, int32(u), int32(v))
		}
	}
	chosen := make(map[int32]bool, m)
	targets := make([]int32, 0, m)
	for u := m0; u < n; u++ {
		for k := range chosen {
			delete(chosen, k)
		}
		targets = targets[:0]
		for len(chosen) < m {
			v := endpoints[rng.Intn(len(endpoints))]
			if !chosen[v] {
				chosen[v] = true
				targets = append(targets, v)
			}
		}
		// targets preserves selection order, keeping the build a pure
		// function of the seed (map iteration order is randomized).
		for _, v := range targets {
			b.AddEdge(u, int(v))
			endpoints = append(endpoints, int32(u), v)
		}
	}
	return Family{Name: "barabasi-albert", Graph: b.MustBuild(), Alpha: math.NaN(), AlphaExact: false}
}
