package graph

import (
	"strings"
	"testing"
)

func TestDiameterPath(t *testing.T) {
	g := mustPath(t, 6)
	if d := g.Diameter(); d != 5 {
		t.Fatalf("path(6) diameter %d, want 5", d)
	}
}

func TestDiameterCompleteGraph(t *testing.T) {
	b := NewBuilder(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	if d := b.MustBuild().Diameter(); d != 1 {
		t.Fatalf("K5 diameter %d, want 1", d)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if d := b.MustBuild().Diameter(); d != -1 {
		t.Fatalf("disconnected diameter %d, want -1", d)
	}
}

func TestDiameterTiny(t *testing.T) {
	if NewBuilder(1).MustBuild().Diameter() != -1 {
		t.Fatal("single node diameter should be -1 (undefined)")
	}
}

func TestAveragePathLengthPath3(t *testing.T) {
	// path(3): distances 0-1:1, 0-2:2, 1-2:1 -> mean over ordered pairs =
	// (1+2+1)*2/6 = 8/6.
	g := mustPath(t, 3)
	want := 8.0 / 6.0
	if got := g.AveragePathLength(); got != want {
		t.Fatalf("APL %v, want %v", got, want)
	}
}

func TestAveragePathLengthDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if got := b.MustBuild().AveragePathLength(); got != -1 {
		t.Fatalf("APL %v, want -1", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mustPath(t, 5) // degrees: 1,2,2,2,1
	h := g.DegreeHistogram()
	if len(h) != 3 || h[0] != 0 || h[1] != 2 || h[2] != 3 {
		t.Fatalf("histogram %v", h)
	}
}

func TestAverageDegree(t *testing.T) {
	g := mustPath(t, 5)
	if got := g.AverageDegree(); got != 8.0/5 {
		t.Fatalf("avg degree %v", got)
	}
	if NewBuilder(0).MustBuild().AverageDegree() != 0 {
		t.Fatal("empty graph avg degree")
	}
}

func TestDOTExport(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	dot := g.DOT("demo")
	for _, want := range []string{"graph \"demo\" {", "0 -- 1;", "2;", "}"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}
