package matching

import (
	"mobiletel/internal/xrand"
)

// Random matching strategies. Theorem V.2's proof "analyzes PPUSH as a
// random matching strategy": each left node proposes to a random right
// neighbor, each right node accepts one proposal — one round of that
// process builds a matching, and the theorem bounds how quickly repetition
// approaches a maximum matching. The functions here isolate that process
// from the full simulator so its approximation behavior can be measured and
// tested directly against Hopcroft–Karp optima.

// RandomGreedyMatching builds a maximal matching by scanning edges in
// random order and keeping every edge whose endpoints are both free. By the
// classic maximal-matching bound it is at least half the optimum.
// It returns the matched pairs as (left, right) index pairs.
func (b *Bipartite) RandomGreedyMatching(rng *xrand.RNG) [][2]int32 {
	type edge struct{ l, r int32 }
	edges := make([]edge, 0, b.Edges())
	for l, nbrs := range b.Adj {
		for _, r := range nbrs {
			edges = append(edges, edge{int32(l), r})
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	usedL := make([]bool, b.L)
	usedR := make([]bool, b.R)
	var out [][2]int32
	for _, e := range edges {
		if !usedL[e.l] && !usedR[e.r] {
			usedL[e.l] = true
			usedR[e.r] = true
			out = append(out, [2]int32{e.l, e.r})
		}
	}
	return out
}

// ProposalRoundMatching simulates one round of the PPUSH proposal process
// on the bipartite graph: every free left node proposes to a uniformly
// random free right neighbor; every right node with proposals accepts one
// uniformly. freeL/freeR mark nodes still unmatched (nil means all free).
// It returns the pairs matched in this round.
func (b *Bipartite) ProposalRoundMatching(freeL, freeR []bool, rng *xrand.RNG) [][2]int32 {
	proposals := make(map[int32][]int32) // right -> proposing lefts
	var rightOrder []int32
	for l := 0; l < b.L; l++ {
		if freeL != nil && !freeL[l] {
			continue
		}
		// Count free right neighbors, then pick uniformly.
		count := 0
		for _, r := range b.Adj[l] {
			if freeR == nil || freeR[r] {
				count++
			}
		}
		if count == 0 {
			continue
		}
		pick := rng.Intn(count)
		for _, r := range b.Adj[l] {
			if freeR == nil || freeR[r] {
				if pick == 0 {
					if len(proposals[r]) == 0 {
						rightOrder = append(rightOrder, r)
					}
					proposals[r] = append(proposals[r], int32(l))
					break
				}
				pick--
			}
		}
	}
	var out [][2]int32
	for _, r := range rightOrder {
		candidates := proposals[r]
		chosen := candidates[0]
		if len(candidates) > 1 {
			chosen = candidates[rng.Intn(len(candidates))]
		}
		out = append(out, [2]int32{chosen, r})
	}
	return out
}

// ProposalProcessMatching iterates ProposalRoundMatching for rounds rounds
// with PPUSH's pool semantics: right nodes leave the pool once matched
// (an informed node stops being a target), but left nodes keep proposing
// every round (informed nodes never stop pushing). This is exactly the
// process Theorem V.2 analyzes; unlike both-sides-greedy accumulation it
// converges to covering every reachable right node, not merely to a maximal
// matching. It returns the number of right nodes covered.
func (b *Bipartite) ProposalProcessMatching(rounds int, rng *xrand.RNG) int {
	freeR := make([]bool, b.R)
	for i := range freeR {
		freeR[i] = true
	}
	total := 0
	for round := 0; round < rounds; round++ {
		pairs := b.ProposalRoundMatching(nil, freeR, rng)
		for _, p := range pairs {
			freeR[p[1]] = false
		}
		total += len(pairs)
	}
	return total
}
