package matching

import (
	"testing"
	"testing/quick"

	"mobiletel/internal/expansion"
	"mobiletel/internal/graph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/xrand"
)

func TestPerfectMatchingOnCompleteBipartite(t *testing.T) {
	b := NewBipartite(5, 5)
	for l := 0; l < 5; l++ {
		for r := 0; r < 5; r++ {
			b.AddEdge(l, r)
		}
	}
	size, mL, mR := b.MaxMatching()
	if size != 5 {
		t.Fatalf("K_{5,5} matching size %d, want 5", size)
	}
	if err := ValidateMatching(b, mL, mR); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyBipartite(t *testing.T) {
	b := NewBipartite(3, 4)
	size, mL, mR := b.MaxMatching()
	if size != 0 {
		t.Fatalf("edgeless graph matching size %d", size)
	}
	if err := ValidateMatching(b, mL, mR); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSides(t *testing.T) {
	b := NewBipartite(0, 0)
	if size, _, _ := b.MaxMatching(); size != 0 {
		t.Fatalf("empty graph matching size %d", size)
	}
}

func TestKnownSmallInstance(t *testing.T) {
	// Left 0 connects to right {0}, left 1 to {0,1}, left 2 to {1}.
	// Maximum matching is 3: 0-0 forces 1-1 forces 2 unmatched? No:
	// 0-0, 1-1... then 2-? 2 only likes 1. Max = 2? Try 0-0, 2-1, 1 unmatched
	// => 2. Augment: 1-0? taken. Actually: edges 0-0,1-0,1-1,2-1; a matching
	// of size 2 is maximum (vertex cover {0R,1R} has size 2).
	b := NewBipartite(3, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	b.AddEdge(2, 1)
	size, _, _ := b.MaxMatching()
	if size != 2 {
		t.Fatalf("matching size %d, want 2", size)
	}
}

func TestHopcroftKarpMatchesBruteForce(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		l, r := 1+rng.Intn(8), 1+rng.Intn(8)
		b := NewBipartite(l, r)
		for i := 0; i < l; i++ {
			for j := 0; j < r; j++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(i, j)
				}
			}
		}
		fast, mL, mR := b.MaxMatching()
		if err := ValidateMatching(b, mL, mR); err != nil {
			return false
		}
		return fast == b.MaxMatchingBrute()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEdgesTolerated(t *testing.T) {
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 0)
	b.AddEdge(1, 1)
	size, _, _ := b.MaxMatching()
	if size != 2 {
		t.Fatalf("size %d, want 2", size)
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddEdge did not panic")
		}
	}()
	NewBipartite(2, 2).AddEdge(0, 5)
}

func TestCutGraphPath(t *testing.T) {
	f := gen.Path(6)
	inSet := []bool{true, true, true, false, false, false}
	b, left, right := CutGraph(f.Graph, inSet)
	if b.L != 3 || b.R != 3 {
		t.Fatalf("cut sides %d,%d", b.L, b.R)
	}
	if b.Edges() != 1 {
		t.Fatalf("cut edges %d, want 1 (the 2-3 edge)", b.Edges())
	}
	if left[2] != 2 || right[0] != 3 {
		t.Fatalf("translation tables wrong: left=%v right=%v", left, right)
	}
	if Nu(f.Graph, inSet) != 1 {
		t.Fatalf("ν = %d, want 1", Nu(f.Graph, inSet))
	}
}

func TestNuOnCliqueHalfCut(t *testing.T) {
	f := gen.Clique(8)
	inSet := make([]bool, 8)
	for i := 0; i < 4; i++ {
		inSet[i] = true
	}
	if nu := Nu(f.Graph, inSet); nu != 4 {
		t.Fatalf("K_8 half-cut ν = %d, want 4", nu)
	}
}

func TestLemmaV1OnKnownFamilies(t *testing.T) {
	// Lemma V.1: γ >= α/4. This is a theorem — a violation indicates a bug
	// in our matching or expansion code.
	families := []gen.Family{
		gen.Clique(8),
		gen.Path(10),
		gen.Cycle(12),
		gen.Star(9),
		gen.LineOfStars(3, 3),
		gen.RingOfCliques(3, 4),
		gen.Barbell(5),
		gen.CompleteBinaryTree(3),
	}
	for _, f := range families {
		gamma := GammaExact(f.Graph)
		alpha, _ := expansion.Exact(f.Graph)
		if gamma < alpha/4 {
			t.Errorf("%s: γ=%.4f < α/4=%.4f — Lemma V.1 violated", f.Name, gamma, alpha/4)
		}
	}
}

func TestLemmaV1OnRandomGraphs(t *testing.T) {
	rng := xrand.New(2024)
	for trial := 0; trial < 25; trial++ {
		g := randomConnected(rng, 7+trial%6, 0.4)
		gamma := GammaExact(g)
		alpha, _ := expansion.Exact(g)
		if gamma < alpha/4 {
			t.Fatalf("random graph %v: γ=%.4f < α/4=%.4f — Lemma V.1 violated", g, gamma, alpha/4)
		}
	}
}

func TestGammaAtMostOne(t *testing.T) {
	// ν(B(S)) ≤ |S| so γ ≤ 1 for any graph.
	rng := xrand.New(5)
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(rng, 8, 0.5)
		if gamma := GammaExact(g); gamma > 1 {
			t.Fatalf("γ=%v > 1", gamma)
		}
	}
}

func TestGammaExactBoundsChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized GammaExact did not panic")
		}
	}()
	GammaExact(gen.Cycle(21).Graph)
}

func TestValidateMatchingCatchesCorruption(t *testing.T) {
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 1)
	_, mL, mR := b.MaxMatching()

	// Corrupt: break partner symmetry.
	badR := append([]int32(nil), mR...)
	badR[0] = -1
	if err := ValidateMatching(b, mL, badR); err == nil {
		t.Fatal("asymmetric pairing not caught")
	}

	// Corrupt: claim a non-edge.
	badL := []int32{1, 0}
	badR2 := []int32{1, 0}
	if err := ValidateMatching(b, badL, badR2); err == nil {
		t.Fatal("non-edge pair not caught")
	}

	// Corrupt: wrong lengths.
	if err := ValidateMatching(b, mL[:1], mR); err == nil {
		t.Fatal("length mismatch not caught")
	}
}

func randomConnected(rng *xrand.RNG, n int, p float64) *graph.Graph {
	for {
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		if g.Connected() {
			return g
		}
	}
}

func BenchmarkMaxMatching1000(b *testing.B) {
	rng := xrand.New(1)
	bp := NewBipartite(1000, 1000)
	for l := 0; l < 1000; l++ {
		for k := 0; k < 5; k++ {
			bp.AddEdge(l, rng.Intn(1000))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.MaxMatching()
	}
}

func BenchmarkCutMatching(b *testing.B) {
	f := gen.RingOfCliques(20, 10)
	inSet := make([]bool, f.N())
	for i := 0; i < f.N()/2; i++ {
		inSet[i] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Nu(f.Graph, inSet)
	}
}
