package matching

import (
	"testing"

	"mobiletel/internal/xrand"
)

// validatePairs checks a pair list is a matching on b.
func validatePairs(t *testing.T, b *Bipartite, pairs [][2]int32) {
	t.Helper()
	usedL := make(map[int32]bool)
	usedR := make(map[int32]bool)
	for _, p := range pairs {
		if usedL[p[0]] || usedR[p[1]] {
			t.Fatalf("node reused in %v", pairs)
		}
		usedL[p[0]] = true
		usedR[p[1]] = true
		found := false
		for _, r := range b.Adj[p[0]] {
			if r == p[1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("pair %v is not an edge", p)
		}
	}
}

func randomBipartite(rng *xrand.RNG, l, r int, p float64) *Bipartite {
	b := NewBipartite(l, r)
	for i := 0; i < l; i++ {
		for j := 0; j < r; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b
}

func TestRandomGreedyIsValidAndHalfOptimal(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		b := randomBipartite(rng, 3+rng.Intn(10), 3+rng.Intn(10), 0.3)
		pairs := b.RandomGreedyMatching(rng)
		validatePairs(t, b, pairs)
		opt, _, _ := b.MaxMatching()
		if 2*len(pairs) < opt {
			t.Fatalf("greedy %d below half of optimum %d", len(pairs), opt)
		}
	}
}

func TestRandomGreedyMaximal(t *testing.T) {
	// A greedy matching must be maximal: no edge with both endpoints free.
	rng := xrand.New(9)
	b := randomBipartite(rng, 12, 12, 0.25)
	pairs := b.RandomGreedyMatching(rng)
	usedL := make([]bool, b.L)
	usedR := make([]bool, b.R)
	for _, p := range pairs {
		usedL[p[0]] = true
		usedR[p[1]] = true
	}
	for l, nbrs := range b.Adj {
		for _, r := range nbrs {
			if !usedL[l] && !usedR[r] {
				t.Fatalf("edge (%d,%d) has both endpoints free; not maximal", l, r)
			}
		}
	}
}

func TestProposalRoundIsValidMatching(t *testing.T) {
	rng := xrand.New(11)
	b := randomBipartite(rng, 20, 20, 0.2)
	pairs := b.ProposalRoundMatching(nil, nil, rng)
	validatePairs(t, b, pairs)
}

func TestProposalProcessConvergesToOptimum(t *testing.T) {
	// On a perfect-matching instance (identity + noise), enough proposal
	// rounds must reach the optimum — the Theorem V.2 limit behavior.
	rng := xrand.New(13)
	m := 64
	b := NewBipartite(m, m)
	for i := 0; i < m; i++ {
		b.AddEdge(i, i)
		for k := 0; k < 4; k++ {
			b.AddEdge(i, rng.Intn(m))
		}
	}
	opt, _, _ := b.MaxMatching()
	if opt != m {
		t.Fatalf("planted instance optimum %d, want %d", opt, m)
	}
	got := b.ProposalProcessMatching(200, rng)
	if got != m {
		t.Fatalf("proposal process covered %d of %d right nodes after 200 rounds", got, m)
	}
}

func TestProposalProcessMonotoneInRounds(t *testing.T) {
	// More rounds can only help (matched nodes never unmatch).
	build := func() *Bipartite {
		rng := xrand.New(17)
		return randomBipartite(rng, 40, 40, 0.1)
	}
	prev := 0
	for _, rounds := range []int{1, 2, 4, 8, 16} {
		got := build().ProposalProcessMatching(rounds, xrand.New(19))
		if got < prev {
			t.Fatalf("matching shrank from %d to %d at %d rounds", prev, got, rounds)
		}
		prev = got
	}
}

func TestProposalProcessSingleRoundContention(t *testing.T) {
	// Star contention: all left nodes see one right node plus their planted
	// partner. One round must match at most (1 attractor + planted hits).
	m := 32
	b := NewBipartite(m, m+1)
	for i := 0; i < m; i++ {
		b.AddEdge(i, m) // shared attractor
		b.AddEdge(i, i) // planted partner
	}
	rng := xrand.New(23)
	got := b.ProposalProcessMatching(1, rng)
	// Expected ~1 + m/2 (half propose to their planted partner). Assert the
	// contention really bites: far below m.
	if got > 3*m/4 {
		t.Fatalf("one contended round matched %d of %d; contention not modeled", got, m)
	}
	// And that repetition covers every right node (m planted + attractor).
	if full := b.ProposalProcessMatching(100, xrand.New(29)); full != m+1 {
		t.Fatalf("repetition covered %d of %d right nodes", full, m+1)
	}
}
