// Package matching implements maximum bipartite matching and the cut
// machinery of Section V of the paper.
//
// For a graph G = (V, E) and S ⊂ V, B(S) is the bipartite graph with
// bipartitions (S, V∖S) and the edges of E crossing the cut. The edge
// independence number ν(B(S)) — the size of a maximum matching on B(S) —
// bounds the number of concurrent connections the mobile telephone model can
// support across the cut, because every node participates in at most one
// connection per round. Lemma V.1 relates this to vertex expansion:
//
//	γ = min over S, |S| ≤ n/2 of ν(B(S))/|S|  satisfies  γ ≥ α/4.
//
// The package provides Hopcroft–Karp maximum matching, cut-matching helpers,
// and a brute-force matcher used to cross-validate on small graphs.
package matching

import (
	"fmt"
	"math/bits"

	"mobiletel/internal/graph"
)

// Bipartite is an explicit bipartite graph with left nodes 0..L-1 and right
// nodes 0..R-1 and adjacency from left to right.
type Bipartite struct {
	L, R int
	Adj  [][]int32 // Adj[l] lists right-side neighbors of left node l
}

// NewBipartite returns an empty bipartite graph with the given sides.
func NewBipartite(l, r int) *Bipartite {
	if l < 0 || r < 0 {
		panic("matching: negative bipartition size")
	}
	return &Bipartite{L: l, R: r, Adj: make([][]int32, l)}
}

// AddEdge records edge (l, r) between left node l and right node r.
// Duplicate edges are tolerated (they cannot change the matching size).
func (b *Bipartite) AddEdge(l, r int) {
	if l < 0 || l >= b.L || r < 0 || r >= b.R {
		panic(fmt.Sprintf("matching: edge (%d,%d) out of range (%d,%d)", l, r, b.L, b.R))
	}
	b.Adj[l] = append(b.Adj[l], int32(r))
}

// Edges returns the total number of stored edges.
func (b *Bipartite) Edges() int {
	total := 0
	for _, a := range b.Adj {
		total += len(a)
	}
	return total
}

const unmatched = int32(-1)

// MaxMatching computes a maximum matching with the Hopcroft–Karp algorithm
// in O(E·√V). It returns the matching size and the pairing arrays:
// matchL[l] = right partner of l or -1, matchR[r] = left partner of r or -1.
func (b *Bipartite) MaxMatching() (size int, matchL, matchR []int32) {
	matchL = make([]int32, b.L)
	matchR = make([]int32, b.R)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}

	const inf = int32(1<<31 - 1)
	dist := make([]int32, b.L)
	queue := make([]int32, 0, b.L)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < b.L; l++ {
			if matchL[l] == unmatched {
				dist[l] = 0
				queue = append(queue, int32(l))
			} else {
				dist[l] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			l := queue[head]
			for _, r := range b.Adj[l] {
				next := matchR[r]
				if next == unmatched {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[l] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}

	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range b.Adj[l] {
			next := matchR[r]
			if next == unmatched || (dist[next] == dist[l]+1 && dfs(next)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := int32(0); l < int32(b.L); l++ {
			if matchL[l] == unmatched && dfs(l) {
				size++
			}
		}
	}
	return size, matchL, matchR
}

// MaxMatchingBrute computes the maximum matching size by exhaustive search
// over left-node assignments. Exponential; used only to cross-validate
// Hopcroft–Karp on small instances (L ≤ ~12).
func (b *Bipartite) MaxMatchingBrute() int {
	usedR := make([]bool, b.R)
	var rec func(l int) int
	rec = func(l int) int {
		if l == b.L {
			return 0
		}
		// Option 1: leave l unmatched.
		best := rec(l + 1)
		// Option 2: match l to each free neighbor.
		for _, r := range b.Adj[l] {
			if !usedR[r] {
				usedR[r] = true
				if v := 1 + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}

// CutGraph builds B(S) for graph g and the cut S given as a membership
// slice: left nodes are the members of S (in ascending node order), right
// nodes the non-members. It returns the bipartite graph and the node-index
// translation tables leftNodes and rightNodes.
func CutGraph(g *graph.Graph, inSet []bool) (b *Bipartite, leftNodes, rightNodes []int) {
	n := g.N()
	if len(inSet) != n {
		panic("matching: CutGraph set length mismatch")
	}
	leftIdx := make([]int32, n)
	rightIdx := make([]int32, n)
	for u := 0; u < n; u++ {
		if inSet[u] {
			leftIdx[u] = int32(len(leftNodes))
			leftNodes = append(leftNodes, u)
		} else {
			rightIdx[u] = int32(len(rightNodes))
			rightNodes = append(rightNodes, u)
		}
	}
	b = NewBipartite(len(leftNodes), len(rightNodes))
	for _, u := range leftNodes {
		for _, v := range g.Neighbors(u) {
			if !inSet[v] {
				b.AddEdge(int(leftIdx[u]), int(rightIdx[v]))
			}
		}
	}
	return b, leftNodes, rightNodes
}

// Nu returns ν(B(S)), the maximum number of concurrent cut connections the
// mobile telephone model supports across the cut S. For a single cut; to
// evaluate many cuts of the same graph, use a CutMatcher.
func Nu(g *graph.Graph, inSet []bool) int {
	return NewCutMatcher(g).Nu(inSet)
}

// CutMatcher computes ν(B(S)) for many cuts S of one fixed graph, reusing
// every working array — the side-index translation tables, the flat CSR cut
// adjacency, and the Hopcroft–Karp matching/distance/queue scratch — across
// calls. GammaExact enumerates 2^n cuts per graph, so the per-cut Bipartite
// and pairing-array allocations dominated its profile before this existed.
type CutMatcher struct {
	g *graph.Graph
	n int

	leftOf, rightOf []int32 // node -> index within its side (valid per side)
	lefts           []int32 // members of S in ascending node order
	adjOff          []int32 // CSR offsets into adjDat, len L+1
	adjDat          []int32 // right-side neighbor indices across the cut

	// Hopcroft–Karp state, sliced to (L, R) per call.
	curL, curR     int
	matchL, matchR []int32
	dist           []int32
	queue          []int32
}

// NewCutMatcher returns a reusable ν(B(S)) evaluator for g.
func NewCutMatcher(g *graph.Graph) *CutMatcher {
	n := g.N()
	return &CutMatcher{
		g:       g,
		n:       n,
		leftOf:  make([]int32, n),
		rightOf: make([]int32, n),
		lefts:   make([]int32, 0, n),
		adjOff:  make([]int32, n+1),
		adjDat:  make([]int32, 0, 2*g.M()),
		matchL:  make([]int32, n),
		matchR:  make([]int32, n),
		dist:    make([]int32, n),
		queue:   make([]int32, 0, n),
	}
}

const hkInf = int32(1<<31 - 1)

// Nu returns ν(B(S)) for the cut S given as a membership slice of length n.
// The algorithm is Hopcroft–Karp, identical to Bipartite.MaxMatching.
func (c *CutMatcher) Nu(inSet []bool) int {
	if len(inSet) != c.n {
		panic("matching: CutMatcher set length mismatch")
	}
	c.lefts = c.lefts[:0]
	rights := 0
	for u := 0; u < c.n; u++ {
		if inSet[u] {
			c.leftOf[u] = int32(len(c.lefts))
			c.lefts = append(c.lefts, int32(u))
		} else {
			c.rightOf[u] = int32(rights)
			rights++
		}
	}
	c.curL, c.curR = len(c.lefts), rights

	c.adjDat = c.adjDat[:0]
	c.adjOff[0] = 0
	for i, u := range c.lefts {
		for _, v := range c.g.Neighbors(int(u)) {
			if !inSet[v] {
				c.adjDat = append(c.adjDat, c.rightOf[v])
			}
		}
		c.adjOff[i+1] = int32(len(c.adjDat))
	}

	for l := 0; l < c.curL; l++ {
		c.matchL[l] = unmatched
	}
	for r := 0; r < c.curR; r++ {
		c.matchR[r] = unmatched
	}
	size := 0
	for c.bfs() {
		for l := int32(0); l < int32(c.curL); l++ {
			if c.matchL[l] == unmatched && c.dfs(l) {
				size++
			}
		}
	}
	return size
}

func (c *CutMatcher) bfs() bool {
	c.queue = c.queue[:0]
	for l := 0; l < c.curL; l++ {
		if c.matchL[l] == unmatched {
			c.dist[l] = 0
			c.queue = append(c.queue, int32(l))
		} else {
			c.dist[l] = hkInf
		}
	}
	found := false
	for head := 0; head < len(c.queue); head++ {
		l := c.queue[head]
		for _, r := range c.adjDat[c.adjOff[l]:c.adjOff[l+1]] {
			next := c.matchR[r]
			if next == unmatched {
				found = true
			} else if c.dist[next] == hkInf {
				c.dist[next] = c.dist[l] + 1
				c.queue = append(c.queue, next)
			}
		}
	}
	return found
}

func (c *CutMatcher) dfs(l int32) bool {
	for _, r := range c.adjDat[c.adjOff[l]:c.adjOff[l+1]] {
		next := c.matchR[r]
		if next == unmatched || (c.dist[next] == c.dist[l]+1 && c.dfs(next)) {
			c.matchL[l] = r
			c.matchR[r] = l
			return true
		}
	}
	c.dist[l] = hkInf
	return false
}

// GammaExact computes γ = min over non-empty S, |S| ≤ n/2 of ν(B(S))/|S| by
// exhaustive enumeration. Lemma V.1 asserts γ ≥ α/4. Feasible for n ≤ ~16.
// Cuts are enumerated in Gray-code order so the membership slice updates by
// one flip per step, and one CutMatcher serves every cut.
func GammaExact(g *graph.Graph) float64 {
	n := g.N()
	if n < 2 || n > 20 {
		panic("matching: GammaExact needs 2 <= n <= 20")
	}
	half := n / 2
	best := float64(n) // γ ≤ 1 ≤ n always; a safe upper sentinel
	inSet := make([]bool, n)
	size := 0
	cm := NewCutMatcher(g)
	total := uint32(1) << uint(n)
	for i := uint32(1); i < total; i++ {
		u := bits.TrailingZeros32(i)
		if inSet[u] {
			inSet[u] = false
			size--
		} else {
			inSet[u] = true
			size++
		}
		if size < 1 || size > half {
			continue
		}
		ratio := float64(cm.Nu(inSet)) / float64(size)
		if ratio < best {
			best = ratio
		}
	}
	return best
}

// ValidateMatching checks that (matchL, matchR) is a consistent matching on
// b: partners agree, every matched pair is an edge, and no node is reused.
func ValidateMatching(b *Bipartite, matchL, matchR []int32) error {
	if len(matchL) != b.L || len(matchR) != b.R {
		return fmt.Errorf("matching: pairing array lengths (%d,%d) != (%d,%d)",
			len(matchL), len(matchR), b.L, b.R)
	}
	for l, r := range matchL {
		if r == unmatched {
			continue
		}
		if r < 0 || int(r) >= b.R {
			return fmt.Errorf("matching: matchL[%d]=%d out of range", l, r)
		}
		if matchR[r] != int32(l) {
			return fmt.Errorf("matching: matchL[%d]=%d but matchR[%d]=%d", l, r, r, matchR[r])
		}
		found := false
		for _, cand := range b.Adj[l] {
			if cand == r {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("matching: pair (%d,%d) is not an edge", l, r)
		}
	}
	for r, l := range matchR {
		if l != unmatched && matchL[l] != int32(r) {
			return fmt.Errorf("matching: matchR[%d]=%d but matchL[%d]=%d", r, l, l, matchL[l])
		}
	}
	return nil
}
