package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mobiletel/internal/obs"
)

// workerPool is the persistent dispatch core behind parallelFor: workers-1
// long-lived goroutines created once (start), parked on an epoch barrier, so
// a phase dispatch is one atomic publish plus at most one Broadcast instead
// of `go func` × workers and a WaitGroup per phase. At paper-scale n (a few
// thousand nodes, thousands of rounds) the per-round dispatch cost is what
// decides whether parallelism pays at all — see DESIGN §14.
//
// The happens-before discipline is the epoch-publish idiom, which the
// happensbefore analyzer checks statically (and race-smoke dynamically):
//
//	dispatcher                         worker w
//	---------                          --------
//	fn, bounds, ph, prof = ...         e := await(last)   // acquire: epoch.Load
//	done.Store(0)                      read fn, bounds, ph, prof
//	epoch.Add(1)       // release      run fn(w, bounds[w], bounds[w+1])
//	run own chunk                      done.Add(1)        // release
//	spin until done == workers-1       last = e
//	fn, bounds = nil, nil  // un-pin
//
// Every plain field (fn, bounds, ph, prof, profOn) is written strictly
// before the epoch advance and read strictly after the worker observes the
// new epoch, so the atomic epoch carries the release/acquire edge; the done
// counter carries the reverse edge before the dispatcher clears the fields.
// Clearing fn/bounds after the join matters beyond hygiene: a parked pool
// must not pin its engine, or the engine finalizer that stops the pool could
// never fire.
//
// All spin loops call runtime.Gosched every iteration: the pool must stay
// live-lock free at GOMAXPROCS=1 (testing.AllocsPerRun pins exactly that),
// where a worker can only observe the epoch after the dispatcher yields.
type workerPool struct {
	// Dispatch slots, published by the epoch advance (see above).
	fn     func(w, lo, hi int)
	bounds []int
	ph     obs.Phase
	prof   *obs.Profiler
	profOn bool

	epoch atomic.Uint64
	done  atomic.Int64

	mu     sync.Mutex
	cond   *sync.Cond
	parked int // workers blocked in cond.Wait, guarded by mu

	workers int  // total worker indices including the dispatching caller (w=0)
	closed  bool // set by close; dispatch after close is a caller bug
}

// poolSpin is how many epoch checks a worker makes (yielding between each)
// before parking on the condition variable. Back-to-back phase dispatches —
// the steady state of a round — land within the spin window; the Cond is the
// fallback for idle engines and single-P hosts, where spinning is wasted.
const poolSpin = 64

// newWorkerPool creates and starts a pool driving workers-1 goroutines.
func newWorkerPool(workers int) *workerPool {
	p := &workerPool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	for w := 1; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// dispatch runs fn over the chunks in bounds — fn(w, bounds[w], bounds[w+1])
// for every worker index — returning after all chunks complete. The caller
// runs chunk 0 inline. When prof is non-nil the dispatch records each
// worker's busy time under ph; fused phase bodies self-time their sweeps, so
// their dispatches pass selfTimed=true and only the caller records wall time
// (see parallelForFused). Zero allocations on every path: the dispatch slots
// are plain field stores and the barrier is two atomics plus a Broadcast.
//
//mtmlint:hotpath
func (p *workerPool) dispatch(ph obs.Phase, fn func(w, lo, hi int), bounds []int, prof *obs.Profiler, selfTimed bool) {
	if p.closed {
		panic("sim: dispatch on a closed engine (Run/RunRounds after Close)")
	}
	p.fn, p.bounds = fn, bounds
	p.ph, p.prof = ph, prof
	p.profOn = prof != nil && !selfTimed
	p.done.Store(0)
	p.epoch.Add(1)
	p.mu.Lock()
	if p.parked > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	if p.profOn {
		t0 := prof.Clock()
		fn(0, bounds[0], bounds[1])
		prof.AddBusy(ph, 0, prof.Clock()-t0)
	} else {
		fn(0, bounds[0], bounds[1])
	}
	for p.done.Load() < int64(p.workers-1) {
		runtime.Gosched()
	}
	p.fn, p.bounds = nil, nil
	p.prof = nil
}

// worker is the loop each pool goroutine runs: await the next epoch, read
// the published dispatch slots, run the chunk, signal done. A nil fn is the
// close signal.
func (p *workerPool) worker(w int) {
	last := uint64(0)
	for {
		last = p.await(last)
		fn := p.fn
		if fn == nil {
			p.done.Add(1)
			return
		}
		lo, hi := p.bounds[w], p.bounds[w+1]
		if p.profOn {
			prof, ph := p.prof, p.ph
			t0 := prof.Clock()
			fn(w, lo, hi)
			prof.AddBusy(ph, w, prof.Clock()-t0)
		} else {
			fn(w, lo, hi)
		}
		p.done.Add(1)
	}
}

// await blocks until the epoch moves past last and returns the new value:
// a bounded yield-spin first (covering back-to-back dispatches), then a
// park on the condition variable. The parked path re-checks the epoch under
// mu after registering in parked, and the dispatcher broadcasts under mu
// after advancing the epoch, so a wakeup can never be missed.
func (p *workerPool) await(last uint64) uint64 {
	for i := 0; i < poolSpin; i++ {
		if e := p.epoch.Load(); e != last {
			return e
		}
		runtime.Gosched()
	}
	p.mu.Lock()
	for {
		if e := p.epoch.Load(); e != last {
			p.mu.Unlock()
			return e
		}
		p.parked++
		p.cond.Wait()
		p.parked--
	}
}

// close advances the epoch with a nil fn — the workers' exit signal — and
// joins them. Idempotent; the pool cannot be restarted (Engine.Close is
// terminal, and the finalizer path only runs when the engine is garbage).
func (p *workerPool) close() {
	if p.closed {
		return
	}
	p.closed = true
	p.fn, p.bounds = nil, nil
	p.done.Store(0)
	p.epoch.Add(1)
	p.mu.Lock()
	if p.parked > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	for p.done.Load() < int64(p.workers-1) {
		runtime.Gosched()
	}
}
