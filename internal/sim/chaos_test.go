// Chaos soak: every fault class at once, audited every round.
package sim_test

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/fault"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
)

// TestChaosSoak runs the full fault repertoire simultaneously — rate-driven
// churn, corruption bursts, message loss, tag flips, and two partition
// windows — with Config.Check auditing every round's bookkeeping (the engine
// panics on the first violated invariant). After the final partition heals
// the network must still re-converge to the correct leader: faults delay the
// election, they never wedge it or unbalance the books.
func TestChaosSoak(t *testing.T) {
	const finalHeal = 80
	cases := []struct {
		name    string
		family  gen.Family
		tagBits func(n int) int
		build   func(n int) []sim.Protocol
		uids    func(n int) []uint64
		// exactMin: corruption and loss cannot destroy the minimum for
		// blind gossip, so it must win. Knockout protocols advertise
		// elimination bits, and an adversarially flipped tag can knock out
		// the true minimum — agreement on some legitimate UID is the
		// guarantee that survives tag corruption.
		exactMin bool
	}{
		{
			name:    "expander/asyncbitconv",
			family:  gen.Expander(2048, 8, 19),
			tagBits: func(n int) int { return core.TagBitsNeeded(core.DefaultBitConvParams(n, 8)) },
			build: func(n int) []sim.Protocol {
				p, _ := core.NewAsyncBitConvNetwork(core.UniqueUIDs(n, 61), core.DefaultBitConvParams(n, 8), 5)
				return p
			},
			uids: func(n int) []uint64 { return core.UniqueUIDs(n, 61) },
		},
		{
			name:    "torus/blindgossip",
			family:  gen.Torus(64, 32),
			tagBits: func(int) int { return 0 },
			build: func(n int) []sim.Protocol {
				return core.NewBlindGossipNetwork(core.UniqueUIDs(n, 62))
			},
			uids:     func(n int) []uint64 { return core.UniqueUIDs(n, 62) },
			exactMin: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.family.N()
			plan := fault.Plan{
				Seed: 23, CrashRate: 0.01, RecoverRate: 0.3, MaxDown: n / 4,
				ProposalLoss: 0.05, ConnLoss: 0.03, TagFlipRate: 0.01,
				Corruptions: []fault.Burst{
					{Round: 15, Nodes: []int{0, 1, 2, 3, 4, 5, 6, 7}},
					{Round: 45, Nodes: []int{100, 200, 300, 400}},
				},
				Partitions: []fault.Partition{
					{Start: 10, Heal: 40, Parts: 3},
					{Start: 60, Heal: finalHeal, Parts: 2},
				},
			}
			in, err := fault.NewInjector(plan, n)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := sim.New(
				dyngraph.NewStatic(tc.family),
				tc.build(n),
				sim.Config{
					Seed: 23, TagBits: tc.tagBits(n), Workers: 4, MaxRounds: 200_000,
					Faults: in, Check: true,
				},
			)
			if err != nil {
				t.Fatal(err)
			}
			// Gate the stop past the final heal: agreement reached inside a
			// partition window doesn't count as surviving it.
			stop := func(round int, protocols []sim.Protocol) bool {
				return round > finalHeal && sim.AllLeadersEqual(round, protocols)
			}
			res, err := eng.Run(stop)
			if err != nil {
				t.Fatalf("no re-convergence after the final heal: %v", err)
			}
			if res.StabilizedRound <= finalHeal {
				t.Fatalf("stabilized at round %d, before the final heal at %d", res.StabilizedRound, finalHeal)
			}
			uids := tc.uids(n)
			legit := make(map[uint64]bool, n)
			for _, u := range uids {
				legit[u] = true
			}
			min := core.MinUID(uids)
			for i, p := range eng.Protocols() {
				l := p.Leader()
				if tc.exactMin && l != min {
					t.Fatalf("node %d elected leader %d after the chaos, want min UID %d", i, l, min)
				}
				if !legit[l] {
					t.Fatalf("node %d elected leader %d, which is nobody's UID", i, l)
				}
			}
		})
	}
}
