// External test package: uses core protocols, which implement sim.Protocol.
package sim_test

import (
	"sync/atomic"
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
)

// runTraced executes one blind-gossip election with a ring sink attached
// and returns the sink plus the observed per-round stats.
func runTraced(t *testing.T, seed uint64) (*obs.Ring, []sim.RoundStats) {
	t.Helper()
	const n = 32
	ring := obs.NewRing(1 << 20)
	var stats []sim.RoundStats
	eng, err := sim.New(
		dyngraph.NewStatic(gen.RandomRegular(n, 4, 7)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(n, seed)),
		sim.Config{
			Seed:     seed,
			Sink:     ring,
			Observer: func(s sim.RoundStats) { stats = append(stats, s) },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err != nil {
		t.Fatal(err)
	}
	return ring, stats
}

// TestTraceDeterminism is the contract mtmtrace diff relies on: two runs of
// the same (seed, schedule, protocol, config) emit identical event streams.
func TestTraceDeterminism(t *testing.T) {
	a, _ := runTraced(t, 11)
	b, _ := runTraced(t, 11)
	if a.Total() != b.Total() {
		t.Fatalf("event counts differ: %d vs %d", a.Total(), b.Total())
	}
	ae, be := a.Events(), b.Events()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
	c, _ := runTraced(t, 12)
	if a.Total() == c.Total() {
		same := true
		for i, e := range a.Events() {
			if e != c.Events()[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

// TestTraceCountersMatchStats cross-checks the event stream against the
// engine's own RoundStats: per round, the emitted propose/accept/reject/
// connect events must reconcile with the counters, and every proposal must
// be accounted for as accepted, rejected, or lost.
func TestTraceCountersMatchStats(t *testing.T) {
	ring, stats := runTraced(t, 3)
	if ring.Header().N != 32 {
		t.Errorf("header N = %d, want 32", ring.Header().N)
	}

	type counts struct{ proposes, accepts, rejects, connects, starts, ends int }
	perRound := make(map[int]*counts)
	get := func(r int) *counts {
		c := perRound[r]
		if c == nil {
			c = &counts{}
			perRound[r] = c
		}
		return c
	}
	for _, e := range ring.Events() {
		c := get(e.Round)
		switch e.Type {
		case obs.TypeRoundStart:
			c.starts++
		case obs.TypeRoundEnd:
			c.ends++
		case obs.TypePropose:
			c.proposes++
		case obs.TypeAccept:
			c.accepts++
		case obs.TypeReject:
			c.rejects++
		case obs.TypeConnect:
			c.connects++
		}
	}

	for _, s := range stats {
		c := perRound[s.Round]
		if c == nil {
			t.Fatalf("round %d has stats but no events", s.Round)
		}
		if c.starts != 1 || c.ends != 1 {
			t.Errorf("round %d: %d round_start, %d round_end; want 1 each", s.Round, c.starts, c.ends)
		}
		if c.proposes != s.Proposals {
			t.Errorf("round %d: %d propose events, stats say %d", s.Round, c.proposes, s.Proposals)
		}
		if c.accepts != s.Accepts || c.connects != s.Connections {
			t.Errorf("round %d: accepts %d/%d, connects %d/%d (events/stats)",
				s.Round, c.accepts, s.Accepts, c.connects, s.Connections)
		}
		if s.Accepts != s.Connections {
			t.Errorf("round %d: Accepts %d != Connections %d in MTM mode", s.Round, s.Accepts, s.Connections)
		}
		if lost := s.Proposals - s.Accepts - s.Rejects; lost < 0 {
			t.Errorf("round %d: negative lost proposals (%d)", s.Round, lost)
		}
		// Event-stream rejects cover both contention and busy-target losses.
		if c.rejects != c.proposes-c.accepts {
			t.Errorf("round %d: %d reject events, want proposals-accepts = %d",
				s.Round, c.rejects, c.proposes-c.accepts)
		}
	}
}

// TestPhaseProfiler runs profiled parallel elections with a deterministic
// counter clock and checks the mtmprof/v1 report in every dispatch mode:
// the fused default attributes dispatch wall time to the composite phases
// and self-timed busy time to their constituent sweeps, the forced pool
// does the same with real parallel workers, and the legacy spawn core keeps
// its historical per-phase attribution. The flush phase appears exactly
// when tracing is on, the resolved dispatch mode and gate are visible in
// the report, and profiling never perturbs the run (bit-identical Result vs
// the unprofiled engine).
func TestPhaseProfiler(t *testing.T) {
	const (
		n       = 512 // above the spawn gate so the spawn core dispatches in parallel
		workers = 4
	)
	run := func(prof *obs.Profiler, sink obs.Sink, dispatch sim.Dispatch) sim.Result {
		eng, err := sim.New(
			dyngraph.NewStatic(gen.RandomRegular(n, 8, 3)),
			core.NewBlindGossipNetwork(core.UniqueUIDs(n, 9)),
			sim.Config{Seed: 9, Workers: workers, Profiler: prof, Sink: sink, Dispatch: dispatch},
		)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		res, err := eng.Run(sim.AllLeadersEqual)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	newProf := func() *obs.Profiler {
		// Workers read the clock concurrently for busy accounting, so the
		// fake counter must be atomic like the real monotonic clock is safe.
		ticks := new(atomic.Int64)
		return obs.NewProfiler(func() int64 { return ticks.Add(1) })
	}
	report := func(t *testing.T, dispatch sim.Dispatch, want sim.Result) obs.ProfReport {
		t.Helper()
		prof := newProf()
		got := run(prof, obs.NewRing(1<<16), dispatch)
		if got != want {
			t.Fatalf("profiled run diverged from unprofiled: %+v vs %+v", got, want)
		}
		rep := prof.Report()
		if rep.Schema != obs.ProfSchema {
			t.Fatalf("report schema %q, want %q", rep.Schema, obs.ProfSchema)
		}
		if rep.Workers != workers || rep.Rounds != int64(got.RoundsExecuted) {
			t.Fatalf("report workers=%d rounds=%d, want %d/%d", rep.Workers, rep.Rounds, workers, got.RoundsExecuted)
		}
		if rep.WallNS <= 0 || rep.RoundsPerSec <= 0 {
			t.Fatalf("report wall=%d rounds/sec=%v, want positive", rep.WallNS, rep.RoundsPerSec)
		}
		return rep
	}
	want := run(nil, nil, sim.DispatchAuto)

	// The fused phase lists: composites carry the dispatch wall time, the
	// constituent sweeps carry self-timed busy time only.
	fusedWall := []string{"scan_advertise", "decide", "count", "merge",
		"scatter", "accept", "partner_exchange", "end_round", "flush"}
	fusedBusy := []string{"active_scan", "advertise", "partner", "exchange"}

	t.Run("auto", func(t *testing.T) {
		// n=512 is under the pool gate, so auto resolves to inline dispatch
		// on any host — deterministically visible in the report — and an
		// all-inline engine runs the sequential step-4 core, so the report
		// shows bucket_accept instead of the chunk-safe count/merge/scatter/
		// accept pipeline and its partner materialization.
		rep := report(t, sim.DispatchAuto, want)
		if rep.Dispatch != "inline" || rep.GateNodes <= n {
			t.Errorf("auto dispatch resolved as %q (gate %d), want inline gated above n=%d",
				rep.Dispatch, rep.GateNodes, n)
		}
		phases := phaseMap(rep)
		for _, name := range []string{"scan_advertise", "decide", "bucket_accept",
			"exchange", "end_round", "flush"} {
			if p, ok := phases[name]; !ok || p.WallNS <= 0 {
				t.Errorf("phase %q missing or without wall time (%+v)", name, p)
			}
		}
		for _, name := range []string{"active_scan", "advertise"} {
			p, ok := phases[name]
			if !ok || p.BusyNS[0] <= 0 {
				t.Errorf("fused sweep %q missing or without worker-0 busy time (%+v)", name, p)
				continue
			}
			if p.WallNS != 0 {
				t.Errorf("fused sweep %q has wall time %d; the composite dispatch should own it", name, p.WallNS)
			}
		}
		for _, name := range []string{"count", "merge", "scatter", "accept",
			"partner", "partner_exchange"} {
			if _, ok := phases[name]; ok {
				t.Errorf("all-inline engine reported parallel-core phase %q", name)
			}
		}
	})

	t.Run("pool", func(t *testing.T) {
		rep := report(t, sim.DispatchPool, want)
		if rep.Dispatch != "pool" {
			t.Errorf("forced pool resolved as %q", rep.Dispatch)
		}
		if _, ok := phaseMap(rep)["bucket_accept"]; ok {
			t.Error("parallel pool run reported the sequential bucket_accept phase")
		}
		phases := phaseMap(rep)
		for _, name := range fusedWall {
			if p, ok := phases[name]; !ok || p.WallNS <= 0 {
				t.Errorf("phase %q missing or without wall time (%+v)", name, p)
			}
		}
		for _, name := range append(fusedBusy, "decide", "count", "scatter", "accept", "end_round") {
			p, ok := phases[name]
			if !ok {
				t.Errorf("phase %q missing from report", name)
				continue
			}
			if len(p.BusyNS) != workers {
				t.Errorf("phase %q has %d busy slots, want %d", name, len(p.BusyNS), workers)
				continue
			}
			for w, b := range p.BusyNS {
				if b <= 0 {
					t.Errorf("phase %q worker %d has no busy time", name, w)
				}
			}
			if p.Imbalance < 1 {
				t.Errorf("phase %q imbalance %v < 1", name, p.Imbalance)
			}
		}
	})

	t.Run("spawn", func(t *testing.T) {
		// The legacy core: unfused phases, each with wall and per-worker
		// busy time — the historical report shape.
		rep := report(t, sim.DispatchSpawn, want)
		if rep.Dispatch != "spawn" {
			t.Errorf("forced spawn resolved as %q", rep.Dispatch)
		}
		if _, ok := phaseMap(rep)["bucket_accept"]; ok {
			t.Error("parallel spawn run reported the sequential bucket_accept phase")
		}
		phases := phaseMap(rep)
		for _, name := range []string{"active_scan", "advertise", "decide", "count",
			"merge", "scatter", "accept", "partner", "exchange", "end_round", "flush"} {
			p, ok := phases[name]
			if !ok {
				t.Errorf("phase %q missing from report (got %v)", name, rep.Phases)
				continue
			}
			if p.WallNS <= 0 {
				t.Errorf("phase %q has no wall time", name)
			}
			if len(p.BusyNS) != workers {
				t.Errorf("phase %q has %d busy slots, want %d", name, len(p.BusyNS), workers)
			}
			if p.Imbalance < 1 {
				t.Errorf("phase %q imbalance %v < 1", name, p.Imbalance)
			}
		}
		for _, name := range []string{"scan_advertise", "partner_exchange"} {
			if _, ok := phases[name]; ok {
				t.Errorf("spawn core reported fused phase %q", name)
			}
		}
	})

	prof := newProf()
	if run(prof, obs.NewRing(1<<16), sim.DispatchAuto); len(prof.TopPhases(3)) != 3 {
		t.Errorf("TopPhases(3) = %v, want 3 entries", prof.TopPhases(3))
	}

	// An untraced profiled run must not report a flush phase.
	prof2 := newProf()
	run(prof2, nil, sim.DispatchAuto)
	for _, p := range prof2.Report().Phases {
		if p.Phase == "flush" {
			t.Error("untraced run reported a flush phase")
		}
	}
}

// phaseMap indexes a report's phases by wire name.
func phaseMap(rep obs.ProfReport) map[string]obs.PhaseProfile {
	m := make(map[string]obs.PhaseProfile, len(rep.Phases))
	for _, p := range rep.Phases {
		m[p.Phase] = p
	}
	return m
}

// TestTraceClassicalMode checks the classicalFinish emission path: every
// proposal is accepted, and rejects stay zero.
func TestTraceClassicalMode(t *testing.T) {
	const n = 16
	ring := obs.NewRing(1 << 16)
	eng, err := sim.New(
		dyngraph.NewStatic(gen.Clique(n)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(n, 5)),
		sim.Config{Seed: 5, Classical: true, Sink: ring},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err != nil {
		t.Fatal(err)
	}
	if !ring.Header().Classical {
		t.Error("header does not mark the run classical")
	}
	proposes, accepts, rejects := 0, 0, 0
	for _, e := range ring.Events() {
		switch e.Type {
		case obs.TypePropose:
			proposes++
		case obs.TypeAccept:
			accepts++
		case obs.TypeReject:
			rejects++
		}
	}
	if proposes == 0 || proposes != accepts || rejects != 0 {
		t.Errorf("classical trace: proposes=%d accepts=%d rejects=%d; want all proposals accepted",
			proposes, accepts, rejects)
	}
}
