package sim_test

// Self-tests for the conformance checker: it must flag protocols that
// violate the model, and pass well-behaved ones.

import (
	"strings"
	"testing"

	"mobiletel/internal/sim"
)

// politeProto is a minimal well-behaved protocol.
type politeProto struct{}

func (politeProto) Advertise(*sim.Context) uint64 { return 0 }
func (politeProto) Decide(ctx *sim.Context) (int32, bool) {
	if ctx.RNG.Bool() {
		return 0, false
	}
	t, ok := ctx.RandomNeighbor()
	return t, ok
}
func (politeProto) Outgoing(*sim.Context, int32) sim.Message { return sim.Message{} }
func (politeProto) Deliver(*sim.Context, int32, sim.Message) {}
func (politeProto) EndRound(*sim.Context)                    {}
func (politeProto) Leader() uint64                           { return 0 }

func TestConformancePassesPoliteProtocol(t *testing.T) {
	err := sim.CheckConformance(func(int) sim.Protocol { return politeProto{} },
		sim.ConformanceConfig{Seed: 1, Rounds: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// loudProto advertises more bits than it is entitled to.
type loudProto struct{ politeProto }

func (loudProto) Advertise(*sim.Context) uint64 { return 3 }

func TestConformanceCatchesTagViolation(t *testing.T) {
	err := sim.CheckConformance(func(int) sim.Protocol { return loudProto{} },
		sim.ConformanceConfig{Seed: 2, TagBits: 1, Rounds: 20})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("tag violation not caught: %v", err)
	}
}

// chattyProto2 exceeds the message UID budget.
type chattyProto2 struct{ politeProto }

func (chattyProto2) Decide(ctx *sim.Context) (int32, bool) {
	// Even nodes propose, odd nodes receive, so connections actually form
	// and Outgoing's oversized message reaches the engine's check.
	if ctx.Node%2 == 1 {
		return 0, false
	}
	t, ok := ctx.RandomNeighbor()
	return t, ok
}
func (chattyProto2) Outgoing(*sim.Context, int32) sim.Message {
	return sim.Message{UIDs: []uint64{1, 2, 3, 4, 5}}
}

func TestConformanceCatchesMessageViolation(t *testing.T) {
	err := sim.CheckConformance(func(int) sim.Protocol { return chattyProto2{} },
		sim.ConformanceConfig{Seed: 3, Rounds: 20})
	if err == nil {
		t.Fatal("message budget violation not caught")
	}
}

// nondetProto draws randomness outside ctx.RNG, breaking determinism.
type nondetProto struct {
	politeProto
	counter *int
}

func (p nondetProto) Decide(ctx *sim.Context) (int32, bool) {
	*p.counter++
	// A decision that depends on cross-instance shared state: the second
	// conformance run sees different counter values than the first.
	if *p.counter%7 == 0 {
		return 0, false
	}
	t, ok := ctx.RandomNeighbor()
	return t, ok
}

func TestConformanceCatchesNondeterminism(t *testing.T) {
	shared := 0
	err := sim.CheckConformance(func(int) sim.Protocol {
		return nondetProto{counter: &shared}
	}, sim.ConformanceConfig{Seed: 4, Rounds: 40})
	if err == nil || !strings.Contains(err.Error(), "nondeterministic") {
		t.Fatalf("nondeterminism not caught: %v", err)
	}
}
