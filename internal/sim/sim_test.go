package sim_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
)

// probe wraps a random send/receive behavior and records every established
// connection so tests can check engine invariants.
type probe struct {
	id        int32
	mu        *sync.Mutex
	conns     *[][2]int32 // shared log of (self, peer) per delivery
	sentRound map[int]bool
	lastRound int
}

func newProbeNetwork(n int) ([]sim.Protocol, *sync.Mutex, *[][2]int32) {
	mu := &sync.Mutex{}
	log := &[][2]int32{}
	protocols := make([]sim.Protocol, n)
	for i := range protocols {
		protocols[i] = &probe{id: int32(i), mu: mu, conns: log, sentRound: map[int]bool{}}
	}
	return protocols, mu, log
}

func (p *probe) Advertise(*sim.Context) uint64 { return 0 }

func (p *probe) Decide(ctx *sim.Context) (int32, bool) {
	p.lastRound = ctx.Round
	if ctx.RNG.Bool() {
		return 0, false
	}
	t, ok := ctx.RandomNeighbor()
	if !ok {
		return 0, false
	}
	p.sentRound[ctx.Round] = true
	return t, true
}

func (p *probe) Outgoing(*sim.Context, int32) sim.Message { return sim.Message{} }

func (p *probe) Deliver(ctx *sim.Context, peer int32, _ sim.Message) {
	p.mu.Lock()
	*p.conns = append(*p.conns, [2]int32{p.id, peer})
	p.mu.Unlock()
}

func (p *probe) EndRound(*sim.Context) {}
func (p *probe) Leader() uint64        { return 0 }

func TestEngineInvariants(t *testing.T) {
	f := gen.RandomRegular(60, 4, 3)
	sched := dyngraph.NewPermuted(f, 1, 5)
	const rounds = 50

	for _, workers := range []int{1, 4} {
		protocols, mu, connLog := newProbeNetwork(60)
		var stats []sim.RoundStats
		eng, err := sim.New(sched, protocols, sim.Config{
			Seed:      7,
			TagBits:   0,
			Workers:   workers,
			MaxRounds: rounds,
			Observer:  func(s sim.RoundStats) { stats = append(stats, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = eng.Run(nil)
		if !errors.Is(err, sim.ErrNotStabilized) {
			t.Fatalf("expected ErrNotStabilized sentinel, got %v", err)
		}

		mu.Lock()
		conns := append([][2]int32(nil), *connLog...)
		mu.Unlock()

		// Each delivery appears twice (once per endpoint); total deliveries
		// must equal 2 * sum of per-round connection counts.
		totalConns := 0
		for _, s := range stats {
			totalConns += s.Connections
			if s.ActiveNodes != 60 {
				t.Fatalf("round %d: active=%d", s.Round, s.ActiveNodes)
			}
			if s.Connections > s.Proposals {
				t.Fatalf("round %d: more connections (%d) than proposals (%d)", s.Round, s.Connections, s.Proposals)
			}
			if s.Connections > 30 {
				t.Fatalf("round %d: %d connections exceeds n/2", s.Round, s.Connections)
			}
		}
		if len(conns) != 2*totalConns {
			t.Fatalf("delivery log has %d entries, want %d", len(conns), 2*totalConns)
		}
		if totalConns == 0 {
			t.Fatal("no connections at all in 50 rounds (engine broken)")
		}
	}
}

func TestSendersNeverAccept(t *testing.T) {
	// In every round, a node that proposed must not also appear as a
	// receiver. We detect this by checking each node has at most one
	// delivery per round, and a sender's delivery partner must be the node
	// it proposed to (sender connected as proposer, not acceptor).
	n := 40
	f := gen.Clique(n)
	sched := dyngraph.NewStatic(f)
	protocols, mu, connLog := newProbeNetwork(n)
	eng, err := sim.New(sched, protocols, sim.Config{Seed: 3, MaxRounds: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(nil); !errors.Is(err, sim.ErrNotStabilized) {
		t.Fatalf("unexpected err %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	seen := map[int32]int{}
	for _, c := range *connLog {
		seen[c[0]]++
	}
	for node, count := range seen {
		if count > 1 {
			t.Fatalf("node %d participated in %d connections in one round", node, count)
		}
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	f := gen.RandomRegular(512, 6, 9)
	run := func(workers int) (uint64, sim.Result) {
		sched := dyngraph.NewPermuted(f, 2, 11)
		uids := core.UniqueUIDs(512, 77)
		protocols := core.NewBlindGossipNetwork(uids)
		eng, err := sim.New(sched, protocols, sim.Config{
			Seed: 5, TagBits: 0, Workers: workers, MaxRounds: 200_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(sim.AllLeadersEqual)
		if err != nil {
			t.Fatal(err)
		}
		return protocols[0].Leader(), res
	}
	l1, r1 := run(1)
	l8, r8 := run(8)
	if l1 != l8 || r1 != r8 {
		t.Fatalf("parallel execution diverged: (%d, %+v) vs (%d, %+v)", l1, r1, l8, r8)
	}
}

// TestRaceSmokeParallelElection extends the divergence check above into a
// race-detector smoke test: it runs a full election with every available
// worker — large enough (n >= 256) that parallelFor actually spawns
// goroutines — and asserts bit-identical results against the sequential
// engine. Under `go test -race` (see the Makefile's race target and CI)
// this exercises all four parallel bulk-synchronous steps of a round.
func TestRaceSmokeParallelElection(t *testing.T) {
	f := gen.RandomRegular(600, 6, 21)
	run := func(workers int) (uint64, sim.Result) {
		sched := dyngraph.NewPermuted(f, 2, 13)
		uids := core.UniqueUIDs(600, 33)
		protocols := core.NewBlindGossipNetwork(uids)
		eng, err := sim.New(sched, protocols, sim.Config{
			Seed: 9, Workers: workers, MaxRounds: 100_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(sim.AllLeadersEqual)
		if err != nil {
			t.Fatal(err)
		}
		return protocols[0].Leader(), res
	}
	wantLeader, wantRes := run(1)
	gotLeader, gotRes := run(runtime.GOMAXPROCS(0))
	if gotLeader != wantLeader || gotRes != wantRes {
		t.Fatalf("Workers=GOMAXPROCS diverged from Workers=1: (%#x, %+v) vs (%#x, %+v)",
			gotLeader, gotRes, wantLeader, wantRes)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	f := gen.Cycle(30)
	run := func(seed uint64) sim.Result {
		uids := core.UniqueUIDs(30, 1)
		eng, err := sim.New(dyngraph.NewStatic(f), core.NewBlindGossipNetwork(uids),
			sim.Config{Seed: seed, MaxRounds: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(sim.AllLeadersEqual)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := run(43)
	if a.StabilizedRound == c.StabilizedRound && a.Proposals == c.Proposals {
		t.Fatal("different seeds produced identical executions (suspicious)")
	}
}

func TestTagBudgetEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized tag did not panic")
		}
	}()
	protocols := []sim.Protocol{&badTagProto{}, &badTagProto{}}
	eng, err := sim.New(dyngraph.NewStatic(gen.Path(2)), protocols, sim.Config{Seed: 1, TagBits: 1, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)
}

type badTagProto struct{}

func (b *badTagProto) Advertise(*sim.Context) uint64            { return 2 } // needs 2 bits
func (b *badTagProto) Decide(*sim.Context) (int32, bool)        { return 0, false }
func (b *badTagProto) Outgoing(*sim.Context, int32) sim.Message { return sim.Message{} }
func (b *badTagProto) Deliver(*sim.Context, int32, sim.Message) {}
func (b *badTagProto) EndRound(*sim.Context)                    {}
func (b *badTagProto) Leader() uint64                           { return 0 }

func TestMessageBudgetEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized message did not panic")
		}
	}()
	protocols := []sim.Protocol{&chattyProto{}, &chattyProto{}}
	eng, err := sim.New(dyngraph.NewStatic(gen.Path(2)), protocols,
		sim.Config{Seed: 4, MaxUIDs: 1, MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)
}

// chattyProto always proposes to its first neighbor and sends 3 UIDs.
type chattyProto struct{}

func (c *chattyProto) Advertise(*sim.Context) uint64 { return 0 }
func (c *chattyProto) Decide(ctx *sim.Context) (int32, bool) {
	// Node 0 proposes to 1; node 1 receives.
	if ctx.Node == 0 {
		return 1, true
	}
	return 0, false
}
func (c *chattyProto) Outgoing(*sim.Context, int32) sim.Message {
	return sim.Message{UIDs: []uint64{1, 2, 3}}
}
func (c *chattyProto) Deliver(*sim.Context, int32, sim.Message) {}
func (c *chattyProto) EndRound(*sim.Context)                    {}
func (c *chattyProto) Leader() uint64                           { return 0 }

func TestProposalToNonNeighborPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-neighbor proposal did not panic")
		}
	}()
	protocols := []sim.Protocol{&rogueProto{}, &rogueProto{}, &rogueProto{}}
	eng, err := sim.New(dyngraph.NewStatic(gen.Path(3)), protocols, sim.Config{Seed: 1, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)
}

// rogueProto: node 0 proposes to node 2, which is not adjacent on path(3).
type rogueProto struct{}

func (p *rogueProto) Advertise(*sim.Context) uint64 { return 0 }
func (p *rogueProto) Decide(ctx *sim.Context) (int32, bool) {
	if ctx.Node == 0 {
		return 2, true
	}
	return 0, false
}
func (p *rogueProto) Outgoing(*sim.Context, int32) sim.Message { return sim.Message{} }
func (p *rogueProto) Deliver(*sim.Context, int32, sim.Message) {}
func (p *rogueProto) EndRound(*sim.Context)                    {}
func (p *rogueProto) Leader() uint64                           { return 0 }

func TestConfigValidation(t *testing.T) {
	f := gen.Path(3)
	protocols, _, _ := newProbeNetwork(3)

	if _, err := sim.New(dyngraph.NewStatic(f), protocols[:2], sim.Config{}); err == nil {
		t.Fatal("protocol count mismatch accepted")
	}
	if _, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{TagBits: 65}); err == nil {
		t.Fatal("TagBits=65 accepted")
	}
	if _, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{Activations: []int{1, 2}}); err == nil {
		t.Fatal("short activations accepted")
	}
	if _, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{Activations: []int{1, 0, 1}}); err == nil {
		t.Fatal("activation round 0 accepted")
	}
}

func TestInactiveNodesInvisible(t *testing.T) {
	// Node 2 activates at round 100; before that, node 1 must never see it
	// as a neighbor and never connect to it.
	n := 3
	uids := []uint64{30, 20, 10} // node 2 holds the minimum
	protocols := core.NewBlindGossipNetwork(uids)
	eng, err := sim.New(dyngraph.NewStatic(gen.Path(n)), protocols, sim.Config{
		Seed:        9,
		MaxRounds:   99,
		Activations: []int{1, 1, 100},
		Workers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Run 99 rounds: stop condition can't fire with node 2 inactive.
	_, err = eng.Run(sim.AllLeadersEqual)
	if !errors.Is(err, sim.ErrNotStabilized) {
		t.Fatalf("run with inactive min-holder should not stabilize: %v", err)
	}
	// Nodes 0 and 1 must have converged to 20, not 10: UID 10 was invisible.
	if protocols[0].Leader() != 20 || protocols[1].Leader() != 20 {
		t.Fatalf("leaders %d,%d; inactive node's UID leaked", protocols[0].Leader(), protocols[1].Leader())
	}
	if protocols[2].Leader() != 10 {
		t.Fatalf("inactive node changed state: leader=%d", protocols[2].Leader())
	}
}

func TestStopConditionWaitsForAllActive(t *testing.T) {
	// With equal UIDs impossible, but with staggered activation the stop
	// condition must not fire while some node is inactive even if the active
	// subset agrees.
	uids := []uint64{5, 7}
	protocols := core.NewBlindGossipNetwork(uids)
	eng, err := sim.New(dyngraph.NewStatic(gen.Path(2)), protocols, sim.Config{
		Seed:        2,
		MaxRounds:   500,
		Activations: []int{1, 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(sim.AllLeadersEqual)
	if err != nil {
		t.Fatal(err)
	}
	if res.StabilizedRound < 50 {
		t.Fatalf("stabilized at %d, before node 1 activated", res.StabilizedRound)
	}
}

func TestRandomNeighborMatchingUniform(t *testing.T) {
	// On a star with the center deciding, selection among leaves must be
	// uniform. We run many rounds and count who the center proposes to.
	n := 9
	counts := make([]int, n)
	protocols := make([]sim.Protocol, n)
	for i := range protocols {
		protocols[i] = &centerCounter{counts: counts}
	}
	eng, err := sim.New(dyngraph.NewStatic(gen.Star(n)), protocols,
		sim.Config{Seed: 12, MaxRounds: 8000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)
	for leaf := 1; leaf < n; leaf++ {
		if counts[leaf] < 800 || counts[leaf] > 1200 {
			t.Fatalf("leaf %d chosen %d/8000 times; not uniform: %v", leaf, counts[leaf], counts)
		}
	}
}

// centerCounter: node 0 (the star center) proposes to a random neighbor
// every round and tallies its choices.
type centerCounter struct{ counts []int }

func (p *centerCounter) Advertise(*sim.Context) uint64 { return 0 }
func (p *centerCounter) Decide(ctx *sim.Context) (int32, bool) {
	if ctx.Node != 0 {
		return 0, false
	}
	t, ok := ctx.RandomNeighbor()
	if !ok {
		return 0, false
	}
	p.counts[t]++
	return t, true
}
func (p *centerCounter) Outgoing(*sim.Context, int32) sim.Message { return sim.Message{} }
func (p *centerCounter) Deliver(*sim.Context, int32, sim.Message) {}
func (p *centerCounter) EndRound(*sim.Context)                    {}
func (p *centerCounter) Leader() uint64                           { return 0 }

func TestAcceptUniformAmongProposers(t *testing.T) {
	// All leaves of a star propose to the center every round; the center
	// must accept each with roughly equal frequency.
	n := 6
	accepted := make([]int, n)
	protocols := make([]sim.Protocol, n)
	for i := range protocols {
		protocols[i] = &leafPusher{accepted: accepted}
	}
	eng, err := sim.New(dyngraph.NewStatic(gen.Star(n)), protocols,
		sim.Config{Seed: 31, MaxRounds: 5000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)
	for leaf := 1; leaf < n; leaf++ {
		if accepted[leaf] < 800 || accepted[leaf] > 1200 {
			t.Fatalf("leaf %d accepted %d/5000 times; not uniform: %v", leaf, accepted[leaf], accepted)
		}
	}
}

// leafPusher: leaves always propose to the center (node 0); the center
// records which proposal was accepted via Deliver.
type leafPusher struct{ accepted []int }

func (p *leafPusher) Advertise(*sim.Context) uint64 { return 0 }
func (p *leafPusher) Decide(ctx *sim.Context) (int32, bool) {
	if ctx.Node == 0 {
		return 0, false
	}
	return 0, true // all leaves' only neighbor is the center
}
func (p *leafPusher) Outgoing(*sim.Context, int32) sim.Message { return sim.Message{} }
func (p *leafPusher) Deliver(ctx *sim.Context, peer int32, _ sim.Message) {
	if ctx.Node == 0 {
		p.accepted[peer]++
	}
}
func (p *leafPusher) EndRound(*sim.Context) {}
func (p *leafPusher) Leader() uint64        { return 0 }

func BenchmarkEngineRoundClique1000(b *testing.B) {
	uids := core.UniqueUIDs(1000, 1)
	protocols := core.NewBlindGossipNetwork(uids)
	eng, err := sim.New(dyngraph.NewStatic(gen.Clique(1000)), protocols,
		sim.Config{Seed: 1, MaxRounds: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.RunRounds(1, b.N)
}

func BenchmarkEngineRoundRegular10000(b *testing.B) {
	f := gen.RandomRegular(10000, 8, 1)
	uids := core.UniqueUIDs(10000, 1)
	protocols := core.NewBlindGossipNetwork(uids)
	eng, err := sim.New(dyngraph.NewStatic(f), protocols,
		sim.Config{Seed: 1, MaxRounds: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.RunRounds(1, b.N)
}

func TestStableForDelaysFiring(t *testing.T) {
	// A condition true from round 5 on: StableFor(_, 3) fires at round 7.
	inner := func(round int, _ []sim.Protocol) bool { return round >= 5 }
	cond := sim.StableFor(inner, 3)
	fired := -1
	for r := 1; r <= 10; r++ {
		if cond(r, nil) {
			fired = r
			break
		}
	}
	if fired != 7 {
		t.Fatalf("fired at %d, want 7", fired)
	}
}

func TestStableForResetsOnFlicker(t *testing.T) {
	// True at rounds 2,3 then false at 4, then true from 5: a streak of 3
	// only completes at round 7.
	inner := func(round int, _ []sim.Protocol) bool { return round != 4 && round >= 2 }
	cond := sim.StableFor(inner, 3)
	fired := -1
	for r := 1; r <= 10; r++ {
		if cond(r, nil) {
			fired = r
			break
		}
	}
	if fired != 7 {
		t.Fatalf("fired at %d, want 7", fired)
	}
}

func TestStableForMatchesInstantDetectorOutcome(t *testing.T) {
	// For blind gossip, the StableFor detector must elect the same leader,
	// exactly k-1 rounds later than the instant detector.
	f := gen.Cycle(24)
	run := func(stop sim.StopCondition) (uint64, int) {
		uids := core.UniqueUIDs(24, 3)
		protocols := core.NewBlindGossipNetwork(uids)
		eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{Seed: 6, MaxRounds: 500_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(stop)
		if err != nil {
			t.Fatal(err)
		}
		return protocols[0].Leader(), res.StabilizedRound
	}
	leaderA, roundA := run(sim.AllLeadersEqual)
	leaderB, roundB := run(sim.StableFor(sim.AllLeadersEqual, 10))
	if leaderA != leaderB {
		t.Fatal("detectors elected different leaders")
	}
	if roundB != roundA+9 {
		t.Fatalf("StableFor fired at %d, want %d", roundB, roundA+9)
	}
}

func TestStableForPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	sim.StableFor(sim.AllLeadersEqual, 0)
}

func BenchmarkEngineRoundParallelism(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			f := gen.RandomRegular(50000, 8, 1)
			uids := core.UniqueUIDs(50000, 1)
			protocols := core.NewBlindGossipNetwork(uids)
			eng, err := sim.New(dyngraph.NewStatic(f), protocols,
				sim.Config{Seed: 1, MaxRounds: 1 << 30, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			eng.RunRounds(1, b.N)
		})
	}
}

func TestNodeLoadAccounting(t *testing.T) {
	// Total per-node load must equal twice the connection count, and on a
	// star the hub must carry far more load than any leaf.
	n := 32
	uids := core.UniqueUIDs(n, 2)
	protocols := core.NewBlindGossipNetwork(uids)
	var total int
	eng, err := sim.New(dyngraph.NewStatic(gen.Star(n)), protocols, sim.Config{
		Seed: 4, MaxRounds: 2000, Workers: 1,
		Observer: func(s sim.RoundStats) { total += s.Connections },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)

	load := eng.NodeLoad()
	var sum int64
	for _, c := range load {
		sum += c
	}
	if sum != int64(2*total) {
		t.Fatalf("load sum %d != 2×connections %d", sum, 2*total)
	}
	stats := eng.Load()
	if load[0] != stats.Max {
		t.Fatalf("star hub load %d is not the maximum %d", load[0], stats.Max)
	}
	if stats.Imbalance < 5 {
		t.Fatalf("star imbalance %.2f suspiciously even", stats.Imbalance)
	}
	if stats.Min > stats.Max || stats.Mean <= 0 {
		t.Fatalf("inconsistent stats %+v", stats)
	}
}

func TestNodeLoadEvenOnClique(t *testing.T) {
	n := 32
	uids := core.UniqueUIDs(n, 3)
	protocols := core.NewBlindGossipNetwork(uids)
	eng, err := sim.New(dyngraph.NewStatic(gen.Clique(n)), protocols, sim.Config{
		Seed: 5, MaxRounds: 4000, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)
	if imb := eng.Load().Imbalance; imb > 1.5 {
		t.Fatalf("clique imbalance %.2f; load should be near-even", imb)
	}
}

func TestLargeNetworkSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-network smoke test skipped in -short mode")
	}
	// 100k devices, a few rounds: the engine must stay allocation-sane and
	// produce sensible connection counts at laptop scale.
	n := 100_000
	f := gen.RandomRegular(n, 6, 2)
	uids := core.UniqueUIDs(n, 3)
	protocols := core.NewBlindGossipNetwork(uids)
	var conns int
	eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{
		Seed: 1, MaxRounds: 5,
		Observer: func(s sim.RoundStats) { conns += s.Connections },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(nil)
	// Expect a healthy fraction of n/2 possible connections per round.
	if conns < n/2 {
		t.Fatalf("only %d connections over 5 rounds at n=%d", conns, n)
	}
}
