package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Recording captures the observable behavior of an execution: the exact
// connections of every round plus identifying metadata. Because executions
// are pure functions of (seed, schedule, protocol, config), a recording is
// both a debugging artifact and a determinism proof: replaying the same
// configuration must reproduce it bit for bit (see VerifyReplay).
type Recording struct {
	// Seed and Schedule identify the run.
	Seed     uint64 `json:"seed"`
	Schedule string `json:"schedule"`
	N        int    `json:"n"`

	// Rounds holds one entry per executed round.
	Rounds []RoundRecord `json:"rounds"`

	// Leaders holds the final leader variable of every node.
	Leaders []uint64 `json:"leaders"`
}

// RoundRecord is the connection set of one round.
type RoundRecord struct {
	Round int        `json:"round"`
	Pairs [][2]int32 `json:"pairs"`
}

// Recorder accumulates a Recording; attach via Attach before running.
type Recorder struct {
	rec Recording
}

// NewRecorder creates a recorder with identifying metadata.
func NewRecorder(seed uint64, schedule string, n int) *Recorder {
	return &Recorder{rec: Recording{Seed: seed, Schedule: schedule, N: n}}
}

// Attach wires the recorder into an engine config (setting OnConnections).
// It must be called before sim.New.
func (r *Recorder) Attach(cfg *Config) {
	cfg.OnConnections = func(round int, pairs [][2]int32) {
		copied := make([][2]int32, len(pairs))
		copy(copied, pairs)
		r.rec.Rounds = append(r.rec.Rounds, RoundRecord{Round: round, Pairs: copied})
	}
}

// Finish snapshots the final leaders and returns the completed recording.
func (r *Recorder) Finish(protocols []Protocol) *Recording {
	r.rec.Leaders = make([]uint64, len(protocols))
	for i, p := range protocols {
		r.rec.Leaders[i] = p.Leader()
	}
	return &r.rec
}

// WriteJSONL serializes the recording as JSON lines: a header object
// followed by one object per round.
func (rec *Recording) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := struct {
		Seed     uint64   `json:"seed"`
		Schedule string   `json:"schedule"`
		N        int      `json:"n"`
		Leaders  []uint64 `json:"leaders"`
	}{rec.Seed, rec.Schedule, rec.N, rec.Leaders}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, round := range rec.Rounds {
		if err := enc.Encode(round); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a recording written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Recording, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header struct {
		Seed     uint64   `json:"seed"`
		Schedule string   `json:"schedule"`
		N        int      `json:"n"`
		Leaders  []uint64 `json:"leaders"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("sim: recording header: %w", err)
	}
	rec := &Recording{Seed: header.Seed, Schedule: header.Schedule, N: header.N, Leaders: header.Leaders}
	for {
		var round RoundRecord
		if err := dec.Decode(&round); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("sim: recording round: %w", err)
		}
		rec.Rounds = append(rec.Rounds, round)
	}
	return rec, nil
}

// Equal compares two recordings event by event, returning a descriptive
// error at the first divergence (nil when identical).
func (rec *Recording) Equal(other *Recording) error {
	if rec.Seed != other.Seed || rec.Schedule != other.Schedule || rec.N != other.N {
		return fmt.Errorf("sim: recording metadata differs: (%d,%q,%d) vs (%d,%q,%d)",
			rec.Seed, rec.Schedule, rec.N, other.Seed, other.Schedule, other.N)
	}
	if len(rec.Rounds) != len(other.Rounds) {
		return fmt.Errorf("sim: recordings have %d vs %d rounds", len(rec.Rounds), len(other.Rounds))
	}
	for i := range rec.Rounds {
		a, b := rec.Rounds[i], other.Rounds[i]
		if a.Round != b.Round || len(a.Pairs) != len(b.Pairs) {
			return fmt.Errorf("sim: round %d differs: %d pairs vs %d pairs", a.Round, len(a.Pairs), len(b.Pairs))
		}
		for j := range a.Pairs {
			if a.Pairs[j] != b.Pairs[j] {
				return fmt.Errorf("sim: round %d pair %d differs: %v vs %v", a.Round, j, a.Pairs[j], b.Pairs[j])
			}
		}
	}
	if len(rec.Leaders) != len(other.Leaders) {
		return fmt.Errorf("sim: leader snapshots differ in length")
	}
	for i := range rec.Leaders {
		if rec.Leaders[i] != other.Leaders[i] {
			return fmt.Errorf("sim: node %d final leader differs: %d vs %d", i, rec.Leaders[i], other.Leaders[i])
		}
	}
	return nil
}

// Connections returns the total connection count across all rounds.
func (rec *Recording) Connections() int {
	total := 0
	for _, round := range rec.Rounds {
		total += len(round.Pairs)
	}
	return total
}
