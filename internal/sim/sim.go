// Package sim is the mobile telephone model engine — an executable,
// bit-faithful implementation of the abstract model of Section III of the
// paper.
//
// Each synchronous round proceeds in five steps:
//
//  1. Topology: the round's graph G_r comes from a dyngraph.Schedule.
//  2. Advertise: every active node chooses a b-bit tag (before seeing its
//     neighbors, matching the model: tags are chosen at the beginning of the
//     round; scanning then reveals neighbor ids and tags).
//  3. Decide: every active node either sends one connection proposal to one
//     neighbor or elects to receive. A sender can never accept.
//  4. Accept: a receiver with at least one incoming proposal accepts one,
//     chosen uniformly at random (distributionally identical to the paper's
//     selection-permutation device).
//  5. Exchange: each connected pair trades one bounded message — at most
//     MaxUIDs UIDs plus 64 auxiliary bits, enforcing the problem statement's
//     O(1)-UIDs / O(polylog N)-bits connection budget.
//
// The engine is deterministic: an execution is a pure function of (seed,
// schedule, protocol, config). Per-node per-round randomness streams are
// derived independently (xrand.Derive), so the parallel executor is
// bit-identical to the sequential one.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"mobiletel/internal/dyngraph"
	"mobiletel/internal/fault"
	"mobiletel/internal/graph"
	"mobiletel/internal/invariant"
	"mobiletel/internal/obs"
	"mobiletel/internal/xrand"
)

// Message is the bounded payload exchanged over one connection: at most
// Config.MaxUIDs opaque UIDs plus 64 auxiliary bits.
type Message struct {
	UIDs []uint64
	Aux  uint64
}

// Context is the per-node view the engine passes to protocol callbacks. It
// exposes the node's identity, its private randomness for the round, and the
// scan results (neighbor ids and tags). Contexts are only valid during the
// callback they are passed to.
type Context struct {
	Round int
	Node  int32
	RNG   *xrand.RNG

	g    *graph.Graph
	tags []uint64
	act  []bool   // activity per node (nil means all active)
	sink obs.Sink // event sink, nil when tracing is disabled
	nbr  []int32  // candidate scratch for RandomNeighborMatching, grown once
}

// EmitTransition publishes a protocol state transition (leader-estimate
// change, bit flip, phase change, ...) to the configured observability sink.
// It is a cheap no-op when no sink is configured, so protocols can call it
// unconditionally at every transition site without perturbing the engine's
// zero-allocation steady state.
//
//mtmlint:hotpath
func (c *Context) EmitTransition(kind obs.Kind, old, new uint64) {
	if c.sink == nil {
		return
	}
	c.sink.Event(obs.Event{
		Type: obs.TypeTransition, Kind: kind, Round: c.Round,
		Node: c.Node, Peer: obs.NoNode, A: old, B: new,
	})
}

// Degree returns the number of active neighbors visible in this round's scan.
//
//mtmlint:hotpath
func (c *Context) Degree() int {
	if c.act == nil {
		return c.g.Degree(int(c.Node))
	}
	d := 0
	for _, v := range c.g.Neighbors(int(c.Node)) {
		if c.act[v] {
			d++
		}
	}
	return d
}

// Neighbors iterates over the active neighbors, invoking fn with each
// neighbor's id and advertised tag. Iteration is in ascending id order.
//
//mtmlint:hotpath
func (c *Context) Neighbors(fn func(id int32, tag uint64)) {
	for _, v := range c.g.Neighbors(int(c.Node)) {
		if c.act == nil || c.act[v] {
			fn(v, c.tags[v])
		}
	}
}

// RandomNeighbor returns a uniformly random active neighbor, or ok=false if
// the node has none this round.
//
//mtmlint:hotpath
func (c *Context) RandomNeighbor() (id int32, ok bool) {
	if c.act == nil {
		// Everyone is active: index the adjacency list directly instead of
		// the generic count-then-index double scan. Same single RNG draw
		// over the same count, so the choice is bit-identical.
		nbrs := c.g.Neighbors(int(c.Node))
		if len(nbrs) == 0 {
			return 0, false
		}
		return nbrs[c.RNG.Intn(len(nbrs))], true
	}
	return c.RandomNeighborMatching(everyNeighbor)
}

// everyNeighbor is the all-pass predicate; a package-level value so calling
// RandomNeighbor never constructs a closure.
var everyNeighbor = func(int32, uint64) bool { return true }

// RandomNeighborMatching returns a uniformly random active neighbor whose
// (id, tag) satisfies pred, or ok=false if none does. A single scan collects
// the matching ids into per-Context scratch (reservoir-style: candidates are
// buffered, the winner indexed afterwards), then one Intn over the match
// count picks the winner — the same single draw over the same count as the
// historical count-then-index double scan, so the choice is bit-identical
// while pred and the activity filter run once per neighbor instead of twice.
//
//mtmlint:hotpath
func (c *Context) RandomNeighborMatching(pred func(id int32, tag uint64) bool) (id int32, ok bool) {
	c.nbr = c.nbr[:0]
	for _, v := range c.g.Neighbors(int(c.Node)) {
		if (c.act == nil || c.act[v]) && pred(v, c.tags[v]) {
			c.nbr = append(c.nbr, v)
		}
	}
	if len(c.nbr) == 0 {
		return 0, false
	}
	return c.nbr[c.RNG.Intn(len(c.nbr))], true
}

// Protocol is the per-node state machine an algorithm implements. The engine
// owns one Protocol instance per node and invokes the callbacks in a fixed
// order each round; all randomness must come from ctx.RNG for determinism.
type Protocol interface {
	// Advertise returns the node's tag for the round. The engine verifies it
	// fits in Config.TagBits. Called before the node can see its neighbors,
	// so implementations must not call ctx.Neighbors here.
	Advertise(ctx *Context) uint64

	// Decide inspects the scan (ctx.Neighbors/ctx.Degree) and either returns
	// (target, true) to propose a connection to neighbor `target`, or
	// (_, false) to receive. Proposing to a non-neighbor is an engine error.
	Decide(ctx *Context) (target int32, propose bool)

	// Outgoing produces the message for a connection with peer. It is called
	// exactly once per established connection, before any Deliver.
	Outgoing(ctx *Context, peer int32) Message

	// Deliver hands the node the peer's message for an established
	// connection.
	Deliver(ctx *Context, peer int32, msg Message)

	// EndRound is called once per round after all exchanges complete.
	EndRound(ctx *Context)

	// Leader returns the node's current leader variable (a UID).
	Leader() uint64
}

// Config parameterizes an execution.
type Config struct {
	// Seed drives all randomness.
	Seed uint64

	// TagBits is b, the advertisement tag length in bits (0..64).
	TagBits int

	// MaxUIDs bounds the number of UIDs per message (the paper's O(1)).
	// Zero means the default of 2.
	MaxUIDs int

	// MaxRounds aborts the run if no stop condition fires earlier.
	// Zero means the default of 10 million.
	MaxRounds int

	// Activations[u] is the first round node u participates (1-based).
	// nil means every node activates in round 1.
	Activations []int

	// Departures[u], when positive, is the last round node u participates:
	// from round Departures[u]+1 on, the node is invisible to its neighbors
	// and its callbacks stop — failure injection for robustness tests. The
	// paper does not model departures; see the limitation tests for what
	// breaks (a departed minimum still wins blind gossip elections).
	// nil (or zero entries) means nobody departs.
	Departures []int

	// Workers sets the parallelism of the engine's bulk-synchronous steps.
	// Zero means GOMAXPROCS; 1 forces sequential execution. Results are
	// identical for any worker count.
	Workers int

	// Dispatch selects how parallel phases are executed when Workers > 1.
	// The default (DispatchAuto) uses the persistent worker pool, gated to
	// inline execution when the network is too small — or the host too
	// narrow — for parallel dispatch to pay (see DESIGN §14 for the
	// measured crossover). Results, traces, and digests are identical
	// across all modes; only throughput differs.
	Dispatch Dispatch

	// Accept selects how a receiver picks among incoming proposals.
	// The model (and every analysis in the paper) uses AcceptUniform;
	// the alternatives exist for the A3 ablation experiment.
	Accept AcceptPolicy

	// Classical switches the engine to the *classical* telephone model
	// baseline: every proposal is answered, so a node can serve an
	// unbounded number of incoming connections per round (and a sender can
	// also be called). This deliberately violates the mobile telephone
	// model's defining restriction — the paper's related-work section
	// contrasts the two models, and experiment E12 reproduces that gap.
	Classical bool

	// Observer, when non-nil, receives per-round statistics.
	Observer func(RoundStats)

	// OnConnections, when non-nil, receives the exact set of connections
	// established each round as (smaller, larger) node pairs in ascending
	// order — the hook behind execution recording (see Recorder in
	// record.go). The slice is reused across rounds; copy it to retain.
	OnConnections func(round int, pairs [][2]int32)

	// Faults, when non-nil, injects the compiled fault plan into the
	// execution: crash/recover churn (a down node is treated exactly like a
	// node outside its activation window), advertisement tag flips, proposal
	// and connection loss, partitions, and adversarial state resets of
	// Corruptible protocols (see internal/fault). Per-node fault draws are
	// node-addressed — each comes from its own (plan seed, kind, node,
	// round) stream, exactly like the engine's node RNG streams — so they
	// are order-independent and run inside the parallel phase bodies; only
	// the churn state machine and state resets run in the sequential
	// prologue. Faulted executions are therefore bit-identical at any
	// worker count, and the node RNG streams are exactly those of the
	// fault-free run. The injector is single-run state: build a fresh one
	// per engine. With Faults nil every hook reduces to one predictable
	// branch and the steady state stays at exactly 0 allocs/round.
	Faults *fault.Injector

	// Check, when true, verifies the engine's per-round invariants at the
	// end of every round (conservation of proposals across accepts,
	// contention rejects, busy losses, and fault losses; matching symmetry
	// and one-sided-partner sanity; down-node silence; tag-domain bounds —
	// see internal/invariant) and panics on the first violation. It is a
	// debugging and soak-testing aid: O(n + connections) extra work per
	// round, outside the zero-allocation contract. Classical-mode rounds
	// are not checked (the classical baseline has no accept step or
	// partner matching).
	Check bool

	// Sink, when non-nil, receives the run's structured event trace:
	// round boundaries, proposals sent/accepted/rejected, connections,
	// message deliveries, fault events, and protocol state transitions
	// (see internal/obs for the event schema). Tracing does not force the
	// engine sequential: with Workers > 1 the parallel phase bodies emit
	// into private per-worker buffers (obs.WorkerBuf) that the engine
	// drains into the sink in ascending worker order at each sequential
	// barrier. Worker chunks ascend in node id and each worker iterates
	// its chunk ascending, so the chunk-order concatenation reproduces
	// exactly the sequential ascending-node event order — the trace stays
	// a deterministic function of (seed, schedule, protocol, config) at
	// any worker count, the property mtmtrace diff relies on. Fault events
	// ride the same buffers: node-addressed draws fire at fixed per-node
	// points of the phase bodies, so faulted traces are byte-identical
	// across worker counts too. With Sink nil every emission site reduces
	// to one predictable branch and the engine's steady state stays at
	// exactly 0 allocs/round.
	Sink obs.Sink

	// Profiler, when non-nil, accumulates per-phase wall time and
	// per-worker busy time for every round into an mtmprof/v1 report (see
	// obs.NewProfiler — the monotonic clock is injected there; the engine
	// never reads wall time itself, preserving the norand contract).
	// Profiled runs add two clock reads per phase and trade the pinned
	// zero-allocation steady state for timing; with Profiler nil the round
	// loop is unchanged.
	Profiler *obs.Profiler
}

// Dispatch selects the parallel execution core (Config.Dispatch). Every
// mode produces bit-identical results; the non-default modes exist for the
// differential conformance suite and for crossover benchmarking.
type Dispatch int

const (
	// DispatchAuto (the default) runs phase dispatches on the persistent
	// worker pool, falling back to inline execution when n is under the
	// pool's measured dispatch floor or the host has a single P (with
	// GOMAXPROCS=1 no second worker can ever run concurrently, so any
	// dispatch cost is pure loss).
	DispatchAuto Dispatch = iota
	// DispatchPool forces pool dispatch for any Workers > 1, ignoring the
	// inline gate — the mode stress tests and crossover benchmarks use to
	// exercise the pool regardless of n and GOMAXPROCS.
	DispatchPool
	// DispatchSpawn is the historical per-phase goroutine-spawning core
	// (fresh goroutines plus a WaitGroup per dispatch, inline under 256
	// nodes), kept as the differential baseline: conformance tests compare
	// it bit-for-bit against the pool, and the rounds benchmark tier
	// measures the pool's advantage against it. Phase fusion is disabled
	// so the mode reproduces the historical execution shape exactly.
	DispatchSpawn
)

// AcceptPolicy selects how a receiver chooses among incoming proposals.
type AcceptPolicy int

const (
	// AcceptUniform picks uniformly at random — the model's semantics
	// (Section III), equivalent to the paper's selection permutation.
	AcceptUniform AcceptPolicy = iota
	// AcceptLowestID always picks the proposer with the smallest id
	// (a deterministic, biased policy; ablation only).
	AcceptLowestID
	// AcceptHighestID always picks the proposer with the largest id
	// (ablation only).
	AcceptHighestID
)

// RoundStats summarizes one executed round.
type RoundStats struct {
	Round       int
	Proposals   int
	Connections int
	ActiveNodes int

	// Accepts counts proposals a receiver accepted (in the mobile telephone
	// model this equals Connections; in classical mode every proposal is
	// accepted). Rejects counts proposals that reached a receiver but were
	// not the one chosen. BusyLost counts proposals lost because their
	// target was itself sending; FaultLost counts proposals removed by
	// fault injection (dropped in transit, or accepted over a connection
	// that then failed). Every proposal lands in exactly one bucket:
	// Accepts + Rejects + BusyLost + FaultLost == Proposals, the
	// conservation identity internal/invariant checks.
	Accepts   int
	Rejects   int
	BusyLost  int
	FaultLost int
}

// Result summarizes an execution.
type Result struct {
	// StabilizedRound is the first round at whose end the stop condition
	// held, or 0 if it never fired within MaxRounds.
	StabilizedRound int
	// RoundsExecuted is the total number of rounds run.
	RoundsExecuted int
	// Connections and Proposals are totals across all rounds.
	Connections int64
	Proposals   int64
}

// Stopped reports whether the stop condition fired.
func (r Result) Stopped() bool { return r.StabilizedRound > 0 }

// StopCondition is evaluated at the end of every round; returning true ends
// the run. For the leader-election protocols in this repository, "all leader
// variables equal" is a correct stabilization detector: each node's
// candidate only ever improves toward the unique global minimum, and the
// minimum's owner never changes, so all-equal implies equal-to-minimum,
// which is permanent.
type StopCondition func(round int, protocols []Protocol) bool

// AllLeadersEqual is the standard stop condition for leader election.
func AllLeadersEqual(round int, protocols []Protocol) bool {
	first := protocols[0].Leader()
	for _, p := range protocols[1:] {
		if p.Leader() != first {
			return false
		}
	}
	return true
}

// ErrNotStabilized is wrapped by Run when MaxRounds elapses without the stop
// condition firing.
var ErrNotStabilized = errors.New("sim: run did not stabilize within MaxRounds")

const (
	defaultMaxUIDs   = 2
	defaultMaxRounds = 10_000_000
)

// Engine executes protocols over a schedule. Create with New, run with Run.
type Engine struct {
	sched dyngraph.Schedule
	cfg   Config
	n     int

	protocols []Protocol

	// Per-round working state, reused across rounds.
	rngs    []xrand.RNG
	tags    []uint64
	actions []int32 // >=0: proposal target; -1: receive; -2: inactive
	active  []bool
	inboxTo []int32 // flattened proposals grouped per receiver
	inboxAt []int32 // offsets per receiver (n+1)
	partner []int32 // accepted connection partner or -1
	cursor  []int32 // scratch for the per-round counting sort
	workers int

	// parCore selects the parallel round core: the active scan, proposal
	// bucketing (two-pass counting sort: per-worker histograms + sequential
	// prefix merge + parallel scatter), accept, and partner phases all run
	// chunked across workers. New enables it exactly when Workers > 1 —
	// fault injection is compatible, because every per-node fault draw is
	// node-addressed (its own (plan seed, kind, node, round) stream, see
	// internal/fault), so phase bodies evaluate them at fixed per-node
	// points with no cross-worker ordering. Tracing is compatible too:
	// phase bodies emit into per-worker buffers (wbufs) drained in chunk
	// order at each barrier, which reproduces the sequential event order
	// exactly. Results are bit-identical to the sequential core for any
	// worker count: inboxes stay sender-ordered (worker chunks ascend in
	// sender id) and each receiver's accept choice draws only from its own
	// rngs[v] stream.
	parCore bool
	hist    []int32 // per-worker proposal histograms/cursors, workers rows of n
	chosen  []int32 // per-receiver accepted sender (or noPartner), parCore only

	// pool is the persistent dispatch core (nil when every dispatch of this
	// engine resolves inline, or in DispatchSpawn mode); gate is the node
	// count below which parallelFor runs inline, and inlineAll forces every
	// dispatch inline regardless of n (Workers == 1, or DispatchAuto on a
	// single-P host). parExec is the once-resolved conjunction — this engine
	// ever dispatches in parallel — which also selects the step-4 core: an
	// engine whose dispatches all resolve inline runs the sequential
	// counting sort, not the chunk-safe parallel one, because the parallel
	// core's per-worker histogram discipline is pure overhead with one
	// executor (the two cores are bit-identical by the conformance
	// contract). All resolved once in New — see DESIGN §14.
	pool      *workerPool
	gate      int
	inlineAll bool
	parExec   bool

	// fuseScanAdv/fusePartnerEx enable the fused phase bodies (resolved in
	// New): scan+advertise fuse on fault-free rounds whose trace emission is
	// buffered (or absent), partner+exchange fuse in the parallel core when
	// no OnConnections hook needs the pre-exchange pair list. DispatchSpawn
	// disables both (it reproduces the historical execution shape).
	fuseScanAdv   bool
	fusePartnerEx bool

	// propLost[u] records whether a fault dropped sender u's proposal in
	// transit this round: written at u by the counting pass, read at u by
	// the scatter pass (chunk-local in both), replacing the historical
	// in-place actions[u] rewrite that the parallel core could not perform
	// race-free. Allocated only when Faults is non-nil.
	propLost []bool

	// curDown is this round's fault down-mask (nil when nobody is down),
	// published before the active scan so the parallel scan can read it.
	curDown []bool

	// chunks holds degree-weighted parallelFor boundaries for the current
	// round graph (weight deg(u)+1), recomputed only when the schedule hands
	// out a new graph; chunkG remembers which graph they describe.
	chunks []int
	chunkG *graph.Graph

	// counters is per-worker round accounting, one cache line per worker so
	// parallel increments do not false-share.
	counters []workerCounters

	// tagLimit is 1<<TagBits (0 when TagBits == 64), precomputed once.
	tagLimit uint64

	// Phase bodies and per-worker Context scratch, bound once in New so the
	// steady-state round loop allocates nothing: a fresh closure or a
	// stack Context whose address reaches an interface method would escape
	// to the heap on every round. TestSteadyStateZeroAllocs pins this.
	phAdvertise  func(w, lo, hi int)
	phDecide     func(w, lo, hi int)
	phExchange   func(w, lo, hi int)
	phEndRound   func(w, lo, hi int)
	phActiveScan func(w, lo, hi int)
	phTagFlip    func(w, lo, hi int)
	phCount      func(w, lo, hi int)
	phScatter    func(w, lo, hi int)
	phAccept     func(w, lo, hi int)
	phPartner    func(w, lo, hi int)
	phScanAdv    func(w, lo, hi int)
	phPartnerEx  func(w, lo, hi int)
	ctxA         []Context // one per worker
	ctxB         []Context // second context for the pairwise exchange phase

	// Current-round state shared by the phase methods (set by step).
	curRound int
	curG     *graph.Graph
	curAct   []bool

	// stopGate is the first round at which the stop condition may fire: the
	// last activation round, so partial networks cannot "stabilize" early.
	stopGate int

	pairScratch [][2]int32 // reused buffer for Config.OnConnections

	connCount []int64 // lifetime connections per node (battery accounting)

	// sinkBegan/sinkEnded track the Begin/End lifecycle of Config.Sink so
	// the header is written exactly once even across RunRounds calls.
	sinkBegan bool
	sinkEnded bool

	// wbufs, in traced parallel runs, holds one private event buffer per
	// worker (cache-line padded, like counters): phase bodies running as
	// worker w emit into wbufs[w], and flushWorkerBufs drains the buffers
	// into cfg.Sink in ascending worker order at each sequential barrier.
	// Nil whenever Workers == 1 or Sink is nil, so sequential traced runs
	// keep emitting directly.
	wbufs []obs.WorkerBuf

	// prof is Config.Profiler (nil = unprofiled round loop).
	prof *obs.Profiler
}

const (
	actionReceive  = invariant.ActionReceive
	actionInactive = invariant.ActionInactive
	noPartner      = invariant.NoPartner
)

// workerCounters is one worker's round accounting, padded to a full cache
// line (64 bytes) so adjacent workers' increments never share a line.
type workerCounters struct {
	proposals   int64
	connections int64
	rejects     int64
	busyLost    int64
	faultLost   int64
	active      int64
	_           [2]int64
}

// Corruptible is implemented by protocols that support fault-injected state
// resets — the internal/fault corruption adversary and crash-with-amnesia
// recovery. CorruptState must return the node to a legal initial state (the
// Section VIII self-stabilization experiments measure how the protocol
// recovers from exactly this), drawing any randomness it needs from rng,
// the injector's deterministic fault stream.
type Corruptible interface {
	CorruptState(rng *xrand.RNG)
}

// New validates the configuration and builds an engine. protocols must have
// one entry per node of the schedule.
func New(sched dyngraph.Schedule, protocols []Protocol, cfg Config) (*Engine, error) {
	n := sched.N()
	if len(protocols) != n {
		return nil, fmt.Errorf("sim: %d protocols for %d nodes", len(protocols), n)
	}
	if n == 0 {
		return nil, errors.New("sim: empty network")
	}
	if cfg.TagBits < 0 || cfg.TagBits > 64 {
		return nil, fmt.Errorf("sim: TagBits %d outside [0, 64]", cfg.TagBits)
	}
	if cfg.MaxUIDs == 0 {
		cfg.MaxUIDs = defaultMaxUIDs
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = defaultMaxRounds
	}
	if cfg.Activations != nil {
		if len(cfg.Activations) != n {
			return nil, fmt.Errorf("sim: %d activations for %d nodes", len(cfg.Activations), n)
		}
		for u, a := range cfg.Activations {
			if a < 1 {
				return nil, fmt.Errorf("sim: node %d activation round %d < 1", u, a)
			}
		}
	}
	if cfg.Departures != nil {
		if len(cfg.Departures) != n {
			return nil, fmt.Errorf("sim: %d departures for %d nodes", len(cfg.Departures), n)
		}
		for u, d := range cfg.Departures {
			if d < 0 {
				return nil, fmt.Errorf("sim: node %d departure round %d < 0", u, d)
			}
			if d > 0 && cfg.Activations != nil && d < cfg.Activations[u] {
				return nil, fmt.Errorf("sim: node %d departs (round %d) before activating (round %d)", u, d, cfg.Activations[u])
			}
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Faults != nil && cfg.Faults.N() != n {
		return nil, fmt.Errorf("sim: fault injector compiled for %d nodes, network has %d", cfg.Faults.N(), n)
	}
	stopGate := 1
	for _, a := range cfg.Activations {
		if a > stopGate {
			stopGate = a
		}
	}
	e := &Engine{
		sched:       sched,
		cfg:         cfg,
		n:           n,
		protocols:   protocols,
		rngs:        make([]xrand.RNG, n),
		tags:        make([]uint64, n),
		actions:     make([]int32, n),
		active:      make([]bool, n),
		inboxTo:     make([]int32, 0, n),
		inboxAt:     make([]int32, n+1),
		partner:     make([]int32, n),
		cursor:      make([]int32, n),
		workers:     workers,
		stopGate:    stopGate,
		pairScratch: make([][2]int32, 0, n/2+1),
		connCount:   make([]int64, n),
		ctxA:        make([]Context, workers),
		ctxB:        make([]Context, workers),
	}
	if cfg.TagBits < 64 {
		e.tagLimit = uint64(1) << uint(cfg.TagBits)
	}
	// The parallel round core is unconditional at Workers > 1: per-node
	// fault draws are node-addressed (order-independent, see internal/fault)
	// and tracing goes through per-worker buffers merged in chunk order at
	// each barrier, so neither forces the engine sequential.
	e.parCore = workers > 1
	e.chunks = make([]int, workers+1)
	e.counters = make([]workerCounters, workers)
	if e.parCore {
		e.hist = make([]int32, workers*n)
		e.chosen = make([]int32, n)
	}
	if cfg.Faults != nil {
		e.propLost = make([]bool, n)
	}
	if workers > 1 && cfg.Sink != nil {
		e.wbufs = make([]obs.WorkerBuf, workers)
	}
	// Resolve the dispatch core once (see DESIGN §14): the inline gate per
	// core, whether this engine can ever dispatch in parallel, and — when it
	// can, outside the legacy spawn mode — the persistent worker pool. A
	// parked pool holds no engine reference, so the finalizer fires once the
	// engine is garbage and stops the workers; Close does the same
	// deterministically.
	switch cfg.Dispatch {
	case DispatchSpawn:
		e.gate = spawnDispatchFloor
		e.inlineAll = workers == 1
	case DispatchPool:
		e.inlineAll = workers == 1
	default: // DispatchAuto
		e.gate = poolDispatchFloor
		e.inlineAll = workers == 1 || runtime.GOMAXPROCS(0) == 1
	}
	e.parExec = !e.inlineAll && n >= e.gate
	if e.parExec && cfg.Dispatch != DispatchSpawn {
		e.pool = newWorkerPool(workers)
		runtime.SetFinalizer(e, func(en *Engine) { en.pool.close() })
	}
	// Phase fusion (off in spawn mode, which reproduces the historical
	// execution shape): scan+advertise need fault-free rounds — resets and
	// churn publication run between them otherwise — and buffered (or
	// absent) trace emission, so the RoundStart event still precedes the
	// advertise events in the flushed stream. Partner+exchange need the
	// parallel core and no OnConnections hook (the hook observes the pair
	// list before any exchange).
	e.fuseScanAdv = cfg.Dispatch != DispatchSpawn && cfg.Faults == nil &&
		(cfg.Sink == nil || e.wbufs != nil)
	e.fusePartnerEx = cfg.Dispatch != DispatchSpawn && e.parCore && e.parExec &&
		cfg.OnConnections == nil
	if cfg.Profiler != nil {
		cfg.Profiler.Attach(workers)
		mode := "pool"
		switch {
		case cfg.Dispatch == DispatchSpawn && !e.inlineAll:
			mode = "spawn"
		case e.pool == nil:
			mode = "inline"
		}
		cfg.Profiler.SetDispatch(mode, e.gate)
		e.prof = cfg.Profiler
	}
	// Method values allocate their receiver binding; do it once here, not
	// once per parallelFor call.
	e.phAdvertise = e.phaseAdvertise
	e.phDecide = e.phaseDecide
	e.phExchange = e.phaseExchange
	e.phEndRound = e.phaseEndRound
	e.phActiveScan = e.phaseActiveScan
	e.phTagFlip = e.phaseTagFlip
	e.phCount = e.phaseCount
	e.phScatter = e.phaseScatter
	e.phAccept = e.phaseAccept
	e.phPartner = e.phasePartner
	e.phScanAdv = e.phaseScanAdvertise
	e.phPartnerEx = e.phasePartnerExchange
	return e, nil
}

// Close stops the engine's worker pool, if any. It is idempotent, safe on
// engines that never had a pool, and terminal: running more rounds after
// Close panics. Transient engines (the facade's per-call engines, benchmark
// sweeps) should Close when done; engines that simply go out of scope are
// cleaned up by the finalizer instead, just less promptly.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.close()
		runtime.SetFinalizer(e, nil)
	}
}

// Run executes rounds until the stop condition fires or MaxRounds elapses.
// On timeout it returns the partial result and an error wrapping
// ErrNotStabilized.
func (e *Engine) Run(stop StopCondition) (Result, error) {
	defer e.endSink()
	var res Result
	for r := 1; r <= e.cfg.MaxRounds; r++ {
		stats := e.step(r)
		res.RoundsExecuted = r
		res.Proposals += int64(stats.Proposals)
		res.Connections += int64(stats.Connections)
		if e.cfg.Observer != nil {
			e.cfg.Observer(stats)
		}
		if stop != nil && r >= e.stopGate && stop(r, e.protocols) {
			res.StabilizedRound = r
			return res, nil
		}
	}
	return res, fmt.Errorf("%w (MaxRounds=%d, schedule=%s)", ErrNotStabilized, e.cfg.MaxRounds, e.sched.Name())
}

// beginSink writes the trace header on the first emitted event.
func (e *Engine) beginSink() {
	if e.cfg.Sink == nil || e.sinkBegan {
		return
	}
	e.sinkBegan = true
	e.cfg.Sink.Begin(obs.Header{
		Seed:      e.cfg.Seed,
		Schedule:  e.sched.Name(),
		N:         e.n,
		TagBits:   e.cfg.TagBits,
		Classical: e.cfg.Classical,
	})
}

// endSink finalizes the trace stream exactly once (also on timeout).
func (e *Engine) endSink() {
	if e.cfg.Sink == nil || !e.sinkBegan || e.sinkEnded {
		return
	}
	e.sinkEnded = true
	e.cfg.Sink.End()
}

// RunRounds executes exactly k more rounds regardless of any condition,
// continuing the round counter from previous calls to Run/RunRounds.
// It is used by stability-validation tests.
func (e *Engine) RunRounds(startRound, k int) {
	e.beginSink()
	for r := startRound; r < startRound+k; r++ {
		e.step(r)
	}
}

// Protocols exposes the engine's protocol instances (for inspection).
func (e *Engine) Protocols() []Protocol { return e.protocols }

// step runs one full round and returns its statistics. It is the root of
// the steady-state zero-allocation contract that TestSteadyStateZeroAllocs
// pins at runtime and the hotalloc analyzer certifies statically; profiled
// runs take the timed branch and additionally record the round's wall time.
//
//mtmlint:hotpath
func (e *Engine) step(r int) RoundStats {
	if e.prof == nil {
		return e.stepCore(r)
	}
	t0 := e.prof.Clock()
	stats := e.stepCore(r)
	e.prof.RoundDone(e.prof.Clock() - t0)
	return stats
}

// refreshChunks recomputes the degree-weighted chunk boundaries for a new
// round graph: hub-skewed topologies (one node of degree n-1) would
// otherwise put an entire round's scan work into one worker's equal-index
// chunk. Boundaries depend only on (graph, workers), never on round state,
// and results are worker-count-independent, so this cannot perturb
// determinism. The scratch is O(1) per engine — one workers+1 slice reused
// for every graph a schedule ever produces (churn included), which
// TestChunkScratchBoundedAcrossTrials pins at zero allocations.
func (e *Engine) refreshChunks(g *graph.Graph) {
	g.BalancedChunks(e.workers, e.chunks)
	e.chunkG = g
}

// stepCore is the round body shared by profiled and unprofiled runs.
//
//mtmlint:hotpath
func (e *Engine) stepCore(r int) RoundStats {
	g := e.sched.GraphAt(r)
	if e.spanWorkers() > 1 && g != e.chunkG {
		e.refreshChunks(g)
	}
	e.curRound, e.curG = r, g
	var downMask []bool
	if e.cfg.Faults != nil {
		// Advance the churn state machine before the active set is computed:
		// a crashed node is exactly a node outside its activation window.
		e.cfg.Faults.BeginRound(r)
		downMask = e.cfg.Faults.DownMask()
	}
	e.curDown = downMask
	// Step 1 + step 2, fused when the round structure allows it: one
	// barrier computes the active set and runs advertise in the same sweep.
	// The advertise sweep may not inspect neighbors (the Protocol contract),
	// so binding its contexts to the still-forming activity array is
	// unobservable; curAct resolves to its usual value right below, before
	// anything that may look at neighbors runs. The chunked scan reads the
	// published down-mask (e.curDown) per index; the mask is frozen for the
	// round before the dispatch.
	if e.fuseScanAdv {
		e.curAct = e.active
		e.parallelForFused(obs.PhaseScanAdvertise, e.phScanAdv)
	} else {
		e.parallelFor(obs.PhaseActiveScan, e.phActiveScan)
	}
	activeCount := 0
	for w := 0; w < e.spanWorkers(); w++ {
		activeCount += int(e.counters[w].active)
	}
	var act []bool
	if activeCount != e.n {
		act = e.active
	}
	e.curAct = act

	sink := e.cfg.Sink
	if sink != nil {
		e.beginSink()
		sink.Event(obs.Event{Type: obs.TypeRoundStart, Round: r,
			Node: obs.NoNode, Peer: obs.NoNode, A: uint64(activeCount)})
	}
	if e.cfg.Faults != nil {
		e.applyRoundStartFaults(r)
	}

	// Steps 2-3: advertise then decide, in parallel over nodes. Each node's
	// RNG is derived from (seed, node, round) so ordering is irrelevant;
	// traced parallel runs flush the worker event buffers at each barrier.
	// A fused round already ran advertise; its emissions were buffered, so
	// flushing here still puts them behind the RoundStart event.
	if !e.fuseScanAdv {
		e.parallelFor(obs.PhaseAdvertise, e.phAdvertise)
	}
	e.flushWorkerBufs()
	if e.cfg.Faults != nil && e.cfg.TagBits > 0 && e.cfg.Faults.TagFlipEnabled() {
		// Corrupt advertisements between advertise and decide, so deciders
		// (and the propose events below) see the flipped tags. Flip draws
		// are node-addressed, so the pass runs chunked like any other phase.
		e.parallelFor(obs.PhaseTagFlip, e.phTagFlip)
		e.flushWorkerBufs()
	}
	e.parallelFor(obs.PhaseDecide, e.phDecide)
	e.flushWorkerBufs()

	if e.cfg.Classical {
		return e.classicalFinish(r, g, act, activeCount)
	}

	// Step 4: group proposals by receiver (counting sort keeps per-receiver
	// inboxes ordered by sender id), then accept. Both cores — faulted or
	// not — produce bit-identical partners, counters, RNG states, and event
	// streams: fault draws are node-addressed, so each core evaluates them
	// at the same per-node points.
	var proposals, connections, rejects, busyLost, faultLost int
	if e.parCore && e.parExec {
		proposals, connections, rejects, busyLost, faultLost = e.bucketAcceptParallel()
		// Steps 4b-5: materialize partners, then exchange — fused into one
		// barrier when no OnConnections hook needs the pair list first.
		// The fusion is race-free because a chunk's exchange sweep reads
		// only its own partner entries (written by its own partner sweep)
		// and pairs are node-disjoint: the peer state an exchange touches
		// (protocols[v], rngs[v]) is disjoint from the partner/connCount
		// cells the peer's own worker may still be writing.
		if e.fusePartnerEx {
			e.parallelForFused(obs.PhasePartnerExchange, e.phPartnerEx)
			e.flushWorkerBufs()
		} else {
			e.parallelFor(obs.PhasePartner, e.phPartner)
			e.emitConnections(r)
			e.parallelFor(obs.PhaseExchange, e.phExchange)
			e.flushWorkerBufs()
		}
	} else {
		t0 := e.profStart()
		proposals, connections, rejects, busyLost, faultLost = e.bucketAcceptSequential(r)
		e.profEnd(obs.PhaseBucketSeq, t0)
		e.emitConnections(r)
		// Step 5: exchange over established connections (pairs are
		// node-disjoint, so the parallel dispatch is race-free).
		e.parallelFor(obs.PhaseExchange, e.phExchange)
		e.flushWorkerBufs()
	}

	// End of round.
	e.parallelFor(obs.PhaseEndRound, e.phEndRound)
	e.flushWorkerBufs()

	if sink != nil {
		sink.Event(obs.Event{Type: obs.TypeRoundEnd, Round: r,
			Node: int32(connections), Peer: int32(rejects),
			A: uint64(proposals), B: uint64(connections)})
	}

	stats := RoundStats{Round: r, Proposals: proposals, Connections: connections,
		ActiveNodes: activeCount, Accepts: connections, Rejects: rejects,
		BusyLost: busyLost, FaultLost: faultLost}
	if e.cfg.Check {
		//mtmlint:hotpath-end invariant checking is opt-in (Config.Check) and outside the zero-alloc contract; the pinned configuration never takes this branch
		e.verifyRound(r, stats)
	}
	return stats
}

// verifyRound feeds the round's end state to the internal/invariant checker
// and panics on the first violation — Config.Check only.
func (e *Engine) verifyRound(r int, s RoundStats) {
	v := invariant.View{
		Round:   r,
		G:       e.curG,
		Active:  e.curAct,
		Down:    e.curDown,
		Actions: e.actions,
		Partner: e.partner,
		Tags:    e.tags,
		TagBits: e.cfg.TagBits,
		Stats: invariant.Stats{
			Proposals: s.Proposals,
			Accepts:   s.Accepts,
			Rejects:   s.Rejects,
			BusyLost:  s.BusyLost,
			FaultLost: s.FaultLost,
		},
	}
	if err := invariant.Check(v); err != nil {
		panic(fmt.Sprintf("sim: round %d: %v", r, err))
	}
}

// bucketAcceptSequential is the historical single-threaded step-4 core: one
// counting-sort pass groups proposals per receiver, then receivers accept in
// ascending order. The parallel core (bucketAcceptParallel) reproduces its
// results and event stream bit for bit — fault draws included, because
// every draw is node-addressed and both cores evaluate it at the same
// per-node point.
//
//mtmlint:hotpath
func (e *Engine) bucketAcceptSequential(r int) (proposals, connections, rejects, busyLost, faultLost int) {
	sink := e.cfg.Sink
	for u := range e.inboxAt {
		e.inboxAt[u] = 0
	}
	for u := 0; u < e.n; u++ {
		if t := e.actions[u]; t >= 0 {
			if sink != nil {
				sink.Event(obs.Event{Type: obs.TypePropose, Round: r,
					Node: int32(u), Peer: t, A: e.tags[u], B: e.tags[t]})
			}
			proposals++
			// One node-addressed fault draw per proposal: a dropped proposal
			// never reaches its target (but the node still transmitted, so
			// proposals aimed at it stay busy-lost). The drop is recorded in
			// propLost for the scatter pass rather than rewriting actions[u],
			// so the parallel core can make the same decision race-free.
			if e.cfg.Faults != nil {
				if e.cfg.Faults.DropProposal(int32(u), r) {
					e.propLost[u] = true
					faultLost++
					if sink != nil {
						sink.Event(obs.Event{Type: obs.TypeFault, Kind: obs.KindPropLoss,
							Round: r, Node: t, Peer: int32(u)})
					}
					continue
				}
				e.propLost[u] = false
			}
			// A proposal to a node that itself proposed is lost (the model:
			// a node that sends cannot also receive).
			if e.actions[t] == actionReceive {
				e.inboxAt[t+1]++
			} else {
				busyLost++
				if sink != nil {
					sink.Event(obs.Event{Type: obs.TypeReject, Kind: obs.KindBusy,
						Round: r, Node: t, Peer: int32(u)})
				}
			}
		}
	}
	for u := 0; u < e.n; u++ {
		e.inboxAt[u+1] += e.inboxAt[u]
	}
	total := int(e.inboxAt[e.n])
	if cap(e.inboxTo) < total {
		// Amortized doubling: rounding the new capacity up keeps regrowth
		// O(log n) over an execution instead of once per high-water mark.
		newCap := 2 * cap(e.inboxTo)
		if newCap < total {
			newCap = total
		}
		e.inboxTo = make([]int32, total, newCap)
	} else {
		e.inboxTo = e.inboxTo[:total]
	}
	copy(e.cursor, e.inboxAt[:e.n])
	lost := e.propLost // nil exactly when Faults is nil
	for u := 0; u < e.n; u++ {
		if t := e.actions[u]; t >= 0 && e.actions[t] == actionReceive && (lost == nil || !lost[u]) {
			e.inboxTo[e.cursor[t]] = int32(u)
			e.cursor[t]++
		}
	}

	for u := 0; u < e.n; u++ {
		e.partner[u] = noPartner
	}
	for v := 0; v < e.n; v++ {
		if e.actions[v] != actionReceive {
			continue
		}
		inbox := e.inboxTo[e.inboxAt[v]:e.inboxAt[v+1]]
		if len(inbox) == 0 {
			continue
		}
		chosen := inbox[0] // inbox is sorted by sender id
		switch e.cfg.Accept {
		case AcceptUniform:
			if len(inbox) > 1 {
				chosen = inbox[e.rngs[v].Intn(len(inbox))]
			}
		case AcceptLowestID:
			// inbox[0] already.
		case AcceptHighestID:
			chosen = inbox[len(inbox)-1]
		default:
			panic(fmt.Sprintf("sim: unknown accept policy %d", e.cfg.Accept))
		}
		// One node-addressed fault draw per acceptance (after the accept
		// choice, so the node RNG streams match the fault-free run): a
		// dropped connection exchanges nothing, and the proposals the
		// receiver turned down stay contention rejects.
		if e.cfg.Faults != nil && e.cfg.Faults.DropConnection(int32(v), chosen, r) {
			faultLost++
			rejects += len(inbox) - 1
			if sink != nil {
				sink.Event(obs.Event{Type: obs.TypeFault, Kind: obs.KindConnLoss,
					Round: r, Node: int32(v), Peer: chosen})
				for _, s := range inbox {
					if s != chosen {
						sink.Event(obs.Event{Type: obs.TypeReject, Kind: obs.KindContention,
							Round: r, Node: int32(v), Peer: s})
					}
				}
			}
			continue
		}
		e.partner[v] = chosen
		e.partner[chosen] = int32(v)
		e.connCount[v]++
		e.connCount[chosen]++
		connections++
		rejects += len(inbox) - 1
		if sink != nil {
			sink.Event(obs.Event{Type: obs.TypeAccept, Round: r, Node: int32(v), Peer: chosen})
			for _, s := range inbox {
				if s != chosen {
					sink.Event(obs.Event{Type: obs.TypeReject, Kind: obs.KindContention,
						Round: r, Node: int32(v), Peer: s})
				}
			}
			lo, hi := int32(v), chosen
			if hi < lo {
				lo, hi = hi, lo
			}
			sink.Event(obs.Event{Type: obs.TypeConnect, Round: r, Node: lo, Peer: hi})
		}
	}
	return proposals, connections, rejects, busyLost, faultLost
}

// bucketAcceptParallel is the parCore step-4 core: a two-pass parallel
// counting sort buckets proposals (per-worker histograms, one sequential
// column-major prefix merge that turns histogram cells into scatter cursor
// bases, then a parallel scatter), followed by a parallel accept phase —
// legal because each receiver's choice draws only from its own rngs[v]
// stream. Worker chunks ascend in sender id, so every inbox comes out in
// the exact sender order the sequential core produces. The partner/
// connCount materialization happens afterwards in stepCore, fused into the
// exchange dispatch when possible.
//
//mtmlint:hotpath
func (e *Engine) bucketAcceptParallel() (proposals, connections, rejects, busyLost, faultLost int) {
	e.parallelFor(obs.PhaseCount, e.phCount)
	e.flushWorkerBufs()
	t0 := e.profStart()
	span := e.spanWorkers()
	total := int32(0)
	for t := 0; t < e.n; t++ {
		e.inboxAt[t] = total
		for w := 0; w < span; w++ {
			i := w*e.n + t
			c := e.hist[i]
			e.hist[i] = total
			total += c
		}
	}
	e.inboxAt[e.n] = total
	if cap(e.inboxTo) < int(total) {
		// Amortized doubling, as in the sequential core.
		newCap := 2 * cap(e.inboxTo)
		if newCap < int(total) {
			newCap = int(total)
		}
		e.inboxTo = make([]int32, total, newCap)
	} else {
		e.inboxTo = e.inboxTo[:total]
	}
	e.profEnd(obs.PhaseMerge, t0)
	e.parallelFor(obs.PhaseScatter, e.phScatter)
	e.parallelFor(obs.PhaseAccept, e.phAccept)
	e.flushWorkerBufs()
	// The round's accounting is complete after count + accept (partner
	// materialization touches no counters), so the sums happen here and the
	// caller is free to fuse the partner sweep into the exchange dispatch.
	for w := 0; w < span; w++ {
		c := &e.counters[w]
		proposals += int(c.proposals)
		connections += int(c.connections)
		rejects += int(c.rejects)
		busyLost += int(c.busyLost)
		faultLost += int(c.faultLost)
	}
	return proposals, connections, rejects, busyLost, faultLost
}

// applyRoundStartFaults publishes this round's churn and applies state
// resets: crash-with-amnesia recoveries (Plan.ResetOnRecover) and scripted
// corruption bursts. Runs sequentially after the active set is computed and
// before the advertise phase; each reset draws from the injector's
// per-(node, round) state stream.
func (e *Engine) applyRoundStartFaults(r int) {
	in := e.cfg.Faults
	sink := e.cfg.Sink
	if sink != nil {
		for _, u := range in.NewlyDown() {
			sink.Event(obs.Event{Type: obs.TypeFault, Kind: obs.KindCrash,
				Round: r, Node: u, Peer: obs.NoNode})
		}
	}
	for _, u := range in.NewlyRecovered() {
		old := e.protocols[u].Leader()
		if in.ResetOnRecover() {
			if c, ok := e.protocols[u].(Corruptible); ok {
				c.CorruptState(in.StateRNG(u, r))
			}
		}
		if sink != nil {
			sink.Event(obs.Event{Type: obs.TypeFault, Kind: obs.KindRecover,
				Round: r, Node: u, Peer: obs.NoNode, A: old, B: e.protocols[u].Leader()})
		}
	}
	for _, u := range in.CorruptTargets(r) {
		if !e.active[u] {
			continue // corruption targets participating nodes only
		}
		c, ok := e.protocols[u].(Corruptible)
		if !ok {
			continue
		}
		old := e.protocols[u].Leader()
		c.CorruptState(in.StateRNG(u, r))
		if sink != nil {
			sink.Event(obs.Event{Type: obs.TypeFault, Kind: obs.KindCorrupt,
				Round: r, Node: u, Peer: obs.NoNode, A: old, B: e.protocols[u].Leader()})
		}
	}
}

// phaseTagFlip corrupts advertisements on the air for nodes [lo, hi): one
// node-addressed fault draw per active node, between the advertise and
// decide phases. Flip events ride the per-worker buffers like any phase
// emission, so the flushed stream keeps the sequential ascending-node order.
//
//mtmlint:hotpath
func (e *Engine) phaseTagFlip(w, lo, hi int) {
	var sink obs.Sink
	if e.wbufs != nil {
		sink = &e.wbufs[w]
	} else {
		sink = e.cfg.Sink
	}
	r := e.curRound
	for u := lo; u < hi; u++ {
		if !e.active[u] {
			continue
		}
		tag, flipped := e.cfg.Faults.FlipTag(int32(u), r, e.cfg.TagBits, e.tags[u])
		if !flipped {
			continue
		}
		if sink != nil {
			sink.Event(obs.Event{Type: obs.TypeFault, Kind: obs.KindTagFlip,
				Round: r, Node: int32(u), Peer: obs.NoNode, A: e.tags[u], B: tag})
		}
		e.tags[u] = tag
	}
}

// bindCtx points the scratch Context at the current round's state, routing
// event emission to worker w's private buffer in traced parallel runs (and
// directly to the sink otherwise).
func (e *Engine) bindCtx(c *Context, w int) {
	c.Round = e.curRound
	c.g = e.curG
	c.tags = e.tags
	c.act = e.curAct
	if e.wbufs != nil {
		c.sink = &e.wbufs[w]
	} else {
		c.sink = e.cfg.Sink
	}
}

// bindCtxSeq is bindCtx for contexts used only in the engine's sequential
// sections (the classical exchange loop): emission goes directly to the
// configured sink so it interleaves correctly with the section's own direct
// emissions.
func (e *Engine) bindCtxSeq(c *Context) {
	c.Round = e.curRound
	c.g = e.curG
	c.tags = e.tags
	c.act = e.curAct
	c.sink = e.cfg.Sink
}

// flushWorkerBufs drains the per-worker event buffers into the configured
// sink in ascending worker order; the engine calls it at every sequential
// barrier that follows an emitting parallel phase. Worker chunks ascend in
// node id and each worker iterates its chunk ascending, so this
// concatenation reproduces exactly the sequential ascending-node emission
// order. No-op (one branch) for untraced or sequential runs.
//
//mtmlint:hotpath
func (e *Engine) flushWorkerBufs() {
	if e.wbufs == nil {
		return
	}
	t0 := e.profStart()
	sink := e.cfg.Sink
	for w := range e.wbufs {
		e.wbufs[w].FlushTo(sink)
	}
	e.profEnd(obs.PhaseFlush, t0)
}

// profStart reads the profiler clock at the start of a sequential section,
// or 0 when unprofiled.
//
//mtmlint:hotpath
func (e *Engine) profStart() int64 {
	if e.prof == nil {
		return 0
	}
	return e.prof.Clock()
}

// profEnd charges a sequential section started at profStart to phase ph.
//
//mtmlint:hotpath
func (e *Engine) profEnd(ph obs.Phase, t0 int64) {
	if e.prof == nil {
		return
	}
	e.prof.AddSeq(ph, e.prof.Clock()-t0)
}

// phaseAdvertise runs step 2 for nodes [lo, hi) using worker w's scratch.
//
//mtmlint:hotpath
func (e *Engine) phaseAdvertise(w, lo, hi int) {
	ctx := &e.ctxA[w]
	e.bindCtx(ctx, w)
	r := e.curRound
	for u := lo; u < hi; u++ {
		if !e.active[u] {
			e.actions[u] = actionInactive
			e.tags[u] = 0
			continue
		}
		e.rngs[u].Reseed(e.cfg.Seed, uint64(u), uint64(r))
		ctx.Node = int32(u)
		ctx.RNG = &e.rngs[u]
		tag := e.protocols[u].Advertise(ctx)
		if e.tagLimit != 0 && tag >= e.tagLimit {
			panic(fmt.Sprintf("sim: node %d advertised tag %d exceeding b=%d bits", u, tag, e.cfg.TagBits))
		}
		e.tags[u] = tag
	}
}

// phaseDecide runs step 3 for nodes [lo, hi) using worker w's scratch.
//
//mtmlint:hotpath
func (e *Engine) phaseDecide(w, lo, hi int) {
	ctx := &e.ctxA[w]
	e.bindCtx(ctx, w)
	for u := lo; u < hi; u++ {
		if !e.active[u] {
			continue
		}
		ctx.Node = int32(u)
		ctx.RNG = &e.rngs[u]
		target, propose := e.protocols[u].Decide(ctx)
		if !propose {
			e.actions[u] = actionReceive
			continue
		}
		if target < 0 || int(target) >= e.n || !e.curG.HasEdge(u, int(target)) {
			panic(fmt.Sprintf("sim: node %d proposed to non-neighbor %d in round %d", u, target, e.curRound))
		}
		if !e.active[target] {
			panic(fmt.Sprintf("sim: node %d proposed to inactive node %d in round %d", u, target, e.curRound))
		}
		e.actions[u] = target
	}
}

// phaseExchange runs step 5 for pairs whose smaller endpoint is in [lo, hi).
//
//mtmlint:hotpath
func (e *Engine) phaseExchange(w, lo, hi int) {
	ctxU, ctxV := &e.ctxA[w], &e.ctxB[w]
	e.bindCtx(ctxU, w)
	e.bindCtx(ctxV, w)
	for u := lo; u < hi; u++ {
		v := e.partner[u]
		if v == noPartner || int(v) < u {
			continue // each pair handled once, by its smaller endpoint
		}
		ctxU.Node = int32(u)
		ctxU.RNG = &e.rngs[u]
		ctxV.Node = v
		ctxV.RNG = &e.rngs[v]
		mu := e.protocols[u].Outgoing(ctxU, v)
		mv := e.protocols[v].Outgoing(ctxV, int32(u))
		e.checkMessage(u, mu)
		e.checkMessage(int(v), mv)
		e.emitDeliver(ctxU.sink, int32(u), v, mv)
		e.protocols[u].Deliver(ctxU, v, mv)
		e.emitDeliver(ctxU.sink, v, int32(u), mu)
		e.protocols[v].Deliver(ctxV, int32(u), mu)
	}
}

// emitDeliver publishes one message delivery (recipient <- sender) to the
// given sink (the worker's buffer in traced parallel runs); the event
// precedes the Deliver callback so any transition the message causes
// appears after its delivery in the trace.
//
//mtmlint:hotpath
func (e *Engine) emitDeliver(sink obs.Sink, to, from int32, m Message) {
	if sink == nil {
		return
	}
	var uid uint64
	if len(m.UIDs) > 0 {
		uid = m.UIDs[0]
	}
	sink.Event(obs.Event{Type: obs.TypeDeliver, Round: e.curRound,
		Node: to, Peer: from, A: uid, B: m.Aux})
}

// phaseEndRound runs the end-of-round callback for nodes [lo, hi).
//
//mtmlint:hotpath
func (e *Engine) phaseEndRound(w, lo, hi int) {
	ctx := &e.ctxA[w]
	e.bindCtx(ctx, w)
	for u := lo; u < hi; u++ {
		if !e.active[u] {
			continue
		}
		ctx.Node = int32(u)
		ctx.RNG = &e.rngs[u]
		e.protocols[u].EndRound(ctx)
	}
}

// phaseActiveScan computes the activity bits for nodes [lo, hi) and counts
// them into worker w's counter row. The fault down-mask (e.curDown,
// published sequentially before the dispatch and frozen for the round) is
// read per index, so crashed nodes scan as inactive on any worker.
//
//mtmlint:hotpath
func (e *Engine) phaseActiveScan(w, lo, hi int) {
	r := e.curRound
	ctr := &e.counters[w]
	ctr.active = 0
	down := e.curDown
	for u := lo; u < hi; u++ {
		a := e.cfg.Activations == nil || e.cfg.Activations[u] <= r
		if a && e.cfg.Departures != nil && e.cfg.Departures[u] > 0 && r > e.cfg.Departures[u] {
			a = false
		}
		if a && down != nil && down[u] {
			a = false
		}
		e.active[u] = a
		if a {
			ctr.active++
		}
	}
}

// phaseCount is counting-sort pass one: worker w histograms the proposals of
// senders [lo, hi) into its private row of e.hist, counting every proposal
// (delivered or busy-lost) into its proposals counter — the same accounting
// as the sequential core. Traced runs also emit the propose and busy-reject
// events here, into the worker's private buffer, in the exact per-sender
// order the sequential core emits them.
//
//mtmlint:hotpath
func (e *Engine) phaseCount(w, lo, hi int) {
	row := e.hist[w*e.n : (w+1)*e.n]
	clear(row)
	ctr := &e.counters[w]
	ctr.proposals = 0
	ctr.busyLost = 0
	ctr.faultLost = 0
	traced := e.wbufs != nil
	r := e.curRound
	for u := lo; u < hi; u++ {
		if t := e.actions[u]; t >= 0 {
			if traced {
				e.wbufs[w].Event(obs.Event{Type: obs.TypePropose, Round: r,
					Node: int32(u), Peer: t, A: e.tags[u], B: e.tags[t]})
			}
			ctr.proposals++
			// Node-addressed drop draw, evaluated at the same per-sender
			// point as the sequential core; the verdict lands in the
			// chunk-local propLost[u] cell for the scatter pass.
			if e.cfg.Faults != nil {
				if e.cfg.Faults.DropProposal(int32(u), r) {
					e.propLost[u] = true
					ctr.faultLost++
					if traced {
						e.wbufs[w].Event(obs.Event{Type: obs.TypeFault, Kind: obs.KindPropLoss,
							Round: r, Node: t, Peer: int32(u)})
					}
					continue
				}
				e.propLost[u] = false
			}
			if e.actions[t] == actionReceive {
				row[t]++
			} else {
				ctr.busyLost++
				if traced {
					e.wbufs[w].Event(obs.Event{Type: obs.TypeReject, Kind: obs.KindBusy,
						Round: r, Node: t, Peer: int32(u)})
				}
			}
		}
	}
}

// phaseScatter is counting-sort pass two: after the sequential merge rewrote
// worker w's histogram row into scatter cursor bases, each worker writes its
// senders into the shared inboxTo. Distinct (w, t) cursor ranges are
// disjoint by construction of the merge, and chunks ascend in sender id, so
// each receiver's inbox is exactly the sequential core's.
//
//mtmlint:hotpath
func (e *Engine) phaseScatter(w, lo, hi int) {
	row := e.hist[w*e.n : (w+1)*e.n]
	for u := lo; u < hi; u++ {
		if t := e.actions[u]; t >= 0 && e.actions[t] == actionReceive && (e.propLost == nil || !e.propLost[u]) {
			e.inboxTo[row[t]] = int32(u)
			row[t]++
		}
	}
}

// phaseAccept runs step 4's accept decision for receivers [lo, hi): each
// picks among its inbox exactly as the sequential core does, drawing only
// from its own rngs[v] stream, and records the winner in e.chosen. Every v
// in the chunk gets a chosen entry (noPartner for non-receivers) so
// phasePartner can test chosen[t] for any target. Traced runs also emit the
// accept, contention-reject, and connect events here, into the worker's
// private buffer, in the exact per-receiver order of the sequential core.
//
//mtmlint:hotpath
func (e *Engine) phaseAccept(w, lo, hi int) {
	ctr := &e.counters[w]
	ctr.connections = 0
	ctr.rejects = 0
	traced := e.wbufs != nil
	r := e.curRound
	faulted := e.cfg.Faults != nil
	for v := lo; v < hi; v++ {
		if e.actions[v] != actionReceive {
			e.chosen[v] = noPartner
			continue
		}
		inbox := e.inboxTo[e.inboxAt[v]:e.inboxAt[v+1]]
		if len(inbox) == 0 {
			e.chosen[v] = noPartner
			continue
		}
		c := inbox[0] // inbox is sorted by sender id
		switch e.cfg.Accept {
		case AcceptUniform:
			if len(inbox) > 1 {
				c = inbox[e.rngs[v].Intn(len(inbox))]
			}
		case AcceptLowestID:
			// inbox[0] already.
		case AcceptHighestID:
			c = inbox[len(inbox)-1]
		default:
			panic(fmt.Sprintf("sim: unknown accept policy %d", e.cfg.Accept))
		}
		// Node-addressed connection-drop draw, after the accept choice like
		// the sequential core: the receiver wastes its round (no partner),
		// and the turned-down proposals stay contention rejects.
		if faulted && e.cfg.Faults.DropConnection(int32(v), c, r) {
			e.chosen[v] = noPartner
			ctr.faultLost++
			ctr.rejects += int64(len(inbox) - 1)
			if traced {
				e.wbufs[w].Event(obs.Event{Type: obs.TypeFault, Kind: obs.KindConnLoss,
					Round: r, Node: int32(v), Peer: c})
				for _, s := range inbox {
					if s != c {
						e.wbufs[w].Event(obs.Event{Type: obs.TypeReject, Kind: obs.KindContention,
							Round: r, Node: int32(v), Peer: s})
					}
				}
			}
			continue
		}
		e.chosen[v] = c
		ctr.connections++
		ctr.rejects += int64(len(inbox) - 1)
		if traced {
			e.wbufs[w].Event(obs.Event{Type: obs.TypeAccept, Round: r, Node: int32(v), Peer: c})
			for _, s := range inbox {
				if s != c {
					e.wbufs[w].Event(obs.Event{Type: obs.TypeReject, Kind: obs.KindContention,
						Round: r, Node: int32(v), Peer: s})
				}
			}
			lo32, hi32 := int32(v), c
			if hi32 < lo32 {
				lo32, hi32 = hi32, lo32
			}
			e.wbufs[w].Event(obs.Event{Type: obs.TypeConnect, Round: r, Node: lo32, Peer: hi32})
		}
	}
}

// phasePartner materializes partner and connCount for nodes [lo, hi) from
// the accept results: a receiver pairs with its chosen sender, a sender
// pairs with its target iff that target chose it. Each node writes only its
// own entries, so the symmetric writes of the sequential core become two
// one-sided reads.
//
// Traced runs emit nothing here: the accept phase already emitted the
// round's accept/reject/connect events.
//
//mtmlint:hotpath
func (e *Engine) phasePartner(w, lo, hi int) {
	for u := lo; u < hi; u++ {
		if c := e.chosen[u]; c != noPartner {
			e.partner[u] = c
			e.connCount[u]++
			continue
		}
		if t := e.actions[u]; t >= 0 && e.chosen[t] == int32(u) {
			e.partner[u] = t
			e.connCount[u]++
			continue
		}
		e.partner[u] = noPartner
	}
}

// phaseScanAdvertise is the fused step-1 + step-2 body: one dispatch scans
// the activity of nodes [lo, hi) into worker w's counter row, then runs the
// advertise sweep over the same — now cache-warm — chunk, saving a full
// barrier and a second pass over the chunk every round. Fused rounds are
// fault-free (New guarantees it), so there is no down-mask to consult. The
// two sweeps are the bodies of phaseActiveScan and phaseAdvertise verbatim;
// those remain the unfused (faulted/spawn) phases. Profiled runs self-time
// the sweeps so busy attribution stays on the constituent phases; the
// dispatch charges its wall time to obs.PhaseScanAdvertise.
//
//mtmlint:hotpath
func (e *Engine) phaseScanAdvertise(w, lo, hi int) {
	r := e.curRound
	var t0 int64
	if e.prof != nil {
		t0 = e.prof.Clock()
	}
	ctr := &e.counters[w]
	ctr.active = 0
	for u := lo; u < hi; u++ {
		a := e.cfg.Activations == nil || e.cfg.Activations[u] <= r
		if a && e.cfg.Departures != nil && e.cfg.Departures[u] > 0 && r > e.cfg.Departures[u] {
			a = false
		}
		e.active[u] = a
		if a {
			ctr.active++
		}
	}
	if e.prof != nil {
		t1 := e.prof.Clock()
		e.prof.AddBusy(obs.PhaseActiveScan, w, t1-t0)
		t0 = t1
	}
	ctx := &e.ctxA[w]
	e.bindCtx(ctx, w)
	for u := lo; u < hi; u++ {
		if !e.active[u] {
			e.actions[u] = actionInactive
			e.tags[u] = 0
			continue
		}
		e.rngs[u].Reseed(e.cfg.Seed, uint64(u), uint64(r))
		ctx.Node = int32(u)
		ctx.RNG = &e.rngs[u]
		tag := e.protocols[u].Advertise(ctx)
		if e.tagLimit != 0 && tag >= e.tagLimit {
			panic(fmt.Sprintf("sim: node %d advertised tag %d exceeding b=%d bits", u, tag, e.cfg.TagBits))
		}
		e.tags[u] = tag
	}
	if e.prof != nil {
		e.prof.AddBusy(obs.PhaseAdvertise, w, e.prof.Clock()-t0)
	}
}

// phasePartnerExchange is the fused step-4b + step-5 body: one dispatch
// materializes partners for nodes [lo, hi) (phasePartner's body verbatim),
// then exchanges over the chunk's pairs (phaseExchange's body verbatim).
// The fusion is race-free without a barrier in between because the exchange
// sweep reads only partner entries its own partner sweep wrote — a pair is
// handled by the worker owning its smaller endpoint, never by reading the
// peer's partner cell — and the peer state an exchange touches (protocols,
// rngs) is disjoint from the partner/connCount cells the peer's own worker
// may still be writing. Cross-chunk reads of chosen/actions see values
// frozen at the accept/decide barriers. Profiled runs self-time the sweeps
// onto the constituent phases, as in phaseScanAdvertise.
//
//mtmlint:hotpath
func (e *Engine) phasePartnerExchange(w, lo, hi int) {
	var t0 int64
	if e.prof != nil {
		t0 = e.prof.Clock()
	}
	for u := lo; u < hi; u++ {
		if c := e.chosen[u]; c != noPartner {
			e.partner[u] = c
			e.connCount[u]++
		} else if t := e.actions[u]; t >= 0 && e.chosen[t] == int32(u) {
			e.partner[u] = t
			e.connCount[u]++
		} else {
			e.partner[u] = noPartner
		}
	}
	if e.prof != nil {
		t1 := e.prof.Clock()
		e.prof.AddBusy(obs.PhasePartner, w, t1-t0)
		t0 = t1
	}
	ctxU, ctxV := &e.ctxA[w], &e.ctxB[w]
	e.bindCtx(ctxU, w)
	e.bindCtx(ctxV, w)
	for u := lo; u < hi; u++ {
		v := e.partner[u]
		if v == noPartner || int(v) < u {
			continue // each pair handled once, by its smaller endpoint
		}
		ctxU.Node = int32(u)
		ctxU.RNG = &e.rngs[u]
		ctxV.Node = v
		ctxV.RNG = &e.rngs[v]
		mu := e.protocols[u].Outgoing(ctxU, v)
		mv := e.protocols[v].Outgoing(ctxV, int32(u))
		e.checkMessage(u, mu)
		e.checkMessage(int(v), mv)
		e.emitDeliver(ctxU.sink, int32(u), v, mv)
		e.protocols[u].Deliver(ctxU, v, mv)
		e.emitDeliver(ctxU.sink, v, int32(u), mu)
		e.protocols[v].Deliver(ctxV, int32(u), mu)
	}
	if e.prof != nil {
		e.prof.AddBusy(obs.PhaseExchange, w, e.prof.Clock()-t0)
	}
}

// emitConnections invokes the OnConnections hook with the round's
// established pairs as (smaller, larger) node ids in ascending order. No-op
// without the hook. The hook must observe the pair list before any exchange
// runs, which is why New disables partner/exchange fusion when it is set.
func (e *Engine) emitConnections(r int) {
	if e.cfg.OnConnections == nil {
		return
	}
	e.pairScratch = e.pairScratch[:0]
	for u := 0; u < e.n; u++ {
		if v := e.partner[u]; v != noPartner && int(v) > u {
			e.pairScratch = append(e.pairScratch, [2]int32{int32(u), v})
		}
	}
	e.cfg.OnConnections(r, e.pairScratch)
}

// classicalFinish completes a round under classical telephone semantics:
// every proposal is answered (receivers serve unboundedly many incoming
// connections, and senders can also be called). Exchanges run sequentially
// in sender order for determinism — a receiver's protocol may be delivered
// to many times per round.
func (e *Engine) classicalFinish(r int, g *graph.Graph, act []bool, activeCount int) RoundStats {
	ctxU, ctxV := &e.ctxA[0], &e.ctxB[0]
	// The exchange loop below is sequential, so its contexts bind the sink
	// directly: buffering their transitions would tear them away from the
	// propose/accept/connect events this loop emits in between.
	e.bindCtxSeq(ctxU)
	e.bindCtxSeq(ctxV)
	connections := 0
	proposals := 0
	sink := e.cfg.Sink
	if e.cfg.OnConnections != nil {
		e.pairScratch = e.pairScratch[:0]
	}
	t0 := e.profStart()
	for u := 0; u < e.n; u++ {
		v := e.actions[u]
		if v < 0 {
			continue
		}
		proposals++
		if sink != nil {
			sink.Event(obs.Event{Type: obs.TypePropose, Round: r,
				Node: int32(u), Peer: v, A: e.tags[u], B: e.tags[v]})
		}
		// Classical mode has no accept step, so only proposal loss applies
		// (ConnLoss draws nothing here — classical connects every proposal
		// that arrives).
		if e.cfg.Faults != nil && e.cfg.Faults.DropProposal(int32(u), r) {
			if sink != nil {
				sink.Event(obs.Event{Type: obs.TypeFault, Kind: obs.KindPropLoss,
					Round: r, Node: v, Peer: int32(u)})
			}
			continue
		}
		connections++
		e.connCount[u]++
		e.connCount[v]++
		if e.cfg.OnConnections != nil {
			e.pairScratch = append(e.pairScratch, [2]int32{int32(u), v})
		}
		if sink != nil {
			sink.Event(obs.Event{Type: obs.TypeAccept, Round: r, Node: v, Peer: int32(u)})
			lo, hi := int32(u), v
			if hi < lo {
				lo, hi = hi, lo
			}
			sink.Event(obs.Event{Type: obs.TypeConnect, Round: r, Node: lo, Peer: hi})
		}
		ctxU.Node = int32(u)
		ctxU.RNG = &e.rngs[u]
		ctxV.Node = v
		ctxV.RNG = &e.rngs[v]
		mu := e.protocols[u].Outgoing(ctxU, v)
		mv := e.protocols[v].Outgoing(ctxV, int32(u))
		e.checkMessage(u, mu)
		e.checkMessage(int(v), mv)
		e.emitDeliver(sink, int32(u), v, mv)
		e.protocols[u].Deliver(ctxU, v, mv)
		e.emitDeliver(sink, v, int32(u), mu)
		e.protocols[v].Deliver(ctxV, int32(u), mu)
	}
	e.profEnd(obs.PhaseExchange, t0)

	// The callback fires after the loop (unlike the main path's
	// pre-exchange call) so fault-dropped proposals are excluded; it still
	// observes the same pairs-in-sender-order contract.
	if e.cfg.OnConnections != nil {
		e.cfg.OnConnections(r, e.pairScratch)
	}

	e.parallelFor(obs.PhaseEndRound, e.phEndRound)
	e.flushWorkerBufs()
	if sink != nil {
		sink.Event(obs.Event{Type: obs.TypeRoundEnd, Round: r,
			Node: int32(connections), Peer: 0,
			A: uint64(proposals), B: uint64(connections)})
	}
	return RoundStats{Round: r, Proposals: proposals, Connections: connections,
		ActiveNodes: activeCount, Accepts: connections, Rejects: 0}
}

func (e *Engine) checkMessage(u int, m Message) {
	if len(m.UIDs) > e.cfg.MaxUIDs {
		panic(fmt.Sprintf("sim: node %d sent %d UIDs, budget is %d", u, len(m.UIDs), e.cfg.MaxUIDs))
	}
}

// Dispatch gate floors, benchmark-derived per core (see DESIGN §14 for the
// crossover measurement; the rounds benchmark tier re-measures them).
// Below the floor a parallel dispatch costs more than the chunked sweep
// saves, so parallelFor runs the phase inline.
const (
	// spawnDispatchFloor is the historical gate of the goroutine-spawning
	// core (DispatchSpawn): ~9 dispatches per round at `go func` × workers
	// + WaitGroup each (≈3.7 kB and tens of µs of scheduler work per round
	// at 8 workers) need chunks of at least a few hundred nodes to
	// amortize.
	spawnDispatchFloor = 256
	// poolDispatchFloor is the pool core's gate. A pool dispatch is one
	// atomic publish + wake (~1µs end to end at 8 workers), an order of
	// magnitude cheaper than a spawn dispatch, but per-phase chunk work is
	// only ~100ns/node — below about a thousand nodes per phase even an
	// ideal speedup cannot recover ~7 wake/join barriers per round.
	poolDispatchFloor = 1024
)

// spanWorkers reports how many worker indices parallelFor actually
// dispatches — the number of counter/histogram rows holding fresh data.
// It is 1 whenever parallelFor takes its inline path.
//
//mtmlint:hotpath
func (e *Engine) spanWorkers() int {
	if !e.parExec {
		return 1
	}
	return e.workers
}

// parallelFor runs fn over [0, n) split at the degree-weighted boundaries in
// e.chunks, passing each chunk its worker index w (for per-worker scratch).
// Worker 0 runs inline on the caller; every worker index is dispatched even
// when its chunk is empty, so per-worker counter and histogram rows are
// freshly written on every call. Below the dispatch gate (Workers == 1, a
// node count under the core's floor, or DispatchAuto on a single-P host) it
// runs inline with w = 0 and allocates nothing.
//
// Parallel dispatches go to the persistent worker pool — one atomic publish
// plus wake, zero allocations, certified on the hot path — except in
// DispatchSpawn mode, which keeps the historical per-phase goroutine spawn
// as the differential baseline.
//
// ph names the phase for the profiler: profiled runs record the phase's wall
// time and each worker's busy time (the per-phase imbalance in the
// mtmprof/v1 report); unprofiled runs never read the clock.
//
//mtmlint:hotpath
func (e *Engine) parallelFor(ph obs.Phase, fn func(w, lo, hi int)) {
	if !e.parExec {
		if e.prof == nil {
			fn(0, 0, e.n)
			return
		}
		t0 := e.prof.Clock()
		fn(0, 0, e.n)
		e.prof.AddSeq(ph, e.prof.Clock()-t0)
		return
	}
	if e.pool != nil {
		if e.prof == nil {
			e.pool.dispatch(ph, fn, e.chunks, nil, false)
			return
		}
		t0 := e.prof.Clock()
		e.pool.dispatch(ph, fn, e.chunks, e.prof, false)
		e.prof.AddWall(ph, e.prof.Clock()-t0)
		return
	}
	//mtmlint:hotpath-end goroutine dispatch below is the legacy DispatchSpawn core, kept as the differential baseline; the pinned zero-alloc configurations dispatch inline or on the pool above
	if e.prof == nil {
		var wg sync.WaitGroup
		for w := 1; w < e.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				fn(w, e.chunks[w], e.chunks[w+1])
			}(w)
		}
		fn(0, e.chunks[0], e.chunks[1])
		wg.Wait()
		return
	}
	prof := e.prof
	t0 := prof.Clock()
	var wg sync.WaitGroup
	for w := 1; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := prof.Clock()
			fn(w, e.chunks[w], e.chunks[w+1])
			prof.AddBusy(ph, w, prof.Clock()-s)
		}(w)
	}
	s := prof.Clock()
	fn(0, e.chunks[0], e.chunks[1])
	prof.AddBusy(ph, 0, prof.Clock()-s)
	wg.Wait()
	prof.AddWall(ph, prof.Clock()-t0)
}

// parallelForFused is parallelFor for fused phase bodies, which self-time
// their constituent sweeps (AddBusy onto the constituent phases, see
// phaseScanAdvertise/phasePartnerExchange): the dispatch records only the
// composite phase's wall time, so no busy nanosecond is counted twice.
//
//mtmlint:hotpath
func (e *Engine) parallelForFused(ph obs.Phase, fn func(w, lo, hi int)) {
	if !e.parExec {
		if e.prof == nil {
			fn(0, 0, e.n)
			return
		}
		t0 := e.prof.Clock()
		fn(0, 0, e.n)
		e.prof.AddWall(ph, e.prof.Clock()-t0)
		return
	}
	// Fused bodies never run in DispatchSpawn mode (New disables fusion
	// there), so a parallel fused dispatch always has the pool.
	if e.prof == nil {
		e.pool.dispatch(ph, fn, e.chunks, nil, true)
		return
	}
	t0 := e.prof.Clock()
	e.pool.dispatch(ph, fn, e.chunks, e.prof, true)
	e.prof.AddWall(ph, e.prof.Clock()-t0)
}

// StableFor wraps a stop condition with a realistic stabilization detector:
// it fires only after inner has held continuously for k consecutive rounds.
// AllLeadersEqual is a correct instant detector for this repository's
// protocols (candidates only improve toward a unique minimum), but StableFor
// models what a deployment without that structural knowledge would measure.
func StableFor(inner StopCondition, k int) StopCondition {
	if k < 1 {
		panic("sim: StableFor needs k >= 1")
	}
	streak := 0
	return func(round int, protocols []Protocol) bool {
		if inner(round, protocols) {
			streak++
		} else {
			streak = 0
		}
		return streak >= k
	}
}

// NodeLoad reports per-node lifetime connection counts — the simulator's
// proxy for radio/battery cost, the practical resource the paper's
// introduction motivates conserving. The returned slice is a copy.
func (e *Engine) NodeLoad() []int64 {
	out := make([]int64, len(e.connCount))
	copy(out, e.connCount)
	return out
}

// LoadStats summarizes per-node connection load.
type LoadStats struct {
	Min, Max int64
	Mean     float64
	// Imbalance is Max/Mean (1 = perfectly even; large = hot spots).
	Imbalance float64
}

// Load computes LoadStats over the engine's lifetime connection counts.
// An engine tracking no nodes yields the zero LoadStats (rather than a
// sentinel Min and NaN Mean).
func (e *Engine) Load() LoadStats {
	if len(e.connCount) == 0 {
		return LoadStats{}
	}
	var total, maxLoad int64
	minLoad := int64(1<<62 - 1)
	for _, c := range e.connCount {
		total += c
		if c > maxLoad {
			maxLoad = c
		}
		if c < minLoad {
			minLoad = c
		}
	}
	mean := float64(total) / float64(len(e.connCount))
	imb := 0.0
	if mean > 0 {
		imb = float64(maxLoad) / mean
	}
	return LoadStats{Min: minLoad, Max: maxLoad, Mean: mean, Imbalance: imb}
}
