package sim_test

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/rumor"
	"mobiletel/internal/sim"
)

func TestClassicalHubServesAllLeaves(t *testing.T) {
	// In classical mode, a star hub that knows the rumor can be pulled by
	// every leaf simultaneously: full dissemination in O(1) rounds. In the
	// mobile model the same workload needs >= n-1 rounds.
	n := 64
	f := gen.Star(n)
	run := func(classical bool) int {
		protocols := rumor.NewPushPullNetwork(n, map[int]bool{0: true})
		eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{
			Seed: 7, MaxRounds: 1_000_000, Classical: classical, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(rumor.AllInformed)
		if err != nil {
			t.Fatal(err)
		}
		return res.StabilizedRound
	}
	classical := run(true)
	mobile := run(false)
	if classical > 12 {
		t.Fatalf("classical star dissemination took %d rounds; hub not serving all", classical)
	}
	if mobile < n-1 {
		t.Fatalf("mobile star dissemination took %d < n-1 rounds; acceptance cap broken", mobile)
	}
}

func TestClassicalConnectionsCanExceedHalfN(t *testing.T) {
	// All leaves pull the hub at once: connections per round can reach n-1,
	// impossible under the mobile model's one-connection cap.
	n := 32
	f := gen.Star(n)
	protocols := rumor.NewPushPullNetwork(n, map[int]bool{0: true})
	maxConns := 0
	eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{
		Seed: 3, MaxRounds: 50, Classical: true, Workers: 1,
		Observer: func(s sim.RoundStats) {
			if s.Connections > maxConns {
				maxConns = s.Connections
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = eng.Run(rumor.AllInformed)
	if maxConns <= n/2 {
		t.Fatalf("classical max connections/round = %d; expected hub fan-in beyond n/2", maxConns)
	}
}

func TestClassicalLeaderElectionStillCorrect(t *testing.T) {
	uids := core.UniqueUIDs(40, 5)
	protocols := core.NewBlindGossipNetwork(uids)
	eng, err := sim.New(dyngraph.NewStatic(gen.RandomRegular(40, 4, 9)), protocols, sim.Config{
		Seed: 11, MaxRounds: 1_000_000, Classical: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err != nil {
		t.Fatal(err)
	}
	if protocols[0].Leader() != core.MinUID(uids) {
		t.Fatal("classical-mode election elected wrong leader")
	}
}

func TestClassicalDeterministic(t *testing.T) {
	run := func() sim.Result {
		protocols := rumor.NewPushPullNetwork(30, map[int]bool{0: true})
		eng, err := sim.New(dyngraph.NewStatic(gen.Cycle(30)), protocols, sim.Config{
			Seed: 4, MaxRounds: 1_000_000, Classical: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(rumor.AllInformed)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("classical mode nondeterministic: %+v vs %+v", a, b)
	}
}
