package sim

import "testing"

// TestLoadZeroNodes pins the empty-engine edge case: Load on an engine
// tracking no nodes must return the zero LoadStats, not a 1<<62-1 sentinel
// Min and a NaN Mean. (sim.New rejects empty networks, but a zero-value
// Engine — e.g. a partially initialized embedding — must still be safe to
// query.)
func TestLoadZeroNodes(t *testing.T) {
	var e Engine
	got := e.Load()
	if got != (LoadStats{}) {
		t.Errorf("Load() on zero-node engine = %+v, want zero LoadStats", got)
	}
	if load := e.NodeLoad(); len(load) != 0 {
		t.Errorf("NodeLoad() on zero-node engine has %d entries, want 0", len(load))
	}
}
