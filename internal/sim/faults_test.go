// External test package, like allocs_test.go: core implements sim.Protocol,
// so importing it from an in-package test would be an import cycle.
package sim_test

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/fault"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
)

func mustInjector(t *testing.T, plan fault.Plan, n int) *fault.Injector {
	t.Helper()
	in, err := fault.NewInjector(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestSteadyStateZeroAllocsFaultFree pins the stronger form of the fault
// layer's zero-cost contract: not just a nil Config.Faults (covered by
// TestSteadyStateZeroAllocs), but an *attached* injector whose rates are all
// zero must keep the steady-state round at exactly 0 allocs — every fault
// hook reduces to predictable branches and a per-round RNG reseed.
func TestSteadyStateZeroAllocsFaultFree(t *testing.T) {
	const n = 256
	// A scripted crash in round 1 keeps the down-mask path exercised (the
	// mask check runs every round for the rest of the run) without any
	// rate-driven churn.
	plan := fault.Plan{Seed: 7, Crashes: []fault.NodeRound{{Round: 1, Node: 0}}}
	eng, err := sim.New(
		dyngraph.NewStatic(gen.RandomRegular(n, 8, 1)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(n, 42)),
		sim.Config{Seed: 42, Workers: 1, Faults: mustInjector(t, plan, n)},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(1, 50)
	next := 51
	avg := testing.AllocsPerRun(200, func() {
		eng.RunRounds(next, 1)
		next++
	})
	if avg != 0 {
		t.Fatalf("fault-free steady-state round allocates: %v allocs/round, want 0", avg)
	}
}

// TestFaultDeterminismAcrossWorkers: with a fixed (seed, plan), the faulted
// execution is bit-identical at any worker count — per-node fault draws are
// node-addressed (pure functions of plan seed, kind, node, and round), so
// they run inside the parallel phase bodies without any draw-order coupling.
// The full repertoire sweep with traces lives in
// TestParallelRoundConformanceAcrossWorkers; this is the long-run version.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	const n = 300 // above the parallelFor inline threshold
	plan := fault.Plan{
		Seed: 9, CrashRate: 0.01, RecoverRate: 0.3, ResetOnRecover: true,
		ProposalLoss: 0.1, ConnLoss: 0.05,
	}
	run := func(workers int) (sim.Result, []uint64) {
		eng, err := sim.New(
			dyngraph.NewStatic(gen.RandomRegular(n, 6, 3)),
			core.NewBlindGossipNetwork(core.UniqueUIDs(n, 5)),
			sim.Config{Seed: 5, Workers: workers, MaxRounds: 4000, Faults: mustInjector(t, plan, n)},
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(sim.AllLeadersEqual)
		if err != nil {
			t.Fatal(err)
		}
		leaders := make([]uint64, n)
		for i, p := range eng.Protocols() {
			leaders[i] = p.Leader()
		}
		return res, leaders
	}
	res1, l1 := run(1)
	res4, l4 := run(4)
	if res1 != res4 {
		t.Errorf("results differ across workers: %+v vs %+v", res1, res4)
	}
	for i := range l1 {
		if l1[i] != l4[i] {
			t.Fatalf("node %d leader differs across workers: %d vs %d", i, l1[i], l4[i])
		}
	}
}

// TestFaultTraceDeterminism: two traced runs of the same (seed, plan)
// produce identical event streams, fault events included.
func TestFaultTraceDeterminism(t *testing.T) {
	const n = 32
	plan := fault.Plan{
		Seed: 21, CrashRate: 0.02, RecoverRate: 0.4, TagFlipRate: 0.05,
		ProposalLoss: 0.1,
		Corruptions:  []fault.Burst{{Round: 40, Nodes: []int{1, 5, 9}}},
	}
	record := func() []obs.Event {
		ring := obs.NewRing(1 << 18)
		protocols, _ := core.NewAsyncBitConvNetwork(
			core.UniqueUIDs(n, 11), core.BitConvParams{K: 8, GroupLen: 4}, 11)
		eng, err := sim.New(
			dyngraph.NewStatic(gen.RandomRegular(n, 6, 2)),
			protocols,
			sim.Config{Seed: 11, TagBits: core.TagBitsNeeded(core.BitConvParams{K: 8, GroupLen: 4}),
				Sink: ring, Faults: mustInjector(t, plan, n)},
		)
		if err != nil {
			t.Fatal(err)
		}
		eng.RunRounds(1, 80)
		return ring.Events()
	}
	a, b := record(), record()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
		if a[i].Type == obs.TypeFault {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no fault events in a heavily faulted trace")
	}
}

// TestCrashedNodeInvisible: a down node leaves the active set and returns on
// recovery, composing with the activation machinery.
func TestCrashedNodeInvisible(t *testing.T) {
	const n = 4
	plan := fault.Plan{
		Crashes:    []fault.NodeRound{{Round: 2, Node: 1}},
		Recoveries: []fault.NodeRound{{Round: 4, Node: 1}},
	}
	var active []int
	eng, err := sim.New(
		dyngraph.NewStatic(gen.Clique(n)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(n, 1)),
		sim.Config{Seed: 1, Workers: 1, Faults: mustInjector(t, plan, n),
			Observer: func(s sim.RoundStats) { active = append(active, s.ActiveNodes) }},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(1, 5)
	want := []int{4, 3, 3, 4, 4}
	for r, a := range active {
		if a != want[r] {
			t.Errorf("round %d active = %d, want %d (crash r2, recover r4)", r+1, a, want[r])
		}
	}
}

// TestProposalLossStarves: total loss means proposals are sent but no
// connection ever forms.
func TestProposalLossStarves(t *testing.T) {
	const n = 16
	var proposals, connections int
	eng, err := sim.New(
		dyngraph.NewStatic(gen.Clique(n)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(n, 2)),
		sim.Config{Seed: 2, Workers: 1, MaxRounds: 20,
			Faults: mustInjector(t, fault.Plan{Seed: 3, ProposalLoss: 1}, n),
			Observer: func(s sim.RoundStats) {
				proposals += s.Proposals
				connections += s.Connections
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err == nil {
		t.Fatal("stabilized under total proposal loss")
	}
	if proposals == 0 {
		t.Fatal("no proposals sent")
	}
	if connections != 0 {
		t.Fatalf("%d connections formed under total proposal loss", connections)
	}
}

// TestConnLossStarves: total connection loss keeps accepts at zero while the
// accept-phase RNG draws still match the fault-free run's (the choice is
// made, then the connection fails).
func TestConnLossStarves(t *testing.T) {
	const n = 16
	var connections, accepts int
	eng, err := sim.New(
		dyngraph.NewStatic(gen.Clique(n)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(n, 2)),
		sim.Config{Seed: 2, Workers: 1, MaxRounds: 20,
			Faults: mustInjector(t, fault.Plan{Seed: 3, ConnLoss: 1}, n),
			Observer: func(s sim.RoundStats) {
				connections += s.Connections
				accepts += s.Accepts
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err == nil {
		t.Fatal("stabilized under total connection loss")
	}
	if connections != 0 || accepts != 0 {
		t.Fatalf("connections=%d accepts=%d under total connection loss", connections, accepts)
	}
}

// TestCorruptionSelfStabilizes: blow away every node's state mid-run; the
// protocol re-converges to the same correct leader (Section VIII's claim,
// exercised at engine level; the R-series experiments measure the cost).
func TestCorruptionSelfStabilizes(t *testing.T) {
	const n = 24
	const burst = 30
	uids := core.UniqueUIDs(n, 77)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	plan := fault.Plan{Corruptions: []fault.Burst{{Round: burst, Nodes: all}}}
	eng, err := sim.New(
		dyngraph.NewStatic(gen.Clique(n)),
		core.NewBlindGossipNetwork(uids),
		sim.Config{Seed: 77, Workers: 1, MaxRounds: 5000, Faults: mustInjector(t, plan, n)},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Gate the stop past the burst, or the run "stabilizes" before the
	// adversary gets to act.
	stop := func(round int, protocols []sim.Protocol) bool {
		return round > burst && sim.AllLeadersEqual(round, protocols)
	}
	res, err := eng.Run(stop)
	if err != nil {
		t.Fatal(err)
	}
	if res.StabilizedRound <= burst {
		t.Fatalf("stabilized at %d, before the burst at %d", res.StabilizedRound, burst)
	}
	min := core.MinUID(uids)
	for i, p := range eng.Protocols() {
		if p.Leader() != min {
			t.Fatalf("node %d leader %d after recovery, want %d", i, p.Leader(), min)
		}
	}
}

// TestResetOnRecover: a node that recovers with amnesia restarts from its
// own UID (visible in the recover event's old/new leader payload).
func TestResetOnRecover(t *testing.T) {
	const n = 3
	uids := core.UniqueUIDs(n, 4)
	// Crash the node with the largest UID so its reset state (own UID) is
	// observably different from the learned minimum.
	victim, maxUID := 0, uids[0]
	for i, u := range uids {
		if u > maxUID {
			victim, maxUID = i, u
		}
	}
	plan := fault.Plan{
		ResetOnRecover: true,
		Crashes:        []fault.NodeRound{{Round: 20, Node: victim}},
		Recoveries:     []fault.NodeRound{{Round: 25, Node: victim}},
	}
	ring := obs.NewRing(1 << 16)
	eng, err := sim.New(
		dyngraph.NewStatic(gen.Clique(n)),
		core.NewBlindGossipNetwork(uids),
		sim.Config{Seed: 4, Sink: ring, Faults: mustInjector(t, plan, n)},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(1, 30)
	min := core.MinUID(uids)
	var sawCrash, sawRecover bool
	for _, e := range ring.Events() {
		if e.Type != obs.TypeFault {
			continue
		}
		switch e.Kind {
		case obs.KindCrash:
			if e.Round != 20 || e.Node != int32(victim) {
				t.Errorf("crash event = %+v", e)
			}
			sawCrash = true
		case obs.KindRecover:
			if e.Round != 25 || e.Node != int32(victim) {
				t.Errorf("recover event = %+v", e)
			}
			// By round 20 the clique has gossiped the minimum everywhere;
			// amnesia resets the victim back to its own UID.
			if e.A != min || e.B != maxUID {
				t.Errorf("recover leaders %d -> %d, want %d -> %d (reset)", e.A, e.B, min, maxUID)
			}
			sawRecover = true
		}
	}
	if !sawCrash || !sawRecover {
		t.Fatalf("missing fault events: crash=%v recover=%v", sawCrash, sawRecover)
	}
}

// TestInjectorSizeMismatch: an injector compiled for the wrong n is a
// configuration error, not a latent panic.
func TestInjectorSizeMismatch(t *testing.T) {
	in := mustInjector(t, fault.Plan{}, 8)
	_, err := sim.New(
		dyngraph.NewStatic(gen.Clique(4)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(4, 1)),
		sim.Config{Seed: 1, Faults: in},
	)
	if err == nil {
		t.Fatal("engine accepted a mis-sized fault injector")
	}
}
