package sim

import (
	"runtime"
	"testing"

	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph"
	"mobiletel/internal/graph/gen"
)

// chunkProbe is a minimal protocol for white-box tests (package sim cannot
// import internal/core without a cycle): every node immediately leads with
// its own UID and never connects.
type chunkProbe struct{ uid uint64 }

func (p *chunkProbe) Advertise(*Context) uint64        { return 0 }
func (p *chunkProbe) Decide(*Context) (int32, bool)    { return 0, false }
func (p *chunkProbe) Outgoing(*Context, int32) Message { return Message{} }
func (p *chunkProbe) Deliver(*Context, int32, Message) {}
func (p *chunkProbe) EndRound(*Context)                {}
func (p *chunkProbe) Leader() uint64                   { return p.uid }

func chunkProbeNetwork(n int) []Protocol {
	ps := make([]Protocol, n)
	for i := range ps {
		ps[i] = &chunkProbe{uid: uint64(i + 1)}
	}
	return ps
}

// TestChunkScratchBoundedAcrossTrials pins the chunk-boundary cache at O(1)
// scratch: one workers+1 slice, reused for every graph an engine ever
// sees. A 1000-trial churn-style sweep — every refresh presenting a graph
// the cache has not just seen — must allocate nothing and must not grow
// the boundary slice, so many-trial experiments cannot accumulate cached
// boundaries.
func TestChunkScratchBoundedAcrossTrials(t *testing.T) {
	const (
		n       = 512
		workers = 7
		trials  = 1000
	)
	eng, err := New(
		dyngraph.NewStatic(gen.RandomRegular(n, 6, 11)),
		chunkProbeNetwork(n),
		Config{Seed: 11, Workers: workers},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// A pool of distinct graphs cycled in order: chunkG only remembers the
	// most recent graph, so every refresh is a miss — the worst case a
	// churning schedule can produce.
	graphs := make([]*graph.Graph, 100)
	for i := range graphs {
		graphs[i] = gen.RandomRegular(n, 6, uint64(100+i)).Graph
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for trial := 0; trial < trials; trial++ {
		eng.refreshChunks(graphs[trial%len(graphs)])
	}
	runtime.ReadMemStats(&after)
	if mallocs := after.Mallocs - before.Mallocs; mallocs != 0 {
		t.Errorf("%d chunk refreshes allocated %d objects, want 0 (unbounded chunk cache?)", trials, mallocs)
	}
	if got := cap(eng.chunks); got != workers+1 {
		t.Errorf("chunk scratch grew to cap %d, want the fixed workers+1 = %d", got, workers+1)
	}
	if eng.chunks[0] != 0 || eng.chunks[workers] != n {
		t.Errorf("boundaries [%d, ..., %d] do not span [0, %d]", eng.chunks[0], eng.chunks[workers], n)
	}
}
