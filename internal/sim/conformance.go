package sim

import (
	"fmt"

	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
)

// ConformanceConfig parameterizes CheckConformance.
type ConformanceConfig struct {
	// Seed drives the randomized schedules and engine randomness.
	Seed uint64
	// Rounds per scenario (default 200).
	Rounds int
	// TagBits the protocol is entitled to (checked by the engine).
	TagBits int
	// MaxUIDs per message (default 2).
	MaxUIDs int
}

// CheckConformance runs a protocol factory through a battery of randomized
// scenarios and verifies it behaves as a well-formed mobile telephone model
// protocol:
//
//   - it never panics and never violates engine-enforced budgets (tag
//     width, message size, topological adjacency of proposals) across
//     static, permuted, churn, and waypoint schedules;
//   - it is deterministic: the same seed yields an identical per-round
//     connection trace on two independent instances;
//   - it tolerates activation staggering (callbacks only after activation).
//
// The factory is invoked once per node per scenario. Any violation is
// returned as an error describing the scenario. Protocol packages call this
// from their tests; it is exported (rather than in a _test file) so every
// protocol package can reuse it.
func CheckConformance(factory func(node int) Protocol, cfg ConformanceConfig) error {
	if cfg.Rounds == 0 {
		cfg.Rounds = 200
	}

	scenarios := buildConformanceScenarios(cfg.Seed)
	for _, sc := range scenarios {
		trace1, err := runConformance(factory, sc, cfg)
		if err != nil {
			return fmt.Errorf("sim: conformance scenario %q: %w", sc.name, err)
		}
		trace2, err := runConformance(factory, sc, cfg)
		if err != nil {
			return fmt.Errorf("sim: conformance scenario %q (replay): %w", sc.name, err)
		}
		if len(trace1) != len(trace2) {
			return fmt.Errorf("sim: conformance scenario %q: nondeterministic trace lengths %d vs %d",
				sc.name, len(trace1), len(trace2))
		}
		for i := range trace1 {
			if trace1[i] != trace2[i] {
				return fmt.Errorf("sim: conformance scenario %q: nondeterministic at round %d: %+v vs %+v",
					sc.name, i+1, trace1[i], trace2[i])
			}
		}
	}
	return nil
}

type conformanceScenario struct {
	name        string
	sched       dyngraph.Schedule
	activations []int
}

// conformanceTopologies builds the fixed test network shapes.
type conformanceTopologies struct {
	n    int
	base gen.Family
	seed uint64
}

func newConformanceTopologies(seed uint64) conformanceTopologies {
	return conformanceTopologies{n: 32, base: gen.RandomRegular(32, 4, seed), seed: seed}
}

func (c conformanceTopologies) static() dyngraph.Schedule { return dyngraph.NewStatic(c.base) }
func (c conformanceTopologies) permuted(tau int) dyngraph.Schedule {
	return dyngraph.NewPermuted(c.base, tau, c.seed+1)
}
func (c conformanceTopologies) churn() dyngraph.Schedule {
	return dyngraph.NewChurn(c.base, 2, 8, c.seed+2)
}
func (c conformanceTopologies) waypoint() dyngraph.Schedule {
	return dyngraph.NewWaypoint(c.n, 0.35, 0.05, 3, c.seed+3)
}

// buildConformanceScenarios assembles the schedule battery. It lives behind
// a function so each CheckConformance call gets fresh (stateful) schedules.
func buildConformanceScenarios(seed uint64) []conformanceScenario {
	// Import cycle note: sim may not import graph generators' tests, but
	// dyngraph + gen are lower layers, which is fine.
	mk := newConformanceTopologies(seed)
	acts := make([]int, mk.n)
	for i := range acts {
		acts[i] = 1 + (i*17)%50
	}
	return []conformanceScenario{
		{"static", mk.static(), nil},
		{"permuted tau=1", mk.permuted(1), nil},
		{"permuted tau=5", mk.permuted(5), nil},
		{"churn", mk.churn(), nil},
		{"waypoint", mk.waypoint(), nil},
		{"staggered activations", mk.static(), acts},
	}
}

func runConformance(factory func(node int) Protocol, sc conformanceScenario, cfg ConformanceConfig) (trace []RoundStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	n := sc.sched.N()
	protocols := make([]Protocol, n)
	for i := range protocols {
		protocols[i] = factory(i)
	}
	eng, err := New(sc.sched, protocols, Config{
		Seed:        cfg.Seed,
		TagBits:     cfg.TagBits,
		MaxUIDs:     cfg.MaxUIDs,
		MaxRounds:   cfg.Rounds,
		Activations: sc.activations,
		Workers:     1,
		Observer:    func(s RoundStats) { trace = append(trace, s) },
	})
	if err != nil {
		return nil, err
	}
	// Run the full horizon; not stabilizing is fine (conformance is about
	// behavior, not convergence).
	if _, err := eng.Run(nil); err == nil {
		return nil, fmt.Errorf("engine stopped without a stop condition")
	}
	// Post-run invariants on the trace.
	for _, s := range trace {
		if s.Connections > s.Proposals {
			return nil, fmt.Errorf("round %d: connections %d exceed proposals %d", s.Round, s.Connections, s.Proposals)
		}
		if 2*s.Connections > n {
			return nil, fmt.Errorf("round %d: %d connections exceed n/2", s.Round, s.Connections)
		}
	}
	return trace, nil
}
