package sim_test

import (
	"bytes"
	"errors"
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/fault"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/obs"
	"mobiletel/internal/rumor"
	"mobiletel/internal/sim"
)

// conformanceCase builds a fresh protocol network plus the engine config it
// needs, and digests the network's post-run state so worker counts can be
// compared bit-for-bit. Each call must construct new protocol state:
// engines mutate it in place.
type conformanceCase struct {
	name    string
	tagBits int
	stop    sim.StopCondition
	build   func(n int) []sim.Protocol
	digest  func(protocols []sim.Protocol) uint64
}

func leaderDigest(protocols []sim.Protocol) uint64 {
	h := uint64(1469598103934665603)
	for _, p := range protocols {
		h = (h ^ p.Leader()) * 1099511628211
	}
	return h
}

func conformanceCases(n, maxDegree int) []conformanceCase {
	params := core.DefaultBitConvParams(n, maxDegree)
	return []conformanceCase{
		{
			name: "blindgossip", tagBits: 0, stop: sim.AllLeadersEqual,
			build: func(n int) []sim.Protocol {
				return core.NewBlindGossipNetwork(core.UniqueUIDs(n, 91))
			},
			digest: leaderDigest,
		},
		{
			name: "bitconv", tagBits: 1, stop: sim.AllLeadersEqual,
			build: func(n int) []sim.Protocol {
				p, _ := core.NewBitConvNetwork(core.UniqueUIDs(n, 92), params, 5)
				return p
			},
			digest: leaderDigest,
		},
		{
			name: "asyncbitconv", tagBits: core.TagBitsNeeded(params), stop: sim.AllLeadersEqual,
			build: func(n int) []sim.Protocol {
				p, _ := core.NewAsyncBitConvNetwork(core.UniqueUIDs(n, 93), params, 5)
				return p
			},
			digest: leaderDigest,
		},
		{
			name: "pushpull", tagBits: 0, stop: rumor.AllInformed,
			build: func(n int) []sim.Protocol {
				return rumor.NewPushPullNetwork(n, map[int]bool{0: true})
			},
			digest: func(p []sim.Protocol) uint64 { return uint64(rumor.CountInformed(p)) },
		},
		{
			name: "ppush", tagBits: 1, stop: rumor.AllInformed,
			build: func(n int) []sim.Protocol {
				return rumor.NewPPushNetwork(n, map[int]bool{0: true})
			},
			digest: func(p []sim.Protocol) uint64 { return uint64(rumor.CountInformed(p)) },
		},
	}
}

// TestParallelRoundConformanceAcrossWorkers pins the contract behind the
// parallel round core: Workers and Dispatch are throughput knobs, never
// semantic ones. Every protocol in the repertoire runs to its stop condition
// on the paper's line-of-stars topology at worker counts on both sides of
// the chunking thresholds (1 = inline path, 2 = minimal split, 7 = uneven
// chunks, 16 > GOMAXPROCS on most CI hosts), and every execution must
// produce a bit-identical Result, final protocol state, and — with a JSONL
// sink attached — a byte-identical event trace: per-worker buffers flushed
// in chunk order must reproduce the sequential ascending-node emission order
// exactly (the contract mtmtrace diff relies on).
//
// The sweep is also the cross-core differential for the dispatch rework:
// forced DispatchPool columns run the fused phases on the persistent worker
// pool with real goroutines even where DispatchAuto would resolve inline
// (n below the gate, or a single-P host), and forced DispatchSpawn columns
// run the historical unfused per-phase goroutine-spawning core. All three
// cores at all worker counts must agree with the Workers=1 column
// byte-for-byte — the strongest statement the repo can make that phase
// fusion and the epoch-published pool changed scheduling, not semantics.
//
// The faulted column repeats the sweep with a full-repertoire fault plan
// (rate churn, a partition with a scheduled heal, corruption bursts, message
// loss, tag flips) and the invariant audit on: node-addressed fault draws
// are pure functions of (plan seed, kind, node, round), so the faulted
// execution — trace bytes included — must be just as worker-independent as
// the fault-free one.
func TestParallelRoundConformanceAcrossWorkers(t *testing.T) {
	f := gen.SqrtLineOfStars(20) // n = 420, Δ = 22: hubs stress degree-balanced chunking
	variants := []struct {
		name     string
		workers  int
		dispatch sim.Dispatch
	}{
		{"w1", 1, sim.DispatchAuto},
		{"w2", 2, sim.DispatchAuto},
		{"w7", 7, sim.DispatchAuto},
		{"w16", 16, sim.DispatchAuto},
		{"w2-pool", 2, sim.DispatchPool},
		{"w7-pool", 7, sim.DispatchPool},
		{"w16-pool", 16, sim.DispatchPool},
		{"w2-spawn", 2, sim.DispatchSpawn},
		{"w7-spawn", 7, sim.DispatchSpawn},
		{"w16-spawn", 16, sim.DispatchSpawn},
	}
	plan := fault.Plan{
		Seed: 31, CrashRate: 0.002, RecoverRate: 0.3, MaxDown: f.N() / 8,
		ProposalLoss: 0.05, ConnLoss: 0.03, TagFlipRate: 0.02,
		Corruptions: []fault.Burst{{Round: 12, Nodes: []int{3, 9, 200}}},
		Partitions:  []fault.Partition{{Start: 5, Heal: 25, Parts: 2}},
	}
	for _, faulted := range []bool{false, true} {
		col := "fault-free"
		if faulted {
			col = "faulted"
		}
		for _, tc := range conformanceCases(f.N(), 22) {
			t.Run(col+"/"+tc.name, func(t *testing.T) {
				var wantRes sim.Result
				var wantDigest uint64
				var wantTrace []byte
				for i, v := range variants {
					protocols := tc.build(f.N())
					var buf bytes.Buffer
					cfg := sim.Config{
						Seed: 29, TagBits: tc.tagBits, Workers: v.workers,
						Dispatch: v.dispatch, MaxRounds: 2_000_000,
						Sink: obs.NewJSONL(&buf),
					}
					if faulted {
						// A fresh injector per engine run: injectors carry
						// mutable down-state across rounds.
						in, err := fault.NewInjector(plan, f.N())
						if err != nil {
							t.Fatal(err)
						}
						cfg.Faults = in
						cfg.Check = true
					}
					eng, err := sim.New(dyngraph.NewPermuted(f, 2, 17), protocols, cfg)
					if err != nil {
						t.Fatal(err)
					}
					res, err := eng.Run(tc.stop)
					eng.Close()
					if err != nil {
						t.Fatalf("%s: %v", v.name, err)
					}
					digest := tc.digest(protocols)
					if i == 0 {
						wantRes, wantDigest, wantTrace = res, digest, buf.Bytes()
						continue
					}
					if res != wantRes || digest != wantDigest {
						t.Fatalf("%s diverged from %s: (%+v, %#x) vs (%+v, %#x)",
							v.name, variants[0].name, res, digest, wantRes, wantDigest)
					}
					if !bytes.Equal(buf.Bytes(), wantTrace) {
						t.Fatalf("%s trace diverged from %s: %d vs %d bytes (first difference at byte %d)",
							v.name, variants[0].name, buf.Len(), len(wantTrace), firstDiff(buf.Bytes(), wantTrace))
					}
				}
			})
		}
	}
}

// firstDiff returns the index of the first differing byte (or the shorter
// length when one slice is a prefix of the other).
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestActiveSetMatchingZeroAllocs pins the RandomNeighborMatching slow path
// (active-set filter + predicate) at zero steady-state allocations with
// Workers=1: the candidate scratch must live on the Context and be reused
// across rounds. PPush exercises the predicate draw every round; churn
// keeps an evolving edge set in play so the CSR rebuild scratch is hit too.
func TestActiveSetMatchingZeroAllocs(t *testing.T) {
	const n = 256
	eng, err := sim.New(
		dyngraph.NewStatic(gen.RandomRegular(n, 8, 4)),
		rumor.NewPPushNetwork(n, map[int]bool{0: true}),
		sim.Config{Seed: 6, TagBits: 1, Workers: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(1, 50)
	next := 51
	avg := testing.AllocsPerRun(200, func() {
		eng.RunRounds(next, 1)
		next++
	})
	if avg != 0 {
		t.Fatalf("matching steady-state round allocates: %v allocs/round, want 0", avg)
	}
}

// TestParallelMillionNodeRound is the scale acceptance check: a full round
// on a 1,048,576-node mesh and on a degree-8 expander must materialize and
// complete — no quadratic intermediate allocation anywhere in the generator,
// scheduler, or round core — and the round's stats must be bit-identical
// across worker counts spanning the inline and parallel dispatch paths.
// The faulted expander subtest repeats the sweep with rate-driven loss and a
// live partition: fault draws at a million nodes stay worker-independent.
func TestParallelMillionNodeRound(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-node round skipped in -short mode")
	}
	expander := gen.Expander(1<<20, 8, 77)
	cases := []struct {
		f       gen.Family
		faulted bool
	}{
		{gen.Torus(1024, 1024), false},
		{expander, false},
		{expander, true},
	}
	plan := fault.Plan{
		Seed: 13, ProposalLoss: 0.01, ConnLoss: 0.01,
		Partitions: []fault.Partition{{Start: 1, Parts: 2}},
	}
	for _, c := range cases {
		f, faulted := c.f, c.faulted
		name := f.Name
		if faulted {
			name += "/faulted"
		}
		t.Run(name, func(t *testing.T) {
			var want sim.RoundStats
			for i, workers := range []int{1, 2, 8} {
				var got sim.RoundStats
				cfg := sim.Config{
					Seed: 11, Workers: workers, MaxRounds: 1,
					Observer: func(s sim.RoundStats) { got = s },
				}
				if faulted {
					in, err := fault.NewInjector(plan, f.N())
					if err != nil {
						t.Fatal(err)
					}
					cfg.Faults = in
				}
				eng, err := sim.New(
					dyngraph.NewStatic(f),
					core.NewBlindGossipNetwork(core.UniqueUIDs(f.N(), 7)),
					cfg,
				)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Run(nil); !errors.Is(err, sim.ErrNotStabilized) {
					t.Fatalf("Workers=%d: unexpected error %v", workers, err)
				}
				if got.ActiveNodes != f.N() || got.Proposals == 0 || got.Connections == 0 {
					t.Fatalf("Workers=%d: implausible round stats %+v", workers, got)
				}
				if faulted && got.FaultLost == 0 {
					t.Fatalf("Workers=%d: no fault-lost proposals under loss rates and a live partition", workers)
				}
				if i == 0 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("Workers=%d diverged: %+v vs %+v", workers, got, want)
				}
			}
		})
	}
}
