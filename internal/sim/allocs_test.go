// External test package: core implements sim.Protocol, so importing it from
// an in-package test would be an import cycle.
package sim_test

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
)

// TestSteadyStateZeroAllocs pins the engine's zero-allocation contract: once
// warm, a blind-gossip round on a static mesh with Workers=1 must not
// allocate at all. Any regression here (an escaping Context, a per-round
// closure, a message slice literal) shows up as a nonzero average. With no
// Config.Sink configured, every observability emission site must reduce to
// one predictable nil-check branch — this test is what holds the tracing
// layer to its zero-overhead-when-disabled invariant.
func TestSteadyStateZeroAllocs(t *testing.T) {
	const n = 256
	eng, err := sim.New(
		dyngraph.NewStatic(gen.RandomRegular(n, 8, 1)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(n, 42)),
		sim.Config{Seed: 42, Workers: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: one-time growth (inboxTo high-water mark, lazy state).
	eng.RunRounds(1, 50)
	next := 51
	avg := testing.AllocsPerRun(200, func() {
		eng.RunRounds(next, 1)
		next++
	})
	if avg != 0 {
		t.Fatalf("steady-state round allocates: %v allocs/round, want 0", avg)
	}
}

// TestSteadyStateZeroAllocsTraced pins the stronger claim: even with
// tracing *enabled*, the emit path itself allocates nothing — events are
// flat values passed on the stack, and the ring sink overwrites in place
// once warm. Only a sink that itself allocates (e.g. JSONL encoding) adds
// allocations to a traced round.
func TestSteadyStateZeroAllocsTraced(t *testing.T) {
	const n = 256
	eng, err := sim.New(
		dyngraph.NewStatic(gen.RandomRegular(n, 8, 1)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(n, 42)),
		sim.Config{Seed: 42, Workers: 1, Sink: obs.NewRing(4096)},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(1, 50)
	next := 51
	avg := testing.AllocsPerRun(200, func() {
		eng.RunRounds(next, 1)
		next++
	})
	if avg != 0 {
		t.Fatalf("traced steady-state round allocates: %v allocs/round, want 0", avg)
	}
}

// TestSteadyStateZeroAllocsTracedParallel pins the parallel-emission claim:
// with Workers > 1 the emit path itself — per-worker buffer appends plus the
// chunk-order flush — must amortize to zero allocations per round once the
// buffers are warm. Goroutine dispatch in parallelFor does allocate, so the
// pin is differential: a traced parallel round may cost at most a fraction
// of an allocation per round more than an untraced parallel round of the
// same configuration.
func TestSteadyStateZeroAllocsTracedParallel(t *testing.T) {
	const (
		n       = 512 // above parallelThreshold so the parallel path runs
		workers = 4
	)
	run := func(sink obs.Sink) float64 {
		eng, err := sim.New(
			dyngraph.NewStatic(gen.RandomRegular(n, 8, 1)),
			core.NewBlindGossipNetwork(core.UniqueUIDs(n, 42)),
			sim.Config{Seed: 42, Workers: workers, Sink: sink},
		)
		if err != nil {
			t.Fatal(err)
		}
		// Warm up: one-time growth (inboxTo and worker-buffer high-water
		// marks, lazy state).
		eng.RunRounds(1, 50)
		next := 51
		return testing.AllocsPerRun(200, func() {
			eng.RunRounds(next, 1)
			next++
		})
	}
	untraced := run(nil)
	traced := run(obs.NewRing(1 << 13))
	if delta := traced - untraced; delta > 0.25 {
		t.Fatalf("traced parallel round allocates %v/round over untraced (%v vs %v), want amortized 0",
			delta, traced, untraced)
	}
}
