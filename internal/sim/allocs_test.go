// External test package: core implements sim.Protocol, so importing it from
// an in-package test would be an import cycle.
package sim_test

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
)

// TestSteadyStateZeroAllocs pins the engine's zero-allocation contract: once
// warm, a blind-gossip round on a static mesh with Workers=1 must not
// allocate at all. Any regression here (an escaping Context, a per-round
// closure, a message slice literal) shows up as a nonzero average. With no
// Config.Sink configured, every observability emission site must reduce to
// one predictable nil-check branch — this test is what holds the tracing
// layer to its zero-overhead-when-disabled invariant.
func TestSteadyStateZeroAllocs(t *testing.T) {
	const n = 256
	eng, err := sim.New(
		dyngraph.NewStatic(gen.RandomRegular(n, 8, 1)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(n, 42)),
		sim.Config{Seed: 42, Workers: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: one-time growth (inboxTo high-water mark, lazy state).
	eng.RunRounds(1, 50)
	next := 51
	avg := testing.AllocsPerRun(200, func() {
		eng.RunRounds(next, 1)
		next++
	})
	if avg != 0 {
		t.Fatalf("steady-state round allocates: %v allocs/round, want 0", avg)
	}
}

// TestSteadyStateZeroAllocsTraced pins the stronger claim: even with
// tracing *enabled*, the emit path itself allocates nothing — events are
// flat values passed on the stack, and the ring sink overwrites in place
// once warm. Only a sink that itself allocates (e.g. JSONL encoding) adds
// allocations to a traced round.
func TestSteadyStateZeroAllocsTraced(t *testing.T) {
	const n = 256
	eng, err := sim.New(
		dyngraph.NewStatic(gen.RandomRegular(n, 8, 1)),
		core.NewBlindGossipNetwork(core.UniqueUIDs(n, 42)),
		sim.Config{Seed: 42, Workers: 1, Sink: obs.NewRing(4096)},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(1, 50)
	next := 51
	avg := testing.AllocsPerRun(200, func() {
		eng.RunRounds(next, 1)
		next++
	})
	if avg != 0 {
		t.Fatalf("traced steady-state round allocates: %v allocs/round, want 0", avg)
	}
}
