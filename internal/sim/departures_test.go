package sim_test

import (
	"errors"
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
)

func TestDepartedNodesInvisible(t *testing.T) {
	// Node 1 (middle of a path) departs after round 5; thereafter the two
	// halves cannot exchange UIDs, so the network never fully agrees.
	uids := []uint64{30, 20, 10}
	protocols := core.NewBlindGossipNetwork(uids)
	departures := []int{0, 5, 0}
	eng, err := sim.New(dyngraph.NewStatic(gen.Path(3)), protocols, sim.Config{
		Seed: 3, MaxRounds: 2000, Departures: departures, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(func(round int, ps []sim.Protocol) bool {
		// Require agreement between the still-active endpoints only.
		return ps[0].Leader() == ps[2].Leader()
	})
	// Agreement requires 10 to cross node 1 within 5 rounds — possible but
	// not guaranteed; either way the run must be well-formed. If it did not
	// stabilize, node 0 must still hold a value >= 20 (10 never crossed).
	if err != nil {
		if !errors.Is(err, sim.ErrNotStabilized) {
			t.Fatal(err)
		}
		if protocols[0].Leader() == 10 {
			t.Fatal("UID 10 crossed a departed bridge")
		}
	}
}

func TestDepartureValidation(t *testing.T) {
	protocols := core.NewBlindGossipNetwork(core.UniqueUIDs(3, 1))
	if _, err := sim.New(dyngraph.NewStatic(gen.Path(3)), protocols, sim.Config{
		Departures: []int{0, 1},
	}); err == nil {
		t.Fatal("short departures accepted")
	}
	if _, err := sim.New(dyngraph.NewStatic(gen.Path(3)), protocols, sim.Config{
		Departures: []int{-1, 0, 0},
	}); err == nil {
		t.Fatal("negative departure accepted")
	}
	if _, err := sim.New(dyngraph.NewStatic(gen.Path(3)), protocols, sim.Config{
		Activations: []int{5, 1, 1},
		Departures:  []int{3, 0, 0},
	}); err == nil {
		t.Fatal("departure before activation accepted")
	}
}

// TestGhostLeaderLimitation documents a limitation the paper does not
// address (it never models departures): if the minimum-UID node departs
// after its UID has spread, the network stabilizes on a *departed* leader
// and no algorithm in the paper re-elects. This is expected behavior of the
// blind gossip invariant (candidates only improve), recorded here as a
// negative result.
func TestGhostLeaderLimitation(t *testing.T) {
	n := 24
	f := gen.Clique(n)
	uids := core.UniqueUIDs(n, 9)
	minIdx := 0
	for i, u := range uids {
		if u < uids[minIdx] {
			minIdx = i
		}
	}
	protocols := core.NewBlindGossipNetwork(uids)
	departures := make([]int, n)
	departures[minIdx] = 40 // leave after the UID has had time to spread

	eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{
		Seed: 5, MaxRounds: 100_000, Departures: departures,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(sim.AllLeadersEqual)
	if err != nil {
		t.Fatal(err)
	}
	if protocols[0].Leader() != uids[minIdx] {
		// The min spread before departure on a clique with overwhelming
		// probability; if not, the run is still valid — just not the
		// scenario under test.
		t.Skipf("minimum did not spread before departure (round %d)", res.StabilizedRound)
	}
	// The elected leader is gone — the ghost-leader outcome.
	if departures[minIdx] >= res.StabilizedRound {
		t.Skip("network stabilized before the departure; scenario not exercised")
	}
}

func TestStopGateWithoutActivations(t *testing.T) {
	// With no activations the gate is round 1: stabilization can fire
	// immediately (e.g. all-equal UIDs... impossible; use rumor-like probe).
	protocols := core.NewBlindGossipNetwork([]uint64{7, 8})
	eng, err := sim.New(dyngraph.NewStatic(gen.Path(2)), protocols, sim.Config{
		Seed: 1, MaxRounds: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(sim.AllLeadersEqual)
	if err != nil {
		t.Fatal(err)
	}
	if res.StabilizedRound < 1 {
		t.Fatal("no stabilization")
	}
}
