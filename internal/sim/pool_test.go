// External test package: core implements sim.Protocol, so importing it from
// an in-package test would be an import cycle.
package sim_test

import (
	"runtime"
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
)

// poolEngine builds a blind-gossip engine with the requested dispatch core:
// DispatchPool drops the inline gate to zero, so every phase of every round
// is published to the persistent workers even on a single-P host where
// DispatchAuto would resolve inline. The protocol slice comes back too —
// engines mutate it in place, and the stress tests digest it after the run.
func poolEngine(t *testing.T, n, workers int, dispatch sim.Dispatch) (*sim.Engine, []sim.Protocol) {
	t.Helper()
	protocols := core.NewBlindGossipNetwork(core.UniqueUIDs(n, 42))
	eng, err := sim.New(
		dyngraph.NewStatic(gen.RandomRegular(n, 8, 1)),
		protocols,
		sim.Config{Seed: 42, Workers: workers, Dispatch: dispatch},
	)
	if err != nil {
		t.Fatal(err)
	}
	return eng, protocols
}

// TestPoolStressRapidDispatch is the -race stress for the persistent worker
// pool's epoch barrier: more workers than GOMAXPROCS, a node count small
// enough that each dispatch is over in microseconds, and thousands of rounds
// — tens of thousands of publish/spin/park/wake cycles in rapid succession,
// exactly the regime where a missing release/acquire edge between the
// dispatcher's slot writes and a worker's reads would surface as a detector
// report or a divergent result. The run must also stay bit-identical to the
// inline Workers=1 execution, so a lost wakeup that silently skipped a chunk
// cannot hide.
func TestPoolStressRapidDispatch(t *testing.T) {
	const (
		n       = 256
		workers = 16 // > GOMAXPROCS on typical CI hosts: forces preemption inside the barrier
		rounds  = 2000
	)
	run := func(w int, d sim.Dispatch) uint64 {
		eng, protocols := poolEngine(t, n, w, d)
		defer eng.Close()
		eng.RunRounds(1, rounds)
		return leaderDigest(protocols)
	}
	want := run(1, sim.DispatchAuto)
	if got := run(workers, sim.DispatchPool); got != want {
		t.Fatalf("pool run diverged from inline: leader digest %#x vs %#x", got, want)
	}
}

// TestPoolStressCloseCycles churns pool lifetimes: many engines created,
// briefly run, and deterministically closed. Under -race this exercises the
// shutdown edge — the nil-fn close publish racing parked and spinning
// workers — and under normal runs it pins Close as idempotent and safe to
// call twice.
func TestPoolStressCloseCycles(t *testing.T) {
	const cycles = 40
	for i := 0; i < cycles; i++ {
		eng, _ := poolEngine(t, 128, 8, sim.DispatchPool)
		eng.RunRounds(1, 25)
		eng.Close()
		eng.Close() // idempotent
	}
	// Give any straggling worker a chance to trip the detector before exit.
	runtime.Gosched()
}

// TestSteadyStateZeroAllocsPool pins the acceptance bar for the pool
// rework's hot path: once warm, a round dispatched through the persistent
// pool allocates nothing. The historical spawn core paid one goroutine plus
// one WaitGroup wake per phase per worker; the pool's epoch publish is an
// atomic increment, so — unlike TestSteadyStateZeroAllocsTracedParallel's
// differential bound for the spawn core — the pool pin is absolute: zero
// allocations per round, same as the Workers=1 inline path.
func TestSteadyStateZeroAllocsPool(t *testing.T) {
	const (
		n       = 512
		workers = 4
	)
	eng, _ := poolEngine(t, n, workers, sim.DispatchPool)
	defer eng.Close()
	// Warm up: one-time growth (inboxTo high-water mark, lazy state).
	eng.RunRounds(1, 50)
	next := 51
	avg := testing.AllocsPerRun(200, func() {
		eng.RunRounds(next, 1)
		next++
	})
	if avg != 0 {
		t.Fatalf("pool steady-state round allocates: %v allocs/round, want 0", avg)
	}
}
