package sim_test

import (
	"bytes"
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
)

// recordRun executes a blind gossip election with a recorder attached.
func recordRun(t *testing.T, seed uint64) *sim.Recording {
	t.Helper()
	f := gen.RandomRegular(32, 4, 3)
	sched := dyngraph.NewPermuted(f, 2, 5)
	uids := core.UniqueUIDs(32, 9)
	protocols := core.NewBlindGossipNetwork(uids)
	rec := sim.NewRecorder(seed, sched.Name(), 32)
	cfg := sim.Config{Seed: seed, MaxRounds: 500_000}
	rec.Attach(&cfg)
	eng, err := sim.New(sched, protocols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err != nil {
		t.Fatal(err)
	}
	return rec.Finish(protocols)
}

func TestRecordingReplayIdentical(t *testing.T) {
	a := recordRun(t, 7)
	b := recordRun(t, 7)
	if err := a.Equal(b); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if a.Connections() == 0 || len(a.Rounds) == 0 {
		t.Fatal("empty recording")
	}
}

func TestRecordingDifferentSeedsDiffer(t *testing.T) {
	a := recordRun(t, 7)
	b := recordRun(t, 8)
	if err := a.Equal(b); err == nil {
		t.Fatal("different seeds produced identical recordings (suspicious)")
	}
}

func TestRecordingJSONLRoundtrip(t *testing.T) {
	a := recordRun(t, 11)
	var buf bytes.Buffer
	if err := a.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := sim.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Equal(b); err != nil {
		t.Fatalf("JSONL roundtrip lost information: %v", err)
	}
}

func TestRecordingEqualCatchesCorruption(t *testing.T) {
	a := recordRun(t, 13)
	var buf bytes.Buffer
	if err := a.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	b, err := sim.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rounds) > 0 && len(b.Rounds[0].Pairs) > 0 {
		b.Rounds[0].Pairs[0][0]++
		if err := a.Equal(b); err == nil {
			t.Fatal("pair corruption not detected")
		}
	}
	c, err := sim.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	c.Leaders[0]++
	if err := a.Equal(c); err == nil {
		t.Fatal("leader corruption not detected")
	}
	d, err := sim.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	d.Rounds = d.Rounds[:len(d.Rounds)-1]
	if err := a.Equal(d); err == nil {
		t.Fatal("truncation not detected")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := sim.ReadJSONL(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRecordingPairsSortedAndValid(t *testing.T) {
	rec := recordRun(t, 17)
	for _, round := range rec.Rounds {
		for i, p := range round.Pairs {
			if p[0] >= p[1] {
				t.Fatalf("round %d pair %v not canonical", round.Round, p)
			}
			if i > 0 && round.Pairs[i-1][0] >= p[0] {
				t.Fatalf("round %d pairs not ascending: %v", round.Round, round.Pairs)
			}
			if p[0] < 0 || int(p[1]) >= rec.N {
				t.Fatalf("round %d pair %v out of range", round.Round, p)
			}
		}
	}
}

func TestRecordingClassicalMode(t *testing.T) {
	f := gen.Star(16)
	sched := dyngraph.NewStatic(f)
	protocols := core.NewBlindGossipNetwork(core.UniqueUIDs(16, 4))
	rec := sim.NewRecorder(1, sched.Name(), 16)
	cfg := sim.Config{Seed: 1, MaxRounds: 100_000, Classical: true}
	rec.Attach(&cfg)
	eng, err := sim.New(sched, protocols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err != nil {
		t.Fatal(err)
	}
	recording := rec.Finish(protocols)
	if recording.Connections() == 0 {
		t.Fatal("classical recording captured no connections")
	}
}
