package experiment

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment in the DESIGN.md §4 index must be registered.
	want := []string{
		"E1-blindgossip-scaling",
		"E2-blindgossip-lowerbound",
		"E3-pushpull-bound",
		"E4-lemma-v1-gamma",
		"E5-ppush-approx",
		"E6-bitconv-tau",
		"E7-zero-vs-one-bit",
		"E8-async-bitconv",
		"E9-self-stabilization",
		"E10-churn-robustness",
		"E11-good-edge-probability",
		"E12-classical-vs-mobile",
		"A1-ablation-grouplen",
		"A2-ablation-tagbits",
		"A3-ablation-accept",
		"R1-leader-crash-reelection",
		"R2-corruption-recovery",
		"R3-message-loss-slowdown",
		"R4-partition-heal",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		ids := make([]string, 0)
		for _, e := range All() {
			ids = append(ids, e.ID)
		}
		t.Errorf("registry has %d experiments, want %d: %v", len(All()), len(want), ids)
	}
}

func TestAllExperimentsHaveClaims(t *testing.T) {
	for _, e := range All() {
		if e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %s missing claim or runner", e.ID)
		}
		if !strings.Contains(e.Claim, "heorem") && !strings.Contains(e.Claim, "emma") &&
			!strings.Contains(e.Claim, "ection") && !strings.Contains(e.Claim, "orollary") &&
			!strings.Contains(e.Claim, "esign") && !strings.Contains(e.Claim, "odel") &&
			!strings.Contains(e.Claim, "gap") && !strings.Contains(e.Claim, "adapt") {
			t.Errorf("experiment %s claim does not cite the paper: %q", e.ID, e.Claim)
		}
	}
}

func TestByIDMiss(t *testing.T) {
	if _, ok := ByID("nonexistent"); ok {
		t.Fatal("ByID found a nonexistent experiment")
	}
}

// TestQuickRuns executes every experiment in quick mode with a minimal trial
// count: a full integration pass over the whole reproduction pipeline.
func TestQuickRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			table, err := e.Run(Config{Seed: 12345, Trials: 2, Quick: true})
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if table == nil || len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			text := table.Text()
			if !strings.Contains(text, "==") {
				t.Fatalf("%s produced malformed table:\n%s", e.ID, text)
			}
		})
	}
}

func TestHelperFunctions(t *testing.T) {
	if log2f(2) != 1 || log2f(3) != 2 || log2f(1024) != 10 {
		t.Fatal("log2f wrong")
	}
	if pick(true, 1, 2) != 1 || pick(false, 1, 2) != 2 {
		t.Fatal("pick wrong")
	}
	if pickTrials(Config{Trials: 7}, 1, 2) != 7 {
		t.Fatal("explicit trials ignored")
	}
	if pickTrials(Config{Quick: true}, 1, 2) != 1 {
		t.Fatal("quick default wrong")
	}
	if pickTrials(Config{}, 1, 2) != 2 {
		t.Fatal("full default wrong")
	}
	if trialSeed(1, 2, 3) == trialSeed(1, 3, 2) {
		t.Fatal("trialSeed symmetric")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	register(Experiment{ID: "E1-blindgossip-scaling", Claim: "dup", Run: nil})
}
