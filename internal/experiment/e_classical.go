package experiment

import (
	"fmt"

	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/rumor"
	"mobiletel/internal/sim"
	"mobiletel/internal/stats"
	"mobiletel/internal/trace"
	"mobiletel/internal/xrand"
)

func init() {
	register(Experiment{
		ID: "E12-classical-vs-mobile",
		Claim: "Related-work motivation (Daum et al. / Section I): the classical " +
			"telephone model lets a node serve unboundedly many connections per " +
			"round, which the mobile telephone model forbids. PUSH-PULL on hub " +
			"topologies is exponentially faster classically (a hub serves all " +
			"leaves at once) — the gap that motivates the model.",
		Run: runE12,
	})
}

func runE12(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	starN := pick(cfg.Quick, 64, 256)
	side := pick(cfg.Quick, 6, 12)

	type point struct {
		name   string
		family gen.Family
		src    func(n int, seed uint64) int // rumor source placement
	}
	points := []point{
		{"star (hub source)", gen.Star(starN), func(int, uint64) int { return 0 }},
		{"star (leaf source)", gen.Star(starN), func(int, uint64) int { return 1 }},
		{"line of stars", gen.SqrtLineOfStars(side), func(int, uint64) int { return 0 }},
		{"expander", gen.RandomRegular(starN, 8, cfg.Seed+12000), func(n int, seed uint64) int {
			return int(xrand.Mix3(seed, 3, 0) % uint64(n))
		}},
	}

	table := trace.NewTable("E12 classical vs mobile telephone model (PUSH-PULL rumor spreading)",
		"topology", "n", "Δ", "classical med", "mobile med", "mobile/classical")

	// Specs 2·pi and 2·pi+1 are point pi's classical and mobile runs; both
	// model variants of every topology share one pipelined pool.
	specs := make([]pointSpec, 0, 2*len(points))
	for pi, pt := range points {
		pi, pt := pi, pt
		mkSpec := func(classical bool) trialSpec {
			return trialSpec{
				Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
					seed := trialSeed(cfg.Seed, 1400+pi, trial)
					src := pt.src(pt.family.N(), seed)
					protocols := rumor.NewPushPullNetwork(pt.family.N(), map[int]bool{src: true})
					return dyngraph.NewStatic(pt.family), protocols, sim.Config{
						Seed: seed + 1, TagBits: 0, MaxRounds: 50_000_000, Classical: classical,
					}
				},
				Stop: rumor.AllInformed,
				Check: func(_ int, protocols []sim.Protocol) error {
					if rumor.CountInformed(protocols) != len(protocols) {
						return fmt.Errorf("incomplete dissemination")
					}
					return nil
				},
			}
		}
		specs = append(specs, pointSpec{Trials: trials, Spec: mkSpec(true)})
		specs = append(specs, pointSpec{Trials: trials, Spec: mkSpec(false)})
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}

	for pi, pt := range points {
		c := stats.IntSummary(allRounds[2*pi])
		m := stats.IntSummary(allRounds[2*pi+1])
		table.AddRow(pt.name, pt.family.N(), pt.family.MaxDegree(), c.Median, m.Median, m.Median/c.Median)
	}
	return table, nil
}
