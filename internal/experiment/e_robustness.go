package experiment

import (
	"fmt"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/fault"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
	"mobiletel/internal/stats"
	"mobiletel/internal/trace"
)

// The R-series exercises the fault-injection layer: where the E-series
// validates the paper's bounds under clean executions, these experiments
// measure recovery — what Section VIII's self-stabilization buys once
// crashes, state corruption, and message loss actually happen.

func init() {
	register(Experiment{
		ID: "R1-leader-crash-reelection",
		Claim: "Section VIII self-stabilization, applied: when the elected " +
			"min-pair owner crashes and the survivors' state is reset (a " +
			"failure-detector-triggered restart), the non-synchronized bit " +
			"convergence algorithm re-elects the surviving minimum in " +
			"ordinary stabilization time, regardless of how long the old " +
			"leader had been in place.",
		Run: runR1,
	})
	register(Experiment{
		ID: "R2-corruption-recovery",
		Claim: "Section VIII: the non-synchronized algorithm converges from " +
			"*any* state, so recovery time after an adversary corrupts k of " +
			"n nodes should stay within ordinary stabilization time even at " +
			"k = n (a full restart).",
		Run: runR2,
	})
	register(Experiment{
		ID: "R4-partition-heal",
		Claim: "Model robustness: while the network is partitioned each " +
			"component converges to its own local minimum, and once the " +
			"partition heals the global minimum overruns the stale local " +
			"leaders within ordinary stabilization time — the re-election " +
			"cost after a heal is independent of how long the partition " +
			"lasted.",
		Run: runR4,
	})
	register(Experiment{
		ID: "R3-message-loss-slowdown",
		Claim: "Model robustness (Sections VI-VIII): proposal and connection " +
			"loss thins each round's matching by a constant factor, so " +
			"election should slow by a bounded multiple of the loss rate " +
			"rather than stall — the bounds degrade gracefully.",
		Run: runR3,
	})
}

// mustInjector compiles a plan the experiment constructed itself; a
// validation failure is a bug in the experiment, not an input error.
func mustInjector(plan fault.Plan, n int) *fault.Injector {
	in, err := fault.NewInjector(plan, n)
	if err != nil {
		panic(err)
	}
	return in
}

// asyncNetworkDistinctTags builds an AsyncBitConv network whose tags are all
// distinct, bumping the tag seed deterministically until they are. The A2
// ablation showed that a tag collision involving the minimum deadlocks bit
// convergence permanently — a real finding, but one that would contaminate
// the R-series, which measures *recovery* time: after a corruption burst the
// victims' original tags rejoin the tag population, so any collision with
// the minimum tag (≈ n/2^k per trial) would turn a recovery measurement
// into the known collision pathology.
func asyncNetworkDistinctTags(uids []uint64, params core.BitConvParams, seed uint64) ([]sim.Protocol, []uint64) {
	for {
		protocols, tags := core.NewAsyncBitConvNetwork(uids, params, seed)
		seen := make(map[uint64]bool, len(tags))
		ok := true
		for _, t := range tags {
			if seen[t] {
				ok = false
				break
			}
			seen[t] = true
		}
		if ok {
			return protocols, tags
		}
		seed++
	}
}

// r1Setup derives everything round-trippable from a trial seed, so Build and
// Check (which only receives the trial index) agree on the cast.
func r1Setup(cfg Config, point, trial, n int, params core.BitConvParams) (seed uint64, uids, tags []uint64, crashed int) {
	seed = trialSeed(cfg.Seed, 1100+point, trial)
	uids = core.UniqueUIDs(n, seed)
	_, tags = asyncNetworkDistinctTags(uids, params, seed+1)
	pairs := make([]core.IDPair, n)
	for i := range uids {
		pairs[i] = core.IDPair{UID: uids[i], Tag: tags[i]}
	}
	min := core.MinPair(pairs)
	for i, p := range pairs {
		if p == min {
			crashed = i
		}
	}
	return seed, uids, tags, crashed
}

func runR1(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 3, 10)
	n := pick(cfg.Quick, 32, 64)
	d := 6
	base := gen.RandomRegular(n, d, cfg.Seed+7000)
	params := core.DefaultBitConvParams(n, d)

	table := trace.NewTable("R1 leader crash and re-election (Section VIII, applied)",
		"crash round", "median re-election rounds", "p90", "new leader correct")

	crashRounds := []int{1, pick(cfg.Quick, 100, 400), pick(cfg.Quick, 400, 2000)}
	specs := make([]pointSpec, 0, len(crashRounds))
	for pi, rc := range crashRounds {
		pi, rc := pi, rc
		specs = append(specs, pointSpec{Trials: trials, Spec: trialSpec{
			Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
				seed, uids, _, crashed := r1Setup(cfg, pi, trial, n, params)
				protocols, _ := asyncNetworkDistinctTags(uids, params, seed+1)
				survivors := make([]int, 0, n-1)
				for u := 0; u < n; u++ {
					if u != crashed {
						survivors = append(survivors, u)
					}
				}
				in := mustInjector(fault.Plan{
					Seed:        seed + 2,
					Crashes:     []fault.NodeRound{{Round: rc, Node: crashed}},
					Corruptions: []fault.Burst{{Round: rc, Nodes: survivors}},
				}, n)
				return dyngraph.NewStatic(base), protocols, sim.Config{
					Seed: seed + 3, TagBits: core.TagBitsNeeded(params),
					MaxRounds: 50_000_000, Faults: in,
				}
			},
			// The crashed leader keeps its stale state forever, so the stop
			// condition (and Check below) quantify over *up* nodes only.
			MakeStop: func(trial int, simCfg sim.Config) sim.StopCondition {
				in := simCfg.Faults
				return func(round int, protocols []sim.Protocol) bool {
					if round <= rc {
						return false
					}
					var want uint64
					first := true
					for u, p := range protocols {
						if in.Down(u) {
							continue
						}
						if first {
							want, first = p.Leader(), false
						} else if p.Leader() != want {
							return false
						}
					}
					return true
				}
			},
			Check: func(trial int, protocols []sim.Protocol) error {
				_, uids, tags, crashed := r1Setup(cfg, pi, trial, n, params)
				pairs := make([]core.IDPair, 0, n-1)
				for u := 0; u < n; u++ {
					if u != crashed {
						pairs = append(pairs, core.IDPair{UID: uids[u], Tag: tags[u]})
					}
				}
				want := core.MinPair(pairs).UID
				for u, p := range protocols {
					if u == crashed {
						continue
					}
					if got := p.Leader(); got != want {
						return fmt.Errorf("node %d elected %d, want surviving min %d", u, got, want)
					}
				}
				return nil
			},
		}})
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}
	for pi, rc := range crashRounds {
		recovery := make([]int, len(allRounds[pi]))
		for i, r := range allRounds[pi] {
			recovery[i] = r - rc
		}
		s := stats.IntSummary(recovery)
		table.AddRow(rc, s.Median, s.P90, "yes")
	}
	return table, nil
}

func runR2(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 3, 10)
	n := pick(cfg.Quick, 32, 64)
	d := 6
	base := gen.RandomRegular(n, d, cfg.Seed+7100)
	params := core.DefaultBitConvParams(n, d)
	// Corrupt well after a clean execution would have stabilized, so the
	// measurement isolates recovery rather than initial convergence.
	rc := pick(cfg.Quick, 200, 600)

	table := trace.NewTable("R2 recovery time vs corrupted nodes k (Section VIII adversary)",
		"k corrupted", "of n", "median recovery rounds", "p90", "correct leader")

	ks := []int{1, n / 4, n / 2, n}
	specs := make([]pointSpec, 0, len(ks))
	for pi, k := range ks {
		pi, k := pi, k
		specs = append(specs, pointSpec{Trials: trials, Spec: trialSpec{
			Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
				seed := trialSeed(cfg.Seed, 1200+pi, trial)
				uids := core.UniqueUIDs(n, seed)
				protocols, _ := asyncNetworkDistinctTags(uids, params, seed+1)
				// The UIDs are random, so corrupting the first k indices is
				// already a uniformly random victim set.
				victims := make([]int, k)
				for i := range victims {
					victims[i] = i
				}
				in := mustInjector(fault.Plan{
					Seed:        seed + 2,
					Corruptions: []fault.Burst{{Round: rc, Nodes: victims}},
				}, n)
				return dyngraph.NewStatic(base), protocols, sim.Config{
					Seed: seed + 3, TagBits: core.TagBitsNeeded(params),
					MaxRounds: 50_000_000, Faults: in,
				}
			},
			// Gate past the burst so a pre-burst stabilization (expected:
			// rc is chosen after clean convergence) does not end the run.
			Stop: func(round int, protocols []sim.Protocol) bool {
				return round > rc && sim.AllLeadersEqual(round, protocols)
			},
			Check: func(trial int, protocols []sim.Protocol) error {
				seed := trialSeed(cfg.Seed, 1200+pi, trial)
				uids := core.UniqueUIDs(n, seed)
				_, tags := asyncNetworkDistinctTags(uids, params, seed+1)
				return checkMinPair(uids, tags, protocols)
			},
		}})
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}
	for pi, k := range ks {
		recovery := make([]int, len(allRounds[pi]))
		for i, r := range allRounds[pi] {
			recovery[i] = r - rc
		}
		s := stats.IntSummary(recovery)
		table.AddRow(k, fmt.Sprintf("%d", n), s.Median, s.P90, "yes")
	}
	return table, nil
}

func runR4(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 3, 10)
	n := pick(cfg.Quick, 64, 128)
	d := 6
	base := gen.RandomRegular(n, d, cfg.Seed+7300)
	// The partition drops at round 2, before the clean execution stabilizes,
	// so every component elects its local minimum in isolation.
	const start = 2

	table := trace.NewTable("R4 re-election time after a partition heals",
		"parts", "partition rounds", "median re-election rounds", "p90", "global leader correct")

	type point struct {
		parts, heal int
	}
	points := []point{
		{2, start + pick(cfg.Quick, 40, 100)},
		{2, start + pick(cfg.Quick, 150, 400)},
		{4, start + pick(cfg.Quick, 40, 100)},
		{4, start + pick(cfg.Quick, 150, 400)},
	}
	specs := make([]pointSpec, 0, len(points))
	for pi, pt := range points {
		pi, pt := pi, pt
		specs = append(specs, pointSpec{Trials: trials, Spec: trialSpec{
			Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
				seed := trialSeed(cfg.Seed, 1400+pi, trial)
				uids := core.UniqueUIDs(n, seed)
				in := mustInjector(fault.Plan{
					Seed:       seed + 2,
					Partitions: []fault.Partition{{Start: start, Heal: pt.heal, Parts: pt.parts}},
				}, n)
				// Check audits the partition's deterministic connection cuts
				// against the conservation invariant on every round.
				return dyngraph.NewStatic(base), core.NewBlindGossipNetwork(uids), sim.Config{
					Seed: seed + 3, MaxRounds: 50_000_000, Faults: in, Check: true,
				}
			},
			// Gate past the heal: agreement inside one component (or a
			// lucky pre-partition stabilization) does not count.
			Stop: func(round int, protocols []sim.Protocol) bool {
				return round >= pt.heal && sim.AllLeadersEqual(round, protocols)
			},
			Check: func(trial int, protocols []sim.Protocol) error {
				seed := trialSeed(cfg.Seed, 1400+pi, trial)
				uids := core.UniqueUIDs(n, seed)
				if got, want := protocols[0].Leader(), core.MinUID(uids); got != want {
					return fmt.Errorf("elected %d, want global min %d", got, want)
				}
				return nil
			},
		}})
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}
	for pi, pt := range points {
		recovery := make([]int, len(allRounds[pi]))
		for i, r := range allRounds[pi] {
			recovery[i] = r - pt.heal
		}
		s := stats.IntSummary(recovery)
		table.AddRow(pt.parts, pt.heal-start, s.Median, s.P90, "yes")
	}
	return table, nil
}

func runR3(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 3, 10)
	n := pick(cfg.Quick, 32, 64)
	d := 6
	base := gen.RandomRegular(n, d, cfg.Seed+7200)
	params := core.DefaultBitConvParams(n, d)

	type algoPoint struct {
		name    string
		tagBits int
		build   func(uids []uint64, seed uint64) []sim.Protocol
		check   func(uids []uint64, seed uint64, protocols []sim.Protocol) error
	}
	algos := []algoPoint{
		{
			name: "blindgossip", tagBits: 0,
			build: func(uids []uint64, seed uint64) []sim.Protocol {
				return core.NewBlindGossipNetwork(uids)
			},
			check: func(uids []uint64, _ uint64, protocols []sim.Protocol) error {
				if got, want := protocols[0].Leader(), core.MinUID(uids); got != want {
					return fmt.Errorf("elected %d, want %d", got, want)
				}
				return nil
			},
		},
		{
			name: "asyncbitconv", tagBits: core.TagBitsNeeded(params),
			build: func(uids []uint64, seed uint64) []sim.Protocol {
				protocols, _ := asyncNetworkDistinctTags(uids, params, seed)
				return protocols
			},
			check: func(uids []uint64, seed uint64, protocols []sim.Protocol) error {
				_, tags := asyncNetworkDistinctTags(uids, params, seed)
				return checkMinPair(uids, tags, protocols)
			},
		},
	}
	rates := []float64{0, 0.1, 0.3, 0.5}

	table := trace.NewTable("R3 election slowdown vs message loss rate",
		"algorithm", "loss rate", "median rounds", "p90", "slowdown vs lossless")

	specs := make([]pointSpec, 0, len(algos)*len(rates))
	for ai, ap := range algos {
		for ri, rate := range rates {
			ai, ri, ap, rate := ai, ri, ap, rate
			specs = append(specs, pointSpec{Trials: trials, Spec: trialSpec{
				Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
					seed := trialSeed(cfg.Seed, 1300+ai*10+ri, trial)
					uids := core.UniqueUIDs(n, seed)
					protocols := ap.build(uids, seed+1)
					simCfg := sim.Config{
						Seed: seed + 3, TagBits: ap.tagBits, MaxRounds: 50_000_000,
					}
					if rate > 0 {
						// Losses split evenly between the two failure points:
						// the proposal in flight and the accepted connection.
						simCfg.Faults = mustInjector(fault.Plan{
							Seed: seed + 2, ProposalLoss: rate, ConnLoss: rate,
						}, n)
					}
					return dyngraph.NewStatic(base), protocols, simCfg
				},
				Check: func(trial int, protocols []sim.Protocol) error {
					seed := trialSeed(cfg.Seed, 1300+ai*10+ri, trial)
					uids := core.UniqueUIDs(n, seed)
					return ap.check(uids, seed+1, protocols)
				},
			}})
		}
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}
	for ai, ap := range algos {
		baseMed := stats.IntSummary(allRounds[ai*len(rates)]).Median
		for ri, rate := range rates {
			s := stats.IntSummary(allRounds[ai*len(rates)+ri])
			slow := 1.0
			if baseMed > 0 {
				slow = s.Median / baseMed
			}
			table.AddRow(ap.name, rate, s.Median, s.P90, slow)
		}
	}
	return table, nil
}
