package experiment

import (
	"fmt"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
	"mobiletel/internal/trace"
)

func init() {
	register(Experiment{
		ID: "E11-good-edge-probability",
		Claim: "Definition VI.2 / Theorem VI.1 key step: for any directed edge " +
			"(u,v), the probability that blind gossip connects u to v in a round " +
			"is at least the 'good edge' probability 1/(4·d(u)·d(v)) ≥ 1/(4Δ²). " +
			"Measured per-edge connection frequencies must clear that floor.",
		Run: runE11,
	})
}

// connCounter wraps blind gossip behavior and counts, for each directed
// neighbor pair (self, peer), how many rounds ended with a connection in
// which self was the proposer.
type connCounter struct {
	inner    *core.BlindGossip
	id       int32
	proposed int32 // neighbor proposed to this round, or -1
	counts   map[[2]int32]int
}

func (c *connCounter) Advertise(ctx *sim.Context) uint64 { return c.inner.Advertise(ctx) }

func (c *connCounter) Decide(ctx *sim.Context) (int32, bool) {
	target, propose := c.inner.Decide(ctx)
	if propose {
		c.proposed = target
	} else {
		c.proposed = -1
	}
	return target, propose
}

func (c *connCounter) Outgoing(ctx *sim.Context, peer int32) sim.Message {
	return c.inner.Outgoing(ctx, peer)
}

func (c *connCounter) Deliver(ctx *sim.Context, peer int32, msg sim.Message) {
	if c.proposed == peer {
		c.counts[[2]int32{c.id, peer}]++
	}
	c.inner.Deliver(ctx, peer, msg)
}

func (c *connCounter) EndRound(ctx *sim.Context) {
	c.proposed = -1
	c.inner.EndRound(ctx)
}

func (c *connCounter) Leader() uint64 { return c.inner.Leader() }

func runE11(cfg Config) (*trace.Table, error) {
	rounds := pick(cfg.Quick, 60_000, 250_000)

	families := []gen.Family{
		gen.Star(16),           // maximal asymmetry: hub degree 15, leaves 1
		gen.SqrtLineOfStars(5), // the lower-bound construction
		gen.RandomRegular(24, 4, cfg.Seed+9000),
		gen.Clique(12),
	}

	table := trace.NewTable("E11 good-edge probability floor (Definition VI.2)",
		"family", "n", "edges checked", "min measured/floor", "median measured/floor")

	for fi, f := range families {
		n := f.N()
		counts := make(map[[2]int32]int)
		protocols := make([]sim.Protocol, n)
		uids := core.UniqueUIDs(n, trialSeed(cfg.Seed, 9100+fi, 0))
		for i := range protocols {
			protocols[i] = &connCounter{
				inner:  core.NewBlindGossip(uids[i]),
				id:     int32(i),
				counts: counts,
			}
		}
		eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{
			Seed: trialSeed(cfg.Seed, 9200+fi, 0), MaxRounds: rounds, Workers: 1,
		})
		if err != nil {
			return nil, err
		}
		// Run the full horizon: no stop condition, so Run reports a
		// not-stabilized error by design.
		if _, err := eng.Run(nil); err == nil {
			return nil, fmt.Errorf("E11: unexpected clean stop")
		}

		// Every directed edge must clear its floor 1/(4·d(u)·d(v)).
		minRatio, ratios := 1e18, make([]float64, 0, 2*f.Graph.M())
		f.Graph.Edges(func(u, v int) {
			for _, pair := range [][2]int{{u, v}, {v, u}} {
				floor := 1 / (4 * float64(f.Graph.Degree(pair[0])) * float64(f.Graph.Degree(pair[1])))
				measured := float64(counts[[2]int32{int32(pair[0]), int32(pair[1])}]) / float64(rounds)
				ratio := measured / floor
				ratios = append(ratios, ratio)
				if ratio < minRatio {
					minRatio = ratio
				}
			}
		})
		med := medianOf(ratios)
		table.AddRow(f.Name, n, len(ratios), minRatio, med)
		if minRatio < 0.85 { // the floor is exactly tight for hub→leaf edges; allow sampling noise
			return table, fmt.Errorf("E11: %s edge connection frequency %.3f of floor — bound violated",
				f.Name, minRatio)
		}
	}
	return table, nil
}

func medianOf(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
