package experiment

import (
	"fmt"

	"mobiletel/internal/expansion"
	"mobiletel/internal/graph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/matching"
	"mobiletel/internal/stats"
	"mobiletel/internal/trace"
	"mobiletel/internal/xrand"
)

func init() {
	register(Experiment{
		ID: "E4-lemma-v1-gamma",
		Claim: "Lemma V.1: γ = min_{|S|≤n/2} ν(B(S))/|S| ≥ α/4 — the cut " +
			"matching number (real concurrent-connection capacity) is never " +
			"below a quarter of the vertex expansion. Every ratio column must be ≥ 1.",
		Run: runE4,
	})
}

func runE4(cfg Config) (*trace.Table, error) {
	table := trace.NewTable("E4 Lemma V.1: cut matchings vs vertex expansion",
		"graph", "n", "α (exact)", "γ (exact)", "α/4", "γ/(α/4)")

	families := []gen.Family{
		gen.Clique(10),
		gen.Path(12),
		gen.Cycle(12),
		gen.Star(11),
		gen.LineOfStars(3, 3),
		gen.RingOfCliques(3, 4),
		gen.Barbell(6),
		gen.CompleteBinaryTree(3),
		gen.Hypercube(3),
		gen.Grid(3, 4),
	}
	minRatio := 1e18
	for _, f := range families {
		alpha, _ := expansion.Exact(f.Graph)
		gamma := matching.GammaExact(f.Graph)
		ratio := gamma / (alpha / 4)
		if ratio < minRatio {
			minRatio = ratio
		}
		table.AddRow(f.Name, f.N(), alpha, gamma, alpha/4, ratio)
	}

	// Random connected graphs: report the distribution of ratios.
	trials := pickTrials(cfg, 20, 100)
	ratios := make([]float64, 0, trials)
	rng := xrand.New(cfg.Seed + 4)
	for trial := 0; trial < trials; trial++ {
		n := 6 + rng.Intn(7) // 6..12
		g := randomConnectedER(rng, n, 0.35)
		alpha, _ := expansion.Exact(g)
		gamma := matching.GammaExact(g)
		ratio := gamma / (alpha / 4)
		if ratio < minRatio {
			minRatio = ratio
		}
		ratios = append(ratios, ratio)
	}
	s := stats.Summarize(ratios)
	table.AddRow(fmt.Sprintf("random ER ×%d", trials), "6-12", "", "", "min ratio", s.Min)
	table.AddRow("OVERALL", "", "", "", "min ratio", minRatio)
	if minRatio < 1 {
		return table, fmt.Errorf("Lemma V.1 violated: min γ/(α/4) = %v < 1", minRatio)
	}
	return table, nil
}

// randomConnectedER samples connected G(n, p).
func randomConnectedER(rng *xrand.RNG, n int, p float64) *graph.Graph {
	for {
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		if g.Connected() {
			return g
		}
	}
}
