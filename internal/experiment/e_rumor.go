package experiment

import (
	"fmt"

	"mobiletel/internal/bounds"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/matching"
	"mobiletel/internal/rumor"
	"mobiletel/internal/sim"
	"mobiletel/internal/stats"
	"mobiletel/internal/trace"
	"mobiletel/internal/xrand"
)

func init() {
	register(Experiment{
		ID: "E5-ppush-approx",
		Claim: "Theorem V.2: over r stable rounds, PPUSH informs at least " +
			"m/f(r) nodes across a cut with an m-matching, f(r) = Δ^{1/r}·c·r·log n " +
			"— so the informed fraction rises steeply with the stable stretch r.",
		Run: runE5,
	})
}

// rumorSpec builds the trial spec for rumor-spreading trials (PUSH-PULL when
// ppush is false) over an E1 grid point; trials complete when all nodes are
// informed.
func rumorSpec(baseSeed uint64, pointID int, pt e1Point, ppush bool) trialSpec {
	tagBits := 0
	if ppush {
		tagBits = 1
	}
	return trialSpec{
		Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
			seed := trialSeed(baseSeed, pointID, trial)
			// Source is a pseudo-random node.
			src := int(xrand.Mix3(seed, 0x5c, 0) % uint64(pt.family.N()))
			var protocols []sim.Protocol
			if ppush {
				protocols = rumor.NewPPushNetwork(pt.family.N(), map[int]bool{src: true})
			} else {
				protocols = rumor.NewPushPullNetwork(pt.family.N(), map[int]bool{src: true})
			}
			var sched dyngraph.Schedule
			if pt.tau > 0 {
				sched = dyngraph.NewPermuted(pt.family, pt.tau, seed+1)
			} else {
				sched = dyngraph.NewStatic(pt.family)
			}
			return sched, protocols, sim.Config{Seed: seed + 2, TagBits: tagBits, MaxRounds: 50_000_000}
		},
		Stop: rumor.AllInformed,
		Check: func(_ int, protocols []sim.Protocol) error {
			if rumor.CountInformed(protocols) != len(protocols) {
				return fmt.Errorf("stop fired before full dissemination")
			}
			return nil
		},
	}
}

// e5CutGraph builds the Theorem V.2 scenario: bipartitions L (informed) and
// R (uninformed) of m nodes each, a planted perfect matching L_i–R_i, plus
// extra random cross edges until informed-side degrees approach targetDeg —
// creating the contention PPUSH must fight through.
func e5CutGraph(m, targetDeg int, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	b := graph.NewBuilder(2 * m)
	type edge struct{ l, r int }
	seen := make(map[edge]bool, m*targetDeg)
	add := func(l, r int) {
		e := edge{l, r}
		if !seen[e] {
			seen[e] = true
			b.AddEdge(l, m+r)
		}
	}
	for i := 0; i < m; i++ {
		add(i, i)
	}
	for i := 0; i < m; i++ {
		for d := 1; d < targetDeg; d++ {
			add(i, rng.Intn(m))
		}
	}
	return b.MustBuild()
}

func runE5(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 10, 30)
	m := pick(cfg.Quick, 64, 256)
	targetDeg := pick(cfg.Quick, 8, 16)

	table := trace.NewTable("E5 PPUSH matching approximation over stable stretches (Theorem V.2)",
		"m", "Δ", "r", "median informed frac", "min frac", "1/f(r) with c=1", "matching ν")

	// Confirm the planted cut really has an m-matching (Hopcroft–Karp).
	probe := e5CutGraph(m, targetDeg, xrand.Mix3(cfg.Seed, 5, 0))
	inSet := make([]bool, 2*m)
	for i := 0; i < m; i++ {
		inSet[i] = true
	}
	nu := matching.Nu(probe, inSet)

	maxR := core0Log2(probe.MaxDegree())
	for r := 1; r <= maxR; r++ {
		fracs := make([]float64, trials)
		for trial := 0; trial < trials; trial++ {
			seed := trialSeed(cfg.Seed, r, trial)
			g := e5CutGraph(m, targetDeg, xrand.Mix3(seed, 7, 0))
			informed := make(map[int]bool, m)
			for i := 0; i < m; i++ {
				informed[i] = true
			}
			protocols := rumor.NewPPushNetwork(2*m, informed)
			fam := gen.Family{Name: "e5cut", Graph: g}
			eng, err := sim.New(dyngraph.NewStatic(fam), protocols,
				sim.Config{Seed: seed, TagBits: 1, MaxRounds: r, Workers: 1})
			if err != nil {
				return nil, err
			}
			if _, err := eng.Run(nil); err == nil {
				// Stop never fires (no stop condition) — Run returns an error
				// wrapping ErrNotStabilized by design; err == nil means an
				// unexpected early stop.
				return nil, fmt.Errorf("E5: unexpected clean stop")
			}
			newlyInformed := rumor.CountInformed(protocols) - m
			fracs[trial] = float64(newlyInformed) / float64(m)
		}
		s := stats.Summarize(fracs)
		delta := probe.MaxDegree()
		fr := fOfR(delta, r, 2*m)
		table.AddRow(m, delta, r, s.Median, s.Min, 1/fr, nu)
	}

	// Second sweep: the τ effect proper. Fix a horizon and re-randomize the
	// cut graph every τ rounds using the attractor construction below: the
	// planted matching (hence ν = m) survives every epoch, but each fresh
	// epoch hides it behind heavy edges to a small rotating attractor set.
	// One stable round mostly floods the attractors; only the *second*
	// stable round on the same graph lets informed nodes find their hidden
	// matching partners. Larger τ therefore raises the informed fraction at
	// the horizon — the mechanism behind the Δ^{1/τ̂} term of Theorems VII.2
	// and VIII.2.
	heavy := targetDeg - 1
	horizon := 6
	for _, tau := range []int{1, 2, 3, horizon} {
		tau := tau
		fracs := make([]float64, trials)
		for trial := 0; trial < trials; trial++ {
			seed := trialSeed(cfg.Seed, 5000+tau, trial)
			sched := dyngraph.NewRegenerate("e5attract", tau, seed, func(s uint64) gen.Family {
				return gen.Family{Name: "e5attract", Graph: e5AttractorGraph(m, heavy, s)}
			})
			informed := make(map[int]bool, m)
			for i := 0; i < m; i++ {
				informed[i] = true
			}
			protocols := rumor.NewPPushNetwork(2*m, informed)
			eng, err := sim.New(sched, protocols,
				sim.Config{Seed: seed + 1, TagBits: 1, MaxRounds: horizon, Workers: 1})
			if err != nil {
				return nil, err
			}
			if _, err := eng.Run(nil); err == nil {
				return nil, fmt.Errorf("E5: unexpected clean stop")
			}
			fracs[trial] = float64(rumor.CountInformed(protocols)-m) / float64(m)
		}
		s := stats.Summarize(fracs)
		table.AddRow(m, heavy+1, fmt.Sprintf("τ=%d (horizon %d)", tau, horizon),
			s.Median, s.Min, "", nu)
	}
	return table, nil
}

// e5AttractorGraph builds the contention cut for the τ sweep: bipartitions
// L (informed roles, nodes 0..m-1) and R (uninformed roles, nodes m..2m-1),
// a planted perfect matching L_i–R_i, plus `heavy` edges from each L node
// to a small attractor subset of R (size m/16, re-drawn per seed). On a
// fresh graph, PPUSH proposals overwhelmingly land on the few attractors;
// the hidden matching only resolves once the attractors are informed, which
// takes an extra stable round.
func e5AttractorGraph(m, heavy int, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	attractors := rng.Perm(m)[:maxInt(1, m/16)]
	b := graph.NewBuilder(2 * m)
	type edge struct{ l, r int }
	seen := make(map[edge]bool, m*(heavy+1))
	add := func(l, r int) {
		e := edge{l, r}
		if !seen[e] {
			seen[e] = true
			b.AddEdge(l, m+r)
		}
	}
	for i := 0; i < m; i++ {
		add(i, i)
		for d := 0; d < heavy; d++ {
			add(i, attractors[rng.Intn(len(attractors))])
		}
	}
	return b.MustBuild()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fOfR evaluates the approximation factor f(r) = Δ^{1/r}·c·r·log₂ n with
// c = 1 (the theorem's constant is unspecified; shape is what matters).
func fOfR(delta, r, n int) float64 {
	return bounds.F(r, delta, n)
}

// core0Log2 is ⌈log₂ x⌉ with a floor of 1.
func core0Log2(x int) int {
	l := 0
	for v := x - 1; v > 0; v >>= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}
