package experiment

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testKey is a valid key for the checkpoint unit tests.
var testKey = CheckpointKey{ID: "T1-test", Seed: 7, Trials: 2, Quick: true}

func TestCheckpointRecordLookup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ckpt.jsonl")
	ck, err := OpenCheckpoint(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if b := ck.NextBatch(); b != 0 {
		t.Fatalf("first batch = %d, want 0", b)
	}
	if b := ck.NextBatch(); b != 1 {
		t.Fatalf("second batch = %d, want 1", b)
	}
	if _, ok := ck.Lookup(0, 0, 0); ok {
		t.Fatal("empty checkpoint has a cell")
	}
	if err := ck.Record(0, 1, 2, 99); err != nil {
		t.Fatal(err)
	}
	if r, ok := ck.Lookup(0, 1, 2); !ok || r != 99 {
		t.Fatalf("Lookup = %d, %v; want 99, true", r, ok)
	}
	if ck.Recorded() != 1 || ck.Replayed() != 1 {
		t.Fatalf("Recorded=%d Replayed=%d", ck.Recorded(), ck.Replayed())
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh open sees the recorded cell and a zeroed batch counter.
	ck2, err := OpenCheckpoint(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if b := ck2.NextBatch(); b != 0 {
		t.Fatalf("batch counter persisted across open: %d", b)
	}
	if r, ok := ck2.Lookup(0, 1, 2); !ok || r != 99 {
		t.Fatalf("reloaded Lookup = %d, %v; want 99, true", r, ok)
	}
}

func TestCheckpointKeyMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ckpt.jsonl")
	ck, err := OpenCheckpoint(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	other := testKey
	other.Seed++
	if _, err := OpenCheckpoint(path, other); err == nil {
		t.Fatal("key mismatch accepted")
	} else if !strings.Contains(err.Error(), "recorded for") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
}

func TestCheckpointTornTailHealed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ckpt.jsonl")
	ck, err := OpenCheckpoint(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ck.Record(0, 0, i, 10+i); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-append: chop the file mid-way through the last
	// cell's line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ck2.Lookup(0, 0, 1); !ok {
		t.Fatal("intact cell lost")
	}
	if _, ok := ck2.Lookup(0, 0, 2); ok {
		t.Fatal("torn cell survived")
	}
	// The torn run's cell re-records cleanly after healing.
	if err := ck2.Record(0, 0, 2, 12); err != nil {
		t.Fatal(err)
	}
	if err := ck2.Close(); err != nil {
		t.Fatal(err)
	}

	// Every line of the healed file must now parse.
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(healed), "\n"), "\n")
	if len(lines) != 4 { // header + 3 cells
		t.Fatalf("healed file has %d lines: %q", len(lines), lines)
	}
	for i, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("healed line %d malformed: %q", i+1, l)
		}
	}
}

func TestCheckpointEmptyFileIsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ckpt.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Record(0, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	if _, err := OpenCheckpoint(path, testKey); err != nil {
		t.Fatalf("reopen after empty-file bootstrap: %v", err)
	}
}

func TestCheckpointDieAfter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ckpt.jsonl")
	ck, err := OpenCheckpoint(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	died := false
	ck.die = func() { died = true }
	ck.SetDieAfter(2)
	if err := ck.Record(0, 0, 0, 1); err != nil || died {
		t.Fatalf("died after first record (err=%v)", err)
	}
	if err := ck.Record(0, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if !died {
		t.Fatal("die hook not invoked after second record")
	}
}

// resumeExperiment is the sweep used by the resume tests: a real registered
// multi-point experiment that goes through runPointTrials.
const resumeExperiment = "E1-blindgossip-scaling"

// runWithCheckpoint runs the resume experiment with a fresh Checkpoint
// handle on path and returns the rendered table.
func runWithCheckpoint(t *testing.T, path string, key CheckpointKey) string {
	t.Helper()
	e, ok := ByID(resumeExperiment)
	if !ok {
		t.Fatalf("%s not registered", resumeExperiment)
	}
	ck, err := OpenCheckpoint(path, key)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	table, err := e.Run(Config{Seed: key.Seed, Trials: key.Trials, Quick: key.Quick, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	return table.Text()
}

// TestCheckpointResumeBitIdentical is the crash-safety contract: a sweep
// killed mid-run and resumed from its checkpoint renders a table
// byte-identical to an uninterrupted sweep.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("resume sweep skipped in -short mode")
	}
	e, ok := ByID(resumeExperiment)
	if !ok {
		t.Fatalf("%s not registered", resumeExperiment)
	}
	key := CheckpointKey{ID: resumeExperiment, Seed: 12345, Trials: 2, Quick: true}

	// Ground truth: no checkpoint at all.
	plain, err := e.Run(Config{Seed: key.Seed, Trials: key.Trials, Quick: key.Quick})
	if err != nil {
		t.Fatal(err)
	}
	want := plain.Text()

	dir := t.TempDir()
	path := filepath.Join(dir, "e1.ckpt.jsonl")
	if got := runWithCheckpoint(t, path, key); got != want {
		t.Fatalf("checkpointed run differs from plain run:\n--- plain\n%s\n--- checkpointed\n%s", want, got)
	}

	// Simulate a mid-sweep kill: drop the second half of the recorded cells
	// (plus a torn tail byte or two would also be fine — covered above).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("checkpoint too small to truncate: %d lines", len(lines))
	}
	keep := 1 + (len(lines)-1)/2 // header + half the cells
	if err := os.WriteFile(path, []byte(strings.Join(lines[:keep], "")), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume must replay the surviving cells and re-run the rest, landing on
	// the exact same bytes.
	ck, err := OpenCheckpoint(path, key)
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Run(Config{Seed: key.Seed, Trials: key.Trials, Quick: key.Quick, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if ck.Replayed() == 0 {
		t.Error("resume replayed no cells")
	}
	if ck.Recorded() == 0 {
		t.Error("resume re-ran no cells")
	}
	ck.Close()
	if got := table.Text(); got != want {
		t.Fatalf("resumed run differs from plain run:\n--- plain\n%s\n--- resumed\n%s", want, got)
	}
}

func TestInterruptAbortsSweep(t *testing.T) {
	e, ok := ByID(resumeExperiment)
	if !ok {
		t.Fatalf("%s not registered", resumeExperiment)
	}
	stop := make(chan struct{})
	close(stop)
	_, err := e.Run(Config{Seed: 1, Trials: 2, Quick: true, Interrupt: stop})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

// TestInterruptedRunResumes ties the two together: interrupt a checkpointed
// sweep, then resume it to completion and match the uninterrupted table.
func TestInterruptedRunResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("resume sweep skipped in -short mode")
	}
	e, ok := ByID(resumeExperiment)
	if !ok {
		t.Fatalf("%s not registered", resumeExperiment)
	}
	key := CheckpointKey{ID: resumeExperiment, Seed: 777, Trials: 2, Quick: true}
	plain, err := e.Run(Config{Seed: key.Seed, Trials: key.Trials, Quick: key.Quick})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "e1.ckpt.jsonl")
	ck, err := OpenCheckpoint(path, key)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	if _, err := e.Run(Config{Seed: key.Seed, Trials: key.Trials, Quick: key.Quick,
		Checkpoint: ck, Interrupt: stop}); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	ck.Close()

	if got := runWithCheckpoint(t, path, key); got != plain.Text() {
		t.Fatalf("post-interrupt resume differs:\n--- plain\n%s\n--- resumed\n%s", plain.Text(), got)
	}
}
