package experiment

import (
	"fmt"

	"mobiletel/internal/bounds"
	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
	"mobiletel/internal/stats"
	"mobiletel/internal/trace"
)

func init() {
	register(Experiment{
		ID: "E1-blindgossip-scaling",
		Claim: "Theorem VI.1: blind gossip leader election stabilizes in " +
			"O((1/α)Δ²log²n) rounds for any τ >= 1 and b = 0. The measured-to-" +
			"predicted ratio should stay roughly flat within each family as n grows.",
		Run: runE1,
	})
	register(Experiment{
		ID: "E2-blindgossip-lowerbound",
		Claim: "Section VI lower bound: on the line of √n stars of √n points, " +
			"blind gossip needs Ω(Δ²√n) rounds; measured rounds should grow like " +
			"side³ (log-log slope ≈ 3 in the star side length).",
		Run: runE2,
	})
	register(Experiment{
		ID: "E3-pushpull-bound",
		Claim: "Corollary VI.6: PUSH-PULL rumor spreading completes in " +
			"O((1/α)Δ²log²n) rounds in the mobile telephone model with b = 0, τ >= 1.",
		Run: runE3,
	})
}

// e1Point is one (family, n) cell of the E1/E3 sweeps.
type e1Point struct {
	family gen.Family
	tau    int // 0 = static
}

// e1Families builds the sweep grid: one constant-α family (clique), one
// shrinking-α family (ring of cliques), one expander (random regular).
func e1Families(quick bool, seed uint64) []e1Point {
	var sizes []int
	if quick {
		sizes = []int{24, 48}
	} else {
		sizes = []int{32, 64, 128}
	}
	var points []e1Point
	for _, n := range sizes {
		points = append(points, e1Point{family: gen.Clique(n)})
		points = append(points, e1Point{family: gen.RingOfCliques(n/8, 8)})
		points = append(points, e1Point{family: gen.RandomRegular(n, 8, seed)})
	}
	// Also one dynamic row per size: the adversarial τ=1 permuted expander.
	for _, n := range sizes {
		points = append(points, e1Point{family: gen.RandomRegular(n, 8, seed+1), tau: 1})
	}
	return points
}

// predictedBlindGossip evaluates the Theorem VI.1 bound shape via the
// shared bounds package.
func predictedBlindGossip(alpha float64, maxDeg, n int) float64 {
	return bounds.BlindGossip(alpha, maxDeg, n)
}

func runE1(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	table := trace.NewTable("E1 blind gossip scaling (Theorem VI.1)",
		"family", "n", "Δ", "α", "τ", "median", "p90", "bound", "median/bound")

	points := e1Families(cfg.Quick, cfg.Seed+1000)
	specs := make([]pointSpec, len(points))
	for pi, pt := range points {
		pi, pt := pi, pt
		specs[pi] = pointSpec{Trials: trials, Spec: trialSpec{
			Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
				seed := trialSeed(cfg.Seed, pi, trial)
				uids := core.UniqueUIDs(pt.family.N(), seed)
				var sched dyngraph.Schedule
				if pt.tau > 0 {
					sched = dyngraph.NewPermuted(pt.family, pt.tau, seed+1)
				} else {
					sched = dyngraph.NewStatic(pt.family)
				}
				return sched, core.NewBlindGossipNetwork(uids),
					sim.Config{Seed: seed + 2, TagBits: 0, MaxRounds: 50_000_000}
			},
			Check: func(trial int, protocols []sim.Protocol) error {
				seed := trialSeed(cfg.Seed, pi, trial)
				want := core.MinUID(core.UniqueUIDs(pt.family.N(), seed))
				if got := protocols[0].Leader(); got != want {
					return fmt.Errorf("elected %d, want %d", got, want)
				}
				return nil
			},
		}}
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}
	for pi, pt := range points {
		s := stats.IntSummary(allRounds[pi])
		bound := predictedBlindGossip(pt.family.Alpha, pt.family.MaxDegree(), pt.family.N())
		tau := "inf"
		if pt.tau > 0 {
			tau = fmt.Sprintf("%d", pt.tau)
		}
		table.AddRow(pt.family.Name, pt.family.N(), pt.family.MaxDegree(), pt.family.Alpha,
			tau, s.Median, s.P90, bound, s.Median/bound)
	}
	return table, nil
}

func runE2(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	var sides []int
	if cfg.Quick {
		sides = []int{4, 6}
	} else {
		sides = []int{4, 6, 8, 11}
	}
	table := trace.NewTable("E2 blind gossip lower bound on the line of stars (Section VI)",
		"side", "n", "Δ", "median", "p90", "Δ²·side", "median/(Δ²·side)")

	families := make([]gen.Family, len(sides))
	specs := make([]pointSpec, len(sides))
	for pi, side := range sides {
		pi := pi
		f := gen.SqrtLineOfStars(side)
		families[pi] = f
		specs[pi] = pointSpec{Trials: trials, Spec: trialSpec{
			Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
				seed := trialSeed(cfg.Seed, pi, trial)
				uids := core.UniqueUIDs(f.N(), seed)
				// Plant the minimum UID at the head-of-line star center
				// (node 0), the paper's worst-case initialization.
				minIdx := 0
				for i, u := range uids {
					if u < uids[minIdx] {
						minIdx = i
					}
				}
				uids[0], uids[minIdx] = uids[minIdx], uids[0]
				return dyngraph.NewStatic(f), core.NewBlindGossipNetwork(uids),
					sim.Config{Seed: seed + 2, TagBits: 0, MaxRounds: 100_000_000}
			},
		}}
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}

	var xs, ys []float64
	for pi, side := range sides {
		f := families[pi]
		s := stats.IntSummary(allRounds[pi])
		pred := float64(f.MaxDegree()*f.MaxDegree()) * float64(side)
		table.AddRow(side, f.N(), f.MaxDegree(), s.Median, s.P90, pred, s.Median/pred)
		xs = append(xs, float64(side))
		ys = append(ys, s.Median)
	}
	fit := stats.LogLogFit(xs, ys)
	table.AddRow("fit", "", "", "", "", "slope(side)", fmt.Sprintf("%.2f (R²=%.3f)", fit.Slope, fit.R2))
	return table, nil
}

func runE3(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	table := trace.NewTable("E3 PUSH-PULL rumor spreading bound (Corollary VI.6)",
		"family", "n", "Δ", "α", "τ", "median", "p90", "bound", "median/bound")

	// Reuse the E1 grid; the corollary claims the same bound shape.
	points := e1Families(cfg.Quick, cfg.Seed+2000)
	specs := make([]pointSpec, len(points))
	for pi, pt := range points {
		specs[pi] = pointSpec{Trials: trials, Spec: rumorSpec(cfg.Seed, pi+100, pt, false)}
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}
	for pi, pt := range points {
		s := stats.IntSummary(allRounds[pi])
		bound := predictedBlindGossip(pt.family.Alpha, pt.family.MaxDegree(), pt.family.N())
		tau := "inf"
		if pt.tau > 0 {
			tau = fmt.Sprintf("%d", pt.tau)
		}
		table.AddRow(pt.family.Name, pt.family.N(), pt.family.MaxDegree(), pt.family.Alpha,
			tau, s.Median, s.P90, bound, s.Median/bound)
	}
	return table, nil
}
