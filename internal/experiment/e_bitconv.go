package experiment

import (
	"fmt"
	"math"

	"mobiletel/internal/bounds"
	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
	"mobiletel/internal/stats"
	"mobiletel/internal/trace"
)

func init() {
	register(Experiment{
		ID: "E6-bitconv-tau",
		Claim: "Theorem VII.2: bit convergence stabilizes in " +
			"O((1/α)Δ^{1/τ̂}·τ̂·log⁵n) rounds, τ̂ = min(τ, log Δ): rounds should " +
			"fall as τ grows from 1 to log Δ and flatten beyond log Δ. The " +
			"τ-dependence only binds against an adaptive adversary that re-buries " +
			"the convergence frontier each epoch — oblivious random schedules mix " +
			"nodes across bottlenecks and help the algorithm (reported for contrast).",
		Run: runE6,
	})
	register(Experiment{
		ID: "E7-zero-vs-one-bit",
		Claim: "Headline gap (Sections VI vs VII): with one advertising bit, " +
			"leader election beats the b = 0 blind gossip strategy; the speedup " +
			"grows from ~Δ toward ~Δ² as τ grows (largest on low-α topologies).",
		Run: runE7,
	})
}

// checkMinPair validates that the elected leader is the owner of the
// globally smallest (tag, UID) pair.
func checkMinPair(uids, tags []uint64, protocols []sim.Protocol) error {
	pairs := make([]core.IDPair, len(uids))
	for i := range uids {
		pairs[i] = core.IDPair{UID: uids[i], Tag: tags[i]}
	}
	want := core.MinPair(pairs).UID
	if got := protocols[0].Leader(); got != want {
		return fmt.Errorf("elected %d, want min-pair owner %d", got, want)
	}
	return nil
}

func runE6(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	n := pick(cfg.Quick, 64, 128)
	points := 15 // star size - 1; Δ = 17
	delta := points + 2
	logDelta := core.Log2Ceil(delta + 1)

	taus := []int{1, 2, 4, logDelta, logDelta * 3}
	table := trace.NewTable(
		fmt.Sprintf("E6 bit convergence vs stability factor (Theorem VII.2), n=%d Δ=%d logΔ=%d", n, delta, logDelta),
		"schedule", "τ", "τ̂", "median", "p90", "Δ^{1/τ̂}·τ̂", "median/factor")

	params := core.DefaultBitConvParams(n, delta)
	oblivious := gen.RandomRegular(n, 16, cfg.Seed+3000)

	type e6Cell struct {
		tau      int
		adaptive bool
	}
	var cells []e6Cell
	var specs []pointSpec
	for pi, tau := range taus {
		tau := tau
		for _, adaptive := range []bool{true, false} {
			adaptive := adaptive
			var tagsBox = make([][]uint64, trials)
			var uidsBox = make([][]uint64, trials)
			cells = append(cells, e6Cell{tau: tau, adaptive: adaptive})
			specs = append(specs, pointSpec{Trials: trials, Spec: trialSpec{
				Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
					seed := trialSeed(cfg.Seed, pi*2+10+boolInt(adaptive), trial)
					uids := core.UniqueUIDs(n, seed)
					protocols, tags := core.NewBitConvNetwork(uids, params, seed+1)
					uidsBox[trial], tagsBox[trial] = uids, tags
					var sched dyngraph.Schedule
					if adaptive {
						adv := newAdaptiveStars(n, points, tau)
						adv.SetSource(protocols)
						sched = adv
					} else {
						sched = dyngraph.NewPermuted(oblivious, tau, seed+2)
					}
					return sched, protocols, sim.Config{Seed: seed + 3, TagBits: 1, MaxRounds: 50_000_000}
				},
				Check: func(trial int, protocols []sim.Protocol) error {
					return checkMinPair(uidsBox[trial], tagsBox[trial], protocols)
				},
			}})
		}
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}
	for ci, cell := range cells {
		s := stats.IntSummary(allRounds[ci])
		tauHat := bounds.TauHat(cell.tau, delta)
		factor := math.Pow(float64(delta), 1/float64(tauHat)) * float64(tauHat)
		name := "oblivious-permuted"
		if cell.adaptive {
			name = "adaptive-stars"
		}
		table.AddRow(name, cell.tau, tauHat, s.Median, s.P90, factor, s.Median/factor)
	}
	return table, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// e7Point is one row of the E7 comparison.
type e7Point struct {
	family   gen.Family
	tau      int // 0 = static (ignored when adaptive)
	adaptive bool
	advN     int // network size for the adaptive adversary
}

func runE7(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	size := pick(cfg.Quick, 48, 110)
	side := pick(cfg.Quick, 8, 25)
	advN := pick(cfg.Quick, 64, 128)

	points := []e7Point{
		{family: gen.SqrtLineOfStars(side)},
		{family: gen.SqrtLineOfStars(side), tau: 1},
		{family: gen.RingOfCliques(size/8, 8)},
		{family: gen.RandomRegular(size, 8, cfg.Seed+4000), tau: 1},
		{adaptive: true, tau: 1, advN: advN},
		{adaptive: true, tau: 8, advN: advN},
	}
	table := trace.NewTable("E7 zero-bit vs one-bit leader election (Sections VI vs VII)",
		"schedule", "n", "Δ", "τ", "blind gossip med", "bit conv med", "speedup")

	const advPoints = 15 // adversary star size - 1; Δ = 17

	// Both election algorithms on every point feed one shared pool: specs
	// 2·pi and 2·pi+1 are point pi's blind-gossip and bit-convergence runs.
	specs := make([]pointSpec, 0, 2*len(points))
	for pi, pt := range points {
		pi, pt := pi, pt
		specs = append(specs, pointSpec{Trials: trials, Spec: trialSpec{
			Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
				seed := trialSeed(cfg.Seed, pi+20, trial)
				if pt.adaptive {
					uids := core.UniqueUIDs(pt.advN, seed)
					protocols := core.NewBlindGossipNetwork(uids)
					adv := newAdaptiveStars(pt.advN, advPoints, pt.tau)
					adv.SetSource(protocols)
					return adv, protocols, sim.Config{Seed: seed + 2, TagBits: 0, MaxRounds: 100_000_000}
				}
				uids := core.UniqueUIDs(pt.family.N(), seed)
				var sched dyngraph.Schedule = dyngraph.NewStatic(pt.family)
				if pt.tau > 0 {
					sched = dyngraph.NewPermuted(pt.family, pt.tau, seed+1)
				}
				return sched, core.NewBlindGossipNetwork(uids),
					sim.Config{Seed: seed + 2, TagBits: 0, MaxRounds: 100_000_000}
			},
		}})
		specs = append(specs, pointSpec{Trials: trials, Spec: trialSpec{
			Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
				seed := trialSeed(cfg.Seed, pi+20, trial)
				if pt.adaptive {
					params := core.DefaultBitConvParams(pt.advN, advPoints+2)
					uids := core.UniqueUIDs(pt.advN, seed)
					protocols, _ := core.NewBitConvNetwork(uids, params, seed+1)
					adv := newAdaptiveStars(pt.advN, advPoints, pt.tau)
					adv.SetSource(protocols)
					return adv, protocols, sim.Config{Seed: seed + 2, TagBits: 1, MaxRounds: 100_000_000}
				}
				params := core.DefaultBitConvParams(pt.family.N(), pt.family.MaxDegree())
				uids := core.UniqueUIDs(pt.family.N(), seed)
				protocols, _ := core.NewBitConvNetwork(uids, params, seed+1)
				var sched dyngraph.Schedule = dyngraph.NewStatic(pt.family)
				if pt.tau > 0 {
					sched = dyngraph.NewPermuted(pt.family, pt.tau, seed+1)
				}
				return sched, protocols, sim.Config{Seed: seed + 2, TagBits: 1, MaxRounds: 100_000_000}
			},
		}})
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}

	for pi, pt := range points {
		bg := stats.IntSummary(allRounds[2*pi])
		bc := stats.IntSummary(allRounds[2*pi+1])
		tau := "inf"
		if pt.tau > 0 {
			tau = fmt.Sprintf("%d", pt.tau)
		}
		var name string
		var n, delta int
		switch {
		case pt.adaptive:
			name, n, delta = "adaptive-stars", pt.advN, advPoints+2
		case pt.tau > 0:
			name, n, delta = "permuted/"+pt.family.Name, pt.family.N(), pt.family.MaxDegree()
		default:
			name, n, delta = "static/"+pt.family.Name, pt.family.N(), pt.family.MaxDegree()
		}
		table.AddRow(name, n, delta, tau, bg.Median, bc.Median, bg.Median/bc.Median)
	}
	return table, nil
}
