package experiment

import (
	"fmt"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
	"mobiletel/internal/stats"
	"mobiletel/internal/trace"
	"mobiletel/internal/xrand"
)

func init() {
	register(Experiment{
		ID: "E8-async-bitconv",
		Claim: "Theorem VIII.2: the non-synchronized bit convergence algorithm " +
			"(b = loglog n + O(1)) stabilizes within polylog factors of the " +
			"synchronized algorithm, measured from the last activation.",
		Run: runE8,
	})
	register(Experiment{
		ID: "E9-self-stabilization",
		Claim: "Section VIII: joining components that ran the non-synchronized " +
			"algorithm for arbitrary durations still stabilizes to one leader in " +
			"the usual time — post-merge rounds should not grow with pre-merge age.",
		Run: runE9,
	})
	register(Experiment{
		ID: "E10-churn-robustness",
		Claim: "All algorithms adapt to whatever stability they encounter (no " +
			"advance knowledge of τ): they stabilize correctly under adversarial " +
			"permutation, link churn, and random-waypoint mobility schedules.",
		Run: runE10,
	})
}

func runE8(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	n := pick(cfg.Quick, 48, 96)
	d := 8
	base := gen.RandomRegular(n, d, cfg.Seed+5000)
	params := core.DefaultBitConvParams(n, d)

	table := trace.NewTable("E8 synchronized vs non-synchronized bit convergence (Theorem VIII.2)",
		"variant", "b (bits)", "activation spread", "median rounds*", "p90", "vs sync median")

	// Spec 0 is the synchronized baseline; specs 1.. are the async variants
	// at increasing activation spreads. All share one pipelined pool.
	spreads := []int{0, 200, 2000}
	specs := make([]pointSpec, 0, 1+len(spreads))
	specs = append(specs, pointSpec{Trials: trials, Spec: trialSpec{
		Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
			seed := trialSeed(cfg.Seed, 800, trial)
			uids := core.UniqueUIDs(n, seed)
			protocols, _ := core.NewBitConvNetwork(uids, params, seed+1)
			return dyngraph.NewStatic(base), protocols,
				sim.Config{Seed: seed + 2, TagBits: 1, MaxRounds: 50_000_000}
		},
	}})
	for _, spread := range spreads {
		spread := spread
		specs = append(specs, pointSpec{Trials: trials, Spec: trialSpec{
			Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
				seed := trialSeed(cfg.Seed, 810+spread, trial)
				uids := core.UniqueUIDs(n, seed)
				protocols, _ := core.NewAsyncBitConvNetwork(uids, params, seed+1)
				cfgSim := sim.Config{
					Seed: seed + 2, TagBits: core.TagBitsNeeded(params), MaxRounds: 50_000_000,
				}
				if spread > 0 {
					rng := xrand.New(seed + 3)
					acts := make([]int, n)
					for i := range acts {
						acts[i] = 1 + rng.Intn(spread)
					}
					cfgSim.Activations = acts
				}
				return dyngraph.NewStatic(base), protocols, cfgSim
			},
		}})
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}

	syncRounds := allRounds[0]
	syncMed := stats.IntSummary(syncRounds).Median
	table.AddRow("bitconv (sync)", 1, 0, syncMed, stats.IntSummary(syncRounds).P90, 1.0)

	// Rounds measured after the last activation (the Section VIII
	// convention): subtract the activation spread. StabilizedRound includes
	// the ramp-up, so report the adjusted value via the spread upper bound.
	for si, spread := range spreads {
		rounds := allRounds[1+si]
		adjusted := make([]int, len(rounds))
		for i, r := range rounds {
			adjusted[i] = r - spread
			if adjusted[i] < 0 {
				adjusted[i] = 0
			}
		}
		s := stats.IntSummary(adjusted)
		table.AddRow("asyncbitconv", core.TagBitsNeeded(params), spread, s.Median, s.P90, s.Median/syncMed)
	}
	return table, nil
}

// twoComponents builds a disconnected union of two random-regular halves.
func twoComponents(n, d int, seed uint64) gen.Family {
	half := n / 2
	a := gen.RandomRegular(half, d, seed)
	b := gen.RandomRegular(half, d, seed+1)
	bl := graph.NewBuilder(n)
	a.Graph.Edges(func(u, v int) { bl.AddEdge(u, v) })
	b.Graph.Edges(func(u, v int) { bl.AddEdge(half+u, half+v) })
	return gen.Family{Name: "two-components", Graph: bl.MustBuild()}
}

func runE9(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	n := pick(cfg.Quick, 48, 96)
	d := 6
	params := core.DefaultBitConvParams(n, d+1)

	table := trace.NewTable("E9 self-stabilization under component merges (Section VIII)",
		"pre-merge rounds", "median post-merge rounds", "p90", "correct leader")

	for _, preMerge := range []int{1, 500, 5000} {
		preMerge := preMerge
		postRounds := make([]float64, trials)
		for trial := 0; trial < trials; trial++ {
			seed := trialSeed(cfg.Seed, 900+preMerge, trial)
			pre := twoComponents(n, d, seed+10)
			post := gen.RandomRegular(n, d, seed+11)
			sched := dyngraph.NewSwitch(dyngraph.NewStatic(pre), dyngraph.NewStatic(post), preMerge+1)

			uids := core.UniqueUIDs(n, seed)
			protocols, tags := core.NewAsyncBitConvNetwork(uids, params, seed+1)
			eng, err := sim.New(sched, protocols, sim.Config{
				Seed: seed + 2, TagBits: core.TagBitsNeeded(params), MaxRounds: 50_000_000, Workers: 1,
			})
			if err != nil {
				return nil, err
			}
			res, err := eng.Run(sim.AllLeadersEqual)
			if err != nil {
				return nil, err
			}
			if err := checkMinPair(uids, tags, protocols); err != nil {
				return nil, fmt.Errorf("pre-merge %d: %w", preMerge, err)
			}
			afterMerge := res.StabilizedRound - preMerge
			if afterMerge < 0 {
				afterMerge = 0
			}
			postRounds[trial] = float64(afterMerge)
		}
		s := stats.Summarize(postRounds)
		table.AddRow(preMerge, s.Median, s.P90, "yes")
	}
	return table, nil
}

func runE10(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 10)
	n := pick(cfg.Quick, 40, 80)
	d := 6
	base := gen.RandomRegular(n, d, cfg.Seed+6000)

	type schedPoint struct {
		name string
		mk   func(seed uint64) dyngraph.Schedule
	}
	schedules := []schedPoint{
		{"static", func(seed uint64) dyngraph.Schedule { return dyngraph.NewStatic(base) }},
		{"permuted τ=4", func(seed uint64) dyngraph.Schedule { return dyngraph.NewPermuted(base, 4, seed) }},
		{"churn τ=4", func(seed uint64) dyngraph.Schedule { return dyngraph.NewChurn(base, 4, n/4, seed) }},
		{"waypoint τ=4", func(seed uint64) dyngraph.Schedule {
			return dyngraph.NewWaypoint(n, 0.35, 0.05, 4, seed)
		}},
	}

	type algoPoint struct {
		name    string
		tagBits func() int
		build   func(uids []uint64, seed uint64) []sim.Protocol
		check   func(uids, tags []uint64, protocols []sim.Protocol) error
	}
	params := core.DefaultBitConvParams(n, n-1) // waypoint Δ can be large; be generous
	var lastTags []uint64
	algos := []algoPoint{
		{
			name:    "blindgossip",
			tagBits: func() int { return 0 },
			build: func(uids []uint64, seed uint64) []sim.Protocol {
				lastTags = nil
				return core.NewBlindGossipNetwork(uids)
			},
			check: func(uids, _ []uint64, protocols []sim.Protocol) error {
				if protocols[0].Leader() != core.MinUID(uids) {
					return fmt.Errorf("wrong leader")
				}
				return nil
			},
		},
		{
			name:    "bitconv",
			tagBits: func() int { return 1 },
			build: func(uids []uint64, seed uint64) []sim.Protocol {
				protocols, tags := core.NewBitConvNetwork(uids, params, seed)
				lastTags = tags
				return protocols
			},
			check: func(uids, tags []uint64, protocols []sim.Protocol) error {
				return checkMinPair(uids, tags, protocols)
			},
		},
		{
			name:    "asyncbitconv",
			tagBits: func() int { return core.TagBitsNeeded(params) },
			build: func(uids []uint64, seed uint64) []sim.Protocol {
				protocols, tags := core.NewAsyncBitConvNetwork(uids, params, seed)
				lastTags = tags
				return protocols
			},
			check: func(uids, tags []uint64, protocols []sim.Protocol) error {
				return checkMinPair(uids, tags, protocols)
			},
		},
	}

	table := trace.NewTable("E10 robustness across dynamic schedules (τ-adaptivity)",
		"schedule", "algorithm", "median rounds", "p90", "all correct")

	for si, sp := range schedules {
		for ai, ap := range algos {
			sp, ap := sp, ap
			rounds := make([]int, trials)
			for trial := 0; trial < trials; trial++ {
				seed := trialSeed(cfg.Seed, 1000+si*10+ai, trial)
				uids := core.UniqueUIDs(n, seed)
				protocols := ap.build(uids, seed+1)
				tags := lastTags
				eng, err := sim.New(sp.mk(seed+2), protocols, sim.Config{
					Seed: seed + 3, TagBits: ap.tagBits(), MaxRounds: 50_000_000, Workers: 1,
				})
				if err != nil {
					return nil, err
				}
				res, err := eng.Run(sim.AllLeadersEqual)
				if err != nil {
					return nil, err
				}
				if err := ap.check(uids, tags, protocols); err != nil {
					return nil, fmt.Errorf("%s/%s trial %d: %w", sp.name, ap.name, trial, err)
				}
				rounds[trial] = res.StabilizedRound
			}
			s := stats.IntSummary(rounds)
			table.AddRow(sp.name, ap.name, s.Median, s.P90, "yes")
		}
	}
	return table, nil
}
