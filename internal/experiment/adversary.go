package experiment

import (
	"math"
	"sort"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph"
	"mobiletel/internal/sim"
)

// adaptiveStars is an *adaptive* adversarial dynamic graph: every τ rounds
// it reads the current algorithm state and rebuilds the topology as a line
// of stars with nodes placed in ascending order of their current smallest
// ID pair. Any "progress frontier" cut (nodes below a pair threshold vs the
// rest) is then a prefix of the line and has a cut matching of size O(1),
// which is the worst case the Theorem VII.2 analysis ranges over.
//
// This matters because *oblivious* schedules (fresh random permutations
// every epoch) empirically help convergence — relocated nodes carry small
// pairs across bottlenecks — so the τ-dependence of bit convergence only
// becomes visible against an adversary that re-buries the frontier each
// epoch. The dynamic graph model permits this: the paper's bounds hold for
// every τ-stable sequence, including state-adaptive ones.
//
// The schedule reports the line-of-stars' α (the frontier cut realizes it),
// and Δ = points + 2.
type adaptiveStars struct {
	n      int
	points int
	tau    int

	// pairs reads each node's current smallest ID pair; set via SetSource
	// after the protocols exist.
	pairs func(node int) core.IDPair

	cachedEpoch int
	cached      *graph.Graph
}

var _ dyngraph.Schedule = (*adaptiveStars)(nil)

// newAdaptiveStars builds the adversary for n nodes with the given star
// size. n must be a multiple of points+1.
func newAdaptiveStars(n, points, tau int) *adaptiveStars {
	if points < 1 || n%(points+1) != 0 || n/(points+1) < 2 {
		panic("experiment: adaptiveStars needs n divisible by points+1 with >= 2 stars")
	}
	if tau < 1 {
		panic("experiment: adaptiveStars needs tau >= 1")
	}
	return &adaptiveStars{n: n, points: points, tau: tau, cachedEpoch: -1}
}

// SetSource installs the state reader. Must be called before the first
// GraphAt.
func (a *adaptiveStars) SetSource(protocols []sim.Protocol) {
	a.pairs = func(node int) core.IDPair {
		switch p := protocols[node].(type) {
		case *core.BitConv:
			return p.Best()
		case *core.AsyncBitConv:
			return p.Best()
		case *core.BlindGossip:
			return core.IDPair{UID: p.Leader()}
		default:
			panic("experiment: adaptiveStars supports BitConv, AsyncBitConv, BlindGossip")
		}
	}
}

func (a *adaptiveStars) GraphAt(r int) *graph.Graph {
	if r < 1 {
		panic("experiment: round must be >= 1")
	}
	e := (r - 1) / a.tau
	if e != a.cachedEpoch {
		a.cached = a.rebuild()
		a.cachedEpoch = e
	}
	return a.cached
}

// rebuild sorts nodes by current pair (ascending, ties by node id) and lays
// them into a line of stars: star i gets the next 1+points nodes (first the
// center, then its leaves).
func (a *adaptiveStars) rebuild() *graph.Graph {
	order := make([]int, a.n)
	for i := range order {
		order[i] = i
	}
	if a.pairs == nil {
		panic("experiment: adaptiveStars used before SetSource")
	}
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := a.pairs(order[i]), a.pairs(order[j])
		if pi != pj {
			return pi.Less(pj)
		}
		return order[i] < order[j]
	})

	stars := a.n / (a.points + 1)
	b := graph.NewBuilder(a.n)
	centers := make([]int, stars)
	for s := 0; s < stars; s++ {
		block := order[s*(a.points+1) : (s+1)*(a.points+1)]
		centers[s] = block[0]
		for _, leaf := range block[1:] {
			b.AddEdge(block[0], leaf)
		}
	}
	for s := 0; s+1 < stars; s++ {
		b.AddEdge(centers[s], centers[s+1])
	}
	return b.MustBuild()
}

func (a *adaptiveStars) Tau() int       { return a.tau }
func (a *adaptiveStars) N() int         { return a.n }
func (a *adaptiveStars) MaxDegree() int { return a.points + 2 }
func (a *adaptiveStars) Alpha() float64 {
	return 1 / math.Floor(float64(a.n)/2)
}
func (a *adaptiveStars) Name() string { return "adaptive-stars" }
