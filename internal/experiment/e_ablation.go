package experiment

import (
	"fmt"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
	"mobiletel/internal/stats"
	"mobiletel/internal/trace"
)

func init() {
	register(Experiment{
		ID: "A1-ablation-grouplen",
		Claim: "Design choice (Lemma VII.5): groups of 2·logΔ rounds guarantee " +
			"a τ̂-stable stretch inside every group. Shorter groups shrink phases " +
			"but lose stable stretches under churn; longer groups waste rounds.",
		Run: runA1,
	})
	register(Experiment{
		ID: "A2-ablation-tagbits",
		Claim: "Design choice (Section VII): ID tags of k = β·log n bits are " +
			"unique w.h.p. for β ≥ 2 — and uniqueness is load-bearing: if two " +
			"nodes draw the same *minimum* tag, the UID tie-break cannot " +
			"propagate (advertisements carry only tag bits) and the network " +
			"never stabilizes. Small β must show convergence failures.",
		Run: runA2,
	})
	register(Experiment{
		ID: "A3-ablation-accept",
		Claim: "Model choice (Section III): uniform-random acceptance is what " +
			"the analysis assumes. Deterministic lowest-id acceptance biases " +
			"contention but leader election remains correct; round counts shift.",
		Run: runA3,
	})
}

func runA1(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	n := pick(cfg.Quick, 48, 96)
	d := 16
	logDelta := core.Log2Ceil(d + 1)
	base := gen.RandomRegular(n, d, cfg.Seed+7000)
	tau := logDelta // churn at the knee

	table := trace.NewTable(
		fmt.Sprintf("A1 group length ablation (bit convergence), n=%d d=%d τ=%d", n, d, tau),
		"group length", "phase length", "median rounds", "p90")

	k := core.DefaultBitConvParams(n, d).K
	mults := []int{1, 2, 4}
	paramsFor := make([]core.BitConvParams, len(mults))
	specs := make([]pointSpec, len(mults))
	for mi, mult := range mults {
		mult := mult
		params := core.BitConvParams{K: k, GroupLen: mult * logDelta}
		paramsFor[mi] = params
		specs[mi] = pointSpec{Trials: trials, Spec: trialSpec{
			Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
				seed := trialSeed(cfg.Seed, 1100+mult, trial)
				uids := core.UniqueUIDs(n, seed)
				protocols, _ := core.NewBitConvNetwork(uids, params, seed+1)
				return dyngraph.NewPermuted(base, tau, seed+2), protocols,
					sim.Config{Seed: seed + 3, TagBits: 1, MaxRounds: 50_000_000}
			},
		}}
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}
	for mi, mult := range mults {
		s := stats.IntSummary(allRounds[mi])
		table.AddRow(fmt.Sprintf("%d·logΔ = %d", mult, paramsFor[mi].GroupLen), paramsFor[mi].PhaseLen(), s.Median, s.P90)
	}
	return table, nil
}

func runA2(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	n := pick(cfg.Quick, 48, 96)
	d := 8
	base := gen.RandomRegular(n, d, cfg.Seed+8000)
	logN := core.Log2Ceil(n + 1)

	table := trace.NewTable(
		fmt.Sprintf("A2 ID tag length ablation (bit convergence), n=%d", n),
		"β", "k bits", "collision rate", "min-tag collided", "stabilized", "median rounds (ok trials)")

	// A trial whose *minimum* tag is shared by two nodes cannot stabilize
	// (the UID tie-break never propagates through 1-bit advertisements), so
	// cap those trials instead of running forever.
	cap := pick(cfg.Quick, 100_000, 400_000)

	for _, beta := range []float64{0.5, 1, 2, 3} {
		k := int(beta * float64(logN))
		if k < 1 {
			k = 1
		}
		params := core.BitConvParams{K: k, GroupLen: 2 * core.Log2Ceil(d+1)}

		collisions, minTagCollided, stabilized := 0, 0, 0
		var okRounds []int
		for trial := 0; trial < trials; trial++ {
			seed := trialSeed(cfg.Seed, 1200+int(beta*10), trial)
			uids := core.UniqueUIDs(n, seed)
			protocols, tags := core.NewBitConvNetwork(uids, params, seed+1)

			seen := map[uint64]bool{}
			minTag := tags[0]
			minCount := 0
			for _, tag := range tags {
				if seen[tag] {
					collisions++
				}
				seen[tag] = true
				if tag < minTag {
					minTag = tag
				}
			}
			for _, tag := range tags {
				if tag == minTag {
					minCount++
				}
			}
			if minCount > 1 {
				minTagCollided++
			}

			eng, err := sim.New(dyngraph.NewStatic(base), protocols,
				sim.Config{Seed: seed + 2, TagBits: 1, MaxRounds: cap, Workers: 1})
			if err != nil {
				return nil, err
			}
			res, err := eng.Run(sim.AllLeadersEqual)
			if err == nil {
				stabilized++
				okRounds = append(okRounds, res.StabilizedRound)
				if err := checkMinPair(uids, tags, protocols); err != nil {
					return nil, fmt.Errorf("beta=%v trial %d: %w", beta, trial, err)
				}
			} else if minCount == 1 {
				// Unique minimum but no convergence within the cap: a real
				// failure, not the expected collision deadlock.
				return nil, fmt.Errorf("beta=%v trial %d: unique min tag yet no stabilization: %w", beta, trial, err)
			}
		}
		med := "—"
		if len(okRounds) > 0 {
			med = fmt.Sprintf("%.0f", stats.IntSummary(okRounds).Median)
		}
		table.AddRow(beta, k, float64(collisions)/float64(n*trials),
			fmt.Sprintf("%d/%d", minTagCollided, trials),
			fmt.Sprintf("%d/%d", stabilized, trials), med)
	}
	return table, nil
}

func runA3(cfg Config) (*trace.Table, error) {
	trials := pickTrials(cfg, 5, 15)
	side := pick(cfg.Quick, 6, 9)
	f := gen.SqrtLineOfStars(side) // acceptance contention is the bottleneck here

	table := trace.NewTable(
		fmt.Sprintf("A3 acceptance policy ablation (blind gossip on %s, n=%d)", f.Name, f.N()),
		"policy", "median rounds", "p90", "all correct")

	policies := []struct {
		name   string
		policy sim.AcceptPolicy
	}{
		{"uniform (model)", sim.AcceptUniform},
		{"lowest-id", sim.AcceptLowestID},
		{"highest-id", sim.AcceptHighestID},
	}
	specs := make([]pointSpec, len(policies))
	for pi, pol := range policies {
		pi, pol := pi, pol
		specs[pi] = pointSpec{Trials: trials, Spec: trialSpec{
			Build: func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config) {
				seed := trialSeed(cfg.Seed, 1300+pi, trial)
				uids := core.UniqueUIDs(f.N(), seed)
				return dyngraph.NewStatic(f), core.NewBlindGossipNetwork(uids),
					sim.Config{Seed: seed + 1, TagBits: 0, MaxRounds: 100_000_000, Accept: pol.policy}
			},
			Check: func(trial int, protocols []sim.Protocol) error {
				seed := trialSeed(cfg.Seed, 1300+pi, trial)
				if protocols[0].Leader() != core.MinUID(core.UniqueUIDs(f.N(), seed)) {
					return fmt.Errorf("wrong leader under %s", pol.name)
				}
				return nil
			},
		}}
	}
	allRounds, err := runPointTrials(cfg, specs)
	if err != nil {
		return nil, err
	}
	for pi, pol := range policies {
		s := stats.IntSummary(allRounds[pi])
		table.AddRow(pol.name, s.Median, s.P90, "yes")
	}
	return table, nil
}
