package experiment

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/sim"
)

func TestAdaptiveStarsStructure(t *testing.T) {
	n, points, tau := 32, 7, 3
	adv := newAdaptiveStars(n, points, tau)
	uids := core.UniqueUIDs(n, 1)
	params := core.DefaultBitConvParams(n, points+2)
	protocols, _ := core.NewBitConvNetwork(uids, params, 2)
	adv.SetSource(protocols)

	g := adv.GraphAt(1)
	if g.N() != n {
		t.Fatalf("n=%d", g.N())
	}
	if !g.Connected() {
		t.Fatal("adversary graph disconnected")
	}
	if g.MaxDegree() > points+2 {
		t.Fatalf("Δ=%d exceeds declared %d", g.MaxDegree(), points+2)
	}
	// Stars: exactly n/(points+1) centers with degree >= points.
	centers := 0
	for u := 0; u < n; u++ {
		if g.Degree(u) >= points {
			centers++
		}
	}
	if centers != n/(points+1) {
		t.Fatalf("found %d hub-degree nodes, want %d", centers, n/(points+1))
	}
}

func TestAdaptiveStarsRespectsTau(t *testing.T) {
	n, points, tau := 32, 7, 4
	adv := newAdaptiveStars(n, points, tau)
	uids := core.UniqueUIDs(n, 3)
	params := core.DefaultBitConvParams(n, points+2)
	protocols, _ := core.NewBitConvNetwork(uids, params, 4)
	adv.SetSource(protocols)
	if err := dyngraph.Validate(adv, 3*tau); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveStarsSortsFrontier(t *testing.T) {
	// The node with the globally smallest pair must be placed as the first
	// star's center (position 0 in the sorted layout) — i.e. its degree is
	// hub-sized and its line neighbor holds the next-smallest block.
	n, points := 24, 7
	adv := newAdaptiveStars(n, points, 1)
	uids := core.UniqueUIDs(n, 5)
	params := core.DefaultBitConvParams(n, points+2)
	protocols, tags := core.NewBitConvNetwork(uids, params, 6)
	adv.SetSource(protocols)
	g := adv.GraphAt(1)

	pairs := make([]core.IDPair, n)
	for i := range pairs {
		pairs[i] = core.IDPair{UID: uids[i], Tag: tags[i]}
	}
	minIdx := 0
	for i, p := range pairs {
		if p.Less(pairs[minIdx]) {
			minIdx = i
		}
	}
	if g.Degree(minIdx) < points {
		t.Fatalf("min-pair node %d has degree %d; expected to be a star center", minIdx, g.Degree(minIdx))
	}
}

func TestAdaptiveStarsRejectsBadParams(t *testing.T) {
	cases := []func(){
		func() { newAdaptiveStars(30, 7, 1) }, // 30 % 8 != 0
		func() { newAdaptiveStars(8, 7, 1) },  // single star
		func() { newAdaptiveStars(16, 7, 0) }, // tau < 1
		func() { newAdaptiveStars(16, 0, 1) }, // no leaves
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAdaptiveStarsNeedsSource(t *testing.T) {
	adv := newAdaptiveStars(16, 7, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("GraphAt before SetSource did not panic")
		}
	}()
	adv.GraphAt(1)
}

func TestAdaptiveStarsBlindGossipSource(t *testing.T) {
	n, points := 16, 7
	adv := newAdaptiveStars(n, points, 2)
	uids := core.UniqueUIDs(n, 9)
	protocols := core.NewBlindGossipNetwork(uids)
	adv.SetSource(protocols)
	if !adv.GraphAt(1).Connected() {
		t.Fatal("disconnected")
	}
	// End-to-end election against the adversary still elects the minimum.
	eng, err := sim.New(adv, protocols, sim.Config{Seed: 4, MaxRounds: 5_000_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err != nil {
		t.Fatal(err)
	}
	if protocols[0].Leader() != core.MinUID(uids) {
		t.Fatal("wrong leader under adaptive adversary")
	}
}
