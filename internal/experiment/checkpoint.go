package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"mobiletel/internal/atomicwrite"
)

// ErrInterrupted is returned by experiment runs aborted via Config.Interrupt
// (e.g. the harness caught SIGINT). Trials already recorded in a checkpoint
// survive; re-running with the same checkpoint resumes after them.
var ErrInterrupted = errors.New("experiment: interrupted")

// checkpointSchema identifies the checkpoint JSONL layout.
const checkpointSchema = "mtmexp-ckpt/v1"

// CheckpointKey pins the parameters a checkpoint file is valid for. Resuming
// with any different value would silently mix results from two different
// sweeps, so Open refuses a key mismatch instead.
type CheckpointKey struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	Seed   uint64 `json:"seed"`
	Trials int    `json:"trials"`
	Quick  bool   `json:"quick"`
}

// checkpointCell is one completed trial: batch is the ordinal of the
// runPointTrials call within the experiment (experiments run their batches
// in a deterministic order, so the counter realigns on resume).
type checkpointCell struct {
	Batch  int `json:"batch"`
	Point  int `json:"point"`
	Trial  int `json:"trial"`
	Rounds int `json:"rounds"`
}

// cellKey indexes completed cells.
type cellKey struct{ batch, point, trial int }

// Checkpoint makes a trial sweep crash-safe: every completed (batch, point,
// trial) cell is appended to a JSONL file as it finishes, and a later run
// with the same key replays recorded cells instead of re-simulating them.
// Because each cell's seed is a pure function of (seed, point, trial) and
// its result is the recorded rounds value, a resumed sweep produces a table
// bit-identical to an uninterrupted one.
//
// The file is append-only while running; a process killed mid-append leaves
// at worst one torn trailing line, which Open drops (and heals by atomically
// rewriting the valid prefix). Methods are safe for concurrent use by the
// trial worker pool.
type Checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	cells    map[cellKey]int
	batches  int // batches handed out this process
	recorded int // cells newly recorded this process
	replayed int // cells served from the file this process

	// dieAfter, when > 0, calls die after that many newly recorded cells —
	// the crash-injection hook behind mtmexp -die-after and the fault-smoke
	// CI job. die defaults to os.Exit(3); tests may substitute.
	dieAfter int
	die      func()
}

// OpenCheckpoint opens (or creates) the checkpoint file at path for the
// given key. An existing file must carry the same key; its valid cells are
// loaded and a torn or corrupt tail is dropped and healed in place.
func OpenCheckpoint(path string, key CheckpointKey) (*Checkpoint, error) {
	key.Schema = checkpointSchema
	cells, order, healed, err := readCheckpoint(path, key)
	if err != nil {
		return nil, err
	}
	if healed {
		// Rewrite the valid prefix atomically so the torn tail cannot be
		// misparsed by a later reader (or grow mid-file once we append).
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(key); err != nil {
			return nil, err
		}
		for _, c := range order {
			if err := enc.Encode(c); err != nil {
				return nil, err
			}
		}
		if err := atomicwrite.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{f: f, path: path, cells: cells, die: func() { os.Exit(3) }}, nil
}

// readCheckpoint loads path, returning the recorded cells (map and original
// order), whether the file needs healing (torn tail, or it did not exist and
// must be created with a header), and whether the key matches.
func readCheckpoint(path string, key CheckpointKey) (map[cellKey]int, []checkpointCell, bool, error) {
	cells := make(map[cellKey]int)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cells, nil, true, nil
	}
	if err != nil {
		return nil, nil, false, err
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() || len(bytes.TrimSpace(sc.Bytes())) == 0 {
		// Created but killed before the header landed: treat as fresh.
		return cells, nil, true, nil
	}
	var got CheckpointKey
	if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
		return nil, nil, false, fmt.Errorf("checkpoint %s: corrupt header: %w", path, err)
	}
	if got != key {
		return nil, nil, false, fmt.Errorf(
			"checkpoint %s was recorded for %+v; this run is %+v (use a fresh checkpoint or matching flags)",
			path, got, key)
	}
	var order []checkpointCell
	healed := false
	line := 1
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var c checkpointCell
		if err := json.Unmarshal(raw, &c); err != nil {
			// Torn tail from a mid-append kill: drop this line and anything
			// after it. Anything beyond one torn line means the file was
			// edited, but replaying the valid prefix is still safe — dropped
			// cells are simply re-run.
			healed = true
			break
		}
		k := cellKey{c.Batch, c.Point, c.Trial}
		if _, dup := cells[k]; !dup {
			order = append(order, c)
		}
		cells[k] = c.Rounds
	}
	if err := sc.Err(); err != nil {
		return nil, nil, false, fmt.Errorf("checkpoint %s: line %d: %w", path, line, err)
	}
	return cells, order, healed, nil
}

// NextBatch hands out the next batch ordinal. runPointTrials calls it once
// per batch, so within one experiment run the Nth batch always gets ordinal
// N — the property that lets cells recorded by a killed process line up with
// the re-run that resumes them.
func (c *Checkpoint) NextBatch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.batches
	c.batches++
	return b
}

// Lookup returns the recorded rounds for a cell, if present.
func (c *Checkpoint) Lookup(batch, point, trial int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.cells[cellKey{batch, point, trial}]
	if ok {
		c.replayed++
	}
	return r, ok
}

// Record appends a completed cell. The line is written (not fsynced) before
// Record returns; a crash immediately after loses at most the cells still in
// the kernel page cache, and a crash mid-write leaves a torn tail that the
// next Open drops.
func (c *Checkpoint) Record(batch, point, trial, rounds int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cell := checkpointCell{Batch: batch, Point: point, Trial: trial, Rounds: rounds}
	data, err := json.Marshal(cell)
	if err != nil {
		return err
	}
	if _, err := c.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	c.cells[cellKey{batch, point, trial}] = rounds
	c.recorded++
	if c.dieAfter > 0 && c.recorded >= c.dieAfter {
		// Crash injection: flush what the OS has and die without cleanup,
		// exactly like a kill mid-sweep.
		_ = c.f.Sync()
		c.die()
	}
	return nil
}

// Recorded returns how many cells this process newly recorded (excludes
// replays).
func (c *Checkpoint) Recorded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recorded
}

// Replayed returns how many cells were served from the file this process.
func (c *Checkpoint) Replayed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replayed
}

// SetDieAfter arms the crash-injection hook: the process exits (status 3)
// immediately after the n-th newly recorded cell. n <= 0 disarms it.
func (c *Checkpoint) SetDieAfter(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dieAfter = n
}

// Close closes the underlying file. Recorded cells are already on disk (or
// in the page cache); Close syncs them.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Sync()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	return err
}
