// Package experiment is the reproduction harness: every theorem and
// construction in the paper is turned into a registered, regenerable
// experiment that prints a table (the paper has no empirical tables or
// figures of its own — it is a theory paper — so the experiment IDs index
// its theorems; see DESIGN.md §4 and EXPERIMENTS.md).
//
// Run experiments via `go run ./cmd/mtmexp -run <ID>` or the corresponding
// benchmarks in bench_test.go. Each experiment supports a Quick mode with
// reduced scales for CI.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mobiletel/internal/dyngraph"
	"mobiletel/internal/sim"
	"mobiletel/internal/trace"
	"mobiletel/internal/xrand"
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed drives all randomness; every experiment is deterministic in it.
	Seed uint64
	// Trials is the number of independent repetitions per data point.
	// Zero selects each experiment's default.
	Trials int
	// Quick reduces problem sizes for fast CI runs.
	Quick bool
}

// Experiment is one registered reproduction target.
type Experiment struct {
	// ID is the stable identifier used by the CLI and benchmarks (e.g.
	// "E1-blindgossip-scaling").
	ID string
	// Claim cites what in the paper this experiment validates.
	Claim string
	// Run executes the experiment and returns its result table.
	Run func(cfg Config) (*trace.Table, error)
}

var (
	registryMu sync.Mutex
	registry   []Experiment
)

// register adds an experiment at package init time.
func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, old := range registry {
		if old.ID == e.ID {
			panic("experiment: duplicate ID " + e.ID)
		}
	}
	registry = append(registry, e)
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// trialSpec describes one simulation trial for the parallel runner.
type trialSpec struct {
	// Build creates the schedule, protocols, and engine config for the
	// trial. Called once, in the trial's own goroutine.
	Build func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config)
	// Stop is the stop condition (defaults to sim.AllLeadersEqual).
	Stop sim.StopCondition
	// Check, if non-nil, validates the converged state (e.g. elected leader
	// equals the true minimum); failures become errors.
	Check func(trial int, protocols []sim.Protocol) error
}

// pointSpec bundles one data point's batch of trials for runPointTrials.
type pointSpec struct {
	Trials int
	Spec   trialSpec
}

// runPointTrials executes every (point, trial) task through one shared
// worker pool and returns the stabilization rounds indexed [point][trial].
//
// Feeding all points into a single pipelined pool — instead of running a
// per-point pool with a barrier between points — means a slow straggler
// trial of point p no longer idles the other workers: they immediately pick
// up trials of point p+1. Results are written to distinct (point, trial)
// cells and rows are emitted by the caller after the pool drains, so table
// output is bit-identical to the per-point version; seeds are derived per
// (point, trial) and never depend on execution order.
//
// The first error in (point, trial) order aborts the batch.
func runPointTrials(points []pointSpec) ([][]int, error) {
	total := 0
	rounds := make([][]int, len(points))
	errs := make([][]error, len(points))
	for p := range points {
		if points[p].Spec.Stop == nil {
			points[p].Spec.Stop = sim.AllLeadersEqual
		}
		rounds[p] = make([]int, points[p].Trials)
		errs[p] = make([]error, points[p].Trials)
		total += points[p].Trials
	}
	if total == 0 {
		return rounds, nil
	}

	type task struct{ point, trial int }
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	var wg sync.WaitGroup
	next := make(chan task)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				spec := &points[t.point].Spec
				sched, protocols, cfg := spec.Build(t.trial)
				// Inner engine steps stay sequential: parallelism lives at
				// the (point, trial) level here.
				cfg.Workers = 1
				eng, err := sim.New(sched, protocols, cfg)
				if err != nil {
					errs[t.point][t.trial] = err
					continue
				}
				res, err := eng.Run(spec.Stop)
				if err != nil {
					errs[t.point][t.trial] = err
					continue
				}
				rounds[t.point][t.trial] = res.StabilizedRound
				if spec.Check != nil {
					errs[t.point][t.trial] = spec.Check(t.trial, protocols)
				}
			}
		}()
	}
	for p := range points {
		for trial := 0; trial < points[p].Trials; trial++ {
			next <- task{p, trial}
		}
	}
	close(next)
	wg.Wait()

	for p := range errs {
		for trial, err := range errs[p] {
			if err != nil {
				return nil, fmt.Errorf("trial %d: %w", trial, err)
			}
		}
	}
	return rounds, nil
}

// runTrials executes `trials` independent simulations of a single point and
// returns the stabilization round of each. Any engine error or failed Check
// aborts with that error.
func runTrials(trials int, spec trialSpec) ([]int, error) {
	rounds, err := runPointTrials([]pointSpec{{Trials: trials, Spec: spec}})
	if err != nil {
		return nil, err
	}
	return rounds[0], nil
}

// trialSeed derives a per-(experiment, point, trial) seed.
func trialSeed(base uint64, point, trial int) uint64 {
	return xrand.Mix3(base, uint64(point), uint64(trial))
}

// log2 returns ⌈log₂ x⌉ as float64 for bound formulas (x >= 2).
func log2f(x int) float64 {
	l := 0
	for v := x - 1; v > 0; v >>= 1 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return float64(l)
}

// pick returns a if quick, else b.
func pick(quick bool, a, b int) int {
	if quick {
		return a
	}
	return b
}

// pickTrials resolves the trial count: explicit config wins, else quick/full
// defaults.
func pickTrials(cfg Config, quickDefault, fullDefault int) int {
	if cfg.Trials > 0 {
		return cfg.Trials
	}
	return pick(cfg.Quick, quickDefault, fullDefault)
}
