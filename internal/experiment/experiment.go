// Package experiment is the reproduction harness: every theorem and
// construction in the paper is turned into a registered, regenerable
// experiment that prints a table (the paper has no empirical tables or
// figures of its own — it is a theory paper — so the experiment IDs index
// its theorems; see DESIGN.md §4 and EXPERIMENTS.md).
//
// Run experiments via `go run ./cmd/mtmexp -run <ID>` or the corresponding
// benchmarks in bench_test.go. Each experiment supports a Quick mode with
// reduced scales for CI.
package experiment

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mobiletel/internal/dyngraph"
	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
	"mobiletel/internal/trace"
	"mobiletel/internal/xrand"
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed drives all randomness; every experiment is deterministic in it.
	Seed uint64
	// Trials is the number of independent repetitions per data point.
	// Zero selects each experiment's default.
	Trials int
	// Quick reduces problem sizes for fast CI runs.
	Quick bool
	// Progress, when non-nil, receives throttled live progress lines while
	// a trial batch runs: trials and points completed, elapsed wall time,
	// and an ETA. It is written from worker goroutines under a mutex, so
	// any io.Writer is safe. Results are unaffected.
	Progress io.Writer
	// Now supplies the wall clock for Progress elapsed/ETA figures. This
	// package never reads the clock itself (results must be reproducible),
	// so callers wanting timed progress pass time.Now; when nil, progress
	// lines carry counts only.
	Now func() time.Time
	// Sink, when non-nil, receives the structured event trace of the
	// batch's first trial (point 0, trial 0); all other trials run
	// untraced so the batch keeps its parallel throughput. Experiments
	// that bypass runPointTrials ignore it.
	Sink obs.Sink
	// Profiler, when non-nil, attaches the phase-timing profiler to the same
	// first trial Sink observes (point 0, trial 0); the caller renders its
	// mtmprof/v1 report after the run. Progress lines additionally carry the
	// hottest phases once the profiled trial has finished. Like Now, the
	// profiler's clock is injected by the caller — this package still never
	// reads wall time itself. Experiments that bypass runPointTrials ignore
	// it.
	Profiler *obs.Profiler
	// Checkpoint, when non-nil, makes the sweep crash-safe: every completed
	// trial is recorded as it finishes and already-recorded trials are
	// replayed instead of re-simulated, so a killed run resumed with the
	// same checkpoint produces a bit-identical table. Experiments that
	// bypass runPointTrials ignore it (they re-run from scratch).
	Checkpoint *Checkpoint
	// Interrupt, when non-nil, requests a graceful abort when closed:
	// the feeder stops handing out new trials, in-flight trials drain (and
	// are still checkpointed), and the run returns ErrInterrupted.
	Interrupt <-chan struct{}
}

// Experiment is one registered reproduction target.
type Experiment struct {
	// ID is the stable identifier used by the CLI and benchmarks (e.g.
	// "E1-blindgossip-scaling").
	ID string
	// Claim cites what in the paper this experiment validates.
	Claim string
	// Run executes the experiment and returns its result table.
	Run func(cfg Config) (*trace.Table, error)
}

var (
	registryMu sync.Mutex
	registry   []Experiment
)

// register adds an experiment at package init time.
func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, old := range registry {
		if old.ID == e.ID {
			panic("experiment: duplicate ID " + e.ID)
		}
	}
	registry = append(registry, e)
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// trialSpec describes one simulation trial for the parallel runner.
type trialSpec struct {
	// Build creates the schedule, protocols, and engine config for the
	// trial. Called once, in the trial's own goroutine.
	Build func(trial int) (dyngraph.Schedule, []sim.Protocol, sim.Config)
	// Stop is the stop condition (defaults to sim.AllLeadersEqual).
	Stop sim.StopCondition
	// MakeStop, if non-nil, builds a per-trial stop condition and overrides
	// Stop. It is called after Build, in the trial's goroutine, with the
	// trial's engine config — so fault experiments can close over the
	// trial's injector (e.g. "all *up* nodes agree").
	MakeStop func(trial int, simCfg sim.Config) sim.StopCondition
	// Check, if non-nil, validates the converged state (e.g. elected leader
	// equals the true minimum); failures become errors.
	Check func(trial int, protocols []sim.Protocol) error
}

// pointSpec bundles one data point's batch of trials for runPointTrials.
type pointSpec struct {
	Trials int
	Spec   trialSpec
}

// runPointTrials executes every (point, trial) task through one shared
// worker pool and returns the stabilization rounds indexed [point][trial].
//
// Feeding all points into a single pipelined pool — instead of running a
// per-point pool with a barrier between points — means a slow straggler
// trial of point p no longer idles the other workers: they immediately pick
// up trials of point p+1. Results are written to distinct (point, trial)
// cells and rows are emitted by the caller after the pool drains, so table
// output is bit-identical to the per-point version; seeds are derived per
// (point, trial) and never depend on execution order.
//
// The first error in (point, trial) order aborts the batch.
//
// When cfg.Sink is non-nil, the batch's first trial (point 0, trial 0)
// runs with the sink attached; when cfg.Progress is non-nil, throttled
// progress lines are written as trials complete. Neither affects results.
func runPointTrials(cfg Config, points []pointSpec) ([][]int, error) {
	total := 0
	rounds := make([][]int, len(points))
	errs := make([][]error, len(points))
	for p := range points {
		if points[p].Spec.Stop == nil {
			points[p].Spec.Stop = sim.AllLeadersEqual
		}
		rounds[p] = make([]int, points[p].Trials)
		errs[p] = make([]error, points[p].Trials)
		total += points[p].Trials
	}
	// The batch ordinal must advance even for empty batches so a resumed
	// process hands out the same ordinals to the same runPointTrials calls.
	batch := -1
	if cfg.Checkpoint != nil {
		batch = cfg.Checkpoint.NextBatch()
	}
	if total == 0 {
		return rounds, nil
	}

	progress := newProgress(cfg.Progress, cfg.Now, cfg.Profiler, total, points)

	type task struct{ point, trial int }
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	var wg sync.WaitGroup
	next := make(chan task)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				spec := &points[t.point].Spec
				if cfg.Checkpoint != nil {
					// Replay a recorded cell instead of re-simulating. The
					// result is identical because the trial's seed depends
					// only on (cfg.Seed, point, trial); Check already passed
					// before the cell was recorded. A replayed (0,0) trial
					// does not re-emit its trace, so a resumed -trace sink
					// stays empty.
					if r, ok := cfg.Checkpoint.Lookup(batch, t.point, t.trial); ok {
						rounds[t.point][t.trial] = r
						progress.done(t.point)
						continue
					}
				}
				sched, protocols, simCfg := spec.Build(t.trial)
				// Inner engine steps stay sequential: parallelism lives at
				// the (point, trial) level here.
				simCfg.Workers = 1
				if t.point == 0 && t.trial == 0 {
					if cfg.Sink != nil {
						simCfg.Sink = cfg.Sink
					}
					if cfg.Profiler != nil {
						simCfg.Profiler = cfg.Profiler
					}
				}
				stop := spec.Stop
				if spec.MakeStop != nil {
					stop = spec.MakeStop(t.trial, simCfg)
				}
				eng, err := sim.New(sched, protocols, simCfg)
				if err != nil {
					errs[t.point][t.trial] = err
					progress.done(t.point)
					continue
				}
				res, err := eng.Run(stop)
				if err != nil {
					errs[t.point][t.trial] = err
					progress.done(t.point)
					continue
				}
				rounds[t.point][t.trial] = res.StabilizedRound
				if spec.Check != nil {
					errs[t.point][t.trial] = spec.Check(t.trial, protocols)
				}
				if errs[t.point][t.trial] == nil && cfg.Checkpoint != nil {
					errs[t.point][t.trial] = cfg.Checkpoint.Record(batch, t.point, t.trial, res.StabilizedRound)
				}
				progress.done(t.point)
			}
		}()
	}
	interrupted := false
feed:
	for p := range points {
		for trial := 0; trial < points[p].Trials; trial++ {
			// The pre-check makes an already-signalled interrupt win even
			// when a worker is simultaneously ready to receive (a two-way
			// select would pick between the ready cases at random).
			select {
			case <-cfg.Interrupt:
				interrupted = true
				break feed
			default:
			}
			select {
			case next <- task{p, trial}:
			case <-cfg.Interrupt:
				// Graceful abort: stop feeding, let in-flight trials drain
				// (they still checkpoint), then report the interruption.
				interrupted = true
				break feed
			}
		}
	}
	close(next)
	wg.Wait()

	for p := range errs {
		for trial, err := range errs[p] {
			if err != nil {
				return nil, fmt.Errorf("point %d trial %d: %w", p, trial, err)
			}
		}
	}
	if interrupted {
		return nil, ErrInterrupted
	}
	return rounds, nil
}

// runTrials executes `trials` independent simulations of a single point and
// returns the stabilization round of each. Any engine error or failed Check
// aborts with that error.
func runTrials(cfg Config, trials int, spec trialSpec) ([]int, error) {
	rounds, err := runPointTrials(cfg, []pointSpec{{Trials: trials, Spec: spec}})
	if err != nil {
		return nil, err
	}
	return rounds[0], nil
}

// progressReporter emits throttled live progress lines for a trial batch.
// The zero-value-like nil-writer form is a no-op, so call sites need no
// branching.
type progressReporter struct {
	w     io.Writer
	now   func() time.Time // injected clock; nil = counts-only lines
	prof  *obs.Profiler    // optional; adds hottest-phase timing to lines
	total int

	mu         sync.Mutex
	start      time.Time
	lastReport time.Time
	completed  int
	perPoint   []int // trials finished per point
	trialsPer  []int // trials expected per point
	pointsDone int
}

// progressInterval is the minimum spacing between progress lines; the final
// line (batch complete) is always written.
const progressInterval = 500 * time.Millisecond

// newProgress builds a reporter for the batch; w == nil disables it.
func newProgress(w io.Writer, now func() time.Time, prof *obs.Profiler, total int, points []pointSpec) *progressReporter {
	p := &progressReporter{w: w, now: now, prof: prof, total: total}
	if w != nil {
		if now != nil {
			p.start = now()
		}
		p.perPoint = make([]int, len(points))
		p.trialsPer = make([]int, len(points))
		for i := range points {
			p.trialsPer[i] = points[i].Trials
		}
	}
	return p
}

// done records one finished trial of the given point and reports progress if
// the throttle interval elapsed (or the batch just completed).
func (p *progressReporter) done(point int) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.completed++
	p.perPoint[point]++
	if p.perPoint[point] == p.trialsPer[point] {
		p.pointsDone++
	}
	if p.now == nil {
		// No clock injected: report every trial, counts only. Progress is
		// best-effort diagnostics, so write errors are discarded.
		_, _ = fmt.Fprintf(p.w, "progress: %d/%d trials, %d/%d points%s\n",
			p.completed, p.total, p.pointsDone, len(p.perPoint), p.phaseSuffix())
		return
	}
	now := p.now()
	if p.completed < p.total && now.Sub(p.lastReport) < progressInterval {
		return
	}
	p.lastReport = now
	elapsed := now.Sub(p.start)
	eta := time.Duration(float64(elapsed) / float64(p.completed) * float64(p.total-p.completed))
	_, _ = fmt.Fprintf(p.w, "progress: %d/%d trials, %d/%d points, %s elapsed, ~%s left%s\n",
		p.completed, p.total, p.pointsDone, len(p.perPoint),
		elapsed.Round(100*time.Millisecond), eta.Round(100*time.Millisecond), p.phaseSuffix())
}

// phaseSuffix renders the profiler's hottest phases for a progress line, or
// "" when no profiler is attached or the profiled trial hasn't produced any
// timing yet. The profiler's counters are atomic, so reading them while the
// profiled trial is still running is safe — the line just shows the split so
// far.
func (p *progressReporter) phaseSuffix() string {
	if p.prof == nil {
		return ""
	}
	top := p.prof.TopPhases(3)
	if len(top) == 0 {
		return ""
	}
	return ", phases: " + strings.Join(top, ", ")
}

// trialSeed derives a per-(experiment, point, trial) seed.
func trialSeed(base uint64, point, trial int) uint64 {
	return xrand.Mix3(base, uint64(point), uint64(trial))
}

// log2 returns ⌈log₂ x⌉ as float64 for bound formulas (x >= 2).
func log2f(x int) float64 {
	l := 0
	for v := x - 1; v > 0; v >>= 1 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return float64(l)
}

// pick returns a if quick, else b.
func pick(quick bool, a, b int) int {
	if quick {
		return a
	}
	return b
}

// pickTrials resolves the trial count: explicit config wins, else quick/full
// defaults.
func pickTrials(cfg Config, quickDefault, fullDefault int) int {
	if cfg.Trials > 0 {
		return cfg.Trials
	}
	return pick(cfg.Quick, quickDefault, fullDefault)
}
