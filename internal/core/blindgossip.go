package core

import (
	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
	"mobiletel/internal/xrand"
)

// BlindGossip is the Section VI algorithm for b = 0: each round, flip a fair
// coin to send or receive; senders propose to a uniformly random neighbor;
// a connected pair trades the smallest UIDs each has seen, and both adopt
// the minimum as their leader.
//
// Theorem VI.1: stabilizes in O((1/α)Δ²log²n) rounds for any τ >= 1. The
// same protocol run on a rumor (Corollary VI.6) is classical PUSH-PULL.
type BlindGossip struct {
	uid  uint64
	best uint64
	// buf backs the UID slice of outgoing messages so the steady-state round
	// loop allocates nothing. Safe to reuse: a node has at most one MTM
	// connection per round, and in classical mode the engine delivers each
	// message before asking the same protocol for the next one; receivers
	// (Deliver) only read values out of the slice.
	buf [1]uint64
}

var (
	_ sim.Protocol    = (*BlindGossip)(nil)
	_ sim.Corruptible = (*BlindGossip)(nil)
)

// NewBlindGossip returns the protocol instance for one node with the given
// UID. Leader is initialized to the node's own UID per Section IV.
func NewBlindGossip(uid uint64) *BlindGossip {
	return &BlindGossip{uid: uid, best: uid}
}

// Advertise returns 0: blind gossip uses no advertisement bits (b = 0).
func (p *BlindGossip) Advertise(*sim.Context) uint64 { return 0 }

// Decide flips a fair coin; senders target a uniformly random neighbor.
func (p *BlindGossip) Decide(ctx *sim.Context) (int32, bool) {
	if ctx.RNG.Bool() {
		return 0, false // receive
	}
	target, ok := ctx.RandomNeighbor()
	if !ok {
		return 0, false // isolated this round; nothing to send to
	}
	return target, true
}

// Outgoing sends the smallest UID seen so far.
func (p *BlindGossip) Outgoing(*sim.Context, int32) sim.Message {
	p.buf[0] = p.best
	return sim.Message{UIDs: p.buf[:1]}
}

// Deliver adopts the peer's UID if smaller.
func (p *BlindGossip) Deliver(ctx *sim.Context, _ int32, msg sim.Message) {
	if len(msg.UIDs) == 1 && msg.UIDs[0] < p.best {
		ctx.EmitTransition(obs.KindLeader, p.best, msg.UIDs[0])
		p.best = msg.UIDs[0]
	}
}

// EndRound is a no-op: state updates happen on delivery.
func (p *BlindGossip) EndRound(*sim.Context) {}

// Leader returns the current leader variable: the smallest UID seen.
func (p *BlindGossip) Leader() uint64 { return p.best }

// CorruptState implements sim.Corruptible: the node forgets every UID it
// has seen and restarts from its own, exactly as a fresh activation.
func (p *BlindGossip) CorruptState(*xrand.RNG) { p.best = p.uid }

// UID returns the node's own immutable UID.
func (p *BlindGossip) UID() uint64 { return p.uid }

// NewBlindGossipNetwork builds one BlindGossip protocol per node for the
// given UID assignment.
func NewBlindGossipNetwork(uids []uint64) []sim.Protocol {
	protocols := make([]sim.Protocol, len(uids))
	for i, uid := range uids {
		protocols[i] = NewBlindGossip(uid)
	}
	return protocols
}
