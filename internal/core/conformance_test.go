package core_test

// Conformance battery: every leader election protocol must behave as a
// well-formed mobile telephone model protocol across the sim package's
// schedule scenarios (no panics, budgets respected, deterministic traces,
// activation staggering tolerated).

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/sim"
)

func TestBlindGossipConformance(t *testing.T) {
	uids := core.UniqueUIDs(32, 7)
	err := sim.CheckConformance(func(node int) sim.Protocol {
		return core.NewBlindGossip(uids[node])
	}, sim.ConformanceConfig{Seed: 1, TagBits: 0})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBitConvConformance(t *testing.T) {
	uids := core.UniqueUIDs(32, 8)
	params := core.DefaultBitConvParams(32, 8)
	tags := core.AssignTags(32, params.K, 9)
	err := sim.CheckConformance(func(node int) sim.Protocol {
		return core.NewBitConv(uids[node], tags[node], params)
	}, sim.ConformanceConfig{Seed: 2, TagBits: 1})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsyncBitConvConformance(t *testing.T) {
	uids := core.UniqueUIDs(32, 10)
	params := core.DefaultBitConvParams(32, 8)
	tags := core.AssignTags(32, params.K, 11)
	err := sim.CheckConformance(func(node int) sim.Protocol {
		return core.NewAsyncBitConv(uids[node], tags[node], params)
	}, sim.ConformanceConfig{Seed: 3, TagBits: core.TagBitsNeeded(params)})
	if err != nil {
		t.Fatal(err)
	}
}
