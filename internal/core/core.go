// Package core implements the paper's contribution: three leader election
// algorithms for the mobile telephone model.
//
//   - BlindGossip (Section VI): works with b = 0 and any τ >= 1. Stabilizes
//     in O((1/α)Δ²log²n) rounds (Theorem VI.1); Ω(Δ²/√α) on the line of
//     stars.
//   - BitConv (Section VII): works with b = 1 and synchronized starts.
//     Stabilizes in O((1/α)Δ^{1/τ̂}·τ̂·log⁵n) rounds, τ̂ = min(τ, log Δ)
//     (Theorem VII.2).
//   - AsyncBitConv (Section VIII): works with b = ⌈log k⌉ + 1 =
//     log log n + O(1) and asynchronous activations; self-stabilizing under
//     component merges. Stabilizes in O((1/α)Δ^{1/τ̂}·τ̂·log⁸n) rounds after
//     the last activation (Theorem VIII.2).
//
// All three treat UIDs as opaque comparable values (uint64 here) exchanged
// only through connections, per the problem statement in Section IV.
package core

import (
	"fmt"
	"math/bits"

	"mobiletel/internal/sim"
	"mobiletel/internal/xrand"
)

// IDPair is the (UID, tag) pair of the bit convergence algorithms. Pairs are
// ordered by tag, with UID as tie-break; the network converges to the
// globally smallest pair.
type IDPair struct {
	UID uint64
	Tag uint64
}

// Less is the strict ordering on ID pairs: smaller tag first, then smaller
// UID.
func (p IDPair) Less(q IDPair) bool {
	if p.Tag != q.Tag {
		return p.Tag < q.Tag
	}
	return p.UID < q.UID
}

// Log2Ceil returns ⌈log₂ x⌉ for x >= 1.
func Log2Ceil(x int) int {
	if x < 1 {
		panic("core: Log2Ceil needs x >= 1")
	}
	if x == 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// UniqueUIDs generates n distinct pseudo-random 64-bit UIDs from seed. The
// algorithms treat UIDs as opaque black boxes; tests use this to avoid
// accidentally encoding node indices into UID structure.
func UniqueUIDs(n int, seed uint64) []uint64 {
	rng := xrand.New(seed)
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	// Draw in batches of exactly the shortfall: the batch fill consumes the
	// stream draw for draw like per-call Uint64 would, and the accept loop
	// keeps the first n valid values in draw order, so the result is
	// bit-identical to the historical one-call-per-draw loop. Every
	// benchmark and experiment builds its UID space through here, so at
	// paper-scale n the batch fill is what keeps setup off the profile.
	buf := make([]uint64, n)
	for len(out) < n {
		batch := buf[:n-len(out)]
		rng.FillUint64s(batch)
		for _, u := range batch {
			if u != 0 && !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// MinUID returns the smallest UID in the slice.
func MinUID(uids []uint64) uint64 {
	if len(uids) == 0 {
		panic("core: MinUID on empty slice")
	}
	best := uids[0]
	for _, u := range uids[1:] {
		if u < best {
			best = u
		}
	}
	return best
}

// MinPair returns the smallest ID pair.
func MinPair(pairs []IDPair) IDPair {
	if len(pairs) == 0 {
		panic("core: MinPair on empty slice")
	}
	best := pairs[0]
	for _, p := range pairs[1:] {
		if p.Less(best) {
			best = p
		}
	}
	return best
}

// AssignTags draws one ID tag per node uniformly from [1, 2^k), matching the
// paper's 1..n^β range with k = ⌈β·log n⌉ bits. Tags are not guaranteed
// unique (collisions happen with probability ~n²/2^k; the algorithms
// tolerate them via the UID tie-break, and experiments track the rate).
func AssignTags(n, k int, seed uint64) []uint64 {
	if k < 1 || k > 63 {
		panic(fmt.Sprintf("core: tag bit count %d outside [1, 63]", k))
	}
	rng := xrand.New(seed)
	tags := make([]uint64, n)
	span := (uint64(1) << uint(k)) - 1 // tags 1..2^k-1
	for i := range tags {
		tags[i] = 1 + rng.Uint64n(span)
	}
	return tags
}

// leadersAllEqual is shared test plumbing: checks every protocol in the
// slice reports the same leader.
func leadersAllEqual(protocols []sim.Protocol) bool {
	first := protocols[0].Leader()
	for _, p := range protocols[1:] {
		if p.Leader() != first {
			return false
		}
	}
	return true
}
