package core

import (
	"fmt"

	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
	"mobiletel/internal/xrand"
)

// AsyncBitConv is the Section VIII non-synchronized bit convergence
// algorithm. It removes the synchronized-start assumption of BitConv at the
// cost of a slightly larger advertisement: b = ⌈log k⌉ + 1 bits.
//
// Each node partitions its *local* rounds (counted from its own activation)
// into groups of GroupLen rounds. At each local group start it picks a tag
// bit position i ∈ [1, k] uniformly at random and, for the whole group,
// advertises the pair (i, value of bit i in the tag of its smallest ID
// pair), encoded as (i-1)*2 + bit. Nodes advertising a 0 bit for position i
// propose to uniformly random neighbors advertising a 1 bit for the *same*
// position; everyone else receives. Connected pairs trade smallest ID pairs
// and adopt improvements immediately (no phase boundaries), which is what
// makes the algorithm self-stabilizing under component merges.
type AsyncBitConv struct {
	params BitConvParams
	self   IDPair

	best IDPair

	localRound int // rounds completed since activation
	position   int // 1-based tag bit position for the current group
}

var (
	_ sim.Protocol    = (*AsyncBitConv)(nil)
	_ sim.Corruptible = (*AsyncBitConv)(nil)
)

// NewAsyncBitConv creates the protocol instance for one node.
func NewAsyncBitConv(uid, tag uint64, params BitConvParams) *AsyncBitConv {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if tag == 0 || tag >= uint64(1)<<uint(params.K) {
		panic(fmt.Sprintf("core: tag %d outside [1, 2^%d)", tag, params.K))
	}
	pair := IDPair{UID: uid, Tag: tag}
	return &AsyncBitConv{params: params, self: pair, best: pair}
}

// TagBitsNeeded returns the advertisement width the algorithm requires for
// the given parameters: ⌈log₂ k⌉ position bits plus one value bit.
func TagBitsNeeded(params BitConvParams) int {
	return Log2Ceil(params.K) + 1
}

// bitValue returns bit `position` (1-based, most significant first) of the
// node's current smallest tag.
func (p *AsyncBitConv) bitValue() uint64 {
	return (p.best.Tag >> uint(p.params.K-p.position)) & 1
}

// encodeTag packs (position, bit) into the advertised tag value.
func encodeTag(position int, bit uint64) uint64 {
	return uint64(position-1)*2 + bit
}

// decodeTag unpacks an advertised tag value.
func decodeTag(tag uint64) (position int, bit uint64) {
	return int(tag/2) + 1, tag & 1
}

// Advertise starts a new local group when due (picking a fresh random
// position) and returns the encoded (position, bit) advertisement.
func (p *AsyncBitConv) Advertise(ctx *sim.Context) uint64 {
	if p.localRound%p.params.GroupLen == 0 {
		next := 1 + ctx.RNG.Intn(p.params.K)
		if next != p.position {
			ctx.EmitTransition(obs.KindPosition, uint64(p.position), uint64(next))
			p.position = next
		}
	}
	return encodeTag(p.position, p.bitValue())
}

// Decide: 0-bit advertisers propose to a uniformly random neighbor
// advertising (same position, bit 1); everyone else receives.
func (p *AsyncBitConv) Decide(ctx *sim.Context) (int32, bool) {
	if p.bitValue() != 0 {
		return 0, false
	}
	want := encodeTag(p.position, 1)
	target, ok := ctx.RandomNeighborMatching(func(_ int32, tag uint64) bool { return tag == want })
	if !ok {
		return 0, false
	}
	return target, true
}

// Outgoing sends the node's current smallest ID pair.
func (p *AsyncBitConv) Outgoing(*sim.Context, int32) sim.Message {
	return sim.Message{UIDs: []uint64{p.best.UID}, Aux: p.best.Tag}
}

// Deliver adopts the peer's pair immediately if smaller.
func (p *AsyncBitConv) Deliver(ctx *sim.Context, _ int32, msg sim.Message) {
	if len(msg.UIDs) != 1 {
		return
	}
	got := IDPair{UID: msg.UIDs[0], Tag: msg.Aux}
	if got.Less(p.best) {
		if got.UID != p.best.UID {
			ctx.EmitTransition(obs.KindLeader, p.best.UID, got.UID)
		}
		p.best = got
	}
}

// EndRound advances the local round counter (activation-relative time).
func (p *AsyncBitConv) EndRound(*sim.Context) { p.localRound++ }

// Leader returns the UID of the node's current smallest ID pair.
func (p *AsyncBitConv) Leader() uint64 { return p.best.UID }

// CorruptState implements sim.Corruptible: the node reverts to its exact
// initial state — own pair, local clock zeroed, no group position (the next
// Advertise starts a fresh local group and draws one). This is the
// Section VIII adversary: the algorithm's self-stabilization claim is that
// it converges from any such reset, which the R-series experiments measure.
func (p *AsyncBitConv) CorruptState(*xrand.RNG) {
	p.best, p.localRound, p.position = p.self, 0, 0
}

// Best returns the node's current smallest ID pair (for tests/trace).
func (p *AsyncBitConv) Best() IDPair { return p.best }

// NewAsyncBitConvNetwork builds one AsyncBitConv protocol per node, drawing
// tags from seed. It returns the protocols and the tag assignment.
func NewAsyncBitConvNetwork(uids []uint64, params BitConvParams, seed uint64) ([]sim.Protocol, []uint64) {
	tags := AssignTags(len(uids), params.K, xrand.Mix3(seed, 0xa5c, 0))
	protocols := make([]sim.Protocol, len(uids))
	for i, uid := range uids {
		protocols[i] = NewAsyncBitConv(uid, tags[i], params)
	}
	return protocols, tags
}
