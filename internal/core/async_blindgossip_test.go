package core_test

// The paper's footnote 2 (Section VIII): blind gossip makes no round-
// synchronization assumption, so its guarantees apply directly in the
// asynchronous-activation setting. This test exercises that claim.

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
)

func TestBlindGossipAsynchronousActivations(t *testing.T) {
	n := 40
	f := gen.RandomRegular(n, 4, 13)
	uids := core.UniqueUIDs(n, 71)
	protocols := core.NewBlindGossipNetwork(uids)

	activations := make([]int, n)
	maxAct := 0
	for i := range activations {
		activations[i] = 1 + (i*53)%300
		if activations[i] > maxAct {
			maxAct = activations[i]
		}
	}

	eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{
		Seed: 12, MaxRounds: 2_000_000, Activations: activations,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(sim.AllLeadersEqual)
	if err != nil {
		t.Fatalf("blind gossip with async activations did not stabilize: %v", err)
	}
	if protocols[0].Leader() != core.MinUID(uids) {
		t.Fatal("wrong leader")
	}
	if res.StabilizedRound < maxAct {
		t.Fatalf("stabilized at %d, before the last activation at %d", res.StabilizedRound, maxAct)
	}
}
