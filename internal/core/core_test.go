package core

import (
	"testing"
	"testing/quick"

	"mobiletel/internal/xrand"
)

func TestIDPairLess(t *testing.T) {
	cases := []struct {
		p, q IDPair
		want bool
	}{
		{IDPair{1, 5}, IDPair{2, 6}, true},   // smaller tag wins
		{IDPair{9, 5}, IDPair{2, 6}, true},   // tag dominates UID
		{IDPair{1, 5}, IDPair{2, 5}, true},   // equal tags: smaller UID
		{IDPair{2, 5}, IDPair{1, 5}, false},  // equal tags: larger UID
		{IDPair{1, 5}, IDPair{1, 5}, false},  // equal pairs: strict
		{IDPair{1, 7}, IDPair{99, 6}, false}, // larger tag loses
	}
	for i, c := range cases {
		if got := c.p.Less(c.q); got != c.want {
			t.Errorf("case %d: %v.Less(%v) = %v, want %v", i, c.p, c.q, got, c.want)
		}
	}
}

func TestIDPairLessIsStrictOrder(t *testing.T) {
	err := quick.Check(func(a, b IDPair) bool {
		// Antisymmetry and totality on distinct pairs.
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for x, want := range cases {
		if got := Log2Ceil(x); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestLog2CeilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2Ceil(0) did not panic")
		}
	}()
	Log2Ceil(0)
}

func TestUniqueUIDsDistinctAndNonzero(t *testing.T) {
	uids := UniqueUIDs(5000, 3)
	seen := make(map[uint64]bool, len(uids))
	for _, u := range uids {
		if u == 0 {
			t.Fatal("zero UID generated")
		}
		if seen[u] {
			t.Fatalf("duplicate UID %d", u)
		}
		seen[u] = true
	}
}

func TestUniqueUIDsDeterministic(t *testing.T) {
	a, b := UniqueUIDs(100, 9), UniqueUIDs(100, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("UniqueUIDs not deterministic")
		}
	}
}

// TestUniqueUIDsMatchesScalarDraws pins the batch-fill rewrite to the
// historical one-call-per-draw loop: every seeded UID space in every test,
// benchmark, and experiment stays bit-identical.
func TestUniqueUIDsMatchesScalarDraws(t *testing.T) {
	for _, seed := range []uint64{0, 9, 0xdeadbeef} {
		rng := xrand.New(seed)
		seen := make(map[uint64]bool)
		var want []uint64
		for len(want) < 300 {
			if u := rng.Uint64(); u != 0 && !seen[u] {
				seen[u] = true
				want = append(want, u)
			}
		}
		got := UniqueUIDs(300, seed)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: UID %d = %#x, want scalar-draw %#x", seed, i, got[i], want[i])
			}
		}
	}
}

func TestMinUIDAndMinPair(t *testing.T) {
	if MinUID([]uint64{5, 3, 9}) != 3 {
		t.Fatal("MinUID wrong")
	}
	got := MinPair([]IDPair{{UID: 1, Tag: 9}, {UID: 7, Tag: 2}, {UID: 3, Tag: 2}})
	if got != (IDPair{UID: 3, Tag: 2}) {
		t.Fatalf("MinPair = %v", got)
	}
}

func TestAssignTagsInRange(t *testing.T) {
	for _, k := range []int{1, 4, 20, 63} {
		tags := AssignTags(200, k, 5)
		limit := uint64(1) << uint(k)
		for _, tag := range tags {
			if tag == 0 || tag >= limit {
				t.Fatalf("k=%d: tag %d outside [1, 2^%d)", k, tag, k)
			}
		}
	}
}

func TestAssignTagsPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AssignTags with k=%d did not panic", k)
				}
			}()
			AssignTags(10, k, 1)
		}()
	}
}

func TestAssignTagsCollisionRate(t *testing.T) {
	// With k = 2·log2(n) bits, expected collisions ~ n²/2^k = 1; with
	// k = 2·log2(n)+6 they should be rare. Just verify the 2·log2(n) rule
	// used by DefaultBitConvParams keeps duplicates to a small fraction.
	n := 1024
	k := 2 * Log2Ceil(n+1)
	tags := AssignTags(n, k, 7)
	seen := make(map[uint64]int)
	dups := 0
	for _, tag := range tags {
		if seen[tag] > 0 {
			dups++
		}
		seen[tag]++
	}
	if dups > n/50 {
		t.Fatalf("too many tag collisions: %d of %d", dups, n)
	}
}

func TestDefaultBitConvParams(t *testing.T) {
	p := DefaultBitConvParams(1000, 16)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.K != 2*Log2Ceil(1001) {
		t.Fatalf("K = %d", p.K)
	}
	if p.GroupLen != 2*Log2Ceil(17) {
		t.Fatalf("GroupLen = %d", p.GroupLen)
	}
	if p.PhaseLen() != p.K*p.GroupLen {
		t.Fatal("PhaseLen inconsistent")
	}
	// Degenerate inputs still validate.
	if err := DefaultBitConvParams(1, 1).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBitConvParamsValidate(t *testing.T) {
	if err := (BitConvParams{K: 0, GroupLen: 2}).Validate(); err == nil {
		t.Fatal("K=0 accepted")
	}
	if err := (BitConvParams{K: 64, GroupLen: 2}).Validate(); err == nil {
		t.Fatal("K=64 accepted")
	}
	if err := (BitConvParams{K: 4, GroupLen: 0}).Validate(); err == nil {
		t.Fatal("GroupLen=0 accepted")
	}
}

func TestEncodeDecodeTag(t *testing.T) {
	for pos := 1; pos <= 20; pos++ {
		for bit := uint64(0); bit <= 1; bit++ {
			gotPos, gotBit := decodeTag(encodeTag(pos, bit))
			if gotPos != pos || gotBit != bit {
				t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", pos, bit, gotPos, gotBit)
			}
		}
	}
}

func TestTagBitsNeeded(t *testing.T) {
	// k=20 positions need ceil(log2 20)=5 bits + 1 value bit.
	if got := TagBitsNeeded(BitConvParams{K: 20, GroupLen: 2}); got != 6 {
		t.Fatalf("TagBitsNeeded(k=20) = %d, want 6", got)
	}
	// Largest encoded value must fit.
	params := BitConvParams{K: 20, GroupLen: 2}
	maxTag := encodeTag(params.K, 1)
	if maxTag >= uint64(1)<<uint(TagBitsNeeded(params)) {
		t.Fatalf("encoded tag %d does not fit in %d bits", maxTag, TagBitsNeeded(params))
	}
}

func TestNewBitConvRejectsBadTag(t *testing.T) {
	params := BitConvParams{K: 4, GroupLen: 2}
	for _, tag := range []uint64{0, 16, 999} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("tag %d accepted", tag)
				}
			}()
			NewBitConv(1, tag, params)
		}()
	}
}

func TestBitConvGroupBitExtraction(t *testing.T) {
	params := BitConvParams{K: 4, GroupLen: 2}
	// tag 0b1010 = 10: bit 1 (MSB) = 1, bit 2 = 0, bit 3 = 1, bit 4 = 0.
	p := NewBitConv(1, 0b1010, params)
	want := []uint64{1, 0, 1, 0}
	for g := 1; g <= 4; g++ {
		if got := p.groupBit(g); got != want[g-1] {
			t.Fatalf("groupBit(%d) = %d, want %d", g, got, want[g-1])
		}
	}
}

func TestBitConvPhasePosition(t *testing.T) {
	params := BitConvParams{K: 3, GroupLen: 4} // phase = 12 rounds
	p := NewBitConv(1, 1, params)
	cases := []struct {
		round      int
		group      int
		phaseStart bool
	}{
		{1, 1, true}, {2, 1, false}, {4, 1, false},
		{5, 2, false}, {8, 2, false}, {9, 3, false}, {12, 3, false},
		{13, 1, true}, {25, 1, true},
	}
	for _, c := range cases {
		g, ps := p.phasePosition(c.round)
		if g != c.group || ps != c.phaseStart {
			t.Errorf("round %d: got (group=%d, start=%v), want (%d, %v)", c.round, g, ps, c.group, c.phaseStart)
		}
	}
}

func TestBlindGossipInitialState(t *testing.T) {
	p := NewBlindGossip(42)
	if p.Leader() != 42 || p.UID() != 42 {
		t.Fatal("initial leader must be own UID")
	}
}

func TestNetworkFactories(t *testing.T) {
	uids := UniqueUIDs(10, 1)
	bg := NewBlindGossipNetwork(uids)
	if len(bg) != 10 {
		t.Fatal("wrong network size")
	}
	params := DefaultBitConvParams(10, 4)
	bc, tags := NewBitConvNetwork(uids, params, 3)
	if len(bc) != 10 || len(tags) != 10 {
		t.Fatal("wrong bitconv network size")
	}
	abc, tags2 := NewAsyncBitConvNetwork(uids, params, 3)
	if len(abc) != 10 || len(tags2) != 10 {
		t.Fatal("wrong async network size")
	}
	// Each node's initial leader is its own UID.
	for i := range uids {
		if bg[i].Leader() != uids[i] || bc[i].Leader() != uids[i] || abc[i].Leader() != uids[i] {
			t.Fatalf("node %d initial leader wrong", i)
		}
	}
}

func TestLeadersAllEqualHelper(t *testing.T) {
	uids := []uint64{3, 3, 3}
	if !leadersAllEqual(NewBlindGossipNetwork(uids)) {
		t.Fatal("equal leaders not detected")
	}
	if leadersAllEqual(NewBlindGossipNetwork([]uint64{3, 4, 3})) {
		t.Fatal("unequal leaders not detected")
	}
}

func TestAssignTagsSeedSensitivity(t *testing.T) {
	a := AssignTags(50, 20, 1)
	b := AssignTags(50, 20, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("%d/50 tags identical across seeds", same)
	}
	_ = xrand.Mix3 // keep import in use if counts change
}
