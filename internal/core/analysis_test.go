package core_test

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
)

func TestMaxDifferenceBit(t *testing.T) {
	k := 4
	cases := []struct {
		tags      []uint64
		bit       int
		converged bool
	}{
		{[]uint64{0b1010, 0b1010}, 0, true},
		{[]uint64{0b1010, 0b0010}, 1, false}, // differ at MSB
		{[]uint64{0b1010, 0b1110}, 2, false},
		{[]uint64{0b1010, 0b1011}, 4, false}, // differ at LSB
		{[]uint64{0b1010, 0b1010, 0b1000}, 3, false},
	}
	for i, c := range cases {
		bit, converged := core.MaxDifferenceBit(c.tags, k)
		if bit != c.bit || converged != c.converged {
			t.Errorf("case %d: got (%d,%v), want (%d,%v)", i, bit, converged, c.bit, c.converged)
		}
	}
}

func TestZeroSetSize(t *testing.T) {
	k := 4
	tags := []uint64{0b1010, 0b0010, 0b1110}
	if got := core.ZeroSetSize(tags, k, 1); got != 1 {
		t.Fatalf("MSB zero count %d, want 1", got)
	}
	if got := core.ZeroSetSize(tags, k, 4); got != 3 {
		t.Fatalf("LSB zero count %d, want 3", got)
	}
}

func TestAnalysisPanics(t *testing.T) {
	cases := []func(){
		func() { core.MaxDifferenceBit(nil, 4) },
		func() { core.MaxDifferenceBit([]uint64{1}, 0) },
		func() { core.ZeroSetSize([]uint64{1}, 4, 0) },
		func() { core.ZeroSetSize([]uint64{1}, 4, 5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestLemmaVII1ProgressMeasure observes a full bit convergence execution
// and checks the three properties of Lemma VII.1 at every phase boundary:
// (1) once converged (b = ⊥), stays converged; (2) the maximum difference
// bit never decreases; (3) while the bit is fixed, the zero set never
// shrinks.
func TestLemmaVII1ProgressMeasure(t *testing.T) {
	n, d := 48, 8
	f := gen.RandomRegular(n, d, 17)
	uids := core.UniqueUIDs(n, 23)
	params := core.DefaultBitConvParams(n, d)
	protocols, _ := core.NewBitConvNetwork(uids, params, 29)

	snapshot := func(ps []sim.Protocol) []uint64 {
		tags := make([]uint64, len(ps))
		for i, p := range ps {
			tags[i] = p.(*core.BitConv).Best().Tag
		}
		return tags
	}

	prevBit, prevConverged := core.MaxDifferenceBit(snapshot(protocols), params.K)
	prevZero := 0
	if !prevConverged {
		prevZero = core.ZeroSetSize(snapshot(protocols), params.K, prevBit)
	}

	phaseLen := params.PhaseLen()
	stop := func(round int, ps []sim.Protocol) bool {
		if round%phaseLen != 0 {
			return false // observe only at phase boundaries
		}
		tags := snapshot(ps)
		bit, converged := core.MaxDifferenceBit(tags, params.K)
		switch {
		case prevConverged && !converged:
			t.Fatalf("round %d: un-converged after b_i = ⊥ (Lemma VII.1(1) violated)", round)
		case !prevConverged && !converged && bit < prevBit:
			t.Fatalf("round %d: max difference bit fell %d -> %d (Lemma VII.1(2) violated)",
				round, prevBit, bit)
		case !prevConverged && !converged && bit == prevBit:
			if zero := core.ZeroSetSize(tags, params.K, bit); zero < prevZero {
				t.Fatalf("round %d: |S_i| shrank %d -> %d at bit %d (Lemma VII.1(3) violated)",
					round, prevZero, zero, bit)
			} else {
				prevZero = zero
			}
		case !converged:
			prevZero = core.ZeroSetSize(tags, params.K, bit)
		}
		prevBit, prevConverged = bit, converged
		return sim.AllLeadersEqual(round, ps)
	}

	eng, err := sim.New(dyngraph.NewPermuted(f, 2, 31), protocols,
		sim.Config{Seed: 37, TagBits: 1, MaxRounds: 5_000_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(stop); err != nil {
		t.Fatal(err)
	}
	// At stabilization all tags are equal, so the measure must be ⊥.
	if _, converged := core.MaxDifferenceBit(snapshot(protocols), params.K); !converged {
		t.Fatal("stabilized network with unconverged tags")
	}
}
