package core

// Analysis helpers for the bit convergence progress measure of Section VII:
// the maximum difference bit b_i and the zero-set S_i. These exist so tests
// and traces can observe the exact quantities Lemma VII.1 and Theorem VII.2
// reason about.

// MaxDifferenceBit computes b_i for the given multiset of current smallest
// tags (k bits each, bit 1 = most significant): the most significant
// position at which two tags differ. converged is true (and bit 0) when all
// tags are equal — the paper's b_i = ⊥ case.
func MaxDifferenceBit(tags []uint64, k int) (bit int, converged bool) {
	if len(tags) == 0 {
		panic("core: MaxDifferenceBit on empty tag set")
	}
	if k < 1 || k > 63 {
		panic("core: MaxDifferenceBit bit count out of range")
	}
	for i := 1; i <= k; i++ {
		first := (tags[0] >> uint(k-i)) & 1
		for _, tag := range tags[1:] {
			if (tag>>uint(k-i))&1 != first {
				return i, false
			}
		}
	}
	return 0, true
}

// ZeroSetSize returns |S_i|: the number of tags with a 0 in position bit
// (1-based, most significant first).
func ZeroSetSize(tags []uint64, k, bit int) int {
	if bit < 1 || bit > k {
		panic("core: ZeroSetSize position out of range")
	}
	count := 0
	for _, tag := range tags {
		if (tag>>uint(k-bit))&1 == 0 {
			count++
		}
	}
	return count
}
