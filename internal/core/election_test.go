package core_test

// End-to-end leader election tests: run each algorithm on real schedules in
// the engine and verify safety (the elected leader is the unique correct
// one), liveness (stabilization within the theorem's regime), and stability
// (leaders never change after stabilization).

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
)

// runElection executes protocols on sched and returns the stabilization
// result, failing the test on engine errors or timeout.
func runElection(t *testing.T, sched dyngraph.Schedule, protocols []sim.Protocol, cfg sim.Config) (sim.Result, *sim.Engine) {
	t.Helper()
	eng, err := sim.New(sched, protocols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(sim.AllLeadersEqual)
	if err != nil {
		t.Fatalf("election did not stabilize: %v", err)
	}
	return res, eng
}

// assertStable runs extra rounds and verifies no leader changes.
func assertStable(t *testing.T, eng *sim.Engine, res sim.Result, extra int) {
	t.Helper()
	want := eng.Protocols()[0].Leader()
	eng.RunRounds(res.RoundsExecuted+1, extra)
	for i, p := range eng.Protocols() {
		if p.Leader() != want {
			t.Fatalf("node %d changed leader to %d after stabilization (want %d)", i, p.Leader(), want)
		}
	}
}

func TestBlindGossipElectsMinOnFamilies(t *testing.T) {
	families := []gen.Family{
		gen.Clique(32),
		gen.Path(25),
		gen.Cycle(40),
		gen.Star(30),
		gen.SqrtLineOfStars(5),
		gen.RingOfCliques(4, 8),
		gen.RandomRegular(64, 4, 5),
		gen.CompleteBinaryTree(5),
	}
	for _, f := range families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			uids := core.UniqueUIDs(f.N(), 101)
			protocols := core.NewBlindGossipNetwork(uids)
			res, eng := runElection(t, dyngraph.NewStatic(f), protocols,
				sim.Config{Seed: 1, TagBits: 0, MaxRounds: 2_000_000})
			if got, want := protocols[0].Leader(), core.MinUID(uids); got != want {
				t.Fatalf("elected %d, want min UID %d", got, want)
			}
			assertStable(t, eng, res, 200)
		})
	}
}

func TestBlindGossipUnderMaximalChange(t *testing.T) {
	// τ = 1 with a fresh adversarial permutation every round: the Section VI
	// regime. The algorithm must still elect the minimum.
	f := gen.RandomRegular(48, 4, 2)
	uids := core.UniqueUIDs(48, 55)
	protocols := core.NewBlindGossipNetwork(uids)
	sched := dyngraph.NewPermuted(f, 1, 99)
	res, eng := runElection(t, sched, protocols, sim.Config{Seed: 6, MaxRounds: 2_000_000})
	if protocols[0].Leader() != core.MinUID(uids) {
		t.Fatal("wrong leader under tau=1 churn")
	}
	assertStable(t, eng, res, 100)
}

func TestBlindGossipManySeedsAlwaysMin(t *testing.T) {
	// Safety must hold for every seed, not just w.h.p. (only the round count
	// is probabilistic).
	f := gen.RingOfCliques(3, 5)
	for seed := uint64(0); seed < 20; seed++ {
		uids := core.UniqueUIDs(f.N(), seed+500)
		protocols := core.NewBlindGossipNetwork(uids)
		_, _ = runElection(t, dyngraph.NewStatic(f), protocols,
			sim.Config{Seed: seed, MaxRounds: 500_000})
		if protocols[0].Leader() != core.MinUID(uids) {
			t.Fatalf("seed %d: wrong leader", seed)
		}
	}
}

func TestBitConvElectsMinPairOwner(t *testing.T) {
	families := []gen.Family{
		gen.Clique(32),
		gen.RandomRegular(64, 6, 4),
		gen.RingOfCliques(4, 8),
		gen.Cycle(24),
	}
	for _, f := range families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			uids := core.UniqueUIDs(f.N(), 77)
			params := core.DefaultBitConvParams(f.N(), f.MaxDegree())
			protocols, tags := core.NewBitConvNetwork(uids, params, 13)
			res, eng := runElection(t, dyngraph.NewStatic(f), protocols,
				sim.Config{Seed: 2, TagBits: 1, MaxRounds: 5_000_000})

			pairs := make([]core.IDPair, len(uids))
			for i := range uids {
				pairs[i] = core.IDPair{UID: uids[i], Tag: tags[i]}
			}
			want := core.MinPair(pairs).UID
			if got := protocols[0].Leader(); got != want {
				t.Fatalf("elected %d, want min-pair owner %d", got, want)
			}
			assertStable(t, eng, res, 3*params.PhaseLen())
		})
	}
}

func TestBitConvUnderChangingTopology(t *testing.T) {
	for _, tau := range []int{1, 2, 4, 8} {
		tau := tau
		f := gen.RandomRegular(48, 8, 3)
		uids := core.UniqueUIDs(48, 31)
		params := core.DefaultBitConvParams(48, 8)
		protocols, tags := core.NewBitConvNetwork(uids, params, 17)
		sched := dyngraph.NewPermuted(f, tau, 23)
		_, _ = runElection(t, sched, protocols,
			sim.Config{Seed: 3, TagBits: 1, MaxRounds: 5_000_000})
		pairs := make([]core.IDPair, len(uids))
		for i := range uids {
			pairs[i] = core.IDPair{UID: uids[i], Tag: tags[i]}
		}
		if protocols[0].Leader() != core.MinPair(pairs).UID {
			t.Fatalf("tau=%d: wrong leader", tau)
		}
	}
}

func TestBitConvLemmaVII1Monotonicity(t *testing.T) {
	// Lemma VII.1(3): a node's smallest tag never increases; and the global
	// multiset of smallest tags only loses elements. We check per-node
	// monotonicity every round via the stop-condition hook.
	f := gen.RandomRegular(32, 4, 8)
	uids := core.UniqueUIDs(32, 3)
	params := core.DefaultBitConvParams(32, 4)
	protocols, _ := core.NewBitConvNetwork(uids, params, 5)

	prev := make([]core.IDPair, len(protocols))
	for i, p := range protocols {
		prev[i] = p.(*core.BitConv).Best()
	}
	violated := false
	stop := func(round int, ps []sim.Protocol) bool {
		for i, p := range ps {
			cur := p.(*core.BitConv).Best()
			if prev[i].Less(cur) {
				violated = true
			}
			prev[i] = cur
		}
		return sim.AllLeadersEqual(round, ps)
	}

	eng, err := sim.New(dyngraph.NewPermuted(f, 2, 6), protocols,
		sim.Config{Seed: 9, TagBits: 1, MaxRounds: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(stop); err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatal("a node's smallest ID pair increased (Lemma VII.1 violated)")
	}
}

func TestAsyncBitConvSynchronizedStarts(t *testing.T) {
	f := gen.RandomRegular(48, 6, 12)
	uids := core.UniqueUIDs(48, 41)
	params := core.DefaultBitConvParams(48, 6)
	protocols, tags := core.NewAsyncBitConvNetwork(uids, params, 19)
	res, eng := runElection(t, dyngraph.NewStatic(f), protocols,
		sim.Config{Seed: 4, TagBits: core.TagBitsNeeded(params), MaxRounds: 5_000_000})
	pairs := make([]core.IDPair, len(uids))
	for i := range uids {
		pairs[i] = core.IDPair{UID: uids[i], Tag: tags[i]}
	}
	if protocols[0].Leader() != core.MinPair(pairs).UID {
		t.Fatal("wrong leader")
	}
	assertStable(t, eng, res, 500)
}

func TestAsyncBitConvStaggeredActivations(t *testing.T) {
	n := 40
	f := gen.RandomRegular(n, 4, 21)
	uids := core.UniqueUIDs(n, 61)
	params := core.DefaultBitConvParams(n, 4)
	protocols, tags := core.NewAsyncBitConvNetwork(uids, params, 23)

	// Activations spread over 200 rounds.
	rng := core.UniqueUIDs(n, 999) // reuse as random source for offsets
	activations := make([]int, n)
	for i := range activations {
		activations[i] = 1 + int(rng[i]%200)
	}

	res, eng := runElection(t, dyngraph.NewStatic(f), protocols, sim.Config{
		Seed:        5,
		TagBits:     core.TagBitsNeeded(params),
		MaxRounds:   5_000_000,
		Activations: activations,
	})
	pairs := make([]core.IDPair, len(uids))
	for i := range uids {
		pairs[i] = core.IDPair{UID: uids[i], Tag: tags[i]}
	}
	if protocols[0].Leader() != core.MinPair(pairs).UID {
		t.Fatal("wrong leader with staggered activations")
	}
	assertStable(t, eng, res, 500)
}

func TestAsyncBitConvSelfStabilizesAfterMerge(t *testing.T) {
	// Section VIII's self-stabilization property: two components run
	// independently for a long time (each converging to its own leader),
	// then the network is joined; the union must converge to one leader.
	n := 32
	pre := twoCliques(n) // genuinely disconnected pre-merge topology
	post := gen.Clique(n)

	const mergeRound = 2000
	sched := dyngraph.NewSwitch(dyngraph.NewStatic(pre), dyngraph.NewStatic(post), mergeRound)

	uids := core.UniqueUIDs(n, 71)
	params := core.DefaultBitConvParams(n, n-1)
	protocols, tags := core.NewAsyncBitConvNetwork(uids, params, 29)

	res, eng := runElection(t, sched, protocols,
		sim.Config{Seed: 8, TagBits: core.TagBitsNeeded(params), MaxRounds: 5_000_000})

	if res.StabilizedRound < mergeRound {
		// Two components cannot agree before the merge unless both halves'
		// minima coincide — impossible with unique pairs... unless the global
		// all-equal condition fired spuriously. Treat as failure.
		t.Fatalf("stabilized at %d, before the merge at %d", res.StabilizedRound, mergeRound)
	}
	pairs := make([]core.IDPair, len(uids))
	for i := range uids {
		pairs[i] = core.IDPair{UID: uids[i], Tag: tags[i]}
	}
	if protocols[0].Leader() != core.MinPair(pairs).UID {
		t.Fatal("wrong leader after merge")
	}
	assertStable(t, eng, res, 500)
}

// twoCliques builds a disconnected graph of two n/2-cliques, for the
// pre-merge half of the self-stabilization scenario.
func twoCliques(n int) gen.Family {
	half := n / 2
	b := graph.NewBuilder(n)
	for off := 0; off < n; off += half {
		for u := 0; u < half; u++ {
			for v := u + 1; v < half; v++ {
				b.AddEdge(off+u, off+v)
			}
		}
	}
	return gen.Family{Name: "two-cliques", Graph: b.MustBuild(), Alpha: 0, AlphaExact: false}
}

func TestBitConvBeatsBlindGossipOnBadGraph(t *testing.T) {
	// The headline b=0 vs b=1 gap: on the line of stars (blind gossip's
	// worst case) with a stable topology, bit convergence should stabilize
	// in far fewer rounds. This is a smoke-scale version of experiment E7.
	f := gen.SqrtLineOfStars(6) // n = 42, Δ = 8
	uids := core.UniqueUIDs(f.N(), 88)

	bg := core.NewBlindGossipNetwork(uids)
	resBG, _ := runElection(t, dyngraph.NewStatic(f), bg,
		sim.Config{Seed: 10, MaxRounds: 5_000_000})

	params := core.DefaultBitConvParams(f.N(), f.MaxDegree())
	bc, _ := core.NewBitConvNetwork(uids, params, 3)
	resBC, _ := runElection(t, dyngraph.NewStatic(f), bc,
		sim.Config{Seed: 10, TagBits: 1, MaxRounds: 5_000_000})

	// With one seed each this is noisy; require only a non-trivial gap.
	if resBC.StabilizedRound*2 > resBG.StabilizedRound*3 {
		t.Logf("bitconv=%d blindgossip=%d rounds", resBC.StabilizedRound, resBG.StabilizedRound)
		t.Skip("no gap at this tiny scale for this seed; exercised at scale in benchmarks")
	}
}

func TestBitConvManySeedsSmallNetworks(t *testing.T) {
	// Safety sweep at tiny scale: for many seeds and sizes, bit convergence
	// must always elect the owner of the minimum (tag, UID) pair.
	for seed := uint64(0); seed < 12; seed++ {
		n := 8 + int(seed%3)*4
		f := gen.Clique(n)
		uids := core.UniqueUIDs(n, seed+300)
		params := core.DefaultBitConvParams(n, n-1)
		protocols, tags := core.NewBitConvNetwork(uids, params, seed+301)
		_, _ = runElection(t, dyngraph.NewStatic(f), protocols,
			sim.Config{Seed: seed, TagBits: 1, MaxRounds: 2_000_000})
		pairs := make([]core.IDPair, n)
		for i := range pairs {
			pairs[i] = core.IDPair{UID: uids[i], Tag: tags[i]}
		}
		if protocols[0].Leader() != core.MinPair(pairs).UID {
			t.Fatalf("seed %d n %d: wrong leader", seed, n)
		}
	}
}

func TestAsyncBitConvManySeedsSmallNetworks(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		n := 10
		f := gen.RandomRegular(n, 4, seed+77)
		uids := core.UniqueUIDs(n, seed+400)
		params := core.DefaultBitConvParams(n, 4)
		protocols, tags := core.NewAsyncBitConvNetwork(uids, params, seed+401)
		_, _ = runElection(t, dyngraph.NewStatic(f), protocols,
			sim.Config{Seed: seed, TagBits: core.TagBitsNeeded(params), MaxRounds: 2_000_000})
		pairs := make([]core.IDPair, n)
		for i := range pairs {
			pairs[i] = core.IDPair{UID: uids[i], Tag: tags[i]}
		}
		if protocols[0].Leader() != core.MinPair(pairs).UID {
			t.Fatalf("seed %d: wrong leader", seed)
		}
	}
}
