package core_test

// Transition-emission tests: each protocol must publish its state changes
// to the observability sink so mtmtrace can audit executions against the
// paper's per-round dynamics.

import (
	"testing"

	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
)

// traceElection runs one election with a ring sink and returns per-kind
// transition counts plus the events.
func traceElection(t *testing.T, protocols []sim.Protocol, tagBits int, seed uint64) map[obs.Kind]int {
	t.Helper()
	ring := obs.NewRing(1 << 20)
	eng, err := sim.New(
		dyngraph.NewStatic(gen.RandomRegular(len(protocols), 4, 9)),
		protocols,
		sim.Config{Seed: seed, TagBits: tagBits, Sink: ring},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err != nil {
		t.Fatal(err)
	}
	counts := make(map[obs.Kind]int)
	for _, e := range ring.Events() {
		if e.Type == obs.TypeTransition {
			counts[e.Kind]++
		}
	}
	return counts
}

func TestBlindGossipEmitsLeaderTransitions(t *testing.T) {
	const n = 24
	counts := traceElection(t, core.NewBlindGossipNetwork(core.UniqueUIDs(n, 1)), 0, 1)
	// Every node except the minimum's owner must change its estimate at
	// least once, so there are at least n-1 leader transitions.
	if counts[obs.KindLeader] < n-1 {
		t.Errorf("leader transitions = %d, want >= %d", counts[obs.KindLeader], n-1)
	}
}

func TestBitConvEmitsPhaseBitLeaderTransitions(t *testing.T) {
	const n = 24
	uids := core.UniqueUIDs(n, 2)
	params := core.DefaultBitConvParams(n, 4)
	protocols, _ := core.NewBitConvNetwork(uids, params, 3)
	counts := traceElection(t, protocols, 1, 2)
	if counts[obs.KindLeader] < n-1 {
		t.Errorf("leader transitions = %d, want >= %d", counts[obs.KindLeader], n-1)
	}
	if counts[obs.KindPhase] == 0 {
		t.Error("no phase-adoption transitions emitted")
	}
	if counts[obs.KindBit] == 0 {
		t.Error("no advertised-bit transitions emitted")
	}
}

func TestAsyncBitConvEmitsPositionLeaderTransitions(t *testing.T) {
	const n = 24
	uids := core.UniqueUIDs(n, 4)
	params := core.DefaultBitConvParams(n, 4)
	protocols, _ := core.NewAsyncBitConvNetwork(uids, params, 5)
	counts := traceElection(t, protocols, core.TagBitsNeeded(params), 4)
	if counts[obs.KindLeader] < n-1 {
		t.Errorf("leader transitions = %d, want >= %d", counts[obs.KindLeader], n-1)
	}
	if counts[obs.KindPosition] == 0 {
		t.Error("no position transitions emitted")
	}
}

// TestTracedRunBitIdentical pins that attaching a sink does not perturb the
// execution itself: same seed with and without tracing elects the same
// leader in the same round (tracing must be read-only).
func TestTracedRunBitIdentical(t *testing.T) {
	const n = 32
	build := func(sink obs.Sink) (uint64, int) {
		eng, err := sim.New(
			dyngraph.NewStatic(gen.RandomRegular(n, 4, 6)),
			core.NewBlindGossipNetwork(core.UniqueUIDs(n, 8)),
			sim.Config{Seed: 8, Workers: 1, Sink: sink},
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(sim.AllLeadersEqual)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Protocols()[0].Leader(), res.StabilizedRound
	}
	plainLeader, plainRound := build(nil)
	tracedLeader, tracedRound := build(obs.NewRing(1024))
	if plainLeader != tracedLeader || plainRound != tracedRound {
		t.Errorf("traced run diverged: leader %#x/%#x, round %d/%d",
			plainLeader, tracedLeader, plainRound, tracedRound)
	}
}
