package core

import (
	"fmt"

	"mobiletel/internal/obs"
	"mobiletel/internal/sim"
	"mobiletel/internal/xrand"
)

// BitConvParams fixes the shared structure of a bit convergence execution.
// All nodes must agree on these values (they are global constants derived
// from N and Δ, both of which the model provides to every node).
type BitConvParams struct {
	// K is the ID tag length in bits (the paper's k = ⌈β·log n⌉).
	K int
	// GroupLen is the number of rounds per group (the paper's 2·log Δ).
	GroupLen int
}

// PhaseLen returns the rounds per phase: k groups of GroupLen rounds.
func (p BitConvParams) PhaseLen() int { return p.K * p.GroupLen }

// Validate checks structural sanity.
func (p BitConvParams) Validate() error {
	if p.K < 1 || p.K > 63 {
		return fmt.Errorf("core: K=%d outside [1, 63]", p.K)
	}
	if p.GroupLen < 1 {
		return fmt.Errorf("core: GroupLen=%d < 1", p.GroupLen)
	}
	return nil
}

// DefaultBitConvParams derives the paper's parameters: k = ⌈β·log₂ N⌉ with
// β = 2 (making tag collisions unlikely at n² scale) and group length
// 2·⌈log₂ Δ⌉ (so every group contains a τ̂-stable stretch, Lemma VII.5).
func DefaultBitConvParams(n, maxDegree int) BitConvParams {
	k := 2 * Log2Ceil(n+1)
	if k < 1 {
		k = 1
	}
	if k > 63 {
		k = 63
	}
	groupLen := 2 * Log2Ceil(maxDegree+1)
	if groupLen < 2 {
		groupLen = 2
	}
	return BitConvParams{K: k, GroupLen: groupLen}
}

// BitConv is the Section VII bit convergence leader election algorithm for
// b = 1 with synchronized starts.
//
// Rounds are partitioned into groups of GroupLen rounds and groups into
// phases of K groups. At each phase start a node adopts the smallest ID
// pair it has encountered and publishes its UID as leader. During group i
// of a phase, the node advertises bit i (most-significant first) of its
// smallest pair's tag and runs PPUSH: 0-bit nodes propose to uniformly
// random 1-bit neighbors; connected pairs trade smallest pairs. Received
// pairs take effect only at the next phase boundary.
type BitConv struct {
	params BitConvParams
	self   IDPair

	best    IDPair // smallest pair adopted at the last phase start
	pending IDPair // smallest pair seen so far (takes effect next phase)
	leader  uint64

	// lastBit tracks the previously advertised tag bit so Advertise can
	// emit a KindBit transition when it flips (-1 before the first round).
	lastBit int8
}

var (
	_ sim.Protocol    = (*BitConv)(nil)
	_ sim.Corruptible = (*BitConv)(nil)
)

// NewBitConv creates the protocol instance for one node.
func NewBitConv(uid, tag uint64, params BitConvParams) *BitConv {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if tag == 0 || tag >= uint64(1)<<uint(params.K) {
		panic(fmt.Sprintf("core: tag %d outside [1, 2^%d)", tag, params.K))
	}
	pair := IDPair{UID: uid, Tag: tag}
	return &BitConv{params: params, self: pair, best: pair, pending: pair, leader: uid, lastBit: -1}
}

// phasePosition decomposes a 1-based global round into its position inside
// the phase structure: the 1-based group index and whether this round starts
// a phase.
func (p *BitConv) phasePosition(round int) (group int, phaseStart bool) {
	idx := (round - 1) % p.params.PhaseLen()
	return idx/p.params.GroupLen + 1, idx == 0
}

// groupBit returns the advertised bit for the given 1-based group index:
// bit 1 is the most significant of the K tag bits.
func (p *BitConv) groupBit(group int) uint64 {
	return (p.best.Tag >> uint(p.params.K-group)) & 1
}

// Advertise performs the phase-boundary adoption (the first event of a
// round) and returns the group's tag bit.
func (p *BitConv) Advertise(ctx *sim.Context) uint64 {
	group, phaseStart := p.phasePosition(ctx.Round)
	if phaseStart && p.pending != p.best {
		ctx.EmitTransition(obs.KindPhase, p.best.UID, p.pending.UID)
		ctx.EmitTransition(obs.KindLeader, p.leader, p.pending.UID)
		p.best = p.pending
		p.leader = p.best.UID
	}
	bit := p.groupBit(group)
	if p.lastBit >= 0 && uint64(p.lastBit) != bit {
		ctx.EmitTransition(obs.KindBit, uint64(p.lastBit), bit)
	}
	p.lastBit = int8(bit)
	return bit
}

// Decide runs the PPUSH step: 0-bit nodes propose to a uniformly random
// neighbor advertising 1; everyone else receives.
func (p *BitConv) Decide(ctx *sim.Context) (int32, bool) {
	group, _ := p.phasePosition(ctx.Round)
	if p.groupBit(group) != 0 {
		return 0, false
	}
	target, ok := ctx.RandomNeighborMatching(func(_ int32, tag uint64) bool { return tag == 1 })
	if !ok {
		return 0, false
	}
	return target, true
}

// Outgoing sends the node's current smallest ID pair.
func (p *BitConv) Outgoing(*sim.Context, int32) sim.Message {
	return sim.Message{UIDs: []uint64{p.best.UID}, Aux: p.best.Tag}
}

// Deliver records the peer's pair into the pending minimum.
func (p *BitConv) Deliver(_ *sim.Context, _ int32, msg sim.Message) {
	if len(msg.UIDs) != 1 {
		return
	}
	got := IDPair{UID: msg.UIDs[0], Tag: msg.Aux}
	if got.Less(p.pending) {
		p.pending = got
	}
}

// EndRound is a no-op; adoption happens at phase boundaries in Advertise.
func (p *BitConv) EndRound(*sim.Context) {}

// Leader returns the leader variable, updated at phase boundaries.
func (p *BitConv) Leader() uint64 { return p.leader }

// CorruptState implements sim.Corruptible: the node reverts to its initial
// state (own pair adopted and pending, itself as leader), as if it had just
// started. Phase positions are global-round derived, so a corrupted node
// stays phase-aligned — what BitConv's synchronized-start assumption needs.
func (p *BitConv) CorruptState(*xrand.RNG) {
	p.best, p.pending, p.leader, p.lastBit = p.self, p.self, p.self.UID, -1
}

// Best returns the node's current smallest ID pair (for tests/trace).
func (p *BitConv) Best() IDPair { return p.best }

// Pending returns the pair that will be adopted at the next phase boundary.
func (p *BitConv) Pending() IDPair { return p.pending }

// NewBitConvNetwork builds one BitConv protocol per node: UIDs are supplied,
// tags are drawn from seed via AssignTags, parameters via params.
// It returns the protocols and the tag assignment (for verification).
func NewBitConvNetwork(uids []uint64, params BitConvParams, seed uint64) ([]sim.Protocol, []uint64) {
	tags := AssignTags(len(uids), params.K, xrand.Mix3(seed, 0xb17, 0))
	protocols := make([]sim.Protocol, len(uids))
	for i, uid := range uids {
		protocols[i] = NewBitConv(uid, tags[i], params)
	}
	return protocols, tags
}
