// Package consensus builds single-value consensus on top of the paper's
// leader election primitive — the application its introduction motivates
// ("a key primitive that supports ... event ordering, agreement, and
// synchronization") and its conclusion lists as future work for the model.
//
// The construction piggybacks each node's proposal value on the bit
// convergence ID pairs: whenever a node adopts a smaller ID pair it also
// adopts the value proposed by that pair's owner. When the network
// stabilizes to one leader, every node holds that leader's proposal.
// Agreement and validity are therefore inherited directly from leader
// election's stabilization guarantee:
//
//   - Validity: the decided value is the input of some node (the leader).
//   - Agreement: once stabilized, all nodes hold the same value.
//   - Termination: with probability 1, within the leader election bound
//     (Theorem VIII.2 for the asynchronous-activation variant used here).
//
// The protocol runs the non-synchronized bit convergence algorithm
// (Section VIII), so it tolerates asynchronous activations and component
// merges like its substrate.
package consensus

import (
	"fmt"

	"mobiletel/internal/core"
	"mobiletel/internal/sim"
	"mobiletel/internal/xrand"
)

// Proposer is a consensus node: an AsyncBitConv leader election machine
// carrying a proposal value with its smallest ID pair.
type Proposer struct {
	params core.BitConvParams
	self   core.IDPair

	best  core.IDPair
	value uint64 // proposal of best's owner

	localRound int
	position   int
}

var _ sim.Protocol = (*Proposer)(nil)

// NewProposer creates a consensus node with the given UID, random tag, and
// proposal value.
func NewProposer(uid, tag, value uint64, params core.BitConvParams) *Proposer {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if tag == 0 || tag >= uint64(1)<<uint(params.K) {
		panic(fmt.Sprintf("consensus: tag %d outside [1, 2^%d)", tag, params.K))
	}
	pair := core.IDPair{UID: uid, Tag: tag}
	return &Proposer{params: params, self: pair, best: pair, value: value}
}

// bitValue returns the advertised bit of the current smallest tag at the
// node's current position.
func (p *Proposer) bitValue() uint64 {
	return (p.best.Tag >> uint(p.params.K-p.position)) & 1
}

// encodeTag packs (position, bit) exactly as AsyncBitConv does.
func encodeTag(position int, bit uint64) uint64 {
	return uint64(position-1)*2 + bit
}

// Advertise starts a new local group when due and advertises
// (position, bit).
func (p *Proposer) Advertise(ctx *sim.Context) uint64 {
	if p.localRound%p.params.GroupLen == 0 {
		p.position = 1 + ctx.RNG.Intn(p.params.K)
	}
	return encodeTag(p.position, p.bitValue())
}

// Decide follows the AsyncBitConv PPUSH rule.
func (p *Proposer) Decide(ctx *sim.Context) (int32, bool) {
	if p.bitValue() != 0 {
		return 0, false
	}
	want := encodeTag(p.position, 1)
	target, ok := ctx.RandomNeighborMatching(func(_ int32, tag uint64) bool { return tag == want })
	if !ok {
		return 0, false
	}
	return target, true
}

// Outgoing sends (pair, proposal-of-pair-owner). The UID and the value are
// the two UID-sized payload slots; the tag travels in the auxiliary bits.
func (p *Proposer) Outgoing(*sim.Context, int32) sim.Message {
	return sim.Message{UIDs: []uint64{p.best.UID, p.value}, Aux: p.best.Tag}
}

// Deliver adopts the peer's pair and value together when the pair is
// smaller.
func (p *Proposer) Deliver(_ *sim.Context, _ int32, msg sim.Message) {
	if len(msg.UIDs) != 2 {
		return
	}
	got := core.IDPair{UID: msg.UIDs[0], Tag: msg.Aux}
	if got.Less(p.best) {
		p.best = got
		p.value = msg.UIDs[1]
	}
}

// EndRound advances the local round counter.
func (p *Proposer) EndRound(*sim.Context) { p.localRound++ }

// Leader returns the UID of the current smallest ID pair.
func (p *Proposer) Leader() uint64 { return p.best.UID }

// Value returns the proposal currently associated with the node's smallest
// pair — after stabilization, the decided consensus value.
func (p *Proposer) Value() uint64 { return p.value }

// Best returns the node's current smallest ID pair.
func (p *Proposer) Best() core.IDPair { return p.best }

// AllAgree is the consensus stop condition: every node holds the same
// (leader, value).
func AllAgree(_ int, protocols []sim.Protocol) bool {
	first := protocols[0].(*Proposer)
	for _, p := range protocols[1:] {
		q := p.(*Proposer)
		if q.best != first.best || q.value != first.value {
			return false
		}
	}
	return true
}

// NewNetwork builds a consensus network: one Proposer per node with the
// given proposal values. UIDs and tags are drawn from seed. It returns the
// protocols and the tag assignment.
func NewNetwork(values []uint64, params core.BitConvParams, seed uint64) ([]sim.Protocol, []uint64) {
	n := len(values)
	uids := core.UniqueUIDs(n, xrand.Mix3(seed, 0xc05, 0))
	tags := core.AssignTags(n, params.K, xrand.Mix3(seed, 0xc05, 1))
	protocols := make([]sim.Protocol, n)
	for i := range protocols {
		protocols[i] = NewProposer(uids[i], tags[i], values[i], params)
	}
	return protocols, tags
}

// TagBits returns the advertisement width the consensus protocol needs
// (same as AsyncBitConv).
func TagBits(params core.BitConvParams) int { return core.TagBitsNeeded(params) }
