package consensus_test

import (
	"testing"

	"mobiletel/internal/consensus"
	"mobiletel/internal/core"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
	"mobiletel/internal/xrand"
)

func runConsensus(t *testing.T, sched dyngraph.Schedule, values []uint64, params core.BitConvParams, seed uint64, activations []int) ([]sim.Protocol, sim.Result) {
	t.Helper()
	protocols, _ := consensus.NewNetwork(values, params, seed)
	eng, err := sim.New(sched, protocols, sim.Config{
		Seed:        seed + 1,
		TagBits:     consensus.TagBits(params),
		MaxRounds:   5_000_000,
		Activations: activations,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(consensus.AllAgree)
	if err != nil {
		t.Fatalf("consensus did not terminate: %v", err)
	}
	return protocols, res
}

func inputsFor(n int, seed uint64) []uint64 {
	rng := xrand.New(seed)
	values := make([]uint64, n)
	for i := range values {
		values[i] = rng.Uint64n(1000)
	}
	return values
}

func checkAgreementAndValidity(t *testing.T, protocols []sim.Protocol, values []uint64) {
	t.Helper()
	decided := protocols[0].(*consensus.Proposer).Value()
	leader := protocols[0].Leader()
	for i, p := range protocols {
		q := p.(*consensus.Proposer)
		if q.Value() != decided || q.Leader() != leader {
			t.Fatalf("node %d disagrees: value=%d leader=%d (want %d, %d)",
				i, q.Value(), q.Leader(), decided, leader)
		}
	}
	// Validity: decided value is some node's input.
	found := false
	for _, v := range values {
		if v == decided {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("decided value %d is nobody's input", decided)
	}
}

func TestConsensusOnFamilies(t *testing.T) {
	families := []gen.Family{
		gen.Clique(24),
		gen.RandomRegular(48, 6, 3),
		gen.RingOfCliques(4, 6),
	}
	for _, f := range families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			params := core.DefaultBitConvParams(f.N(), f.MaxDegree())
			values := inputsFor(f.N(), 11)
			protocols, _ := runConsensus(t, dyngraph.NewStatic(f), values, params, 5, nil)
			checkAgreementAndValidity(t, protocols, values)
		})
	}
}

func TestConsensusUnderChange(t *testing.T) {
	f := gen.RandomRegular(32, 4, 9)
	params := core.DefaultBitConvParams(32, 4)
	values := inputsFor(32, 21)
	sched := dyngraph.NewPermuted(f, 2, 7)
	protocols, _ := runConsensus(t, sched, values, params, 3, nil)
	checkAgreementAndValidity(t, protocols, values)
}

func TestConsensusWithAsyncActivations(t *testing.T) {
	n := 32
	f := gen.RandomRegular(n, 4, 17)
	params := core.DefaultBitConvParams(n, 4)
	values := inputsFor(n, 31)
	activations := make([]int, n)
	for i := range activations {
		activations[i] = 1 + (i*29)%150
	}
	protocols, res := runConsensus(t, dyngraph.NewStatic(f), values, params, 7, activations)
	checkAgreementAndValidity(t, protocols, values)
	if res.StabilizedRound < 150 {
		t.Fatalf("agreed at round %d, before the last activation", res.StabilizedRound)
	}
}

func TestConsensusDecidedValueBelongsToLeader(t *testing.T) {
	// The decided value must be the *leader's* input, not just any input.
	n := 24
	f := gen.Clique(n)
	params := core.DefaultBitConvParams(n, n-1)
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(1000 + i) // distinct, position-identifying
	}
	protocols, tags := consensus.NewNetwork(values, params, 13)
	eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{
		Seed: 2, TagBits: consensus.TagBits(params), MaxRounds: 5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(consensus.AllAgree); err != nil {
		t.Fatal(err)
	}

	// Find the owner of the minimum (tag, uid) pair.
	minIdx := 0
	best := protocols[0].(*consensus.Proposer)
	_ = best
	pairs := make([]core.IDPair, n)
	for i, p := range protocols {
		_ = p
		pairs[i] = core.IDPair{Tag: tags[i]}
	}
	// Reconstruct: the leader UID reported must map to the node whose value
	// was decided.
	decided := protocols[0].(*consensus.Proposer).Value()
	for i := range values {
		if values[i] == decided {
			minIdx = i
		}
	}
	// That node's pair must be the global minimum among (tag, uid) pairs.
	winner := protocols[minIdx].(*consensus.Proposer)
	if winner.Leader() != protocols[0].Leader() {
		t.Fatalf("decided value's owner %d is not the leader", minIdx)
	}
}

func TestConsensusStability(t *testing.T) {
	f := gen.RandomRegular(24, 4, 5)
	params := core.DefaultBitConvParams(24, 4)
	values := inputsFor(24, 41)
	protocols, _ := consensus.NewNetwork(values, params, 9)
	eng, err := sim.New(dyngraph.NewStatic(f), protocols, sim.Config{
		Seed: 4, TagBits: consensus.TagBits(params), MaxRounds: 5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(consensus.AllAgree)
	if err != nil {
		t.Fatal(err)
	}
	decided := protocols[0].(*consensus.Proposer).Value()
	eng.RunRounds(res.RoundsExecuted+1, 400)
	for i, p := range protocols {
		if p.(*consensus.Proposer).Value() != decided {
			t.Fatalf("node %d changed its decision after agreement", i)
		}
	}
}

func TestProposerValidation(t *testing.T) {
	params := core.BitConvParams{K: 4, GroupLen: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("bad tag accepted")
		}
	}()
	consensus.NewProposer(1, 0, 5, params)
}

func TestAllAgreeDetectsDisagreement(t *testing.T) {
	params := core.BitConvParams{K: 4, GroupLen: 2}
	a := consensus.NewProposer(1, 2, 10, params)
	b := consensus.NewProposer(2, 3, 20, params)
	if consensus.AllAgree(1, []sim.Protocol{a, b}) {
		t.Fatal("disagreeing nodes reported as agreeing")
	}
	c := consensus.NewProposer(1, 2, 10, params)
	if !consensus.AllAgree(1, []sim.Protocol{a, c}) {
		t.Fatal("identical nodes reported as disagreeing")
	}
}
