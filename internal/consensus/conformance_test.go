package consensus_test

import (
	"testing"

	"mobiletel/internal/consensus"
	"mobiletel/internal/core"
	"mobiletel/internal/sim"
)

func TestProposerConformance(t *testing.T) {
	params := core.DefaultBitConvParams(32, 8)
	uids := core.UniqueUIDs(32, 12)
	tags := core.AssignTags(32, params.K, 13)
	err := sim.CheckConformance(func(node int) sim.Protocol {
		return consensus.NewProposer(uids[node], tags[node], uint64(node), params)
	}, sim.ConformanceConfig{Seed: 6, TagBits: consensus.TagBits(params)})
	if err != nil {
		t.Fatal(err)
	}
}
