// Package aggregate implements data aggregation in the mobile telephone
// model — another of the problems the paper's conclusion proposes for the
// model ("gossip, consensus, and data aggregation").
//
// Two families of aggregates are provided:
//
//   - Extrema (Min/Max): spread exactly like blind gossip leader election;
//     the Section VI analysis applies verbatim, so extrema complete in
//     O((1/α)Δ²log²n) rounds with b = 0.
//   - Averages (Mean, Sum, Count): pairwise mass averaging (a push-sum
//     variant restricted to one connection per node per round, as the model
//     requires). Each node holds a (value, weight) pair; a connected pair
//     replaces both pairs with their averages. Total value-mass and
//     weight-mass are invariant, so every estimate value/weight converges
//     to the true mean; seeding weight 1 at a single node turns the same
//     machinery into a Count (crowd size) estimator.
//
// Mass conservation is the key safety invariant and is enforced in tests to
// within floating-point tolerance.
package aggregate

import (
	"math"

	"mobiletel/internal/sim"
)

// Extremum gossips a running minimum or maximum of the nodes' inputs using
// fair-coin blind gossip (b = 0).
type Extremum struct {
	wantMax bool
	best    float64
}

var _ sim.Protocol = (*Extremum)(nil)

// NewMin creates a minimum-tracking node with the given input.
func NewMin(input float64) *Extremum { return &Extremum{wantMax: false, best: input} }

// NewMax creates a maximum-tracking node with the given input.
func NewMax(input float64) *Extremum { return &Extremum{wantMax: true, best: input} }

// Advertise returns 0 (b = 0).
func (e *Extremum) Advertise(*sim.Context) uint64 { return 0 }

// Decide flips a fair coin; senders target a uniformly random neighbor.
func (e *Extremum) Decide(ctx *sim.Context) (int32, bool) {
	if ctx.RNG.Bool() {
		return 0, false
	}
	target, ok := ctx.RandomNeighbor()
	if !ok {
		return 0, false
	}
	return target, true
}

// Outgoing sends the current extremum in the auxiliary bits.
func (e *Extremum) Outgoing(*sim.Context, int32) sim.Message {
	return sim.Message{Aux: math.Float64bits(e.best)}
}

// Deliver merges the peer's extremum.
func (e *Extremum) Deliver(_ *sim.Context, _ int32, msg sim.Message) {
	v := math.Float64frombits(msg.Aux)
	if e.wantMax {
		if v > e.best {
			e.best = v
		}
	} else if v < e.best {
		e.best = v
	}
}

// EndRound is a no-op.
func (e *Extremum) EndRound(*sim.Context) {}

// Leader reports the current extremum's bits, so sim.AllLeadersEqual
// doubles as the completion detector.
func (e *Extremum) Leader() uint64 { return math.Float64bits(e.best) }

// Estimate returns the node's current extremum.
func (e *Extremum) Estimate() float64 { return e.best }

// Averager runs pairwise mass averaging for Mean/Sum/Count aggregates.
type Averager struct {
	value  float64
	weight float64
}

var _ sim.Protocol = (*Averager)(nil)

// NewAverager creates a node holding the (value, weight) mass pair.
func NewAverager(value, weight float64) *Averager {
	return &Averager{value: value, weight: weight}
}

// Advertise returns 0 (b = 0).
func (a *Averager) Advertise(*sim.Context) uint64 { return 0 }

// Decide flips a fair coin; senders target a uniformly random neighbor.
func (a *Averager) Decide(ctx *sim.Context) (int32, bool) {
	if ctx.RNG.Bool() {
		return 0, false
	}
	target, ok := ctx.RandomNeighbor()
	if !ok {
		return 0, false
	}
	return target, true
}

// Outgoing ships this node's half of the averaging exchange: both sides
// send their pair and both replace their state with the average, conserving
// total mass exactly up to floating-point rounding.
func (a *Averager) Outgoing(*sim.Context, int32) sim.Message {
	return sim.Message{
		UIDs: []uint64{math.Float64bits(a.value), math.Float64bits(a.weight)},
	}
}

// Deliver averages the peer's mass into this node.
func (a *Averager) Deliver(_ *sim.Context, _ int32, msg sim.Message) {
	if len(msg.UIDs) != 2 {
		return
	}
	pv := math.Float64frombits(msg.UIDs[0])
	pw := math.Float64frombits(msg.UIDs[1])
	a.value = (a.value + pv) / 2
	a.weight = (a.weight + pw) / 2
}

// EndRound is a no-op.
func (a *Averager) EndRound(*sim.Context) {}

// Leader is unused for averaging (no exact stabilization point); it reports
// a quantized estimate so coarse agreement checks are possible.
func (a *Averager) Leader() uint64 {
	if a.weight == 0 {
		return 0
	}
	return uint64(int64(a.value / a.weight * 1024))
}

// Estimate returns value/weight, the node's current estimate of the
// aggregate (mean for uniform weights, count/sum for seeded weights).
// It returns NaN while the node's weight is zero (no information yet).
func (a *Averager) Estimate() float64 {
	if a.weight == 0 {
		return math.NaN()
	}
	return a.value / a.weight
}

// Mass returns the node's current (value, weight) mass pair.
func (a *Averager) Mass() (value, weight float64) { return a.value, a.weight }

// NewMeanNetwork builds an averaging network estimating the mean of inputs:
// every node starts with (input, 1).
func NewMeanNetwork(inputs []float64) []sim.Protocol {
	protocols := make([]sim.Protocol, len(inputs))
	for i, x := range inputs {
		protocols[i] = NewAverager(x, 1)
	}
	return protocols
}

// NewCountNetwork builds an averaging network estimating the network size:
// every node starts with value 1; only the designated root starts with
// weight 1. Estimates converge to n.
func NewCountNetwork(n, root int) []sim.Protocol {
	protocols := make([]sim.Protocol, n)
	for i := range protocols {
		w := 0.0
		if i == root {
			w = 1
		}
		protocols[i] = NewAverager(1, w)
	}
	return protocols
}

// NewSumNetwork builds an averaging network estimating the sum of inputs:
// node i starts with (input_i, w) where only the root has w = 1.
func NewSumNetwork(inputs []float64, root int) []sim.Protocol {
	protocols := make([]sim.Protocol, len(inputs))
	for i, x := range inputs {
		w := 0.0
		if i == root {
			w = 1
		}
		protocols[i] = NewAverager(x, w)
	}
	return protocols
}

// MaxRelativeError returns the largest |estimate - truth| / max(|truth|, 1)
// over all nodes; nodes with zero weight count as error 1.
func MaxRelativeError(protocols []sim.Protocol, truth float64) float64 {
	denom := math.Abs(truth)
	if denom < 1 {
		denom = 1
	}
	worst := 0.0
	for _, p := range protocols {
		est := p.(*Averager).Estimate()
		var e float64
		if math.IsNaN(est) {
			e = 1
		} else {
			e = math.Abs(est-truth) / denom
		}
		if e > worst {
			worst = e
		}
	}
	return worst
}

// TotalMass sums (value, weight) over the network — the conserved
// quantities of the averaging dynamics.
func TotalMass(protocols []sim.Protocol) (value, weight float64) {
	for _, p := range protocols {
		v, w := p.(*Averager).Mass()
		value += v
		weight += w
	}
	return value, weight
}

// WithinTolerance returns a stop condition that fires once every node's
// estimate is within rel of truth.
func WithinTolerance(truth, rel float64) sim.StopCondition {
	return func(_ int, protocols []sim.Protocol) bool {
		return MaxRelativeError(protocols, truth) <= rel
	}
}
