package aggregate_test

import (
	"math"
	"testing"

	"mobiletel/internal/aggregate"
	"mobiletel/internal/dyngraph"
	"mobiletel/internal/graph/gen"
	"mobiletel/internal/sim"
	"mobiletel/internal/xrand"
)

func inputs(n int, seed uint64) []float64 {
	rng := xrand.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()*100 - 50
	}
	return xs
}

func TestMinGossipExact(t *testing.T) {
	xs := inputs(50, 3)
	truth := xs[0]
	for _, x := range xs {
		if x < truth {
			truth = x
		}
	}
	protocols := make([]sim.Protocol, len(xs))
	for i, x := range xs {
		protocols[i] = aggregate.NewMin(x)
	}
	eng, err := sim.New(dyngraph.NewStatic(gen.RandomRegular(50, 6, 1)), protocols,
		sim.Config{Seed: 2, MaxRounds: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err != nil {
		t.Fatal(err)
	}
	for i, p := range protocols {
		if got := p.(*aggregate.Extremum).Estimate(); got != truth {
			t.Fatalf("node %d min %v, want %v", i, got, truth)
		}
	}
}

func TestMaxGossipExact(t *testing.T) {
	xs := inputs(40, 7)
	truth := xs[0]
	for _, x := range xs {
		if x > truth {
			truth = x
		}
	}
	protocols := make([]sim.Protocol, len(xs))
	for i, x := range xs {
		protocols[i] = aggregate.NewMax(x)
	}
	eng, err := sim.New(dyngraph.NewPermuted(gen.Cycle(40), 1, 9), protocols,
		sim.Config{Seed: 5, MaxRounds: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(sim.AllLeadersEqual); err != nil {
		t.Fatal(err)
	}
	for i, p := range protocols {
		if got := p.(*aggregate.Extremum).Estimate(); got != truth {
			t.Fatalf("node %d max %v, want %v", i, got, truth)
		}
	}
}

func TestMeanConvergesAndConservesMass(t *testing.T) {
	xs := inputs(64, 11)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	truth := sum / float64(len(xs))

	protocols := aggregate.NewMeanNetwork(xs)
	v0, w0 := aggregate.TotalMass(protocols)

	eng, err := sim.New(dyngraph.NewStatic(gen.RandomRegular(64, 6, 13)), protocols,
		sim.Config{Seed: 6, MaxRounds: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(aggregate.WithinTolerance(truth, 0.01))
	if err != nil {
		t.Fatalf("mean did not converge: %v", err)
	}
	if res.StabilizedRound < 1 {
		t.Fatal("no rounds recorded")
	}

	v1, w1 := aggregate.TotalMass(protocols)
	if math.Abs(v1-v0) > 1e-6*math.Abs(v0)+1e-9 {
		t.Fatalf("value mass drifted: %v -> %v", v0, v1)
	}
	if math.Abs(w1-w0) > 1e-9 {
		t.Fatalf("weight mass drifted: %v -> %v", w0, w1)
	}
	if e := aggregate.MaxRelativeError(protocols, truth); e > 0.01 {
		t.Fatalf("relative error %v after convergence", e)
	}
}

func TestCountEstimatesNetworkSize(t *testing.T) {
	const n = 100
	protocols := aggregate.NewCountNetwork(n, 0)
	eng, err := sim.New(dyngraph.NewStatic(gen.RandomRegular(n, 8, 17)), protocols,
		sim.Config{Seed: 8, MaxRounds: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(aggregate.WithinTolerance(n, 0.02)); err != nil {
		t.Fatalf("count did not converge: %v", err)
	}
	for i, p := range protocols {
		est := p.(*aggregate.Averager).Estimate()
		if math.Abs(est-n)/n > 0.02 {
			t.Fatalf("node %d count estimate %v, want ~%d", i, est, n)
		}
	}
}

func TestSumEstimate(t *testing.T) {
	xs := inputs(48, 19)
	truth := 0.0
	for _, x := range xs {
		truth += x
	}
	protocols := aggregate.NewSumNetwork(xs, 5)
	eng, err := sim.New(dyngraph.NewStatic(gen.RandomRegular(48, 6, 23)), protocols,
		sim.Config{Seed: 10, MaxRounds: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(aggregate.WithinTolerance(truth, 0.02)); err != nil {
		t.Fatalf("sum did not converge: %v", err)
	}
}

func TestMeanUnderMobility(t *testing.T) {
	xs := inputs(50, 29)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	truth := sum / float64(len(xs))
	protocols := aggregate.NewMeanNetwork(xs)
	sched := dyngraph.NewWaypoint(50, 0.3, 0.05, 2, 31)
	eng, err := sim.New(sched, protocols, sim.Config{Seed: 12, MaxRounds: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(aggregate.WithinTolerance(truth, 0.02)); err != nil {
		t.Fatalf("mean under mobility did not converge: %v", err)
	}
}

func TestMassConservationProperty(t *testing.T) {
	// Mass must be conserved after every single round, not just at the end.
	xs := inputs(32, 37)
	protocols := aggregate.NewMeanNetwork(xs)
	v0, w0 := aggregate.TotalMass(protocols)
	stop := func(round int, ps []sim.Protocol) bool {
		v, w := aggregate.TotalMass(ps)
		if math.Abs(v-v0) > 1e-6*math.Abs(v0)+1e-9 || math.Abs(w-w0) > 1e-9 {
			t.Fatalf("round %d: mass drifted (%v,%v) -> (%v,%v)", round, v0, w0, v, w)
		}
		return round >= 2000
	}
	eng, err := sim.New(dyngraph.NewStatic(gen.RandomRegular(32, 4, 41)), protocols,
		sim.Config{Seed: 14, MaxRounds: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(stop); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateNaNWithZeroWeight(t *testing.T) {
	a := aggregate.NewAverager(1, 0)
	if !math.IsNaN(a.Estimate()) {
		t.Fatal("zero-weight estimate should be NaN")
	}
}

func TestMaxRelativeErrorZeroWeightCountsAsOne(t *testing.T) {
	protocols := []sim.Protocol{aggregate.NewAverager(1, 0)}
	if e := aggregate.MaxRelativeError(protocols, 5); e != 1 {
		t.Fatalf("error %v, want 1", e)
	}
}
