package aggregate_test

import (
	"testing"

	"mobiletel/internal/aggregate"
	"mobiletel/internal/sim"
)

func TestAggregateProtocolConformance(t *testing.T) {
	cases := []struct {
		name    string
		factory func(node int) sim.Protocol
	}{
		{"min", func(node int) sim.Protocol { return aggregate.NewMin(float64(node)) }},
		{"max", func(node int) sim.Protocol { return aggregate.NewMax(float64(node)) }},
		{"averager", func(node int) sim.Protocol { return aggregate.NewAverager(float64(node), 1) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := sim.CheckConformance(c.factory, sim.ConformanceConfig{Seed: 7}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
