// Package lint implements mtmlint, the repository's determinism and
// concurrency static-analysis suite.
//
// The simulator's core guarantee — an execution is a pure function of
// (seed, schedule, protocol, config), and the parallel executor is
// bit-identical to the sequential one — rests on invariants no compiler
// checks: all randomness flows through internal/xrand, no result-affecting
// code reads the wall clock, no result-affecting loop observes Go's
// randomized map iteration order, and goroutines never write shared state
// without partitioning or locks. mtmlint enforces those invariants
// mechanically, using only the standard library's go/parser, go/ast, and
// go/types (the module stays dependency-free).
//
// Findings can be suppressed line-by-line with an explanatory comment:
//
//	//mtmlint:<analyzer>-ok <reason>
//
// placed on the offending line or the line directly above it. A
// suppression without a reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
// Only non-test files are loaded: _test.go files are exempt from every
// mtmlint rule by construction.
type Package struct {
	Path      string // import path, e.g. "mobiletel/internal/sim"
	Dir       string // absolute directory
	Files     []*ast.File
	Filenames []string // absolute, parallel to Files
	Types     *types.Package
	Info      *types.Info
	Errors    []error // parse/type errors (analysis may be partial)
}

// Loader parses and type-checks packages of a single module. Module-local
// imports resolve against the module tree; standard-library imports are
// type-checked from GOROOT source, so no compiled export data is needed.
type Loader struct {
	ModuleRoot string // absolute directory containing go.mod
	ModulePath string // module path from go.mod

	Fset    *token.FileSet
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
}

// NewLoader builds a loader for the module rooted at moduleRoot (the
// directory holding go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	root, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modpath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModuleRoot: root,
		ModulePath: modpath,
		Fset:       fset,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Load resolves patterns to package directories and returns the loaded
// packages in deterministic (import path) order. A pattern is either a
// directory, or a directory followed by "/..." meaning its whole subtree.
// Relative patterns resolve against the process working directory, go-tool
// style. Subtree walks skip testdata, vendor, and dot/underscore dirs.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	seen := make(map[string]bool)
	var dirs []string
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func (l *Loader) expand(pat string) ([]string, error) {
	if base, ok := strings.CutSuffix(pat, "..."); ok {
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = "."
		}
		root, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		var dirs []string
		err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			has, err := hasGoFiles(p)
			if err != nil {
				return err
			}
			if has {
				dirs = append(dirs, p)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: expanding %q: %w", pat, err)
		}
		return dirs, nil
	}
	dir, err := filepath.Abs(pat)
	if err != nil {
		return nil, err
	}
	has, err := hasGoFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %q: %w", pat, err)
	}
	if !has {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return []string{dir}, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isLintableGoFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func isLintableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// load parses and type-checks the package with the given module-local
// import path, caching the result.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle involving %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %q: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isLintableGoFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	pkg := &Package{Path: path, Dir: dir}
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, full)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// PackageFor returns the loaded package with the given module-local import
// path, loading (and caching) it on demand. Analyzers that follow static
// calls across package boundaries use it to find callee bodies.
func (l *Loader) PackageFor(path string) (*Package, error) {
	return l.load(path)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load from
// the module tree, everything else from GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
