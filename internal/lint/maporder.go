package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `for ... range` over map values in result-affecting
// packages. Go randomizes map iteration order per run, so any loop whose
// effect depends on visit order silently breaks the simulator's
// determinism guarantee. Two loop shapes are provably order-insensitive
// and allowed:
//
//   - the clear idiom: a body consisting solely of delete(m, k) on the
//     ranged map with the loop's own key;
//   - pure integer accumulation: every statement is x++/x-- or an integer
//     compound assignment (+=, -=, |=, &=, ^=) whose right-hand side does
//     not read the accumulator (integer addition is commutative and
//     associative; float accumulation is not and stays flagged).
//
// Anything else needs an explicit //mtmlint:maporder-ok <reason>.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive map iteration in result-affecting packages",
	Run:  runMaporder,
}

// resultAffecting lists the module-relative subtrees whose computations
// feed experiment results (DESIGN.md "Determinism invariants").
var resultAffecting = []string{
	"internal/core",
	"internal/sim",
	"internal/experiment",
	"internal/dyngraph",
	"internal/expansion",
}

func runMaporder(p *Pass) {
	applies := false
	for _, prefix := range resultAffecting {
		if p.Within(prefix) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := p.Pkg.Info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
				return true
			}
			if isClearIdiom(p, rs) || isIntAccumulation(p, rs) {
				return true
			}
			p.Reportf(rs.Pos(), "iteration over map %s has nondeterministic order in a result-affecting package; iterate a sorted or insertion-ordered key slice instead, or annotate //mtmlint:maporder-ok <reason>", types.ExprString(rs.X))
			return true
		})
	}
}

// isClearIdiom reports whether the loop body is exactly delete(m, k) on
// the ranged map using the loop's key variable.
func isClearIdiom(p *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	es, ok := rs.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := p.Pkg.Info.Uses[fn].(*types.Builtin); !isBuiltin || fn.Name != "delete" {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	arg1, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok || p.Pkg.Info.ObjectOf(arg1) == nil ||
		p.Pkg.Info.ObjectOf(arg1) != p.Pkg.Info.ObjectOf(key) {
		return false
	}
	// The deleted-from map must be the ranged map (same object for
	// identifiers, same spelling for selector chains like c.edgeSet).
	return types.ExprString(ast.Unparen(call.Args[0])) == types.ExprString(ast.Unparen(rs.X))
}

// isIntAccumulation reports whether every statement in the loop body is a
// commutative integer accumulation that never reads its own accumulator.
func isIntAccumulation(p *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !isIntegerExpr(p, s.X) {
				return false
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			default:
				return false
			}
			if !isIntegerExpr(p, s.Lhs[0]) {
				return false
			}
			acc := rootObject(p, s.Lhs[0])
			if acc == nil {
				return false
			}
			for _, id := range identsIn(s.Rhs[0]) {
				if p.Pkg.Info.ObjectOf(id) == acc {
					return false // e.g. sum += sum*x is order-sensitive
				}
			}
		default:
			return false
		}
	}
	return true
}

