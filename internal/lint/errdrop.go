package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errdrop flags calls whose error result is silently discarded: call
// statements, go statements, and deferred calls. An explicit `_ =`
// assignment is a deliberate, reviewable discard and is allowed.
//
// A small exclusion list covers stdlib calls whose error is useless or
// documented to always be nil: fmt.Print/Printf/Println, fmt.Fprint* to
// os.Stdout/os.Stderr, and the Write*/methods of strings.Builder and
// bytes.Buffer.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded error return values",
	Run:  runErrdrop,
}

func runErrdrop(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(s.X).(*ast.CallExpr)
			case *ast.GoStmt:
				call = s.Call
			case *ast.DeferStmt:
				call = s.Call
			}
			if call != nil {
				checkDroppedError(p, call)
			}
			return true
		})
	}
}

func checkDroppedError(p *Pass, call *ast.CallExpr) {
	tv, ok := p.Pkg.Info.Types[call]
	if !ok || tv.Type == nil || !returnsError(tv.Type) {
		return
	}
	if excludedFromErrdrop(p, call) {
		return
	}
	p.Reportf(call.Pos(), "error result of %s is discarded; handle it or assign it to _ explicitly", types.ExprString(call.Fun))
}

func returnsError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return t == types.Universe.Lookup("error").Type() || t.String() == "error"
}

func excludedFromErrdrop(p *Pass, call *ast.CallExpr) bool {
	fn := calledFunc(p, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() == nil {
		return true // builtins never return errors anyway
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		recvType := strings.TrimPrefix(types.TypeString(recv.Type(), nil), "*")
		return recvType == "strings.Builder" || recvType == "bytes.Buffer"
	}
	if fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		// Excluded only when the writer provably cannot fail usefully:
		// os.Stdout/os.Stderr (no meaningful recovery) and the in-memory
		// strings.Builder/bytes.Buffer (documented to never return errors).
		// Writes to real files and generic io.Writers stay flagged.
		if len(call.Args) == 0 {
			return false
		}
		w := ast.Unparen(call.Args[0])
		switch types.TypeString(p.Pkg.Info.TypeOf(w), nil) {
		case "*strings.Builder", "*bytes.Buffer":
			return true
		}
		sel, ok := w.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		obj := p.Pkg.Info.Uses[sel.Sel]
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
			(obj.Name() == "Stdout" || obj.Name() == "Stderr")
	}
	return false
}
