package lint

import (
	"go/ast"
	"go/types"
)

// Atomicwrite forbids direct os.WriteFile / os.Create output in cmd/
// packages: a command killed mid-write (crash, ^C, mtmexp -die-after)
// leaves a torn half-file that later tooling misparses or that silently
// replaces a good previous result. Command output must go through
// internal/atomicwrite (temp file in the destination directory + fsync +
// rename), which publishes either the whole file or nothing. Reads
// (os.Open, os.ReadFile) are unaffected, _test.go files are never loaded,
// and genuinely non-atomic sinks (an append-only log, a named pipe) can be
// waived with //mtmlint:atomicwrite-ok <reason>.
var Atomicwrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "forbid os.WriteFile/os.Create in cmd/; route output through internal/atomicwrite so interrupted commands never leave torn files",
	Run:  runAtomicwrite,
}

func runAtomicwrite(p *Pass) {
	if !p.Within("cmd") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			if fn.Name() == "WriteFile" || fn.Name() == "Create" {
				p.Reportf(id.Pos(), "os.%s in cmd/ leaves a torn file if the process dies mid-write; use internal/atomicwrite, which publishes whole files or nothing", fn.Name())
			}
			return true
		})
	}
}
