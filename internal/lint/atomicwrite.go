package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Atomicwrite forbids direct os.WriteFile / os.Create output in cmd/
// packages: a command killed mid-write (crash, ^C, mtmexp -die-after)
// leaves a torn half-file that later tooling misparses or that silently
// replaces a good previous result. Command output must go through
// internal/atomicwrite (temp file in the destination directory + fsync +
// rename), which publishes either the whole file or nothing. Also flagged:
//
//   - os.OpenFile whose flag argument constant-folds to include both
//     O_CREATE and O_TRUNC — that is os.Create spelled longhand, and
//     truncates the previous good file before the first byte lands
//     (O_CREATE|O_APPEND logs are fine);
//   - bufio.NewWriter / bufio.NewWriterSize wrapping a raw *os.File:
//     buffered bytes die with the process even when the underlying write
//     path was otherwise safe, and a missed Flush tears the tail silently
//     (os.Stdout and os.Stderr are exempt — terminal output is not a
//     published artifact).
//
// Reads (os.Open, os.ReadFile) are unaffected, _test.go files are never
// loaded, and genuinely non-atomic sinks (an append-only log, a named
// pipe) can be waived with //mtmlint:atomicwrite-ok <reason>.
var Atomicwrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "forbid torn-file output in cmd/ (os.WriteFile/os.Create, O_CREATE|O_TRUNC opens, bufio over raw *os.File); route output through internal/atomicwrite",
	Run:  runAtomicwrite,
}

func runAtomicwrite(p *Pass) {
	if !p.Within("cmd") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				fn, ok := p.Pkg.Info.Uses[x].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
					return true
				}
				if fn.Name() == "WriteFile" || fn.Name() == "Create" {
					p.Reportf(x.Pos(), "os.%s in cmd/ leaves a torn file if the process dies mid-write; use internal/atomicwrite, which publishes whole files or nothing", fn.Name())
				}
			case *ast.CallExpr:
				checkOpenFile(p, x)
				checkBufioOverFile(p, x)
			}
			return true
		})
	}
}

// checkOpenFile flags os.OpenFile calls whose flag argument provably
// includes O_CREATE|O_TRUNC — os.Create in disguise.
func checkOpenFile(p *Pass, call *ast.CallExpr) {
	fn := staticFunc(p.Pkg.Info, call.Fun)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" ||
		fn.Name() != "OpenFile" || len(call.Args) < 2 {
		return
	}
	flags, ok := constIntValue(p, call.Args[1])
	if !ok {
		return
	}
	creat, ok1 := osFlagValue(fn.Pkg(), "O_CREATE")
	trunc, ok2 := osFlagValue(fn.Pkg(), "O_TRUNC")
	if !ok1 || !ok2 {
		return
	}
	if flags&creat != 0 && flags&trunc != 0 {
		p.Reportf(call.Pos(), "os.OpenFile with O_CREATE|O_TRUNC in cmd/ is os.Create in disguise: it destroys the previous file before the new one is complete; use internal/atomicwrite")
	}
}

// checkBufioOverFile flags bufio.NewWriter/NewWriterSize whose writer is
// statically a raw *os.File (other than os.Stdout/os.Stderr).
func checkBufioOverFile(p *Pass, call *ast.CallExpr) {
	fn := staticFunc(p.Pkg.Info, call.Fun)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "bufio" ||
		(fn.Name() != "NewWriter" && fn.Name() != "NewWriterSize") ||
		len(call.Args) < 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if isStdStream(p, arg) {
		return
	}
	t := p.Pkg.Info.TypeOf(arg)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "os" || named.Obj().Name() != "File" {
		return
	}
	p.Reportf(call.Pos(), "bufio.%s over a raw *os.File in cmd/: buffered bytes die with the process and a missed Flush tears the file tail; use internal/atomicwrite", fn.Name())
}

// isStdStream reports whether the expression is os.Stdout or os.Stderr.
func isStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}

// constIntValue returns the expression's constant-folded integer value.
func constIntValue(p *Pass, e ast.Expr) (int64, bool) {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// osFlagValue looks the named flag constant up in the os package scope.
func osFlagValue(osPkg *types.Package, name string) (int64, bool) {
	c, ok := osPkg.Scope().Lookup(name).(*types.Const)
	if !ok {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(c.Val()))
}
