package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is happensbefore's second proof domain: the persistent
// worker-pool dispatch idiom (internal/sim's workerPool). The chunk proofs
// in happensbefore.go cover what the dispatched workers do to engine state;
// the epoch-publish proof here covers how the dispatch slots themselves —
// the fn/bounds fields a pool goroutine reads — travel from the dispatcher
// to long-lived workers without a per-dispatch channel or lock.
//
// The idiom under proof (see internal/sim/pool.go):
//
//	publisher                          worker goroutine
//	---------                          ----------------
//	plain fields = ...                 acquire (epoch.Load != last)
//	atomic epoch.Add / .Store          read plain fields
//	join: spin on done.Load            atomic done.Add
//	plain fields = nil
//
// A type enters the proof when some `go` statement spawns one of its
// methods and the type carries sync/atomic fields. Its plain fields are
// then classified:
//
//   - *immutable*: written by no method — construction-time state, made
//     visible to workers by the `go` statement itself;
//   - *mutex-guarded*: every method that touches the field also locks a
//     sync.Mutex field of the receiver (the park/wake bookkeeping around a
//     sync.Cond). Granularity is the method body, backed by `make race`;
//   - *epoch-published*: everything else. Publisher methods may write such
//     a field only before an atomic release (a .Add/.Store call on an
//     atomic field of the receiver) or after an atomic join (a for loop
//     spinning on a .Load), and spawned workers may only read it after an
//     acquire — a .Load on an atomic field, directly or via a method call
//     like await — and may never write it.
//
// Boundaries: the single-dispatcher assumption (engine methods are not
// called concurrently) is the engine's documented API contract, and writes
// that precede the `go` spawn in a constructor are ordinary go-statement
// happens-before — neither needs a proof here. Both are exercised under
// the race detector by `make race-smoke`'s pool stress test.

// hbCheckEpochPools finds goroutine-spawned methods whose receiver type
// carries atomic fields and proves the epoch-publish idiom over every
// method of that type.
func hbCheckEpochPools(p *Pass) {
	types_ := collectSpawnedReceivers(p)
	if len(types_) == 0 {
		return
	}
	decls := funcDecls(p.Pkg)
	for named, spawned := range types_ {
		ep := newEpochPool(p, named, spawned, decls)
		if ep == nil {
			continue // no atomic fields: not this idiom (sharedwrite's domain)
		}
		ep.check()
	}
}

// collectSpawnedReceivers maps each package-local named struct type to the
// set of its methods launched by a `go` statement anywhere in the package.
func collectSpawnedReceivers(p *Pass) map[*types.Named]map[*types.Func]bool {
	var out map[*types.Named]map[*types.Func]bool
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			named := receiverNamed(fn)
			if named == nil || named.Obj().Pkg() != p.Pkg.Types {
				return true
			}
			if out == nil {
				out = map[*types.Named]map[*types.Func]bool{}
			}
			if out[named] == nil {
				out[named] = map[*types.Func]bool{}
			}
			out[named][fn] = true
			return true
		})
	}
	return out
}

// receiverNamed returns the named type behind fn's (possibly pointer)
// receiver, or nil for plain functions.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// epochPool is the proof state for one spawned-receiver type.
type epochPool struct {
	p       *Pass
	named   *types.Named
	spawned map[*types.Func]bool // methods launched via `go`, plus callees
	decls   map[*types.Func]*ast.FuncDecl
	methods []*ast.FuncDecl

	atomics map[*types.Var]bool // sync/atomic-typed fields
	mutexes map[*types.Var]bool // sync.Mutex / sync.Cond fields
	plain   map[*types.Var]bool // everything else
}

func newEpochPool(p *Pass, named *types.Named, spawned map[*types.Func]bool, decls map[*types.Func]*ast.FuncDecl) *epochPool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	ep := &epochPool{
		p: p, named: named, spawned: spawned, decls: decls,
		atomics: map[*types.Var]bool{},
		mutexes: map[*types.Var]bool{},
		plain:   map[*types.Var]bool{},
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch fieldPkgPath(f.Type()) {
		case "sync/atomic":
			ep.atomics[f] = true
		case "sync":
			ep.mutexes[f] = true
		default:
			ep.plain[f] = true
		}
	}
	if len(ep.atomics) == 0 {
		return nil
	}
	for fn, decl := range decls {
		if receiverNamed(fn) == named && decl.Body != nil {
			ep.methods = append(ep.methods, decl)
		}
	}
	// Close the spawned set over same-receiver calls: a worker's helper
	// (await) is part of the worker side of the proof.
	for changed := true; changed; {
		changed = false
		for _, decl := range ep.methods {
			fn, _ := p.Pkg.Info.Defs[decl.Name].(*types.Func)
			if fn == nil || !ep.spawned[fn] {
				continue
			}
			recv := declRecvObj(p, decl)
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !isObjUse(p, sel.X, recv) {
					return true
				}
				callee, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
				if ok && receiverNamed(callee) == ep.named && !ep.spawned[callee] {
					ep.spawned[callee] = true
					changed = true
				}
				return true
			})
		}
	}
	return ep
}

// fieldPkgPath returns the defining package path of a field's (possibly
// pointer) named type, or "".
func fieldPkgPath(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}

// declRecvObj returns the receiver object of a method declaration.
func declRecvObj(p *Pass, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
		return nil
	}
	return p.Pkg.Info.Defs[decl.Recv.List[0].Names[0]]
}

func isObjUse(p *Pass, x ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	return ok && obj != nil && p.Pkg.Info.ObjectOf(id) == obj
}

// check runs the field classification and both sides of the proof.
func (ep *epochPool) check() {
	written := ep.fieldsWrittenByMethods()
	guarded := ep.mutexGuardedFields()
	for _, decl := range ep.methods {
		fn, _ := ep.p.Pkg.Info.Defs[decl.Name].(*types.Func)
		if fn == nil {
			continue
		}
		if ep.spawned[fn] {
			ep.checkWorker(decl, written, guarded)
		} else {
			ep.checkPublisher(decl, written, guarded)
		}
	}
}

// fieldsWrittenByMethods returns the plain fields some method of the type
// writes; the rest are construction-time immutable and exempt.
func (ep *epochPool) fieldsWrittenByMethods() map[*types.Var]bool {
	written := map[*types.Var]bool{}
	for _, decl := range ep.methods {
		recv := declRecvObj(ep.p, decl)
		ep.forFieldAccesses(decl.Body, recv, func(field *types.Var, n ast.Node, write bool) {
			if write {
				written[field] = true
			}
		})
	}
	return written
}

// mutexGuardedFields returns the plain fields whose every access sits in a
// method body that locks a receiver mutex — the cond-variable bookkeeping.
func (ep *epochPool) mutexGuardedFields() map[*types.Var]bool {
	guarded := map[*types.Var]bool{}
	unguarded := map[*types.Var]bool{}
	for _, decl := range ep.methods {
		recv := declRecvObj(ep.p, decl)
		locks := ep.bodyLocksMutex(decl.Body, recv)
		ep.forFieldAccesses(decl.Body, recv, func(field *types.Var, n ast.Node, write bool) {
			if locks {
				guarded[field] = true
			} else {
				unguarded[field] = true
			}
		})
	}
	for f := range unguarded {
		delete(guarded, f)
	}
	return guarded
}

// bodyLocksMutex reports whether the body calls Lock on a mutex field of
// the receiver.
func (ep *epochPool) bodyLocksMutex(body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f, op := ep.atomicOp(call, recv, ep.mutexes); f != nil && op == "Lock" {
			found = true
			return false
		}
		return true
	})
	return found
}

// atomicOp matches recv.field.Op(...) for a field in the given class and
// returns the field and method name.
func (ep *epochPool) atomicOp(call *ast.CallExpr, recv types.Object, class map[*types.Var]bool) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || !isObjUse(ep.p, inner.X, recv) {
		return nil, ""
	}
	field, ok := ep.p.Pkg.Info.Uses[inner.Sel].(*types.Var)
	if !ok || !class[field] {
		return nil, ""
	}
	return field, sel.Sel.Name
}

// forFieldAccesses visits every plain-field access of the receiver in the
// body: recv.field reads, and writes when the access is an assignment or
// inc/dec target.
func (ep *epochPool) forFieldAccesses(body *ast.BlockStmt, recv types.Object, visit func(field *types.Var, n ast.Node, write bool)) {
	if recv == nil {
		return
	}
	writes := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				writes[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			writes[ast.Unparen(s.X)] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !isObjUse(ep.p, sel.X, recv) {
			return true
		}
		field, ok := ep.p.Pkg.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !ep.plain[field] {
			return true
		}
		visit(field, sel, writes[sel])
		return true
	})
}

// checkPublisher proves the dispatcher side: each write to an
// epoch-published field must precede an atomic release or follow an atomic
// join in the same body.
func (ep *epochPool) checkPublisher(decl *ast.FuncDecl, written, guarded map[*types.Var]bool) {
	recv := declRecvObj(ep.p, decl)
	if recv == nil {
		return
	}
	var releases []token.Pos // recv.atomic.Add / .Store call positions
	var joins []token.Pos    // End() of for loops spinning on recv.atomic.Load
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if f, op := ep.atomicOp(s, recv, ep.atomics); f != nil && (op == "Add" || op == "Store") {
				releases = append(releases, s.Pos())
			}
		case *ast.ForStmt:
			if s.Cond != nil && ep.exprLoadsAtomic(s.Cond, recv) {
				joins = append(joins, s.End())
			}
		}
		return true
	})
	ep.forFieldAccesses(decl.Body, recv, func(field *types.Var, n ast.Node, write bool) {
		if !write || guarded[field] || !written[field] {
			return // reads are dispatcher-owned; see the boundary note above
		}
		for _, rel := range releases {
			if n.Pos() < rel {
				return // published before the release edge
			}
		}
		for _, join := range joins {
			if n.Pos() > join {
				return // sequenced after the workers' done edge
			}
		}
		ep.p.Reportf(n.Pos(), "epoch-publish: %s.%s writes dispatch slot %s outside the publish window; slot writes must precede the atomic release (.Add/.Store) or follow the atomic join spin", ep.named.Obj().Name(), decl.Name.Name, field.Name())
	})
}

// checkWorker proves the worker side: epoch-published fields are read only
// after an acquire and never written.
func (ep *epochPool) checkWorker(decl *ast.FuncDecl, written, guarded map[*types.Var]bool) {
	recv := declRecvObj(ep.p, decl)
	if recv == nil {
		return
	}
	var acquires []token.Pos
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ep.callAcquires(call, recv) {
			acquires = append(acquires, call.Pos())
		}
		return true
	})
	ep.forFieldAccesses(decl.Body, recv, func(field *types.Var, n ast.Node, write bool) {
		if guarded[field] || !written[field] {
			return
		}
		if write {
			ep.p.Reportf(n.Pos(), "epoch-publish: spawned worker %s.%s writes dispatch slot %s; workers may only read published slots (signal through an atomic instead)", ep.named.Obj().Name(), decl.Name.Name, field.Name())
			return
		}
		for _, acq := range acquires {
			if acq < n.Pos() {
				return // read after an acquire edge
			}
		}
		ep.p.Reportf(n.Pos(), "epoch-publish: spawned worker %s.%s reads dispatch slot %s before any atomic acquire (.Load on an atomic field, directly or via a helper)", ep.named.Obj().Name(), decl.Name.Name, field.Name())
	})
}

// callAcquires reports whether the call performs an atomic Load on a
// receiver field — directly, or via a same-receiver method that does.
func (ep *epochPool) callAcquires(call *ast.CallExpr, recv types.Object) bool {
	if f, op := ep.atomicOp(call, recv, ep.atomics); f != nil && op == "Load" {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isObjUse(ep.p, sel.X, recv) {
		return false
	}
	callee, ok := ep.p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || receiverNamed(callee) != ep.named {
		return false
	}
	cdecl := ep.decls[callee]
	if cdecl == nil || cdecl.Body == nil {
		return false
	}
	crecv := declRecvObj(ep.p, cdecl)
	return ep.exprLoadsAtomic(cdecl.Body, crecv)
}

// exprLoadsAtomic reports whether the subtree contains recv.atomic.Load().
func (ep *epochPool) exprLoadsAtomic(root ast.Node, recv types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f, op := ep.atomicOp(call, recv, ep.atomics); f != nil && op == "Load" {
			found = true
			return false
		}
		return true
	})
	return found
}
