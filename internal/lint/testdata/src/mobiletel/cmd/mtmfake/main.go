// Command mtmfake is an atomicwrite fixture: direct file writes in cmd/
// are flagged, reads and suppressed writes are not.
package main

import "os"

func main() {
	// Writes bypassing internal/atomicwrite are flagged: a crash mid-write
	// leaves a torn file.
	_ = os.WriteFile("out.csv", []byte("a,b\n"), 0o644) // want `os.WriteFile in cmd/ leaves a torn file`

	f, _ := os.Create("trace.jsonl") // want `os.Create in cmd/ leaves a torn file`
	_ = f.Close()

	// Reads are fine.
	_, _ = os.ReadFile("in.csv")
	in, _ := os.Open("in.jsonl")
	_ = in.Close()

	// Reasoned suppressions are honored.
	_ = os.WriteFile("audit.log", nil, 0o644) //mtmlint:atomicwrite-ok append-only audit log, torn tail is tolerated

	_ = os.Remove("out.csv") // other os calls are out of scope
}
