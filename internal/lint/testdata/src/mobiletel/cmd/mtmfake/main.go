// Command mtmfake is an atomicwrite fixture: direct file writes in cmd/
// are flagged, reads and suppressed writes are not.
package main

import (
	"bufio"
	"os"
)

func main() {
	// Writes bypassing internal/atomicwrite are flagged: a crash mid-write
	// leaves a torn file.
	_ = os.WriteFile("out.csv", []byte("a,b\n"), 0o644) // want `os.WriteFile in cmd/ leaves a torn file`

	f, _ := os.Create("trace.jsonl") // want `os.Create in cmd/ leaves a torn file`
	_ = f.Close()

	// os.Create spelled longhand is caught through constant folding.
	g, _ := os.OpenFile("out.json", os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644) // want `os.OpenFile with O_CREATE\|O_TRUNC in cmd/ is os.Create in disguise`
	_ = g.Close()

	// An append-only open never truncates the previous good file: allowed.
	logf, _ := os.OpenFile("run.log", os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)

	// Buffering a raw *os.File loses the tail if the process dies before
	// Flush, even on an otherwise safe path.
	w := bufio.NewWriter(logf) // want `bufio.NewWriter over a raw \*os.File in cmd/`
	_, _ = w.WriteString("x\n")

	ws := bufio.NewWriterSize(logf, 1<<16) // want `bufio.NewWriterSize over a raw \*os.File in cmd/`
	_ = ws.Flush()

	// Terminal output is not a published artifact: std streams are exempt.
	stdout := bufio.NewWriter(os.Stdout)
	_ = stdout.Flush()

	// Reads are fine.
	_, _ = os.ReadFile("in.csv")
	in, _ := os.Open("in.jsonl")
	_ = in.Close()

	// Reasoned suppressions are honored.
	_ = os.WriteFile("audit.log", nil, 0o644) //mtmlint:atomicwrite-ok append-only audit log, torn tail is tolerated

	_ = os.Remove("out.csv") // other os calls are out of scope
}
