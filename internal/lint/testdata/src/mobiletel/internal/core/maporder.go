// Package core is a maporder fixture: it sits in a result-affecting
// subtree, so order-sensitive map iteration must be flagged.
package core

// Keys leaks map iteration order into a slice: flagged.
func Keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m { // want `iteration over map m has nondeterministic order`
		out = append(out, k)
	}
	return out
}

// SumInts accumulates integers: commutative, order-insensitive, allowed.
func SumInts(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// CountBig mixes counting forms: still pure integer accumulation, allowed.
func CountBig(m map[string]int, bits uint64) (int, uint64) {
	n := 0
	for _, v := range m {
		n++
		bits |= uint64(v)
	}
	return n, bits
}

// SumFloats accumulates floats, which is order-sensitive: flagged.
func SumFloats(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want `iteration over map m has nondeterministic order`
		s += v
	}
	return s
}

// Clear uses the delete-only clear idiom: provably order-insensitive.
func Clear(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// SelfFeedingSum reads its own accumulator on the right-hand side, which
// breaks commutativity: flagged.
func SelfFeedingSum(m map[int]int) int {
	s := 0
	for _, v := range m { // want `iteration over map m has nondeterministic order`
		s += s/2 + v
	}
	return s
}

// Suppressed carries a reasoned suppression: silenced.
func Suppressed(m map[int]bool) []int {
	var out []int
	//mtmlint:maporder-ok fixture: output is sorted by the caller before use
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Reasonless carries a suppression without a reason: the suppression is
// itself reported and the underlying finding still fires.
func Reasonless(m map[int]bool) []int {
	var out []int
	//mtmlint:maporder-ok // want `suppression for maporder is missing a reason`
	for k := range m { // want `iteration over map m has nondeterministic order`
		out = append(out, k)
	}
	return out
}
