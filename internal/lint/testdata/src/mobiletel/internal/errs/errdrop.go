// Package errs is an errdrop fixture.
package errs

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func value() (int, error) { return 7, nil }

// Drop exercises flagged and allowed discard shapes.
func Drop(f *os.File, w *strings.Builder) {
	mayFail() // want `error result of mayFail is discarded`
	value()   // want `error result of value is discarded`

	_ = mayFail() // allowed: explicit, reviewable discard
	v, _ := value()
	_ = v

	fmt.Println("hi")                  // allowed: excluded stdlib print
	fmt.Fprintf(os.Stderr, "x")        // allowed: stderr write
	fmt.Fprintf(w, "y")                // allowed: strings.Builder never fails
	w.WriteString("z")                 // allowed: strings.Builder method
	fmt.Fprintf(f, "payload %d\n", 42) // want `error result of fmt.Fprintf is discarded`
}

// DeferredDrop leaks the close error of a written file.
func DeferredDrop(f *os.File) {
	defer f.Close() // want `error result of f.Close is discarded`
}

// GoDrop silently loses an error on another goroutine.
func GoDrop() {
	go mayFail() // want `error result of mayFail is discarded`
}

// Suppressed carries a reasoned suppression.
func Suppressed() {
	//mtmlint:errdrop-ok fixture: best-effort cleanup, failure is benign
	mayFail()
}
