// Package xrand is a minimal stub of the real internal/xrand, just enough
// for fixture packages to type-check against.
package xrand

// RNG is a stub generator.
type RNG struct{ s uint64 }

// New returns a stub generator.
func New(seed uint64) *RNG { return &RNG{s: seed} }

// Derive returns a stub generator for the stream (seed, a, b).
func Derive(seed, a, b uint64) *RNG { return New(seed ^ a<<1 ^ b<<2) }

// Intn returns a deterministic pseudo-value in [0, n).
func (r *RNG) Intn(n int) int {
	r.s = r.s*6364136223846793005 + 1
	return int(r.s>>33) % n
}
