// Package shared is a sharedwrite fixture. The flagged functions contain
// real data races; they exist to be analyzed, never executed.
package shared

import "sync"

// Fill partitions by a goroutine-local parameter: allowed.
func Fill(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
	return out
}

// BrokenMap writes a captured map concurrently.
func BrokenMap(keys []string) map[string]int {
	m := map[string]int{}
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		i, k := i, k
		go func() {
			defer wg.Done()
			m[k] = i // want `goroutine writes to captured map m without synchronization`
		}()
	}
	wg.Wait()
	return m
}

// BrokenIndex writes a captured slice at a captured index.
func BrokenIndex(vals []int) {
	done := make(chan struct{})
	j := 0
	go func() {
		vals[j] = 1 // want `goroutine writes to captured slice vals at a captured index`
		close(done)
	}()
	<-done
}

// BrokenAppend races on the slice header itself.
func BrokenAppend(n int) []int {
	var out []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			out = append(out, i) // want `goroutine writes to captured variable out without synchronization`
		}()
	}
	wg.Wait()
	return out
}

// BrokenCounter increments a captured scalar.
func BrokenCounter(n int) int {
	c := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c++ // want `goroutine writes to captured variable c without synchronization`
		}()
	}
	wg.Wait()
	return c
}

// Guarded locks around its writes: the lock heuristic silences it.
func Guarded(keys []string) map[string]int {
	m := map[string]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		i, k := i, k
		go func() {
			defer wg.Done()
			mu.Lock()
			m[k] = i
			mu.Unlock()
		}()
	}
	wg.Wait()
	return m
}

// ChannelOwned writes goroutine-local state and communicates by channel:
// allowed (locals are not captured, sends are safe).
func ChannelOwned(n int) []int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			local := i * i
			ch <- local
		}(i)
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	return out
}

// parallelFor mimics internal/sim's chunked dispatcher: the happensbefore
// analyzer keys on the callee name alone, so this sequential stand-in
// exercises the same code path.
func parallelFor(n int, fn func(w, lo, hi int)) {
	fn(0, 0, n)
}

// ChunkedFill partitions by the parallelFor chunk bounds: happensbefore
// proves every write index stays within [lo, hi).
func ChunkedFill(n int) []int {
	out := make([]int, n)
	parallelFor(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
	return out
}

// BrokenChunkCounter accumulates into a captured scalar from the worker.
func BrokenChunkCounter(n int) int {
	c := 0
	parallelFor(n, func(w, lo, hi int) {
		c += hi - lo // want `parallelFor worker writes shared variable c without partitioning`
	})
	return c
}

// BrokenChunkIndex writes a captured slice at a fully captured index,
// whose interval the analyzer cannot bound.
func BrokenChunkIndex(n int) []int {
	out := make([]int, n)
	j := 0
	parallelFor(n, func(w, lo, hi int) {
		out[j] = w // want `cannot prove write of out\[j\] stays in the worker's chunk`
	})
	return out
}

// Suppressed documents a deliberate single-writer pattern.
func Suppressed() int {
	v := 0
	done := make(chan struct{})
	go func() {
		//mtmlint:sharedwrite-ok fixture: single writer, read happens after done closes
		v = 42
		close(done)
	}()
	<-done
	return v
}
