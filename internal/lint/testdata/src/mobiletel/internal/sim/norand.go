// Package sim is a norand fixture: it sits under internal/, where ambient
// randomness and wall-clock reads are forbidden.
package sim

import (
	crand "crypto/rand" // want `import of "crypto/rand" is forbidden under internal/`
	"math/rand"         // want `import of "math/rand" is forbidden under internal/`
	"time"
)

// Jitter uses both forbidden sources.
func Jitter() int {
	t := time.Now() // want `time.Now is forbidden under internal/`
	_ = t
	return rand.Intn(10)
}

// Fill drops into crypto/rand.
func Fill(b []byte) {
	_, _ = crand.Read(b)
}

// Elapsed reads the wall clock through time.Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since is forbidden under internal/`
}

// Timestamped shows a reasoned suppression covering its own line and the
// line directly below.
func Timestamped() int64 {
	start := time.Now() //mtmlint:norand-ok fixture: wall clock decorates a log line, never a result
	return time.Since(start).Nanoseconds()
}

// Hold only uses time for duration arithmetic, which is fine.
func Hold(d time.Duration) time.Duration { return 2 * d }
