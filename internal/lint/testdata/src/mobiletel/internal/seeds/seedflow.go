// Package seeds is a seedflow fixture: constant seeds passed to
// xrand.New/Derive are untraceable and must be flagged.
package seeds

import "mobiletel/internal/xrand"

// Config mirrors sim.Config's seed plumbing.
type Config struct{ Seed uint64 }

const defaultSeed = 42

// Good derives from configuration: allowed.
func Good(cfg Config) *xrand.RNG { return xrand.New(cfg.Seed + 4) }

// GoodStream uses constant stream selectors with a flowing seed: allowed
// (only the first argument is the seed).
func GoodStream(cfg Config) *xrand.RNG { return xrand.Derive(cfg.Seed, 0x9e, 0) }

// Bad bakes in a literal seed.
func Bad() *xrand.RNG { return xrand.New(12345) } // want `seed argument of xrand.New is the constant 12345`

// BadConst launders the literal through a named constant: still constant.
func BadConst() *xrand.RNG { return xrand.New(defaultSeed + 1) } // want `seed argument of xrand.New is the constant 43`

// BadDerive hardcodes the seed of a derived stream.
func BadDerive() *xrand.RNG { return xrand.Derive(0xdead, 1, 2) } // want `seed argument of xrand.Derive is the constant 57005`

// Tolerated carries a reasoned suppression.
func Tolerated() *xrand.RNG {
	//mtmlint:seedflow-ok fixture: demo seed, output is illustrative only
	return xrand.New(99)
}
