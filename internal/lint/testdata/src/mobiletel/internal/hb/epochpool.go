package hb

import (
	"sync"
	"sync/atomic"
)

// pool mirrors internal/sim's workerPool: the canonical epoch-publish
// dispatcher. Plain dispatch slots (fn, bounds) are published before the
// atomic release, read by spawned workers only after an acquire, cleared
// only after the atomic join, and the park bookkeeping stays under the
// mutex — no findings.
type pool struct {
	fn     func(w, lo, hi int)
	bounds []int

	epoch atomic.Uint64
	done  atomic.Int64

	mu     sync.Mutex
	cond   *sync.Cond
	parked int

	workers int
}

func newPool(workers int) *pool {
	p := &pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	for w := 1; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

func (p *pool) dispatch(fn func(w, lo, hi int), bounds []int) {
	p.fn, p.bounds = fn, bounds
	p.done.Store(0)
	p.epoch.Add(1)
	p.mu.Lock()
	if p.parked > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	fn(0, bounds[0], bounds[1])
	for p.done.Load() < int64(p.workers-1) {
	}
	p.fn, p.bounds = nil, nil
}

func (p *pool) worker(w int) {
	last := uint64(0)
	for {
		last = p.await(last)
		fn := p.fn
		if fn == nil {
			p.done.Add(1)
			return
		}
		fn(w, p.bounds[w], p.bounds[w+1])
		p.done.Add(1)
	}
}

func (p *pool) await(last uint64) uint64 {
	for {
		if e := p.epoch.Load(); e != last {
			return e
		}
		p.mu.Lock()
		if e := p.epoch.Load(); e != last {
			p.mu.Unlock()
			return e
		}
		p.parked++
		p.cond.Wait()
		p.parked--
		p.mu.Unlock()
	}
}

// leakyPool breaks the idiom in every direction the checker proves: the
// publisher mutates a slot between the release and the join, the worker
// reads a slot before any acquire, and the worker writes a slot outright.
type leakyPool struct {
	fn    func(int)
	arg   int
	epoch atomic.Uint64
	done  atomic.Int64
}

func newLeakyPool() *leakyPool {
	p := &leakyPool{}
	go p.worker()
	return p
}

func (p *leakyPool) dispatch(fn func(int)) {
	p.fn = fn
	p.done.Store(0)
	p.epoch.Add(1)
	p.arg = 7 // want `epoch-publish: leakyPool\.dispatch writes dispatch slot arg outside the publish window`
	for p.done.Load() < 1 {
	}
}

func (p *leakyPool) worker() {
	last := uint64(0)
	for {
		arg := p.arg // want `epoch-publish: spawned worker leakyPool\.worker reads dispatch slot arg before any atomic acquire`
		for p.epoch.Load() == last {
		}
		last = p.epoch.Load()
		p.fn(arg)
		p.fn = nil // want `epoch-publish: spawned worker leakyPool\.worker writes dispatch slot fn`
		p.done.Add(1)
	}
}

// plainSpawner has no atomic fields at all: goroutine-spawned methods on
// it are outside the epoch-publish idiom (sharedwrite's domain), so the
// checker stays silent even though the field access is racy.
type plainSpawner struct {
	n int
}

func (s *plainSpawner) bump() { s.n++ }

func (s *plainSpawner) start() {
	go s.bump()
}
