// Package hb is a happensbefore fixture. Each worker dispatched through
// the parallelFor stand-in either proves its chunk partitioning or carries
// a want comment for the exact failure; the functions exist to be
// analyzed, never executed.
package hb

// parallelFor mimics internal/sim's chunked dispatcher; the analyzer keys
// on the callee name alone.
func parallelFor(n int, fn func(w, lo, hi int)) {
	fn(0, 0, n)
}

// ChunkedSquares is the canonical safe worker: every write index is the
// induction variable, provably in [lo, hi).
func ChunkedSquares(out []int) {
	parallelFor(len(out), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
}

// OffByOne widens the loop bound to hi+1: the last iteration writes into
// the next worker's chunk. The finding's -explain chain shows the loop
// definition that produced the [lo, hi] interval.
func OffByOne(out []int) {
	parallelFor(len(out), func(w, lo, hi int) {
		for i := lo; i < hi+1; i++ {
			out[i] = i // want `cannot prove write of out\[i\] stays in the worker's chunk: index interval \[lo, hi\]`
		}
	})
}

// DerivedGuarded writes a derived index under an explicit bound check:
// out[i+1] has interval [lo+1, hi-1] inside the guard, provably in chunk.
func DerivedGuarded(out []int) {
	parallelFor(len(out), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i+1 < hi {
				out[i+1] = out[i]
			}
		}
	})
}

// DerivedContinueGuarded proves the same bound established by an early
// continue: the negated refinement survives the terminating branch.
func DerivedContinueGuarded(out []int) {
	parallelFor(len(out), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i+1 >= hi {
				continue
			}
			out[i+1] = out[i]
		}
	})
}

// DerivedUnguarded writes the same derived index with no bound check:
// i+1 reaches hi, one past the chunk.
func DerivedUnguarded(out []int) {
	parallelFor(len(out), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i+1] = 1 // want `cannot prove write of out\[i \+ 1\] stays in the worker's chunk: index interval \[lo\+1, hi\]`
		}
	})
}

// WScratch accumulates into per-worker scratch pinned to the worker id.
func WScratch(sums []int, vals []int) {
	parallelFor(len(vals), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sums[w] += vals[i]
		}
	})
}

type cell struct{ v int }

// PointerElem writes through a local pointer traced to its one defining
// &cells[w] site: the write inherits the proven w-pinned index.
func PointerElem(cells []cell) {
	parallelFor(len(cells), func(w, lo, hi int) {
		c := &cells[w]
		for i := lo; i < hi; i++ {
			c.v += i
		}
	})
}

// SharedMap writes a shared map from workers: unsafe on any key.
func SharedMap(m map[int]int, n int) {
	parallelFor(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			m[i] = i // want `parallelFor worker writes to shared map m`
		}
	})
}

// SharedScalar writes an unpartitioned captured scalar.
func SharedScalar(n int) int {
	total := 0
	parallelFor(n, func(w, lo, hi int) {
		total += hi - lo // want `parallelFor worker writes shared variable total without partitioning`
	})
	return total
}

// CrossChunkRead writes only its own chunk but reads its right neighbor,
// which the adjacent worker may be writing concurrently.
func CrossChunkRead(out []int) {
	parallelFor(len(out), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = out[i+1] * 2 // want `read of out\[i \+ 1\] \(index interval \[lo\+1, hi\]\) may cross chunks`
		}
	})
}

// ReadOnlyTable reads a shared table at arbitrary indices: fine, because
// the region never writes it, so the barrier sequences all its writers.
func ReadOnlyTable(tbl []int, out []int) {
	parallelFor(len(out), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = tbl[(i*7)%len(tbl)]
		}
	})
}

// mystery has no statically known body.
var mystery func(w, lo, hi int)

// Unresolvable dispatches a worker the analyzer cannot see into: the
// unverifiable dispatch is itself the finding.
func Unresolvable(n int) {
	parallelFor(n, mystery) // want `cannot statically resolve parallelFor worker mystery`
}

// engine mirrors internal/sim's dispatch: the worker is a method bound to
// a func-typed field once at construction, resolved through the package's
// field bindings, with receiver state proven chunk-partitioned.
type engine struct {
	rows []int
	ph   func(w, lo, hi int)
}

func newEngine(n int) *engine {
	e := &engine{rows: make([]int, n)}
	e.ph = e.phaseFill
	return e
}

// phaseFill writes receiver state at induction indices: proven.
func (e *engine) phaseFill(w, lo, hi int) {
	for u := lo; u < hi; u++ {
		e.rows[u] = u
	}
}

func (e *engine) run() {
	parallelFor(len(e.rows), e.ph)
}

// Suppressed documents a worker the analyzer cannot prove but the author
// has audited; the waiver needs a reason like any other directive.
func Suppressed(out []int) {
	j := 0
	parallelFor(len(out), func(w, lo, hi int) {
		//mtmlint:happensbefore-ok fixture: stand-in dispatcher runs workers sequentially
		out[j] = w
	})
}

// HistScatter is the two-pass counting-sort idiom from internal/sim: each
// worker counts into its private row of a shared histogram, a sequential
// prefix merge between the passes (the caller's job) turns cells into
// scatter-cursor bases, and the scatter writes through those cursors. Both
// passes are accepted: hist[w*n:(w+1)*n] is disjoint per worker for any
// stride, and the cursor-indexed write inherits the merge's disjointness.
func HistScatter(hist, out []int, keys []int, n int) {
	parallelFor(len(keys), func(w, lo, hi int) {
		row := hist[w*n : (w+1)*n]
		clear(row)
		for i := lo; i < hi; i++ {
			row[keys[i]]++
		}
	})
	parallelFor(len(keys), func(w, lo, hi int) {
		row := hist[w*n : (w+1)*n]
		for i := lo; i < hi; i++ {
			out[row[keys[i]]] = i
			row[keys[i]]++
		}
	})
}

// WorkerRowWrongStride slices with mismatched low and high strides: rows
// overlap between adjacent workers, so the alias is the shared container
// and the non-induction index is unprovable.
func WorkerRowWrongStride(hist []int, n, m int) {
	parallelFor(n, func(w, lo, hi int) {
		row := hist[w*n : (w+1)*m]
		for i := lo; i < hi; i++ {
			row[i-lo]++ // want `cannot prove`
		}
	})
}

// SliceAliasShared aliases an arbitrary window of shared storage: the
// alias is the container itself, and writes through it need the same
// chunk proof as direct writes.
func SliceAliasShared(out []int, idx []int) {
	parallelFor(len(out), func(w, lo, hi int) {
		row := out[2 : len(out)-1]
		for i := lo; i < hi; i++ {
			row[idx[i]] = i // want `cannot prove`
		}
	})
}

// CursorFromSharedRow scatters through cursors loaded from a shared (not
// worker-private) slice: no disjointness proof attaches, so the write is
// the usual unprovable finding.
func CursorFromSharedRow(hist, out []int, n int) {
	parallelFor(n, func(w, lo, hi int) {
		cur := hist[0:n]
		for i := lo; i < hi; i++ {
			out[cur[i]] = i // want `cannot prove`
		}
	})
}

// wbuf mirrors internal/obs's per-worker event buffer: a growable slice
// mutated through a pointer-receiver method.
type wbuf struct {
	buf []int
	_   [5]uint64
}

func (b *wbuf) push(v int) { b.buf = append(b.buf, v) }

// bufEngine mirrors the traced parallel engine: phase workers are method
// values bound to func fields once at construction, and each worker emits
// into its own buffer element.
type bufEngine struct {
	bufs  []wbuf
	vals  []int
	phOK  func(w, lo, hi int)
	phBad func(w, lo, hi int)
}

func newBufEngine(n, workers int) *bufEngine {
	e := &bufEngine{bufs: make([]wbuf, workers), vals: make([]int, n)}
	e.phOK = e.phaseEmit
	e.phBad = e.phaseEmitNeighbor
	return e
}

// phaseEmit calls a pointer-receiver method on the worker's own buffer
// element: the implicit &e.bufs[w] is a write pinned to w, proven.
func (e *bufEngine) phaseEmit(w, lo, hi int) {
	for i := lo; i < hi; i++ {
		e.bufs[w].push(e.vals[i])
	}
}

// phaseEmitNeighbor emits into the next worker's buffer: the element index
// is not pinned to w, so the implicit write is the finding.
func (e *bufEngine) phaseEmitNeighbor(w, lo, hi int) {
	for i := lo; i < hi; i++ {
		e.bufs[w+1].push(e.vals[i]) // want `cannot prove`
	}
}

func (e *bufEngine) run() {
	parallelFor(len(e.vals), e.phOK)
	parallelFor(len(e.vals), e.phBad)
}

// maskEngine mirrors the faulted parallel round: BeginRound publishes the
// fault down-mask to a receiver field sequentially, before the dispatch,
// and the mask is frozen until the barrier. Workers read it through a
// captured local alias at the induction index and at arbitrary derived
// indices while writing only their own chunk.
type maskEngine struct {
	down    []bool
	targets []int
	out     []int
	phOK    func(w, lo, hi int)
	phBad   func(w, lo, hi int)
}

func newMaskEngine(n int) *maskEngine {
	e := &maskEngine{down: make([]bool, n), targets: make([]int, n), out: make([]int, n)}
	e.phOK = e.phaseMaskScan
	e.phBad = e.phaseMaskFlip
	return e
}

// phaseMaskScan reads the frozen mask at both the induction index and an
// arbitrary target index. Both reads are safe on any index for the same
// reason ReadOnlyTable's are: no worker in the region writes the mask, so
// the sequential publish before the dispatch is its only writer and the
// barrier sequences every read after it.
func (e *maskEngine) phaseMaskScan(w, lo, hi int) {
	down := e.down
	for u := lo; u < hi; u++ {
		v := 1
		if down != nil && down[u] {
			v = 0
		}
		if down[e.targets[u]] {
			v = 0
		}
		e.out[u] = v
	}
}

// phaseMaskFlip mutates the mask from inside the region at a non-induction
// index: the moment any worker writes it, the frozen-mask argument is gone
// and arbitrary-index reads race with that writer.
func (e *maskEngine) phaseMaskFlip(w, lo, hi int) {
	down := e.down
	for u := lo; u < hi; u++ {
		down[e.targets[u]] = true // want `cannot prove`
	}
}

func (e *maskEngine) run() {
	// The sequential publish: the only write to the mask outside a region.
	for i := range e.down {
		e.down[i] = false
	}
	parallelFor(len(e.out), e.phOK)
	parallelFor(len(e.out), e.phBad)
}
