// Package hot is a hotalloc fixture. Step is the certification root;
// everything statically reachable from it is walked, and each allocating
// construct carries a want comment. Functions not reachable from a
// //mtmlint:hotpath root may allocate freely.
package hot

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
)

type item struct{ k, v int }

type table struct {
	scratch []int
	inbox   []int32
	names   map[int]string
	sink    func()
}

// Step is a hotalloc certification root. The amortized idioms here —
// cap-guarded make, self-append to a field, the sort.Search callback, and
// panic-only formatting — are recognized, not suppressed.
//
//mtmlint:hotpath
func (t *table) Step(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("hot: bad n %d", n)) // cold: only runs while panicking
	}
	if cap(t.inbox) < n {
		t.inbox = make([]int32, n) // amortized growth behind the cap guard
	}
	t.scratch = t.scratch[:0]
	for i := 0; i < n; i++ {
		t.scratch = append(t.scratch, i) // self-append to field scratch
	}
	j := sort.Search(n, func(i int) bool { return t.scratch[i] >= n })
	t.flagged(n)
	t.stringy("a", "b")
	t.boxy(n)
	return j
}

// flagged is reached from Step through a static call; every allocation
// shape the analyzer knows is on its own line.
func (t *table) flagged(n int) {
	m := make(map[int]int) // want `make\(map\) in the hot path allocates`
	_ = m
	c := make(chan int) // want `make\(chan\) in the hot path allocates`
	_ = c
	s := make([]int, n) // want `make\(\[\]T\) in the hot path allocates`
	_ = s
	t.names = map[int]string{} // want `map literal in the hot path allocates`
	lits := []int{1, 2, 3}     // want `slice literal in the hot path allocates its backing array`
	_ = lits
	p := new(item) // want `new\(T\) in the hot path allocates`
	_ = p
	q := &item{k: 1} // want `address of a composite literal may escape to the heap`
	_ = q
	var local []int
	local = append(local, n) // want `append in the hot path may grow`
	_ = local
	go t.reset()                  // want `go statement in the hot path`
	f := func() { t.names = nil } // want `closure captures t and may allocate`
	f()
	t.sink = t.reset           // want `method value t.reset binds its receiver in a heap closure`
	_ = strings.Repeat("a", n) // want `call to strings.Repeat in the hot path may allocate`
	fmt.Sprintln(n)            // want `fmt.Sprintln in the hot path formats into fresh allocations`
}

func (t *table) reset() {}

// stringy covers the string-shaped allocations.
func (t *table) stringy(a, b string) string {
	msg := a + b    // want `string concatenation in the hot path allocates`
	bs := []byte(a) // want `string-to-slice conversion in the hot path allocates`
	_ = bs
	back := string(rune(len(a))) // want `conversion to string in the hot path allocates`
	_ = back
	return msg
}

func useIface(v interface{}) {}

// boxy passes a concrete non-pointer value to an interface parameter.
func (t *table) boxy(n int) {
	useIface(n)  // want `passing int to an interface parameter boxes it on the heap`
	useIface(&n) // pointers are already reference-shaped: clean
}

// Dispatch certifies only up to the region marker; the goroutine fan-out
// below it never runs in the certified configuration.
//
//mtmlint:hotpath
func Dispatch(t *table, n int) {
	if n <= 1 {
		t.reset()
		return
	}
	//mtmlint:hotpath-end fan-out below only runs in the multi-worker configuration
	go t.reset()
}

// wbuf mirrors internal/obs's per-worker event buffer: amortized growth via
// a cap-guarded doubling make plus copy, then a self-append to the field.
type wbuf struct {
	buf []int32
}

// Push is the buffered-emission hot path: once the buffer has reached its
// high-water mark, neither branch allocates, so the whole method certifies
// without directives — the guarded make and the field self-append are both
// recognized amortized idioms.
//
//mtmlint:hotpath
func (b *wbuf) Push(v int32) {
	if len(b.buf) == cap(b.buf) {
		old := b.buf
		b.buf = make([]int32, len(b.buf), 2*cap(b.buf)+64) // amortized growth behind the cap guard
		copy(b.buf, old)
	}
	b.buf = append(b.buf, v) // self-append to field buf
}

// Spin mirrors the worker pool's dispatch join: runtime.Gosched is the
// audited pure scheduler yield and certifies clean, while any other
// runtime call stays outside the allowlist.
//
//mtmlint:hotpath
func Spin(done *atomic.Int64, workers int) {
	for done.Load() < int64(workers-1) {
		runtime.Gosched() // audited allocation-free yield
	}
	runtime.GC() // want `call to runtime.GC in the hot path may allocate`
}

// build is not reachable from any hotpath root: allocations here are the
// analyzer's scoping test, not findings.
func build(n int) *table {
	return &table{
		scratch: make([]int, 0, n),
		names:   make(map[int]string, n),
	}
}
