module mobiletel

go 1.22
