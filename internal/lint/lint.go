package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer. File is the path
// relative to the module root (slash-separated), so output and golden
// files are stable across checkouts.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Explain is the def-use chain behind the finding (one rendered
	// definition per line), populated by the SSA-backed analyzers and
	// printed by `mtmlint -explain`. Omitted from JSON when empty, so
	// analyzers without explanations keep their old output byte-for-byte.
	Explain []string `json:"explain,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one mtmlint rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{Norand, Maporder, Seedflow, Errdrop, Sharedwrite, Atomicwrite, Happensbefore, Hotalloc}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries one (analyzer, package) run. Analyzers report through
// Reportf, which applies suppression comments.
type Pass struct {
	Analyzer   *Analyzer
	Pkg        *Package
	ModulePath string
	// Loader gives analyzers that follow cross-package calls (hotalloc)
	// access to the other loaded packages of the module.
	Loader *Loader

	moduleRoot string
	fset       *token.FileSet
	suppress   suppressions
	out        *[]Finding
}

// RelPkgPath is the package path relative to the module ("" for the module
// root package). Analyzers use it to scope rules to directory subtrees.
func (p *Pass) RelPkgPath() string {
	if p.Pkg.Path == p.ModulePath {
		return ""
	}
	return strings.TrimPrefix(p.Pkg.Path, p.ModulePath+"/")
}

// Within reports whether the package lies in the subtree rooted at prefix
// (a module-relative slash path such as "internal/core").
func (p *Pass) Within(prefix string) bool {
	rel := p.RelPkgPath()
	return rel == prefix || strings.HasPrefix(rel, prefix+"/")
}

// Reportf records a finding at pos unless a reasoned
// //mtmlint:<analyzer>-ok suppression covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportExplained(pos, nil, format, args...)
}

// ReportExplained is Reportf carrying a def-use explanation chain, which
// `mtmlint -explain` prints indented below the finding.
func (p *Pass) ReportExplained(pos token.Pos, explain []string, format string, args ...any) {
	position := p.fset.Position(pos)
	if p.suppress.covers(position.Filename, position.Line, p.Analyzer.Name) {
		return
	}
	*p.out = append(*p.out, Finding{
		Analyzer: p.Analyzer.Name,
		File:     relFile(p.moduleRoot, position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Explain:  explain,
	})
}

func relFile(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil &&
		rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// Run executes the given analyzers over the given packages and returns all
// findings sorted by (file, line, col, analyzer). Malformed mtmlint
// directives (unknown analyzer, missing reason) are reported under the
// pseudo-analyzer name "mtmlint" regardless of which analyzers run.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings := []Finding{}
	for _, pkg := range pkgs {
		sup := scanSuppressions(l, pkg, &findings)
		for _, az := range analyzers {
			az.Run(&Pass{
				Analyzer:   az,
				Pkg:        pkg,
				ModulePath: l.ModulePath,
				Loader:     l,
				moduleRoot: l.ModuleRoot,
				fset:       l.Fset,
				suppress:   sup,
				out:        &findings,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings
}

// suppressions maps filename -> line -> analyzer names with a reasoned
// suppression covering that line.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) covers(filename string, line int, analyzer string) bool {
	return s[filename][line][analyzer]
}

func (s suppressions) add(filename string, line int, analyzer string) {
	byLine, ok := s[filename]
	if !ok {
		byLine = make(map[int]map[string]bool)
		s[filename] = byLine
	}
	byName, ok := byLine[line]
	if !ok {
		byName = make(map[string]bool)
		byLine[line] = byName
	}
	byName[analyzer] = true
}

// scanSuppressions collects //mtmlint:<name>-ok <reason> directives from a
// package. A directive covers its own line and the line directly below it
// (so it works both as a trailing comment and on its own line above the
// statement). Directives naming an unknown analyzer or lacking a reason
// are reported as findings and do not suppress anything.
func scanSuppressions(l *Loader, pkg *Package, findings *[]Finding) suppressions {
	sup := make(suppressions)
	report := func(pos token.Pos, format string, args ...any) {
		position := l.Fset.Position(pos)
		*findings = append(*findings, Finding{
			Analyzer: "mtmlint",
			File:     relFile(l.ModuleRoot, position.Filename),
			Line:     position.Line,
			Col:      position.Column,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//mtmlint:")
				if !ok {
					continue
				}
				directive, reason, _ := strings.Cut(text, " ")
				// Region directives for the hotalloc analyzer, not
				// suppressions: hotpath marks a certified function,
				// hotpath-end bounds the certified region and must say why.
				if directive == "hotpath" {
					continue
				}
				if directive == "hotpath-end" {
					if i := strings.Index(reason, "// want"); i >= 0 {
						reason = reason[:i]
					}
					if strings.TrimSpace(reason) == "" {
						report(c.Pos(), "hotpath-end directive is missing a reason (//mtmlint:hotpath-end <reason>)")
					}
					continue
				}
				name, ok := strings.CutSuffix(directive, "-ok")
				if !ok {
					report(c.Pos(), "malformed mtmlint directive %q (expected //mtmlint:<analyzer>-ok <reason>)", c.Text)
					continue
				}
				if Lookup(name) == nil {
					report(c.Pos(), "mtmlint directive names unknown analyzer %q", name)
					continue
				}
				// Fixture files put "// want" expectations in the same
				// comment; they are not part of the reason.
				if i := strings.Index(reason, "// want"); i >= 0 {
					reason = reason[:i]
				}
				if strings.TrimSpace(reason) == "" {
					report(c.Pos(), "suppression for %s is missing a reason (//mtmlint:%s-ok <reason>)", name, name)
					continue
				}
				position := l.Fset.Position(c.Pos())
				sup.add(position.Filename, position.Line, name)
				sup.add(position.Filename, position.Line+1, name)
			}
		}
	}
	return sup
}
