package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureModule returns a loader rooted at the fixture module under
// testdata, which mirrors the real module's path so path-scoped rules
// (norand, maporder) behave identically.
func fixtureModule(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(filepath.Join("testdata", "src", "mobiletel"))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// loadFixture loads one fixture package by module-relative directory.
func loadFixture(t *testing.T, l *Loader, rel string) *Package {
	t.Helper()
	pkgs, err := l.Load(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for %s, want 1", len(pkgs), rel)
	}
	for _, e := range pkgs[0].Errors {
		t.Errorf("fixture %s: load error: %v", rel, e)
	}
	return pkgs[0]
}

// want is one expectation comment: `// want `regexp` `regexp`...` on the
// line the findings must appear on.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantToken = regexp.MustCompile("`([^`]*)`")

func collectWants(t *testing.T, l *Loader, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				for _, m := range wantToken.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &want{
						file: relFile(l.ModuleRoot, pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// checkFixture runs the given analyzers over one fixture package and
// verifies findings against its // want comments, exactly.
func checkFixture(t *testing.T, rel string, analyzers ...*Analyzer) {
	t.Helper()
	l := fixtureModule(t)
	pkg := loadFixture(t, l, rel)
	findings := Run(l, []*Package{pkg}, analyzers)
	wants := collectWants(t, l, pkg)

	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestNorandFixture(t *testing.T) {
	checkFixture(t, "internal/sim", Norand)
}

func TestMaporderFixture(t *testing.T) {
	checkFixture(t, "internal/core", Maporder)
}

func TestSeedflowFixture(t *testing.T) {
	checkFixture(t, "internal/seeds", Seedflow)
}

func TestErrdropFixture(t *testing.T) {
	checkFixture(t, "internal/errs", Errdrop)
}

// TestSharedwriteFixture runs both concurrency analyzers over the shared
// fixture: goroutine literals stay sharedwrite's domain, while the
// parallelFor cases must now be proven (or flagged) by happensbefore.
func TestSharedwriteFixture(t *testing.T) {
	checkFixture(t, "internal/shared", Sharedwrite, Happensbefore)
}

func TestHappensbeforeFixture(t *testing.T) {
	checkFixture(t, "internal/hb", Happensbefore)
}

func TestHotallocFixture(t *testing.T) {
	checkFixture(t, "internal/hot", Hotalloc)
}

// TestSharedwriteSilentOnParallelFor pins the handoff: the old heuristic
// must no longer fire anywhere in the shared fixture's parallelFor cases
// (they produce happensbefore findings instead, or prove clean).
func TestSharedwriteSilentOnParallelFor(t *testing.T) {
	l := fixtureModule(t)
	pkg := loadFixture(t, l, "internal/shared")
	for _, f := range Run(l, []*Package{pkg}, []*Analyzer{Sharedwrite}) {
		if strings.Contains(f.Message, "parallelFor") {
			t.Errorf("sharedwrite still fires on parallelFor workers: %s", f)
		}
	}
}

func TestAtomicwriteFixture(t *testing.T) {
	checkFixture(t, "cmd/mtmfake", Atomicwrite)
}

// TestAtomicwriteScopedToCmd proves the rule stays silent outside cmd/:
// internal packages (e.g. atomicwrite itself, which must call os.Create)
// and the root package are exempt.
func TestAtomicwriteScopedToCmd(t *testing.T) {
	l := fixtureModule(t)
	pkg := loadFixture(t, l, "internal/errs") // fixture calls os.WriteFile-free os APIs but lives outside cmd/
	findings := Run(l, []*Package{pkg}, []*Analyzer{Atomicwrite})
	for _, f := range findings {
		if f.Analyzer == "atomicwrite" {
			t.Errorf("atomicwrite fired outside cmd/: %s", f)
		}
	}
}

// TestFixtureSweep runs every analyzer over every fixture package at once:
// cross-package wants must still line up exactly, proving analyzers do not
// fire outside their scope (e.g. maporder stays silent outside
// result-affecting packages).
func TestFixtureSweep(t *testing.T) {
	l := fixtureModule(t)
	pkgs, err := l.Load(filepath.Join(l.ModuleRoot, "internal") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			t.Fatalf("fixture %s: load error: %v", pkg.Path, e)
		}
		wants = append(wants, collectWants(t, l, pkg)...)
	}
	findings := Run(l, pkgs, All())
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestSuppressionRequiresKnownAnalyzer covers directive hygiene.
func TestSuppressionDirectiveHygiene(t *testing.T) {
	l := fixtureModule(t)
	pkg := loadFixture(t, l, "internal/core")
	findings := Run(l, []*Package{pkg}, nil)
	found := false
	for _, f := range findings {
		if f.Analyzer == "mtmlint" && strings.Contains(f.Message, "missing a reason") {
			found = true
		}
	}
	if !found {
		t.Error("reasonless suppression was not reported under the mtmlint pseudo-analyzer")
	}
}

// TestRealTreeIsClean is the repository's own gate: the suite must report
// nothing on the actual module. It mirrors `go run ./cmd/mtmlint ./...`.
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(root + "/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			t.Fatalf("%s: load error: %v", pkg.Path, e)
		}
	}
	findings := Run(l, pkgs, All())
	for _, f := range findings {
		t.Errorf("real tree finding: %s", f)
	}
}

func ExampleFinding_String() {
	f := Finding{Analyzer: "norand", File: "internal/sim/sim.go", Line: 12, Col: 2, Message: "boom"}
	fmt.Println(f)
	// Output: internal/sim/sim.go:12:2: [norand] boom
}
