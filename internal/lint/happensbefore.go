package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mobiletel/internal/lint/ssa"
)

// Happensbefore proves that workers dispatched through parallelFor (and
// its fused-sweep twin parallelForFused) are race-free by chunk
// partitioning, replacing sharedwrite's per-literal heuristic with interval
// reasoning over the worker's (w, lo, hi) bounds. A second proof domain —
// the persistent worker pool's epoch-publish dispatch idiom — lives in
// epochpool.go.
//
// internal/sim's dispatcher splits [0, n) into contiguous chunks and runs
// fn(w, lo, hi) concurrently, with wg.Wait as the only barrier. Inside one
// such region the analyzer must therefore prove, for every access to
// shared state (anything reached through the method receiver, a captured
// variable, or a package-level variable):
//
//   - writes to a shared container element s[i] (including implicit writes
//     via a pointer-receiver method call s[i].M(), and writes through a
//     local pointer p := &s[i]) have an index interval provably within
//     [lo, hi), or provably equal to the worker id w (per-worker scratch);
//   - reads of a container that is also written in the same region are
//     held to the same bound — a cross-chunk read of written state is only
//     sequenced after the dispatcher's barrier, not within the region;
//   - shared maps are never written (unsafe even on distinct keys), and
//     shared scalars and slice headers are never written at all.
//
// Containers that are only read in the region are shared-read-only and
// need no proof. Index intervals come from the internal/lint/ssa abstract
// interpreter, so derived indices (i+1 under an explicit `i+1 < hi` or an
// early `continue` guard) are proven too, and every failed proof carries
// the def-use chain that `mtmlint -explain` prints.
//
// Two idioms of the parallel counting sort are recognized as proven:
//
//   - a *worker-private row*: row := shared[w*K : (w+1)*K]. Distinct worker
//     ids address disjoint ranges for any K, so the view is private to the
//     worker and may be read or written at any index (the per-worker
//     histogram of the two-pass bucketing sort);
//   - a *scatter cursor*: a write shared[row[t]] = v whose index is loaded
//     from a worker-private row. The sequential prefix merge between the
//     histogram and scatter passes rewrites each row cell into a cursor
//     base such that distinct (worker, bucket) cursor ranges are disjoint;
//     the analyzer accepts the write on the strength of that idiom (the
//     merge itself runs outside any region), while still counting the
//     container as region-written so stray same-region reads are flagged.
//
// A slice alias with any other bounds (row := shared[2:7]) is treated as
// the shared container itself and held to the chunk proof.
//
// Boundaries, dynamically backed by the race-smoke CI job (`make race`):
// bodies of calls on the receiver itself (e.bindCtx(ctx)) are not walked,
// writes through pointers the analyzer cannot trace to one &s[i] site are
// skipped, and `go` statements inside a region belong to sharedwrite.
// Workers the analyzer cannot resolve to a body (a func value from an
// unknown source) are themselves findings: an unverifiable dispatch is a
// hole in the proof.
var Happensbefore = &Analyzer{
	Name: "happensbefore",
	Doc:  "prove parallelFor workers write only inside their [lo, hi) chunk (or w-indexed scratch), and never read cross-chunk state that the region also writes",
	Run:  runHappensbefore,
}

func runHappensbefore(p *Pass) {
	var fieldFns map[*types.Var]*types.Func
	var decls map[*types.Func]*ast.FuncDecl
	analyzed := make(map[ast.Node]bool)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := calleeName(call.Fun); name != "parallelFor" && name != "parallelForFused" {
				return true
			}
			if decls == nil {
				decls = funcDecls(p.Pkg)
				fieldFns = fieldFuncBindings(p.Pkg)
			}
			for _, arg := range call.Args {
				hbCheckWorkerArg(p, arg, fieldFns, decls, analyzed)
			}
			return true
		})
	}
	hbCheckEpochPools(p)
}

// hbCheckWorkerArg resolves one parallelFor argument of worker shape
// (three int parameters) to its body and analyzes it once.
func hbCheckWorkerArg(p *Pass, arg ast.Expr, fieldFns map[*types.Var]*types.Func, decls map[*types.Func]*ast.FuncDecl, analyzed map[ast.Node]bool) {
	arg = ast.Unparen(arg)
	sig, ok := p.Pkg.Info.TypeOf(arg).(*types.Signature)
	if !ok || sig.Params().Len() != 3 {
		return
	}
	for i := 0; i < 3; i++ {
		b, ok := sig.Params().At(i).Type().Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			return
		}
	}

	if lit, ok := arg.(*ast.FuncLit); ok {
		if !analyzed[lit] {
			analyzed[lit] = true
			hbCheckLit(p, lit)
		}
		return
	}
	fn := staticFunc(p.Pkg.Info, arg)
	if fn == nil {
		// A func-typed field: resolve through the package's one-time
		// method-value bindings (e.phAdvertise = e.phaseAdvertise).
		if sel, ok := arg.(*ast.SelectorExpr); ok {
			if field, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Var); ok {
				fn = fieldFns[field]
			}
		}
	}
	var decl *ast.FuncDecl
	if fn != nil {
		decl = decls[fn]
	}
	if decl == nil || decl.Body == nil {
		p.Reportf(arg.Pos(), "cannot statically resolve parallelFor worker %s to a body; happensbefore cannot verify its chunk partitioning", types.ExprString(arg))
		return
	}
	if !analyzed[decl] {
		analyzed[decl] = true
		hbCheckDecl(p, decl)
	}
}

func hbCheckLit(p *Pass, lit *ast.FuncLit) {
	var params []*ast.Ident
	for _, field := range lit.Type.Params.List {
		params = append(params, field.Names...)
	}
	r := &hbRegion{p: p, lit: lit}
	r.seedParams(params)
	r.run(lit.Body)
}

func hbCheckDecl(p *Pass, decl *ast.FuncDecl) {
	var params []*ast.Ident
	for _, field := range decl.Type.Params.List {
		params = append(params, field.Names...)
	}
	r := &hbRegion{p: p}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		r.recv = p.Pkg.Info.Defs[decl.Recv.List[0].Names[0]]
	}
	r.seedParams(params)
	r.run(decl.Body)
}

// hbAccess is one recorded element access to a shared container.
type hbAccess struct {
	key    string // canonical container spelling, e.g. "e.tags"
	index  ast.Expr
	env    *ssa.Env
	pos    token.Pos
	what   string // access description for diagnostics
	write  bool
	proven bool // accepted by idiom (scatter cursor); still marks key written
}

// hbClass classifies a container expression within a worker region.
type hbClass int

const (
	// hbLocal: worker-local storage, no proof needed.
	hbLocal hbClass = iota
	// hbShared: shared across workers, accesses need the chunk proof.
	hbShared
	// hbPrivateRow: a shared[w*K : (w+1)*K] view — disjoint per worker id,
	// so private to this worker at any index.
	hbPrivateRow
)

// hbRegion analyzes one parallelFor worker body.
type hbRegion struct {
	p    *Pass
	lit  *ast.FuncLit // non-nil for func-literal workers
	recv types.Object // receiver object for method workers

	w, lo, hi types.Object
	an        *ssa.Analysis
	seeds     []*ssa.Def
	accesses  []hbAccess
	consumed  map[ast.Node]bool
}

// seedParams seeds the worker convention: first parameter is the worker
// id, the last two are the chunk bounds.
func (r *hbRegion) seedParams(params []*ast.Ident) {
	objs := make([]types.Object, len(params))
	for i, id := range params {
		if id.Name != "_" {
			objs[i] = r.p.Pkg.Info.Defs[id]
		}
	}
	if len(objs) == 3 {
		r.w, r.lo, r.hi = objs[0], objs[1], objs[2]
	}
	for _, obj := range objs {
		if obj != nil {
			r.seeds = append(r.seeds, &ssa.Def{Obj: obj, Ival: ssa.SymI(obj),
				Kind: ssa.KindSeed, Pos: obj.Pos(), Why: "parameter " + obj.Name()})
		}
	}
}

func (r *hbRegion) run(body *ast.BlockStmt) {
	r.consumed = make(map[ast.Node]bool)
	r.an = &ssa.Analysis{Info: r.p.Pkg.Info, Fset: r.p.Loader.Fset, Visit: r.visitStmt}
	r.an.Run(body, r.seeds)

	written := make(map[string]bool)
	for _, acc := range r.accesses {
		if acc.write {
			written[acc.key] = true
		}
	}
	for _, acc := range r.accesses {
		if !acc.write && !written[acc.key] {
			continue // shared-read-only container: no proof needed
		}
		if acc.proven {
			continue // accepted by the scatter-cursor idiom
		}
		iv := r.an.Eval(acc.env, acc.index)
		if r.inChunk(iv) {
			continue
		}
		explain := r.an.Explain(acc.env, acc.index)
		if acc.write {
			r.p.ReportExplained(acc.pos, explain,
				"cannot prove %s of %s[%s] stays in the worker's chunk: index interval %s is not within [lo, hi) or pinned to w",
				acc.what, acc.key, types.ExprString(acc.index), iv)
		} else {
			r.p.ReportExplained(acc.pos, explain,
				"read of %s[%s] (index interval %s) may cross chunks while this region also writes %s; cross-chunk reads are only sequenced after the parallelFor barrier",
				acc.key, types.ExprString(acc.index), iv, acc.key)
		}
	}
}

// inChunk reports whether the index interval is provably within [lo, hi)
// or provably equal to the worker id w.
func (r *hbRegion) inChunk(iv ssa.Interval) bool {
	if r.lo != nil && r.hi != nil &&
		iv.WithinHalfOpen(ssa.SymB(r.lo, 0), ssa.SymB(r.hi, 0)) {
		return true
	}
	return r.w != nil && iv.Equals(ssa.SymB(r.w, 0))
}

// visitStmt receives every executable statement (and the headers of
// compound ones) with a sound environment, and records the shared-state
// accesses it contains.
func (r *hbRegion) visitStmt(stmt ast.Stmt, env *ssa.Env) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			r.checkWrite(lhs, env)
		}
		r.scan(s, env)
	case *ast.IncDecStmt:
		r.checkWrite(s.X, env)
		r.scan(s, env)
	case *ast.IfStmt:
		r.scan(s.Cond, env)
	case *ast.ForStmt:
		if s.Cond != nil {
			r.scan(s.Cond, env)
		}
	case *ast.RangeStmt:
		r.checkWrite(s.Key, env)
		r.checkWrite(s.Value, env)
		r.scan(s.X, env)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			r.scan(s.Tag, env)
		}
	case *ast.TypeSwitchStmt:
		r.scan(s.Assign, env)
	case *ast.GoStmt:
		// Plain goroutines inside a region are sharedwrite's concern.
	default:
		r.scan(stmt, env)
	}
}

// scan walks one statement or expression subtree recording element reads,
// element-mutating method calls, and writes hidden inside nested function
// literals (which run synchronously within the region unless go'd).
func (r *hbRegion) scan(node ast.Node, env *ssa.Env) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				r.checkWrite(lhs, env)
			}
		case *ast.IncDecStmt:
			r.checkWrite(x.X, env)
		case *ast.CallExpr:
			r.checkElementMethodCall(x, env)
		case *ast.IndexExpr:
			if r.consumed[x] {
				return true
			}
			if key, cls := r.classify(x.X, env); cls == hbShared && !isMapType(r.p, x.X) {
				r.record(hbAccess{key: key, index: x.Index, env: env,
					pos: x.Pos(), what: "read", write: false})
			}
		}
		return true
	})
}

// checkWrite classifies one assignment target.
func (r *hbRegion) checkWrite(lhs ast.Expr, env *ssa.Env) {
	if lhs == nil {
		return
	}
	lhs = ast.Unparen(lhs)
	if r.consumed[lhs] {
		return
	}
	// Mark the target consumed immediately: visitStmt and scan both reach
	// top-level assignment targets, and an already-classified lhs must not
	// report twice (nor re-record as a read).
	r.consumed[lhs] = true
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		key, cls := r.classify(ix.X, env)
		if cls == hbLocal || cls == hbPrivateRow {
			return // worker-local / worker-private: any index is fine
		}
		if isMapType(r.p, ix.X) {
			r.p.Reportf(lhs.Pos(), "parallelFor worker writes to shared map %s; concurrent map writes are unsafe even on distinct keys", key)
			return
		}
		proven := false
		if cursor, ok := ast.Unparen(ix.Index).(*ast.IndexExpr); ok {
			if _, ccls := r.classify(cursor.X, env); ccls == hbPrivateRow {
				// The scatter-cursor idiom: the index is loaded from a
				// worker-private histogram row whose cells the sequential
				// prefix merge turned into disjoint cursor bases.
				proven = true
			}
		}
		r.record(hbAccess{key: key, index: ix.Index, env: env,
			pos: lhs.Pos(), what: "write", write: true, proven: proven})
		return
	}

	root := rootObject(r.p, lhs)
	if root == nil {
		return
	}
	if r.isShared(root) {
		r.p.Reportf(lhs.Pos(), "parallelFor worker writes shared variable %s without partitioning; only element writes indexed within the worker's chunk [lo, hi) are race-free", types.ExprString(lhs))
		return
	}
	// A write through a local pointer: trace it to its one defining
	// &shared[i] site (p := &e.ctxA[w]; p.Node = v) and hold that index
	// to the chunk proof. Pointers with any other provenance are a
	// documented boundary, backed by the race detector.
	if _, isPtr := root.Type().Underlying().(*types.Pointer); !isPtr {
		return
	}
	if _, isPtrReassign := lhs.(*ast.Ident); isPtrReassign {
		return // reassigning the local pointer itself, not the pointee
	}
	d := env.Lookup(root)
	if d == nil || d.Src == nil {
		return
	}
	addr, ok := ast.Unparen(d.Src).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return
	}
	target := ast.Unparen(addr.X)
	if ix, ok := target.(*ast.IndexExpr); ok {
		if key, cls := r.classify(ix.X, d.Env); cls == hbShared && !isMapType(r.p, ix.X) {
			r.record(hbAccess{key: key, index: ix.Index, env: d.Env,
				pos: lhs.Pos(), what: "write (through " + root.Name() + " := &" + key + "[...])", write: true})
		}
		return
	}
	if troot := rootObject(r.p, target); troot != nil && r.isShared(troot) {
		r.p.Reportf(lhs.Pos(), "parallelFor worker writes shared variable %s through local pointer %s without partitioning", types.ExprString(target), root.Name())
	}
}

// checkElementMethodCall treats s[i].M() as a write to s[i] when M has a
// pointer receiver and the element is directly addressable — the call
// implicitly takes &s[i]. Interface and value-receiver calls read.
func (r *hbRegion) checkElementMethodCall(call *ast.CallExpr, env *ssa.Env) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	ix, ok := ast.Unparen(sel.X).(*ast.IndexExpr)
	if !ok {
		return
	}
	key, cls := r.classify(ix.X, env)
	if cls != hbShared || isMapType(r.p, ix.X) {
		return
	}
	elem := r.p.Pkg.Info.TypeOf(ix)
	if elem == nil {
		return
	}
	switch elem.Underlying().(type) {
	case *types.Pointer, *types.Interface:
		return // the element itself is only read; the call is indirect
	}
	fn, ok := r.p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, ptrRecv := sig.Recv().Type().(*types.Pointer); !ptrRecv {
		return
	}
	r.consumed[ix] = true
	r.record(hbAccess{key: key, index: ix.Index, env: env,
		pos: call.Pos(), what: "pointer-receiver call " + sel.Sel.Name + " on element", write: true})
}

func (r *hbRegion) record(acc hbAccess) {
	r.accesses = append(r.accesses, acc)
}

// classify resolves a container expression to a canonical spelling and its
// sharing class, following one local alias hop (rows := e.rows) so aliased
// backing arrays are still checked. A slice-expression alias over shared
// storage is the shared container itself — unless its bounds form the
// per-worker-row pattern shared[w*K : (w+1)*K], which is provably disjoint
// across worker ids and therefore private to this worker.
func (r *hbRegion) classify(x ast.Expr, env *ssa.Env) (string, hbClass) {
	x = ast.Unparen(x)
	root := rootObject(r.p, x)
	if root == nil {
		return "", hbLocal
	}
	if r.isShared(root) {
		return types.ExprString(x), hbShared
	}
	if _, isIdent := x.(*ast.Ident); isIdent {
		if d := env.Lookup(root); d != nil && d.Src != nil {
			src := ast.Unparen(d.Src)
			if sl, ok := src.(*ast.SliceExpr); ok {
				if broot := rootObject(r.p, sl.X); broot != nil && r.isShared(broot) {
					if r.isWorkerRow(sl) {
						return types.ExprString(src), hbPrivateRow
					}
					return types.ExprString(src), hbShared
				}
				return "", hbLocal
			}
			if sroot := rootObject(r.p, src); sroot != nil && r.isShared(sroot) {
				if !isIndexed(src) {
					return types.ExprString(src), hbShared
				}
			}
		}
	}
	return "", hbLocal
}

// isWorkerRow reports whether the slice bounds are w*K and (w+1)*K for the
// region's worker-id parameter and a syntactically identical K: for any K,
// distinct worker ids then address disjoint ranges.
func (r *hbRegion) isWorkerRow(sl *ast.SliceExpr) bool {
	if r.w == nil || sl.Low == nil || sl.High == nil || sl.Slice3 {
		return false
	}
	kLow, plusLow, ok := r.matchScaledW(sl.Low)
	if !ok || plusLow {
		return false
	}
	kHigh, plusHigh, ok := r.matchScaledW(sl.High)
	if !ok || !plusHigh {
		return false
	}
	return types.ExprString(kLow) == types.ExprString(kHigh)
}

// matchScaledW decomposes e as w*K or (w+1)*K (either operand order),
// returning the scale K and whether the worker factor was w+1.
func (r *hbRegion) matchScaledW(e ast.Expr) (k ast.Expr, plusOne, ok bool) {
	mul, isMul := ast.Unparen(e).(*ast.BinaryExpr)
	if !isMul || mul.Op != token.MUL {
		return nil, false, false
	}
	for _, pair := range [2][2]ast.Expr{{mul.X, mul.Y}, {mul.Y, mul.X}} {
		factor, rest := ast.Unparen(pair[0]), pair[1]
		if r.isWorkerIdent(factor) {
			return rest, false, true
		}
		if add, isAdd := factor.(*ast.BinaryExpr); isAdd && add.Op == token.ADD {
			if r.isWorkerIdent(ast.Unparen(add.X)) && isIntLiteralOne(add.Y) ||
				r.isWorkerIdent(ast.Unparen(add.Y)) && isIntLiteralOne(add.X) {
				return rest, true, true
			}
		}
	}
	return nil, false, false
}

func (r *hbRegion) isWorkerIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && r.p.Pkg.Info.ObjectOf(id) == r.w
}

func isIntLiteralOne(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "1"
}

func isIndexed(e ast.Expr) bool {
	_, ok := e.(*ast.IndexExpr)
	return ok
}

// isShared reports whether the object is shared across workers: the
// method receiver, a package-level variable, or (for literal workers)
// anything captured from outside the literal.
func (r *hbRegion) isShared(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if r.recv != nil && obj == r.recv {
		return true
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return true
	}
	if r.lit != nil {
		return obj.Pos() < r.lit.Pos() || obj.Pos() > r.lit.End()
	}
	return false
}

func isMapType(p *Pass, container ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(container)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
