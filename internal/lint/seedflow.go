package lint

import (
	"go/ast"
	"go/types"
)

// Seedflow flags xrand.New and xrand.Derive calls whose seed argument is a
// compile-time constant outside tests. Every run must be regenerable from
// a recorded configuration, so seeds have to flow from configuration state
// (sim.Config.Seed, an experiment's trial seed, a flag) rather than being
// baked into code. Constant *stream selectors* (the a/b arguments of
// Derive) are fine — only the first argument is the seed.
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc:  "flag hardcoded constant seeds passed to xrand.New/Derive",
	Run:  runSeedflow,
}

func runSeedflow(p *Pass) {
	xrandPath := p.ModulePath + "/internal/xrand"
	if p.Pkg.Path == xrandPath {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			var callee *ast.Ident
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callee = fun
			case *ast.SelectorExpr:
				callee = fun.Sel
			default:
				return true
			}
			fn, ok := p.Pkg.Info.Uses[callee].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != xrandPath {
				return true
			}
			if fn.Name() != "New" && fn.Name() != "Derive" {
				return true
			}
			seed := call.Args[0]
			if tv, ok := p.Pkg.Info.Types[seed]; ok && tv.Value != nil {
				p.Reportf(seed.Pos(), "seed argument of xrand.%s is the constant %s; seeds must flow from configuration (e.g. sim.Config.Seed) so runs are regenerable", fn.Name(), tv.Value)
			}
			return true
		})
	}
}
