// Package ssa is mtmlint's compact SSA-style def-use and interval-analysis
// layer, built on nothing but go/ast and go/types (the module stays
// dependency-free).
//
// It is not a full SSA construction over an explicit CFG: instead, every
// assignment mints a fresh versioned definition of its variable (a new SSA
// name), control-flow merges mint explicit Join definitions (phi nodes)
// whose Preds record the incoming definitions, and guard conditions mint
// Refine definitions that narrow a value's interval along one branch. The
// walk is a single flow-sensitive abstract-interpretation pass over the
// function body, so every recorded use sees exactly the definitions that
// reach it, and analyzers get two things out of one traversal:
//
//   - an interval lattice: each definition carries a symbolic interval
//     [Lo, Hi] whose endpoints are constants, ±∞, or sym+offset terms over
//     designated symbol objects (typically a parallelFor body's chunk
//     bounds lo/hi and worker id w), joined at merge points and narrowed
//     by comparisons (including derived indices such as i+1 guarded by
//     i+1 < hi);
//
//   - def-use chains: Explain renders, for any expression, the chain of
//     definitions (assignment → refinement → join → seed) that produced
//     the intervals of its variables, which is what `mtmlint -explain`
//     prints under a finding.
//
// Soundness posture: the interpreter only ever widens on the constructs it
// does not model (calls that take a variable's address, loops with
// non-inductive updates, multi-value assignments), so a decided interval
// is a proof, and everything else surfaces as "unprovable" rather than as
// a wrong answer.
package ssa

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Bound is one symbolic interval endpoint: sym+Off when Sym is non-nil,
// the constant Off when Sym is nil and Inf is 0, or ±∞ when Inf is ±1.
type Bound struct {
	Inf int // -1 ⇒ -∞, +1 ⇒ +∞, 0 ⇒ finite
	Sym types.Object
	Off int64
}

// NegInf and PosInf are the infinite endpoints.
func NegInf() Bound { return Bound{Inf: -1} }
func PosInf() Bound { return Bound{Inf: +1} }

// ConstB is the constant endpoint c.
func ConstB(c int64) Bound { return Bound{Off: c} }

// SymB is the symbolic endpoint sym+off.
func SymB(sym types.Object, off int64) Bound { return Bound{Sym: sym, Off: off} }

// Add shifts a finite bound by c; infinities absorb.
func (b Bound) Add(c int64) Bound {
	if b.Inf != 0 {
		return b
	}
	b.Off += c
	return b
}

// LE reports whether b <= o holds, and whether that is decidable at all.
// Two finite bounds compare only over the same symbol (or both constant);
// anything else is undecidable and callers must treat it as unproven.
func (b Bound) LE(o Bound) (le, ok bool) {
	switch {
	case b.Inf == -1 || o.Inf == +1:
		return true, true
	case b.Inf == +1:
		return false, true // o is not +∞ here
	case o.Inf == -1:
		return false, true // b is not -∞ here
	case b.Sym == o.Sym:
		return b.Off <= o.Off, true
	}
	return false, false
}

func (b Bound) String() string {
	switch {
	case b.Inf == -1:
		return "-inf"
	case b.Inf == +1:
		return "+inf"
	case b.Sym == nil:
		return fmt.Sprintf("%d", b.Off)
	case b.Off == 0:
		return b.Sym.Name()
	case b.Off < 0:
		return fmt.Sprintf("%s-%d", b.Sym.Name(), -b.Off)
	}
	return fmt.Sprintf("%s+%d", b.Sym.Name(), b.Off)
}

// Interval is the inclusive symbolic range [Lo, Hi].
type Interval struct{ Lo, Hi Bound }

// Top is the unconstrained interval [-∞, +∞].
func Top() Interval { return Interval{NegInf(), PosInf()} }

// ConstI is the singleton interval [c, c].
func ConstI(c int64) Interval { return Interval{ConstB(c), ConstB(c)} }

// SymI is the singleton interval [sym, sym] — the seed for a symbol.
func SymI(sym types.Object) Interval { return Interval{SymB(sym, 0), SymB(sym, 0)} }

// IsTop reports whether the interval carries no information.
func (iv Interval) IsTop() bool { return iv.Lo.Inf == -1 && iv.Hi.Inf == +1 }

// Add shifts both endpoints by c.
func (iv Interval) Add(c int64) Interval { return Interval{iv.Lo.Add(c), iv.Hi.Add(c)} }

// ConstVal reports the interval's single constant value, if it has one.
func (iv Interval) ConstVal() (int64, bool) {
	if iv.Lo.Inf == 0 && iv.Lo.Sym == nil && iv.Lo == iv.Hi {
		return iv.Lo.Off, true
	}
	return 0, false
}

// Join is the lattice join (interval union, widening to ±∞ on
// incomparable endpoints).
func (iv Interval) Join(o Interval) Interval {
	out := Interval{Lo: NegInf(), Hi: PosInf()}
	if le, ok := iv.Lo.LE(o.Lo); ok {
		if le {
			out.Lo = iv.Lo
		} else {
			out.Lo = o.Lo
		}
	}
	if le, ok := iv.Hi.LE(o.Hi); ok {
		if le {
			out.Hi = o.Hi
		} else {
			out.Hi = iv.Hi
		}
	}
	return out
}

// WithinHalfOpen reports whether iv ⊆ [lo, hi) is provable.
func (iv Interval) WithinHalfOpen(lo, hi Bound) bool {
	if geq, ok := lo.LE(iv.Lo); !ok || !geq {
		return false
	}
	le, ok := iv.Hi.LE(hi.Add(-1))
	return ok && le
}

// Equals reports whether the interval is provably the singleton [b, b].
func (iv Interval) Equals(b Bound) bool {
	if le, ok := iv.Hi.LE(b); !ok || !le {
		return false
	}
	ge, ok := b.LE(iv.Lo)
	return ok && ge
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s]", iv.Lo, iv.Hi)
}

// DefKind classifies how a definition came to be.
type DefKind int

const (
	// KindSeed is an analyzer-provided entry definition (a parameter).
	KindSeed DefKind = iota
	// KindAssign is a direct assignment (including := and ++/--).
	KindAssign
	// KindLoop is an induction variable's in-body definition.
	KindLoop
	// KindRefine narrows a definition along a guarded branch.
	KindRefine
	// KindJoin merges definitions at a control-flow merge (a phi node).
	KindJoin
	// KindHavoc widens a definition the interpreter cannot track
	// (address-taken, assigned in an unmodeled construct).
	KindHavoc
)

func (k DefKind) String() string {
	switch k {
	case KindSeed:
		return "seed"
	case KindAssign:
		return "assign"
	case KindLoop:
		return "loop"
	case KindRefine:
		return "refine"
	case KindJoin:
		return "join"
	case KindHavoc:
		return "havoc"
	}
	return "?"
}

// Def is one versioned definition of a variable — an SSA name.
type Def struct {
	Obj  types.Object
	Ver  int
	Ival Interval
	Kind DefKind
	Pos  token.Pos
	Why  string // human-readable provenance, e.g. `i := lo` or `guard i+1 < hi`
	// Src is the defining right-hand expression for single-value
	// assignments; analyzers use it to chase pointer aliases such as
	// p := &s[w].
	Src   ast.Expr
	Env   *Env   // abstract state at the definition site
	Preds []*Def // joined or refined-from definitions
}

// Name renders the SSA name, e.g. "i#2".
func (d *Def) Name() string { return fmt.Sprintf("%s#%d", d.Obj.Name(), d.Ver) }

// Env is an immutable binding of variables to their reaching definitions.
// bind copies, so a captured *Env (e.g. Def.Env) stays valid forever.
type Env struct {
	m map[types.Object]*Def
}

// Lookup returns the reaching definition of obj, or nil if untracked.
func (e *Env) Lookup(obj types.Object) *Def {
	if e == nil || obj == nil {
		return nil
	}
	return e.m[obj]
}

func (e *Env) bind(d *Def) *Env {
	m := make(map[types.Object]*Def, len(e.m)+1)
	for k, v := range e.m {
		m[k] = v
	}
	m[d.Obj] = d
	return &Env{m: m}
}

// Analysis drives one abstract-interpretation pass over a function body.
type Analysis struct {
	Info *types.Info
	Fset *token.FileSet
	// Visit, when non-nil, is invoked for every executable leaf statement
	// with the environment holding on entry to it.
	Visit func(stmt ast.Stmt, env *Env)

	vers map[types.Object]int
}

// Run interprets body starting from the given seed definitions (typically
// the function's parameters). Seed objects act as the symbols of the
// interval lattice when seeded with SymI(obj).
func (a *Analysis) Run(body *ast.BlockStmt, seeds []*Def) {
	a.vers = make(map[types.Object]int)
	env := &Env{m: make(map[types.Object]*Def, len(seeds))}
	for _, d := range seeds {
		a.vers[d.Obj]++
		d.Ver = a.vers[d.Obj]
		env.m[d.Obj] = d
		d.Env = env
	}
	a.exec(body, env)
}

func (a *Analysis) define(env *Env, obj types.Object, ival Interval, kind DefKind, pos token.Pos, why string, src ast.Expr, preds ...*Def) *Env {
	a.vers[obj]++
	d := &Def{Obj: obj, Ver: a.vers[obj], Ival: ival, Kind: kind, Pos: pos, Why: why, Src: src, Preds: preds}
	out := env.bind(d)
	d.Env = out
	return out
}

// exec interprets one statement and returns the outgoing environment plus
// whether control can fall through to the next statement.
func (a *Analysis) exec(stmt ast.Stmt, env *Env) (*Env, bool) {
	switch s := stmt.(type) {
	case nil:
		return env, true
	case *ast.BlockStmt:
		reach := true
		for _, st := range s.List {
			if !reach {
				break
			}
			env, reach = a.exec(st, env)
		}
		return env, reach
	case *ast.LabeledStmt:
		return a.exec(s.Stmt, env)
	case *ast.AssignStmt:
		a.visit(s, env)
		return a.execAssign(s, env), true
	case *ast.IncDecStmt:
		a.visit(s, env)
		delta := int64(1)
		if s.Tok == token.DEC {
			delta = -1
		}
		if obj := identObj(a.Info, s.X); obj != nil {
			old := env.Lookup(obj)
			iv := a.Eval(env, s.X).Add(delta)
			var preds []*Def
			if old != nil {
				preds = []*Def{old}
			}
			env = a.define(env, obj, iv, KindAssign, s.Pos(), exprString(s.X)+s.Tok.String(), nil, preds...)
		}
		return a.havocAddressed(s, env), true
	case *ast.ExprStmt:
		a.visit(s, env)
		env = a.havocAddressed(s, env)
		return env, !isPanicCall(a.Info, s.X)
	case *ast.DeclStmt:
		a.visit(s, env)
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := a.Info.Defs[name]
					if obj == nil || name.Name == "_" {
						continue
					}
					ival := Top()
					var src ast.Expr
					why := "var " + name.Name
					if i < len(vs.Values) && len(vs.Values) == len(vs.Names) {
						src = vs.Values[i]
						ival = a.Eval(env, src)
						why = fmt.Sprintf("var %s = %s", name.Name, exprString(src))
					} else if len(vs.Values) == 0 && isIntegerObj(obj) {
						ival = ConstI(0)
						why = "var " + name.Name + " (zero value)"
					}
					env = a.define(env, obj, ival, KindAssign, name.Pos(), why, src)
				}
			}
		}
		return env, true
	case *ast.IfStmt:
		if s.Init != nil {
			env, _ = a.exec(s.Init, env)
		}
		// Compound statements are visited too, so analyzers can inspect
		// their header expressions (the condition here); bodies are
		// visited statement-by-statement separately.
		a.visit(s, env)
		thenEnv := a.Refine(env, s.Cond, true)
		elseEnv := a.Refine(env, s.Cond, false)
		outA, reachA := a.exec(s.Body, thenEnv)
		outB, reachB := elseEnv, true
		if s.Else != nil {
			outB, reachB = a.exec(s.Else, elseEnv)
		}
		switch {
		case reachA && reachB:
			return a.join(outA, outB, s.End()), true
		case reachA:
			return outA, true
		case reachB:
			return outB, true
		}
		return env, false
	case *ast.ForStmt:
		return a.execFor(s, env), true
	case *ast.RangeStmt:
		return a.execRange(s, env), true
	case *ast.SwitchStmt:
		if s.Init != nil {
			env, _ = a.exec(s.Init, env)
		}
		a.visit(s, env)
		return a.execCases(env, s.Body, hasDefaultCase(s.Body), s.End()), true
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			env, _ = a.exec(s.Init, env)
		}
		a.visit(s, env)
		env = a.havocAssigned(s.Assign, env, s.Pos())
		return a.execCases(env, s.Body, hasDefaultCase(s.Body), s.End()), true
	case *ast.SelectStmt:
		return a.havocAssigned(s.Body, env, s.Pos()), true
	case *ast.ReturnStmt:
		a.visit(s, env)
		return env, false
	case *ast.BranchStmt:
		return env, false
	case *ast.GoStmt, *ast.DeferStmt:
		a.visit(s, env)
		// The spawned/deferred body runs at an unmodeled time: widen
		// everything it assigns or that escapes into it by address.
		env = a.havocAssigned(stmt, env, stmt.Pos())
		return a.havocAddressed(stmt, env), true
	case *ast.SendStmt:
		a.visit(s, env)
		return a.havocAddressed(s, env), true
	case *ast.EmptyStmt:
		return env, true
	}
	// Unknown statement: widen anything it assigns.
	env = a.havocAssigned(stmt, env, stmt.Pos())
	return a.havocAddressed(stmt, env), true
}

func (a *Analysis) visit(stmt ast.Stmt, env *Env) {
	if a.Visit != nil {
		a.Visit(stmt, env)
	}
}

func (a *Analysis) execAssign(s *ast.AssignStmt, env *Env) *Env {
	switch {
	case s.Tok == token.DEFINE || s.Tok == token.ASSIGN:
		if len(s.Lhs) == len(s.Rhs) {
			// Evaluate all RHS in the pre-state, then bind (a, b = b, a).
			ivals := make([]Interval, len(s.Rhs))
			for i, rhs := range s.Rhs {
				ivals[i] = a.Eval(env, rhs)
			}
			for i, lhs := range s.Lhs {
				obj := identObj(a.Info, lhs)
				if obj == nil {
					continue
				}
				old := env.Lookup(obj)
				var preds []*Def
				if old != nil && s.Tok == token.ASSIGN {
					preds = []*Def{old}
				}
				why := fmt.Sprintf("%s %s %s", exprString(lhs), s.Tok, exprString(s.Rhs[i]))
				env = a.define(env, obj, ivals[i], KindAssign, lhs.Pos(), why, s.Rhs[i], preds...)
			}
		} else {
			// Multi-value call/comma-ok: nothing precise to say.
			for _, lhs := range s.Lhs {
				if obj := identObj(a.Info, lhs); obj != nil {
					env = a.define(env, obj, Top(), KindHavoc, lhs.Pos(),
						exprString(lhs)+" bound from a multi-value expression", nil)
				}
			}
		}
	default: // compound: +=, -=, |=, ...
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			obj := identObj(a.Info, s.Lhs[0])
			if obj != nil {
				iv := Top()
				switch s.Tok {
				case token.ADD_ASSIGN:
					iv = a.evalAdd(env, s.Lhs[0], s.Rhs[0], +1)
				case token.SUB_ASSIGN:
					iv = a.evalAdd(env, s.Lhs[0], s.Rhs[0], -1)
				}
				old := env.Lookup(obj)
				var preds []*Def
				if old != nil {
					preds = []*Def{old}
				}
				why := fmt.Sprintf("%s %s %s", exprString(s.Lhs[0]), s.Tok, exprString(s.Rhs[0]))
				env = a.define(env, obj, iv, KindAssign, s.Pos(), why, nil, preds...)
			}
		}
	}
	return a.havocAddressed(s, env)
}

// execFor interprets a for statement. The canonical induction shape
// `for i := init; i < hi; i++` gives i the interval [init.Lo, hi-1] inside
// the body; everything else assigned in the body is widened first so the
// pass stays sound without a fixpoint iteration.
func (a *Analysis) execFor(s *ast.ForStmt, env *Env) *Env {
	if s.Init != nil {
		env, _ = a.exec(s.Init, env)
	}
	assigned := assignedObjs(a.Info, s.Body)
	if s.Post != nil {
		for obj := range assignedObjs(a.Info, s.Post) {
			assigned[obj] = true
		}
	}

	ind, bodyIval, why := a.inductionVar(s, env, assigned)
	for obj := range assigned {
		if obj == ind {
			continue
		}
		if env.Lookup(obj) != nil {
			env = a.define(env, obj, Top(), KindHavoc, s.Pos(),
				obj.Name()+" reassigned inside the loop", nil)
		}
	}
	bodyEnv := env
	if ind != nil {
		old := env.Lookup(ind)
		var preds []*Def
		if old != nil {
			preds = []*Def{old}
		}
		bodyEnv = a.define(env, ind, bodyIval, KindLoop, s.Pos(), why, nil, preds...)
	} else if s.Cond != nil {
		bodyEnv = a.Refine(env, s.Cond, true)
	}
	// Visit with the in-body environment: it is sound for every
	// re-evaluation of the condition (assigned vars are already widened).
	a.visit(s, bodyEnv)
	if ind == nil && s.Post != nil {
		a.exec(s.Post, bodyEnv)
	}
	out, _ := a.exec(s.Body, bodyEnv)
	// After the loop nothing assigned inside is precise; keep the widened
	// pre-body bindings and drop the induction binding back to ⊤.
	_ = out
	if ind != nil && env.Lookup(ind) != nil {
		env = a.define(env, ind, Top(), KindHavoc, s.End(), ind.Name()+" past loop exit", nil)
	}
	return env
}

// inductionVar recognizes `for i := …; i < B; i++` (or <=) and returns the
// induction object with its in-body interval. The bound B is evaluated
// after widening, so a bound the body itself mutates degrades to +∞.
func (a *Analysis) inductionVar(s *ast.ForStmt, env *Env, assigned map[types.Object]bool) (types.Object, Interval, string) {
	cond, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return nil, Interval{}, ""
	}
	ind := identObj(a.Info, cond.X)
	if ind == nil {
		return nil, Interval{}, ""
	}
	inc, ok := s.Post.(*ast.IncDecStmt)
	if !ok || inc.Tok != token.INC || identObj(a.Info, inc.X) != ind {
		return nil, Interval{}, ""
	}
	if assignedObjs(a.Info, s.Body)[ind] {
		return ind, Top(), "induction variable reassigned in loop body"
	}
	// The bound must not be assigned inside the loop; widening handles it,
	// but evaluating in the pre-widen env here would be unsound, so check.
	boundEnv := env
	for _, id := range identsIn(cond.Y) {
		if obj := a.Info.ObjectOf(id); obj != nil && assigned[obj] {
			return ind, Top(), "induction bound mutated in loop body"
		}
	}
	init := a.Eval(env, cond.X)
	bound := a.Eval(boundEnv, cond.Y)
	hi := bound.Hi
	if cond.Op == token.LSS {
		hi = hi.Add(-1)
	}
	iv := Interval{Lo: init.Lo, Hi: hi}
	why := fmt.Sprintf("loop %s := %s; %s %s %s; %s++", ind.Name(), init,
		ind.Name(), cond.Op, exprString(cond.Y), ind.Name())
	return ind, iv, why
}

func (a *Analysis) execRange(s *ast.RangeStmt, env *Env) *Env {
	assigned := assignedObjs(a.Info, s.Body)
	for obj := range assigned {
		if env.Lookup(obj) != nil {
			env = a.define(env, obj, Top(), KindHavoc, s.Pos(),
				obj.Name()+" reassigned inside the range body", nil)
		}
	}
	a.visit(s, env)
	bodyEnv := env
	if key := identObj(a.Info, s.Key); key != nil {
		iv := Top()
		if _, isMap := typeOf(a.Info, s.X).Underlying().(*types.Map); !isMap {
			iv = Interval{Lo: ConstB(0), Hi: PosInf()} // slice/array/string index
		}
		bodyEnv = a.define(bodyEnv, key, iv, KindLoop, s.Pos(),
			fmt.Sprintf("range index over %s", exprString(s.X)), nil)
	}
	if val := identObj(a.Info, s.Value); val != nil {
		bodyEnv = a.define(bodyEnv, val, Top(), KindLoop, s.Pos(),
			fmt.Sprintf("range element of %s", exprString(s.X)), nil)
	}
	a.exec(s.Body, bodyEnv)
	return env
}

func (a *Analysis) execCases(env *Env, body *ast.BlockStmt, hasDefault bool, mergePos token.Pos) *Env {
	var outs []*Env
	for _, st := range body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		out, reach := a.exec(&ast.BlockStmt{List: cc.Body}, env)
		if reach {
			outs = append(outs, out)
		}
	}
	if !hasDefault {
		outs = append(outs, env)
	}
	if len(outs) == 0 {
		return env
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = a.join(merged, o, mergePos)
	}
	return merged
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// join merges two environments, minting phi definitions where the
// branches disagree.
func (a *Analysis) join(e1, e2 *Env, pos token.Pos) *Env {
	m := make(map[types.Object]*Def, len(e1.m))
	for obj, d1 := range e1.m {
		d2, ok := e2.m[obj]
		switch {
		case !ok || d1 == d2:
			m[obj] = d1
		default:
			a.vers[obj]++
			d := &Def{Obj: obj, Ver: a.vers[obj], Ival: d1.Ival.Join(d2.Ival),
				Kind: KindJoin, Pos: pos,
				Why:   fmt.Sprintf("join of %s and %s", d1.Name(), d2.Name()),
				Preds: []*Def{d1, d2}}
			m[obj] = d
		}
	}
	for obj, d2 := range e2.m {
		if _, ok := m[obj]; !ok {
			m[obj] = d2
		}
	}
	out := &Env{m: m}
	for _, d := range m {
		if d.Env == nil {
			d.Env = out
		}
	}
	return out
}

// havocAssigned widens every object assigned anywhere inside node.
func (a *Analysis) havocAssigned(node ast.Node, env *Env, pos token.Pos) *Env {
	for obj := range assignedObjs(a.Info, node) {
		if env.Lookup(obj) != nil {
			env = a.define(env, obj, Top(), KindHavoc, pos,
				obj.Name()+" assigned in an unmodeled construct", nil)
		}
	}
	return env
}

// havocAddressed widens every tracked local whose address is taken inside
// node — a callee may mutate it through the pointer.
func (a *Analysis) havocAddressed(node ast.Node, env *Env) *Env {
	ast.Inspect(node, func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return true
		}
		if obj := identObj(a.Info, u.X); obj != nil && env.Lookup(obj) != nil {
			env = a.define(env, obj, Top(), KindHavoc, u.Pos(),
				"&"+obj.Name()+" escapes to a callee", nil)
		}
		return true
	})
	return env
}

// Eval computes the interval of an integer expression under env.
func (a *Analysis) Eval(env *Env, x ast.Expr) Interval {
	if x == nil {
		return Top()
	}
	x = ast.Unparen(x)
	if tv, ok := a.Info.Types[x]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if c, exact := constant.Int64Val(tv.Value); exact {
			return ConstI(c)
		}
	}
	switch e := x.(type) {
	case *ast.Ident:
		if d := env.Lookup(a.Info.ObjectOf(e)); d != nil {
			return d.Ival
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD:
			return a.evalAdd(env, e.X, e.Y, +1)
		case token.SUB:
			return a.evalAdd(env, e.X, e.Y, -1)
		}
	case *ast.CallExpr:
		// Integer type conversions such as int(v) are transparent.
		if len(e.Args) == 1 {
			if tv, ok := a.Info.Types[e.Fun]; ok && tv.IsType() {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					return a.Eval(env, e.Args[0])
				}
			}
		}
	}
	return Top()
}

// evalAdd computes x + sign*y, which is precise when either side is a
// single constant.
func (a *Analysis) evalAdd(env *Env, x, y ast.Expr, sign int64) Interval {
	ix, iy := a.Eval(env, x), a.Eval(env, y)
	if c, ok := iy.ConstVal(); ok {
		return ix.Add(sign * c)
	}
	if sign > 0 {
		if c, ok := ix.ConstVal(); ok {
			return iy.Add(c)
		}
	}
	return Top()
}

// Refine narrows env under the assumption that cond evaluates to truth.
// It understands &&/||/!, and comparisons whose sides are an identifier or
// identifier±constant (so a guard like i+1 < hi narrows i).
func (a *Analysis) Refine(env *Env, cond ast.Expr, truth bool) *Env {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return a.Refine(env, c.X, !truth)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if truth {
				return a.Refine(a.Refine(env, c.X, true), c.Y, true)
			}
			return env
		case token.LOR:
			if !truth {
				return a.Refine(a.Refine(env, c.X, false), c.Y, false)
			}
			return env
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := c.Op
			if !truth {
				op = negateCmp(op)
			}
			if op == token.NEQ {
				return env
			}
			env = a.refineSide(env, c.X, op, c.Y, cond)
			env = a.refineSide(env, c.Y, mirrorCmp(op), c.X, cond)
			return env
		}
	}
	return env
}

// refineSide narrows the variable underlying lhs (an ident or ident±const)
// using `lhs op rhs`.
func (a *Analysis) refineSide(env *Env, lhs ast.Expr, op token.Token, rhs ast.Expr, cond ast.Expr) *Env {
	obj, shift, ok := identShift(a.Info, lhs)
	if !ok {
		return env
	}
	old := env.Lookup(obj)
	if old == nil {
		return env
	}
	// lhs = obj + shift, so `obj op (rhs - shift)`.
	r := a.Eval(env, rhs).Add(-shift)
	iv := old.Ival
	switch op {
	case token.LSS:
		iv.Hi = tightenHi(iv.Hi, r.Hi.Add(-1))
	case token.LEQ:
		iv.Hi = tightenHi(iv.Hi, r.Hi)
	case token.GTR:
		iv.Lo = tightenLo(iv.Lo, r.Lo.Add(1))
	case token.GEQ:
		iv.Lo = tightenLo(iv.Lo, r.Lo)
	case token.EQL:
		iv.Hi = tightenHi(iv.Hi, r.Hi)
		iv.Lo = tightenLo(iv.Lo, r.Lo)
	default:
		return env
	}
	if iv == old.Ival {
		return env
	}
	return a.define(env, obj, iv, KindRefine, cond.Pos(),
		"guard "+exprString(cond), nil, old)
}

// tightenHi returns the smaller of two upper bounds when decidable.
func tightenHi(old, new Bound) Bound {
	if le, ok := new.LE(old); ok && le {
		return new
	}
	return old
}

// tightenLo returns the larger of two lower bounds when decidable.
func tightenLo(old, new Bound) Bound {
	if le, ok := old.LE(new); ok && le {
		return new
	}
	return old
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

func mirrorCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL
}

// Explain renders the def-use chain behind every variable of expr under
// env — the text `mtmlint -explain` prints below a finding.
func (a *Analysis) Explain(env *Env, expr ast.Expr) []string {
	var out []string
	seen := make(map[*Def]bool)
	for _, id := range identsIn(expr) {
		d := env.Lookup(a.Info.ObjectOf(id))
		if d == nil {
			obj := a.Info.ObjectOf(id)
			if obj != nil && isIntegerObj(obj) {
				out = append(out, fmt.Sprintf("%s is defined outside the analyzed region (interval unknown)", obj.Name()))
			}
			continue
		}
		a.explainDef(d, 0, seen, &out)
	}
	return out
}

func (a *Analysis) explainDef(d *Def, depth int, seen map[*Def]bool, out *[]string) {
	if d == nil || seen[d] || depth > 4 {
		return
	}
	seen[d] = true
	pos := ""
	if a.Fset != nil && d.Pos.IsValid() {
		p := a.Fset.Position(d.Pos)
		pos = fmt.Sprintf(" at line %d", p.Line)
	}
	*out = append(*out, fmt.Sprintf("%s%s in %s — %s%s",
		strings.Repeat("  ", depth), d.Name(), d.Ival, d.Why, pos))
	for _, p := range d.Preds {
		a.explainDef(p, depth+1, seen, out)
	}
}

// ---- small AST/types helpers ----

// identObj resolves a bare identifier expression to its object.
func identObj(info *types.Info, x ast.Expr) types.Object {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := info.ObjectOf(id)
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}

// identShift matches `ident`, `ident+c`, `ident-c`, or `c+ident` and
// returns (obj, c).
func identShift(info *types.Info, x ast.Expr) (types.Object, int64, bool) {
	x = ast.Unparen(x)
	if obj := identObj(info, x); obj != nil {
		return obj, 0, true
	}
	b, ok := x.(*ast.BinaryExpr)
	if !ok {
		return nil, 0, false
	}
	c := func(e ast.Expr) (int64, bool) {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return 0, false
		}
		v, exact := constant.Int64Val(tv.Value)
		return v, exact
	}
	switch b.Op {
	case token.ADD:
		if obj := identObj(info, b.X); obj != nil {
			if v, ok := c(b.Y); ok {
				return obj, v, true
			}
		}
		if obj := identObj(info, b.Y); obj != nil {
			if v, ok := c(b.X); ok {
				return obj, v, true
			}
		}
	case token.SUB:
		if obj := identObj(info, b.X); obj != nil {
			if v, ok := c(b.Y); ok {
				return obj, -v, true
			}
		}
	}
	return nil, 0, false
}

// assignedObjs collects every object assigned anywhere in the subtree,
// including inside nested function literals (their bodies run sometime).
func assignedObjs(info *types.Info, node ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if node == nil {
		return out
	}
	add := func(x ast.Expr) {
		if obj := identObj(info, x); obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				add(lhs)
			}
		case *ast.IncDecStmt:
			add(s.X)
		case *ast.RangeStmt:
			add(s.Key)
			add(s.Value)
		}
		return true
	})
	return out
}

// identsIn collects every identifier in an expression tree.
func identsIn(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	if e == nil {
		return out
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

func isPanicCall(info *types.Info, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isIntegerObj(obj types.Object) bool {
	if obj == nil || obj.Type() == nil {
		return false
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func typeOf(info *types.Info, x ast.Expr) types.Type {
	if t := info.TypeOf(x); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func exprString(x ast.Expr) string {
	return types.ExprString(x)
}
