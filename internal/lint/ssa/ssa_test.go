package ssa

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// harness type-checks src (the body of package p), seeds the parameters of
// the function named fn as interval symbols, runs the analysis, and returns
// the environment captured at every statement carrying a // probe comment,
// keyed by probe label.
type harness struct {
	t    *testing.T
	a    *Analysis
	envs map[string]*Env   // probe label → env on entry to the probed stmt
	stmt map[string]ast.Stmt
	objs map[string]types.Object // param name → object
}

func run(t *testing.T, src, fn string) *harness {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", "package p\n\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	var decl *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			decl = fd
		}
	}
	if decl == nil {
		t.Fatalf("no func %s", fn)
	}

	// Map probe comments to the line they sit on.
	probes := make(map[int]string) // line → label
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, "// probe:"); ok {
				probes[fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
			}
		}
	}

	h := &harness{t: t, envs: make(map[string]*Env), stmt: make(map[string]ast.Stmt), objs: make(map[string]types.Object)}
	h.a = &Analysis{Info: info, Fset: fset, Visit: func(stmt ast.Stmt, env *Env) {
		if label, ok := probes[fset.Position(stmt.Pos()).Line]; ok {
			h.envs[label] = env
			h.stmt[label] = stmt
		}
	}}

	var seeds []*Def
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			h.objs[name.Name] = obj
			seeds = append(seeds, &Def{Obj: obj, Ival: SymI(obj), Kind: KindSeed,
				Pos: name.Pos(), Why: "parameter " + name.Name})
		}
	}
	h.a.Run(decl.Body, seeds)
	return h
}

// ivalAt evaluates expr (an expression over the probed function's
// variables, textually matched against the probed statement) at the probe.
func (h *harness) env(label string) *Env {
	env, ok := h.envs[label]
	if !ok {
		h.t.Fatalf("probe %q never visited (unreachable or mislabeled)", label)
	}
	return env
}

// lookupIval returns the interval of variable name at the probe.
func (h *harness) lookupIval(label, name string) Interval {
	env := h.env(label)
	for obj, d := range env.m {
		if obj.Name() == name {
			return d.Ival
		}
	}
	h.t.Fatalf("probe %q: no binding for %s", label, name)
	return Interval{}
}

func wantIval(t *testing.T, got Interval, want string) {
	t.Helper()
	if got.String() != want {
		t.Fatalf("interval = %s, want %s", got, want)
	}
}

func TestSeedAndAssign(t *testing.T) {
	h := run(t, `
func f(lo, hi int) {
	i := lo
	_ = i // probe: p1
	i = hi
	_ = i // probe: p2
}`, "f")
	wantIval(t, h.lookupIval("p1", "i"), "[lo, lo]")
	wantIval(t, h.lookupIval("p2", "i"), "[hi, hi]")
}

func TestForInduction(t *testing.T) {
	h := run(t, `
func f(lo, hi int, out []int) {
	for i := lo; i < hi; i++ {
		out[i] = i // probe: body
	}
	_ = out // probe: after
}`, "f")
	wantIval(t, h.lookupIval("body", "i"), "[lo, hi-1]")
	env := h.env("body")
	iv := h.a.Eval(env, indexExpr(t, h.stmt["body"]))
	wantIval(t, iv, "[lo, hi-1]")
	if !iv.WithinHalfOpen(SymB(h.objs["lo"], 0), SymB(h.objs["hi"], 0)) {
		t.Fatal("i not proven within [lo, hi)")
	}
}

func TestDerivedIndexGuard(t *testing.T) {
	// The canonical derived-index shape: out[i+1] guarded by i+1 < hi.
	h := run(t, `
func f(lo, hi int, out []int) {
	for i := lo; i < hi; i++ {
		if i+1 < hi {
			out[i+1] = 1 // probe: guarded
		}
		out[i+1] = 2 // probe: unguarded
	}
}`, "f")
	loB, hiB := SymB(h.objs["lo"], 0), SymB(h.objs["hi"], 0)

	g := h.a.Eval(h.env("guarded"), indexExpr(t, h.stmt["guarded"]))
	wantIval(t, g, "[lo+1, hi-1]")
	if !g.WithinHalfOpen(loB, hiB) {
		t.Fatal("guarded i+1 not proven within [lo, hi)")
	}
	u := h.a.Eval(h.env("unguarded"), indexExpr(t, h.stmt["unguarded"]))
	if u.WithinHalfOpen(loB, hiB) {
		t.Fatalf("unguarded i+1 wrongly proven in-bounds: %s", u)
	}
}

func TestGuardByEarlyContinue(t *testing.T) {
	// A terminating branch (continue) must leave the negated refinement
	// in force after the if.
	h := run(t, `
func f(lo, hi int, out []int) {
	for i := lo; i < hi; i++ {
		if i+1 >= hi {
			continue
		}
		out[i+1] = 1 // probe: after
	}
}`, "f")
	iv := h.a.Eval(h.env("after"), indexExpr(t, h.stmt["after"]))
	if !iv.WithinHalfOpen(SymB(h.objs["lo"], 0), SymB(h.objs["hi"], 0)) {
		t.Fatalf("i+1 after early continue not proven in-bounds: %s", iv)
	}
}

func TestJoinAtMerge(t *testing.T) {
	// The two branches bind x to different constants; the merge joins them.
	h := run(t, `
func f(c bool) {
	x := 0
	if c {
		x = 10
	} else {
		x = 3
	}
	_ = x // probe: merged
}`, "f")
	wantIval(t, h.lookupIval("merged", "x"), "[3, 10]")

	// The merged definition must be a phi over both branch definitions.
	env := h.env("merged")
	var d *Def
	for obj, dd := range env.m {
		if obj.Name() == "x" {
			d = dd
		}
	}
	if d.Kind != KindJoin || len(d.Preds) != 2 {
		t.Fatalf("merged def kind=%v preds=%d, want join with 2 preds", d.Kind, len(d.Preds))
	}
}

func TestJoinIncomparableWidens(t *testing.T) {
	h := run(t, `
func f(c bool, lo, hi int) {
	x := lo
	if c {
		x = hi
	}
	_ = x // probe: merged
}`, "f")
	// lo and hi are unrelated symbols: the join must widen to ⊤.
	if iv := h.lookupIval("merged", "x"); !iv.IsTop() {
		t.Fatalf("join of unrelated symbols = %s, want top", iv)
	}
}

func TestRangeIndex(t *testing.T) {
	h := run(t, `
func f(xs []int) {
	for i, v := range xs {
		_ = v
		_ = i // probe: body
	}
}`, "f")
	wantIval(t, h.lookupIval("body", "i"), "[0, +inf]")
}

func TestHavocOnAddressTaken(t *testing.T) {
	h := run(t, `
func g(p *int)
func f(lo int) {
	i := lo
	g(&i)
	_ = i // probe: after
}`, "f")
	if iv := h.lookupIval("after", "i"); !iv.IsTop() {
		t.Fatalf("address-taken local kept interval %s, want top", iv)
	}
}

func TestLoopBodyReassignmentWidens(t *testing.T) {
	h := run(t, `
func f(lo, hi int, out []int) {
	for i := lo; i < hi; i++ {
		if lo > 0 {
			i = 0
		}
		_ = i // probe: body
	}
}`, "f")
	// i is reassigned in the body: the induction interval must not hold.
	env := h.env("body")
	iv := Interval{}
	for obj, d := range env.m {
		if obj.Name() == "i" {
			iv = d.Ival
		}
	}
	if iv.WithinHalfOpen(SymB(h.objs["lo"], 0), SymB(h.objs["hi"], 0)) {
		t.Fatalf("reassigned induction var wrongly proven bounded: %s", iv)
	}
}

func TestMutatedBoundWidens(t *testing.T) {
	h := run(t, `
func f(lo, hi int) {
	for i := lo; i < hi; i++ {
		hi = hi + 1
		_ = i // probe: body
	}
}`, "f")
	iv := h.lookupIval("body", "i")
	if le, ok := iv.Hi.LE(SymB(h.objs["hi"], -1)); ok && le {
		t.Fatalf("bound mutated in body but i still proven < hi: %s", iv)
	}
}

func TestExplainChain(t *testing.T) {
	h := run(t, `
func f(lo, hi int, out []int) {
	for i := lo; i < hi; i++ {
		if i+1 < hi {
			out[i+1] = 1 // probe: site
		}
	}
}`, "f")
	lines := h.a.Explain(h.env("site"), indexExpr(t, h.stmt["site"]))
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"guard i + 1 < hi", "loop i :=", "i := lo"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("explanation missing %q:\n%s", want, joined)
		}
	}
}

func TestSwapAssignUsesPreState(t *testing.T) {
	h := run(t, `
func f(lo, hi int) {
	a, b := lo, hi
	a, b = b, a
	_ = a // probe: after
}`, "f")
	wantIval(t, h.lookupIval("after", "a"), "[hi, hi]")
	wantIval(t, h.lookupIval("after", "b"), "[lo, lo]")
}

func TestCompoundAssign(t *testing.T) {
	h := run(t, `
func f(lo int) {
	i := lo
	i += 2
	_ = i // probe: p1
	i -= 1
	_ = i // probe: p2
	i++
	_ = i // probe: p3
}`, "f")
	wantIval(t, h.lookupIval("p1", "i"), "[lo+2, lo+2]")
	wantIval(t, h.lookupIval("p2", "i"), "[lo+1, lo+1]")
	wantIval(t, h.lookupIval("p3", "i"), "[lo+2, lo+2]")
}

func TestBoundCompare(t *testing.T) {
	lo := ConstB(3)
	hi := ConstB(7)
	if le, ok := lo.LE(hi); !ok || !le {
		t.Fatal("3 <= 7 undecided")
	}
	if le, ok := hi.LE(lo); !ok || le {
		t.Fatal("7 <= 3 wrong")
	}
	// Distinct symbols are incomparable.
	h := run(t, `func f(a, b int) { _ = a // probe: p
}`, "f")
	sa, sb := SymB(h.objs["a"], 0), SymB(h.objs["b"], 0)
	if _, ok := sa.LE(sb); ok {
		t.Fatal("distinct symbols compared")
	}
	if le, ok := NegInf().LE(sa); !ok || !le {
		t.Fatal("-inf <= a failed")
	}
	if le, ok := sa.LE(PosInf()); !ok || !le {
		t.Fatal("a <= +inf failed")
	}
}

// indexExpr digs the index expression out of the probed statement's
// left-hand side (out[IDX] = …).
func indexExpr(t *testing.T, stmt ast.Stmt) ast.Expr {
	t.Helper()
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		t.Fatalf("probed stmt is %T, want assignment", stmt)
	}
	ix, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok {
		t.Fatalf("probed lhs is %T, want index expression", as.Lhs[0])
	}
	return ix.Index
}
