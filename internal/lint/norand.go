package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Norand forbids ambient nondeterminism sources under internal/: the
// math/rand and crypto/rand packages, and wall-clock reads via time.Now or
// time.Since. internal/xrand is the only sanctioned randomness source (it
// is exempt, as are _test.go files, which are never loaded). Wall-clock
// timing is allowed in cmd/ and the public root package, where it only
// decorates human-facing output.
var Norand = &Analyzer{
	Name: "norand",
	Doc:  "forbid math/rand, crypto/rand, and wall-clock reads under internal/",
	Run:  runNorand,
}

var forbiddenImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func runNorand(p *Pass) {
	if !p.Within("internal") || p.Within("internal/xrand") {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if forbiddenImports[path] {
				p.Reportf(imp.Pos(), "import of %q is forbidden under internal/: derive randomness from internal/xrand so runs stay reproducible", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if fn.Name() == "Now" || fn.Name() == "Since" {
				p.Reportf(id.Pos(), "time.%s is forbidden under internal/: wall-clock reads make results irreproducible (time measurement belongs in cmd/)", fn.Name())
			}
			return true
		})
	}
}
