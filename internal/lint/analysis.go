package lint

// Shared analysis infrastructure. Every analyzer builds on the helpers
// here: expression/lvalue resolution (rootObject, identsIn), static call
// resolution (calleeName, calledFunc), and the declaration/method-value
// indexes the SSA-backed analyzers (happensbefore, hotalloc) use to find
// the bodies behind indirect dispatch.

import (
	"go/ast"
	"go/types"
)

// identsIn collects every *ast.Ident in the expression tree.
func identsIn(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

// calleeName extracts the bare called-function name from a call's Fun
// expression (ident or method selector), or "" when it is neither.
func calleeName(fun ast.Expr) string {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// calledFunc resolves the called function or method, if statically known.
func calledFunc(p *Pass, call *ast.CallExpr) *types.Func {
	return staticFunc(p.Pkg.Info, call.Fun)
}

// staticFunc resolves an expression (ident, method selector, or method
// value) to the *types.Func it denotes, or nil.
func staticFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// rootObject resolves the base variable of an lvalue chain such as
// x, x.f, x[i], or *x.
func rootObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return p.Pkg.Info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func isIntegerExpr(p *Pass, e ast.Expr) bool {
	basic, ok := p.Pkg.Info.TypeOf(e).Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// funcDecls indexes a package's function and method declarations by their
// type-checker object, so analyzers can go from a resolved *types.Func to
// its body.
func funcDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// fieldFuncBindings scans a package for assignments that store a
// statically-known function or method value into a struct field
// (x.field = y.Method) and returns field → function. A field assigned two
// different functions anywhere in the package is ambiguous and dropped.
// This is how indirect dispatch through func-typed fields (internal/sim
// binds e.phAdvertise = e.phaseAdvertise once in New) resolves to bodies.
func fieldFuncBindings(pkg *Package) map[*types.Var]*types.Func {
	out := make(map[*types.Var]*types.Func)
	ambiguous := make(map[*types.Var]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				field, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !field.IsField() {
					continue
				}
				fn := staticFunc(pkg.Info, as.Rhs[i])
				if fn == nil {
					ambiguous[field] = true
					continue
				}
				if prev, ok := out[field]; ok && prev != fn {
					ambiguous[field] = true
					continue
				}
				out[field] = fn
			}
			return true
		})
	}
	for field := range ambiguous {
		delete(out, field)
	}
	return out
}

// docHasDirective reports whether the declaration's doc comment contains
// the given //mtmlint: directive (e.g. "hotpath").
func docHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//mtmlint:"+directive {
			return true
		}
	}
	return false
}
