package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc statically certifies the zero-allocation contract that
// TestSteadyStateZeroAllocs pins at runtime: no function on the simulator's
// steady-state round path may allocate. Functions whose doc comment carries
// the //mtmlint:hotpath directive are certification roots; the analyzer
// walks every statically-resolvable call reachable from them — across
// module packages — and flags each construct that can allocate:
//
//   - make of maps, channels, and slices; new; map and slice literals;
//     &composite literals (potential heap escape);
//   - append (growth reallocates), closures that capture variables,
//     method-value bindings, go statements (a goroutine spawn allocates
//     its stack);
//   - string concatenation, string<->[]byte conversions, boxing a
//     non-pointer value into an interface, and calls into standard-library
//     packages outside a small audited allowlist (sync, sync/atomic,
//     math, math/bits) — fmt in particular.
//
// Steady-state idioms the round loop depends on are recognized, not
// suppressed, so the real tree certifies with zero waivers:
//
//   - amortized growth: `x = make(...)` or `x = append(x, ...)` guarded by
//     an enclosing if whose condition measures cap(x) or len(x) — the
//     inboxTo doubling — and self-append to a struct field or package
//     variable (high-water-mark scratch such as pairScratch);
//   - panic-cold code: allocations inside panic arguments, or in a block
//     that ends by panicking, never run in the steady state;
//   - closures passed directly to sort.Search, which is documented
//     non-escaping (graph.HasEdge's binary search);
//   - runtime.Gosched, the pure scheduler yield the worker pool's spin
//     loops lean on (see workerPool.dispatch/await).
//
// A //mtmlint:hotpath-end <reason> comment inside a function ends the
// certified region at that line: nothing past it is flagged, and calls past
// it do not pull their callees into the certification walk. parallelFor's
// goroutine dispatch sits after one, because the pinned zero-alloc
// configuration (Workers=1) takes the inline path; stepCore's opt-in
// invariant audit (Config.Check) sits after another. Dynamic calls — interface methods, func-typed fields
// and parameters — are boundaries this analyzer cannot see across; the
// protocol callbacks behind them are certified separately (their
// implementations carry their own hotpath roots or runtime pins).
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "certify //mtmlint:hotpath call graphs allocation-free in the steady state",
	Run:  runHotalloc,
}

// hotStdlibAllowed lists stdlib packages whose functions are audited
// allocation-free (for the subset a hot path plausibly calls).
var hotStdlibAllowed = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

func runHotalloc(p *Pass) {
	w := &hotWalker{
		p:       p,
		visited: make(map[*types.Func]bool),
		decls:   map[string]map[*types.Func]*ast.FuncDecl{},
		pkgs:    map[string]*Package{},
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !docHasDirective(fd.Doc, "hotpath") {
				continue
			}
			fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || fd.Body == nil {
				continue
			}
			w.walkFunc(fn, fd, p.Pkg, hotFuncName(fn))
		}
	}
}

type hotWalker struct {
	p       *Pass
	visited map[*types.Func]bool
	decls   map[string]map[*types.Func]*ast.FuncDecl
	pkgs    map[string]*Package
}

// declFor resolves a module-local function to its declaration and package,
// loading the defining package on demand through the Pass's Loader.
func (w *hotWalker) declFor(fn *types.Func) (*ast.FuncDecl, *Package) {
	if fn.Pkg() == nil {
		return nil, nil
	}
	path := fn.Pkg().Path()
	mod := w.p.ModulePath
	if path != mod && !strings.HasPrefix(path, mod+"/") {
		return nil, nil
	}
	pkg, ok := w.pkgs[path]
	if !ok {
		pkg, _ = w.p.Loader.PackageFor(path)
		w.pkgs[path] = pkg
	}
	if pkg == nil {
		return nil, nil
	}
	idx, ok := w.decls[path]
	if !ok {
		idx = funcDecls(pkg)
		w.decls[path] = idx
	}
	return idx[fn], pkg
}

// hotpathEndPos returns the position of a //mtmlint:hotpath-end directive
// inside the function body, or NoPos.
func hotpathEndPos(pkg *Package, decl *ast.FuncDecl) token.Pos {
	for _, f := range pkg.Files {
		if decl.Pos() < f.Pos() || decl.Pos() > f.End() {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//mtmlint:hotpath-end") &&
					c.Pos() > decl.Body.Pos() && c.Pos() < decl.Body.End() {
					return c.Pos()
				}
			}
		}
	}
	return token.NoPos
}

func hotFuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func (w *hotWalker) walkFunc(fn *types.Func, decl *ast.FuncDecl, pkg *Package, path string) {
	if w.visited[fn] {
		return
	}
	w.visited[fn] = true
	fw := &hotFuncWalk{
		w: w, pkg: pkg, path: path,
		cutoff: hotpathEndPos(pkg, decl),
	}
	fw.walk(decl.Body)
}

// hotFuncWalk certifies one function body. It keeps an explicit ancestor
// stack so flag sites can consult enclosing panics, guards, and calls.
type hotFuncWalk struct {
	w      *hotWalker
	pkg    *Package
	path   string
	cutoff token.Pos
	stack  []ast.Node
}

func (f *hotFuncWalk) info() *types.Info { return f.pkg.Info }

func (f *hotFuncWalk) flag(n ast.Node, format string, args ...any) {
	if f.cutoff.IsValid() && n.Pos() > f.cutoff {
		return // past the //mtmlint:hotpath-end region boundary
	}
	if f.isCold() {
		return // only runs while panicking
	}
	f.w.p.ReportExplained(n.Pos(), []string{"hot path: " + f.path}, format, args...)
}

// isCold reports whether the current node sits in panic-only code: inside
// the arguments of a panic call, or in a block that ends by panicking.
func (f *hotFuncWalk) isCold() bool {
	for _, anc := range f.stack {
		switch a := anc.(type) {
		case *ast.CallExpr:
			if f.isPanic(a) {
				return true
			}
		case *ast.BlockStmt:
			if len(a.List) > 0 && f.isPanicStmt(a.List[len(a.List)-1]) {
				return true
			}
		case *ast.CaseClause:
			if len(a.Body) > 0 && f.isPanicStmt(a.Body[len(a.Body)-1]) {
				return true
			}
		}
	}
	return false
}

func (f *hotFuncWalk) isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	return ok && f.isPanic(call)
}

func (f *hotFuncWalk) isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := f.info().Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func (f *hotFuncWalk) parent() ast.Node {
	if len(f.stack) < 2 {
		return nil
	}
	return f.stack[len(f.stack)-2]
}

func (f *hotFuncWalk) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			f.stack = f.stack[:len(f.stack)-1]
			return false
		}
		f.stack = append(f.stack, n)
		keep := f.check(n)
		if !keep {
			f.stack = f.stack[:len(f.stack)-1]
		}
		return keep
	})
}

// check inspects one node; returning false prunes the subtree (the stack
// entry is popped by the caller).
func (f *hotFuncWalk) check(n ast.Node) bool {
	if f.cutoff.IsValid() && n.Pos() > f.cutoff {
		// Past the //mtmlint:hotpath-end region boundary: nothing here is
		// certified, so don't flag it and don't walk its callees.
		return false
	}
	switch x := n.(type) {
	case *ast.GoStmt:
		f.flag(x, "go statement in the hot path: spawning a goroutine allocates its stack and defer records")
		return false
	case *ast.CallExpr:
		f.checkCall(x)
	case *ast.CompositeLit:
		switch f.info().TypeOf(x).Underlying().(type) {
		case *types.Map:
			f.flag(x, "map literal in the hot path allocates")
		case *types.Slice:
			f.flag(x, "slice literal in the hot path allocates its backing array")
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				f.flag(x, "address of a composite literal may escape to the heap")
			}
		}
	case *ast.FuncLit:
		f.checkFuncLit(x)
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			if b, ok := f.info().TypeOf(x).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				f.flag(x, "string concatenation in the hot path allocates")
			}
		}
	case *ast.SelectorExpr:
		f.checkMethodValue(x)
	}
	return true
}

func (f *hotFuncWalk) checkCall(call *ast.CallExpr) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := f.info().Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				f.checkMake(call)
			case "new":
				f.flag(call, "new(T) in the hot path allocates")
			case "append":
				if !f.isAmortizedAppend(call) {
					f.flag(call, "append in the hot path may grow and reallocate; grow amortized scratch (a field self-append or cap-guarded make) instead")
				}
			case "print", "println":
				f.flag(call, "%s in the hot path may allocate", b.Name())
			}
			return
		}
	}
	// Type conversions.
	if tv, ok := f.info().Types[call.Fun]; ok && tv.IsType() {
		f.checkConversion(call, tv.Type)
		return
	}
	// Static function and method calls.
	if fn := staticFunc(f.info(), call.Fun); fn != nil && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		mod := f.w.p.ModulePath
		switch {
		case path == mod || strings.HasPrefix(path, mod+"/"):
			if decl, pkg := f.w.declFor(fn); decl != nil && decl.Body != nil {
				f.w.walkFunc(fn, decl, pkg, f.path+" → "+hotFuncName(fn))
			}
			// Module-local calls without a body (interface methods) are
			// dynamic-dispatch boundaries: certified by their own roots.
		case hotStdlibAllowed[path]:
			// Audited allocation-free.
		case path == "sort" && fn.Name() == "Search":
			// sort.Search is non-escaping and allocation-free; its
			// callback closure is exempted in checkFuncLit.
		case path == "runtime" && fn.Name() == "Gosched":
			// A pure scheduler yield — the worker pool's spin loops call it
			// every iteration to stay live at GOMAXPROCS=1, and it never
			// allocates.
		case path == "fmt":
			f.flag(call, "fmt.%s in the hot path formats into fresh allocations", fn.Name())
			return
		default:
			f.flag(call, "call to %s.%s in the hot path may allocate (outside the audited stdlib allowlist)", path, fn.Name())
			return
		}
	}
	f.checkBoxing(call)
}

// checkMake flags make calls except the amortized-growth idiom
// `x = make(...)` under an if measuring cap(x) or len(x).
func (f *hotFuncWalk) checkMake(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	switch f.info().TypeOf(call.Args[0].(ast.Expr)).Underlying().(type) {
	case *types.Map:
		f.flag(call, "make(map) in the hot path allocates")
		return
	case *types.Chan:
		f.flag(call, "make(chan) in the hot path allocates")
		return
	}
	if f.isAmortizedMake(call) {
		return
	}
	f.flag(call, "make([]T) in the hot path allocates; reuse amortized scratch guarded by a cap check")
}

// assignTarget returns the spelling of the variable this call's result is
// assigned to, when the call is the sole RHS of an enclosing assignment.
func (f *hotFuncWalk) assignTarget(call *ast.CallExpr) (string, ast.Expr) {
	if as, ok := f.parent().(*ast.AssignStmt); ok && len(as.Rhs) == 1 && ast.Unparen(as.Rhs[0]) == call && len(as.Lhs) == 1 {
		lhs := ast.Unparen(as.Lhs[0])
		return types.ExprString(lhs), lhs
	}
	return "", nil
}

// isAmortizedMake recognizes `x = make(...)` inside an if (or else-branch)
// whose condition measures cap(x) or len(x) — capacity doubling.
func (f *hotFuncWalk) isAmortizedMake(call *ast.CallExpr) bool {
	target, _ := f.assignTarget(call)
	if target == "" {
		return false
	}
	for _, anc := range f.stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		if condMeasures(ifs.Cond, target) {
			return true
		}
	}
	return false
}

// condMeasures reports whether cond contains cap(x) or len(x) for the
// given lvalue spelling.
func condMeasures(cond ast.Expr, target string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		name := calleeName(call.Fun)
		if (name == "cap" || name == "len") && types.ExprString(ast.Unparen(call.Args[0])) == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// isAmortizedAppend recognizes self-appends to amortized scratch:
// `x = append(x, ...)` where x is a struct field or package-level
// variable (a high-water-mark buffer), and `x = x[:0]`-style reuse makes
// growth amortized over the run. Self-append to a bare local is not
// amortized (the local dies each call) and stays flagged.
func (f *hotFuncWalk) isAmortizedAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	target, lhs := f.assignTarget(call)
	if target == "" || types.ExprString(ast.Unparen(call.Args[0])) != target {
		return false
	}
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		return true // field scratch, e.g. e.pairScratch
	case *ast.Ident:
		obj := f.info().ObjectOf(l)
		return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
	}
	return false
}

func (f *hotFuncWalk) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := f.info().TypeOf(call.Args[0])
	if from == nil {
		return
	}
	toB, toIsBasic := to.Underlying().(*types.Basic)
	fromB, fromIsBasic := from.Underlying().(*types.Basic)
	if toIsBasic && toB.Info()&types.IsString != 0 {
		if !fromIsBasic || fromB.Info()&types.IsString == 0 {
			f.flag(call, "conversion to string in the hot path allocates")
		}
		return
	}
	if _, toSlice := to.Underlying().(*types.Slice); toSlice && fromIsBasic && fromB.Info()&types.IsString != 0 {
		f.flag(call, "string-to-slice conversion in the hot path allocates")
	}
}

// checkBoxing flags non-pointer concrete arguments passed to interface
// parameters (the conversion boxes the value on the heap).
func (f *hotFuncWalk) checkBoxing(call *ast.CallExpr) {
	sig, ok := f.info().TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() && i == params.Len()-1 {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := f.info().TypeOf(arg)
		if at == nil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Map, *types.Chan, *types.Slice:
			continue // already reference-shaped; no boxing allocation
		}
		f.flag(arg, "passing %s to an interface parameter boxes it on the heap", types.TypeString(at, types.RelativeTo(f.pkg.Types)))
	}
}

// checkFuncLit flags closures that capture surrounding variables, except
// those handed directly to a known non-escaping callback taker.
func (f *hotFuncWalk) checkFuncLit(lit *ast.FuncLit) {
	if call, ok := f.parent().(*ast.CallExpr); ok {
		if fn := staticFunc(f.info(), call.Fun); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "sort" && fn.Name() == "Search" {
			return // documented non-escaping; the closure stays on the stack
		}
	}
	if name, ok := f.litCaptures(lit); ok {
		f.flag(lit, "closure captures %s and may allocate when it escapes", name)
	}
}

// litCaptures reports whether the literal captures any non-package-level
// variable declared outside it (package-level access compiles to direct
// loads and captures nothing).
func (f *hotFuncWalk) litCaptures(lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := f.info().Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name, name != ""
}

// checkMethodValue flags bound-method values (x.M used as a value, not
// called): binding allocates a closure over the receiver.
func (f *hotFuncWalk) checkMethodValue(sel *ast.SelectorExpr) {
	fn, ok := f.info().Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if call, ok := f.parent().(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
		return // a plain method call, not a method value
	}
	f.flag(sel, "method value %s.%s binds its receiver in a heap closure", types.ExprString(sel.X), sel.Sel.Name)
}
