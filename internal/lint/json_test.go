package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the machine-readable output format: the exact JSON
// the driver's -json flag emits for the maporder fixture package. File
// paths are module-relative, so the golden file is checkout-independent.
func TestJSONGolden(t *testing.T) {
	l := fixtureModule(t)
	pkg := loadFixture(t, l, "internal/core")
	findings := Run(l, []*Package{pkg}, All())

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	goldenPath := filepath.Join("testdata", "golden", "core.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/lint -run TestJSONGolden -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestJSONRoundTrip ensures findings survive a marshal/unmarshal cycle
// unchanged, so downstream tooling can consume -json output losslessly.
func TestJSONRoundTrip(t *testing.T) {
	in := []Finding{{
		Analyzer: "maporder",
		File:     "internal/core/x.go",
		Line:     3,
		Col:      7,
		Message:  `iteration over map m`,
	}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Finding
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}
