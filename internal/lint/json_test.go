package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// checkGolden pins the machine-readable output format: the exact JSON the
// driver's -json flag emits for one fixture package. File paths are
// module-relative, so golden files are checkout-independent.
func checkGolden(t *testing.T, rel, golden string) {
	t.Helper()
	l := fixtureModule(t)
	pkg := loadFixture(t, l, rel)
	findings := Run(l, []*Package{pkg}, All())

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	goldenPath := filepath.Join("testdata", "golden", golden)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/lint -run TestJSONGolden -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestJSONGoldenCore(t *testing.T) { checkGolden(t, "internal/core", "core.json") }

// TestJSONGoldenHappensbefore also pins the explain chains: the def-use
// rendering is part of the machine-readable contract.
func TestJSONGoldenHappensbefore(t *testing.T) { checkGolden(t, "internal/hb", "hb.json") }

func TestJSONGoldenHotalloc(t *testing.T) { checkGolden(t, "internal/hot", "hot.json") }

// TestJSONGoldenShared pins the sharedwrite→happensbefore handoff on the
// pre-existing shared fixture: goroutine findings keep their sharedwrite
// shape, parallelFor findings now carry happensbefore's proofs.
func TestJSONGoldenShared(t *testing.T) { checkGolden(t, "internal/shared", "shared.json") }

// TestJSONRoundTrip ensures findings survive a marshal/unmarshal cycle
// unchanged, so downstream tooling can consume -json output losslessly.
func TestJSONRoundTrip(t *testing.T) {
	in := []Finding{{
		Analyzer: "happensbefore",
		File:     "internal/core/x.go",
		Line:     3,
		Col:      7,
		Message:  `cannot prove write of out[i]`,
		Explain:  []string{"i#2 in [lo, hi]", "  i#1 in [lo, lo]"},
	}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Finding
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}
