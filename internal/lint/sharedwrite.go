package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Sharedwrite flags `go func` literals that write to captured shared state
// without synchronization — the failure mode that would corrupt the
// Workers > 1 round loop in internal/sim. A write is safe when it is
// partitioned: an element write s[i] = v whose index depends on a variable
// declared inside the goroutine (a parameter, a received work item, a
// chunk bound). It is flagged when:
//
//   - the target is a captured map (concurrent map writes are unsafe even
//     on distinct keys);
//   - the target is a captured slice element whose index is itself fully
//     captured (every goroutine writes the same cells);
//   - the target is a captured scalar/slice variable written directly
//     (including `s = append(s, ...)`, which races on len/cap).
//
// Workers dispatched through parallelFor are not handled here: the
// happensbefore analyzer proves their chunk partitioning with interval
// reasoning over the (w, lo, hi) bounds.
//
// Goroutine bodies that take a lock (any Lock/RLock call) are assumed
// synchronized and skipped; channel-coordinated writes need an explicit
// //mtmlint:sharedwrite-ok <reason>.
var Sharedwrite = &Analyzer{
	Name: "sharedwrite",
	Doc:  "flag unsynchronized writes to captured shared state in go-func literals",
	Run:  runSharedwrite,
}

func runSharedwrite(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if s, ok := n.(*ast.GoStmt); ok {
				if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
					checkConcurrentBody(p, lit, "goroutine")
				}
			}
			return true
		})
	}
}

// checkConcurrentBody inspects one function literal that runs concurrently
// (a go statement body or a parallelFor chunk worker); who names the
// context in diagnostics.
func checkConcurrentBody(p *Pass, lit *ast.FuncLit, who string) {
	if bodyTakesLock(lit) {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // nested goroutines are visited on their own
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true // := only declares body-locals
			}
			for _, lhs := range s.Lhs {
				checkWriteTarget(p, lit, who, lhs)
			}
		case *ast.IncDecStmt:
			checkWriteTarget(p, lit, who, s.X)
		}
		return true
	})
}

func checkWriteTarget(p *Pass, lit *ast.FuncLit, who string, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	root := rootObject(p, lhs)
	if root == nil || !capturedBy(lit, root) {
		return
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		switch p.Pkg.Info.TypeOf(idx.X).Underlying().(type) {
		case *types.Map:
			p.Reportf(lhs.Pos(), "%s writes to captured map %s without synchronization; concurrent map writes are unsafe even on distinct keys", who, types.ExprString(idx.X))
			return
		case *types.Slice, *types.Array, *types.Pointer:
			if indexIsGoroutineLocal(p, lit, idx.Index) {
				return // partitioned: each worker owns its own cells
			}
			p.Reportf(lhs.Pos(), "%s writes to captured slice %s at a captured index; partition indices per worker or synchronize", who, types.ExprString(idx.X))
			return
		}
	}
	p.Reportf(lhs.Pos(), "%s writes to captured variable %s without synchronization; partition the work or guard it with a mutex", who, types.ExprString(lhs))
}

// capturedBy reports whether obj is declared outside the function literal,
// i.e. the goroutine reaches it by capture (or it is package-level state).
func capturedBy(lit *ast.FuncLit, obj types.Object) bool {
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// indexIsGoroutineLocal reports whether the index expression depends on at
// least one variable declared inside the goroutine body or parameter list.
func indexIsGoroutineLocal(p *Pass, lit *ast.FuncLit, index ast.Expr) bool {
	for _, id := range identsIn(index) {
		obj := p.Pkg.Info.ObjectOf(id)
		if _, isVar := obj.(*types.Var); isVar && !capturedBy(lit, obj) {
			return true
		}
	}
	return false
}

// bodyTakesLock reports whether the goroutine body calls Lock or RLock on
// anything — the heuristic signal that its shared writes are guarded.
func bodyTakesLock(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
