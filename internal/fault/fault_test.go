package fault

import (
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero plan", Plan{}, true},
		{"rates in range", Plan{CrashRate: 0.5, RecoverRate: 1, ProposalLoss: 0.1, ConnLoss: 0.2, TagFlipRate: 0.3}, true},
		{"negative rate", Plan{CrashRate: -0.1}, false},
		{"rate above one", Plan{ProposalLoss: 1.5}, false},
		{"scripted ok", Plan{Crashes: []NodeRound{{Round: 3, Node: 7}}}, true},
		{"crash round zero", Plan{Crashes: []NodeRound{{Round: 0, Node: 0}}}, false},
		{"crash node out of range", Plan{Crashes: []NodeRound{{Round: 1, Node: 8}}}, false},
		{"recovery node negative", Plan{Recoveries: []NodeRound{{Round: 1, Node: -1}}}, false},
		{"corruption ok", Plan{Corruptions: []Burst{{Round: 2, Nodes: []int{0, 7}}}}, true},
		{"corruption empty", Plan{Corruptions: []Burst{{Round: 2}}}, false},
		{"corruption node out of range", Plan{Corruptions: []Burst{{Round: 2, Nodes: []int{8}}}}, false},
		{"maxdown negative", Plan{MaxDown: -1}, false},
		{"maxdown above n", Plan{MaxDown: 9}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(8)
			if (err == nil) != tc.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
	if _, err := NewInjector(Plan{}, 0); err == nil {
		t.Error("NewInjector accepted n=0")
	}
}

func TestEnabled(t *testing.T) {
	if (&Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	for _, p := range []Plan{
		{CrashRate: 0.1},
		{RecoverRate: 0.1},
		{ProposalLoss: 0.1},
		{ConnLoss: 0.1},
		{TagFlipRate: 0.1},
		{Crashes: []NodeRound{{Round: 1, Node: 0}}},
		{Recoveries: []NodeRound{{Round: 1, Node: 0}}},
		{Corruptions: []Burst{{Round: 1, Nodes: []int{0}}}},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v reports disabled", p)
		}
	}
}

func TestScriptedChurn(t *testing.T) {
	plan := Plan{
		Crashes:    []NodeRound{{Round: 2, Node: 3}, {Round: 2, Node: 1}, {Round: 5, Node: 1}},
		Recoveries: []NodeRound{{Round: 4, Node: 1}, {Round: 4, Node: 3}},
	}
	in, err := NewInjector(plan, 8)
	if err != nil {
		t.Fatal(err)
	}

	in.BeginRound(1)
	if in.DownMask() != nil || in.DownCount() != 0 {
		t.Fatal("round 1: nodes down before any scripted crash")
	}

	in.BeginRound(2)
	if got := in.NewlyDown(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("round 2 NewlyDown = %v, want [1 3] (ascending)", got)
	}
	if !in.Down(1) || !in.Down(3) || in.Down(0) || in.DownCount() != 2 {
		t.Fatalf("round 2 down state wrong")
	}
	mask := in.DownMask()
	if mask == nil || !mask[1] || !mask[3] || mask[0] {
		t.Fatalf("round 2 DownMask = %v", mask)
	}

	in.BeginRound(3)
	if len(in.NewlyDown()) != 0 || len(in.NewlyRecovered()) != 0 || in.DownCount() != 2 {
		t.Fatal("round 3: churn fired without scripted events or rates")
	}

	in.BeginRound(4)
	if got := in.NewlyRecovered(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("round 4 NewlyRecovered = %v, want [1 3]", got)
	}
	if in.DownMask() != nil {
		t.Fatal("round 4: mask non-nil after full recovery")
	}

	// Re-crash of node 1 at round 5 works; crash of a down node is a no-op.
	in.BeginRound(5)
	if got := in.NewlyDown(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("round 5 NewlyDown = %v, want [1]", got)
	}
	in2, _ := NewInjector(Plan{Crashes: []NodeRound{{Round: 1, Node: 0}, {Round: 2, Node: 0}}}, 4)
	in2.BeginRound(1)
	in2.BeginRound(2)
	if len(in2.NewlyDown()) != 0 || in2.DownCount() != 1 {
		t.Error("double crash of the same node was not a no-op")
	}
}

func TestChurnDeterminism(t *testing.T) {
	plan := Plan{Seed: 99, CrashRate: 0.2, RecoverRate: 0.5}
	run := func() ([]int, []int) {
		in, err := NewInjector(plan, 64)
		if err != nil {
			t.Fatal(err)
		}
		var downs, recovers []int
		for r := 1; r <= 200; r++ {
			in.BeginRound(r)
			for _, u := range in.NewlyDown() {
				downs = append(downs, r*1000+int(u))
			}
			for _, u := range in.NewlyRecovered() {
				recovers = append(recovers, r*1000+int(u))
			}
		}
		return downs, recovers
	}
	d1, r1 := run()
	d2, r2 := run()
	if len(d1) == 0 {
		t.Fatal("no crashes at CrashRate 0.2 over 200 rounds")
	}
	if len(r1) == 0 {
		t.Fatal("no recoveries at RecoverRate 0.5")
	}
	if !equalInts(d1, d2) || !equalInts(r1, r2) {
		t.Error("same plan produced different churn across runs")
	}

	// A different fault seed produces a different pattern.
	other := plan
	other.Seed = 100
	in, _ := NewInjector(other, 64)
	var d3 []int
	for r := 1; r <= 200; r++ {
		in.BeginRound(r)
		for _, u := range in.NewlyDown() {
			d3 = append(d3, r*1000+int(u))
		}
	}
	if equalInts(d1, d3) {
		t.Error("different fault seeds produced identical churn")
	}
}

func TestMaxDownCap(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 7, CrashRate: 1, MaxDown: 3}, 16)
	if err != nil {
		t.Fatal(err)
	}
	in.BeginRound(1)
	if in.DownCount() != 3 {
		t.Errorf("DownCount = %d, want capped at 3", in.DownCount())
	}
	// Scripted crashes are exempt from the cap.
	in2, _ := NewInjector(Plan{Seed: 7, CrashRate: 1, MaxDown: 1,
		Crashes: []NodeRound{{Round: 1, Node: 4}, {Round: 1, Node: 5}}}, 16)
	in2.BeginRound(1)
	if !in2.Down(4) || !in2.Down(5) {
		t.Error("scripted crashes were blocked by MaxDown")
	}
}

func TestDropAndFlipDeterminism(t *testing.T) {
	plan := Plan{Seed: 5, ProposalLoss: 0.3, ConnLoss: 0.2, TagFlipRate: 0.4}
	run := func() []uint64 {
		in, err := NewInjector(plan, 8)
		if err != nil {
			t.Fatal(err)
		}
		var got []uint64
		for r := 1; r <= 50; r++ {
			in.BeginRound(r)
			for u := 0; u < 8; u++ {
				tag, flipped := in.FlipTag(3, uint64(u))
				if flipped {
					got = append(got, uint64(r)<<32|tag)
				}
			}
			for i := 0; i < 6; i++ {
				if in.DropProposal() {
					got = append(got, uint64(r)<<16|uint64(i))
				}
			}
			for i := 0; i < 3; i++ {
				if in.DropConnection() {
					got = append(got, uint64(r)<<8|uint64(i))
				}
			}
		}
		return got
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults drawn at high rates")
	}
	if len(a) != len(b) {
		t.Fatalf("draw counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs", i)
		}
	}
}

func TestFlipTagStaysInRange(t *testing.T) {
	in, _ := NewInjector(Plan{Seed: 3, TagFlipRate: 1}, 4)
	in.BeginRound(1)
	const bits = 4
	for i := 0; i < 100; i++ {
		tag, flipped := in.FlipTag(bits, 0b1010)
		if !flipped {
			t.Fatal("TagFlipRate 1 did not flip")
		}
		if tag >= 1<<bits {
			t.Fatalf("flipped tag %#x exceeds %d bits", tag, bits)
		}
		if tag == 0b1010 {
			t.Fatal("flip produced the original tag")
		}
	}
	// Zero tag bits (no advertisements) can never flip.
	if _, flipped := in.FlipTag(0, 0); flipped {
		t.Error("flip with 0 tag bits")
	}
}

func TestZeroRatesConsumeNoDraws(t *testing.T) {
	// With all rates zero, query methods must not touch the RNG, so a plan
	// that only scripts faults leaves the stream untouched for corruption
	// draws — and adding unused knobs can never perturb existing runs.
	in, _ := NewInjector(Plan{Seed: 11, Crashes: []NodeRound{{Round: 1, Node: 0}}}, 4)
	in.BeginRound(1)
	before := in.RNG().Uint64()
	in.BeginRound(1) // reseed to replay the round
	if in.DropProposal() || in.DropConnection() {
		t.Fatal("zero-rate drop fired")
	}
	if _, flipped := in.FlipTag(3, 1); flipped {
		t.Fatal("zero-rate flip fired")
	}
	if got := in.RNG().Uint64(); got != before {
		t.Error("zero-rate queries consumed RNG draws")
	}
}

func TestCorruptTargets(t *testing.T) {
	in, err := NewInjector(Plan{Corruptions: []Burst{
		{Round: 3, Nodes: []int{5, 1}},
		{Round: 3, Nodes: []int{2}},
		{Round: 7, Nodes: []int{0}},
	}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.CorruptTargets(2); got != nil {
		t.Errorf("round 2 targets = %v, want nil", got)
	}
	got := in.CorruptTargets(3)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 5 {
		t.Errorf("round 3 targets = %v, want [1 2 5]", got)
	}
	if got := in.CorruptTargets(7); len(got) != 1 || got[0] != 0 {
		t.Errorf("round 7 targets = %v", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
